// Real-thread smoke suite — the ThreadSanitizer gate (ci/check.sh tsan).
//
// Everything else in the repo runs single-threaded under the deterministic
// simulator. This suite exercises the few components whose contracts already
// span real threads — Pending<T> hand-off, LocalStore's concurrent read-only
// path, RpcStats' atomic counters — so the TSan stage has genuine
// cross-thread paths to check today, and so the ROADMAP's real-thread
// concurrency work (parallel reads, sharded writes) lands against a gate
// that already runs instead of having to build one first.
//
// Ground rules for adding cases here:
//   * A case must be correct under the components' documented thread
//     contracts (Pending is single-owner per thread with hand-off via
//     thread creation/join; LocalStore writes are exclusive). TSan verifies
//     the implementation keeps those contracts race-free — a failing case
//     means the component broke, not that the test is optimistic.
//   * Keep cases small and fast; this runs in every tier-1 ctest pass too.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/pending.h"
#include "common/rng.h"
#include "localstore/local_store.h"
#include "net/rpc.h"

namespace orchestra {
namespace {

constexpr int kThreads = 8;

// --- Pending<T> ------------------------------------------------------------

// Hand-off: the main thread creates handles, a worker resolves them
// (thread-creation establishes the happens-before into the worker, join
// establishes it back), the main thread then reads values and registers
// post-resolution continuations.
TEST(ThreadSmoke, PendingResolveHandoff) {
  std::vector<Pending<int>> handles(64);
  std::thread resolver([&handles] {
    for (size_t i = 0; i < handles.size(); ++i) {
      EXPECT_TRUE(handles[i].Resolve(Status::OK(), static_cast<int>(i)));
    }
  });
  resolver.join();
  int fired = 0;
  for (size_t i = 0; i < handles.size(); ++i) {
    ASSERT_TRUE(handles[i].ok());
    EXPECT_EQ(handles[i].value(), static_cast<int>(i));
    handles[i].OnReady([&fired] { ++fired; });  // already resolved: runs now
  }
  EXPECT_EQ(fired, 64);
}

// Per-thread churn: each thread drives its own Pending lifecycles
// (create, chain OnReady, resolve, copy) in parallel. Confirms the shared
// completion state and Status machinery have no hidden cross-thread
// mutable globals.
TEST(ThreadSmoke, PendingPerThreadChurn) {
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &total] {
      uint64_t local = 0;
      for (int i = 0; i < 500; ++i) {
        Pending<std::string> p;
        Pending<std::string> copy = p;  // copies share one state
        p.OnReady([&local] { ++local; });
        copy.OnReady([&local] { ++local; });
        EXPECT_TRUE(p.Resolve(Status::OK(), "v" + std::to_string(t)));
        EXPECT_FALSE(copy.Resolve(Status::OK(), "second"));  // exactly once
        EXPECT_EQ(copy.value(), "v" + std::to_string(t));
      }
      total.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(total.load(), static_cast<uint64_t>(kThreads) * 500 * 2);
}

// --- LocalStore ------------------------------------------------------------

// Concurrent read-only access: one writer populates the store up front;
// N reader threads then hammer Get/GetView/Contains and ordered scans
// concurrently. The read path's stats counter is atomic — the exact final
// count proves no increments were lost (and TSan proves none raced).
TEST(ThreadSmoke, LocalStoreConcurrentReaders) {
  localstore::LocalStore store;
  constexpr int kKeys = 512;
  for (int i = 0; i < kKeys; ++i) {
    std::string key = "key" + std::to_string(1000 + i);
    ASSERT_TRUE(store.Put(key, "value" + std::to_string(i)).ok());
  }

  constexpr int kGetsPerThread = 2000;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &store, &mismatches] {
      Rng rng(0x5EED0 + static_cast<uint64_t>(t));
      for (int i = 0; i < kGetsPerThread; ++i) {
        int k = static_cast<int>(rng.Uniform(kKeys));
        std::string key = "key" + std::to_string(1000 + k);
        if (i % 2 == 0) {
          auto v = store.Get(key);
          if (!v.ok() || v.value() != "value" + std::to_string(k)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          auto v = store.GetView(key);
          if (!v.ok() || v.value() != "value" + std::to_string(k)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (!store.Contains(key)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Ordered scan across the whole store, concurrent with other readers.
      uint64_t seen = 0;
      for (auto it = store.SeekPrefix("key"); it.Valid(); it.Next()) ++seen;
      if (seen != kKeys) mismatches.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(store.stats().gets.load(),
            static_cast<uint64_t>(kThreads) * kGetsPerThread);
  EXPECT_EQ(store.stats().live_records, static_cast<uint64_t>(kKeys));
}

// --- RpcStats --------------------------------------------------------------

// The lifecycle counters are process-wide atomics read by leak-regression
// tests; concurrent readers must see them tear-free. No RPC runs here, so
// the values are stable — the point is tear-free concurrent loads.
TEST(ThreadSmoke, RpcStatsConcurrentReads) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 20000; ++i) {
        EXPECT_GE(net::RpcStats::calls_started(), net::RpcStats::calls_resolved());
        EXPECT_GE(net::RpcStats::callbacks_alive(), 0);
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace orchestra
