#include <gtest/gtest.h>

#include "cdss/cdss.h"
#include "deploy/deployment.h"

namespace orchestra::cdss {
namespace {

using storage::Tuple;
using storage::Value;
using storage::ValueType;

class CdssTest : public ::testing::Test {
 protected:
  CdssTest() {
    deploy::DeploymentOptions opts;
    opts.num_nodes = 4;
    dep = std::make_unique<deploy::Deployment>(opts);
    // Two participants with different trust priorities on different nodes.
    alice = std::make_unique<Participant>(dep.get(), 0, "alice", /*priority=*/1);
    bob = std::make_unique<Participant>(dep.get(), 1, "bob", /*priority=*/2);

    // Shared relation: gene annotations keyed by gene id, plus origin cols.
    shared = SharedRelation("gene_ann",
                            {{"gene", ValueType::kString},
                             {"function", ValueType::kString}},
                            1);
    EXPECT_TRUE(alice->CreateSharedRelation(shared).ok());

    // Both participants keep a local relation with the same shape.
    storage::RelationDef local;
    local.name = "my_genes";
    local.schema = storage::Schema(
        {{"gene", ValueType::kString}, {"function", ValueType::kString}}, 1);
    alice->CreateLocalRelation(local);
    bob->CreateLocalRelation(local);
    alice->BindLocalToShared("my_genes", "gene_ann");
    bob->BindLocalToShared("my_genes", "gene_ann");

    SchemaMapping m;
    m.name = "import-genes";
    m.target_relation = "my_genes";
    m.sql = "SELECT gene, function, origin, origin_priority FROM gene_ann";
    alice->AddMapping(m);
    bob->AddMapping(m);
  }

  std::unique_ptr<deploy::Deployment> dep;
  std::unique_ptr<Participant> alice, bob;
  storage::RelationDef shared;
};

TEST_F(CdssTest, LocalEditsAccumulateInLog) {
  alice->LocalInsert("my_genes", {Value("BRCA1"), Value("dna repair")});
  alice->LocalInsert("my_genes", {Value("TP53"), Value("tumor suppressor")});
  EXPECT_EQ(alice->pending_updates(), 2u);
  auto rows = alice->LocalScan("my_genes");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(CdssTest, PublishThenImportPropagates) {
  alice->LocalInsert("my_genes", {Value("BRCA1"), Value("dna repair")});
  auto epoch = alice->Publish();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(alice->pending_updates(), 0u);  // log cleared on publish

  auto report = bob->Import();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->tuples_imported, 1u);
  auto rows = bob->LocalScan("my_genes");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(std::string("BRCA1")));
  EXPECT_EQ(rows[0][1], Value(std::string("dna repair")));
}

TEST_F(CdssTest, OwnDataDoesNotRoundTrip) {
  alice->LocalInsert("my_genes", {Value("BRCA1"), Value("dna repair")});
  ASSERT_TRUE(alice->Publish().ok());
  auto report = alice->Import();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tuples_imported, 0u);
  EXPECT_EQ(alice->LocalScan("my_genes").size(), 1u);
}

TEST_F(CdssTest, ConflictResolvedByTrustPriority) {
  // Both annotate the same gene differently; the shared key includes only
  // the gene, so the two versions collide at import time (§II).
  alice->LocalInsert("my_genes", {Value("MYC"), Value("proto-oncogene")});
  ASSERT_TRUE(alice->Publish().ok());
  bob->LocalInsert("my_genes", {Value("MYC"), Value("transcription factor")});
  ASSERT_TRUE(bob->Publish().ok());

  // Bob imports alice's higher-trust version: alice wins, bob's local copy
  // is replaced.
  auto bob_report = bob->Import();
  ASSERT_TRUE(bob_report.ok());
  EXPECT_EQ(bob_report->conflicts_found, 1u);
  EXPECT_EQ(bob_report->conflicts_kept_mine, 0u);
  auto bob_rows = bob->LocalScan("my_genes");
  ASSERT_EQ(bob_rows.size(), 1u);
  EXPECT_EQ(bob_rows[0][1], Value(std::string("proto-oncogene")));
}

TEST_F(CdssTest, HigherTrustKeepsOwnVersionOnImport) {
  bob->LocalInsert("my_genes", {Value("MYC"), Value("transcription factor")});
  ASSERT_TRUE(bob->Publish().ok());
  alice->LocalInsert("my_genes", {Value("MYC"), Value("proto-oncogene")});
  // Alice (priority 1) imports bob's (priority 2) conflicting tuple: alice
  // keeps hers.
  auto report = alice->Import();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->conflicts_found, 1u);
  EXPECT_EQ(report->conflicts_kept_mine, 1u);
  auto rows = alice->LocalScan("my_genes");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value(std::string("proto-oncogene")));
}

TEST_F(CdssTest, MultipleEpochsAccumulate) {
  alice->LocalInsert("my_genes", {Value("A1"), Value("f1")});
  ASSERT_TRUE(alice->Publish().ok());
  alice->LocalInsert("my_genes", {Value("A2"), Value("f2")});
  ASSERT_TRUE(alice->Publish().ok());
  auto report = bob->Import();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tuples_imported, 2u);
}

TEST_F(CdssTest, PublishNothingFails) {
  EXPECT_FALSE(alice->Publish().ok());
}

TEST_F(CdssTest, MappingWithFilterImportsSubset) {
  SchemaMapping m;
  m.name = "only-repair";
  m.target_relation = "my_genes";
  m.sql = "SELECT gene, function, origin, origin_priority FROM gene_ann "
          "WHERE function = 'dna repair'";
  Participant carol(dep.get(), 2, "carol", 3);
  storage::RelationDef local;
  local.name = "my_genes";
  local.schema = storage::Schema(
      {{"gene", ValueType::kString}, {"function", ValueType::kString}}, 1);
  carol.CreateLocalRelation(local);
  carol.BindLocalToShared("my_genes", "gene_ann");
  carol.AddMapping(m);

  alice->LocalInsert("my_genes", {Value("BRCA1"), Value("dna repair")});
  alice->LocalInsert("my_genes", {Value("MYC"), Value("proto-oncogene")});
  ASSERT_TRUE(alice->Publish().ok());

  auto report = carol.Import();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->tuples_imported, 1u);
  auto rows = carol.LocalScan("my_genes");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value(std::string("BRCA1")));
}

}  // namespace
}  // namespace orchestra::cdss
