// Regression tests for the RPC lifecycle layer (net/rpc.h): every completion
// callback handed to the async RPC plumbing is released when its call
// resolves — by reply, deadline, orphan reaping, or teardown — and the
// pending-call tables drain to empty once the system is quiescent.
//
// The seed's implementation leaked ~1620 allocations per test run: replica
// retry loops were built from a shared_ptr<std::function> that captured
// itself (a reference cycle LeakSanitizer flags), and cancelled deadline
// events kept their closures queued in the simulator until their timestamp.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "deploy/deployment.h"
#include "net/rpc.h"
#include "storage/publisher.h"
#include "storage/schema.h"
#include "storage/service.h"

namespace orchestra::storage {
namespace {

RelationDef SimpleRelation(const std::string& name, uint32_t partitions = 8) {
  RelationDef def;
  def.name = name;
  def.schema = Schema({{"x", ValueType::kString}, {"y", ValueType::kString}}, 1);
  def.num_partitions = partitions;
  return def;
}

Tuple Row(const std::string& x, const std::string& y) {
  return {Value(x), Value(y)};
}

std::unique_ptr<deploy::Deployment> MakeCluster(size_t nodes = 4,
                                                int replication = 3) {
  deploy::DeploymentOptions opts;
  opts.num_nodes = nodes;
  opts.replication = replication;
  return std::make_unique<deploy::Deployment>(opts);
}

// The counting hook is process-global, so snapshot it per test: the delta
// must return to zero once this test's calls have all resolved.
class RpcLifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override { baseline_alive_ = net::RpcStats::callbacks_alive(); }

  int64_t CallbacksAliveDelta() const {
    return net::RpcStats::callbacks_alive() - baseline_alive_;
  }

  int64_t baseline_alive_ = 0;
};

// The headline regression: N publish/retrieve rounds leave every pending-call
// table empty and no completion callback alive.
TEST_F(RpcLifecycleTest, PublishBatchesDrainPendingTables) {
  constexpr int kBatches = 8;
  auto dep = MakeCluster();
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());

  Epoch epoch = 0;
  for (int b = 0; b < kBatches; ++b) {
    UpdateBatch batch;
    for (int i = 0; i < 16; ++i) {
      batch["R"].push_back(
          Update::Insert(Row("k" + std::to_string(b * 16 + i), "v")));
    }
    // Same via-node each time: gossip is off, so the epoch counter only
    // advances locally at the publishing node.
    auto e = dep->Publish(0, std::move(batch));
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    epoch = *e;
  }
  auto rows = dep->Retrieve(1, "R", epoch);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), static_cast<size_t>(kBatches * 16));

  // Quiescent: nothing pending anywhere, no callback outlives its call.
  EXPECT_EQ(dep->PendingRpcCount(), 0u);
  for (size_t i = 0; i < dep->size(); ++i) {
    EXPECT_EQ(dep->storage(i).pending_rpc_count(), 0u) << "node " << i;
    EXPECT_EQ(dep->storage(i).active_scan_count(), 0u) << "node " << i;
    EXPECT_EQ(dep->query(i).active_root_count(), 0u) << "node " << i;
    EXPECT_EQ(dep->query(i).buffered_message_count(), 0u) << "node " << i;
  }
  EXPECT_EQ(CallbacksAliveDelta(), 0);
}

// Started calls must be accounted as resolved exactly once.
TEST_F(RpcLifecycleTest, EveryCallResolvesExactlyOnce) {
  auto dep = MakeCluster();
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  UpdateBatch batch;
  batch["R"] = {Update::Insert(Row("a", "1")), Update::Insert(Row("b", "2"))};
  ASSERT_TRUE(dep->Publish(0, std::move(batch)).ok());

  for (size_t i = 0; i < dep->size(); ++i) {
    const auto& c = dep->storage(i).rpc_counters();
    EXPECT_EQ(c.started, c.completed + c.timed_out + c.reaped + c.cancelled)
        << "node " << i;
    EXPECT_EQ(c.timed_out, 0u) << "node " << i;
  }
}

// Orphan reaping: killing a node resolves calls addressed to it with
// Unavailable as soon as the connection drop is detected — the caller's
// replica retry succeeds and nothing waits out a deadline.
TEST_F(RpcLifecycleTest, PeerFailureReapsOrphanedCalls) {
  auto dep = MakeCluster(5, 3);
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  UpdateBatch batch;
  for (int i = 0; i < 32; ++i) {
    batch["R"].push_back(Update::Insert(Row("k" + std::to_string(i), "v")));
  }
  auto epoch = dep->Publish(0, std::move(batch));
  ASSERT_TRUE(epoch.ok());

  dep->KillNode(3);
  auto rows = dep->Retrieve(1, "R", *epoch);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 32u);

  EXPECT_EQ(dep->PendingRpcCount(), 0u);
  EXPECT_EQ(CallbacksAliveDelta(), 0);
}

// Fail-stop death releases the dead node's own state: its outstanding calls
// and queries are dropped — without invoking callbacks, since nothing may
// execute on a halted node — instead of lingering until teardown.
TEST_F(RpcLifecycleTest, KillNodeReleasesDeadNodesOwnState) {
  auto dep = MakeCluster();
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  UpdateBatch batch;
  batch["R"] = {Update::Insert(Row("a", "1")), Update::Insert(Row("b", "2"))};
  bool fired = false;
  dep->publisher(2).PublishBatch(std::move(batch),
                                 [&](Status, Epoch) { fired = true; });
  EXPECT_GT(dep->storage(2).pending_rpc_count(), 0u);  // in flight

  dep->KillNode(2);
  EXPECT_EQ(dep->storage(2).pending_rpc_count(), 0u);
  EXPECT_EQ(dep->query(2).active_root_count(), 0u);
  EXPECT_FALSE(fired);  // dropped, not invoked

  dep->RunFor(1 * sim::kMicrosPerSec);
  EXPECT_EQ(dep->PendingRpcCount(), 0u);
  EXPECT_EQ(CallbacksAliveDelta(), 0);
}

// Per-call deadlines: a hung node (connection stays open, inbox not drained)
// cannot pin a call forever — the deadline resolves it with TimedOut and
// releases the callback.
TEST_F(RpcLifecycleTest, DeadlineResolvesCallsToHungNode) {
  auto dep = MakeCluster();
  dep->network().HangNode(2);

  bool fired = false;
  Status got;
  dep->storage(0).Call(
      2, kGetCoordinator, "",
      [&](Status st, const std::string&) {
        fired = true;
        got = st;
      },
      2 * sim::kMicrosPerSec);
  ASSERT_TRUE(dep->RunUntil([&] { return fired; }, 10 * sim::kMicrosPerSec));
  EXPECT_TRUE(got.IsTimedOut()) << got.ToString();
  EXPECT_EQ(dep->storage(0).pending_rpc_count(), 0u);
  EXPECT_EQ(dep->storage(0).rpc_counters().timed_out, 1u);
  EXPECT_EQ(CallbacksAliveDelta(), 0);
}

// A cancelled deadline must release its closure immediately: a resolved call
// may not pin memory in the simulator until its far-future timestamp.
TEST_F(RpcLifecycleTest, ResolvedCallLeavesNoEventBehind) {
  auto dep = MakeCluster();
  size_t quiescent = dep->sim().pending_events();
  bool fired = false;
  dep->storage(0).Call(1, kGetCoordinator, "",
                       [&](Status, const std::string&) { fired = true; });
  ASSERT_TRUE(dep->RunUntil([&] { return fired; }));
  // Nothing new outstanding: the reply resolved the call and freed the
  // deadline's closure (stale heap entries are fine, closures are not).
  EXPECT_LE(dep->sim().pending_events(), quiescent);
  EXPECT_EQ(CallbacksAliveDelta(), 0);
}

// Teardown mid-flight: destroying a deployment with calls outstanding drops
// their callbacks without invoking them (the services they capture are being
// destroyed too) and leaves nothing alive.
TEST_F(RpcLifecycleTest, TeardownReleasesOutstandingCallbacks) {
  auto dep = MakeCluster();
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  UpdateBatch batch;
  batch["R"] = {Update::Insert(Row("a", "1"))};
  bool fired = false;
  dep->publisher(0).PublishBatch(std::move(batch),
                                 [&](Status, Epoch) { fired = true; });
  EXPECT_GT(dep->PendingRpcCount(), 0u);  // in flight, sim not stepped
  dep.reset();
  EXPECT_FALSE(fired);
  EXPECT_EQ(CallbacksAliveDelta(), 0);
}

// CancelAll resolves (and invokes) every outstanding callback with the given
// status — including retry-chain continuations that try to reissue calls,
// which must themselves resolve before CancelAll returns.
TEST_F(RpcLifecycleTest, CancelAllInvokesEveryOutstandingCallback) {
  auto dep = MakeCluster();
  net::RpcClient rpc(&dep->host(0), net::ServiceId::kStorage, kReply);

  int plain = 0, chain = 0;
  Status chain_status;
  rpc.Call(1, kGetCoordinator, "",
           [&](Status st, const std::string&) { plain += st.IsAborted() ? 1 : 0; });
  rpc.CallFirst({1, 2, 3}, kGetCoordinator, "",
                [&](Status st, const std::string&) {
                  chain += 1;
                  chain_status = st;
                });
  EXPECT_EQ(rpc.pending_count(), 2u);

  rpc.CancelAll(Status::Aborted("shutting down"));
  EXPECT_EQ(rpc.pending_count(), 0u);
  EXPECT_EQ(plain, 1);
  // The failover continuation retried replicas 2 and 3 inside CancelAll's
  // drain; the user callback still fired exactly once, with the last error.
  EXPECT_EQ(chain, 1);
  EXPECT_TRUE(chain_status.IsAborted()) << chain_status.ToString();
  EXPECT_EQ(CallbacksAliveDelta(), 0);
}

// Replica failover is cycle-free: exhausting every replica reports the
// failure and releases the whole retry chain.
TEST_F(RpcLifecycleTest, ReplicaFailoverExhaustionReleasesChain) {
  auto dep = MakeCluster();
  bool fired = false;
  Status got;
  // Epoch 99 exists nowhere; every replica answers NotFound, the failover
  // chain must unwind completely, and the definitive NotFound (not a
  // flattened Unavailable) reaches the caller — the publisher's coordinator
  // walk-back distinguishes the two.
  dep->storage(0).GetCoordinator("nope", 99, [&](Status st, CoordinatorRecord) {
    fired = true;
    got = st;
  });
  ASSERT_TRUE(dep->RunUntil([&] { return fired; }));
  EXPECT_TRUE(got.IsNotFound()) << got.ToString();
  EXPECT_EQ(dep->storage(0).pending_rpc_count(), 0u);
  EXPECT_EQ(CallbacksAliveDelta(), 0);
}

// Property: under randomized peer drops and restarts — with message drops
// and delays injected on the wire — the pending tables drain and
// callbacks_alive returns to zero for every seed once the system quiesces.
// Individual operations may fail (Unavailable/TimedOut); leaks may not.
TEST_F(RpcLifecycleTest, RandomChurnDrainsTablesForEverySeed) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    auto dep = MakeCluster(5, 3);
    dep->network().SeedFaults(rng.Fork(7).NextU64());
    ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok()) << seed;

    net::FaultOptions faults;
    faults.drop_prob = 0.05;
    faults.delay_prob = 0.15;
    faults.max_extra_delay_us = 30 * sim::kMicrosPerMilli;
    dep->network().SetFaultOptions(faults);

    std::vector<net::NodeId> dead;
    for (int round = 0; round < 12; ++round) {
      // Random kill (keep a majority) or restart of a previous victim.
      if (!dead.empty() && rng.OneIn(2)) {
        net::NodeId n = dead.back();
        dead.pop_back();
        dep->network().SetFaultOptions({});  // restarts repair cleanly
        dep->RestartNode(n);
        dep->network().SetFaultOptions(faults);
      } else if (dead.empty() && rng.OneIn(3)) {
        auto victim = static_cast<net::NodeId>(1 + rng.Uniform(dep->size() - 1));
        dep->KillNode(victim, /*update_routing=*/true, /*rebalance=*/true);
        dead.push_back(victim);
      }
      // Fire work through a live node; failures are acceptable outcomes.
      net::NodeId via = 0;
      UpdateBatch batch;
      for (int i = 0; i < 6; ++i) {
        batch["R"].push_back(Update::Insert(
            Row("k" + std::to_string(rng.Uniform(64)), "v" + std::to_string(round))));
      }
      auto e = dep->Publish(via, std::move(batch));
      if (e.ok()) {
        dep->Retrieve(via, "R", *e).ok();
      }
    }

    // Quiesce: faults off, everyone back, all deadlines run out.
    dep->network().SetFaultOptions({});
    for (net::NodeId n : dead) dep->RestartNode(n);
    dep->RunUntil([&] { return dep->PendingRpcCount() == 0; },
                  600 * sim::kMicrosPerSec);
    dep->RunFor(90 * sim::kMicrosPerSec);

    EXPECT_EQ(dep->PendingRpcCount(), 0u) << "seed " << seed;
    for (size_t i = 0; i < dep->size(); ++i) {
      EXPECT_EQ(dep->storage(i).pending_rpc_count(), 0u)
          << "seed " << seed << " node " << i;
      EXPECT_EQ(dep->storage(i).active_scan_count(), 0u)
          << "seed " << seed << " node " << i;
      const auto& c = dep->storage(i).rpc_counters();
      EXPECT_EQ(c.started, c.completed + c.timed_out + c.reaped + c.cancelled)
          << "seed " << seed << " node " << i;
    }
    dep.reset();
    EXPECT_EQ(CallbacksAliveDelta(), 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace orchestra::storage
