#include <gtest/gtest.h>

#include "common/serial.h"
#include "hash/hash_id.h"
#include "hash/sha1.h"

namespace orchestra {
namespace {

std::string HexDigest(const Sha1Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string s;
  for (uint8_t b : d) {
    s += kHex[b >> 4];
    s += kHex[b & 0xF];
  }
  return s;
}

// FIPS 180-1 / RFC 3174 known-answer vectors.
TEST(Sha1, KnownVectors) {
  EXPECT_EQ(HexDigest(Sha1("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(HexDigest(Sha1("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(HexDigest(Sha1("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(HexDigest(Sha1(std::string(1000000, 'a'))),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog, repeatedly. ";
  for (int i = 0; i < 6; ++i) data += data;
  Sha1Hasher h;
  size_t pos = 0;
  // Update in odd-sized pieces crossing block boundaries.
  for (size_t chunk : {1u, 63u, 64u, 65u, 100u, 1000u}) {
    h.Update(data.substr(pos, chunk));
    pos += chunk;
  }
  h.Update(data.substr(pos));
  EXPECT_EQ(HexDigest(h.Finish()), HexDigest(Sha1(data)));
}

TEST(HashId, OrderingAndEquality) {
  HashId zero = HashId::Zero();
  HashId one = HashId::FromU64(1);
  HashId max = HashId::Max();
  EXPECT_LT(zero, one);
  EXPECT_LT(one, max);
  EXPECT_EQ(zero, HashId::FromU64(0));
}

TEST(HashId, AddSubWrapAround) {
  HashId max = HashId::Max();
  HashId one = HashId::FromU64(1);
  EXPECT_EQ(max.Add(one), HashId::Zero());           // 2^160-1 + 1 wraps to 0
  EXPECT_EQ(HashId::Zero().Sub(one), max);           // 0 - 1 wraps to max
  EXPECT_EQ(one.Add(max), HashId::Zero());
}

TEST(HashId, DistanceOnRing) {
  HashId a = HashId::FromU64(100);
  HashId b = HashId::FromU64(40);
  EXPECT_EQ(a.DistanceFrom(b), HashId::FromU64(60));
  // Wrapping distance: from 100 clockwise to 40 goes the long way round.
  HashId d = b.DistanceFrom(a);
  EXPECT_EQ(d.Add(HashId::FromU64(60)), HashId::Zero());
}

TEST(HashId, DivideAndMultiply) {
  HashId v = HashId::FromU64(1000);
  EXPECT_EQ(v.DivideBy(10), HashId::FromU64(100));
  EXPECT_EQ(v.MultiplyBy(3), HashId::FromU64(3000));
  // Division truncates.
  EXPECT_EQ(HashId::FromU64(7).DivideBy(2), HashId::FromU64(3));
}

TEST(HashId, SpacePartitionTimesNCoversSpace) {
  for (uint32_t n : {1u, 2u, 3u, 7u, 16u, 100u, 255u}) {
    HashId part = HashId::SpacePartition(n);
    // n * floor(2^160/n) <= 2^160 - 1 and within n of the top.
    HashId total = part.MultiplyBy(n);
    HashId gap = HashId::Zero().Sub(total);  // 2^160 - total (mod)
    EXPECT_LT(gap, HashId::FromU64(n)) << "n=" << n;
  }
}

TEST(HashId, ClockwiseMidpoint) {
  HashId a = HashId::FromU64(10);
  HashId b = HashId::FromU64(20);
  EXPECT_EQ(a.ClockwiseMidpoint(b), HashId::FromU64(15));
  // Wrapping midpoint: from max-5 to +5 (distance 10) -> midpoint at 0.
  HashId near_top = HashId::Max().Sub(HashId::FromU64(4));  // 2^160-5
  HashId mid = near_top.ClockwiseMidpoint(HashId::FromU64(5));
  EXPECT_EQ(mid, HashId::Zero());
}

TEST(HashId, InRangeBasic) {
  HashId lo = HashId::FromU64(10), hi = HashId::FromU64(20);
  EXPECT_TRUE(HashId::FromU64(10).InRange(lo, hi));
  EXPECT_TRUE(HashId::FromU64(15).InRange(lo, hi));
  EXPECT_FALSE(HashId::FromU64(20).InRange(lo, hi));
  EXPECT_FALSE(HashId::FromU64(5).InRange(lo, hi));
}

TEST(HashId, InRangeWrapping) {
  HashId lo = HashId::Max().Sub(HashId::FromU64(9));  // 2^160-10
  HashId hi = HashId::FromU64(10);
  EXPECT_TRUE(HashId::Max().InRange(lo, hi));
  EXPECT_TRUE(HashId::Zero().InRange(lo, hi));
  EXPECT_TRUE(HashId::FromU64(9).InRange(lo, hi));
  EXPECT_FALSE(HashId::FromU64(10).InRange(lo, hi));
  EXPECT_FALSE(HashId::FromU64(1000).InRange(lo, hi));
}

TEST(HashId, EmptyRangeMeansFullRing) {
  HashId p = HashId::FromU64(123);
  EXPECT_TRUE(HashId::FromU64(5).InRange(p, p));
  EXPECT_TRUE(HashId::Max().InRange(p, p));
}

TEST(HashId, HexRoundTripStructure) {
  HashId h = HashId::OfBytes("orchestra");
  EXPECT_EQ(h.ToHex().size(), 40u);
  EXPECT_EQ(h.ToShortHex(), h.ToHex().substr(0, 8));
}

TEST(HashId, EncodeDecodeRoundTrip) {
  HashId h = HashId::OfBytes("some key");
  Writer w;
  h.EncodeTo(&w);
  Reader r(w.data());
  HashId back;
  ASSERT_TRUE(HashId::DecodeFrom(&r, &back).ok());
  EXPECT_EQ(h, back);
}

TEST(HashId, BigEndianBytesPreserveOrder) {
  HashId a = HashId::OfBytes("a"), b = HashId::OfBytes("b");
  std::string ab, bb;
  a.AppendBigEndian(&ab);
  b.AppendBigEndian(&bb);
  EXPECT_EQ(ab.size(), 20u);
  EXPECT_EQ(a < b, ab < bb);
  EXPECT_EQ(HashId::FromBigEndianBytes(ab), a);
  EXPECT_EQ(HashId::FromBigEndianBytes(bb), b);
}

TEST(HashId, DigestMatchesOfBytes) {
  EXPECT_EQ(HashId::FromDigest(Sha1("x")), HashId::OfBytes("x"));
  EXPECT_NE(HashId::OfBytes("x"), HashId::OfBytes("y"));
}

class PartitionProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PartitionProperty, EveryHashLandsInItsPartition) {
  uint32_t n = GetParam();
  for (int i = 0; i < 200; ++i) {
    HashId h = HashId::OfBytes("key-" + std::to_string(i));
    // PartitionIndexFor agrees with the boundary arithmetic.
    uint32_t idx = 0;
    HashId width = HashId::SpacePartition(n);
    while (idx + 1 < n && width.MultiplyBy(idx + 1) <= h) ++idx;
    HashId begin = width.MultiplyBy(idx);
    EXPECT_LE(begin, h);
    if (idx + 1 < n) {
      EXPECT_LT(h, width.MultiplyBy(idx + 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Partitions, PartitionProperty,
                         ::testing::Values(1u, 2u, 5u, 16u, 33u, 128u));

}  // namespace
}  // namespace orchestra
