#include "tests/churn_harness.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/serial.h"
#include "deploy/deployment.h"
#include "storage/keys.h"
#include "storage/page.h"
#include "storage/publisher.h"
#include "wal/wal.h"

namespace orchestra::churn {
namespace {

using storage::Epoch;
using storage::Tuple;
using storage::Update;
using storage::UpdateBatch;
using storage::Value;

constexpr const char* kRelations[] = {"churn_a", "churn_b"};
constexpr size_t kNumRelations = 2;

/// Key -> payload string; the reference state of one relation.
using ModelState = std::map<int64_t, std::string>;

storage::RelationDef MakeDef(const std::string& name, uint32_t partitions) {
  storage::RelationDef def;
  def.name = name;
  def.schema = storage::Schema(
      {{"k", storage::ValueType::kInt64}, {"v", storage::ValueType::kString}},
      /*key_arity=*/1);
  def.num_partitions = partitions;
  return def;
}

Tuple Row(int64_t k, std::string v) {
  return Tuple{Value(k), Value(std::move(v))};
}

/// Everything one churn run owns; RunChurn drives it.
struct Driver {
  explicit Driver(const ChurnOptions& o)
      : opts(o), rng(o.seed), workload_rng(rng.Fork(1)), fault_rng(rng.Fork(2)) {
    deploy::DeploymentOptions dopts;
    dopts.num_nodes = o.num_nodes;
    dopts.replication = o.replication;
    dopts.seed = o.seed;
    dopts.gc_keep_epochs = o.gc_keep_epochs;
    dopts.store.compaction_min_records = o.compaction_min_records;
    dopts.store.wal.sync_every_records = o.wal_sync_every;
    dopts.store.checkpoint_every_records = o.wal_checkpoint_every;
    dopts.fence_after_us = o.fence_after_us;
    dep = std::make_unique<deploy::Deployment>(dopts);
    dep->network().SeedFaults(rng.Fork(3).NextU64());
    report.seed = o.seed;
  }

  const ChurnOptions& opts;
  Rng rng, workload_rng, fault_rng;
  std::unique_ptr<deploy::Deployment> dep;
  ChurnReport report;

  // Reference model: per relation, the current state plus every retained
  // committed snapshot (pruned below the GC watermark). With concurrent
  // publishers, committed batches are applied in COMMIT-EPOCH order; if a
  // force-aborted ticket may have committed invisibly (its publish outlived
  // the abort), the history snapshots are invalidated until fresh commits
  // rebuild them — the current-state model stays exact because a retried
  // batch rewrites the same keys.
  ModelState current[kNumRelations];
  std::map<Epoch, ModelState> history[kNumRelations];
  Epoch committed_epoch = 0;
  Epoch watermark = 0;
  std::set<Epoch> committed_epochs_seen;  // torn-epoch detector

  std::set<net::NodeId> dead;
  std::set<net::NodeId> hung;
  // Deliberately abandoned writer nodes: killed shortly after a round's
  // submissions and NEVER restarted (disjoint from `dead`, which repairs
  // revive). Their claims are exactly the wedge abandonment fencing exists
  // to break; their uncommitted batches are forgiven, their key stripes
  // adopted from storage truth at every convergence point.
  std::set<net::NodeId> abandoned;
  size_t abandons_scheduled = 0;  // budget incl. kills still in flight
  std::set<std::pair<net::NodeId, net::NodeId>> partitions;  // directed links
  // Liveness oracle state: the confirmed-epoch frontier observed at the
  // previous convergence point. It must strictly advance between points
  // whenever at least one live, non-abandoned writer exists.
  Epoch last_frontier = 0;
  // A force-aborted ticket's publish may still commit LATER (e.g. when its
  // hung node drains); snapshots taken between the abort and that landing
  // can miss its updates. Tainted history is dropped at the next convergence
  // point, after the cluster has fully drained.
  bool history_tainted = false;
  bool failed = false;

  // --- plumbing -------------------------------------------------------------

  void Trace(const char* fmt, ...) {
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    char line[384];
    std::snprintf(line, sizeof(line), "t=%" PRId64 " dig=%016" PRIx64 " %s\n",
                  dep->sim().now(), dep->sim().trace_digest(), buf);
    report.trace += line;
  }

  bool Fail(const std::string& what) {
    if (failed) return false;
    failed = true;
    report.ok = false;
    report.failure =
        "churn[seed=" + std::to_string(opts.seed) + "] " + what +
        " (rerun RunChurn with this seed to replay the identical trace)";
    report.trace += "FAIL " + what + "\n";
    return false;
  }

  net::NodeId RandomLive(Rng& r) {
    // Hung nodes are excluded: they are alive at the TCP level but drain
    // nothing, so neither a client pinning a session there nor a new fault
    // targeting them makes sense.
    std::vector<net::NodeId> live;
    for (size_t i = 0; i < dep->size(); ++i) {
      auto n = static_cast<net::NodeId>(i);
      if (dep->IsAlive(n) && !dep->network().IsHung(n)) live.push_back(n);
    }
    return live[r.Uniform(live.size())];
  }

  void SetChurnFaults(bool on) {
    net::FaultOptions f;
    if (on) {
      f.drop_prob = opts.drop_prob;
      f.delay_prob = opts.delay_prob;
      f.max_extra_delay_us = opts.max_extra_delay_us;
    }
    dep->network().SetFaultOptions(f);
  }

  void RebalanceAll() {
    for (size_t i = 0; i < dep->size(); ++i) {
      auto n = static_cast<net::NodeId>(i);
      // A hung machine is wedged: nothing executes on it until it unhangs.
      if (dep->IsAlive(n) && !dep->network().IsHung(n)) {
        dep->storage(i).RebalanceTo(dep->snapshot());
      }
    }
  }

  void Settle() {
    dep->RunUntil([this] { return dep->PendingRpcCount() == 0; },
                  300 * sim::kMicrosPerSec);
    dep->RunFor(500 * sim::kMicrosPerMilli);  // one-way stragglers
  }

  // --- workload -------------------------------------------------------------

  /// Number of disjoint participants driving the workload.
  size_t Publishers() const { return std::max<size_t>(1, opts.publishers); }

  /// Participant `p` updates only its own key stripe, so concurrent update
  /// logs are disjoint (the paper's participant model).
  UpdateBatch MakeBatch(size_t publisher, size_t rel_idx) {
    UpdateBatch batch;
    const int64_t stripe =
        static_cast<int64_t>(publisher) * static_cast<int64_t>(opts.keys);
    auto& updates = batch[kRelations[rel_idx]];
    for (size_t i = 0; i < opts.updates_per_round; ++i) {
      auto k = stripe + static_cast<int64_t>(workload_rng.Uniform(opts.keys));
      if (workload_rng.NextDouble() < opts.delete_prob) {
        updates.push_back(Update::Delete(Row(k, std::string())));
      } else {
        updates.push_back(Update::Insert(Row(k, workload_rng.AlphaString(24))));
      }
    }
    return batch;
  }

  /// A force-aborted ticket's publish may still have committed invisibly;
  /// every retained history snapshot below such a commit could be missing
  /// its updates. Drop them — commits from here on rebuild history.
  void InvalidateHistory() {
    bool had = false;
    for (size_t r = 0; r < kNumRelations; ++r) {
      had = had || !history[r].empty();
      history[r].clear();
    }
    if (had) report.history_invalidations += 1;
  }

  void ApplyToModel(size_t rel_idx, const UpdateBatch& batch, Epoch epoch) {
    for (const Update& u : batch.at(kRelations[rel_idx])) {
      int64_t k = u.tuple[0].AsInt64();
      if (u.kind == Update::Kind::kDelete) {
        current[rel_idx].erase(k);
      } else {
        current[rel_idx][k] = u.tuple[1].AsString();
      }
    }
    if (epoch < committed_epoch) {
      // A ticket from an earlier attempt resolved late, below epochs already
      // applied. The current-state merge above is exact (stripes are
      // disjoint) but the retained snapshots between `epoch` and
      // `committed_epoch` were taken without it.
      InvalidateHistory();
      return;
    }
    for (size_t r = 0; r < kNumRelations; ++r) history[r][epoch] = current[r];
    committed_epoch = epoch;
    if (opts.gc_keep_epochs > 0 && epoch > opts.gc_keep_epochs) {
      watermark = epoch - opts.gc_keep_epochs;
      for (size_t r = 0; r < kNumRelations; ++r) {
        auto& h = history[r];
        h.erase(h.begin(), h.lower_bound(watermark));
      }
    }
  }

  /// Publishes the round's batches — `publish_window` per participant, all
  /// participants submitting CONCURRENTLY through their own pinned sessions
  /// — retrying each participant's uncommitted suffix (idempotently, in
  /// order, with the same batches, through the SAME participant: the
  /// discipline multi-writer epoch claims rely on) across faults and kills.
  /// Escalates to a convergence repair before the final attempts. Commits
  /// are consumed per participant (suffix-order asserted per session),
  /// checked for torn epochs across participants, and applied to the model
  /// in commit-epoch order.
  ///
  /// Ownership rules under faults: a participant whose node is HUNG or DEAD
  /// skips attempts until it unhangs/restarts (repair guarantees both by the
  /// last attempts). Batches are never re-pinned to another participant: a
  /// failed publish that already issued writes keeps its epoch claim, and
  /// only the SAME participant's retry can recommit that epoch byte-
  /// identically — re-pinning would wedge on the pinned claim (and, with a
  /// takeover, could leave the dead twin's partial writes as orphans).
  bool PublishRound() {
    const size_t window = std::max<size_t>(1, opts.publish_window);
    const size_t pubs = Publishers();

    struct Owned {
      size_t rel = 0;
      UpdateBatch batch;
    };
    struct Writer {
      net::NodeId node = net::kInvalidNode;  // pinned session node
      std::vector<Owned> work;
      size_t committed = 0;  // committed prefix of `work`
    };
    std::vector<Writer> writers(pubs);
    for (size_t p = 0; p < pubs; ++p) {
      writers[p].node =
          pubs == 1 ? RandomLive(rng) : static_cast<net::NodeId>(p);
      writers[p].work.reserve(window);
      for (size_t i = 0; i < window; ++i) {
        size_t rel = workload_rng.Uniform(kNumRelations);
        writers[p].work.push_back(Owned{rel, MakeBatch(p, rel)});
      }
    }

    const size_t total = window * pubs;
    // Batches still owed by writers that have NOT been abandoned (an
    // abandoned writer never restarts, so its suffix is unfulfillable).
    auto RemainingLive = [this](const std::vector<Writer>& ws) {
      size_t remaining = 0;
      for (const Writer& wr : ws) {
        if (abandoned.count(wr.node) > 0) continue;
        remaining += wr.work.size() - wr.committed;
      }
      return remaining;
    };
    const sim::SimTime budget =
        deploy::Deployment::kDefaultWaitUs +
        60 * sim::kMicrosPerSec * static_cast<sim::SimTime>(total);
    for (size_t attempt = 0; attempt < opts.publish_attempts; ++attempt) {
      if (attempt == opts.publish_attempts - 2) {
        // Last-but-one attempt: repair the cluster first. If the batches
        // still cannot publish on a healthy quiescent cluster, that is a bug.
        Repair();
      }
      struct Submitted {
        size_t publisher = 0;
        std::vector<client::Ticket> tickets;
      };
      std::vector<Submitted> subs;
      for (size_t p = 0; p < pubs; ++p) {
        Writer& wr = writers[p];
        if (wr.committed == wr.work.size()) continue;
        if (!dep->IsAlive(wr.node) || dep->network().IsHung(wr.node)) {
          continue;  // wait for restart/unhang/repair — never re-pin
        }
        Submitted s;
        s.publisher = p;
        s.tickets.reserve(wr.work.size() - wr.committed);
        client::Session& sess = dep->session(wr.node);
        for (size_t i = wr.committed; i < wr.work.size(); ++i) {
          s.tickets.push_back(sess.Submit(wr.work[i].batch));  // copy: retried
        }
        subs.push_back(std::move(s));
      }
      bool all_resolved = dep->RunUntil(
          [&subs] {
            for (const Submitted& s : subs) {
              for (const client::Ticket& t : s.tickets) {
                if (!t.epoch.done()) return false;
              }
            }
            return true;
          },
          budget);
      if (!all_resolved) {
        // A ticket can only stay unresolved if something wedged (e.g. a
        // session node hung mid-flight); cut those sessions loose. The
        // aborted publishes may still commit invisibly once the node drains,
        // so history snapshots taken from here on are not trustworthy until
        // the next convergence point has drained everything.
        for (const Submitted& s : subs) {
          bool stuck = false;
          for (const client::Ticket& t : s.tickets) stuck = stuck || !t.epoch.done();
          if (stuck) {
            dep->session(writers[s.publisher].node)
                .AbortInFlight(Status::TimedOut("churn round budget expired"));
          }
        }
        history_tainted = true;
      }
      // Consume each participant's committed prefix; collect commits for
      // epoch-ordered model application and the torn-epoch check.
      struct Commit {
        Epoch epoch = 0;
        size_t publisher = 0;
        size_t idx = 0;
      };
      std::vector<Commit> commits;
      for (const Submitted& s : subs) {
        Writer& wr = writers[s.publisher];
        size_t done_now = 0;
        for (const client::Ticket& t : s.tickets) {
          if (!t.epoch.ok()) break;
          commits.push_back(
              Commit{t.epoch.value(), s.publisher, wr.committed + done_now});
          ++done_now;
        }
        // Pipeline ordering invariant: nothing behind a failed ticket may
        // have committed (the session fails the whole suffix).
        for (size_t j = done_now; j < s.tickets.size(); ++j) {
          if (s.tickets[j].epoch.ok()) {
            return Fail("session committed ticket " + std::to_string(j) +
                        " after an earlier ticket failed");
          }
        }
        if (done_now < s.tickets.size()) {
          const Status& fs = s.tickets[done_now].epoch.status();
          Trace("pubfail p=%zu idx=%zu err=%s", s.publisher,
                wr.committed + done_now, fs.ToString().c_str());
          // An AMBIGUOUS failure (timeout, fence, anything past the claim
          // gate) may have landed coordinator records before dying. Those
          // records are visible to epoch-snapshot reads at every epoch from
          // the torn attempt until the same-batch retry recommits — the
          // documented same-batch-retry contract keeps CURRENT reads exact,
          // but model snapshots taken inside the torn window are not
          // storage-truth. Only a claim-gate refusal (the slot was taken
          // before anything was written) is unambiguous and taint-free.
          bool prewrite_refusal =
              fs.IsEpochTaken() ||
              (fs.IsUnavailable() &&
               fs.message().find("claimed by") != std::string::npos);
          if (!prewrite_refusal) history_tainted = true;
        }
        if (done_now > 0) {
          report.pipelined_commits += done_now - 1;
          if (subs.size() > 1) report.concurrent_commits += done_now;
        }
        wr.committed += done_now;
      }
      // Torn-epoch detector: one epoch, one committed writer — ever.
      std::sort(commits.begin(), commits.end(),
                [](const Commit& a, const Commit& b) { return a.epoch < b.epoch; });
      for (const Commit& c : commits) {
        if (!committed_epochs_seen.insert(c.epoch).second) {
          return Fail("torn epoch " + std::to_string(c.epoch) +
                      ": two committed publishes report the same epoch");
        }
        Writer& wr = writers[c.publisher];
        ApplyToModel(wr.work[c.idx].rel, wr.work[c.idx].batch, c.epoch);
        report.publishes_ok += 1;
        Trace("pub p=%zu rel=%zu via=%u ep=%llu win=%zu", c.publisher,
              wr.work[c.idx].rel, wr.node,
              static_cast<unsigned long long>(c.epoch), window);
      }
      // An abandoned writer's uncommitted suffix is forgiven: it is never
      // restarted, so those batches can never commit — requiring them would
      // deadlock the round. Everything owned by a live (or revivable) writer
      // must still land. With no abandonment this is total == committed.
      if (RemainingLive(writers) == 0) {
        if (attempt > 0) report.publish_retries += attempt;
        return true;
      }
      // Let in-flight fault fallout (timeouts, drop notices) clear a little
      // before retrying; publishes are idempotent per batch + participant.
      dep->RunFor(2 * sim::kMicrosPerSec);
    }
    WedgeDump();
    return Fail("publish failed after " + std::to_string(opts.publish_attempts) +
                " attempts: " + std::to_string(RemainingLive(writers)) +
                " of " + std::to_string(total) +
                " batches uncommitted by non-abandoned writers");
  }

  // --- faults ---------------------------------------------------------------

  void MaybeScheduleKill() {
    if (fault_rng.NextDouble() >= opts.kill_prob) return;
    if (dead.size() + hung.size() >= opts.max_dead) return;
    net::NodeId victim = RandomLive(fault_rng);
    // Crash-point arming happens NOW (not inside the kill lambda): the
    // victim's very next checkpoint publish / segment seal during the round
    // trips the hook, so the scheduled crash lands on a store whose WAL is in
    // the half-finished state the hook models. The `prob > 0 &&` short-
    // circuits keep default-0 runs from drawing fault_rng at all, preserving
    // the byte-identical traces of seeds recorded before these knobs existed.
    if (opts.crash_mid_checkpoint_prob > 0 &&
        fault_rng.NextDouble() < opts.crash_mid_checkpoint_prob) {
      if (wal::Wal* w = dep->storage(victim).store().wal()) {
        w->FailNextCheckpointPublish();
        Trace("arm-ckpt-fail node=%u", victim);
      }
    }
    if (opts.crash_mid_seal_prob > 0 &&
        fault_rng.NextDouble() < opts.crash_mid_seal_prob) {
      if (wal::Wal* w = dep->storage(victim).store().wal()) {
        w->SkipNextSealSync();
        Trace("arm-seal-skip node=%u", victim);
      }
    }
    sim::SimTime delay = static_cast<sim::SimTime>(
        fault_rng.Uniform(3 * sim::kMicrosPerSec));  // lands mid-publish
    dep->sim().ScheduleAfter(delay, [this, victim] {
      if (!dep->IsAlive(victim)) return;
      dep->KillNode(victim, /*update_routing=*/true, /*rebalance=*/false);
      dead.insert(victim);
      report.kills += 1;
      Trace("kill node=%u", victim);
    });
  }

  void MaybeScheduleHang() {
    if (opts.hang_prob <= 0 || fault_rng.NextDouble() >= opts.hang_prob) return;
    if (dead.size() + hung.size() >= opts.max_dead) return;
    net::NodeId victim = RandomLive(fault_rng);
    sim::SimTime delay = static_cast<sim::SimTime>(
        fault_rng.Uniform(3 * sim::kMicrosPerSec));  // lands mid-publish
    dep->sim().ScheduleAfter(delay, [this, victim] {
      if (!dep->IsAlive(victim) || dep->network().IsHung(victim)) return;
      dep->network().HangNode(victim);
      hung.insert(victim);
      report.hangs += 1;
      Trace("hang node=%u", victim);
    });
  }

  /// Schedules a deliberate ABANDONMENT: a writer node is killed a random
  /// sub-publish interval after the round's submissions — landing after its
  /// epoch claim hit the wire, usually with orphan writes behind it — and is
  /// never restarted. Without fencing that claim wedges every competitor
  /// forever; with fence_after_us armed the survivors retire it. The
  /// `abandon_prob > 0` short-circuit keeps pre-knob seeds from drawing
  /// fault_rng, preserving their byte-identical traces. At least one writer
  /// always survives un-abandoned (otherwise the liveness contract is void).
  void MaybeScheduleAbandon() {
    if (opts.abandon_prob <= 0 || abandons_scheduled >= opts.max_abandoned) {
      return;
    }
    if (fault_rng.NextDouble() >= opts.abandon_prob) return;
    const size_t pubs = Publishers();
    if (pubs < 2 || abandons_scheduled + 1 >= pubs) return;
    std::vector<net::NodeId> eligible;  // live, unhung, un-abandoned writers
    for (size_t p = 0; p < pubs; ++p) {
      auto n = static_cast<net::NodeId>(p);
      if (dep->IsAlive(n) && !dep->network().IsHung(n) &&
          abandoned.count(n) == 0) {
        eligible.push_back(n);
      }
    }
    if (eligible.empty()) return;
    net::NodeId victim = eligible[fault_rng.Uniform(eligible.size())];
    abandons_scheduled += 1;
    sim::SimTime delay = static_cast<sim::SimTime>(
        fault_rng.Uniform(3 * sim::kMicrosPerSec));  // lands mid-publish
    dep->sim().ScheduleAfter(delay, [this, victim] {
      if (!dep->IsAlive(victim) || abandoned.count(victim) > 0) return;
      dep->KillNode(victim, /*update_routing=*/true, /*rebalance=*/false);
      abandoned.insert(victim);
      report.abandons += 1;
      // Its final in-flight publish may have committed invisibly (the
      // coordinator write can land before the kill); snapshots spanning the
      // abandon are untrustworthy until the stripe is adopted below.
      history_tainted = true;
      Trace("abandon node=%u", victim);
    });
  }

  /// Full diagnostic dump on a suspected wedge: every live node's epoch-claim
  /// table ('E' records, decoded) plus every writer's fault/pipeline state.
  /// Appends to the trace so it rides along in ChurnReport::failure repros.
  void WedgeDump() {
    Trace("wedge-dump begin");
    for (size_t i = 0; i < dep->size(); ++i) {
      auto n = static_cast<net::NodeId>(i);
      if (!dep->IsAlive(n)) continue;
      const auto& store = dep->storage(i).store();
      for (auto it = store.SeekPrefix(storage::keys::TagPrefix(storage::keys::kClaimTag));
           it.Valid(); it.Next()) {
        Epoch e = 0;
        if (!storage::keys::ParseClaim(it.key(), &e)) continue;
        storage::EpochClaimRecord rec;
        Reader r(it.value());
        if (!storage::EpochClaimRecord::DecodeFrom(&r, &rec).ok()) continue;
        Trace("claim node=%u ep=%llu owner=%u from=%u committed=%d fenced=%d "
              "nonce=%llu",
              n, static_cast<unsigned long long>(e), rec.participant, rec.node,
              rec.committed ? 1 : 0, rec.fenced ? 1 : 0,
              static_cast<unsigned long long>(rec.nonce));
      }
    }
    const size_t pubs = Publishers();
    for (size_t p = 0; p < pubs; ++p) {
      auto n = static_cast<net::NodeId>(p);
      const auto& ps = dep->publisher(p).pipeline_stats();
      Trace("writer p=%zu node=%u alive=%d hung=%d abandoned=%d pubs=%llu "
            "conflicts=%llu rebases=%llu fences=%llu fskips=%llu",
            p, n, dep->IsAlive(n) ? 1 : 0, dep->network().IsHung(n) ? 1 : 0,
            abandoned.count(n) > 0 ? 1 : 0,
            static_cast<unsigned long long>(ps.publishes),
            static_cast<unsigned long long>(ps.epoch_conflicts),
            static_cast<unsigned long long>(ps.rebases),
            static_cast<unsigned long long>(ps.fences),
            static_cast<unsigned long long>(ps.fenced_skips));
    }
    Trace("wedge-dump end");
  }

  /// One trace line per restart with the node's cumulative WAL recovery
  /// counters (replayed tail records, snapshot records, torn tails/bytes).
  /// Cumulative is deliberate: the line both documents what this recovery
  /// cost and folds every prior crash into the digest-checked trace.
  void TraceRecovery(net::NodeId n) {
    wal::Wal* w = dep->storage(n).store().wal();
    if (w == nullptr) return;
    const wal::WalStats& s = w->stats();
    Trace("recover node=%u replayed=%llu snap=%llu torn=%llu torn_bytes=%llu",
          n, static_cast<unsigned long long>(s.replayed_records),
          static_cast<unsigned long long>(s.snapshot_records),
          static_cast<unsigned long long>(s.torn_tails),
          static_cast<unsigned long long>(s.torn_bytes));
  }

  void MaybeRestartDead() {
    for (auto it = dead.begin(); it != dead.end();) {
      if (fault_rng.NextDouble() < opts.restart_prob) {
        net::NodeId n = *it;
        it = dead.erase(it);
        dep->RestartNode(n);
        report.restarts += 1;
        Trace("restart node=%u", n);
        TraceRecovery(n);
      } else {
        ++it;
      }
    }
    for (auto it = hung.begin(); it != hung.end();) {
      if (fault_rng.NextDouble() < opts.unhang_prob) {
        net::NodeId n = *it;
        it = hung.erase(it);
        dep->network().UnhangNode(n);
        report.unhangs += 1;
        Trace("unhang node=%u", n);
      } else {
        ++it;
      }
    }
  }

  void MaybeSchedulePartition() {
    if (opts.partition_prob <= 0 ||
        fault_rng.NextDouble() >= opts.partition_prob) {
      return;
    }
    if (partitions.size() >= opts.max_partitions) return;
    net::NodeId from = RandomLive(fault_rng);
    net::NodeId to = RandomLive(fault_rng);
    if (from == to || partitions.count({from, to}) > 0) return;
    partitions.insert({from, to});
    dep->network().SetDropOverride(from, to, opts.partition_drop_prob);
    report.partitions += 1;
    Trace("partition %u->%u p=%.2f", from, to, opts.partition_drop_prob);
  }

  void MaybeHealPartitions() {
    for (auto it = partitions.begin(); it != partitions.end();) {
      if (fault_rng.NextDouble() < opts.partition_heal_prob) {
        dep->network().ClearDropOverride(it->first, it->second);
        report.partition_heals += 1;
        Trace("heal %u->%u", it->first, it->second);
        it = partitions.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Full repair: faults off, partitions healed, everyone unhung +
  /// restarted, re-replicated, quiescent.
  void Repair() {
    SetChurnFaults(false);
    for (const auto& [from, to] : partitions) {
      dep->network().ClearDropOverride(from, to);
      report.partition_heals += 1;
      Trace("heal %u->%u (repair)", from, to);
    }
    partitions.clear();
    for (auto it = hung.begin(); it != hung.end();) {
      net::NodeId n = *it;
      it = hung.erase(it);
      dep->network().UnhangNode(n);
      report.unhangs += 1;
      Trace("unhang node=%u (repair)", n);
    }
    for (auto it = dead.begin(); it != dead.end();) {
      net::NodeId n = *it;
      it = dead.erase(it);
      dep->RestartNode(n);
      report.restarts += 1;
      Trace("restart node=%u (repair)", n);
      TraceRecovery(n);
    }
    RebalanceAll();
    Settle();
  }

  // --- convergence checks ---------------------------------------------------

  /// Erases every abandoned writer's key stripe from `m`. History checks
  /// compare through this: an abandoned stripe's orphan rows can be adopted
  /// into a snapshot and then purged by a LATER fence, so no snapshot of it
  /// is stable — the stripe's current state stays covered via adoption, its
  /// history is simply out of contract.
  void EraseAbandonedStripes(ModelState* m) const {
    for (net::NodeId n : abandoned) {
      const int64_t lo_k =
          static_cast<int64_t>(n) * static_cast<int64_t>(opts.keys);
      m->erase(m->lower_bound(lo_k),
               m->upper_bound(lo_k + static_cast<int64_t>(opts.keys) - 1));
    }
  }

  bool CheckRelationAt(size_t rel_idx, Epoch epoch, const ModelState& expect,
                       const storage::KeyFilter& filter, const char* what,
                       bool exclude_abandoned_stripes = false) {
    net::NodeId via = RandomLive(rng);
    Result<std::vector<Tuple>> rows =
        dep->Retrieve(via, kRelations[rel_idx], epoch, filter);
    for (int retry = 0; retry < 3 && !rows.ok(); ++retry) {
      // Transport-level stragglers from the churn phase may fail the first
      // scan; a wrong ANSWER is never retried.
      dep->RunFor(2 * sim::kMicrosPerSec);
      rows = dep->Retrieve(RandomLive(rng), kRelations[rel_idx], epoch, filter);
    }
    if (!rows.ok()) {
      return Fail(std::string(what) + " retrieve(" + kRelations[rel_idx] +
                  ", e=" + std::to_string(epoch) +
                  ") failed: " + rows.status().ToString());
    }
    ModelState got;
    for (const Tuple& t : *rows) {
      if (t.size() != 2) return Fail("retrieved tuple with wrong arity");
      int64_t k = t[0].AsInt64();
      if (!got.emplace(k, t[1].AsString()).second) {
        return Fail(std::string(what) + " duplicate key " + std::to_string(k) +
                    " in retrieval of " + kRelations[rel_idx]);
      }
    }
    ModelState want;
    for (const auto& [k, v] : expect) {
      std::string kb;
      Value(k).EncodeOrdered(&kb);
      if (filter.Matches(kb)) want.emplace(k, v);
    }
    if (exclude_abandoned_stripes) {
      EraseAbandonedStripes(&got);
      EraseAbandonedStripes(&want);
    }
    if (got != want) {
      std::string detail;
      for (const auto& [k, v] : got) {
        auto it = want.find(k);
        if (it == want.end()) detail += " extra:" + std::to_string(k);
        else if (it->second != v) detail += " diff:" + std::to_string(k);
      }
      for (const auto& [k, v] : want) {
        if (!got.count(k)) detail += " missing:" + std::to_string(k);
      }
      return Fail(std::string(what) + " mismatch on " + kRelations[rel_idx] +
                  " at e=" + std::to_string(epoch) + ": got " +
                  std::to_string(got.size()) + " rows, want " +
                  std::to_string(want.size()) + " [" + detail + " ]");
    }
    return true;
  }

  /// An abandoned writer's stripe is storage-truth: the writer died
  /// mid-publish and is never retried, so whether its final in-flight batch
  /// committed invisibly is unknowable client-side. Nothing else ever writes
  /// the stripe (stripes are disjoint, and a fence purge only removes
  /// UNcommitted orphans), so whatever a repaired cluster serves for it at
  /// the check epoch is final — adopt it into the model instead of guessing.
  /// History snapshots spanning the abandon were already dropped via
  /// history_tainted; snapshots taken after this adoption are exact again.
  bool AdoptAbandonedStripes() {
    if (abandoned.empty()) return true;
    const size_t pubs = Publishers();
    for (size_t p = 0; p < pubs; ++p) {
      auto n = static_cast<net::NodeId>(p);
      if (abandoned.count(n) == 0) continue;
      const int64_t lo_k =
          static_cast<int64_t>(p) * static_cast<int64_t>(opts.keys);
      const int64_t hi_k = lo_k + static_cast<int64_t>(opts.keys) - 1;
      storage::KeyFilter f;
      f.all = false;
      Value(lo_k).EncodeOrdered(&f.lo);
      Value(hi_k).EncodeOrdered(&f.hi);  // KeyFilter bounds are inclusive
      for (size_t r = 0; r < kNumRelations; ++r) {
        Result<std::vector<Tuple>> rows =
            dep->Retrieve(RandomLive(rng), kRelations[r], committed_epoch, f);
        for (int retry = 0; retry < 3 && !rows.ok(); ++retry) {
          dep->RunFor(2 * sim::kMicrosPerSec);
          rows = dep->Retrieve(RandomLive(rng), kRelations[r], committed_epoch, f);
        }
        if (!rows.ok()) {
          return Fail("adopt abandoned stripe p=" + std::to_string(p) +
                      " retrieve failed: " + rows.status().ToString());
        }
        auto& cur = current[r];
        cur.erase(cur.lower_bound(lo_k), cur.upper_bound(hi_k));
        for (const Tuple& t : *rows) {
          if (t.size() != 2) return Fail("adopted tuple with wrong arity");
          cur[t[0].AsInt64()] = t[1].AsString();
        }
      }
    }
    return true;
  }

  bool ConvergeAndCheck() {
    Repair();
    if (history_tainted) {
      // Give any publish whose ticket was force-aborted — but whose state
      // machine survived (e.g. parked in a claim-stall loop on a formerly
      // hung node) — time to land its commit, then drop the snapshots it may
      // have invalidated. Snapshots from here on are trustworthy again; the
      // current-state model is exact throughout (a retried batch rewrites
      // the same keys, so the newest version per key matches the model).
      dep->RunFor(40 * sim::kMicrosPerSec);
      Settle();
      InvalidateHistory();
      history_tainted = false;
    }
    // After a full repair — every node unhung/restarted and the network
    // quiescent — the pending RPC tables must have drained: calls to a hung
    // node resolve through their deadlines, calls to a dead one through
    // orphan reaping. A leftover entry is a lifecycle leak.
    if (dep->PendingRpcCount() != 0) {
      return Fail("pending RPC tables did not drain after repair: " +
                  std::to_string(dep->PendingRpcCount()) + " entries");
    }
    // Liveness oracle (deterministic global-progress check): between two
    // convergence points every round published at least one batch from a
    // live writer, so as long as ANY live, non-abandoned writer exists the
    // confirmed-epoch frontier must have advanced — abandonment fencing
    // (when armed) guarantees an abandoned claim cannot pin it. A flat
    // frontier is a wedged chain: dump the claim tables and fail.
    {
      const size_t pubs = Publishers();
      bool any_live_writer = pubs == 1;  // single-writer mode re-picks a node
      for (size_t p = 0; p < pubs && !any_live_writer; ++p) {
        if (abandoned.count(static_cast<net::NodeId>(p)) == 0) {
          any_live_writer = true;
        }
      }
      Epoch frontier = dep->MaxKnownEpoch();
      if (any_live_writer && frontier <= last_frontier) {
        WedgeDump();
        return Fail("liveness: confirmed-epoch frontier wedged at " +
                    std::to_string(frontier) + " since the previous check");
      }
      last_frontier = frontier;
    }
    // Nudge GC so the storage measurements below see a retired state even if
    // re-replication just resurrected already-retired records. Abandoned
    // nodes stay dead through checks; nothing executes on them.
    if (watermark > 0) {
      for (size_t i = 0; i < dep->size(); ++i) {
        if (!dep->IsAlive(static_cast<net::NodeId>(i))) continue;
        dep->storage(i).SetGcWatermark(watermark);
      }
      Settle();
    }
    report.checks += 1;
    if (!AdoptAbandonedStripes()) return false;

    storage::KeyFilter all;
    for (size_t r = 0; r < kNumRelations; ++r) {
      if (!CheckRelationAt(r, committed_epoch, current[r], all, "current")) {
        return false;
      }
    }
    // Sargable range retrieval: a random inclusive key range.
    {
      size_t r = rng.Uniform(kNumRelations);
      auto lo = static_cast<int64_t>(rng.Uniform(opts.keys));
      auto hi = lo + static_cast<int64_t>(rng.Uniform(opts.keys - lo) + 1);
      storage::KeyFilter f;
      f.all = false;
      Value(lo).EncodeOrdered(&f.lo);
      Value(hi).EncodeOrdered(&f.hi);
      if (!CheckRelationAt(r, committed_epoch, current[r], f, "range")) {
        return false;
      }
    }
    // Historical epoch at-or-above the watermark.
    if (opts.verify_history && !history[0].empty()) {
      std::vector<Epoch> eligible;
      for (const auto& [e, st] : history[0]) {
        if (e >= watermark && e != committed_epoch) eligible.push_back(e);
      }
      if (!eligible.empty()) {
        Epoch e = eligible[rng.Uniform(eligible.size())];
        size_t r = rng.Uniform(kNumRelations);
        if (!CheckRelationAt(r, e, history[r].at(e), all, "history",
                             /*exclude_abandoned_stripes=*/true)) {
          return false;
        }
      }
    }
    return CheckStorageBounds();
  }

  bool CheckStorageBounds() {
    uint64_t live_total = 0;
    double worst_dead = 0;
    uint64_t retired = 0;
    const uint64_t floor = opts.compaction_min_records;
    for (size_t i = 0; i < dep->size(); ++i) {
      // Abandoned nodes are dead at check time (repairs never revive them);
      // their stores are frozen mid-crash, so the bounds below don't apply.
      if (!dep->IsAlive(static_cast<net::NodeId>(i))) continue;
      const auto& store = dep->storage(i).store();
      live_total += store.entry_count();
      const auto& gs = dep->storage(i).gc_stats();
      retired = retired + gs.retired_data + gs.retired_pages +
                gs.retired_coords + gs.retired_tombstones;
      // Bounded garbage: compaction keeps the log within ~2x live once past
      // the compaction floor (below it compaction never runs, by design).
      uint64_t log = store.log_size();
      uint64_t cap = std::max<uint64_t>(
          floor + floor / 4, 2 * store.entry_count() + store.entry_count() / 4 + 64);
      if (log > cap) {
        return Fail("store log unbounded on node " + std::to_string(i) +
                    ": log=" + std::to_string(log) +
                    " live=" + std::to_string(store.entry_count()));
      }
      if (log >= floor) {
        worst_dead = std::max(worst_dead, store.dead_fraction());
        if (store.dead_fraction() > 0.55) {
          return Fail("dead fraction above compaction threshold on node " +
                      std::to_string(i) + ": " +
                      std::to_string(store.dead_fraction()));
        }
      }
    }
    report.max_live_records = std::max(report.max_live_records, live_total);
    report.max_dead_fraction = std::max(report.max_dead_fraction, worst_dead);
    report.gc_retired_total = retired;

    if (opts.gc_keep_epochs > 0) {
      // Live records must not grow with the round count: versions retained
      // per key/page/coordinator are bounded by the watermark window, and
      // copies per record by the node count (old replicas keep theirs until
      // the version is superseded). With concurrent publishers the EFFECTIVE
      // watermark is the min across participants, which can lag the newest
      // mark by roughly a round of everyone else's commits — widen the
      // window (and the key space, which is striped) accordingly.
      const uint64_t pubs = Publishers();
      const uint64_t win_batches = std::max<size_t>(1, opts.publish_window);
      uint64_t window = opts.gc_keep_epochs + 4 +
                        (pubs > 1 ? 2 * pubs * win_batches + 4 : 0);
      uint64_t per_rel = opts.keys * pubs * window +         // tuple versions
                         opts.num_partitions * window +      // page versions
                         window +                            // coordinators
                         opts.num_partitions + opts.num_nodes + 1;  // I + M
      uint64_t bound = opts.num_nodes * kNumRelations * per_rel +
                       opts.num_nodes * window +  // epoch claims ('E')
                       512;
      report.live_record_bound = bound;
      if (live_total > bound) {
        return Fail("GC failed to bound storage: live=" +
                    std::to_string(live_total) +
                    " bound=" + std::to_string(bound) + " after " +
                    std::to_string(report.publishes_ok) + " publishes");
      }
    }
    Trace("check ep=%llu live=%llu deadmax=%.3f",
          static_cast<unsigned long long>(committed_epoch),
          static_cast<unsigned long long>(live_total), worst_dead);
    return true;
  }

  // --- top level ------------------------------------------------------------

  bool Setup() {
    if (Publishers() > opts.num_nodes) {
      return Fail("publishers (" + std::to_string(Publishers()) +
                  ") exceed num_nodes (" + std::to_string(opts.num_nodes) + ")");
    }
    for (size_t r = 0; r < kNumRelations; ++r) {
      Status st = dep->CreateRelation(
          0, MakeDef(kRelations[r], opts.num_partitions));
      if (!st.ok()) return Fail("create relation: " + st.ToString());
    }
    // Initial population of every participant's stripe so overwrites
    // dominate from round one.
    const size_t all_keys = opts.keys * Publishers();
    for (size_t r = 0; r < kNumRelations; ++r) {
      UpdateBatch batch;
      auto& ups = batch[kRelations[r]];
      for (size_t k = 0; k < all_keys; ++k) {
        ups.push_back(Update::Insert(
            Row(static_cast<int64_t>(k), workload_rng.AlphaString(24))));
      }
      auto e = dep->Publish(0, batch);
      if (!e.ok()) return Fail("initial publish: " + e.status().ToString());
      committed_epochs_seen.insert(*e);
      for (size_t i = 0; i < all_keys; ++i) {
        current[r][static_cast<int64_t>(i)] = ups[i].tuple[1].AsString();
      }
      for (size_t rr = 0; rr < kNumRelations; ++rr) {
        history[rr][*e] = current[rr];
      }
      committed_epoch = *e;
    }
    Trace("setup ep=%llu pubs=%zu", static_cast<unsigned long long>(committed_epoch),
          Publishers());
    return true;
  }

  void Run() {
    if (!Setup()) return;
    for (size_t round = 1; round <= opts.rounds && !failed; ++round) {
      MaybeRestartDead();
      MaybeHealPartitions();
      SetChurnFaults(true);
      MaybeScheduleKill();
      MaybeScheduleHang();
      MaybeSchedulePartition();
      MaybeScheduleAbandon();
      if (!PublishRound()) break;
      // Flush any still-pending scheduled kill/hang, then re-replicate
      // around it so the next round's publish can reach every record.
      dep->RunFor(3 * sim::kMicrosPerSec + 1);
      if (!dead.empty() || !abandoned.empty()) {
        SetChurnFaults(false);
        RebalanceAll();
        Settle();
      }
      Trace("round=%zu ep=%llu dead=%zu hung=%zu", round,
            static_cast<unsigned long long>(committed_epoch), dead.size(),
            hung.size());
      if (round % opts.check_every == 0 || round == opts.rounds) {
        if (!ConvergeAndCheck()) break;
      }
    }
    if (!failed) report.ok = true;
    report.final_epoch = committed_epoch;
    for (size_t i = 0; i < dep->size(); ++i) {
      const auto& ps = dep->publisher(i).pipeline_stats();
      report.epoch_conflicts += ps.epoch_conflicts;
      report.rebases += ps.rebases + ps.chain_rebases;
      report.fences += ps.fences;
      report.fenced_skips += ps.fenced_skips;
      const auto& sc = dep->storage(i).counters();
      report.coordinator_conflicts += sc.coordinator_conflicts;
      report.fences_granted += sc.fences_granted;
      report.fenced_writes_refused += sc.fenced_writes_refused;
      report.purged_orphans += sc.purged_orphans;
      if (wal::Wal* w = dep->storage(i).store().wal()) {
        const wal::WalStats& ws = w->stats();
        report.wal_replayed_records += ws.replayed_records;
        report.wal_torn_tails += ws.torn_tails;
        report.wal_torn_bytes += ws.torn_bytes;
        report.wal_checkpoints += ws.checkpoints;
      }
    }
    report.faults_dropped = dep->network().fault_counters().dropped;
    report.faults_delayed = dep->network().fault_counters().delayed;
    report.trace_digest = dep->sim().trace_digest();
    report.sim_seconds = static_cast<double>(dep->sim().now()) / 1e6;
    char tail[160];
    std::snprintf(tail, sizeof(tail),
                  "end ok=%d ep=%llu dig=%016" PRIx64 " drops=%llu delays=%llu\n",
                  report.ok ? 1 : 0,
                  static_cast<unsigned long long>(report.final_epoch),
                  report.trace_digest,
                  static_cast<unsigned long long>(report.faults_dropped),
                  static_cast<unsigned long long>(report.faults_delayed));
    report.trace += tail;
  }
};

}  // namespace

ChurnReport RunChurn(const ChurnOptions& options) {
  Driver driver(options);
  driver.Run();
  return driver.report;
}

std::string ReplayCommand(const ChurnReport& report,
                          const std::string& test_filter) {
  return "ORCHESTRA_CHURN_SEED=" + std::to_string(report.seed) +
         " ./churn_test --gtest_filter=" + test_filter;
}

std::string TraceTail(const ChurnReport& report, size_t max_lines) {
  const std::string& t = report.trace;
  if (t.empty() || max_lines == 0) return std::string();
  // Trace lines are '\n'-terminated; scan backwards for the cut point.
  size_t newlines = 0;
  size_t i = t.size();
  while (i > 0) {
    --i;
    if (t[i] == '\n') {
      ++newlines;
      if (newlines > max_lines) return t.substr(i + 1);
    }
  }
  return t;
}

}  // namespace orchestra::churn
