#include "tests/churn_harness.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "deploy/deployment.h"
#include "storage/publisher.h"

namespace orchestra::churn {
namespace {

using storage::Epoch;
using storage::Tuple;
using storage::Update;
using storage::UpdateBatch;
using storage::Value;

constexpr const char* kRelations[] = {"churn_a", "churn_b"};
constexpr size_t kNumRelations = 2;

/// Key -> payload string; the reference state of one relation.
using ModelState = std::map<int64_t, std::string>;

storage::RelationDef MakeDef(const std::string& name, uint32_t partitions) {
  storage::RelationDef def;
  def.name = name;
  def.schema = storage::Schema(
      {{"k", storage::ValueType::kInt64}, {"v", storage::ValueType::kString}},
      /*key_arity=*/1);
  def.num_partitions = partitions;
  return def;
}

Tuple Row(int64_t k, std::string v) {
  return Tuple{Value(k), Value(std::move(v))};
}

/// Everything one churn run owns; RunChurn drives it.
struct Driver {
  explicit Driver(const ChurnOptions& o)
      : opts(o), rng(o.seed), workload_rng(rng.Fork(1)), fault_rng(rng.Fork(2)) {
    deploy::DeploymentOptions dopts;
    dopts.num_nodes = o.num_nodes;
    dopts.replication = o.replication;
    dopts.seed = o.seed;
    dopts.gc_keep_epochs = o.gc_keep_epochs;
    dopts.store.compaction_min_records = o.compaction_min_records;
    dep = std::make_unique<deploy::Deployment>(dopts);
    dep->network().SeedFaults(rng.Fork(3).NextU64());
  }

  const ChurnOptions& opts;
  Rng rng, workload_rng, fault_rng;
  std::unique_ptr<deploy::Deployment> dep;
  ChurnReport report;

  // Reference model: per relation, the current state plus every retained
  // committed snapshot (pruned below the GC watermark).
  ModelState current[kNumRelations];
  std::map<Epoch, ModelState> history[kNumRelations];
  Epoch committed_epoch = 0;
  Epoch watermark = 0;

  std::set<net::NodeId> dead;
  std::set<net::NodeId> hung;
  bool failed = false;

  // --- plumbing -------------------------------------------------------------

  void Trace(const char* fmt, ...) {
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    char line[384];
    std::snprintf(line, sizeof(line), "t=%" PRId64 " dig=%016" PRIx64 " %s\n",
                  dep->sim().now(), dep->sim().trace_digest(), buf);
    report.trace += line;
  }

  bool Fail(const std::string& what) {
    if (failed) return false;
    failed = true;
    report.ok = false;
    report.failure =
        "churn[seed=" + std::to_string(opts.seed) + "] " + what +
        " (rerun RunChurn with this seed to replay the identical trace)";
    report.trace += "FAIL " + what + "\n";
    return false;
  }

  net::NodeId RandomLive(Rng& r) {
    // Hung nodes are excluded: they are alive at the TCP level but drain
    // nothing, so neither a client pinning a session there nor a new fault
    // targeting them makes sense.
    std::vector<net::NodeId> live;
    for (size_t i = 0; i < dep->size(); ++i) {
      auto n = static_cast<net::NodeId>(i);
      if (dep->IsAlive(n) && !dep->network().IsHung(n)) live.push_back(n);
    }
    return live[r.Uniform(live.size())];
  }

  void SetChurnFaults(bool on) {
    net::FaultOptions f;
    if (on) {
      f.drop_prob = opts.drop_prob;
      f.delay_prob = opts.delay_prob;
      f.max_extra_delay_us = opts.max_extra_delay_us;
    }
    dep->network().SetFaultOptions(f);
  }

  void RebalanceAll() {
    for (size_t i = 0; i < dep->size(); ++i) {
      auto n = static_cast<net::NodeId>(i);
      // A hung machine is wedged: nothing executes on it until it unhangs.
      if (dep->IsAlive(n) && !dep->network().IsHung(n)) {
        dep->storage(i).RebalanceTo(dep->snapshot());
      }
    }
  }

  void Settle() {
    dep->RunUntil([this] { return dep->PendingRpcCount() == 0; },
                  300 * sim::kMicrosPerSec);
    dep->RunFor(500 * sim::kMicrosPerMilli);  // one-way stragglers
  }

  // --- workload -------------------------------------------------------------

  UpdateBatch MakeBatch(size_t rel_idx) {
    UpdateBatch batch;
    auto& updates = batch[kRelations[rel_idx]];
    for (size_t i = 0; i < opts.updates_per_round; ++i) {
      auto k = static_cast<int64_t>(workload_rng.Uniform(opts.keys));
      if (workload_rng.NextDouble() < opts.delete_prob) {
        updates.push_back(Update::Delete(Row(k, std::string())));
      } else {
        updates.push_back(Update::Insert(Row(k, workload_rng.AlphaString(24))));
      }
    }
    return batch;
  }

  void ApplyToModel(size_t rel_idx, const UpdateBatch& batch, Epoch epoch) {
    for (const Update& u : batch.at(kRelations[rel_idx])) {
      int64_t k = u.tuple[0].AsInt64();
      if (u.kind == Update::Kind::kDelete) {
        current[rel_idx].erase(k);
      } else {
        current[rel_idx][k] = u.tuple[1].AsString();
      }
    }
    for (size_t r = 0; r < kNumRelations; ++r) history[r][epoch] = current[r];
    committed_epoch = epoch;
    if (opts.gc_keep_epochs > 0 && epoch > opts.gc_keep_epochs) {
      watermark = epoch - opts.gc_keep_epochs;
      for (size_t r = 0; r < kNumRelations; ++r) {
        auto& h = history[r];
        h.erase(h.begin(), h.lower_bound(watermark));
      }
    }
  }

  /// Publishes the round's `publish_window` batches through one node's
  /// client::Session, retrying the uncommitted suffix (idempotently, in
  /// order, with the same batches) across faults and kills. Escalates to a
  /// convergence repair before the final attempts. With a window > 1 the
  /// batches pipeline inside the session; the harness consumes the committed
  /// prefix after each attempt and asserts commits stayed in order.
  bool PublishRound() {
    const size_t window = std::max<size_t>(1, opts.publish_window);
    std::vector<std::pair<size_t, UpdateBatch>> work;
    work.reserve(window);
    for (size_t i = 0; i < window; ++i) {
      size_t rel = workload_rng.Uniform(kNumRelations);
      work.emplace_back(rel, MakeBatch(rel));
    }
    size_t committed = 0;  // batches applied to the model so far
    const sim::SimTime budget =
        deploy::Deployment::kDefaultWaitUs +
        60 * sim::kMicrosPerSec * static_cast<sim::SimTime>(window);
    for (size_t attempt = 0; attempt < opts.publish_attempts; ++attempt) {
      if (attempt == opts.publish_attempts - 2) {
        // Last-but-one attempt: repair the cluster first. If the batches
        // still cannot publish on a healthy quiescent cluster, that is a bug.
        Repair();
      }
      net::NodeId via = RandomLive(rng);
      client::Session& sess = dep->session(via);
      std::vector<client::Ticket> tickets;
      tickets.reserve(work.size() - committed);
      for (size_t i = committed; i < work.size(); ++i) {
        tickets.push_back(sess.Submit(work[i].second));  // copy: retries reuse
      }
      bool all_resolved = dep->RunUntil(
          [&tickets] {
            for (const client::Ticket& t : tickets) {
              if (!t.epoch.done()) return false;
            }
            return true;
          },
          budget);
      if (!all_resolved) {
        // A ticket can only stay unresolved if something wedged (e.g. the
        // session node hung mid-flight); cut it loose and retry elsewhere.
        sess.AbortInFlight(Status::TimedOut("churn round budget expired"));
      }
      size_t done_now = 0;
      for (const client::Ticket& t : tickets) {
        if (!t.epoch.ok()) break;
        size_t idx = committed + done_now;
        ApplyToModel(work[idx].first, work[idx].second, t.epoch.value());
        report.publishes_ok += 1;
        if (done_now > 0) report.pipelined_commits += 1;
        Trace("pub rel=%zu via=%u ep=%llu win=%zu", work[idx].first, via,
              static_cast<unsigned long long>(t.epoch.value()), window);
        ++done_now;
      }
      // Pipeline ordering invariant: nothing behind a failed ticket may have
      // committed (the session fails the whole suffix).
      for (size_t j = done_now; j < tickets.size(); ++j) {
        if (tickets[j].epoch.ok()) {
          return Fail("session committed ticket " + std::to_string(j) +
                      " after an earlier ticket failed");
        }
      }
      committed += done_now;
      if (committed == work.size()) {
        if (attempt > 0) report.publish_retries += attempt;
        return true;
      }
      // Let in-flight fault fallout (timeouts, drop notices) clear a little
      // before retrying; publishes are idempotent per batch.
      dep->RunFor(2 * sim::kMicrosPerSec);
    }
    return Fail("publish failed after " + std::to_string(opts.publish_attempts) +
                " attempts: " + std::to_string(work.size() - committed) +
                " of " + std::to_string(work.size()) + " batches uncommitted");
  }

  // --- faults ---------------------------------------------------------------

  void MaybeScheduleKill() {
    if (fault_rng.NextDouble() >= opts.kill_prob) return;
    if (dead.size() + hung.size() >= opts.max_dead) return;
    net::NodeId victim = RandomLive(fault_rng);
    sim::SimTime delay = static_cast<sim::SimTime>(
        fault_rng.Uniform(3 * sim::kMicrosPerSec));  // lands mid-publish
    dep->sim().ScheduleAfter(delay, [this, victim] {
      if (!dep->IsAlive(victim)) return;
      dep->KillNode(victim, /*update_routing=*/true, /*rebalance=*/false);
      dead.insert(victim);
      report.kills += 1;
      Trace("kill node=%u", victim);
    });
  }

  void MaybeScheduleHang() {
    if (opts.hang_prob <= 0 || fault_rng.NextDouble() >= opts.hang_prob) return;
    if (dead.size() + hung.size() >= opts.max_dead) return;
    net::NodeId victim = RandomLive(fault_rng);
    sim::SimTime delay = static_cast<sim::SimTime>(
        fault_rng.Uniform(3 * sim::kMicrosPerSec));  // lands mid-publish
    dep->sim().ScheduleAfter(delay, [this, victim] {
      if (!dep->IsAlive(victim) || dep->network().IsHung(victim)) return;
      dep->network().HangNode(victim);
      hung.insert(victim);
      report.hangs += 1;
      Trace("hang node=%u", victim);
    });
  }

  void MaybeRestartDead() {
    for (auto it = dead.begin(); it != dead.end();) {
      if (fault_rng.NextDouble() < opts.restart_prob) {
        net::NodeId n = *it;
        it = dead.erase(it);
        dep->RestartNode(n);
        report.restarts += 1;
        Trace("restart node=%u", n);
      } else {
        ++it;
      }
    }
    for (auto it = hung.begin(); it != hung.end();) {
      if (fault_rng.NextDouble() < opts.unhang_prob) {
        net::NodeId n = *it;
        it = hung.erase(it);
        dep->network().UnhangNode(n);
        report.unhangs += 1;
        Trace("unhang node=%u", n);
      } else {
        ++it;
      }
    }
  }

  /// Full repair: faults off, everyone unhung + restarted, re-replicated,
  /// quiescent.
  void Repair() {
    SetChurnFaults(false);
    for (auto it = hung.begin(); it != hung.end();) {
      net::NodeId n = *it;
      it = hung.erase(it);
      dep->network().UnhangNode(n);
      report.unhangs += 1;
      Trace("unhang node=%u (repair)", n);
    }
    for (auto it = dead.begin(); it != dead.end();) {
      net::NodeId n = *it;
      it = dead.erase(it);
      dep->RestartNode(n);
      report.restarts += 1;
      Trace("restart node=%u (repair)", n);
    }
    RebalanceAll();
    Settle();
  }

  // --- convergence checks ---------------------------------------------------

  bool CheckRelationAt(size_t rel_idx, Epoch epoch, const ModelState& expect,
                       const storage::KeyFilter& filter, const char* what) {
    net::NodeId via = RandomLive(rng);
    Result<std::vector<Tuple>> rows =
        dep->Retrieve(via, kRelations[rel_idx], epoch, filter);
    for (int retry = 0; retry < 3 && !rows.ok(); ++retry) {
      // Transport-level stragglers from the churn phase may fail the first
      // scan; a wrong ANSWER is never retried.
      dep->RunFor(2 * sim::kMicrosPerSec);
      rows = dep->Retrieve(RandomLive(rng), kRelations[rel_idx], epoch, filter);
    }
    if (!rows.ok()) {
      return Fail(std::string(what) + " retrieve(" + kRelations[rel_idx] +
                  ", e=" + std::to_string(epoch) +
                  ") failed: " + rows.status().ToString());
    }
    ModelState got;
    for (const Tuple& t : *rows) {
      if (t.size() != 2) return Fail("retrieved tuple with wrong arity");
      int64_t k = t[0].AsInt64();
      if (!got.emplace(k, t[1].AsString()).second) {
        return Fail(std::string(what) + " duplicate key " + std::to_string(k) +
                    " in retrieval of " + kRelations[rel_idx]);
      }
    }
    ModelState want;
    for (const auto& [k, v] : expect) {
      std::string kb;
      Value(k).EncodeOrdered(&kb);
      if (filter.Matches(kb)) want.emplace(k, v);
    }
    if (got != want) {
      return Fail(std::string(what) + " mismatch on " + kRelations[rel_idx] +
                  " at e=" + std::to_string(epoch) + ": got " +
                  std::to_string(got.size()) + " rows, want " +
                  std::to_string(want.size()));
    }
    return true;
  }

  bool ConvergeAndCheck() {
    Repair();
    // After a full repair — every node unhung/restarted and the network
    // quiescent — the pending RPC tables must have drained: calls to a hung
    // node resolve through their deadlines, calls to a dead one through
    // orphan reaping. A leftover entry is a lifecycle leak.
    if (dep->PendingRpcCount() != 0) {
      return Fail("pending RPC tables did not drain after repair: " +
                  std::to_string(dep->PendingRpcCount()) + " entries");
    }
    // Nudge GC so the storage measurements below see a retired state even if
    // re-replication just resurrected already-retired records.
    if (watermark > 0) {
      for (size_t i = 0; i < dep->size(); ++i) {
        dep->storage(i).SetGcWatermark(watermark);
      }
      Settle();
    }
    report.checks += 1;

    storage::KeyFilter all;
    for (size_t r = 0; r < kNumRelations; ++r) {
      if (!CheckRelationAt(r, committed_epoch, current[r], all, "current")) {
        return false;
      }
    }
    // Sargable range retrieval: a random inclusive key range.
    {
      size_t r = rng.Uniform(kNumRelations);
      auto lo = static_cast<int64_t>(rng.Uniform(opts.keys));
      auto hi = lo + static_cast<int64_t>(rng.Uniform(opts.keys - lo) + 1);
      storage::KeyFilter f;
      f.all = false;
      Value(lo).EncodeOrdered(&f.lo);
      Value(hi).EncodeOrdered(&f.hi);
      if (!CheckRelationAt(r, committed_epoch, current[r], f, "range")) {
        return false;
      }
    }
    // Historical epoch at-or-above the watermark.
    if (opts.verify_history && !history[0].empty()) {
      std::vector<Epoch> eligible;
      for (const auto& [e, st] : history[0]) {
        if (e >= watermark && e != committed_epoch) eligible.push_back(e);
      }
      if (!eligible.empty()) {
        Epoch e = eligible[rng.Uniform(eligible.size())];
        size_t r = rng.Uniform(kNumRelations);
        if (!CheckRelationAt(r, e, history[r].at(e), all, "history")) {
          return false;
        }
      }
    }
    return CheckStorageBounds();
  }

  bool CheckStorageBounds() {
    uint64_t live_total = 0;
    double worst_dead = 0;
    uint64_t retired = 0;
    const uint64_t floor = opts.compaction_min_records;
    for (size_t i = 0; i < dep->size(); ++i) {
      const auto& store = dep->storage(i).store();
      live_total += store.entry_count();
      const auto& gs = dep->storage(i).gc_stats();
      retired = retired + gs.retired_data + gs.retired_pages +
                gs.retired_coords + gs.retired_tombstones;
      // Bounded garbage: compaction keeps the log within ~2x live once past
      // the compaction floor (below it compaction never runs, by design).
      uint64_t log = store.log_size();
      uint64_t cap = std::max<uint64_t>(
          floor + floor / 4, 2 * store.entry_count() + store.entry_count() / 4 + 64);
      if (log > cap) {
        return Fail("store log unbounded on node " + std::to_string(i) +
                    ": log=" + std::to_string(log) +
                    " live=" + std::to_string(store.entry_count()));
      }
      if (log >= floor) {
        worst_dead = std::max(worst_dead, store.dead_fraction());
        if (store.dead_fraction() > 0.55) {
          return Fail("dead fraction above compaction threshold on node " +
                      std::to_string(i) + ": " +
                      std::to_string(store.dead_fraction()));
        }
      }
    }
    report.max_live_records = std::max(report.max_live_records, live_total);
    report.max_dead_fraction = std::max(report.max_dead_fraction, worst_dead);
    report.gc_retired_total = retired;

    if (opts.gc_keep_epochs > 0) {
      // Live records must not grow with the round count: versions retained
      // per key/page/coordinator are bounded by the watermark window, and
      // copies per record by the node count (old replicas keep theirs until
      // the version is superseded).
      uint64_t window = opts.gc_keep_epochs + 4;
      uint64_t per_rel = opts.keys * window +                // tuple versions
                         opts.num_partitions * window +      // page versions
                         window +                            // coordinators
                         opts.num_partitions + opts.num_nodes + 1;  // I + M
      uint64_t bound = opts.num_nodes * kNumRelations * per_rel + 512;
      report.live_record_bound = bound;
      if (live_total > bound) {
        return Fail("GC failed to bound storage: live=" +
                    std::to_string(live_total) +
                    " bound=" + std::to_string(bound) + " after " +
                    std::to_string(report.publishes_ok) + " publishes");
      }
    }
    Trace("check ep=%llu live=%llu deadmax=%.3f",
          static_cast<unsigned long long>(committed_epoch),
          static_cast<unsigned long long>(live_total), worst_dead);
    return true;
  }

  // --- top level ------------------------------------------------------------

  bool Setup() {
    for (size_t r = 0; r < kNumRelations; ++r) {
      Status st = dep->CreateRelation(
          0, MakeDef(kRelations[r], opts.num_partitions));
      if (!st.ok()) return Fail("create relation: " + st.ToString());
    }
    // Initial population so overwrites dominate from round one.
    for (size_t r = 0; r < kNumRelations; ++r) {
      UpdateBatch batch;
      auto& ups = batch[kRelations[r]];
      for (size_t k = 0; k < opts.keys; ++k) {
        ups.push_back(Update::Insert(
            Row(static_cast<int64_t>(k), workload_rng.AlphaString(24))));
      }
      auto e = dep->Publish(0, batch);
      if (!e.ok()) return Fail("initial publish: " + e.status().ToString());
      for (size_t i = 0; i < opts.keys; ++i) {
        current[r][static_cast<int64_t>(i)] = ups[i].tuple[1].AsString();
      }
      for (size_t rr = 0; rr < kNumRelations; ++rr) {
        history[rr][*e] = current[rr];
      }
      committed_epoch = *e;
    }
    Trace("setup ep=%llu", static_cast<unsigned long long>(committed_epoch));
    return true;
  }

  void Run() {
    if (!Setup()) return;
    for (size_t round = 1; round <= opts.rounds && !failed; ++round) {
      MaybeRestartDead();
      SetChurnFaults(true);
      MaybeScheduleKill();
      MaybeScheduleHang();
      if (!PublishRound()) break;
      // Flush any still-pending scheduled kill/hang, then re-replicate
      // around it so the next round's publish can reach every record.
      dep->RunFor(3 * sim::kMicrosPerSec + 1);
      if (!dead.empty()) {
        SetChurnFaults(false);
        RebalanceAll();
        Settle();
      }
      Trace("round=%zu ep=%llu dead=%zu hung=%zu", round,
            static_cast<unsigned long long>(committed_epoch), dead.size(),
            hung.size());
      if (round % opts.check_every == 0 || round == opts.rounds) {
        if (!ConvergeAndCheck()) break;
      }
    }
    if (!failed) report.ok = true;
    report.final_epoch = committed_epoch;
    report.faults_dropped = dep->network().fault_counters().dropped;
    report.faults_delayed = dep->network().fault_counters().delayed;
    report.trace_digest = dep->sim().trace_digest();
    report.sim_seconds = static_cast<double>(dep->sim().now()) / 1e6;
    char tail[160];
    std::snprintf(tail, sizeof(tail),
                  "end ok=%d ep=%llu dig=%016" PRIx64 " drops=%llu delays=%llu\n",
                  report.ok ? 1 : 0,
                  static_cast<unsigned long long>(report.final_epoch),
                  report.trace_digest,
                  static_cast<unsigned long long>(report.faults_dropped),
                  static_cast<unsigned long long>(report.faults_delayed));
    report.trace += tail;
  }
};

}  // namespace

ChurnReport RunChurn(const ChurnOptions& options) {
  Driver driver(options);
  driver.Run();
  return driver.report;
}

}  // namespace orchestra::churn
