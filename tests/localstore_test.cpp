#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "localstore/local_store.h"

namespace orchestra::localstore {
namespace {

TEST(LocalStore, PutGetOverwrite) {
  LocalStore store;
  ASSERT_TRUE(store.Put("k1", "v1").ok());
  auto v = store.Get("k1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v1");
  ASSERT_TRUE(store.Put("k1", "v2").ok());
  EXPECT_EQ(*store.Get("k1"), "v2");
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST(LocalStore, GetMissingIsNotFound) {
  LocalStore store;
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
}

TEST(LocalStore, EmptyKeyRejected) {
  LocalStore store;
  EXPECT_TRUE(store.Put("", "v").IsInvalidArgument());
}

TEST(LocalStore, DeleteIsIdempotent) {
  LocalStore store;
  store.Put("k", "v").ok();
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_FALSE(store.Contains("k"));
  ASSERT_TRUE(store.Delete("k").ok());  // again, no error
}

TEST(LocalStore, OrderedIteration) {
  LocalStore store;
  store.Put("b", "2").ok();
  store.Put("a", "1").ok();
  store.Put("c", "3").ok();
  std::string keys;
  for (auto it = store.Seek(""); it.Valid(); it.Next()) keys += it.key();
  EXPECT_EQ(keys, "abc");
}

TEST(LocalStore, SeekStartsAtLowerBound) {
  LocalStore store;
  store.Put("apple", "1").ok();
  store.Put("banana", "2").ok();
  store.Put("cherry", "3").ok();
  auto it = store.Seek("b");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "banana");
}

TEST(LocalStore, PrefixScan) {
  LocalStore store;
  store.Put("x/1", "a").ok();
  store.Put("x/2", "b").ok();
  store.Put("y/1", "c").ok();
  int count = 0;
  for (auto it = store.SeekPrefix("x/"); LocalStore::WithinPrefix(it, "x/"); it.Next()) {
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(LocalStore, BinaryKeysAndValues) {
  LocalStore store;
  std::string key("\x01\x00\xFF\x7F", 4);
  std::string value(1024, '\0');
  value[512] = 'x';
  ASSERT_TRUE(store.Put(key, value).ok());
  auto v = store.Get(key);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, value);
}

TEST(LocalStore, RecoverRebuildsIdenticalIndex) {
  LocalStore store;
  Rng rng(5);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; ++i) {
    std::string k = "key-" + std::to_string(rng.Uniform(500));
    if (rng.OneIn(4)) {
      store.Delete(k).ok();
      model.erase(k);
    } else {
      std::string v = rng.AlphaString(16);
      store.Put(k, v).ok();
      model[k] = v;
    }
  }
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_EQ(store.entry_count(), model.size());
  for (const auto& [k, v] : model) {
    auto got = store.Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, v);
  }
}

TEST(LocalStore, CompactionPreservesContentAndReclaimsLog) {
  StoreOptions opts;
  opts.compaction_min_records = 100;
  opts.compaction_garbage_ratio = 0.5;
  LocalStore store(opts);
  // Overwrite the same small key set many times -> lots of garbage.
  for (int round = 0; round < 50; ++round) {
    for (int k = 0; k < 20; ++k) {
      store.Put("k" + std::to_string(k), "round-" + std::to_string(round)).ok();
    }
  }
  EXPECT_GT(store.stats().compactions, 0u);
  EXPECT_EQ(store.entry_count(), 20u);
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(*store.Get("k" + std::to_string(k)), "round-49");
  }
  // After compaction, recovery still works.
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_EQ(store.entry_count(), 20u);
}

TEST(LocalStore, StatsTrackOperations) {
  LocalStore store;
  store.Put("a", "1").ok();
  store.Get("a").ok();
  store.Get("missing").ok();
  store.Delete("a").ok();
  EXPECT_EQ(store.stats().puts, 1u);
  EXPECT_EQ(store.stats().gets, 2u);
  EXPECT_EQ(store.stats().deletes, 1u);
  EXPECT_EQ(store.stats().live_records, 0u);
}

TEST(LocalStore, GetViewIsZeroCopyAndMatchesGet) {
  LocalStore store;
  store.Put("k1", "value-one").ok();
  store.Put("k2", std::string(2048, 'z')).ok();
  auto v1 = store.GetView("k1");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, "value-one");
  EXPECT_EQ(*store.Get("k2"), *store.GetView("k2"));
  EXPECT_TRUE(store.GetView("absent").status().IsNotFound());
  // The view aliases the stored record: stable across reads.
  auto again = store.GetView("k1");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(v1->data(), again->data());
}

TEST(LocalStore, PrefixUpperBoundComputation) {
  EXPECT_EQ(LocalStore::PrefixUpperBound("abc"), "abd");
  EXPECT_EQ(LocalStore::PrefixUpperBound(""), "");
  std::string ff2("\xff\xff", 2);
  EXPECT_EQ(LocalStore::PrefixUpperBound(ff2), "");
  std::string aff("a\xff", 2);
  EXPECT_EQ(LocalStore::PrefixUpperBound(aff), "b");
}

TEST(LocalStore, SeekPrefixStopsAtComputedEndBound) {
  LocalStore store;
  // "x0" sorts immediately after every "x/..." key; without a real end
  // bound the iterator would run into it.
  store.Put("x/a", "1").ok();
  store.Put("x/b", "2").ok();
  store.Put("x0", "3").ok();
  store.Put("y", "4").ok();
  std::vector<std::string> seen;
  for (auto it = store.SeekPrefix("x/"); it.Valid(); it.Next()) {
    seen.push_back(std::string(it.key()));
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"x/a", "x/b"}));
}

TEST(LocalStore, SeekPrefixAllFfPrefixRunsToEnd) {
  LocalStore store;
  std::string hi("\xff\xff", 2);
  store.Put(hi + "a", "1").ok();
  store.Put("a", "2").ok();
  int n = 0;
  for (auto it = store.SeekPrefix(hi); it.Valid(); it.Next()) ++n;
  EXPECT_EQ(n, 1);
}

TEST(LocalStore, StatsReadCountingOnConstStore) {
  LocalStore store;
  store.Put("a", "1").ok();
  const LocalStore& cref = store;
  cref.Get("a").ok();
  cref.GetView("a").ok();
  cref.Get("missing").ok();
  EXPECT_EQ(cref.stats().gets, 3u);
}

// Property test: Put/Delete/Compact/Recover round-trip equivalence against a
// model map, including prefix-scan bounds, under aggressive compaction.
class LocalStoreProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LocalStoreProperty, EquivalentToModelUnderChurn) {
  StoreOptions opts;
  opts.compaction_garbage_ratio = 0.25;
  opts.compaction_min_records = 128;
  LocalStore store(opts);
  std::map<std::string, std::string> model;
  Rng rng(GetParam() * 7919 + 13);
  const std::vector<std::string> prefixes = {"D/r1/", "D/r2/", "P/", "C/", ""};
  for (int op = 0; op < 8000; ++op) {
    const std::string& prefix = prefixes[rng.Uniform(prefixes.size())];
    std::string k = prefix + std::to_string(rng.Uniform(300));
    if (k.empty()) k = "fallback";
    switch (rng.Uniform(8)) {
      case 0:
      case 1:
      case 2:
      case 3: {
        std::string v = rng.AlphaString(1 + rng.Uniform(64));
        ASSERT_TRUE(store.Put(k, v).ok());
        model[k] = v;
        break;
      }
      case 4:
      case 5:
        ASSERT_TRUE(store.Delete(k).ok());
        model.erase(k);
        break;
      case 6:
        store.Compact();
        break;
      case 7:
        ASSERT_TRUE(store.Recover().ok());
        break;
    }
    if (op % 997 == 0) {
      // Full ordered sweep matches the model exactly.
      auto it = store.Seek("");
      for (const auto& [mk, mv] : model) {
        ASSERT_TRUE(it.Valid());
        ASSERT_EQ(it.key(), mk);
        ASSERT_EQ(it.value(), mv);
        it.Next();
      }
      ASSERT_FALSE(it.Valid());
    }
  }
  ASSERT_EQ(store.entry_count(), model.size());
  // Point lookups: Get, GetView, Contains agree with the model.
  for (const auto& [mk, mv] : model) {
    ASSERT_TRUE(store.Contains(mk));
    ASSERT_EQ(*store.Get(mk), mv);
    ASSERT_EQ(*store.GetView(mk), mv);
  }
  // Prefix scans honor the computed bounds for every prefix family.
  for (const std::string& prefix : prefixes) {
    std::vector<std::string> got;
    for (auto it = store.SeekPrefix(prefix); it.Valid(); it.Next()) {
      got.push_back(std::string(it.key()));
    }
    std::vector<std::string> expect;
    for (const auto& [mk, mv] : model) {
      if (mk.compare(0, prefix.size(), prefix) == 0) expect.push_back(mk);
    }
    ASSERT_EQ(got, expect) << "prefix '" << prefix << "'";
  }
  // A final Recover after heavy churn reports a consistent log.
  ASSERT_TRUE(store.Recover().ok());
  ASSERT_EQ(store.entry_count(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalStoreProperty, ::testing::Values(1, 2, 3, 4));

class LocalStoreFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LocalStoreFuzz, MatchesStdMapModel) {
  StoreOptions opts;
  opts.compaction_garbage_ratio = 0.3;
  opts.compaction_min_records = 256;
  LocalStore store(opts);
  std::map<std::string, std::string> model;
  Rng rng(GetParam());
  for (int op = 0; op < 5000; ++op) {
    std::string k = "k" + std::to_string(rng.Uniform(200));
    switch (rng.Uniform(3)) {
      case 0:
      case 1: {
        std::string v = rng.AlphaString(1 + rng.Uniform(40));
        store.Put(k, v).ok();
        model[k] = v;
        break;
      }
      case 2:
        store.Delete(k).ok();
        model.erase(k);
        break;
    }
  }
  ASSERT_EQ(store.entry_count(), model.size());
  auto it = store.Seek("");
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), k);
    EXPECT_EQ(it.value(), v);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalStoreFuzz, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// SeekPrefix x overwrite/delete x Compact/Recover interplay: the live-slot
// indirection (overwrites repoint a slot, deletes mark it dead, the tree is
// insert-only) must survive full index rebuilds, and prefix scans must see
// the same live view before and after each rebuild.

// One prefixed key family interleaved with neighbors; mutate, then verify
// prefix scans across a Compact and a Recover cycle.
TEST(LocalStore, SeekPrefixSurvivesCompactRecoverCycle) {
  LocalStore store;
  auto key = [](const std::string& pfx, int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%03d", i);
    return pfx + buf;
  };
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Put(key("A/", i), "a" + std::to_string(i)).ok());
    ASSERT_TRUE(store.Put(key("B/", i), "b" + std::to_string(i)).ok());
    ASSERT_TRUE(store.Put(key("C/", i), "c" + std::to_string(i)).ok());
  }
  // Overwrite evens, delete every third key in the B family.
  for (int i = 0; i < 50; i += 2) {
    ASSERT_TRUE(store.Put(key("B/", i), "B" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 50; i += 3) {
    ASSERT_TRUE(store.Delete(key("B/", i)).ok());
  }

  auto expect_b = [&](const char* when) {
    std::vector<std::pair<std::string, std::string>> want;
    for (int i = 0; i < 50; ++i) {
      if (i % 3 == 0) continue;
      want.emplace_back(key("B/", i),
                        (i % 2 == 0 ? "B" : "b") + std::to_string(i));
    }
    size_t n = 0;
    for (auto it = store.SeekPrefix("B/"); it.Valid(); it.Next(), ++n) {
      ASSERT_LT(n, want.size()) << when;
      EXPECT_EQ(it.key(), want[n].first) << when;
      EXPECT_EQ(it.value(), want[n].second) << when;
    }
    EXPECT_EQ(n, want.size()) << when;
  };

  expect_b("before rebuilds");
  store.Compact();
  expect_b("after Compact");
  // Mutate again after the compaction rebuilt the tree/live table densely:
  // the indirection must still route overwrites/deletes correctly.
  ASSERT_TRUE(store.Put(key("B/", 1), "post-compact").ok());
  ASSERT_TRUE(store.Delete(key("B/", 49)).ok());
  ASSERT_TRUE(store.Recover().ok());
  {
    auto it = store.SeekPrefix("B/");
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), key("B/", 1));
    EXPECT_EQ(it.value(), "post-compact");
  }
  size_t b_count = 0;
  for (auto it = store.SeekPrefix("B/"); it.Valid(); it.Next()) ++b_count;
  EXPECT_EQ(b_count, 50u - 17u - 1u);  // 17 deleted by 3s, then B/49
  // Neighboring families are untouched by all of the above.
  size_t a_count = 0;
  for (auto it = store.SeekPrefix("A/"); it.Valid(); it.Next()) ++a_count;
  EXPECT_EQ(a_count, 50u);
}

// Randomized: interleave Put/overwrite/Delete with Compact+Recover cycles
// and check SeekPrefix against a model at every stage.
TEST(LocalStoreFuzz, PrefixScansMatchModelAcrossRebuilds) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    LocalStore store;
    std::map<std::string, std::string> model;
    const std::string prefixes[] = {"p/", "q/", "p0", ""};
    for (int step = 0; step < 2000; ++step) {
      std::string k = (rng.OneIn(2) ? "p/" : "q/") + std::to_string(rng.Uniform(80));
      switch (rng.Uniform(3)) {
        case 0:
        case 1: {
          std::string v = rng.AlphaString(12);
          ASSERT_TRUE(store.Put(k, v).ok());
          model[k] = v;
          break;
        }
        case 2:
          ASSERT_TRUE(store.Delete(k).ok());
          model.erase(k);
          break;
      }
      if (step % 500 == 499) {
        if (rng.OneIn(2)) {
          store.Compact();
        } else {
          ASSERT_TRUE(store.Recover().ok()) << "seed " << seed;
        }
        for (const std::string& pfx : prefixes) {
          auto lo = model.lower_bound(pfx);
          auto hi = pfx.empty() ? model.end()
                                : model.lower_bound(LocalStore::PrefixUpperBound(pfx));
          auto it = store.SeekPrefix(pfx);
          for (auto m = lo; m != hi; ++m, it.Next()) {
            ASSERT_TRUE(it.Valid()) << "seed " << seed << " pfx " << pfx;
            EXPECT_EQ(it.key(), m->first);
            EXPECT_EQ(it.value(), m->second);
          }
          EXPECT_FALSE(it.Valid()) << "seed " << seed << " pfx " << pfx;
        }
      }
    }
  }
}

}  // namespace
}  // namespace orchestra::localstore
