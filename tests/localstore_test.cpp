#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.h"
#include "localstore/local_store.h"

namespace orchestra::localstore {
namespace {

TEST(LocalStore, PutGetOverwrite) {
  LocalStore store;
  ASSERT_TRUE(store.Put("k1", "v1").ok());
  auto v = store.Get("k1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v1");
  ASSERT_TRUE(store.Put("k1", "v2").ok());
  EXPECT_EQ(*store.Get("k1"), "v2");
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST(LocalStore, GetMissingIsNotFound) {
  LocalStore store;
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
}

TEST(LocalStore, EmptyKeyRejected) {
  LocalStore store;
  EXPECT_TRUE(store.Put("", "v").IsInvalidArgument());
}

TEST(LocalStore, DeleteIsIdempotent) {
  LocalStore store;
  store.Put("k", "v").ok();
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_FALSE(store.Contains("k"));
  ASSERT_TRUE(store.Delete("k").ok());  // again, no error
}

TEST(LocalStore, OrderedIteration) {
  LocalStore store;
  store.Put("b", "2").ok();
  store.Put("a", "1").ok();
  store.Put("c", "3").ok();
  std::string keys;
  for (auto it = store.Seek(""); it.Valid(); it.Next()) keys += it.key();
  EXPECT_EQ(keys, "abc");
}

TEST(LocalStore, SeekStartsAtLowerBound) {
  LocalStore store;
  store.Put("apple", "1").ok();
  store.Put("banana", "2").ok();
  store.Put("cherry", "3").ok();
  auto it = store.Seek("b");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "banana");
}

TEST(LocalStore, PrefixScan) {
  LocalStore store;
  store.Put("x/1", "a").ok();
  store.Put("x/2", "b").ok();
  store.Put("y/1", "c").ok();
  int count = 0;
  for (auto it = store.SeekPrefix("x/"); LocalStore::WithinPrefix(it, "x/"); it.Next()) {
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(LocalStore, BinaryKeysAndValues) {
  LocalStore store;
  std::string key("\x01\x00\xFF\x7F", 4);
  std::string value(1024, '\0');
  value[512] = 'x';
  ASSERT_TRUE(store.Put(key, value).ok());
  auto v = store.Get(key);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, value);
}

TEST(LocalStore, RecoverRebuildsIdenticalIndex) {
  LocalStore store;
  Rng rng(5);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; ++i) {
    std::string k = "key-" + std::to_string(rng.Uniform(500));
    if (rng.OneIn(4)) {
      store.Delete(k).ok();
      model.erase(k);
    } else {
      std::string v = rng.AlphaString(16);
      store.Put(k, v).ok();
      model[k] = v;
    }
  }
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_EQ(store.entry_count(), model.size());
  for (const auto& [k, v] : model) {
    auto got = store.Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, v);
  }
}

TEST(LocalStore, CompactionPreservesContentAndReclaimsLog) {
  StoreOptions opts;
  opts.compaction_min_records = 100;
  opts.compaction_garbage_ratio = 0.5;
  LocalStore store(opts);
  // Overwrite the same small key set many times -> lots of garbage.
  for (int round = 0; round < 50; ++round) {
    for (int k = 0; k < 20; ++k) {
      store.Put("k" + std::to_string(k), "round-" + std::to_string(round)).ok();
    }
  }
  EXPECT_GT(store.stats().compactions, 0u);
  EXPECT_EQ(store.entry_count(), 20u);
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(*store.Get("k" + std::to_string(k)), "round-49");
  }
  // After compaction, recovery still works.
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_EQ(store.entry_count(), 20u);
}

TEST(LocalStore, StatsTrackOperations) {
  LocalStore store;
  store.Put("a", "1").ok();
  store.Get("a").ok();
  store.Get("missing").ok();
  store.Delete("a").ok();
  EXPECT_EQ(store.stats().puts, 1u);
  EXPECT_EQ(store.stats().gets, 2u);
  EXPECT_EQ(store.stats().deletes, 1u);
  EXPECT_EQ(store.stats().live_records, 0u);
}

class LocalStoreFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LocalStoreFuzz, MatchesStdMapModel) {
  LocalStore store(StoreOptions{0.3, 256});
  std::map<std::string, std::string> model;
  Rng rng(GetParam());
  for (int op = 0; op < 5000; ++op) {
    std::string k = "k" + std::to_string(rng.Uniform(200));
    switch (rng.Uniform(3)) {
      case 0:
      case 1: {
        std::string v = rng.AlphaString(1 + rng.Uniform(40));
        store.Put(k, v).ok();
        model[k] = v;
        break;
      }
      case 2:
        store.Delete(k).ok();
        model.erase(k);
        break;
    }
  }
  ASSERT_EQ(store.entry_count(), model.size());
  auto it = store.Seek("");
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), k);
    EXPECT_EQ(it.value(), v);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalStoreFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace orchestra::localstore
