// Churn/fault-injection suite built on tests/churn_harness.{h,cpp}.
//
// Reproducing a failure: every assertion message carries the seed and a
// ready-to-paste replay command, e.g.
//   ORCHESTRA_CHURN_SEED=N ./churn_test --gtest_filter=Churn.SeedSweep
// — same seed, same options => byte-identical event trace.
//
// Sharding: ctest registers this binary several times with
// ORCHESTRA_CHURN_BUCKET="i/n" so the multi-seed sweeps split across ctest's
// parallel workers — bucket i runs the seeds with ordinal % n == i, and each
// single-seed test runs in exactly one home bucket. Unset (the developer
// default: plain ./churn_test) runs everything in one process, including the
// cross-seed aggregate assertions, which are meaningless on a partial sweep
// and therefore skipped when sharded.
#include <gtest/gtest.h>

#include <cstdlib>

#include "tests/churn_harness.h"

namespace orchestra {
namespace {

using churn::ChurnOptions;
using churn::ChurnReport;
using churn::ReplayCommand;
using churn::RunChurn;
using churn::TraceTail;

// How much trace to attach to a failing sweep assertion.
constexpr size_t kFailTraceLines = 40;

struct Bucket {
  uint64_t index = 0;
  uint64_t count = 1;
  bool sharded = false;
};

// Parses ORCHESTRA_CHURN_BUCKET ("i/n"). Malformed or absent => unsharded.
Bucket GetBucket() {
  Bucket b;
  const char* env = std::getenv("ORCHESTRA_CHURN_BUCKET");
  if (env == nullptr) return b;
  char* slash = nullptr;
  uint64_t index = std::strtoull(env, &slash, 10);
  if (slash == nullptr || *slash != '/') return b;
  uint64_t count = std::strtoull(slash + 1, nullptr, 10);
  if (count == 0) return b;
  b.index = index % count;
  b.count = count;
  b.sharded = true;
  return b;
}

// True when this process should run the sweep iteration with this ordinal.
bool InThisBucket(uint64_t ordinal) {
  Bucket b = GetBucket();
  return ordinal % b.count == b.index;
}

// True when this process should run a non-sweep test whose home is `home`.
// Unsharded processes run everything; sharded ones exactly one copy.
bool RunsHere(uint64_t home) {
  Bucket b = GetBucket();
  return !b.sharded || home % b.count == b.index;
}

// Optional single-seed filter for sweep tests (replay convenience).
uint64_t OnlySeed() {
  if (const char* env = std::getenv("ORCHESTRA_CHURN_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Seed sweep: >= 20 distinct seeds, each with crashes, restarts, hangs,
// drops, and delays injected — and session pipelining enabled (window 2), so
// faults land between overlapped publishes — every run model-equivalent at
// every convergence point.

TEST(Churn, SeedSweep) {
  constexpr uint64_t kSeeds = 20;
  const uint64_t only_seed = OnlySeed();
  uint64_t total_kills = 0, total_restarts = 0, total_drops = 0,
           total_delays = 0, total_hangs = 0, total_unhangs = 0,
           total_pipelined = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    if (only_seed != 0 && seed != only_seed) continue;
    if (only_seed == 0 && !InThisBucket(seed)) continue;
    ChurnOptions opts;
    opts.seed = seed;
    opts.rounds = 30;
    opts.check_every = 10;
    opts.publish_window = 2;  // pipelined publishing under churn
    opts.hang_prob = 0.04;    // hung machines join the fault mix
    ChurnReport rep = RunChurn(opts);
    EXPECT_TRUE(rep.ok) << rep.failure << "\nreplay: "
                        << ReplayCommand(rep, "Churn.SeedSweep")
                        << "\ntrace tail:\n" << TraceTail(rep, kFailTraceLines);
    EXPECT_GE(rep.checks, 3u) << "seed " << seed;
    EXPECT_GT(rep.publishes_ok, 0u) << "seed " << seed;
    total_kills += rep.kills;
    total_restarts += rep.restarts;
    total_drops += rep.faults_dropped;
    total_delays += rep.faults_delayed;
    total_hangs += rep.hangs;
    total_unhangs += rep.unhangs;
    total_pipelined += rep.pipelined_commits;
    if (HasFailure()) break;
  }
  if (only_seed == 0 && !GetBucket().sharded) {
    // The sweep as a whole must actually exercise every fault class AND the
    // pipelined path (commits that overlapped another in-flight publish).
    EXPECT_GT(total_kills, 0u);
    EXPECT_GT(total_restarts, 0u);
    EXPECT_GT(total_drops, 0u);
    EXPECT_GT(total_delays, 0u);
    EXPECT_GT(total_hangs, 0u);
    EXPECT_GT(total_unhangs, 0u);
    EXPECT_GT(total_pipelined, 0u);
  }
}

// Deeper pipeline under churn: window 4, crashes/drops landing between
// overlapped publishes, model equivalence at every convergence point.
TEST(Churn, PipelinedWindowFour) {
  uint64_t ordinal = 0;
  for (uint64_t seed : {11, 12, 13, 14, 15, 16}) {
    if (!InThisBucket(ordinal++)) continue;
    ChurnOptions opts;
    opts.seed = seed;
    opts.rounds = 20;
    opts.check_every = 10;
    opts.publish_window = 4;
    ChurnReport rep = RunChurn(opts);
    EXPECT_TRUE(rep.ok) << rep.failure << "\nreplay: "
                        << ReplayCommand(rep, "Churn.PipelinedWindowFour")
                        << "\ntrace tail:\n" << TraceTail(rep, kFailTraceLines);
    EXPECT_GT(rep.pipelined_commits, 0u) << "seed " << seed;
    if (HasFailure()) break;
  }
}

// ---------------------------------------------------------------------------
// Multi-writer: 2-3 concurrent disjoint-participant sessions per seed, with
// crashes, hangs, and ASYMMETRIC partitions (Network::SetDropOverride) in the
// fault mix. Every run must converge to model equivalence; across the sweep,
// epoch contention must actually occur (claims lost, losers re-based) and
// commits must interleave across participants — and no run may ever observe
// a torn epoch (two writers committing one epoch) or a commit behind a
// failed ticket.

TEST(Churn, MultiWriterSweep) {
  constexpr uint64_t kSeeds = 20;
  const uint64_t only_seed = OnlySeed();
  uint64_t total_conflicts = 0, total_rebases = 0, total_concurrent = 0,
           total_partitions = 0, total_kills = 0, total_hangs = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    if (only_seed != 0 && seed != only_seed) continue;
    if (only_seed == 0 && !InThisBucket(seed)) continue;
    ChurnOptions opts;
    opts.seed = seed;
    opts.rounds = 18;
    opts.check_every = 6;
    opts.publishers = 2 + (seed % 2);  // alternate 2- and 3-writer runs
    opts.publish_window = 2;
    opts.keys = 24;                    // per-participant stripe
    opts.hang_prob = 0.03;
    opts.partition_prob = 0.15;        // asymmetric one-way partitions
    ChurnReport rep = RunChurn(opts);
    EXPECT_TRUE(rep.ok) << rep.failure << "\nreplay: "
                        << ReplayCommand(rep, "Churn.MultiWriterSweep")
                        << "\ntrace tail:\n" << TraceTail(rep, kFailTraceLines)
                        << "\nconflicts=" << rep.epoch_conflicts
                        << " rebases=" << rep.rebases
                        << " coord_conflicts=" << rep.coordinator_conflicts;
    EXPECT_GE(rep.checks, 3u) << "seed " << seed;
    EXPECT_GT(rep.publishes_ok, 0u) << "seed " << seed;
    total_conflicts += rep.epoch_conflicts;
    total_rebases += rep.rebases;
    total_concurrent += rep.concurrent_commits;
    total_partitions += rep.partitions;
    total_kills += rep.kills;
    total_hangs += rep.hangs;
    if (HasFailure()) break;
  }
  if (only_seed == 0 && !GetBucket().sharded) {
    // The sweep must genuinely exercise contention and the new fault class:
    // claims lost and re-based, commits interleaving across participants,
    // asymmetric partitions scheduled, crashes and hangs in the mix.
    EXPECT_GT(total_conflicts, 0u);
    EXPECT_GT(total_rebases, 0u);
    EXPECT_GT(total_concurrent, 0u);
    EXPECT_GT(total_partitions, 0u);
    EXPECT_GT(total_kills, 0u);
    EXPECT_GT(total_hangs, 0u);
  }
}

// Multi-writer determinism: contention resolution (claims, force takeovers,
// re-bases) must replay byte-identically for the same seed.
TEST(Churn, MultiWriterSameSeedReplaysIdenticalTrace) {
  if (!RunsHere(1)) GTEST_SKIP() << "runs in another churn bucket";
  ChurnOptions opts;
  opts.seed = 171;
  opts.rounds = 12;
  opts.check_every = 6;
  opts.publishers = 3;
  opts.publish_window = 2;
  opts.keys = 24;
  opts.partition_prob = 0.1;
  ChurnReport a = RunChurn(opts);
  ChurnReport b = RunChurn(opts);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.final_epoch, b.final_epoch);
  EXPECT_EQ(a.epoch_conflicts, b.epoch_conflicts);
  EXPECT_EQ(a.rebases, b.rebases);
  EXPECT_EQ(a.trace, b.trace);
}

// ---------------------------------------------------------------------------
// Abandonment fencing at tens of writers: 20 seeds, 16-30 concurrent
// disjoint participants each, with kills, hangs, asymmetric partitions,
// crashes that tear the WAL mid-publish, AND deliberately abandoned writers
// (killed right after their epoch-claim write, never restarted) so fencing
// actually fires. fence_after_us arms the protocol; the harness's liveness
// oracle asserts the confirmed-epoch frontier advances at every convergence
// point whenever at least one live unfenced writer exists, and dumps the
// full claim table + per-writer state on any wedge.

TEST(Churn, FencingAbandonmentSweep) {
  constexpr uint64_t kSeeds = 20;
  const uint64_t only_seed = OnlySeed();
  uint64_t total_abandons = 0, total_fences = 0, total_skips = 0,
           total_grants = 0, total_purged = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    if (only_seed != 0 && seed != only_seed) continue;
    if (only_seed == 0 && !InThisBucket(seed)) continue;
    ChurnOptions opts;
    opts.seed = seed;
    opts.publishers = 16 + (seed % 15);  // 16..30 concurrent participants
    opts.num_nodes = opts.publishers + 2;
    opts.rounds = 6;
    opts.check_every = 3;
    opts.keys = 6;  // claims, not data volume, are the contention point
    opts.updates_per_round = 4;
    opts.kill_prob = 0.05;
    opts.hang_prob = 0.02;
    opts.partition_prob = 0.10;        // asymmetric one-way partitions
    opts.max_dead = 2;
    opts.abandon_prob = 0.5;           // deliberately abandoned writers...
    opts.max_abandoned = 2;
    opts.fence_after_us = 8 * sim::kMicrosPerSec;  // ...and the cure
    opts.wal_sync_every = 0;           // kills genuinely tear the WAL tail
    opts.wal_checkpoint_every = 96;
    opts.crash_mid_checkpoint_prob = 0.3;  // mid-publish crashes through WAL
    opts.crash_mid_seal_prob = 0.3;
    opts.publish_attempts = 16;
    ChurnReport rep = RunChurn(opts);
    EXPECT_TRUE(rep.ok) << rep.failure << "\nreplay: "
                        << ReplayCommand(rep, "Churn.FencingAbandonmentSweep")
                        << "\ntrace tail:\n" << TraceTail(rep, kFailTraceLines)
                        << "\nabandons=" << rep.abandons
                        << " fences=" << rep.fences
                        << " fenced_skips=" << rep.fenced_skips
                        << " fences_granted=" << rep.fences_granted
                        << " purged=" << rep.purged_orphans;
    EXPECT_GE(rep.checks, 2u) << "seed " << seed;
    EXPECT_GT(rep.publishes_ok, 0u) << "seed " << seed;
    total_abandons += rep.abandons;
    total_fences += rep.fences;
    total_skips += rep.fenced_skips;
    total_grants += rep.fences_granted;
    total_purged += rep.purged_orphans;
    if (HasFailure()) break;
  }
  if (only_seed == 0 && !GetBucket().sharded) {
    // Zero wedged chains is only meaningful if the hazard actually occurred:
    // writers were abandoned mid-claim, fence rounds were granted by the
    // claim replicas, contenders skipped past the burned epochs, and the
    // abandoned writers' orphan versions were purged.
    EXPECT_GT(total_abandons, 0u);
    EXPECT_GT(total_fences, 0u);
    EXPECT_GT(total_skips, 0u);
    EXPECT_GT(total_grants, 0u);
    EXPECT_GT(total_purged, 0u);
  }
}

// Fencing determinism: abandonment, fence rounds, purges, and the epoch
// skips they cause must replay byte-identically for the same seed.
TEST(Churn, FencingSameSeedReplaysIdenticalTrace) {
  if (!RunsHere(2)) GTEST_SKIP() << "runs in another churn bucket";
  ChurnOptions opts;
  opts.seed = 313;
  opts.publishers = 8;
  opts.num_nodes = 10;
  opts.rounds = 6;
  opts.check_every = 3;
  opts.keys = 8;
  opts.abandon_prob = 0.6;
  opts.max_abandoned = 1;
  opts.fence_after_us = 8 * sim::kMicrosPerSec;
  opts.publish_attempts = 16;
  ChurnReport a = RunChurn(opts);
  ChurnReport b = RunChurn(opts);
  ASSERT_TRUE(a.ok) << a.failure << "\ntrace tail:\n"
                    << TraceTail(a, kFailTraceLines);
  ASSERT_TRUE(b.ok) << b.failure;
  // The hazard fired in this configuration (deterministically, per seed).
  EXPECT_GT(a.abandons, 0u);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.final_epoch, b.final_epoch);
  EXPECT_EQ(a.abandons, b.abandons);
  EXPECT_EQ(a.fences, b.fences);
  EXPECT_EQ(a.fenced_skips, b.fenced_skips);
  EXPECT_EQ(a.fences_granted, b.fences_granted);
  EXPECT_EQ(a.purged_orphans, b.purged_orphans);
  EXPECT_EQ(a.trace, b.trace);
}

// ---------------------------------------------------------------------------
// Determinism regression: same seed => byte-identical event trace and equal
// simulator digests; different seeds diverge.

TEST(Churn, SameSeedReplaysIdenticalTrace) {
  if (!RunsHere(2)) GTEST_SKIP() << "runs in another churn bucket";
  ChurnOptions opts;
  opts.seed = 77;
  opts.rounds = 25;
  opts.check_every = 10;
  opts.publish_window = 2;  // determinism must hold for the pipelined path
  opts.hang_prob = 0.05;
  ChurnReport a = RunChurn(opts);
  ChurnReport b = RunChurn(opts);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.final_epoch, b.final_epoch);
  EXPECT_EQ(a.faults_dropped, b.faults_dropped);
  EXPECT_EQ(a.faults_delayed, b.faults_delayed);
  // Byte-identical trace is the strongest statement: every kill, restart,
  // retry, and check happened at the same simulated instant.
  EXPECT_EQ(a.trace, b.trace);
}

// Durability determinism: crashes that land mid-checkpoint-publish and
// mid-segment-seal, on nodes whose WAL tail is entirely unsynced
// (wal_sync_every = 0), must still replay byte-identically — torn-tail
// truncation is deterministic, and recovery trace lines (replayed/snapshot/
// torn counters) are part of the digest-checked trace. Model equivalence at
// every convergence point doubles as the proof that a node recovering from a
// checkpoint plus a truncated tail is healed by re-replication.
TEST(Churn, DurabilityCrashPointsReplayIdenticalTrace) {
  if (!RunsHere(3)) GTEST_SKIP() << "runs in another churn bucket";
  ChurnOptions opts;
  opts.seed = 2026;
  opts.rounds = 30;
  opts.check_every = 10;
  opts.kill_prob = 0.25;
  opts.wal_sync_every = 0;        // crashes genuinely tear the WAL tail
  opts.wal_checkpoint_every = 96; // several checkpoints per run at this scale
  opts.crash_mid_checkpoint_prob = 0.5;
  opts.crash_mid_seal_prob = 0.5;
  ChurnReport a = RunChurn(opts);
  ChurnReport b = RunChurn(opts);
  ASSERT_TRUE(a.ok) << a.failure << "\ntrace tail:\n"
                    << TraceTail(a, kFailTraceLines);
  ASSERT_TRUE(b.ok) << b.failure;
  // The faults actually fired: nodes died, came back, and recovered through
  // the checkpoint + tail-replay path.
  EXPECT_GT(a.kills, 0u);
  EXPECT_GT(a.restarts, 0u);
  EXPECT_GT(a.wal_checkpoints, 0u);
  EXPECT_GT(a.wal_replayed_records, 0u);
  // Same seed => byte-identical trace (which embeds the recover lines) and
  // equal durability counters.
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.wal_replayed_records, b.wal_replayed_records);
  EXPECT_EQ(a.wal_torn_tails, b.wal_torn_tails);
  EXPECT_EQ(a.wal_torn_bytes, b.wal_torn_bytes);
  EXPECT_EQ(a.wal_checkpoints, b.wal_checkpoints);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(Churn, DifferentSeedsDiverge) {
  if (!RunsHere(0)) GTEST_SKIP() << "runs in another churn bucket";
  ChurnOptions a_opts, b_opts;
  a_opts.seed = 101;
  b_opts.seed = 102;
  a_opts.rounds = b_opts.rounds = 15;
  ChurnReport a = RunChurn(a_opts);
  ChurnReport b = RunChurn(b_opts);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_NE(a.trace, b.trace);
}

// ---------------------------------------------------------------------------
// Multi-epoch GC: >= 1000 churn rounds of overwrite-heavy traffic. Live
// records must stay bounded (independent of round count) and every store's
// dead-record fraction below the compaction threshold, while retrieval stays
// model-equivalent at the current epoch and retained history.

TEST(Churn, GcBoundsStorageAcrossThousandRounds) {
  if (!RunsHere(0)) GTEST_SKIP() << "runs in another churn bucket";
  ChurnOptions opts;
  opts.seed = 4242;
  opts.rounds = 1000;
  opts.check_every = 100;
  opts.updates_per_round = 10;
  opts.delete_prob = 0.1;
  // Rarer churn so the run is dominated by sustained overwrite traffic.
  opts.kill_prob = 0.01;
  opts.drop_prob = 0.005;
  opts.delay_prob = 0.05;
  opts.gc_keep_epochs = 6;
  ChurnReport rep = RunChurn(opts);
  ASSERT_TRUE(rep.ok) << rep.failure << "\nreplay: "
                      << ReplayCommand(rep, "Churn.GcBoundsStorageAcrossThousandRounds")
                      << "\ntrace tail:\n" << TraceTail(rep, kFailTraceLines);
  EXPECT_GE(rep.publishes_ok, 1000u);
  EXPECT_GE(rep.checks, 10u);
  // The run must have actually retired versions, stayed under the bound at
  // every check, and kept garbage below the compaction threshold + slack.
  EXPECT_GT(rep.gc_retired_total, 0u);
  EXPECT_GT(rep.live_record_bound, 0u);
  EXPECT_LE(rep.max_live_records, rep.live_record_bound);
  EXPECT_LE(rep.max_dead_fraction, 0.55);
}

// Without GC the same workload grows without bound — the harness's bound
// assertion is only armed when GC is on, so compare the live-record curves.
TEST(Churn, GcOnShrinksFootprintVsGcOff) {
  if (!RunsHere(1)) GTEST_SKIP() << "runs in another churn bucket";
  ChurnOptions on, off;
  on.seed = off.seed = 9;
  on.rounds = off.rounds = 120;
  on.check_every = off.check_every = 40;
  on.kill_prob = off.kill_prob = 0;  // isolate the GC effect
  on.drop_prob = off.drop_prob = 0;
  on.delay_prob = off.delay_prob = 0;
  on.gc_keep_epochs = 6;
  off.gc_keep_epochs = 0;
  ChurnReport rep_on = RunChurn(on);
  ChurnReport rep_off = RunChurn(off);
  ASSERT_TRUE(rep_on.ok) << rep_on.failure;
  ASSERT_TRUE(rep_off.ok) << rep_off.failure;
  // Same workload, same seed: GC must cut the retained footprint hard.
  EXPECT_LT(rep_on.max_live_records * 2, rep_off.max_live_records)
      << "gc_on=" << rep_on.max_live_records
      << " gc_off=" << rep_off.max_live_records;
}

}  // namespace
}  // namespace orchestra
