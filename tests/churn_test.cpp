// Churn/fault-injection suite built on tests/churn_harness.{h,cpp}.
//
// Reproducing a failure: every assertion message carries the seed
// ("churn[seed=N] ..."). Rerun just that seed with
//   ORCHESTRA_CHURN_SEED=N ./churn_test --gtest_filter=Churn.SeedSweep
// — same seed, same options => byte-identical event trace.
#include <gtest/gtest.h>

#include <cstdlib>

#include "tests/churn_harness.h"

namespace orchestra {
namespace {

using churn::ChurnOptions;
using churn::ChurnReport;
using churn::RunChurn;

// ---------------------------------------------------------------------------
// Seed sweep: >= 20 distinct seeds, each with crashes, restarts, hangs,
// drops, and delays injected — and session pipelining enabled (window 2), so
// faults land between overlapped publishes — every run model-equivalent at
// every convergence point.

TEST(Churn, SeedSweep) {
  constexpr uint64_t kSeeds = 20;
  uint64_t only_seed = 0;
  if (const char* env = std::getenv("ORCHESTRA_CHURN_SEED")) {
    only_seed = std::strtoull(env, nullptr, 10);
  }
  uint64_t total_kills = 0, total_restarts = 0, total_drops = 0,
           total_delays = 0, total_hangs = 0, total_unhangs = 0,
           total_pipelined = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    if (only_seed != 0 && seed != only_seed) continue;
    ChurnOptions opts;
    opts.seed = seed;
    opts.rounds = 30;
    opts.check_every = 10;
    opts.publish_window = 2;  // pipelined publishing under churn
    opts.hang_prob = 0.04;    // hung machines join the fault mix
    ChurnReport rep = RunChurn(opts);
    EXPECT_TRUE(rep.ok) << rep.failure << "\ntrace tail:\n"
                        << rep.trace.substr(rep.trace.size() > 2000
                                                ? rep.trace.size() - 2000
                                                : 0);
    EXPECT_GE(rep.checks, 3u) << "seed " << seed;
    EXPECT_GT(rep.publishes_ok, 0u) << "seed " << seed;
    total_kills += rep.kills;
    total_restarts += rep.restarts;
    total_drops += rep.faults_dropped;
    total_delays += rep.faults_delayed;
    total_hangs += rep.hangs;
    total_unhangs += rep.unhangs;
    total_pipelined += rep.pipelined_commits;
    if (HasFailure()) break;
  }
  if (only_seed == 0) {
    // The sweep as a whole must actually exercise every fault class AND the
    // pipelined path (commits that overlapped another in-flight publish).
    EXPECT_GT(total_kills, 0u);
    EXPECT_GT(total_restarts, 0u);
    EXPECT_GT(total_drops, 0u);
    EXPECT_GT(total_delays, 0u);
    EXPECT_GT(total_hangs, 0u);
    EXPECT_GT(total_unhangs, 0u);
    EXPECT_GT(total_pipelined, 0u);
  }
}

// Deeper pipeline under churn: window 4, crashes/drops landing between
// overlapped publishes, model equivalence at every convergence point.
TEST(Churn, PipelinedWindowFour) {
  for (uint64_t seed : {11, 12, 13, 14, 15, 16}) {
    ChurnOptions opts;
    opts.seed = seed;
    opts.rounds = 20;
    opts.check_every = 10;
    opts.publish_window = 4;
    ChurnReport rep = RunChurn(opts);
    EXPECT_TRUE(rep.ok) << rep.failure << "\ntrace tail:\n"
                        << rep.trace.substr(rep.trace.size() > 2000
                                                ? rep.trace.size() - 2000
                                                : 0);
    EXPECT_GT(rep.pipelined_commits, 0u) << "seed " << seed;
    if (HasFailure()) break;
  }
}

// ---------------------------------------------------------------------------
// Multi-writer: 2-3 concurrent disjoint-participant sessions per seed, with
// crashes, hangs, and ASYMMETRIC partitions (Network::SetDropOverride) in the
// fault mix. Every run must converge to model equivalence; across the sweep,
// epoch contention must actually occur (claims lost, losers re-based) and
// commits must interleave across participants — and no run may ever observe
// a torn epoch (two writers committing one epoch) or a commit behind a
// failed ticket.

TEST(Churn, MultiWriterSweep) {
  constexpr uint64_t kSeeds = 20;
  uint64_t only_seed = 0;
  if (const char* env = std::getenv("ORCHESTRA_CHURN_SEED")) {
    only_seed = std::strtoull(env, nullptr, 10);
  }
  uint64_t total_conflicts = 0, total_rebases = 0, total_concurrent = 0,
           total_partitions = 0, total_kills = 0, total_hangs = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    if (only_seed != 0 && seed != only_seed) continue;
    ChurnOptions opts;
    opts.seed = seed;
    opts.rounds = 18;
    opts.check_every = 6;
    opts.publishers = 2 + (seed % 2);  // alternate 2- and 3-writer runs
    opts.publish_window = 2;
    opts.keys = 24;                    // per-participant stripe
    opts.hang_prob = 0.03;
    opts.partition_prob = 0.15;        // asymmetric one-way partitions
    ChurnReport rep = RunChurn(opts);
    EXPECT_TRUE(rep.ok) << rep.failure << "\ntrace tail:\n"
                        << rep.trace.substr(rep.trace.size() > 2000
                                                ? rep.trace.size() - 2000
                                                : 0)
                        << "\nconflicts=" << rep.epoch_conflicts
                        << " rebases=" << rep.rebases
                        << " coord_conflicts=" << rep.coordinator_conflicts;
    EXPECT_GE(rep.checks, 3u) << "seed " << seed;
    EXPECT_GT(rep.publishes_ok, 0u) << "seed " << seed;
    total_conflicts += rep.epoch_conflicts;
    total_rebases += rep.rebases;
    total_concurrent += rep.concurrent_commits;
    total_partitions += rep.partitions;
    total_kills += rep.kills;
    total_hangs += rep.hangs;
    if (HasFailure()) break;
  }
  if (only_seed == 0) {
    // The sweep must genuinely exercise contention and the new fault class:
    // claims lost and re-based, commits interleaving across participants,
    // asymmetric partitions scheduled, crashes and hangs in the mix.
    EXPECT_GT(total_conflicts, 0u);
    EXPECT_GT(total_rebases, 0u);
    EXPECT_GT(total_concurrent, 0u);
    EXPECT_GT(total_partitions, 0u);
    EXPECT_GT(total_kills, 0u);
    EXPECT_GT(total_hangs, 0u);
  }
}

// Multi-writer determinism: contention resolution (claims, force takeovers,
// re-bases) must replay byte-identically for the same seed.
TEST(Churn, MultiWriterSameSeedReplaysIdenticalTrace) {
  ChurnOptions opts;
  opts.seed = 171;
  opts.rounds = 12;
  opts.check_every = 6;
  opts.publishers = 3;
  opts.publish_window = 2;
  opts.keys = 24;
  opts.partition_prob = 0.1;
  ChurnReport a = RunChurn(opts);
  ChurnReport b = RunChurn(opts);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.final_epoch, b.final_epoch);
  EXPECT_EQ(a.epoch_conflicts, b.epoch_conflicts);
  EXPECT_EQ(a.rebases, b.rebases);
  EXPECT_EQ(a.trace, b.trace);
}

// ---------------------------------------------------------------------------
// Determinism regression: same seed => byte-identical event trace and equal
// simulator digests; different seeds diverge.

TEST(Churn, SameSeedReplaysIdenticalTrace) {
  ChurnOptions opts;
  opts.seed = 77;
  opts.rounds = 25;
  opts.check_every = 10;
  opts.publish_window = 2;  // determinism must hold for the pipelined path
  opts.hang_prob = 0.05;
  ChurnReport a = RunChurn(opts);
  ChurnReport b = RunChurn(opts);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.final_epoch, b.final_epoch);
  EXPECT_EQ(a.faults_dropped, b.faults_dropped);
  EXPECT_EQ(a.faults_delayed, b.faults_delayed);
  // Byte-identical trace is the strongest statement: every kill, restart,
  // retry, and check happened at the same simulated instant.
  EXPECT_EQ(a.trace, b.trace);
}

// Durability determinism: crashes that land mid-checkpoint-publish and
// mid-segment-seal, on nodes whose WAL tail is entirely unsynced
// (wal_sync_every = 0), must still replay byte-identically — torn-tail
// truncation is deterministic, and recovery trace lines (replayed/snapshot/
// torn counters) are part of the digest-checked trace. Model equivalence at
// every convergence point doubles as the proof that a node recovering from a
// checkpoint plus a truncated tail is healed by re-replication.
TEST(Churn, DurabilityCrashPointsReplayIdenticalTrace) {
  ChurnOptions opts;
  opts.seed = 2026;
  opts.rounds = 30;
  opts.check_every = 10;
  opts.kill_prob = 0.25;
  opts.wal_sync_every = 0;        // crashes genuinely tear the WAL tail
  opts.wal_checkpoint_every = 96; // several checkpoints per run at this scale
  opts.crash_mid_checkpoint_prob = 0.5;
  opts.crash_mid_seal_prob = 0.5;
  ChurnReport a = RunChurn(opts);
  ChurnReport b = RunChurn(opts);
  ASSERT_TRUE(a.ok) << a.failure << "\ntrace tail:\n"
                    << a.trace.substr(a.trace.size() > 2000
                                          ? a.trace.size() - 2000
                                          : 0);
  ASSERT_TRUE(b.ok) << b.failure;
  // The faults actually fired: nodes died, came back, and recovered through
  // the checkpoint + tail-replay path.
  EXPECT_GT(a.kills, 0u);
  EXPECT_GT(a.restarts, 0u);
  EXPECT_GT(a.wal_checkpoints, 0u);
  EXPECT_GT(a.wal_replayed_records, 0u);
  // Same seed => byte-identical trace (which embeds the recover lines) and
  // equal durability counters.
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.wal_replayed_records, b.wal_replayed_records);
  EXPECT_EQ(a.wal_torn_tails, b.wal_torn_tails);
  EXPECT_EQ(a.wal_torn_bytes, b.wal_torn_bytes);
  EXPECT_EQ(a.wal_checkpoints, b.wal_checkpoints);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(Churn, DifferentSeedsDiverge) {
  ChurnOptions a_opts, b_opts;
  a_opts.seed = 101;
  b_opts.seed = 102;
  a_opts.rounds = b_opts.rounds = 15;
  ChurnReport a = RunChurn(a_opts);
  ChurnReport b = RunChurn(b_opts);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_NE(a.trace, b.trace);
}

// ---------------------------------------------------------------------------
// Multi-epoch GC: >= 1000 churn rounds of overwrite-heavy traffic. Live
// records must stay bounded (independent of round count) and every store's
// dead-record fraction below the compaction threshold, while retrieval stays
// model-equivalent at the current epoch and retained history.

TEST(Churn, GcBoundsStorageAcrossThousandRounds) {
  ChurnOptions opts;
  opts.seed = 4242;
  opts.rounds = 1000;
  opts.check_every = 100;
  opts.updates_per_round = 10;
  opts.delete_prob = 0.1;
  // Rarer churn so the run is dominated by sustained overwrite traffic.
  opts.kill_prob = 0.01;
  opts.drop_prob = 0.005;
  opts.delay_prob = 0.05;
  opts.gc_keep_epochs = 6;
  ChurnReport rep = RunChurn(opts);
  ASSERT_TRUE(rep.ok) << rep.failure << "\ntrace tail:\n"
                      << rep.trace.substr(rep.trace.size() > 2000
                                              ? rep.trace.size() - 2000
                                              : 0);
  EXPECT_GE(rep.publishes_ok, 1000u);
  EXPECT_GE(rep.checks, 10u);
  // The run must have actually retired versions, stayed under the bound at
  // every check, and kept garbage below the compaction threshold + slack.
  EXPECT_GT(rep.gc_retired_total, 0u);
  EXPECT_GT(rep.live_record_bound, 0u);
  EXPECT_LE(rep.max_live_records, rep.live_record_bound);
  EXPECT_LE(rep.max_dead_fraction, 0.55);
}

// Without GC the same workload grows without bound — the harness's bound
// assertion is only armed when GC is on, so compare the live-record curves.
TEST(Churn, GcOnShrinksFootprintVsGcOff) {
  ChurnOptions on, off;
  on.seed = off.seed = 9;
  on.rounds = off.rounds = 120;
  on.check_every = off.check_every = 40;
  on.kill_prob = off.kill_prob = 0;  // isolate the GC effect
  on.drop_prob = off.drop_prob = 0;
  on.delay_prob = off.delay_prob = 0;
  on.gc_keep_epochs = 6;
  off.gc_keep_epochs = 0;
  ChurnReport rep_on = RunChurn(on);
  ChurnReport rep_off = RunChurn(off);
  ASSERT_TRUE(rep_on.ok) << rep_on.failure;
  ASSERT_TRUE(rep_off.ok) << rep_off.failure;
  // Same workload, same seed: GC must cut the retained footprint hard.
  EXPECT_LT(rep_on.max_live_records * 2, rep_off.max_live_records)
      << "gc_on=" << rep_on.max_live_records
      << " gc_off=" << rep_off.max_live_records;
}

}  // namespace
}  // namespace orchestra
