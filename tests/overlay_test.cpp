#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "common/serial.h"
#include "deploy/deployment.h"
#include "overlay/gossip.h"
#include "overlay/ring.h"

namespace orchestra::overlay {
namespace {

std::vector<Member> MakeMembers(size_t n) {
  std::vector<Member> members;
  for (size_t i = 0; i < n; ++i) {
    members.push_back(Member{static_cast<net::NodeId>(i),
                             HashId::OfBytes("node-" + std::to_string(i))});
  }
  return members;
}

TEST(RoutingSnapshot, SingleNodeOwnsEverything) {
  auto snap = RoutingSnapshot::Build(1, AllocationScheme::kBalanced, MakeMembers(1));
  EXPECT_EQ(snap.OwnerOf(HashId::Zero()), 0u);
  EXPECT_EQ(snap.OwnerOf(HashId::Max()), 0u);
  EXPECT_EQ(snap.OwnerOf(HashId::OfBytes("anything")), 0u);
}

TEST(RoutingSnapshot, BalancedRangesAreEqual) {
  auto snap = RoutingSnapshot::Build(1, AllocationScheme::kBalanced, MakeMembers(8));
  const auto& entries = snap.entries();
  ASSERT_EQ(entries.size(), 8u);
  HashId width = entries[1].begin.Sub(entries[0].begin);
  for (size_t i = 1; i + 1 < entries.size(); ++i) {
    EXPECT_EQ(entries[i + 1].begin.Sub(entries[i].begin), width) << i;
  }
}

TEST(RoutingSnapshot, PastryAssignsNearestNode) {
  auto members = MakeMembers(6);
  auto snap = RoutingSnapshot::Build(1, AllocationScheme::kPastry, members);
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    HashId key = HashId::OfBytes("k" + std::to_string(rng.NextU64()));
    net::NodeId owner = snap.OwnerOf(key);
    // The owner must minimize ring distance (in either direction).
    auto dist = [&](const Member& m) {
      HashId cw = key.DistanceFrom(m.position);
      HashId ccw = m.position.DistanceFrom(key);
      return std::min(cw, ccw);
    };
    const Member* owner_member = nullptr;
    for (const auto& m : members) {
      if (m.node == owner) owner_member = &m;
    }
    ASSERT_NE(owner_member, nullptr);
    for (const auto& m : members) {
      EXPECT_GE(dist(m), dist(*owner_member))
          << "key " << key.ToShortHex() << " owner n" << owner;
    }
  }
}

struct SchemeAndSize {
  AllocationScheme scheme;
  size_t nodes;
};

class AllocationProperty : public ::testing::TestWithParam<SchemeAndSize> {};

TEST_P(AllocationProperty, EveryKeyHasExactlyOneOwner) {
  auto [scheme, n] = GetParam();
  auto snap = RoutingSnapshot::Build(1, scheme, MakeMembers(n));
  EXPECT_EQ(snap.node_count(), n);
  Rng rng(n * 31 + static_cast<int>(scheme));
  for (int trial = 0; trial < 100; ++trial) {
    HashId key = HashId::OfBytes("key" + std::to_string(rng.NextU64()));
    net::NodeId owner = snap.OwnerOf(key);
    EXPECT_LT(owner, n);
    auto [begin, end] = snap.RangeOf(key);
    EXPECT_TRUE(key.InRange(begin, end));
    // RangeOf and OwnerOf agree.
    EXPECT_EQ(snap.OwnerOf(begin), owner);
  }
}

TEST_P(AllocationProperty, ReplicasAreDistinctAndStartWithOwner) {
  auto [scheme, n] = GetParam();
  auto snap = RoutingSnapshot::Build(1, scheme, MakeMembers(n));
  Rng rng(n * 17);
  for (int trial = 0; trial < 50; ++trial) {
    HashId key = HashId::OfBytes("rep" + std::to_string(rng.NextU64()));
    auto replicas = snap.ReplicasOf(key, 3);
    EXPECT_EQ(replicas[0], snap.OwnerOf(key));
    std::set<net::NodeId> uniq(replicas.begin(), replicas.end());
    EXPECT_EQ(uniq.size(), replicas.size());
    EXPECT_EQ(replicas.size(), std::min<size_t>(3, n));
  }
}

TEST_P(AllocationProperty, EncodeDecodeRoundTrip) {
  auto [scheme, n] = GetParam();
  auto snap = RoutingSnapshot::Build(7, scheme, MakeMembers(n));
  Writer w;
  snap.EncodeTo(&w);
  Reader r(w.data());
  auto back = RoutingSnapshot::Decode(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->version(), 7u);
  EXPECT_EQ(back->node_count(), n);
  for (int trial = 0; trial < 20; ++trial) {
    HashId key = HashId::OfBytes("rt" + std::to_string(trial));
    EXPECT_EQ(back->OwnerOf(key), snap.OwnerOf(key));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSizes, AllocationProperty,
    ::testing::Values(SchemeAndSize{AllocationScheme::kBalanced, 1},
                      SchemeAndSize{AllocationScheme::kBalanced, 2},
                      SchemeAndSize{AllocationScheme::kBalanced, 5},
                      SchemeAndSize{AllocationScheme::kBalanced, 16},
                      SchemeAndSize{AllocationScheme::kBalanced, 100},
                      SchemeAndSize{AllocationScheme::kPastry, 2},
                      SchemeAndSize{AllocationScheme::kPastry, 5},
                      SchemeAndSize{AllocationScheme::kPastry, 16},
                      SchemeAndSize{AllocationScheme::kPastry, 100}));

TEST(RoutingSnapshot, BalancedIsMoreUniformThanPastry) {
  // The paper's Fig. 2 argument: at small n, Pastry-style ranges are highly
  // non-uniform while balanced ranges are equal by construction.
  auto members = MakeMembers(8);
  auto pastry = RoutingSnapshot::Build(1, AllocationScheme::kPastry, members);
  auto balanced = RoutingSnapshot::Build(1, AllocationScheme::kBalanced, members);

  auto spread = [](const RoutingSnapshot& snap) {
    HashId min_width = HashId::Max(), max_width = HashId::Zero();
    const auto& e = snap.entries();
    for (size_t i = 0; i < e.size(); ++i) {
      HashId width = e[(i + 1) % e.size()].begin.Sub(e[i].begin);
      min_width = std::min(min_width, width);
      max_width = std::max(max_width, width);
    }
    // Ratio approximated with top 64 bits.
    return static_cast<double>(max_width.Top64()) /
           std::max<double>(1.0, static_cast<double>(min_width.Top64()));
  };
  EXPECT_LT(spread(balanced), 1.01);
  EXPECT_GT(spread(pastry), 2.0);
}

TEST(RoutingSnapshot, ReassignFailedCoversWholeRing) {
  auto snap = RoutingSnapshot::Build(1, AllocationScheme::kBalanced, MakeMembers(8));
  auto recovered = snap.ReassignFailed({2, 5}, 3, 2);
  EXPECT_EQ(recovered.version(), 2u);
  EXPECT_EQ(recovered.node_count(), 6u);
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    HashId key = HashId::OfBytes("f" + std::to_string(rng.NextU64()));
    net::NodeId owner = recovered.OwnerOf(key);
    EXPECT_NE(owner, 2u);
    EXPECT_NE(owner, 5u);
  }
}

TEST(RoutingSnapshot, ReassignFailedPreservesLiveRanges) {
  auto snap = RoutingSnapshot::Build(1, AllocationScheme::kBalanced, MakeMembers(8));
  auto recovered = snap.ReassignFailed({3}, 3, 2);
  Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    HashId key = HashId::OfBytes("g" + std::to_string(rng.NextU64()));
    net::NodeId before = snap.OwnerOf(key);
    net::NodeId after = recovered.OwnerOf(key);
    if (before != 3) {
      EXPECT_EQ(after, before) << "live ranges must not move";
    } else {
      EXPECT_NE(after, 3u);
      // Heirs must be replicas of the failed range (ring neighbors).
      auto reps = snap.ReplicasOf(key, 3);
      EXPECT_TRUE(std::find(reps.begin(), reps.end(), after) != reps.end());
    }
  }
}

TEST(RoutingSnapshot, ReassignSplitsAmongMultipleHeirs) {
  auto snap = RoutingSnapshot::Build(1, AllocationScheme::kBalanced, MakeMembers(8));
  auto recovered = snap.ReassignFailed({3}, 3, 2);
  std::set<net::NodeId> heirs;
  Rng rng(12);
  for (int trial = 0; trial < 400; ++trial) {
    HashId key = HashId::OfBytes("h" + std::to_string(rng.NextU64()));
    if (snap.OwnerOf(key) == 3) heirs.insert(recovered.OwnerOf(key));
  }
  // r=3 gives one clockwise and one counterclockwise heir; the failed range
  // is divided evenly among them (§V-D stage 1).
  EXPECT_EQ(heirs.size(), 2u);
}

TEST(Ring, JoinLeaveRebuilds) {
  Ring ring(AllocationScheme::kBalanced);
  ring.Join(0, "a");
  ring.Join(1, "b");
  auto s1 = ring.TakeSnapshot();
  EXPECT_EQ(s1.node_count(), 2u);
  ring.Join(2, "c");
  auto s2 = ring.TakeSnapshot();
  EXPECT_EQ(s2.node_count(), 3u);
  EXPECT_GT(s2.version(), s1.version());
  ring.Leave(1);
  auto s3 = ring.TakeSnapshot();
  EXPECT_EQ(s3.node_count(), 2u);
  EXPECT_FALSE(s3.Contains(1));
}

TEST(Gossip, EpochSpreadsToAllNodes) {
  deploy::DeploymentOptions opts;
  opts.num_nodes = 10;
  opts.start_gossip = true;
  deploy::Deployment dep(opts);

  dep.gossip(3).AdvanceTo(17);
  bool spread = dep.RunUntil([&] {
    for (size_t i = 0; i < dep.size(); ++i) {
      if (dep.gossip(i).epoch() != 17) return false;
    }
    return true;
  }, 60 * sim::kMicrosPerSec);
  EXPECT_TRUE(spread);
}

TEST(Gossip, TakesMaxOfConcurrentAdvances) {
  deploy::DeploymentOptions opts;
  opts.num_nodes = 6;
  opts.start_gossip = true;
  deploy::Deployment dep(opts);
  dep.gossip(0).AdvanceTo(5);
  dep.gossip(1).AdvanceTo(9);
  dep.RunUntil([&] {
    for (size_t i = 0; i < dep.size(); ++i) {
      if (dep.gossip(i).epoch() != 9) return false;
    }
    return true;
  }, 60 * sim::kMicrosPerSec);
  for (size_t i = 0; i < dep.size(); ++i) EXPECT_EQ(dep.gossip(i).epoch(), 9u);
}

}  // namespace
}  // namespace orchestra::overlay
