// Segmented WAL + checkpointed recovery: framing, torn-tail truncation,
// crash-mid-checkpoint and crash-mid-seal fault injection, backend crash
// semantics, the FileBackend, LocalStore integration, and a threaded
// writer-vs-readers smoke (the sanitize/TSan gate for the durability layer).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "localstore/local_store.h"
#include "wal/backend.h"
#include "wal/wal.h"

namespace orchestra::wal {
namespace {

struct Applied {
  RecordType type;
  std::string key, value;
  bool from_checkpoint;
};

Wal::ApplyFn Collect(std::vector<Applied>* out) {
  return [out](RecordType type, std::string_view key, std::string_view value,
               bool from_checkpoint) {
    out->push_back({type, std::string(key), std::string(value), from_checkpoint});
  };
}

TEST(WalNames, SegmentNameRoundTrip) {
  EXPECT_EQ(Wal::SegmentName(1), "wal-0000000001.seg");
  uint64_t id = 0;
  ASSERT_TRUE(Wal::ParseSegmentName("wal-0000000042.seg", &id));
  EXPECT_EQ(id, 42u);
  EXPECT_FALSE(Wal::ParseSegmentName("MANIFEST", &id));
  EXPECT_FALSE(Wal::ParseSegmentName("wal-00000000xx.seg", &id));
  EXPECT_FALSE(Wal::ParseSegmentName("wal-0000000001.tmp", &id));
  // Names sort in id order (the recovery replay order).
  EXPECT_LT(Wal::SegmentName(9), Wal::SegmentName(10));
}

TEST(Wal, AppendRecoverRoundTrip) {
  auto backend = std::make_shared<MemoryBackend>();
  {
    Wal wal(backend);
    ASSERT_TRUE(wal.AppendPut("a", "1").ok());
    ASSERT_TRUE(wal.AppendPut("b", std::string(1000, 'x')).ok());
    ASSERT_TRUE(wal.AppendDelete("a").ok());
    ASSERT_TRUE(wal.AppendPut("", "empty-key-ok-at-wal-layer").ok());
    EXPECT_EQ(wal.stats().records_appended, 4u);
  }
  Wal fresh(backend);
  std::vector<Applied> applied;
  ASSERT_TRUE(fresh.Recover(Collect(&applied)).ok());
  ASSERT_EQ(applied.size(), 4u);
  EXPECT_EQ(applied[0].type, RecordType::kPut);
  EXPECT_EQ(applied[0].key, "a");
  EXPECT_EQ(applied[1].value, std::string(1000, 'x'));
  EXPECT_EQ(applied[2].type, RecordType::kDelete);
  EXPECT_EQ(applied[3].key, "");
  EXPECT_FALSE(applied[0].from_checkpoint);
  EXPECT_EQ(fresh.stats().replayed_records, 4u);
  EXPECT_EQ(fresh.stats().snapshot_records, 0u);
  EXPECT_EQ(fresh.stats().torn_tails, 0u);
}

TEST(Wal, SegmentsSealAtTargetAndStayOrdered) {
  auto backend = std::make_shared<MemoryBackend>();
  WalOptions opts;
  opts.segment_target_bytes = 256;
  Wal wal(backend, opts);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(wal.AppendPut("key-" + std::to_string(i), std::string(32, 'v')).ok());
  }
  EXPECT_GT(wal.stats().segments_sealed, 3u);
  EXPECT_EQ(wal.active_segment(), wal.stats().segments_sealed + 1);

  Wal fresh(backend, opts);
  std::vector<Applied> applied;
  ASSERT_TRUE(fresh.Recover(Collect(&applied)).ok());
  ASSERT_EQ(applied.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(applied[i].key, "key-" + std::to_string(i));  // id-order replay
  }
  // Recovery opens a fresh active segment past everything on disk.
  EXPECT_GT(fresh.active_segment(), wal.stats().segments_sealed);
}

TEST(MemoryBackend, CrashKeepsSyncedPrefixAndHalfTheTail) {
  MemoryBackend b;
  ASSERT_TRUE(b.Append("f", "0123456789").ok());
  ASSERT_TRUE(b.Sync("f").ok());
  ASSERT_TRUE(b.Append("f", "abcdefgh").ok());  // 8 unsynced bytes
  b.Crash();
  auto data = b.Read("f");
  ASSERT_TRUE(data.ok());
  // Synced 10 + half of the 8-byte unsynced tail.
  EXPECT_EQ(*data, "0123456789abcd");
  EXPECT_EQ(b.crashes(), 1u);
  EXPECT_EQ(b.crash_torn_bytes(), 4u);
  // Survivors count as durable: a second crash with no new appends is a
  // no-op, which is what makes double-kill churn schedules reproducible.
  b.Crash();
  EXPECT_EQ(*b.Read("f"), "0123456789abcd");
}

TEST(MemoryBackend, RenameIsAtomicPublish) {
  MemoryBackend b;
  ASSERT_TRUE(b.Append("tmp", "payload").ok());
  ASSERT_TRUE(b.Sync("tmp").ok());
  ASSERT_TRUE(b.Rename("tmp", "final").ok());
  EXPECT_FALSE(b.Exists("tmp"));
  ASSERT_TRUE(b.Exists("final"));
  EXPECT_EQ(*b.Read("final"), "payload");
  b.Crash();  // synced marker must survive the rename
  EXPECT_EQ(*b.Read("final"), "payload");
}

TEST(Wal, TornTailTruncationIsDeterministic) {
  // Two byte-identical histories crash and recover to byte-identical
  // backends and identical replay sequences.
  auto run = [](std::vector<Applied>* applied, std::string* seg_bytes) {
    auto backend = std::make_shared<MemoryBackend>();
    WalOptions opts;
    opts.sync_every_records = 0;  // leave a crashable tail
    {
      Wal wal(backend, opts);
      for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(wal.AppendPut("synced-" + std::to_string(i), "v").ok());
      }
      ASSERT_TRUE(wal.Sync().ok());
      for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(wal.AppendPut("unsynced-" + std::to_string(i), "v").ok());
      }
      // A large final record guarantees the crash's half-tail cut lands
      // INSIDE a record (not on a frame boundary), so truncation really runs.
      ASSERT_TRUE(wal.AppendPut("unsynced-big", std::string(2048, 'z')).ok());
    }
    backend->Crash();
    Wal fresh(backend, opts);
    ASSERT_TRUE(fresh.Recover(Collect(applied)).ok());
    EXPECT_EQ(fresh.stats().torn_tails, 1u);
    EXPECT_GT(fresh.stats().torn_bytes, 0u);
    *seg_bytes = *backend->Read(Wal::SegmentName(1));
  };
  std::vector<Applied> a1, a2;
  std::string b1, b2;
  run(&a1, &b1);
  run(&a2, &b2);
  ASSERT_EQ(a1.size(), a2.size());
  for (size_t i = 0; i < a1.size(); ++i) EXPECT_EQ(a1[i].key, a2[i].key);
  EXPECT_EQ(b1, b2);  // truncation left byte-identical segments
  // All synced records survived; the torn tail only cost unsynced ones.
  ASSERT_GE(a1.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a1[i].key, "synced-" + std::to_string(i));
  }
}

TEST(Wal, GarbageTailTruncatedAtLastWholeRecord) {
  auto backend = std::make_shared<MemoryBackend>();
  {
    Wal wal(backend);
    ASSERT_TRUE(wal.AppendPut("k1", "v1").ok());
    ASSERT_TRUE(wal.AppendPut("k2", "v2").ok());
  }
  // Simulate a partial frame header left by a crash (embedded NUL included).
  std::string whole = *backend->Read(Wal::SegmentName(1));
  ASSERT_TRUE(backend->Append(Wal::SegmentName(1), std::string("\x05\x00", 2)).ok());
  Wal fresh(backend);
  std::vector<Applied> applied;
  ASSERT_TRUE(fresh.Recover(Collect(&applied)).ok());
  EXPECT_EQ(applied.size(), 2u);
  EXPECT_EQ(fresh.stats().torn_tails, 1u);
  EXPECT_EQ(fresh.stats().torn_bytes, 2u);
  EXPECT_EQ(*backend->Read(Wal::SegmentName(1)), whole);
}

TEST(Wal, CorruptedCrcStopsReplayAtLastGoodRecord) {
  auto backend = std::make_shared<MemoryBackend>();
  {
    Wal wal(backend);
    ASSERT_TRUE(wal.AppendPut("good", "v").ok());
    ASSERT_TRUE(wal.AppendPut("flipped", "v").ok());
  }
  std::string bytes = *backend->Read(Wal::SegmentName(1));
  bytes.back() ^= 0x40;  // flip a payload bit in the second record
  ASSERT_TRUE(backend->Truncate(Wal::SegmentName(1), 0).ok());
  ASSERT_TRUE(backend->Append(Wal::SegmentName(1), bytes).ok());
  Wal fresh(backend);
  std::vector<Applied> applied;
  ASSERT_TRUE(fresh.Recover(Collect(&applied)).ok());
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0].key, "good");
  EXPECT_EQ(fresh.stats().torn_tails, 1u);
}

std::map<std::string, std::string> SnapshotMap(int n) {
  std::map<std::string, std::string> m;
  for (int i = 0; i < n; ++i) m["snap-" + std::to_string(i)] = "v" + std::to_string(i);
  return m;
}

Wal::SnapshotIter MapIter(const std::map<std::string, std::string>& m) {
  auto it = std::make_shared<std::map<std::string, std::string>::const_iterator>(m.begin());
  return [&m, it](std::string_view* key, std::string_view* value) {
    if (*it == m.end()) return false;
    *key = (*it)->first;
    *value = (*it)->second;
    ++*it;
    return true;
  };
}

TEST(Wal, CheckpointRetiresSegmentsAndBoundsReplay) {
  auto backend = std::make_shared<MemoryBackend>();
  WalOptions opts;
  opts.segment_target_bytes = 128;
  Wal wal(backend, opts);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(wal.AppendPut("old-" + std::to_string(i), std::string(16, 'x')).ok());
  }
  const auto snapshot = SnapshotMap(5);
  ASSERT_TRUE(wal.WriteCheckpoint(MapIter(snapshot)).ok());
  EXPECT_EQ(wal.stats().checkpoints, 1u);
  EXPECT_GT(wal.stats().segments_retired, 0u);
  // Everything below the watermark is gone from the backend.
  for (const std::string& name : backend->List()) {
    uint64_t id = 0;
    if (Wal::ParseSegmentName(name, &id)) {
      EXPECT_GE(id, wal.first_live_segment());
    }
  }
  // Post-checkpoint tail.
  ASSERT_TRUE(wal.AppendPut("tail-1", "t").ok());
  ASSERT_TRUE(wal.AppendDelete("snap-0").ok());

  Wal fresh(backend, opts);
  std::vector<Applied> applied;
  ASSERT_TRUE(fresh.Recover(Collect(&applied)).ok());
  EXPECT_EQ(fresh.stats().snapshot_records, 5u);
  EXPECT_EQ(fresh.stats().replayed_records, 2u);  // tail only, not the 30
  ASSERT_EQ(applied.size(), 7u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(applied[i].from_checkpoint);
    EXPECT_EQ(applied[i].key, "snap-" + std::to_string(i));  // sorted
  }
  EXPECT_EQ(applied[5].key, "tail-1");
  EXPECT_EQ(applied[6].type, RecordType::kDelete);
}

TEST(Wal, CrashMidCheckpointFallsBackToOldManifest) {
  auto backend = std::make_shared<MemoryBackend>();
  Wal wal(backend);
  ASSERT_TRUE(wal.AppendPut("a", "1").ok());
  const auto snap1 = SnapshotMap(3);
  ASSERT_TRUE(wal.WriteCheckpoint(MapIter(snap1)).ok());
  ASSERT_TRUE(wal.AppendPut("b", "2").ok());

  // Second checkpoint "crashes" after syncing MANIFEST.tmp, before rename.
  const auto snap2 = SnapshotMap(9);
  wal.FailNextCheckpointPublish();
  Status st = wal.WriteCheckpoint(MapIter(snap2));
  EXPECT_TRUE(st.IsAborted());
  EXPECT_EQ(wal.stats().checkpoint_failures, 1u);
  ASSERT_TRUE(backend->Exists("MANIFEST.tmp"));
  backend->Crash();

  Wal fresh(backend);
  std::vector<Applied> applied;
  ASSERT_TRUE(fresh.Recover(Collect(&applied)).ok());
  // The OLD snapshot (3 records) plus the post-snap1 tail; snap2 is nowhere.
  EXPECT_EQ(fresh.stats().snapshot_records, 3u);
  EXPECT_FALSE(backend->Exists("MANIFEST.tmp"));  // residue cleared
  bool saw_b = false;
  for (const auto& a : applied) {
    EXPECT_TRUE(a.key == "a" || a.key == "b" || a.key.rfind("snap-", 0) == 0)
        << a.key;
    if (a.key == "b") saw_b = true;
  }
  EXPECT_TRUE(saw_b) << "post-checkpoint tail record lost";
}

TEST(Wal, CrashMidSealTearsNonFinalSegment) {
  auto backend = std::make_shared<MemoryBackend>();
  WalOptions opts;
  opts.sync_every_records = 0;
  opts.segment_target_bytes = 64;
  Wal wal(backend, opts);
  wal.SkipNextSealSync();
  // Fill past the target: seals segment 1 WITHOUT syncing it.
  ASSERT_TRUE(wal.AppendPut("first", std::string(80, 'a')).ok());
  ASSERT_TRUE(wal.AppendPut("second", std::string(80, 'b')).ok());
  ASSERT_TRUE(wal.Sync().ok());  // segment 2 is durable; segment 1 is not
  ASSERT_GE(wal.active_segment(), 2u);
  backend->Crash();

  Wal fresh(backend, opts);
  std::vector<Applied> applied;
  ASSERT_TRUE(fresh.Recover(Collect(&applied)).ok());
  // Segment 1's record was torn; segment 2's survived. Replay is still in
  // id order and deterministic.
  EXPECT_EQ(fresh.stats().torn_tails, 1u);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0].key, "second");
}

TEST(Wal, StaticReplayIsReadOnly) {
  auto backend = std::make_shared<MemoryBackend>();
  Wal wal(backend);
  ASSERT_TRUE(wal.AppendPut("k", "v").ok());
  const auto before = backend->List();
  std::vector<Applied> applied;
  ASSERT_TRUE(Wal::Replay(*backend, Collect(&applied)).ok());
  EXPECT_EQ(applied.size(), 1u);
  EXPECT_EQ(backend->List(), before);
}

// ---------------------------------------------------------------------------
// FileBackend: the one real-file implementation (bench/recovery use).

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/orchestra-wal-test-XXXXXX";
    char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr) << "mkdtemp failed";
    if (dir != nullptr) path_ = dir;
  }
  ~TempDir() {
    // Best-effort cleanup through the backend's own namespace ops.
    FileBackend b(path_);
    for (const std::string& name : b.List()) b.Remove(name).ok();
    std::remove(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(FileBackend, NamespaceRoundTrip) {
  TempDir dir;
  FileBackend b(dir.path());
  ASSERT_TRUE(b.Append("seg", "hello ").ok());
  ASSERT_TRUE(b.Append("seg", "world").ok());
  ASSERT_TRUE(b.Sync("seg").ok());
  EXPECT_EQ(*b.Read("seg"), "hello world");
  ASSERT_TRUE(b.Truncate("seg", 5).ok());
  EXPECT_EQ(*b.Read("seg"), "hello");
  ASSERT_TRUE(b.Append("seg", "!").ok());
  EXPECT_EQ(*b.Read("seg"), "hello!");
  ASSERT_TRUE(b.Rename("seg", "pub").ok());
  EXPECT_FALSE(b.Exists("seg"));
  EXPECT_EQ(*b.Read("pub"), "hello!");
  EXPECT_EQ(b.List(), std::vector<std::string>{"pub"});
  ASSERT_TRUE(b.Remove("pub").ok());
  ASSERT_TRUE(b.Remove("pub").ok());  // idempotent
  EXPECT_TRUE(b.List().empty());
  EXPECT_TRUE(b.Read("absent").status().IsNotFound());
}

TEST(FileBackend, WalRecoveryOnRealFiles) {
  TempDir dir;
  WalOptions opts;
  opts.segment_target_bytes = 512;
  {
    Wal wal(std::make_shared<FileBackend>(dir.path()), opts);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(wal.AppendPut("k" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
    const auto snapshot = SnapshotMap(4);
    ASSERT_TRUE(wal.WriteCheckpoint(MapIter(snapshot)).ok());
    ASSERT_TRUE(wal.AppendPut("tail", "t").ok());
  }
  Wal fresh(std::make_shared<FileBackend>(dir.path()), opts);
  std::vector<Applied> applied;
  ASSERT_TRUE(fresh.Recover(Collect(&applied)).ok());
  EXPECT_EQ(fresh.stats().snapshot_records, 4u);
  EXPECT_EQ(fresh.stats().replayed_records, 1u);
  EXPECT_EQ(applied.back().key, "tail");
}

// ---------------------------------------------------------------------------
// LocalStore + WAL: crash/recover equivalence against a model map.

localstore::StoreOptions DurableOptions(std::shared_ptr<MemoryBackend> backend,
                                        uint64_t checkpoint_every,
                                        uint64_t sync_every) {
  localstore::StoreOptions opts;
  opts.wal_backend = std::move(backend);
  opts.checkpoint_every_records = checkpoint_every;
  opts.wal.sync_every_records = sync_every;
  opts.wal.segment_target_bytes = 4096;
  return opts;
}

TEST(LocalStoreWal, CrashRecoverMatchesModel) {
  auto backend = std::make_shared<MemoryBackend>();
  localstore::LocalStore store(
      DurableOptions(backend, /*checkpoint_every=*/64, /*sync_every=*/1));
  std::map<std::string, std::string> model;
  Rng rng(11);
  for (int op = 0; op < 1200; ++op) {
    std::string k = "key-" + std::to_string(rng.Uniform(150));
    if (rng.OneIn(4)) {
      ASSERT_TRUE(store.Delete(k).ok());
      model.erase(k);
    } else {
      std::string v = rng.AlphaString(24);
      ASSERT_TRUE(store.Put(k, v).ok());
      model[k] = v;
    }
  }
  EXPECT_GT(store.stats().checkpoints, 0u);
  EXPECT_GT(store.stats().segments_retired, 0u);

  backend->Crash();  // sync_every=1: nothing unsynced, nothing lost
  ASSERT_TRUE(store.Recover().ok());
  ASSERT_EQ(store.entry_count(), model.size());
  for (const auto& [k, v] : model) {
    auto got = store.Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, v);
  }
  // Tail-only replay: far fewer records than the 1200 mutations.
  EXPECT_LT(store.stats().replayed_records, 200u);
  // Ordered iteration equivalence too (the tree rebuilt correctly).
  auto it = store.Seek("");
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), k);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

TEST(LocalStoreWal, RepeatedCrashesStayDeterministic) {
  // Same seed, same crash points => byte-identical WAL state and identical
  // recovered stores across two independent runs.
  auto run = [](std::string* digest) {
    auto backend = std::make_shared<MemoryBackend>();
    localstore::LocalStore store(
        DurableOptions(backend, /*checkpoint_every=*/48, /*sync_every=*/4));
    Rng rng(29);
    for (int round = 0; round < 5; ++round) {
      for (int op = 0; op < 200; ++op) {
        std::string k = "k" + std::to_string(rng.Uniform(80));
        if (rng.OneIn(5)) {
          ASSERT_TRUE(store.Delete(k).ok());
        } else {
          ASSERT_TRUE(store.Put(k, rng.AlphaString(16)).ok());
        }
      }
      backend->Crash();
      ASSERT_TRUE(store.Recover().ok());
    }
    for (const std::string& name : backend->List()) {
      digest->append(name);
      digest->push_back('=');
      digest->append(*backend->Read(name));
      digest->push_back('\n');
    }
    for (auto it = store.Seek(""); it.Valid(); it.Next()) {
      digest->append(it.key());
      digest->push_back(':');
      digest->append(it.value());
      digest->push_back(';');
    }
  };
  std::string d1, d2;
  run(&d1);
  run(&d2);
  EXPECT_EQ(d1, d2);
}

TEST(LocalStoreWal, UnsyncedLossIsAnOperationPrefix) {
  // With a lazy sync cadence a crash loses a SUFFIX of operations: the
  // recovered store must equal the model as of some prefix of the op stream.
  auto backend = std::make_shared<MemoryBackend>();
  localstore::LocalStore store(
      DurableOptions(backend, /*checkpoint_every=*/0, /*sync_every=*/0));
  std::vector<std::map<std::string, std::string>> snapshots;
  std::map<std::string, std::string> model;
  snapshots.push_back(model);
  Rng rng(3);
  for (int op = 0; op < 120; ++op) {
    std::string k = "k" + std::to_string(rng.Uniform(20));
    if (rng.OneIn(4)) {
      ASSERT_TRUE(store.Delete(k).ok());
      model.erase(k);
    } else {
      std::string v = rng.AlphaString(8);
      ASSERT_TRUE(store.Put(k, v).ok());
      model[k] = v;
    }
    snapshots.push_back(model);
  }
  backend->Crash();
  ASSERT_TRUE(store.Recover().ok());
  std::map<std::string, std::string> recovered;
  for (auto it = store.Seek(""); it.Valid(); it.Next()) {
    recovered[std::string(it.key())] = std::string(it.value());
  }
  bool is_prefix_state = false;
  for (const auto& snap : snapshots) {
    if (snap == recovered) {
      is_prefix_state = true;
      break;
    }
  }
  EXPECT_TRUE(is_prefix_state)
      << "recovered state matches no prefix of the operation stream";
}

TEST(LocalStoreWal, ExplicitCheckpointResetsTail) {
  auto backend = std::make_shared<MemoryBackend>();
  localstore::LocalStore store(
      DurableOptions(backend, /*checkpoint_every=*/0, /*sync_every=*/1));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Put("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(store.Checkpoint().ok());
  EXPECT_EQ(store.stats().checkpoints, 1u);
  ASSERT_TRUE(store.Put("after", "v").ok());
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_EQ(store.stats().replayed_records, 1u);  // just "after"
  EXPECT_EQ(store.entry_count(), 51u);
}

// ---------------------------------------------------------------------------
// Threaded smoke: one writer appending + checkpointing while readers replay
// through the static read-only path. MemoryBackend serializes internally;
// run under -fsanitize=thread in CI (ci/check.sh tsan stage).

TEST(WalThreads, ConcurrentReplayDuringWrites) {
  auto backend = std::make_shared<MemoryBackend>();
  WalOptions opts;
  opts.segment_target_bytes = 2048;
  Wal wal(backend, opts);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::atomic<uint64_t> replays{0};
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t seen = 0;
        Status st = Wal::Replay(*backend, [&](RecordType, std::string_view,
                                              std::string_view, bool) { ++seen; });
        ASSERT_TRUE(st.ok());
        replays.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::map<std::string, std::string> live;
  for (int i = 0; i < 600; ++i) {
    std::string k = "k" + std::to_string(i % 37);
    ASSERT_TRUE(wal.AppendPut(k, std::string(64, 'v')).ok());
    live[k] = "v";
    if (i % 150 == 149) {
      ASSERT_TRUE(wal.WriteCheckpoint(MapIter(live)).ok());
    }
  }
  // Make sure every reader observed the log at least once before stopping
  // (the writer can outpace thread startup on a fast machine).
  while (replays.load(std::memory_order_relaxed) < 2) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_GT(replays.load(), 0u);
  EXPECT_EQ(wal.stats().checkpoints, 4u);
}

}  // namespace
}  // namespace orchestra::wal
