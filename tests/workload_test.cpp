#include <gtest/gtest.h>

#include <set>

#include "optimizer/optimizer.h"
#include "query/reference.h"
#include "sql/parser.h"
#include "workload/stbench.h"
#include "workload/tpch.h"

namespace orchestra::workload {
namespace {

using storage::Value;
using storage::ValueType;

// ---------------------------------------------------------------------------
// STBenchmark generator

TEST(StbGenerate, CopyShape) {
  StbConfig cfg;
  cfg.tuples_per_relation = 100;
  auto rels = StbGenerate(StbScenario::kCopy, cfg);
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(rels[0].def.schema.arity(), 7u);
  EXPECT_EQ(rels[0].rows.size(), 100u);
  // Wide 25-char-ish strings (the paper calls out their width explicitly).
  const auto& row = rels[0].rows[5];
  EXPECT_EQ(row.size(), 7u);
  EXPECT_GE(row[3].AsString().size(), 15u);
}

TEST(StbGenerate, SelectHasIntegerAttr) {
  StbConfig cfg;
  cfg.tuples_per_relation = 50;
  auto rels = StbGenerate(StbScenario::kSelect, cfg);
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(rels[0].def.schema.column(1).type, ValueType::kInt64);
}

TEST(StbGenerate, JoinHasReferentialIntegrity) {
  StbConfig cfg;
  cfg.tuples_per_relation = 200;
  auto rels = StbGenerate(StbScenario::kJoin, cfg);
  ASSERT_EQ(rels.size(), 3u);
  EXPECT_EQ(rels[0].def.schema.arity(), 5u);
  EXPECT_EQ(rels[1].def.schema.arity(), 7u);
  EXPECT_EQ(rels[2].def.schema.arity(), 9u);
  // Every mid row's (b1,b2) pair exists in the dimension.
  std::set<std::string> dim_pairs;
  for (const auto& t : rels[0].rows) {
    dim_pairs.insert(t[0].AsString() + "|" + t[1].AsString());
  }
  for (const auto& t : rels[1].rows) {
    EXPECT_TRUE(dim_pairs.count(t[1].AsString() + "|" + t[2].AsString()));
  }
}

TEST(StbGenerate, CorrespondencePairsResolve) {
  StbConfig cfg;
  cfg.tuples_per_relation = 100;
  auto rels = StbGenerate(StbScenario::kCorrespondence, cfg);
  ASSERT_EQ(rels.size(), 2u);
  std::set<std::string> pairs;
  for (const auto& t : rels[1].rows) {
    pairs.insert(t[0].AsString() + "|" + t[1].AsString());
  }
  for (const auto& t : rels[0].rows) {
    EXPECT_TRUE(pairs.count(t[1].AsString() + "|" + t[2].AsString()));
  }
}

TEST(StbGenerate, Deterministic) {
  StbConfig cfg;
  cfg.tuples_per_relation = 64;
  auto a = StbGenerate(StbScenario::kCopy, cfg);
  auto b = StbGenerate(StbScenario::kCopy, cfg);
  ASSERT_EQ(a[0].rows.size(), b[0].rows.size());
  for (size_t i = 0; i < a[0].rows.size(); ++i) {
    EXPECT_EQ(a[0].rows[i], b[0].rows[i]);
  }
}

class StbScenarioParse : public ::testing::TestWithParam<StbScenario> {};

TEST_P(StbScenarioParse, SqlParsesAndPlansAndRunsOnReference) {
  StbConfig cfg;
  cfg.tuples_per_relation = 300;
  auto rels = StbGenerate(GetParam(), cfg);
  auto catalog = [&rels](const std::string& name) -> Result<storage::RelationDef> {
    for (const auto& r : rels) {
      if (r.def.name == name) return r.def;
    }
    return Status::NotFound(name);
  };
  auto q = sql::ParseAndAnalyze(StbQuerySql(GetParam()), catalog);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  optimizer::Optimizer opt(StatsFor(rels), optimizer::CostParams{});
  auto planned = opt.Plan(*q);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();

  auto rows = query::ReferenceExecute(planned->plan, AsReferenceDb(rels));
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GT(rows->size(), 0u) << StbScenarioName(GetParam());
  if (GetParam() == StbScenario::kCopy) {
    EXPECT_EQ(rows->size(), 300u);
  }
  if (GetParam() == StbScenario::kJoin) {
    EXPECT_EQ(rows->size(), 300u);
  }
  if (GetParam() == StbScenario::kCorrespondence) {
    EXPECT_EQ(rows->size(), 300u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, StbScenarioParse,
                         ::testing::ValuesIn(kAllStbScenarios),
                         [](const auto& test_info) {
                           return StbScenarioName(test_info.param);
                         });

// ---------------------------------------------------------------------------
// TPC-H generator

class TpchTest : public ::testing::Test {
 protected:
  TpchTest() {
    cfg.scale_factor = 0.001;
    cfg.num_partitions = 8;
    rels = TpchGenerate(cfg);
    for (const auto& r : rels) by_name[r.def.name] = &r;
  }
  TpchConfig cfg;
  std::vector<GeneratedRelation> rels;
  std::map<std::string, const GeneratedRelation*> by_name;
};

TEST_F(TpchTest, AllEightTables) {
  EXPECT_EQ(rels.size(), 8u);
  for (const char* name : {"region", "nation", "supplier", "part", "partsupp",
                           "customer", "orders", "lineitem"}) {
    EXPECT_TRUE(by_name.count(name)) << name;
  }
}

TEST_F(TpchTest, CardinalityRatios) {
  EXPECT_EQ(by_name["region"]->rows.size(), 5u);
  EXPECT_EQ(by_name["nation"]->rows.size(), 25u);
  EXPECT_EQ(by_name["partsupp"]->rows.size(), 4 * by_name["part"]->rows.size());
  double lines_per_order = static_cast<double>(by_name["lineitem"]->rows.size()) /
                           static_cast<double>(by_name["orders"]->rows.size());
  EXPECT_GT(lines_per_order, 2.0);
  EXPECT_LT(lines_per_order, 6.0);
}

TEST_F(TpchTest, SmallTablesReplicatedEverywhere) {
  EXPECT_TRUE(by_name["region"]->def.replicate_everywhere);
  EXPECT_TRUE(by_name["nation"]->def.replicate_everywhere);
  EXPECT_FALSE(by_name["lineitem"]->def.replicate_everywhere);
}

TEST_F(TpchTest, LineitemPlacedByOrderkey) {
  const auto& def = by_name["lineitem"]->def;
  EXPECT_EQ(def.schema.key_arity(), 2u);
  EXPECT_EQ(def.effective_partition_arity(), 1u);
}

TEST_F(TpchTest, ForeignKeysResolve) {
  std::set<int64_t> orderkeys, custkeys, suppkeys, partkeys;
  for (const auto& t : by_name["orders"]->rows) orderkeys.insert(t[0].AsInt64());
  for (const auto& t : by_name["customer"]->rows) custkeys.insert(t[0].AsInt64());
  for (const auto& t : by_name["supplier"]->rows) suppkeys.insert(t[0].AsInt64());
  for (const auto& t : by_name["part"]->rows) partkeys.insert(t[0].AsInt64());
  for (const auto& t : by_name["orders"]->rows) {
    EXPECT_TRUE(custkeys.count(t[1].AsInt64()));
  }
  for (const auto& t : by_name["lineitem"]->rows) {
    EXPECT_TRUE(orderkeys.count(t[0].AsInt64()));
    EXPECT_TRUE(partkeys.count(t[2].AsInt64()));
    EXPECT_TRUE(suppkeys.count(t[3].AsInt64()));
  }
}

TEST_F(TpchTest, DatesAndFlagsFollowSpecRules) {
  int64_t cutoff = TpchDate(1995, 6, 17);
  for (const auto& t : by_name["lineitem"]->rows) {
    int64_t shipdate = t[10].AsInt64();
    int64_t receipt = t[12].AsInt64();
    EXPECT_GT(receipt, shipdate);
    const std::string& rf = t[8].AsString();
    const std::string& ls = t[9].AsString();
    if (receipt <= cutoff) {
      EXPECT_TRUE(rf == "R" || rf == "A");
    } else {
      EXPECT_EQ(rf, "N");
    }
    EXPECT_EQ(ls, shipdate > cutoff ? "O" : "F");
    double disc = t[6].AsDouble();
    EXPECT_GE(disc, 0.0);
    EXPECT_LE(disc, 0.10);
  }
}

class TpchQueryParse : public ::testing::TestWithParam<std::string> {};

TEST_P(TpchQueryParse, ParsesPlansAndRunsOnReference) {
  TpchConfig cfg;
  cfg.scale_factor = 0.002;
  cfg.num_partitions = 8;
  auto rels = TpchGenerate(cfg);
  auto catalog = [&rels](const std::string& name) -> Result<storage::RelationDef> {
    for (const auto& r : rels) {
      if (r.def.name == name) return r.def;
    }
    return Status::NotFound(name);
  };
  auto q = sql::ParseAndAnalyze(TpchQuerySql(GetParam()), catalog);
  ASSERT_TRUE(q.ok()) << GetParam() << ": " << q.status().ToString();
  optimizer::CostParams params;
  params.num_nodes = 8;
  optimizer::Optimizer opt(StatsFor(rels), params);
  auto planned = opt.Plan(*q);
  ASSERT_TRUE(planned.ok()) << GetParam() << ": " << planned.status().ToString();

  auto rows = query::ReferenceExecute(planned->plan, AsReferenceDb(rels));
  ASSERT_TRUE(rows.ok()) << GetParam() << ": " << rows.status().ToString();
  // Q1 groups by (returnflag, linestatus): at most 2x3 combinations, and the
  // generator rules allow only {A,F},{R,F},{N,F},{N,O}.
  if (GetParam() == "Q1") {
    EXPECT_LE(rows->size(), 4u);
    EXPECT_GE(rows->size(), 3u);
  }
  if (GetParam() == "Q6") {
    ASSERT_EQ(rows->size(), 1u);
    EXPECT_GT((*rows)[0][0].NumericValue(), 0.0);
  }
  if (GetParam() == "Q3" || GetParam() == "Q10") {
    EXPECT_GT(rows->size(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperQueries, TpchQueryParse,
                         ::testing::ValuesIn(TpchQueryNames()),
                         [](const auto& test_info) { return test_info.param; });

}  // namespace
}  // namespace orchestra::workload
