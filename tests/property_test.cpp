// Property suites: randomized histories and queries checked against simple
// models. These are the invariants the paper's design promises:
//  * every published epoch is a frozen, exactly-reconstructible snapshot
//    (§IV), regardless of the interleaving of inserts/updates/deletes;
//  * distributed execution returns the same bag as a single-node reference
//    for arbitrary select-project-join-aggregate plans (§V);
//  * replication keeps every epoch readable after a node failure.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "deploy/deployment.h"
#include "query/reference.h"
#include "sql/parser.h"
#include "optimizer/optimizer.h"

namespace orchestra {
namespace {

using storage::Epoch;
using storage::RelationDef;
using storage::Schema;
using storage::Tuple;
using storage::Update;
using storage::UpdateBatch;
using storage::Value;
using storage::ValueType;

// ---------------------------------------------------------------------------
// Random publish histories: every epoch is a frozen snapshot.

class PublishHistoryProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PublishHistoryProperty, EveryEpochReconstructsExactly) {
  Rng rng(GetParam());
  deploy::DeploymentOptions opts;
  opts.num_nodes = 3 + rng.Uniform(4);
  deploy::Deployment dep(opts);

  RelationDef def;
  def.name = "H";
  def.schema = Schema({{"k", ValueType::kInt64}, {"v", ValueType::kString}}, 1);
  def.num_partitions = 8 + static_cast<uint32_t>(rng.Uniform(12));
  ASSERT_TRUE(dep.CreateRelation(0, def).ok());

  // Model: key -> value, snapshotted at each epoch.
  std::map<int64_t, std::string> model;
  std::vector<std::map<int64_t, std::string>> snapshots;  // [epoch-1]
  const int epochs = 4 + static_cast<int>(rng.Uniform(4));
  for (int e = 0; e < epochs; ++e) {
    UpdateBatch batch;
    int ops = 1 + static_cast<int>(rng.Uniform(30));
    for (int i = 0; i < ops; ++i) {
      int64_t key = static_cast<int64_t>(rng.Uniform(40));
      if (!model.empty() && rng.OneIn(4)) {
        batch["H"].push_back(Update::Delete({Value(key), Value(std::string())}));
        model.erase(key);
      } else {
        std::string v = rng.AlphaString(8);
        batch["H"].push_back(Update::Insert({Value(key), Value(v)}));
        model[key] = v;
      }
    }
    auto epoch = dep.Publish(0, std::move(batch));
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    ASSERT_EQ(*epoch, static_cast<Epoch>(e + 1));
    snapshots.push_back(model);
  }

  // Every historical epoch must reconstruct exactly, from any node.
  for (int e = 0; e < epochs; ++e) {
    auto rows = dep.Retrieve(rng.Uniform(dep.size()), "H",
                             static_cast<Epoch>(e + 1));
    ASSERT_TRUE(rows.ok()) << "epoch " << (e + 1);
    std::map<int64_t, std::string> got;
    for (const Tuple& t : *rows) got[t[0].AsInt64()] = t[1].AsString();
    EXPECT_EQ(got, snapshots[e]) << "epoch " << (e + 1) << " diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PublishHistoryProperty,
                         ::testing::Values(11, 22, 33, 44));

TEST_P(PublishHistoryProperty, SnapshotsSurviveNodeFailure) {
  Rng rng(GetParam() * 1337);
  deploy::DeploymentOptions opts;
  opts.num_nodes = 5;
  opts.replication = 3;
  deploy::Deployment dep(opts);

  RelationDef def;
  def.name = "H";
  def.schema = Schema({{"k", ValueType::kInt64}, {"v", ValueType::kString}}, 1);
  def.num_partitions = 16;
  ASSERT_TRUE(dep.CreateRelation(0, def).ok());

  std::map<int64_t, std::string> model;
  UpdateBatch batch;
  for (int i = 0; i < 150; ++i) {
    int64_t key = static_cast<int64_t>(rng.Uniform(200));
    std::string v = rng.AlphaString(12);
    batch["H"].push_back(Update::Insert({Value(key), Value(v)}));
    model[key] = v;
  }
  auto epoch = dep.Publish(0, std::move(batch));
  ASSERT_TRUE(epoch.ok());

  // Kill a random non-coordinating node; r=3 keeps every range served.
  net::NodeId victim = 1 + static_cast<net::NodeId>(rng.Uniform(dep.size() - 1));
  dep.KillNode(victim);
  auto rows = dep.Retrieve(0, "H", *epoch);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  std::map<int64_t, std::string> got;
  for (const Tuple& t : *rows) got[t[0].AsInt64()] = t[1].AsString();
  EXPECT_EQ(got, model);
}

// ---------------------------------------------------------------------------
// Random SPJA queries: distributed == reference.

struct RandomQueryCase {
  uint64_t seed;
};

class RandomQueryProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomQueryProperty, DistributedMatchesReference) {
  Rng rng(GetParam());
  deploy::DeploymentOptions opts;
  opts.num_nodes = 3 + rng.Uniform(4);
  deploy::Deployment dep(opts);

  // Two relations with integer join attributes and a measure.
  RelationDef fact;
  fact.name = "F";
  fact.schema = Schema({{"fk", ValueType::kInt64},
                        {"dim", ValueType::kInt64},
                        {"grp", ValueType::kInt64},
                        {"m", ValueType::kDouble}},
                       1);
  fact.num_partitions = 12;
  RelationDef dim;
  dim.name = "D";
  dim.schema = Schema({{"dk", ValueType::kInt64}, {"label", ValueType::kString}}, 1);
  dim.num_partitions = 12;
  ASSERT_TRUE(dep.CreateRelation(0, fact).ok());
  ASSERT_TRUE(dep.CreateRelation(0, dim).ok());

  query::ReferenceDatabase ref_db;
  UpdateBatch batch;
  int n_dim = 10 + static_cast<int>(rng.Uniform(20));
  for (int i = 0; i < n_dim; ++i) {
    Tuple t = {Value(static_cast<int64_t>(i)),
               Value("L" + std::to_string(i % 5))};
    ref_db["D"].push_back(t);
    batch["D"].push_back(Update::Insert(std::move(t)));
  }
  int n_fact = 100 + static_cast<int>(rng.Uniform(300));
  for (int i = 0; i < n_fact; ++i) {
    Tuple t = {Value(static_cast<int64_t>(i)),
               Value(static_cast<int64_t>(rng.Uniform(n_dim))),
               Value(static_cast<int64_t>(rng.Uniform(7))),
               Value(rng.NextDouble() * 50)};
    ref_db["F"].push_back(t);
    batch["F"].push_back(Update::Insert(std::move(t)));
  }
  auto epoch = dep.Publish(0, std::move(batch));
  ASSERT_TRUE(epoch.ok());

  auto catalog = [&dep](const std::string& name) {
    return dep.storage(0).Relation(name);
  };
  optimizer::StatsCatalog stats;
  stats["F"] = {static_cast<uint64_t>(n_fact), 36, {}};
  stats["D"] = {static_cast<uint64_t>(n_dim), 16, {}};
  optimizer::CostParams params;
  params.num_nodes = dep.size();

  // A few random query shapes per seed.
  std::vector<std::string> queries;
  int64_t cut = static_cast<int64_t>(rng.Uniform(n_fact));
  queries.push_back("SELECT fk, m FROM F WHERE fk < " + std::to_string(cut));
  queries.push_back("SELECT grp, COUNT(*), SUM(m) FROM F GROUP BY grp");
  queries.push_back("SELECT label, SUM(m) FROM F, D WHERE F.dim = D.dk "
                    "GROUP BY label");
  queries.push_back("SELECT fk, label FROM F, D WHERE F.dim = D.dk AND grp = " +
                    std::to_string(rng.Uniform(7)));
  queries.push_back("SELECT MIN(m), MAX(m), COUNT(*) FROM F WHERE grp <> 3");

  for (const std::string& text : queries) {
    auto analyzed = sql::ParseAndAnalyze(text, catalog);
    ASSERT_TRUE(analyzed.ok()) << text << ": " << analyzed.status().ToString();
    optimizer::Optimizer opt(stats, params);
    auto planned = opt.Plan(*analyzed);
    ASSERT_TRUE(planned.ok()) << text << ": " << planned.status().ToString();
    auto got = dep.ExecuteQuery(rng.Uniform(dep.size()), planned->plan, *epoch);
    ASSERT_TRUE(got.ok()) << text << ": " << got.status().ToString();
    auto want = query::ReferenceExecute(planned->plan, ref_db);
    ASSERT_TRUE(want.ok()) << text;
    EXPECT_TRUE(query::SameBagApprox(got->rows, *want))
        << text << "\n got " << got->rows.size() << " want " << want->size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------------
// Determinism: the whole distributed pipeline is reproducible bit-for-bit.

TEST(Determinism, SameSeedSameTimingSameTraffic) {
  auto run = [](sim::SimTime* time_out, uint64_t* bytes_out) {
    deploy::DeploymentOptions opts;
    opts.num_nodes = 5;
    deploy::Deployment dep(opts);
    RelationDef def;
    def.name = "R";
    def.schema = Schema({{"k", ValueType::kInt64}, {"v", ValueType::kString}}, 1);
    ASSERT_TRUE(dep.CreateRelation(0, def).ok());
    Rng rng(9);
    UpdateBatch batch;
    for (int i = 0; i < 400; ++i) {
      batch["R"].push_back(
          Update::Insert({Value(static_cast<int64_t>(i)), Value(rng.AlphaString(16))}));
    }
    auto epoch = dep.Publish(0, std::move(batch));
    ASSERT_TRUE(epoch.ok());
    auto catalog = [&dep](const std::string& name) {
      return dep.storage(0).Relation(name);
    };
    auto analyzed = sql::ParseAndAnalyze("SELECT k, v FROM R WHERE k < 200", catalog);
    optimizer::Optimizer opt({}, {});
    auto planned = opt.Plan(*analyzed);
    dep.network().ResetTraffic();
    auto result = dep.ExecuteQuery(1, planned->plan, *epoch);
    ASSERT_TRUE(result.ok());
    *time_out = result->execution_us;
    *bytes_out = dep.network().total_bytes();
  };
  sim::SimTime t1 = 0, t2 = 0;
  uint64_t b1 = 0, b2 = 0;
  run(&t1, &b1);
  run(&t2, &b2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(b1, b2);
  EXPECT_GT(b1, 0u);
}

}  // namespace
}  // namespace orchestra
