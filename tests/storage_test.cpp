#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "deploy/deployment.h"
#include "storage/keys.h"
#include "storage/page.h"
#include "storage/publisher.h"
#include "storage/schema.h"
#include "storage/service.h"
#include "storage/value.h"

namespace orchestra::storage {
namespace {

// ---------------------------------------------------------------------------
// Data model

TEST(Value, TypedAccessors) {
  EXPECT_EQ(Value(int64_t{42}).AsInt64(), 42);
  EXPECT_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value(std::string("hi")).AsString(), "hi");
  EXPECT_TRUE(Value::Null().is_null());
}

TEST(Value, CompareWithinTypes) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(int64_t{2})), 0);
  EXPECT_EQ(Value(std::string("a")).Compare(Value(std::string("a"))), 0);
  EXPECT_GT(Value(3.5).Compare(Value(2.5)), 0);
}

TEST(Value, NumericCrossCompare) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{2}).Compare(Value(2.5)), 0);
}

TEST(Value, EncodeDecodeRoundTrip) {
  for (const Value& v :
       {Value(int64_t{-12345}), Value(int64_t{0}), Value(1.75), Value(std::string("s")),
        Value::Null(), Value(std::string(1000, 'x'))}) {
    Writer w;
    v.EncodeTo(&w);
    Reader r(w.data());
    Value back;
    ASSERT_TRUE(Value::DecodeFrom(&r, &back).ok());
    EXPECT_EQ(back, v);
  }
}

TEST(Value, OrderedEncodingPreservesIntOrder) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    int64_t a = static_cast<int64_t>(rng.NextU64());
    int64_t b = static_cast<int64_t>(rng.NextU64());
    std::string ea, eb;
    Value(a).EncodeOrdered(&ea);
    Value(b).EncodeOrdered(&eb);
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
  }
}

TEST(Value, OrderedEncodingPreservesDoubleOrder) {
  std::vector<double> vals = {-1e300, -2.5, -0.0, 0.0, 1e-10, 1.0, 3.14, 1e300};
  for (size_t i = 0; i + 1 < vals.size(); ++i) {
    std::string ea, eb;
    Value(vals[i]).EncodeOrdered(&ea);
    Value(vals[i + 1]).EncodeOrdered(&eb);
    EXPECT_LE(ea, eb) << vals[i] << " vs " << vals[i + 1];
  }
}

TEST(Value, OrderedEncodingPreservesStringOrderWithNuls) {
  std::vector<std::string> vals = {std::string("\0", 1), std::string("\0a", 2), "a",
                                   std::string("a\0", 2), "ab", "b"};
  for (size_t i = 0; i + 1 < vals.size(); ++i) {
    std::string ea, eb;
    Value(vals[i]).EncodeOrdered(&ea);
    Value(vals[i + 1]).EncodeOrdered(&eb);
    EXPECT_LT(ea, eb) << i;
  }
}

TEST(Tuple, EncodeDecodeRoundTrip) {
  Tuple t = {Value(int64_t{7}), Value(std::string("abc")), Value(0.5), Value::Null()};
  Writer w;
  EncodeTuple(t, &w);
  Reader r(w.data());
  Tuple back;
  ASSERT_TRUE(DecodeTuple(&r, &back).ok());
  EXPECT_EQ(back, t);
}

TEST(Schema, FindAndKeyEncoding) {
  Schema s({{"x", ValueType::kString}, {"y", ValueType::kInt64}}, 1);
  EXPECT_EQ(*s.Find("y"), 1u);
  EXPECT_FALSE(s.Find("z").has_value());
  Tuple t = {Value(std::string("k1")), Value(int64_t{9})};
  std::string key = EncodeTupleKey(s, t);
  Tuple t2 = {Value(std::string("k1")), Value(int64_t{100})};
  EXPECT_EQ(key, EncodeTupleKey(s, t2));  // key ignores non-key attrs
  Tuple t3 = {Value(std::string("k2")), Value(int64_t{9})};
  EXPECT_NE(key, EncodeTupleKey(s, t3));
}

TEST(Page, PartitionGeometry) {
  for (uint32_t parts : {1u, 4u, 16u, 64u}) {
    for (uint32_t p = 0; p < parts; ++p) {
      HashId begin = PartitionBegin(p, parts);
      HashId home = PartitionHome(p, parts);
      EXPECT_EQ(PartitionIndexFor(begin, parts), p);
      EXPECT_EQ(PartitionIndexFor(home, parts), p);
    }
    // Random keys land in consistent partitions.
    Rng rng(parts);
    for (int i = 0; i < 50; ++i) {
      HashId h = HashId::OfBytes("p" + std::to_string(rng.NextU64()));
      uint32_t idx = PartitionIndexFor(h, parts);
      EXPECT_TRUE(h.InRange(PartitionBegin(idx, parts), PartitionEnd(idx, parts)));
    }
  }
}

TEST(Page, EncodeDecodeRoundTrip) {
  Page page;
  page.desc.id = PageId{"R", 3, 2};
  page.desc.num_partitions = 8;
  page.ids = {{"k1", 1}, {"k2", 3}};
  page.hashes = {TupleKeyHash("k1"), TupleKeyHash("k2")};
  Writer w;
  page.EncodeTo(&w);
  Reader r(w.data());
  Page back;
  ASSERT_TRUE(Page::DecodeFrom(&r, &back).ok());
  EXPECT_EQ(back.desc, page.desc);
  EXPECT_EQ(back.ids, page.ids);
  EXPECT_EQ(back.hashes, page.hashes);
}

TEST(CoordinatorRecordTest, EncodeDecodeRoundTrip) {
  CoordinatorRecord rec;
  rec.relation = "R";
  rec.epoch = 5;
  rec.participant = 17;  // multi-writer: records carry their epoch's writer
  rec.pages.push_back(PageDescriptor{PageId{"R", 4, 0}, 8});
  rec.pages.push_back(PageDescriptor{PageId{"R", 5, 3}, 8});
  Writer w;
  rec.EncodeTo(&w);
  Reader r(w.data());
  CoordinatorRecord back;
  ASSERT_TRUE(CoordinatorRecord::DecodeFrom(&r, &back).ok());
  EXPECT_EQ(back.relation, "R");
  EXPECT_EQ(back.epoch, 5u);
  EXPECT_EQ(back.participant, 17u);
  ASSERT_EQ(back.pages.size(), 2u);
  EXPECT_EQ(back.pages[1], rec.pages[1]);
}

TEST(Keys, DataKeysOrderByHashThenKeyThenEpoch) {
  HashId h1 = HashId::FromU64(100), h2 = HashId::FromU64(200);
  std::string a = keys::Data("R", h1, "ka", 1);
  std::string b = keys::Data("R", h1, "ka", 2);
  std::string c = keys::Data("R", h1, "kb", 1);
  std::string d = keys::Data("R", h2, "aa", 0);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  // Prefix discipline: different relations never interleave.
  EXPECT_NE(keys::Data("R", h1, "k", 1).substr(0, 3),
            keys::Data("RR", h1, "k", 1).substr(0, 3));
}

// ---------------------------------------------------------------------------
// Distributed storage (deployment-based)

RelationDef SimpleRelation(const std::string& name, uint32_t partitions = 8) {
  RelationDef def;
  def.name = name;
  def.schema = Schema({{"x", ValueType::kString}, {"y", ValueType::kString}}, 1);
  def.num_partitions = partitions;
  return def;
}

Tuple Row(const std::string& x, const std::string& y) {
  return {Value(x), Value(y)};
}

std::multiset<std::string> AsBag(const std::vector<Tuple>& rows) {
  std::multiset<std::string> bag;
  for (const auto& t : rows) bag.insert(TupleToString(t));
  return bag;
}

class StorageClusterTest : public ::testing::Test {
 protected:
  StorageClusterTest() {
    deploy::DeploymentOptions opts;
    opts.num_nodes = 4;
    opts.replication = 3;
    dep = std::make_unique<deploy::Deployment>(opts);
  }
  std::unique_ptr<deploy::Deployment> dep;
};

TEST_F(StorageClusterTest, CreatePublishRetrieve) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  UpdateBatch batch;
  batch["R"] = {Update::Insert(Row("a", "b")), Update::Insert(Row("f", "z"))};
  auto epoch = dep->Publish(0, std::move(batch));
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 1u);

  auto rows = dep->Retrieve(1, "R", *epoch);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(AsBag(*rows), (std::multiset<std::string>{"('a', 'b')", "('f', 'z')"}));
}

// The paper's Example 4.1: three epochs with inserts and one update; each
// epoch's snapshot must be exactly reconstructible.
TEST_F(StorageClusterTest, PaperExample41VersionedSnapshots) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());

  UpdateBatch e0;
  e0["R"] = {Update::Insert(Row("a", "b")), Update::Insert(Row("f", "z"))};
  ASSERT_TRUE(dep->Publish(0, std::move(e0)).ok());

  UpdateBatch e1;
  e1["R"] = {Update::Insert(Row("b", "c")), Update::Insert(Row("e", "e")),
             Update::Insert(Row("c", "f")), Update::Insert(Row("f", "a"))};
  ASSERT_TRUE(dep->Publish(0, std::move(e1)).ok());

  UpdateBatch e2;
  e2["R"] = {Update::Insert(Row("d", "d"))};
  ASSERT_TRUE(dep->Publish(0, std::move(e2)).ok());

  auto at1 = dep->Retrieve(2, "R", 1);
  ASSERT_TRUE(at1.ok());
  EXPECT_EQ(AsBag(*at1), (std::multiset<std::string>{"('a', 'b')", "('f', 'z')"}));

  auto at2 = dep->Retrieve(2, "R", 2);
  ASSERT_TRUE(at2.ok());
  EXPECT_EQ(AsBag(*at2),
            (std::multiset<std::string>{"('a', 'b')", "('b', 'c')", "('c', 'f')",
                                        "('e', 'e')", "('f', 'a')"}));

  auto at3 = dep->Retrieve(2, "R", 3);
  ASSERT_TRUE(at3.ok());
  EXPECT_EQ(AsBag(*at3),
            (std::multiset<std::string>{"('a', 'b')", "('b', 'c')", "('c', 'f')",
                                        "('d', 'd')", "('e', 'e')", "('f', 'a')"}));

  // "It would never simply return the data for <f,0>; it knows that data is
  // stale because it does not appear in the index page."
  for (const auto& t : *at2) {
    if (t[0] == Value(std::string("f"))) {
      EXPECT_EQ(t[1], Value(std::string("a")));
    }
  }
}

TEST_F(StorageClusterTest, DeleteRemovesFromLaterEpochsOnly) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  UpdateBatch e0;
  e0["R"] = {Update::Insert(Row("a", "1")), Update::Insert(Row("b", "2"))};
  ASSERT_TRUE(dep->Publish(0, std::move(e0)).ok());
  UpdateBatch e1;
  e1["R"] = {Update::Delete(Row("a", ""))};
  ASSERT_TRUE(dep->Publish(0, std::move(e1)).ok());

  auto old_rows = dep->Retrieve(3, "R", 1);
  ASSERT_TRUE(old_rows.ok());
  EXPECT_EQ(old_rows->size(), 2u);
  auto new_rows = dep->Retrieve(3, "R", 2);
  ASSERT_TRUE(new_rows.ok());
  ASSERT_EQ(new_rows->size(), 1u);
  EXPECT_EQ((*new_rows)[0][0], Value(std::string("b")));
}

TEST_F(StorageClusterTest, KeyFilterPushdown) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  UpdateBatch batch;
  for (char c = 'a'; c <= 'j'; ++c) {
    batch["R"].push_back(Update::Insert(Row(std::string(1, c), "v")));
  }
  ASSERT_TRUE(dep->Publish(0, std::move(batch)).ok());

  Schema s = SimpleRelation("R").schema;
  KeyFilter filter;
  filter.all = false;
  filter.lo = EncodeTupleKey(s, Row("c", ""));
  filter.hi = EncodeTupleKey(s, Row("e", ""));
  auto rows = dep->Retrieve(2, "R", 1, filter);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(AsBag(*rows),
            (std::multiset<std::string>{"('c', 'v')", "('d', 'v')", "('e', 'v')"}));
}

TEST_F(StorageClusterTest, LargeBatchRoundTrips) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R", 16)).ok());
  Rng rng(77);
  UpdateBatch batch;
  std::multiset<std::string> expect;
  for (int i = 0; i < 500; ++i) {
    Tuple t = Row("key-" + std::to_string(i), rng.AlphaString(20));
    expect.insert(TupleToString(t));
    batch["R"].push_back(Update::Insert(std::move(t)));
  }
  ASSERT_TRUE(dep->Publish(0, std::move(batch)).ok());
  auto rows = dep->Retrieve(1, "R", 1);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(AsBag(*rows), expect);
}

TEST_F(StorageClusterTest, SurvivesSingleNodeFailure) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  UpdateBatch batch;
  for (int i = 0; i < 100; ++i) {
    batch["R"].push_back(Update::Insert(Row("k" + std::to_string(i), "v")));
  }
  ASSERT_TRUE(dep->Publish(0, std::move(batch)).ok());

  // Kill a node; with r=3 every range still has live replicas, and retrieval
  // retries them transparently (§III-C).
  dep->KillNode(2);
  auto rows = dep->Retrieve(0, "R", 1);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 100u);
}

TEST_F(StorageClusterTest, MultipleRelationsSnapshotTogether) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("S")).ok());
  UpdateBatch b1;
  b1["R"] = {Update::Insert(Row("r1", "x"))};
  ASSERT_TRUE(dep->Publish(0, std::move(b1)).ok());
  UpdateBatch b2;
  b2["S"] = {Update::Insert(Row("s1", "y"))};
  ASSERT_TRUE(dep->Publish(0, std::move(b2)).ok());

  // R was untouched by epoch 2 but must still be resolvable there
  // (copy-forward of coordinator records).
  auto r_at_2 = dep->Retrieve(2, "R", 2);
  ASSERT_TRUE(r_at_2.ok());
  EXPECT_EQ(r_at_2->size(), 1u);
  auto s_at_2 = dep->Retrieve(3, "S", 2);
  ASSERT_TRUE(s_at_2.ok());
  EXPECT_EQ(s_at_2->size(), 1u);
  // S did not exist as data at epoch 1.
  auto s_at_1 = dep->Retrieve(3, "S", 1);
  ASSERT_TRUE(s_at_1.ok());
  EXPECT_TRUE(s_at_1->empty());
}

TEST_F(StorageClusterTest, ReplicateEverywhereRelation) {
  RelationDef def = SimpleRelation("Nation", 2);
  def.replicate_everywhere = true;
  ASSERT_TRUE(dep->CreateRelation(0, def).ok());
  UpdateBatch batch;
  for (int i = 0; i < 25; ++i) {
    batch["Nation"].push_back(Update::Insert(Row("n" + std::to_string(i), "meta")));
  }
  ASSERT_TRUE(dep->Publish(0, std::move(batch)).ok());
  // Every node holds every tuple.
  for (size_t n = 0; n < dep->size(); ++n) {
    size_t local = 0;
    auto& store = dep->storage(n).store();
    std::string prefix = keys::DataPrefix("Nation");
    for (auto it = store.SeekPrefix(prefix);
         localstore::LocalStore::WithinPrefix(it, prefix); it.Next()) {
      ++local;
    }
    EXPECT_EQ(local, 25u) << "node " << n;
  }
}

TEST_F(StorageClusterTest, NewNodeReceivesReplicasViaRebalance) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  UpdateBatch batch;
  for (int i = 0; i < 200; ++i) {
    batch["R"].push_back(Update::Insert(Row("k" + std::to_string(i), "v")));
  }
  ASSERT_TRUE(dep->Publish(0, std::move(batch)).ok());

  net::NodeId fresh = dep->AddNode();
  dep->RunFor(10 * sim::kMicrosPerSec);  // let kReplicaPush batches land

  // The new node owns some ranges; it must now hold data for them.
  EXPECT_GT(dep->storage(fresh).store().entry_count(), 0u);
  // And retrieval through the new node sees a complete snapshot.
  auto rows = dep->Retrieve(fresh, "R", 1);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 200u);
}

TEST_F(StorageClusterTest, RetrieveAtUnknownEpochFails) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  auto rows = dep->Retrieve(0, "R", 99);
  EXPECT_FALSE(rows.ok());
}

TEST_F(StorageClusterTest, UpdatesReplaceWithinEpochBatch) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  UpdateBatch batch;
  batch["R"] = {Update::Insert(Row("k", "first")), Update::Insert(Row("k", "second"))};
  ASSERT_TRUE(dep->Publish(0, std::move(batch)).ok());
  auto rows = dep->Retrieve(0, "R", 1);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1], Value(std::string("second")));
}

// ---------------------------------------------------------------------------
// Hash-cache invariants of the publish pipeline

// Every page stored anywhere in the cluster for (rel, epoch): read the
// coordinator record from whichever node holds it, then each page from
// whichever node holds that.
std::vector<Page> AllPagesAt(deploy::Deployment& dep, const std::string& rel,
                             Epoch epoch) {
  std::vector<Page> pages;
  for (size_t c = 0; c < dep.size(); ++c) {
    auto rec = dep.storage(c).ReadCoordinatorLocal(rel, epoch);
    if (!rec.ok()) continue;
    for (const PageDescriptor& d : rec->pages) {
      for (size_t n = 0; n < dep.size(); ++n) {
        auto page = dep.storage(n).ReadPageLocal(d.id);
        if (page.ok()) {
          pages.push_back(std::move(page).value());
          break;
        }
      }
    }
    break;
  }
  return pages;
}

TEST_F(StorageClusterTest, PublishedPageHashesMatchFreshPlacementHash) {
  RelationDef def = SimpleRelation("R");
  ASSERT_TRUE(dep->CreateRelation(0, def).ok());
  UpdateBatch batch;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    batch["R"].push_back(
        Update::Insert(Row("key-" + std::to_string(i), rng.AlphaString(12))));
  }
  auto epoch = dep->Publish(0, std::move(batch));
  ASSERT_TRUE(epoch.ok());

  std::vector<Page> pages = AllPagesAt(*dep, "R", *epoch);
  ASSERT_FALSE(pages.empty());
  size_t checked = 0;
  for (const Page& page : pages) {
    ASSERT_EQ(page.hashes.size(), page.ids.size());
    for (size_t i = 0; i < page.ids.size(); ++i) {
      EXPECT_EQ(page.hashes[i], PlacementHash(def, page.ids[i].key_bytes))
          << "page " << page.desc.id.ToString() << " id " << i;
      ++checked;
      // Pages must stay sorted by (hash, key) for the single-pass scan.
      if (i > 0) {
        EXPECT_LE(page.hashes[i - 1], page.hashes[i]);
      }
    }
  }
  EXPECT_EQ(checked, 200u);
}

TEST_F(StorageClusterTest, Sha1ComputedOncePerTuplePerPublish) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());

  // Fresh inserts: exactly one TupleKeyHash per update, across the
  // publisher AND every kPutTuples/kPutPage receiver in the cluster.
  UpdateBatch first;
  for (int i = 0; i < 150; ++i) {
    first["R"].push_back(Update::Insert(Row("k" + std::to_string(i), "v")));
  }
  uint64_t before = TupleKeyHashCount();
  ASSERT_TRUE(dep->Publish(0, std::move(first)).ok());
  EXPECT_EQ(TupleKeyHashCount() - before, 150u);

  // Overwrites of existing keys: carried-forward page entries reuse their
  // stored hashes, so the count is again exactly the update count.
  UpdateBatch second;
  for (int i = 0; i < 40; ++i) {
    second["R"].push_back(Update::Insert(Row("k" + std::to_string(i), "w")));
  }
  before = TupleKeyHashCount();
  ASSERT_TRUE(dep->Publish(0, std::move(second)).ok());
  EXPECT_EQ(TupleKeyHashCount() - before, 40u);

  // The distributed scan path routes on page-carried hashes end to end:
  // zero SHA-1 tuple hashes for a full retrieve.
  before = TupleKeyHashCount();
  auto rows = dep->Retrieve(1, "R", 2);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 150u);
  EXPECT_EQ(TupleKeyHashCount() - before, 0u);
}

TEST(Keys, ParsersInvertBuilders) {
  HashId h = HashId::OfBytes("some-tuple-key");
  std::string hb;
  h.AppendBigEndian(&hb);
  const std::string_view kb("k\0y", 3);  // embedded NUL survives round-trip

  // The parsed views alias the key, so each key must outlive its checks.
  const std::string data_key = keys::Data("rel", h, kb, 42);
  keys::ParsedDataKey dk;
  ASSERT_TRUE(keys::ParseData(data_key, &dk));
  EXPECT_EQ(dk.relation, "rel");
  EXPECT_EQ(dk.hash_be20, hb);
  EXPECT_EQ(dk.key_bytes, kb);
  EXPECT_EQ(dk.epoch, 42u);

  const std::string page_key = keys::PageRec("r2", 7, 31);
  keys::ParsedPageKey pk;
  ASSERT_TRUE(keys::ParsePageRec(page_key, &pk));
  EXPECT_EQ(pk.relation, "r2");
  EXPECT_EQ(pk.partition, 31u);
  EXPECT_EQ(pk.epoch, 7u);

  const std::string coord_key = keys::Coord("r3", 1u << 20);
  keys::ParsedCoordKey ck;
  ASSERT_TRUE(keys::ParseCoord(coord_key, &ck));
  EXPECT_EQ(ck.relation, "r3");
  EXPECT_EQ(ck.epoch, 1u << 20);

  // Wrong tag, truncation, and trailing garbage are all rejected.
  const std::string wrong_tag = keys::Coord("rel", 1);
  const std::string truncated = wrong_tag.substr(0, 4);
  const std::string trailing = keys::PageRec("r", 1, 2) + "x";
  EXPECT_FALSE(keys::ParseData(wrong_tag, &dk));
  EXPECT_FALSE(keys::ParseCoord(truncated, &ck));
  EXPECT_FALSE(keys::ParsePageRec(trailing, &pk));
}

// ---------------------------------------------------------------------------
// Multi-epoch GC: watermark advertisement, retirement rules, tombstones.

// Counts a node's data records for a relation, separating tombstones.
struct DataCount {
  size_t versions = 0;
  size_t tombstones = 0;
};
DataCount CountData(StorageService& svc, const std::string& rel) {
  DataCount c;
  auto& store = svc.store();
  for (auto it = store.SeekPrefix(keys::DataPrefix(rel)); it.Valid(); it.Next()) {
    if (it.value().empty()) {
      c.tombstones += 1;
    } else {
      c.versions += 1;
    }
  }
  return c;
}

size_t CountPrefix(StorageService& svc, std::string_view pfx) {
  size_t n = 0;
  for (auto it = svc.store().SeekPrefix(pfx); it.Valid(); it.Next()) ++n;
  return n;
}

TEST_F(StorageClusterTest, DeletePublishesTombstones) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  UpdateBatch e0;
  e0["R"] = {Update::Insert(Row("a", "1")), Update::Insert(Row("b", "2"))};
  ASSERT_TRUE(dep->Publish(0, std::move(e0)).ok());
  UpdateBatch e1;
  e1["R"] = {Update::Delete(Row("a", ""))};
  ASSERT_TRUE(dep->Publish(0, std::move(e1)).ok());

  size_t tombstones = 0;
  for (size_t i = 0; i < dep->size(); ++i) {
    tombstones += CountData(dep->storage(i), "R").tombstones;
  }
  // The delete was replicated as an empty-value marker at the delete epoch.
  EXPECT_EQ(tombstones, 3u);
  // It is invisible to retrieval at every epoch.
  auto at2 = dep->Retrieve(1, "R", 2);
  ASSERT_TRUE(at2.ok());
  EXPECT_EQ(AsBag(*at2), (std::multiset<std::string>{"('b', '2')"}));
}

TEST_F(StorageClusterTest, WatermarkRetiresSupersededVersions) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  // Five epochs of overwrites of the same key + one delete of another.
  UpdateBatch e;
  e["R"] = {Update::Insert(Row("k", "v0")), Update::Insert(Row("dead", "x"))};
  ASSERT_TRUE(dep->Publish(0, std::move(e)).ok());
  for (int i = 1; i <= 3; ++i) {
    UpdateBatch u;
    u["R"] = {Update::Insert(Row("k", "v" + std::to_string(i)))};
    ASSERT_TRUE(dep->Publish(0, std::move(u)).ok());
  }
  UpdateBatch del;
  del["R"] = {Update::Delete(Row("dead", ""))};
  auto last = dep->Publish(0, std::move(del));
  ASSERT_TRUE(last.ok());  // epoch 5

  size_t versions_before = 0;
  for (size_t i = 0; i < dep->size(); ++i) {
    versions_before += CountData(dep->storage(i), "R").versions;
  }
  // 4 versions of k + 1 of dead, times replication 3.
  EXPECT_EQ(versions_before, 15u);

  // Advance the watermark to the final epoch on every node: only the newest
  // at-or-below-watermark version of k survives; dead's tombstone and its
  // superseded version are both reclaimed.
  for (size_t i = 0; i < dep->size(); ++i) {
    dep->storage(i).SetGcWatermark(*last);
  }
  size_t versions = 0, tombstones = 0;
  uint64_t retired = 0;
  for (size_t i = 0; i < dep->size(); ++i) {
    auto c = CountData(dep->storage(i), "R");
    versions += c.versions;
    tombstones += c.tombstones;
    retired += dep->storage(i).gc_stats().retired_data +
               dep->storage(i).gc_stats().retired_tombstones;
  }
  EXPECT_EQ(versions, 3u);    // one live version of k, 3 replicas
  EXPECT_EQ(tombstones, 0u);  // fully reclaimed
  EXPECT_EQ(retired, 15u);    // 3 stale k versions + dead + its tombstone, x3

  // Retrieval at the watermark epoch still sees exactly the live state.
  auto rows = dep->Retrieve(1, "R", *last);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(AsBag(*rows), (std::multiset<std::string>{"('k', 'v3')"}));

  // Watermarks are monotonic: a lower advertisement is ignored.
  dep->storage(0).SetGcWatermark(1);
  EXPECT_EQ(dep->storage(0).gc_watermark(), *last);
}

TEST_F(StorageClusterTest, WatermarkRetiresPageAndCoordinatorRecords) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R", 2)).ok());
  for (int i = 0; i < 6; ++i) {
    UpdateBatch u;
    u["R"] = {Update::Insert(Row("k" + std::to_string(i % 2), "v"))};
    ASSERT_TRUE(dep->Publish(0, std::move(u)).ok());
  }
  size_t coords_before = 0, pages_before = 0;
  for (size_t i = 0; i < dep->size(); ++i) {
    coords_before += CountPrefix(dep->storage(i), "C");
    pages_before += CountPrefix(dep->storage(i), "P");
  }
  for (size_t i = 0; i < dep->size(); ++i) dep->storage(i).SetGcWatermark(6);
  size_t coords = 0, pages = 0;
  for (size_t i = 0; i < dep->size(); ++i) {
    coords += CountPrefix(dep->storage(i), "C");
    pages += CountPrefix(dep->storage(i), "P");
  }
  EXPECT_LT(coords, coords_before);
  EXPECT_LT(pages, pages_before);
  // Exactly the watermark-epoch coordinator survives, on its 3 replicas.
  EXPECT_EQ(coords, 3u);
  // Per partition, only the newest at-or-below-watermark page version (the
  // one the surviving coordinator references) remains.
  for (size_t i = 0; i < dep->size(); ++i) {
    auto rows = dep->Retrieve(i, "R", 6);
    ASSERT_TRUE(rows.ok()) << "node " << i;
    EXPECT_EQ(rows->size(), 2u);
  }
}

// GC-advertising publisher: with gc_keep_epochs set, publishes advertise the
// watermark cluster-wide and storage stays trimmed without manual calls.
TEST_F(StorageClusterTest, PublisherAdvertisesWatermark) {
  for (auto& p : {0, 1, 2, 3}) dep->publisher(p).set_gc_keep_epochs(2);
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  Epoch last = 0;
  for (int i = 0; i < 8; ++i) {
    UpdateBatch u;
    u["R"] = {Update::Insert(Row("hot", "v" + std::to_string(i)))};
    auto e = dep->Publish(0, std::move(u));
    ASSERT_TRUE(e.ok());
    last = *e;
  }
  dep->RunFor(1 * sim::kMicrosPerSec);  // let one-way advertisements land
  for (size_t i = 0; i < dep->size(); ++i) {
    EXPECT_EQ(dep->storage(i).gc_watermark(), last - 2) << "node " << i;
  }
  size_t versions = 0;
  for (size_t i = 0; i < dep->size(); ++i) {
    versions += CountData(dep->storage(i), "R").versions;
  }
  // Versions of "hot" retained: watermark survivor + the 2 epochs above it.
  EXPECT_EQ(versions, 9u);  // 3 versions x replication 3
  // History inside the kept window is intact...
  auto old_rows = dep->Retrieve(2, "R", last - 2);
  ASSERT_TRUE(old_rows.ok());
  EXPECT_EQ(old_rows->size(), 1u);
  // ...and epochs below the watermark are genuinely retired.
  auto below = dep->Retrieve(2, "R", last - 3);
  EXPECT_FALSE(below.ok());
}

// Replica pushes piggyback the GC watermark: a restarted node (whose
// watermark resets to 0) learns the cluster's mark from re-replication
// itself, without waiting for the next publish's advertisement.
TEST(StorageGc, ReplicaPushPiggybacksWatermark) {
  deploy::DeploymentOptions opts;
  opts.num_nodes = 4;
  opts.replication = 3;
  opts.gc_keep_epochs = 2;
  deploy::Deployment dep(opts);
  ASSERT_TRUE(dep.CreateRelation(0, SimpleRelation("R")).ok());
  Epoch last = 0;
  for (int i = 0; i < 6; ++i) {
    UpdateBatch u;
    u["R"] = {Update::Insert(Row("k" + std::to_string(i % 2), "v" + std::to_string(i)))};
    auto e = dep.Publish(0, std::move(u));
    ASSERT_TRUE(e.ok());
    last = *e;
  }
  dep.RunFor(1 * sim::kMicrosPerSec);  // one-way advertisements land
  const Epoch w = last - opts.gc_keep_epochs;
  ASSERT_EQ(dep.storage(2).gc_watermark(), w);

  dep.KillNode(2, /*update_routing=*/true, /*rebalance=*/true);
  dep.RunFor(2 * sim::kMicrosPerSec);
  // Restart wipes the transient watermark; re-replication must restore it
  // with NO further publish.
  dep.RestartNode(2);
  ASSERT_TRUE(dep.RunUntil([&dep] { return dep.PendingRpcCount() == 0; }));
  dep.RunFor(500 * sim::kMicrosPerMilli);
  EXPECT_EQ(dep.storage(2).gc_watermark(), w)
      << "restarted node did not learn the watermark from replica pushes";
  // And retirement ran there: epochs below the watermark stay refused.
  auto below = dep.Retrieve(2, "R", w - 1);
  EXPECT_FALSE(below.ok());
  auto at = dep.Retrieve(2, "R", last);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(at->size(), 2u);
}

// Epoch discovery: publishing via a node whose gossip counter is stale must
// not fork the epoch line — the publisher asks the cluster first (ROADMAP:
// multi-node publishing without gossip convergence).
TEST_F(StorageClusterTest, StalePublisherDiscoversCurrentEpoch) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  UpdateBatch a;
  a["R"] = {Update::Insert(Row("a", "1"))};
  ASSERT_TRUE(dep->Publish(0, std::move(a)).ok());
  UpdateBatch b;
  b["R"] = {Update::Insert(Row("b", "2"))};
  ASSERT_TRUE(dep->Publish(0, std::move(b)).ok());

  // Node 3 heard nothing (gossip is off) — its own counter is 0.
  EXPECT_EQ(dep->publisher(3).current_epoch(), 0u);
  UpdateBatch c;
  c["R"] = {Update::Insert(Row("c", "3"))};
  auto e = dep->Publish(3, std::move(c));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, 3u);  // based on the discovered epoch 2, not local 0

  auto rows = dep->Retrieve(1, "R", *e);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(AsBag(*rows), (std::multiset<std::string>{"('a', '1')", "('b', '2')",
                                                      "('c', '3')"}));
  // And epoch 1's snapshot was not clobbered by the stale publisher.
  auto at1 = dep->Retrieve(1, "R", 1);
  ASSERT_TRUE(at1.ok());
  EXPECT_EQ(AsBag(*at1), (std::multiset<std::string>{"('a', '1')"}));
}

// ---------------------------------------------------------------------------
// Multi-writer epoch claims: the kClaimEpoch / kReleaseEpoch / kConfirmEpoch
// replica protocol that serializes concurrent publishers onto distinct
// epochs.

std::string ClaimBody(Epoch e, uint32_t participant, uint32_t node,
                      uint64_t nonce) {
  Writer w;
  w.PutVarint64(e);
  w.PutVarint32(participant);
  w.PutVarint32(node);
  w.PutVarint64(nonce);
  return w.Release();
}

TEST_F(StorageClusterTest, EpochClaimProtocol) {
  auto call = [&](uint16_t code, std::string body) {
    Status out = Status::Unavailable("no reply");
    std::string reply;
    bool done = false;
    dep->storage(0).Call(1, code, std::move(body),
                         [&](Status s, const std::string& b) {
                           out = s;
                           reply = b;
                           done = true;
                         });
    dep->RunUntil([&done] { return done; });
    return std::make_pair(out, reply);
  };

  // First come wins; re-claiming is idempotent for the same participant
  // (a retry's fresh attempt nonce refreshes the stored instance).
  EXPECT_TRUE(call(kClaimEpoch, ClaimBody(100, 7, 0, 1)).first.ok());
  EXPECT_TRUE(call(kClaimEpoch, ClaimBody(100, 7, 0, 2)).first.ok());

  // A different participant is refused; the reply names the stored winner
  // instance (participant, node, nonce).
  auto [taken, body] = call(kClaimEpoch, ClaimBody(100, 9, 2, 3));
  EXPECT_TRUE(taken.IsEpochTaken()) << taken.ToString();
  Reader r(body);
  uint32_t wp = 0, wn = 0;
  uint64_t wx = 0;
  ASSERT_TRUE(r.GetVarint32(&wp).ok() && r.GetVarint32(&wn).ok() &&
              r.GetVarint64(&wx).ok());
  EXPECT_EQ(wp, 7u);
  EXPECT_EQ(wx, 2u);  // the refreshed instance, not the first attempt's

  // A stale release (first attempt's nonce) must NOT unpin the newer
  // instance — that is exactly the delayed-release hazard.
  {
    Writer w;
    w.PutVarint64(100);
    w.PutVarint32(7);
    w.PutVarint64(1);
    dep->storage(0).SendOneWay(1, kReleaseEpoch, w.Release());
  }
  dep->RunFor(sim::kMicrosPerSec / 10);
  EXPECT_TRUE(call(kClaimEpoch, ClaimBody(100, 9, 2, 4)).first.IsEpochTaken());

  // An instance-exact release frees the slot for the next claimant.
  {
    Writer w;
    w.PutVarint64(100);
    w.PutVarint32(7);
    w.PutVarint64(2);
    dep->storage(0).SendOneWay(1, kReleaseEpoch, w.Release());
  }
  dep->RunFor(sim::kMicrosPerSec / 10);
  EXPECT_TRUE(call(kClaimEpoch, ClaimBody(100, 9, 2, 5)).first.ok());

  // Confirming marks the epoch committed and advances the node's discovery
  // frontier (kGetMaxEpoch reports only confirmed epochs).
  EXPECT_EQ(dep->storage(1).max_epoch_seen(), 0u);
  {
    Writer w;
    w.PutVarint64(100);
    w.PutVarint32(9);
    w.PutVarint32(2);
    w.PutVarint64(5);
    EXPECT_TRUE(call(kConfirmEpoch, w.Release()).first.ok());
  }
  EXPECT_EQ(dep->storage(1).max_epoch_seen(), 100u);

  // A committed claim is never released — the epoch is history, not a slot.
  {
    Writer w;
    w.PutVarint64(100);
    w.PutVarint32(9);
    w.PutVarint64(5);
    dep->storage(0).SendOneWay(1, kReleaseEpoch, w.Release());
  }
  dep->RunFor(sim::kMicrosPerSec / 10);
  Writer gw;
  gw.PutVarint64(100);
  auto [got, claim] = call(kGetEpochClaim, gw.Release());
  ASSERT_TRUE(got.ok());
  Reader cr(claim);
  uint32_t cp = 0, cn = 0;
  bool committed = false;
  uint64_t cx = 0;
  ASSERT_TRUE(cr.GetVarint32(&cp).ok() && cr.GetVarint32(&cn).ok() &&
              cr.GetBool(&committed).ok() && cr.GetVarint64(&cx).ok());
  EXPECT_EQ(cp, 9u);
  EXPECT_TRUE(committed);
}

// Coordinator records alone must NOT advance the discovery frontier: a torn
// publish leaves partial records, and a publisher basing on them would
// absorb uncommitted state. Only the confirm protocol moves the frontier.
TEST_F(StorageClusterTest, DiscoveryIgnoresUnconfirmedCoordinatorRecords) {
  CoordinatorRecord rec;
  rec.relation = "R";
  rec.epoch = 50;
  rec.participant = 3;
  Writer w;
  rec.EncodeTo(&w);
  bool done = false;
  Status out;
  dep->storage(0).Call(1, kPutCoordinator, w.Release(),
                       [&](Status s, const std::string&) {
                         out = s;
                         done = true;
                       });
  dep->RunUntil([&done] { return done; });
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(dep->storage(1).max_epoch_seen(), 0u)
      << "an unconfirmed coordinator record moved the discovery frontier";
}

// A relation created AFTER epochs have already committed has no coordinator
// record at the current base; the publish-path walk-back must carry its
// creation record forward instead of wedging every future publish.
TEST_F(StorageClusterTest, RelationCreatedMidStreamStaysPublishable) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  for (int i = 0; i < 4; ++i) {
    UpdateBatch u;
    u["R"] = {Update::Insert(Row("k" + std::to_string(i), "v"))};
    ASSERT_TRUE(dep->Publish(0, std::move(u)).ok());
  }
  // S's first record lands at the CURRENT epoch (4); the next publish's base
  // walk must find it below the new base.
  ASSERT_TRUE(dep->CreateRelation(1, SimpleRelation("S")).ok());
  UpdateBatch s;
  s["S"] = {Update::Insert(Row("s0", "x"))};
  auto e = dep->Publish(2, std::move(s));
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  auto rows = dep->Retrieve(3, "S", *e);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(AsBag(*rows), (std::multiset<std::string>{"('s0', 'x')"}));
  // And R's carried-forward state is intact at the new epoch.
  auto r_rows = dep->Retrieve(3, "R", *e);
  ASSERT_TRUE(r_rows.ok());
  EXPECT_EQ(r_rows->size(), 4u);
}

// The commit gate: a same-epoch coordinator record from a DIFFERENT
// participant is refused with kEpochTaken (first committed writer wins);
// the same participant's byte-identical retry overwrites freely.
TEST_F(StorageClusterTest, CommitGateRefusesConflictingSameEpochRecord) {
  auto put = [&](ParticipantId p) {
    CoordinatorRecord rec;
    rec.relation = "R";
    rec.epoch = 9;
    rec.participant = p;
    Writer w;
    rec.EncodeTo(&w);
    Status out;
    bool done = false;
    dep->storage(0).Call(2, kPutCoordinator, w.Release(),
                         [&](Status s, const std::string&) {
                           out = s;
                           done = true;
                         });
    dep->RunUntil([&done] { return done; });
    return out;
  };
  EXPECT_TRUE(put(1).ok());
  EXPECT_TRUE(put(1).ok());  // same-participant retry overwrites
  Status conflict = put(2);
  EXPECT_TRUE(conflict.IsEpochTaken()) << conflict.ToString();
  EXPECT_GE(dep->storage(2).counters().coordinator_conflicts, 1u);
}

// ---------------------------------------------------------------------------
// Abandonment fencing: the kFenceEpoch / kPurgeEpoch two-phase burn at one
// claim replica. Phase one (the fence grant) installs a burn PROMISE that
// refuses claims and confirms but never deletes data; phase two (the purge,
// sent only after EVERY replica granted) carries purge authority. The
// cross-replica unanimity rules live in the publisher and are exercised
// end-to-end by churn_test's fencing sweeps.

std::string FenceBody(Epoch e, uint32_t fencer, uint32_t target,
                      uint64_t ttl_us) {
  Writer w;
  w.PutVarint64(e);
  w.PutVarint32(fencer);
  w.PutVarint32(target);
  w.PutVarint64(ttl_us);
  return w.Release();
}

std::string PurgeBody(Epoch e, uint32_t participant, uint64_t nonce) {
  Writer w;
  w.PutVarint64(e);
  w.PutVarint32(participant);
  w.PutVarint64(nonce);
  return w.Release();
}

std::string ConfirmBody(Epoch e, uint32_t participant, uint32_t node,
                        uint64_t nonce) {
  Writer w;
  w.PutVarint64(e);
  w.PutVarint32(participant);
  w.PutVarint32(node);
  w.PutVarint64(nonce);
  return w.Release();
}

class FencingTest : public StorageClusterTest {
 protected:
  // One round-trip RPC from node 0 to `target`.
  std::pair<Status, std::string> Rpc(net::NodeId target, uint16_t code,
                                     std::string body) {
    Status out = Status::Unavailable("no reply");
    std::string reply;
    bool done = false;
    dep->storage(0).Call(target, code, std::move(body),
                         [&](Status s, const std::string& b) {
                           out = s;
                           reply = b;
                           done = true;
                         });
    dep->RunUntil([&done] { return done; });
    return {out, reply};
  }
};

// A fence only lands once the claim has sat untouched for a full staleness
// TTL; a live-but-slow owner whose refresh beats the TTL wins the race.
TEST_F(FencingTest, FenceWaitsOutTheStalenessTtl) {
  const uint64_t ttl = 2 * sim::kMicrosPerSec;
  // The owner's claim grant stamps the freshness clock.
  ASSERT_TRUE(Rpc(1, kClaimEpoch, ClaimBody(300, 7, 0, 1)).first.ok());
  // An instant fence is refused: slow is not abandoned.
  auto fresh = Rpc(1, kFenceEpoch, FenceBody(300, 9, 7, ttl));
  EXPECT_TRUE(fresh.first.IsUnavailable()) << fresh.first.ToString();
  EXPECT_NE(fresh.first.message().find("still fresh"), std::string::npos);
  // The owner refreshes before expiry; the staleness clock resets, so a
  // fence one-and-a-half TTLs after the ORIGINAL claim still loses.
  dep->RunFor(3 * sim::kMicrosPerSec / 2);
  ASSERT_TRUE(Rpc(1, kClaimEpoch, ClaimBody(300, 7, 0, 2)).first.ok());
  dep->RunFor(3 * sim::kMicrosPerSec / 2);
  EXPECT_TRUE(
      Rpc(1, kFenceEpoch, FenceBody(300, 9, 7, ttl)).first.IsUnavailable());
  // One full TTL with no refresh: abandonment is provable; the grant names
  // the exact retired instance (participant, node, nonce).
  dep->RunFor(2 * ttl);
  auto [granted, inst] = Rpc(1, kFenceEpoch, FenceBody(300, 9, 7, ttl));
  ASSERT_TRUE(granted.ok()) << granted.ToString();
  Reader r(inst);
  uint32_t fp = 0, fn = 0;
  uint64_t fx = 0;
  ASSERT_TRUE(r.GetVarint32(&fp).ok() && r.GetVarint32(&fn).ok() &&
              r.GetVarint64(&fx).ok());
  EXPECT_EQ(fp, 7u);
  EXPECT_EQ(fx, 2u);  // the refreshed instance, not the first attempt's
  EXPECT_GE(dep->storage(1).counters().fences_granted, 1u);
  EXPECT_GE(dep->storage(1).counters().fences_refused, 2u);
}

// A claim record that arrived WITHOUT a grant (replica push, rebalance) has
// no freshness evidence; the first fence attempt seeds the clock and
// refuses, giving a live owner one full TTL of grace to heartbeat it.
TEST_F(FencingTest, FenceSeedsGraceForClaimsOfUnknownFreshness) {
  EpochClaimRecord rec;
  rec.participant = 7;
  rec.node = 0;
  rec.nonce = 4;
  Writer w;
  rec.EncodeTo(&w);
  ASSERT_TRUE(dep->storage(1).store().Put(keys::EpochClaim(77), w.data()).ok());
  const uint64_t ttl = sim::kMicrosPerSec;
  auto seeded = Rpc(1, kFenceEpoch, FenceBody(77, 9, 7, ttl));
  EXPECT_TRUE(seeded.first.IsUnavailable()) << seeded.first.ToString();
  EXPECT_NE(seeded.first.message().find("unknown freshness"),
            std::string::npos);
  // Within the grace window the claim counts as fresh...
  dep->RunFor(ttl / 2);
  EXPECT_TRUE(
      Rpc(1, kFenceEpoch, FenceBody(77, 9, 7, ttl)).first.IsUnavailable());
  // ...after it, the fence lands.
  dep->RunFor(ttl);
  EXPECT_TRUE(Rpc(1, kFenceEpoch, FenceBody(77, 9, 7, ttl)).first.ok());
}

// Phase separation: a fence GRANT is a promise (refuses claims as a taken
// slot and confirms retryably, deletes nothing); only the purge broadcast
// after unanimity hardens it into an authoritative burn (kFenced for
// everyone, owner included).
TEST_F(FencingTest, FenceGrantIsAPromiseUntilPurged) {
  const uint64_t ttl = sim::kMicrosPerSec;
  ASSERT_TRUE(Rpc(1, kClaimEpoch, ClaimBody(100, 7, 0, 1)).first.ok());
  dep->RunFor(2 * ttl);
  ASSERT_TRUE(Rpc(1, kFenceEpoch, FenceBody(100, 9, 7, ttl)).first.ok());
  // The promise refuses every claimant — owner included — as a TAKEN slot,
  // not a burned one: the fence round may still fail elsewhere, so nobody
  // may skip past an epoch that could yet commit.
  auto contender = Rpc(1, kClaimEpoch, ClaimBody(100, 9, 2, 5));
  EXPECT_TRUE(contender.first.IsEpochTaken()) << contender.first.ToString();
  EXPECT_NE(contender.first.message().find("burn-promised"),
            std::string::npos);
  EXPECT_TRUE(Rpc(1, kClaimEpoch, ClaimBody(100, 7, 0, 6)).first.IsEpochTaken());
  // The owner's confirm is refused RETRYABLY (unanimity unknown — the epoch
  // may heal to committed through another replica), not terminally.
  auto confirm = Rpc(1, kConfirmEpoch, ConfirmBody(100, 7, 0, 1));
  EXPECT_TRUE(confirm.first.IsUnavailable()) << confirm.first.ToString();
  EXPECT_NE(confirm.first.message().find("burn-promised"), std::string::npos);
  EXPECT_GE(dep->storage(1).counters().fenced_writes_refused, 1u);
  // Phase two: the fencer reached unanimity and broadcasts purge authority.
  dep->storage(0).SendOneWay(1, kPurgeEpoch, PurgeBody(100, 7, 1));
  dep->RunFor(sim::kMicrosPerSec / 10);
  auto burned = Rpc(1, kClaimEpoch, ClaimBody(100, 9, 2, 7));
  EXPECT_TRUE(burned.first.IsFenced()) << burned.first.ToString();
  EXPECT_TRUE(
      Rpc(1, kConfirmEpoch, ConfirmBody(100, 7, 0, 1)).first.IsFenced());
  // The stored record carries both facts durably: burned AND purged.
  auto [got, bytes] = Rpc(1, kGetEpochClaim, [] {
    Writer gw;
    gw.PutVarint64(100);
    return gw.Release();
  }());
  ASSERT_TRUE(got.ok());
  Reader cr(bytes);
  EpochClaimRecord stored;
  ASSERT_TRUE(EpochClaimRecord::DecodeFrom(&cr, &stored).ok());
  EXPECT_TRUE(stored.fenced);
  EXPECT_TRUE(stored.purged);
  EXPECT_FALSE(stored.committed);
  EXPECT_EQ(stored.participant, 7u);
}

// The purge atomically retires a torn publish's discovery state: orphan
// coordinator and page records vanish together with the inverse entries
// re-aimed at surviving versions, so reads at the burned epoch get a clean
// definitive NotFound — never a half-discovered mix — and the fenced
// instance's late writes are refused everywhere afterwards.
TEST_F(FencingTest, PurgeHealsTornDiscoveryStateAtomically) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R", 4)).ok());
  UpdateBatch e1;
  e1["R"] = {Update::Insert(Row("a", "1"))};
  ASSERT_TRUE(dep->Publish(0, std::move(e1)).ok());
  UpdateBatch e2;
  e2["R"] = {Update::Insert(Row("b", "2"))};
  ASSERT_TRUE(dep->Publish(0, std::move(e2)).ok());

  // Forge a torn publish at epoch 3: claim, page, and coordinator landed;
  // the tuple writes and the confirm did not (the writer died mid-flight).
  Schema schema = SimpleRelation("R", 4).schema;
  Tuple orphan_row = Row("c", "3");
  std::string key_bytes = EncodeTupleKey(schema, orphan_row);
  HashId h = TupleKeyHash(key_bytes);
  uint32_t part = PartitionIndexFor(h, 4);
  Page pg;
  pg.desc.id = PageId{"R", 3, part};
  pg.desc.num_partitions = 4;
  pg.ids = {TupleId{key_bytes, 3}};
  pg.hashes = {h};
  Writer pw;
  pg.EncodeTo(&pw);
  CoordinatorRecord crec;
  crec.relation = "R";
  crec.epoch = 3;
  crec.participant = 7;
  crec.pages = {pg.desc};
  Writer cw;
  crec.EncodeTo(&cw);
  for (size_t n = 0; n < dep->size(); ++n) {
    auto id = static_cast<net::NodeId>(n);
    ASSERT_TRUE(Rpc(id, kClaimEpoch, ClaimBody(3, 7, 3, 9)).first.ok());
    ASSERT_TRUE(Rpc(id, kPutPage, pw.data()).first.ok());
    ASSERT_TRUE(Rpc(id, kPutCoordinator, cw.data()).first.ok());
  }
  // The torn chain IS visible to discovery: epoch-3 reads walk the orphan
  // coordinator into a page whose tuples were never written.
  auto torn = dep->Retrieve(1, "R", 3);
  EXPECT_FALSE(torn.ok()) << "torn epoch-3 chain served a complete answer";

  // Retire it: fence every replica past the TTL, then broadcast the purge —
  // exactly the fencer's two-phase sequence.
  const uint64_t ttl = sim::kMicrosPerSec;
  dep->RunFor(2 * ttl);
  for (size_t n = 0; n < dep->size(); ++n) {
    auto id = static_cast<net::NodeId>(n);
    ASSERT_TRUE(Rpc(id, kFenceEpoch, FenceBody(3, 9, 7, ttl)).first.ok());
  }
  for (size_t n = 0; n < dep->size(); ++n) {
    dep->storage(0).SendOneWay(static_cast<net::NodeId>(n), kPurgeEpoch,
                               PurgeBody(3, 7, 9));
  }
  dep->RunFor(sim::kMicrosPerSec / 5);

  // Healed atomically: the torn chain is gone end-to-end, so discovery at
  // the burned epoch is a clean NotFound (Retrieve has no walk-back; a
  // definitive miss is what the publisher's walk-back keys on), while the
  // committed epoch-2 chain still serves its full bag.
  auto at3 = dep->Retrieve(1, "R", 3);
  EXPECT_TRUE(at3.status().IsNotFound()) << at3.status().ToString();
  auto at2 = dep->Retrieve(1, "R", 2);
  ASSERT_TRUE(at2.ok()) << at2.status().ToString();
  EXPECT_EQ(AsBag(*at2), AsBag({Row("a", "1"), Row("b", "2")}));
  // No node's inverse entry aims at the purged page (torn discovery state).
  for (size_t n = 0; n < dep->size(); ++n) {
    Writer iw;
    iw.PutString("R");
    iw.PutVarint32(part);
    auto [is, ibytes] = Rpc(static_cast<net::NodeId>(n), kGetInverse,
                            iw.Release());
    if (!is.ok()) continue;  // no entry at all is fine
    Reader ir(ibytes);
    PageId aimed;
    ASSERT_TRUE(PageId::DecodeFrom(&ir, &aimed).ok());
    EXPECT_NE(aimed.epoch, 3u) << "node " << n << " inverse aims at purged page";
  }

  // The fenced instance's late same-epoch writes are refused everywhere.
  EXPECT_TRUE(Rpc(1, kPutPage, pw.data()).first.IsFenced());
  EXPECT_TRUE(Rpc(1, kPutCoordinator, cw.data()).first.IsFenced());
  Writer tw;
  tw.PutVarint64(1);  // one relation
  tw.PutString("R");
  tw.PutVarint64(1);  // one tuple
  std::string hash_be;
  h.AppendBigEndian(&hash_be);
  tw.PutRaw(hash_be.data(), hash_be.size());
  tw.PutString(key_bytes);
  tw.PutVarint64(3);
  Writer vw;
  EncodeTuple(orphan_row, &vw);
  tw.PutString(vw.data());
  EXPECT_TRUE(Rpc(1, kPutTuples, tw.Release()).first.IsFenced());
  EXPECT_TRUE(
      Rpc(1, kConfirmEpoch, ConfirmBody(3, 7, 3, 9)).first.IsFenced());
  EXPECT_GE(dep->storage(1).counters().fenced_writes_refused, 4u);
}

}  // namespace
}  // namespace orchestra::storage
