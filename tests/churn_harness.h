// Deterministic churn / fault-injection harness. Drives a sustained
// publish/overwrite/delete/query workload against a simulated multi-node
// deployment while injecting crashes, restarts, message drops, and delayed
// deliveries, and checks full-retrieval equivalence against an in-memory
// model after every convergence point.
//
// Everything is derived from ChurnOptions::seed: the workload stream, the
// fault schedule, and the network's drop/delay stream. Two runs with the
// same options produce byte-identical event traces (ChurnReport::trace) and
// equal simulator digests; a failing run reports its seed in
// ChurnReport::failure ("churn[seed=N] ...") — rerun RunChurn with that seed
// to replay the exact failure.
//
// The harness is also the proof obligation for multi-epoch GC: with
// gc_keep_epochs > 0 it asserts at every convergence point that storage
// stays bounded (live records do not grow with the number of rounds, and
// each store's dead-record fraction stays below the compaction threshold
// plus slack) while retrieval stays correct at the current epoch and at
// retained historical epochs.
//
// Multi-writer mode (publishers >= 2): each publisher is a DISJOINT
// participant — its own client::Session pinned to its own node, updating its
// own key stripe — and every round all publishers submit concurrently, so
// epoch claims genuinely contend. Batches are owned by their participant for
// retries (the same-batch-same-participant discipline multi-writer claims
// rely on); committed batches are applied to the model in COMMIT-EPOCH order
// across participants, and a round fails if two tickets ever report the same
// committed epoch (a torn epoch). Asymmetric partitions
// (Network::SetDropOverride: one direction of a node pair drops, the reverse
// stays healthy) join the fault mix via partition_prob.
#ifndef ORCHESTRA_TESTS_CHURN_HARNESS_H_
#define ORCHESTRA_TESTS_CHURN_HARNESS_H_

#include <cstdint>
#include <string>

#include "sim/simulator.h"

namespace orchestra::churn {

/// All knobs of one churn run. Thread/ordering contract: RunChurn is a
/// single-threaded, blocking call that owns its Deployment and simulator —
/// drive one run per thread, never share a ChurnOptions-under-mutation.
/// Within a run, committed batches are applied to the reference model in
/// commit-EPOCH order (not submission order) across participants, which is
/// the only order the versioned store's snapshots are comparable in.
struct ChurnOptions {
  uint64_t seed = 1;

  // Cluster shape.
  size_t num_nodes = 5;
  int replication = 3;
  uint32_t num_partitions = 8;

  // Workload: each round every participant publishes `publish_window`
  // batches of upserts/deletes over its key stripe (overwrite-heavy — this
  // is what grows dead versions) through its client::Session. With a
  // window > 1 the batches pipeline: later publishes overlap earlier ones'
  // writes while commits stay strictly ordered, and the harness asserts that
  // ordering (a commit observed after a failed predecessor fails the run).
  size_t rounds = 100;
  size_t keys = 48;              // working-set size per relation AND stripe
  size_t updates_per_round = 8;  // updates per published batch
  double delete_prob = 0.15;     // P(update is a delete)
  size_t publish_window = 1;     // batches submitted (and in flight) per round

  // Concurrent disjoint participants. 1 = the classic single-writer harness
  // (one randomly chosen session per round). >= 2: participant i is pinned
  // to node i's session and updates only its own key stripe
  // [i*keys, (i+1)*keys); each round every participant submits its
  // publish_window batches CONCURRENTLY, so same-epoch claims contend and
  // losers re-base. Requires publishers <= num_nodes.
  size_t publishers = 1;

  // Fault mix. Kills are scheduled to land mid-publish; restarts happen
  // between rounds. max_dead keeps the replica-safety bound of the system
  // (replication-way storage tolerates replication/2 failures); hung nodes
  // count against the same budget — while hung they serve nothing.
  double kill_prob = 0.08;
  double restart_prob = 0.5;
  size_t max_dead = 1;
  double drop_prob = 0.02;
  double delay_prob = 0.10;
  sim::SimTime max_extra_delay_us = 20 * 1000;
  // Hung machines (§V-C): the node stops draining its inbox but connections
  // stay open, so RPCs to it burn their full deadline instead of failing
  // fast. Unhangs happen between rounds (like restarts) and at every repair;
  // after each repair the harness asserts the pending RPC tables drained.
  double hang_prob = 0.0;
  double unhang_prob = 0.5;
  // Asymmetric partitions: with partition_prob per round, one DIRECTED link
  // (from -> to) between live nodes starts dropping at partition_drop_prob
  // while the reverse direction stays healthy (Network::SetDropOverride).
  // Each active partition heals with partition_heal_prob per round; repairs
  // heal all of them. At most max_partitions are active at once.
  double partition_prob = 0.0;
  double partition_drop_prob = 0.9;
  double partition_heal_prob = 0.5;
  size_t max_partitions = 1;

  // Convergence cadence: every `check_every` rounds faults pause, dead nodes
  // restart, re-replication runs, and the model-equivalence + GC assertions
  // execute.
  size_t check_every = 20;

  // Multi-epoch GC: watermark = current epoch - gc_keep_epochs (0 = GC off;
  // storage then grows without bound and only equivalence is asserted).
  uint64_t gc_keep_epochs = 6;

  // LocalStore compaction floor for the deployment: lowered from the
  // production default (4096) so harness-scale stores still exercise the
  // GC -> compaction pipeline. Dead-fraction assertions apply to stores
  // at or above the floor (below it, compaction never runs by design).
  uint64_t compaction_min_records = 512;

  // Abandoned writers + fencing. With abandon_prob per round (at most
  // max_abandoned per run, writer nodes only, never the last live writer
  // class), one writer is killed a random sub-publish interval after the
  // round's submissions — landing after its epoch claim hit the wire — and
  // NEVER restarted: its claim would wedge the epoch chain forever under the
  // seed liveness contract. fence_after_us > 0 arms abandonment fencing on
  // every publisher (DeploymentOptions::fence_after_us) so stalled
  // contenders retire such claims; the liveness oracle below then holds.
  // Both default off; runs that predate these knobs draw nothing extra from
  // the fault RNG and replay byte-identically.
  double abandon_prob = 0.0;
  size_t max_abandoned = 0;
  sim::SimTime fence_after_us = 0;

  // Publish retry budget per batch (re-publishing a batch is idempotent).
  size_t publish_attempts = 12;

  // Also retrieve at one retained historical epoch per check.
  bool verify_history = true;

  // Durability (deployment runs with durable_wal; each node's WAL lives on a
  // deterministic in-memory backend). `wal_sync_every` / `checkpoint_every`
  // feed straight into the per-node StoreOptions: sync_every 1 makes every
  // record durable before it is acked (a crash tears nothing), 0 leaves the
  // whole tail unsynced so KillNode genuinely loses suffixes.
  uint64_t wal_sync_every = 1;
  uint64_t wal_checkpoint_every = 2048;
  // Crash-point fault injection: when a kill is scheduled, also arm (with
  // these probabilities) the victim's WAL fault hooks so the crash lands
  // mid-checkpoint-publish (MANIFEST.tmp written, rename skipped) or
  // mid-segment-seal (sealed segment left unsynced, so the crash tears it).
  // 0 draws nothing from the fault RNG, preserving seed traces of runs that
  // predate these knobs.
  double crash_mid_checkpoint_prob = 0.0;
  double crash_mid_seal_prob = 0.0;
};

struct ChurnReport {
  bool ok = false;
  std::string failure;  // empty when ok; else "churn[seed=N] ..."
  std::string trace;    // one line per round/action; byte-identical per seed

  uint64_t publishes_ok = 0;
  uint64_t publish_retries = 0;
  uint64_t kills = 0;
  uint64_t restarts = 0;
  uint64_t hangs = 0;
  uint64_t unhangs = 0;
  uint64_t pipelined_commits = 0;  // commits while >1 publish was in flight
  uint64_t checks = 0;
  uint64_t final_epoch = 0;

  // Multi-writer observations.
  uint64_t partitions = 0;        // asymmetric partitions scheduled
  uint64_t partition_heals = 0;   // healed between rounds (repairs heal all)
  uint64_t epoch_conflicts = 0;   // claims/commits lost across all publishers
  uint64_t rebases = 0;           // contention re-bases across all publishers
  uint64_t coordinator_conflicts = 0;  // commit-gate refusals (backstop;
                                       // expected to stay 0 outside
                                       // claim-replica-set wipeouts)
  uint64_t concurrent_commits = 0;  // commits while another PARTICIPANT also
                                    // had a publish in flight
  uint64_t history_invalidations = 0;  // model history dropped after a
                                       // possibly-committed aborted ticket

  // Abandonment + fencing observations.
  uint64_t seed = 0;       // echoed from ChurnOptions (replay convenience)
  uint64_t abandons = 0;   // writers killed-after-claim and never restarted
  uint64_t fences = 0;     // fence rounds fully granted (across publishers)
  uint64_t fenced_skips = 0;  // burned epochs skipped over by contenders
  uint64_t fences_granted = 0;        // claim-replica fence grants (storage)
  uint64_t fenced_writes_refused = 0;  // zombie writes bounced with kFenced
  uint64_t purged_orphans = 0;  // orphan records doomed by fence purges

  // GC / storage-bound observations (maxima over all convergence checks).
  double max_dead_fraction = 0;    // worst per-store dead fraction
  uint64_t max_live_records = 0;   // worst cluster-wide live record count
  uint64_t live_record_bound = 0;  // the bound asserted against
  uint64_t gc_retired_total = 0;   // records retired by GC across the run

  // Durability observations (summed over all nodes at the end of the run).
  uint64_t wal_replayed_records = 0;  // tail records replayed across restarts
  uint64_t wal_torn_tails = 0;        // crash-torn segment tails truncated
  uint64_t wal_torn_bytes = 0;        // bytes discarded by those truncations
  uint64_t wal_checkpoints = 0;       // checkpoints published across the run

  // Fault accounting + determinism fingerprint.
  uint64_t faults_dropped = 0;
  uint64_t faults_delayed = 0;
  uint64_t trace_digest = 0;  // simulator digest at the end of the run
  double sim_seconds = 0;     // simulated makespan
};

/// Runs the churn scenario described by `options` to completion.
ChurnReport RunChurn(const ChurnOptions& options);

/// One-line shell command that replays `report`'s exact run:
/// "ORCHESTRA_CHURN_SEED=<seed> ./churn_test --gtest_filter=<test_filter>".
/// Print it with every sweep failure so the repro is a copy-paste away.
std::string ReplayCommand(const ChurnReport& report,
                          const std::string& test_filter);

/// The last `max_lines` lines of the report's event trace (the whole trace
/// when shorter) — the standard failure attachment for sweep assertions.
std::string TraceTail(const ChurnReport& report, size_t max_lines);

}  // namespace orchestra::churn

#endif  // ORCHESTRA_TESTS_CHURN_HARNESS_H_
