#include <gtest/gtest.h>

#include "common/bitset.h"
#include "common/compress.h"
#include "common/log.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/serial.h"
#include "common/status.h"

namespace orchestra {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing page");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing page");
}

TEST(Status, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto outer = [&]() -> Status {
    ORC_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), Status::Code::kIOError);
}

TEST(Result, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.ValueOr(3), 7);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::Unavailable("down"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_EQ(r.ValueOr(3), 3);
}

TEST(Serial, FixedWidthRoundTrip) {
  Writer w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutDouble(3.25);
  w.PutBool(true);

  Reader r(w.data());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  bool b;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU16(&u16).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  ASSERT_TRUE(r.GetBool(&b).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d, 3.25);
  EXPECT_TRUE(b);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serial, TruncatedInputIsCorruption) {
  Writer w;
  w.PutU32(77);
  Reader r(std::string_view(w.data()).substr(0, 2));
  uint32_t v;
  EXPECT_TRUE(r.GetU32(&v).IsCorruption());
}

class VarintTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintTest, RoundTrip) {
  uint64_t v = GetParam();
  Writer w;
  w.PutVarint64(v);
  Reader r(w.data());
  uint64_t got;
  ASSERT_TRUE(r.GetVarint64(&got).ok());
  EXPECT_EQ(got, v);
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintTest,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull, 16383ull,
                                           16384ull, (1ull << 32) - 1, 1ull << 32,
                                           UINT64_MAX));

TEST(Serial, VarintTooLongIsCorruption) {
  std::string bad(11, '\xFF');
  Reader r(bad);
  uint64_t v;
  EXPECT_TRUE(r.GetVarint64(&v).IsCorruption());
}

TEST(Serial, StringRoundTrip) {
  Writer w;
  w.PutString("hello");
  w.PutString(std::string("\x00\x01有", 5));
  w.PutString("");
  Reader r(w.data());
  std::string a, b, c;
  ASSERT_TRUE(r.GetString(&a).ok());
  ASSERT_TRUE(r.GetString(&b).ok());
  ASSERT_TRUE(r.GetString(&c).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, std::string("\x00\x01有", 5));
  EXPECT_EQ(c, "");
}

TEST(Compress, RoundTripAndShrinksRedundantData) {
  std::string input;
  for (int i = 0; i < 1000; ++i) input += "abcabcabc|";
  std::string packed = CompressBlock(input);
  EXPECT_LT(packed.size(), input.size() / 4);
  auto out = UncompressBlock(packed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Compress, EmptyInput) {
  std::string packed = CompressBlock("");
  auto out = UncompressBlock(packed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "");
}

TEST(Compress, GarbageFailsCleanly) {
  auto out = UncompressBlock("\x05garbage-not-zlib");
  EXPECT_FALSE(out.ok());
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, ForkIndependentOfParentDraws) {
  Rng a(5);
  Rng child = a.Fork(9);
  Rng a2(5);
  Rng child2 = a2.Fork(9);
  EXPECT_EQ(child.NextU64(), child2.NextU64());
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Bitset, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_TRUE(b.empty_set());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(Bitset, UnionAndIntersects) {
  DynamicBitset a(100), b(100);
  a.Set(3);
  b.Set(77);
  EXPECT_FALSE(a.Intersects(b));
  a.UnionWith(b);
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(77));
  EXPECT_TRUE(a.Intersects(b));
}

TEST(Bitset, HashEqualityContract) {
  DynamicBitset a(64), b(64);
  a.Set(5);
  b.Set(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(6);
  EXPECT_FALSE(a == b);
}

TEST(Bitset, EncodeDecodeRoundTrip) {
  DynamicBitset a(70);
  a.Set(0);
  a.Set(69);
  Writer w;
  a.EncodeTo(&w);
  Reader r(w.data());
  DynamicBitset b;
  ASSERT_TRUE(DynamicBitset::DecodeFrom(&r, &b).ok());
  EXPECT_EQ(a, b);
}

TEST(Bitset, FirstSet) {
  DynamicBitset b(128);
  EXPECT_EQ(b.FirstSet(), 128u);
  b.Set(100);
  EXPECT_EQ(b.FirstSet(), 100u);
  b.Set(3);
  EXPECT_EQ(b.FirstSet(), 3u);
}

}  // namespace
}  // namespace orchestra
