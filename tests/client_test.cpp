// client::Session — the unified async participant API. Covers:
//  * Pending<T> resolution/continuation semantics,
//  * deprecation-shim equivalence (Publisher::PublishBatch vs Session),
//  * pipelined publishing: ordered commits, chain accounting, sim-time
//    overlap win, in-memory page handoff across chained epochs,
//  * failure semantics: suffix abort + in-order same-batch retry,
//    ticket resolution when the session's node dies,
//  * admission control: window shrinks under injected load hints with no
//    publish lost, and recovers when load clears.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "client/session.h"
#include "common/pending.h"
#include "deploy/deployment.h"
#include "storage/publisher.h"

namespace orchestra::client {
namespace {

using storage::Epoch;
using storage::Tuple;
using storage::Update;
using storage::UpdateBatch;
using storage::Value;
using storage::ValueType;

storage::RelationDef SimpleRelation(const std::string& name,
                                    uint32_t partitions = 8) {
  storage::RelationDef def;
  def.name = name;
  def.schema = storage::Schema(
      {{"k", ValueType::kString}, {"v", ValueType::kString}}, /*key_arity=*/1);
  def.num_partitions = partitions;
  return def;
}

Tuple Row(const std::string& k, const std::string& v) {
  return Tuple{Value(k), Value(v)};
}

UpdateBatch OneRow(const std::string& rel, const std::string& k,
                   const std::string& v) {
  UpdateBatch b;
  b[rel] = {Update::Insert(Row(k, v))};
  return b;
}

std::map<std::string, std::string> AsMap(const std::vector<Tuple>& rows) {
  std::map<std::string, std::string> m;
  for (const Tuple& t : rows) m[t[0].AsString()] = t[1].AsString();
  return m;
}

// ---------------------------------------------------------------------------
// Pending<T>

TEST(Pending, ResolvesOnceAndRunsContinuations) {
  Pending<int> p;
  EXPECT_FALSE(p.done());
  EXPECT_FALSE(p.ok());
  int fired = 0;
  p.OnReady([&fired] { ++fired; });
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(p.Resolve(Status::OK(), 7));
  EXPECT_TRUE(p.done());
  EXPECT_TRUE(p.ok());
  EXPECT_EQ(p.value(), 7);
  EXPECT_EQ(fired, 1);
  // Late continuation runs immediately; second resolve is rejected.
  p.OnReady([&fired] { ++fired; });
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(p.Resolve(Status::IOError("too late"), 9));
  EXPECT_EQ(p.value(), 7);
}

TEST(Pending, CopiesShareState) {
  Pending<std::string> a;
  Pending<std::string> b = a;
  a.Resolve(Status::OK(), "shared");
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(b.value(), "shared");
  EXPECT_EQ(a.ToResult().value(), "shared");
}

TEST(Pending, FailureCarriesStatus) {
  Pending<int> p;
  p.Resolve(Status::NotFound("missing"));
  EXPECT_TRUE(p.done());
  EXPECT_FALSE(p.ok());
  EXPECT_TRUE(p.status().IsNotFound());
  EXPECT_FALSE(p.ToResult().ok());
}

// ---------------------------------------------------------------------------
// Session basics + shim equivalence

class SessionTest : public ::testing::Test {
 protected:
  explicit SessionTest(size_t nodes = 4) {
    deploy::DeploymentOptions opts;
    opts.num_nodes = nodes;
    opts.replication = 3;
    dep = std::make_unique<deploy::Deployment>(opts);
  }
  bool Drive(const std::function<bool()>& pred,
             sim::SimTime budget = deploy::Deployment::kDefaultWaitUs) {
    return dep->RunUntil(pred, budget);
  }
  std::unique_ptr<deploy::Deployment> dep;
};

// The deprecated free-callback entry point and the Session must produce
// byte-equivalent visible state: same epochs, same retrieved rows.
TEST_F(SessionTest, DeprecatedShimMatchesSession) {
  deploy::DeploymentOptions opts;
  opts.num_nodes = 4;
  opts.replication = 3;
  deploy::Deployment legacy(opts);

  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  ASSERT_TRUE(legacy.CreateRelation(0, SimpleRelation("R")).ok());

  std::vector<UpdateBatch> batches;
  for (int i = 0; i < 5; ++i) {
    batches.push_back(OneRow("R", "k" + std::to_string(i % 3),
                             "v" + std::to_string(i)));
  }

  // New path: Session tickets.
  std::vector<Epoch> session_epochs;
  for (const UpdateBatch& b : batches) {
    Ticket t = dep->session(0).Submit(b);
    ASSERT_TRUE(Drive([&t] { return t.epoch.done(); }));
    ASSERT_TRUE(t.epoch.ok()) << t.epoch.status().ToString();
    session_epochs.push_back(t.epoch.value());
  }

  // Old path: Publisher::PublishBatch with a bare callback.
  std::vector<Epoch> legacy_epochs;
  for (const UpdateBatch& b : batches) {
    bool done = false;
    Status st;
    Epoch e = 0;
    legacy.publisher(0).PublishBatch(b, [&](Status s, Epoch ep) {
      st = s;
      e = ep;
      done = true;
    });
    ASSERT_TRUE(legacy.RunUntil([&done] { return done; }));
    ASSERT_TRUE(st.ok()) << st.ToString();
    legacy_epochs.push_back(e);
  }

  EXPECT_EQ(session_epochs, legacy_epochs);
  auto new_rows = dep->Retrieve(1, "R", session_epochs.back());
  auto old_rows = legacy.Retrieve(1, "R", legacy_epochs.back());
  ASSERT_TRUE(new_rows.ok());
  ASSERT_TRUE(old_rows.ok());
  EXPECT_EQ(AsMap(*new_rows), AsMap(*old_rows));
}

TEST_F(SessionTest, FlushIsABarrier) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  Session& s = dep->session(0);
  for (int i = 0; i < 3; ++i) {
    s.Submit(OneRow("R", "k", "v" + std::to_string(i)));
  }
  Pending<Epoch> flush = s.Flush();
  EXPECT_FALSE(flush.done());
  ASSERT_TRUE(Drive([&flush] { return flush.done(); }));
  EXPECT_TRUE(flush.ok());
  EXPECT_EQ(flush.value(), 3u);
  EXPECT_EQ(s.in_flight(), 0u);
  EXPECT_EQ(s.queued(), 0u);
  // An idle flush resolves immediately with the last epoch.
  Pending<Epoch> idle = s.Flush();
  EXPECT_TRUE(idle.ok());
  EXPECT_EQ(idle.value(), 3u);
}

TEST_F(SessionTest, RetrievePendingDeliversRows) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  ASSERT_TRUE(dep->Publish(0, OneRow("R", "a", "1")).ok());
  auto rows = dep->session(2).Retrieve("R", 1);
  ASSERT_TRUE(Drive([&rows] { return rows.done(); }));
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(AsMap(rows.value()),
            (std::map<std::string, std::string>{{"a", "1"}}));
}

// ---------------------------------------------------------------------------
// Pipelining

TEST_F(SessionTest, PipelinedWindowCommitsInOrderAndChains) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  Session& s = dep->session(0);
  const auto& pstats = dep->publisher(0).pipeline_stats();
  uint64_t chained_before = pstats.chained;

  std::map<std::string, std::string> model;
  std::vector<Ticket> tickets;
  for (int i = 0; i < 6; ++i) {
    std::string k = "k" + std::to_string(i % 4);
    std::string v = "v" + std::to_string(i);
    model[k] = v;
    tickets.push_back(s.Submit(OneRow("R", k, v)));
  }
  EXPECT_GT(s.in_flight(), 1u);  // the window really overlaps publishes
  ASSERT_TRUE(Drive([&tickets] {
    for (const Ticket& t : tickets) {
      if (!t.epoch.done()) return false;
    }
    return true;
  }));
  for (size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].epoch.ok()) << tickets[i].epoch.status().ToString();
    EXPECT_EQ(tickets[i].epoch.value(), i + 1);  // strictly ordered commits
  }
  EXPECT_GT(pstats.chained, chained_before);  // pipelining actually engaged
  EXPECT_GE(s.stats().max_in_flight, 2u);

  // Every overlapped epoch is fully retrievable, including intermediates
  // (the in-memory page handoff produced exactly the committed pages).
  auto rows = dep->Retrieve(1, "R", tickets.back().epoch.value());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(AsMap(*rows), model);
  auto mid = dep->Retrieve(2, "R", 3);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->size(), 3u);  // k0..k2 as of epoch 3
}

// The pipeline's reason to exist: the same batch stream finishes in
// substantially less simulated time at window 4 than at window 1.
TEST(SessionPipeline, OverlapBeatsSequentialSimTime) {
  auto run = [](size_t window) -> sim::SimTime {
    deploy::DeploymentOptions opts;
    opts.num_nodes = 4;
    opts.replication = 3;
    opts.session.max_window = window;
    deploy::Deployment dep(opts);
    EXPECT_TRUE(dep.CreateRelation(0, SimpleRelation("R")).ok());
    Session& s = dep.session(0);
    sim::SimTime start = dep.sim().now();
    std::vector<Ticket> tickets;
    for (int i = 0; i < 12; ++i) {
      tickets.push_back(s.Submit(OneRow("R", "k" + std::to_string(i % 5),
                                        "v" + std::to_string(i))));
    }
    EXPECT_TRUE(dep.RunUntil([&tickets] {
      for (const Ticket& t : tickets) {
        if (!t.epoch.done()) return false;
      }
      return true;
    }));
    for (const Ticket& t : tickets) EXPECT_TRUE(t.epoch.ok());
    return dep.sim().now() - start;
  };
  sim::SimTime sequential = run(1);
  sim::SimTime pipelined = run(4);
  // The bench asserts the full >= 2x acceptance bound; here a conservative
  // 1.5x guards the mechanism against regressions at unit-test scale.
  EXPECT_LT(pipelined * 3, sequential * 2)
      << "window 4 took " << pipelined << "us vs window 1 " << sequential << "us";
}

// One coalesced kPutTuples frame per destination node per publish, even when
// the batch spans relations and partitions.
TEST_F(SessionTest, TupleWritesCoalescePerNode) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("S")).ok());
  auto frames_now = [&] {
    uint64_t n = 0;
    for (size_t i = 0; i < dep->size(); ++i) {
      n += dep->storage(i).counters().puttuples_frames;
    }
    return n;
  };
  uint64_t before = frames_now();
  UpdateBatch b;
  for (int i = 0; i < 16; ++i) {
    std::string k = "k" + std::to_string(i);
    b["R"].push_back(Update::Insert(Row(k, "r")));
    b["S"].push_back(Update::Insert(Row(k, "s")));
  }
  ASSERT_TRUE(dep->Publish(0, std::move(b)).ok());
  uint64_t frames = frames_now() - before;
  // 32 tuple writes x replication 3 land in at most one frame per node.
  EXPECT_LE(frames, dep->size());
  EXPECT_GE(frames, 1u);
}

// ---------------------------------------------------------------------------
// Failure semantics

TEST_F(SessionTest, FailureAbortsSuffixAndSameBatchRetryRecovers) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  ASSERT_TRUE(dep->Publish(0, OneRow("R", "seed", "s")).ok());

  std::vector<UpdateBatch> batches;
  for (int i = 0; i < 4; ++i) {
    batches.push_back(OneRow("R", "k" + std::to_string(i), "v" + std::to_string(i)));
  }
  Session& s = dep->session(0);
  std::vector<Ticket> tickets;
  for (const UpdateBatch& b : batches) tickets.push_back(s.Submit(b));
  // Kill a storage peer without updating routing: its replica writes fail,
  // so the actively-writing publish errors and the suffix aborts before
  // writing anything.
  dep->KillNode(3, /*update_routing=*/false);
  ASSERT_TRUE(Drive([&tickets] {
    for (const Ticket& t : tickets) {
      if (!t.epoch.done()) return false;
    }
    return true;
  }));
  size_t failed_at = tickets.size();
  for (size_t i = 0; i < tickets.size(); ++i) {
    if (!tickets[i].epoch.ok()) {
      failed_at = i;
      break;
    }
  }
  ASSERT_LT(failed_at, tickets.size());  // something did fail
  for (size_t i = failed_at; i < tickets.size(); ++i) {
    EXPECT_FALSE(tickets[i].epoch.ok()) << "commit behind a failed publish";
  }

  // Recover the cluster, then re-submit the failed suffix in order with the
  // SAME batches — the idempotent-retry discipline.
  dep->RestartNode(3);
  dep->RunFor(2 * sim::kMicrosPerSec);
  std::vector<Ticket> retry;
  for (size_t i = failed_at; i < batches.size(); ++i) {
    retry.push_back(s.Submit(batches[i]));
  }
  ASSERT_TRUE(Drive(
      [&retry] {
        for (const Ticket& t : retry) {
          if (!t.epoch.done()) return false;
        }
        return true;
      },
      4 * deploy::Deployment::kDefaultWaitUs));
  for (const Ticket& t : retry) {
    ASSERT_TRUE(t.epoch.ok()) << t.epoch.status().ToString();
  }
  auto rows = dep->Retrieve(1, "R", retry.back().epoch.value());
  ASSERT_TRUE(rows.ok());
  std::map<std::string, std::string> want{{"seed", "s"}, {"k0", "v0"},
                                          {"k1", "v1"}, {"k2", "v2"},
                                          {"k3", "v3"}};
  EXPECT_EQ(AsMap(*rows), want);
}

TEST_F(SessionTest, TicketsResolveWhenSessionNodeDies) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  Session& s = dep->session(1);
  std::vector<Ticket> tickets;
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(s.Submit(OneRow("R", "k" + std::to_string(i), "v")));
  }
  dep->KillNode(1);  // the session's own node
  // No driving needed: the kill path fails the tickets synchronously — a
  // dead client's work can never resolve through its dropped callbacks.
  for (const Ticket& t : tickets) {
    ASSERT_TRUE(t.epoch.done());
    EXPECT_FALSE(t.epoch.ok());
  }
  EXPECT_EQ(s.in_flight(), 0u);
  EXPECT_EQ(s.queued(), 0u);
}

// ---------------------------------------------------------------------------
// Admission control

TEST_F(SessionTest, BackpressureShrinksWindowWithoutLosingPublishes) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  Session& s = dep->session(0);
  ASSERT_EQ(s.window(), 4u);

  // Every peer reports heavy load; the first replies throttle the session.
  for (size_t i = 1; i < dep->size(); ++i) {
    dep->storage(i).InjectLoadHint(100000);
  }
  std::map<std::string, std::string> model;
  std::vector<Ticket> tickets;
  for (int i = 0; i < 8; ++i) {
    std::string k = "k" + std::to_string(i);
    model[k] = "v";
    tickets.push_back(s.Submit(OneRow("R", k, "v")));
  }
  ASSERT_TRUE(Drive(
      [&tickets] {
        for (const Ticket& t : tickets) {
          if (!t.epoch.done()) return false;
        }
        return true;
      },
      4 * deploy::Deployment::kDefaultWaitUs));
  // No publish lost: everything committed despite throttling.
  for (const Ticket& t : tickets) {
    ASSERT_TRUE(t.epoch.ok()) << t.epoch.status().ToString();
  }
  EXPECT_GE(s.stats().throttle_shrinks, 1u);
  EXPECT_EQ(s.stats().min_window_seen, 1u);
  EXPECT_EQ(s.window(), 1u);
  auto rows = dep->Retrieve(1, "R", tickets.back().epoch.value());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(AsMap(*rows), model);

  // Load clears -> the window recovers (additive growth per launch).
  for (size_t i = 1; i < dep->size(); ++i) dep->storage(i).InjectLoadHint(0);
  dep->RunFor(3 * sim::kMicrosPerSec);  // age out stale hints
  std::vector<Ticket> more;
  for (int i = 0; i < 6; ++i) {
    more.push_back(s.Submit(OneRow("R", "m" + std::to_string(i), "v")));
  }
  ASSERT_TRUE(Drive([&more] {
    for (const Ticket& t : more) {
      if (!t.epoch.done()) return false;
    }
    return true;
  }));
  for (const Ticket& t : more) ASSERT_TRUE(t.epoch.ok());
  EXPECT_GE(s.stats().window_grows, 1u);
  EXPECT_GT(s.window(), 1u);
}

// ---------------------------------------------------------------------------
// Multi-writer: concurrent sessions from disjoint participants on one
// deployment. Epoch contention must resolve deterministically — one writer
// per epoch (claims + the participant-tagged commit gate), the loser
// re-basing onto the winner's committed output — with no torn or shadowed
// versions at any epoch.

TEST_F(SessionTest, ConcurrentPublishersResolveContentionDeterministically) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  Session& a = dep->session(0);  // participant 1
  Session& b = dep->session(1);  // participant 2
  ASSERT_NE(a.participant(), b.participant());

  // Submit in the same sim instant: both discover the same base and race
  // for the same epoch.
  Ticket ta = a.Submit(OneRow("R", "a", "va"));
  Ticket tb = b.Submit(OneRow("R", "b", "vb"));
  ASSERT_TRUE(Drive([&] { return ta.epoch.done() && tb.epoch.done(); }));
  ASSERT_TRUE(ta.epoch.ok()) << ta.epoch.status().ToString();
  ASSERT_TRUE(tb.epoch.ok()) << tb.epoch.status().ToString();

  // One writer per epoch, and the epochs are adjacent: the loser re-based
  // onto the winner's commit instead of failing or tearing.
  EXPECT_NE(ta.epoch.value(), tb.epoch.value());
  Epoch lo = std::min(ta.epoch.value(), tb.epoch.value());
  Epoch hi = std::max(ta.epoch.value(), tb.epoch.value());
  EXPECT_EQ(hi, lo + 1);
  uint64_t conflicts = dep->publisher(0).pipeline_stats().epoch_conflicts +
                       dep->publisher(1).pipeline_stats().epoch_conflicts;
  uint64_t rebases = dep->publisher(0).pipeline_stats().rebases +
                     dep->publisher(1).pipeline_stats().rebases;
  EXPECT_GE(conflicts, 1u);
  EXPECT_GE(rebases, 1u);

  // The final epoch merges both participants' (disjoint) updates; the
  // earlier epoch carries exactly the winner's.
  auto at_hi = dep->Retrieve(2, "R", hi);
  ASSERT_TRUE(at_hi.ok());
  EXPECT_EQ(AsMap(*at_hi),
            (std::map<std::string, std::string>{{"a", "va"}, {"b", "vb"}}));
  auto at_lo = dep->Retrieve(2, "R", lo);
  ASSERT_TRUE(at_lo.ok());
  bool a_won = ta.epoch.value() == lo;
  EXPECT_EQ(AsMap(*at_lo),
            a_won ? (std::map<std::string, std::string>{{"a", "va"}})
                  : (std::map<std::string, std::string>{{"b", "vb"}}));
}

// Same race twice (fresh deployments) => identical winner and epochs.
TEST(MultiWriter, ContentionReplaysIdentically) {
  auto run = [] {
    deploy::DeploymentOptions opts;
    opts.num_nodes = 4;
    opts.replication = 3;
    deploy::Deployment dep(opts);
    EXPECT_TRUE(dep.CreateRelation(0, SimpleRelation("R")).ok());
    Ticket ta = dep.session(0).Submit(OneRow("R", "a", "va"));
    Ticket tb = dep.session(1).Submit(OneRow("R", "b", "vb"));
    EXPECT_TRUE(
        dep.RunUntil([&] { return ta.epoch.done() && tb.epoch.done(); }));
    EXPECT_TRUE(ta.epoch.ok());
    EXPECT_TRUE(tb.epoch.ok());
    return std::make_pair(ta.epoch.value(), tb.epoch.value());
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first, second);
}

// Sustained concurrent publishing: every committed epoch has exactly one
// writer, and retrieval at EVERY epoch equals the model built by applying
// the committed batches in epoch order — i.e. no epoch was ever torn by a
// second writer and no version was shadowed by a contention loser.
TEST_F(SessionTest, NoTornOrShadowedVersionsAcrossFullHistory) {
  ASSERT_TRUE(dep->CreateRelation(0, SimpleRelation("R")).ok());
  constexpr int kRounds = 6;
  constexpr size_t kWriters = 3;
  // (epoch -> (key, value)) of every committed batch, across all writers.
  std::map<Epoch, std::pair<std::string, std::string>> commits;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<Ticket> tickets;
    std::vector<std::pair<std::string, std::string>> rows;
    for (size_t w = 0; w < kWriters; ++w) {
      // Disjoint per-writer key stripes, fresh value per round.
      std::string k = "w" + std::to_string(w) + "k" + std::to_string(round % 2);
      std::string v = "r" + std::to_string(round);
      rows.emplace_back(k, v);
      tickets.push_back(dep->session(w).Submit(OneRow("R", k, v)));
    }
    ASSERT_TRUE(Drive([&tickets] {
      for (const Ticket& t : tickets) {
        if (!t.epoch.done()) return false;
      }
      return true;
    }));
    for (size_t w = 0; w < kWriters; ++w) {
      ASSERT_TRUE(tickets[w].epoch.ok())
          << "round " << round << " writer " << w << ": "
          << tickets[w].epoch.status().ToString();
      // Torn-epoch detector: one committed writer per epoch, ever.
      ASSERT_TRUE(commits.emplace(tickets[w].epoch.value(), rows[w]).second)
          << "epoch " << tickets[w].epoch.value() << " committed twice";
    }
  }
  // Replay the commit log in epoch order and check retrieval at EVERY epoch.
  std::map<std::string, std::string> model;
  for (const auto& [epoch, kv] : commits) {
    model[kv.first] = kv.second;
    auto rows = dep->Retrieve(3, "R", epoch);
    ASSERT_TRUE(rows.ok()) << "epoch " << epoch;
    EXPECT_EQ(AsMap(*rows), model) << "epoch " << epoch;
  }
  EXPECT_EQ(dep->storage(0).counters().coordinator_conflicts +
                dep->storage(1).counters().coordinator_conflicts +
                dep->storage(2).counters().coordinator_conflicts +
                dep->storage(3).counters().coordinator_conflicts,
            0u)
      << "the commit-gate backstop fired: claims failed to serialize";
}

// GC under multi-writer: the effective watermark is the MIN across active
// participants, so a slow writer pins retirement and its base versions are
// never retired out from under it.
TEST(MultiWriter, GcWatermarkIsMinAcrossParticipants) {
  deploy::DeploymentOptions opts;
  opts.num_nodes = 4;
  opts.replication = 3;
  opts.gc_keep_epochs = 2;
  deploy::Deployment dep(opts);
  ASSERT_TRUE(dep.CreateRelation(0, SimpleRelation("R")).ok());

  // The slow writer commits once, early, and then goes quiet.
  auto slow = dep.Publish(1, OneRow("R", "slow", "v0"));
  ASSERT_TRUE(slow.ok());
  const Epoch slow_base = *slow;

  // The fast writer races ahead: its own mark advances, but the effective
  // watermark stays pinned at the slow participant's (0, inside the keep
  // window), so nothing the slow writer bases on is retired.
  Epoch last = 0;
  for (int i = 0; i < 8; ++i) {
    auto e = dep.Publish(0, OneRow("R", "fast", "v" + std::to_string(i)));
    ASSERT_TRUE(e.ok());
    last = *e;
  }
  dep.RunFor(1 * sim::kMicrosPerSec);  // advertisements land
  ASSERT_GT(last, opts.gc_keep_epochs + slow_base);
  for (size_t i = 0; i < dep.size(); ++i) {
    EXPECT_EQ(dep.storage(i).gc_watermark(), 0u) << "node " << i;
    EXPECT_EQ(dep.storage(i).EffectiveParticipantWatermark(), 0u);
    EXPECT_EQ(dep.storage(i).participant_mark_count(), 2u);
  }
  // Every historical epoch — including the slow writer's base — is intact.
  auto old_rows = dep.Retrieve(2, "R", slow_base);
  ASSERT_TRUE(old_rows.ok());
  EXPECT_EQ(old_rows->size(), 1u);

  // The slow writer catches up: the min jumps and retirement finally runs.
  // The effective mark is now min over BOTH participants' latest marks —
  // the fast writer's trails by the epochs the slow one just claimed.
  auto wake = dep.Publish(1, OneRow("R", "slow", "v1"));
  ASSERT_TRUE(wake.ok());
  dep.RunFor(1 * sim::kMicrosPerSec);
  const Epoch expect_mark = std::min(*wake, last) - opts.gc_keep_epochs;
  for (size_t i = 0; i < dep.size(); ++i) {
    EXPECT_EQ(dep.storage(i).gc_watermark(), expect_mark) << "node " << i;
  }
  // Epochs below the new watermark are retired...
  auto below = dep.Retrieve(2, "R", slow_base);
  EXPECT_FALSE(below.ok());
  // ...and the live window still reads exactly.
  auto now = dep.Retrieve(2, "R", *wake);
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(AsMap(*now), (std::map<std::string, std::string>{
                             {"slow", "v1"}, {"fast", "v7"}}));
}

// ---------------------------------------------------------------------------
// Abandonment fencing at the client surface: a session whose in-flight
// publish is fenced mid-write must surface a clean terminal error on its
// Ticket — no hang, no silent success — its chained successors must abort
// in submit order behind it, and the same-batch retry must recover at a
// fresh epoch with none of the zombie's writes leaking into history.

TEST(Fencing, FencedMidPublishFailsTicketAndAbortsSuccessorsInOrder) {
  deploy::DeploymentOptions opts;
  opts.num_nodes = 4;
  opts.replication = 3;
  opts.fence_after_us = 2 * sim::kMicrosPerSec;
  deploy::Deployment dep(opts);
  ASSERT_TRUE(dep.CreateRelation(0, SimpleRelation("R")).ok());

  // Cast the roles off the ring: the victim writes from the one node that
  // does NOT replicate the contested epoch's claim, so the fencer's
  // all-replicas grant round never depends on the hung node.
  auto claim_reps =
      dep.storage(0).snapshot().ReplicasOf(storage::ClaimHash(2),
                                           opts.replication);
  size_t writer = 0;
  for (size_t n = 0; n < dep.size(); ++n) {
    if (std::find(claim_reps.begin(), claim_reps.end(),
                  static_cast<net::NodeId>(n)) == claim_reps.end()) {
      writer = n;
    }
  }
  const size_t fencer = (writer + 1) % dep.size();
  ASSERT_TRUE(dep.Publish(fencer, OneRow("R", "seed", "s")).ok());  // epoch 1

  auto frames_now = [&dep] {
    uint64_t n = 0;
    for (size_t i = 0; i < dep.size(); ++i) {
      n += dep.storage(i).counters().puttuples_frames;
    }
    return n;
  };
  const uint64_t frames_before = frames_now();

  Session& zombie = dep.session(writer);
  std::vector<UpdateBatch> batches;
  for (int i = 0; i < 3; ++i) {
    batches.push_back(OneRow("R", "k" + std::to_string(i),
                             "v" + std::to_string(i)));
  }
  std::vector<Ticket> tickets;
  for (const UpdateBatch& b : batches) tickets.push_back(zombie.Submit(b));

  // Freeze the writer after its epoch-2 tuple writes hit a replica but
  // before its confirm: a real abandonment, indistinguishable from a crash
  // to everyone else, with orphan versions already on the wire.
  ASSERT_TRUE(dep.RunUntil([&] { return frames_now() > frames_before; }));
  ASSERT_FALSE(tickets[0].epoch.done());
  dep.network().HangNode(static_cast<net::NodeId>(writer));

  // Run the fencer's two-phase sequence from the test (at 4 nodes every
  // replica set includes the hung node, so a full contender publish cannot
  // commit — the live fencer pipeline is exercised by the churn sweeps):
  // wait out the staleness TTL, collect a grant from EVERY claim replica
  // (all alive by the role-casting above), then broadcast purge authority.
  dep.RunFor(2 * opts.fence_after_us);
  auto rpc = [&](net::NodeId target, uint16_t code, std::string body) {
    Status out = Status::Unavailable("no reply");
    bool done = false;
    dep.storage(fencer).Call(target, code, std::move(body),
                             [&](Status s, const std::string&) {
                               out = s;
                               done = true;
                             });
    dep.RunUntil([&done] { return done; });
    return out;
  };
  const uint32_t fencer_id = 9;  // any non-owner participant may fence
  for (net::NodeId target : claim_reps) {
    Writer fw;
    fw.PutVarint64(2);
    fw.PutVarint32(fencer_id);
    fw.PutVarint32(zombie.participant());
    fw.PutVarint64(opts.fence_after_us);
    Status granted = rpc(target, storage::kFenceEpoch, fw.Release());
    ASSERT_TRUE(granted.ok()) << granted.ToString();
  }
  Writer pw;
  pw.PutVarint64(2);
  pw.PutVarint32(zombie.participant());
  pw.PutVarint64(0);  // nonce is advisory on purge; the fence named it
  for (size_t n = 0; n < dep.size(); ++n) {
    if (n == writer) continue;
    dep.storage(fencer).SendOneWay(static_cast<net::NodeId>(n),
                                   storage::kPurgeEpoch, pw.data());
  }
  dep.RunFor(sim::kMicrosPerSec / 5);
  uint64_t fences_granted = 0;
  for (size_t i = 0; i < dep.size(); ++i) {
    fences_granted += dep.storage(i).counters().fences_granted;
  }
  EXPECT_GE(fences_granted, claim_reps.size());

  // Thaw the zombie. Its head publish must resolve with a terminal error —
  // never hang awaiting a grant that cannot come, never report success for
  // purged writes — and the pipelined successors abort in order behind it.
  dep.network().UnhangNode(static_cast<net::NodeId>(writer));
  ASSERT_TRUE(dep.RunUntil(
      [&tickets] {
        for (const Ticket& t : tickets) {
          if (!t.epoch.done()) return false;
        }
        return true;
      },
      4 * deploy::Deployment::kDefaultWaitUs));
  const Status& head = tickets[0].epoch.status();
  EXPECT_FALSE(head.ok()) << "silent success for a fenced publish";
  EXPECT_TRUE(head.IsFenced() || head.IsTimedOut()) << head.ToString();
  for (size_t i = 1; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].epoch.done()) << "successor " << i << " hung";
    EXPECT_TRUE(tickets[i].epoch.status().IsAborted())
        << "successor " << i << ": " << tickets[i].epoch.status().ToString();
  }

  // The writer node was dark when the purge broadcast went out, so its
  // local orphans survive until anti-entropy delivers the burned-epoch
  // table — the same replica-push repair any partition heal runs.
  for (size_t i = 0; i < dep.size(); ++i) {
    dep.storage(i).RebalanceTo(dep.snapshot());
  }
  ASSERT_TRUE(dep.RunUntil([&dep] { return dep.PendingRpcCount() == 0; }));

  // None of the zombie's writes leaked into committed history: the last
  // committed epoch still reads exactly the seed, and the burned epoch
  // discovers nothing at all (its orphans were purged, not half-purged).
  auto at1 = dep.Retrieve(fencer, "R", 1);
  ASSERT_TRUE(at1.ok()) << at1.status().ToString();
  EXPECT_EQ(AsMap(*at1), (std::map<std::string, std::string>{{"seed", "s"}}));
  EXPECT_FALSE(dep.Retrieve(fencer, "R", 2).ok());

  // The idempotent-retry discipline still holds across a fence: the same
  // batches, resubmitted in order, commit at fresh epochs.
  std::vector<Ticket> retry;
  for (const UpdateBatch& b : batches) retry.push_back(zombie.Submit(b));
  ASSERT_TRUE(dep.RunUntil(
      [&retry] {
        for (const Ticket& t : retry) {
          if (!t.epoch.done()) return false;
        }
        return true;
      },
      4 * deploy::Deployment::kDefaultWaitUs));
  Epoch prev = 2;  // the burned epoch: every retry must land strictly past it
  for (const Ticket& t : retry) {
    ASSERT_TRUE(t.epoch.ok()) << t.epoch.status().ToString();
    EXPECT_GT(t.epoch.value(), prev);
    prev = t.epoch.value();
  }
  auto final_rows = dep.Retrieve(fencer, "R", prev);
  ASSERT_TRUE(final_rows.ok());
  EXPECT_EQ(AsMap(*final_rows),
            (std::map<std::string, std::string>{{"seed", "s"},
                                                {"k0", "v0"},
                                                {"k1", "v1"},
                                                {"k2", "v2"}}));
}

}  // namespace
}  // namespace orchestra::client
