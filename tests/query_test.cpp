#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "deploy/deployment.h"
#include "query/expr.h"
#include "query/plan.h"
#include "query/reference.h"
#include "query/service.h"

namespace orchestra::query {
namespace {

using storage::RelationDef;
using storage::Schema;
using storage::Update;
using storage::UpdateBatch;
using storage::ValueType;

Value S(const std::string& s) { return Value(s); }
Value I(int64_t i) { return Value(i); }

// ---------------------------------------------------------------------------
// Expressions

TEST(Expr, ArithmeticAndComparison) {
  Tuple row = {I(10), I(3), Value(2.5)};
  EXPECT_EQ(Expr::Arith('+', Expr::Column(0), Expr::Column(1)).Eval(row), I(13));
  EXPECT_EQ(Expr::Arith('*', Expr::Column(0), Expr::Column(2)).Eval(row), Value(25.0));
  EXPECT_EQ(Expr::Arith('/', Expr::Column(0), Expr::Column(1)).Eval(row), I(3));
  EXPECT_TRUE(Expr::Compare('<', Expr::Column(1), Expr::Column(0)).EvalBool(row));
  EXPECT_FALSE(Expr::Compare('=', Expr::Column(0), Expr::Column(1)).EvalBool(row));
  EXPECT_TRUE(Expr::Compare('G', Expr::Column(0), Expr::Literal(I(10))).EvalBool(row));
}

TEST(Expr, DivisionByZeroIsNull) {
  Tuple row = {I(5), I(0)};
  EXPECT_TRUE(Expr::Arith('/', Expr::Column(0), Expr::Column(1)).Eval(row).is_null());
}

TEST(Expr, LogicOps) {
  Tuple row = {I(1), I(0)};
  auto t = Expr::Compare('=', Expr::Column(0), Expr::Literal(I(1)));
  auto f = Expr::Compare('=', Expr::Column(1), Expr::Literal(I(1)));
  EXPECT_TRUE(Expr::And(t, t).EvalBool(row));
  EXPECT_FALSE(Expr::And(t, f).EvalBool(row));
  EXPECT_TRUE(Expr::Or(f, t).EvalBool(row));
  EXPECT_TRUE(Expr::Not(f).EvalBool(row));
}

TEST(Expr, NullComparesFalse) {
  Tuple row = {Value::Null(), I(1)};
  EXPECT_FALSE(Expr::Compare('=', Expr::Column(0), Expr::Column(1)).EvalBool(row));
  EXPECT_FALSE(Expr::Compare('<', Expr::Column(0), Expr::Column(1)).EvalBool(row));
}

TEST(Expr, ConcatStrings) {
  Tuple row = {S("ab"), S("cd"), I(7)};
  Value v = Expr::Concat({Expr::Column(0), Expr::Column(1), Expr::Column(2)}).Eval(row);
  EXPECT_EQ(v, S("abcd7"));
}

TEST(Expr, EncodeDecodeRoundTrip) {
  Expr e = Expr::And(
      Expr::Compare('<', Expr::Column(2), Expr::Literal(Value(3.5))),
      Expr::Or(Expr::Compare('=', Expr::Column(0), Expr::Literal(S("x"))),
               Expr::Not(Expr::Compare('>', Expr::Arith('+', Expr::Column(1),
                                                        Expr::Literal(I(5))),
                                       Expr::Literal(I(10))))));
  Writer w;
  e.EncodeTo(&w);
  Reader r(w.data());
  Expr back;
  ASSERT_TRUE(Expr::DecodeFrom(&r, &back).ok());
  EXPECT_EQ(back.ToString(), e.ToString());
  Tuple row = {S("x"), I(2), Value(1.0)};
  EXPECT_EQ(back.EvalBool(row), e.EvalBool(row));
}

TEST(AggStateTest, SumMinMaxCount) {
  AggState sum(AggFn::kSum), mn(AggFn::kMin), mx(AggFn::kMax), cnt(AggFn::kCount);
  for (int64_t v : {5, 1, 9, 3}) {
    sum.Update(I(v));
    mn.Update(I(v));
    mx.Update(I(v));
    cnt.Update(I(v));
  }
  EXPECT_EQ(sum.Finish(), I(18));
  EXPECT_EQ(mn.Finish(), I(1));
  EXPECT_EQ(mx.Finish(), I(9));
  EXPECT_EQ(cnt.Finish(), I(4));
}

TEST(AggStateTest, MergeReaggregatesPartials) {
  // Two partial COUNTs of 3 and 4 merge to 7 (not 2).
  AggState total(AggFn::kCount);
  total.Merge(I(3));
  total.Merge(I(4));
  EXPECT_EQ(total.Finish(), I(7));
  AggState sum(AggFn::kSum);
  sum.Merge(I(10));
  sum.Merge(I(5));
  EXPECT_EQ(sum.Finish(), I(15));
  AggState mn(AggFn::kMin);
  mn.Merge(I(4));
  mn.Merge(I(2));
  EXPECT_EQ(mn.Finish(), I(2));
}

// ---------------------------------------------------------------------------
// Plan construction helpers

struct PlanBuilder {
  PhysicalPlan plan;

  int32_t Add(PhysOp op) {
    op.id = static_cast<int32_t>(plan.ops.size());
    plan.ops.push_back(std::move(op));
    return plan.ops.back().id;
  }
  int32_t Scan(const std::string& rel, bool broadcast = false) {
    PhysOp op;
    op.kind = OpKind::kScan;
    op.relation = rel;
    op.broadcast_local = broadcast;
    return Add(op);
  }
  int32_t CoveringScan(const std::string& rel) {
    PhysOp op;
    op.kind = OpKind::kCoveringScan;
    op.relation = rel;
    return Add(op);
  }
  int32_t Select(int32_t child, Expr pred) {
    PhysOp op;
    op.kind = OpKind::kSelect;
    op.children = {child};
    op.predicate = std::move(pred);
    return Add(op);
  }
  int32_t Project(int32_t child, std::vector<int32_t> cols) {
    PhysOp op;
    op.kind = OpKind::kProject;
    op.children = {child};
    op.columns = std::move(cols);
    return Add(op);
  }
  int32_t Compute(int32_t child, std::vector<Expr> exprs) {
    PhysOp op;
    op.kind = OpKind::kCompute;
    op.children = {child};
    op.exprs = std::move(exprs);
    return Add(op);
  }
  int32_t Rehash(int32_t child, std::vector<int32_t> cols) {
    PhysOp op;
    op.kind = OpKind::kRehash;
    op.children = {child};
    op.hash_cols = std::move(cols);
    return Add(op);
  }
  int32_t Join(int32_t left, int32_t right, std::vector<int32_t> lk,
               std::vector<int32_t> rk) {
    PhysOp op;
    op.kind = OpKind::kHashJoin;
    op.children = {left, right};
    op.left_keys = std::move(lk);
    op.right_keys = std::move(rk);
    return Add(op);
  }
  int32_t Aggregate(int32_t child, std::vector<int32_t> group,
                    std::vector<AggSpec> aggs, bool merge = false) {
    PhysOp op;
    op.kind = OpKind::kAggregate;
    op.children = {child};
    op.group_cols = std::move(group);
    op.aggs = std::move(aggs);
    op.merge_partials = merge;
    return Add(op);
  }
  PhysicalPlan Ship(int32_t child) {
    PhysOp op;
    op.kind = OpKind::kShip;
    op.children = {child};
    plan.root = Add(op);
    return plan;
  }
};

// ---------------------------------------------------------------------------
// Cluster fixture with two relations.

class QueryClusterTest : public ::testing::Test {
 protected:
  void Deploy(size_t nodes, uint64_t seed = 7) {
    deploy::DeploymentOptions opts;
    opts.num_nodes = nodes;
    opts.replication = 3;
    dep = std::make_unique<deploy::Deployment>(opts);

    RelationDef r;
    r.name = "R";
    r.schema = Schema({{"x", ValueType::kString}, {"y", ValueType::kString}}, 1);
    r.num_partitions = 8;
    RelationDef s;
    s.name = "S";
    s.schema = Schema({{"y", ValueType::kString}, {"z", ValueType::kString}}, 1);
    s.num_partitions = 8;
    ASSERT_TRUE(dep->CreateRelation(0, r).ok());
    ASSERT_TRUE(dep->CreateRelation(0, s).ok());
    (void)seed;
  }

  void LoadRows(const std::string& rel, const std::vector<Tuple>& rows) {
    UpdateBatch batch;
    for (const Tuple& t : rows) batch[rel].push_back(Update::Insert(t));
    auto epoch = dep->Publish(0, std::move(batch));
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    db_epoch = *epoch;
    ref_db[rel] = rows;
  }

  std::unique_ptr<deploy::Deployment> dep;
  ReferenceDatabase ref_db;
  storage::Epoch db_epoch = 0;
};

TEST_F(QueryClusterTest, CopyQueryReturnsAllRows) {
  Deploy(4);
  std::vector<Tuple> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({S("k" + std::to_string(i)), S("v" + std::to_string(i % 7))});
  }
  LoadRows("R", rows);

  PlanBuilder b;
  PhysicalPlan plan = b.Ship(b.Scan("R"));
  auto result = dep->ExecuteQuery(0, plan, db_epoch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto expect = ReferenceExecute(plan, ref_db);
  ASSERT_TRUE(expect.ok());
  EXPECT_TRUE(SameBag(result->rows, *expect));
  EXPECT_EQ(result->rows.size(), 200u);
}

TEST_F(QueryClusterTest, SelectPushesPredicate) {
  Deploy(4);
  std::vector<Tuple> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({S("k" + std::to_string(i)), S(i % 2 ? "odd" : "even")});
  }
  LoadRows("R", rows);

  PlanBuilder b;
  int32_t scan = b.Scan("R");
  int32_t sel = b.Select(scan, Expr::Compare('=', Expr::Column(1),
                                             Expr::Literal(S("odd"))));
  PhysicalPlan plan = b.Ship(sel);
  auto result = dep->ExecuteQuery(1, plan, db_epoch);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 50u);
  for (const Tuple& t : result->rows) EXPECT_EQ(t[1], S("odd"));
}

TEST_F(QueryClusterTest, ProjectAndCompute) {
  Deploy(3);
  LoadRows("R", {{S("a"), S("1")}, {S("b"), S("2")}});

  PlanBuilder b;
  int32_t scan = b.Scan("R");
  int32_t comp = b.Compute(scan, {Expr::Concat({Expr::Column(0), Expr::Column(1)})});
  PhysicalPlan plan = b.Ship(comp);
  auto result = dep->ExecuteQuery(0, plan, db_epoch);
  ASSERT_TRUE(result.ok());
  std::multiset<std::string> got;
  for (const Tuple& t : result->rows) got.insert(t[0].AsString());
  EXPECT_EQ(got, (std::multiset<std::string>{"a1", "b2"}));
}

TEST_F(QueryClusterTest, CoveringScanReadsKeysOnly) {
  Deploy(4);
  std::vector<Tuple> rows;
  for (int i = 0; i < 60; ++i) rows.push_back({S("key" + std::to_string(i)), S("pay")});
  LoadRows("R", rows);

  PlanBuilder b;
  PhysicalPlan plan = b.Ship(b.CoveringScan("R"));
  auto result = dep->ExecuteQuery(2, plan, db_epoch);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 60u);
  std::set<std::string> keys;
  for (const Tuple& t : result->rows) {
    ASSERT_EQ(t.size(), 1u);  // only the key attribute
    keys.insert(t[0].AsString());
  }
  EXPECT_EQ(keys.size(), 60u);
}

// The paper's running example (Example 5.1 / Fig. 6):
//   SELECT x, MIN(z) FROM R, S WHERE R.y = S.y GROUP BY x
// R is rehashed on y; S is already partitioned on its key y, so it feeds the
// join without a rehash. The group-by needs one more rehash on x, partial
// aggregation, then shipping to the initiator for re-aggregation.
PhysicalPlan RunningExamplePlan() {
  PlanBuilder b;
  int32_t scan_r = b.Scan("R");
  int32_t rehash_r = b.Rehash(scan_r, {1});          // R rehashed on y
  int32_t scan_s = b.Scan("S");                      // co-partitioned on y
  int32_t join = b.Join(rehash_r, scan_s, {1}, {0});  // R.y = S.y
  // join output: R.x, R.y, S.y, S.z
  int32_t rehash_x = b.Rehash(join, {0});
  AggSpec min_z;
  min_z.fn = AggFn::kMin;
  min_z.has_arg = true;
  min_z.arg = Expr::Column(3);
  int32_t agg = b.Aggregate(rehash_x, {0}, {min_z});
  PhysicalPlan plan = b.Ship(agg);
  // Final stage: re-aggregate partials at the initiator.
  plan.final_stage.has_agg = true;
  plan.final_stage.group_cols = {0};
  AggSpec merge_min = min_z;
  merge_min.arg = Expr::Column(1);
  plan.final_stage.aggs = {merge_min};
  return plan;
}

TEST_F(QueryClusterTest, PaperRunningExample) {
  Deploy(3);
  LoadRows("R", {{S("a"), S("b")}, {S("c"), S("d")}});
  LoadRows("S", {{S("b"), S("j")}, {S("f"), S("k")}, {S("b"), S("m")}});
  // Note: S's key is y, so the two S tuples with y="b" collapse under key
  // semantics; use distinct keys instead.
  ref_db["S"] = {{S("b"), S("j")}, {S("f"), S("k")}};
  UpdateBatch fix;
  fix["S"] = {Update::Insert({S("b"), S("j")}), Update::Insert({S("f"), S("k")})};
  auto e = dep->Publish(0, std::move(fix));
  ASSERT_TRUE(e.ok());
  db_epoch = *e;

  PhysicalPlan plan = RunningExamplePlan();
  auto result = dep->ExecuteQuery(0, plan, db_epoch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // R(a,b) joins S(b,j) -> group x=a, MIN(z)=j. R(c,d) joins nothing.
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], S("a"));
  EXPECT_EQ(result->rows[0][1], S("j"));
}

TEST_F(QueryClusterTest, JoinMatchesReferenceOnRandomData) {
  Deploy(5);
  Rng rng(99);
  std::vector<Tuple> r_rows, s_rows;
  for (int i = 0; i < 300; ++i) {
    r_rows.push_back({S("rk" + std::to_string(i)),
                      S("j" + std::to_string(rng.Uniform(40)))});
  }
  for (int i = 0; i < 150; ++i) {
    s_rows.push_back({S("j" + std::to_string(rng.Uniform(40))),
                      S("z" + std::to_string(i))});
  }
  // S's key is column 0 (the join attribute); keys must be unique.
  std::map<std::string, Tuple> uniq;
  for (auto& t : s_rows) uniq[t[0].AsString()] = t;
  s_rows.clear();
  for (auto& [k, t] : uniq) s_rows.push_back(t);

  LoadRows("R", r_rows);
  LoadRows("S", s_rows);

  PlanBuilder b;
  int32_t scan_r = b.Scan("R");
  int32_t rehash_r = b.Rehash(scan_r, {1});
  int32_t scan_s = b.Scan("S");
  int32_t join = b.Join(rehash_r, scan_s, {1}, {0});
  PhysicalPlan plan = b.Ship(join);

  auto result = dep->ExecuteQuery(3, plan, db_epoch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto expect = ReferenceExecute(plan, ref_db);
  ASSERT_TRUE(expect.ok());
  EXPECT_TRUE(SameBag(result->rows, *expect))
      << "distributed=" << result->rows.size() << " reference=" << expect->size();
}

TEST_F(QueryClusterTest, DoubleRehashJoinBothSides) {
  Deploy(4);
  Rng rng(123);
  std::vector<Tuple> r_rows, s_rows;
  for (int i = 0; i < 200; ++i) {
    r_rows.push_back({S("rk" + std::to_string(i)),
                      S("v" + std::to_string(rng.Uniform(25)))});
    s_rows.push_back({S("sk" + std::to_string(i)),
                      S("v" + std::to_string(rng.Uniform(25)))});
  }
  LoadRows("R", r_rows);
  LoadRows("S", s_rows);

  // Join on the NON-key attributes of both relations: both sides rehash.
  PlanBuilder b;
  int32_t rehash_r = b.Rehash(b.Scan("R"), {1});
  int32_t rehash_s = b.Rehash(b.Scan("S"), {1});
  int32_t join = b.Join(rehash_r, rehash_s, {1}, {1});
  PhysicalPlan plan = b.Ship(join);

  auto result = dep->ExecuteQuery(0, plan, db_epoch);
  ASSERT_TRUE(result.ok());
  auto expect = ReferenceExecute(plan, ref_db);
  ASSERT_TRUE(expect.ok());
  EXPECT_TRUE(SameBag(result->rows, *expect));
  EXPECT_GT(result->rows.size(), 0u);
}

TEST_F(QueryClusterTest, DistributedAggregationWithReaggregation) {
  Deploy(4);
  Rng rng(5);
  std::vector<Tuple> rows;
  std::map<std::string, int64_t> expect_counts;
  for (int i = 0; i < 500; ++i) {
    std::string g = "g" + std::to_string(rng.Uniform(7));
    rows.push_back({S("k" + std::to_string(i)), S(g)});
    expect_counts[g] += 1;
  }
  LoadRows("R", rows);

  PlanBuilder b;
  int32_t rehash = b.Rehash(b.Scan("R"), {1});
  AggSpec count;
  count.fn = AggFn::kCount;
  count.has_arg = false;
  int32_t agg = b.Aggregate(rehash, {1}, {count});
  PhysicalPlan plan = b.Ship(agg);
  plan.final_stage.has_agg = true;
  plan.final_stage.group_cols = {0};
  AggSpec merge = count;
  merge.has_arg = true;
  merge.arg = Expr::Column(1);
  plan.final_stage.aggs = {merge};

  auto result = dep->ExecuteQuery(2, plan, db_epoch);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), expect_counts.size());
  for (const Tuple& t : result->rows) {
    EXPECT_EQ(t[1].AsInt64(), expect_counts[t[0].AsString()]) << t[0].AsString();
  }
}

TEST_F(QueryClusterTest, HistoricalQuerySeesOldEpoch) {
  Deploy(3);
  LoadRows("R", {{S("a"), S("old")}});
  storage::Epoch e1 = db_epoch;
  UpdateBatch upd;
  upd["R"] = {Update::Insert({S("a"), S("new")}), Update::Insert({S("b"), S("x")})};
  auto e2 = dep->Publish(0, std::move(upd));
  ASSERT_TRUE(e2.ok());

  PlanBuilder b;
  PhysicalPlan plan = b.Ship(b.Scan("R"));
  auto old_result = dep->ExecuteQuery(0, plan, e1);
  ASSERT_TRUE(old_result.ok());
  ASSERT_EQ(old_result->rows.size(), 1u);
  EXPECT_EQ(old_result->rows[0][1], S("old"));

  PlanBuilder b2;
  PhysicalPlan plan2 = b2.Ship(b2.Scan("R"));
  auto new_result = dep->ExecuteQuery(0, plan2, *e2);
  ASSERT_TRUE(new_result.ok());
  EXPECT_EQ(new_result->rows.size(), 2u);
}

TEST_F(QueryClusterTest, FinalStageSortAndLimit) {
  Deploy(3);
  LoadRows("R", {{S("c"), S("3")}, {S("a"), S("1")}, {S("d"), S("4")}, {S("b"), S("2")}});
  PlanBuilder b;
  PhysicalPlan plan = b.Ship(b.Scan("R"));
  plan.final_stage.sort = {{0, true}};
  plan.final_stage.limit = 2;
  auto result = dep->ExecuteQuery(0, plan, db_epoch);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0][0], S("a"));
  EXPECT_EQ(result->rows[1][0], S("b"));
}

// ---------------------------------------------------------------------------
// Failure handling (§V-C, §V-D)

class RecoveryTest : public QueryClusterTest {
 protected:
  // Loads enough data that queries take measurable simulated time.
  void LoadBulk(int n_r, int n_s, uint64_t seed = 17) {
    Rng rng(seed);
    std::vector<Tuple> r_rows, s_rows;
    for (int i = 0; i < n_r; ++i) {
      r_rows.push_back({S("rk" + std::to_string(i)),
                        S("j" + std::to_string(rng.Uniform(50)))});
    }
    for (int i = 0; i < n_s; ++i) {
      s_rows.push_back({S("j" + std::to_string(i % 50)),
                        S("z" + std::to_string(i))});
    }
    std::map<std::string, Tuple> uniq;
    for (auto& t : s_rows) uniq[t[0].AsString()] = t;
    s_rows.clear();
    for (auto& [k, t] : uniq) s_rows.push_back(t);
    LoadRows("R", r_rows);
    LoadRows("S", s_rows);
  }

  PhysicalPlan JoinPlan() {
    PlanBuilder b;
    int32_t rehash_r = b.Rehash(b.Scan("R"), {1});
    int32_t join = b.Join(rehash_r, b.Scan("S"), {1}, {0});
    return b.Ship(join);
  }

  /// Measures the failure-free runtime of `plan` (the deployment state is
  /// unchanged by read-only queries), so failures can be injected at a
  /// fraction of it deterministically.
  sim::SimTime CalibrateRuntime(const PhysicalPlan& plan, size_t via = 0) {
    auto base = dep->ExecuteQuery(via, plan, db_epoch);
    EXPECT_TRUE(base.ok()) << base.status().ToString();
    return base.ok() ? base->execution_us : 0;
  }

  struct FailureRun {
    Status status;
    QueryResult result;
    bool injected = false;
  };

  /// Starts `plan`, injects a failure of `victim` at `fraction` of the
  /// calibrated runtime, and drives to completion.
  FailureRun RunWithFailureAt(const PhysicalPlan& plan, net::NodeId victim,
                              double fraction, QueryOptions opts = {},
                              bool hang = false, size_t via = 0) {
    sim::SimTime t = CalibrateRuntime(plan, via);
    FailureRun out;
    bool done = false;
    dep->query(via).Execute(plan, db_epoch, opts, [&](Status st, QueryResult r) {
      out.status = st;
      out.result = std::move(r);
      done = true;
    });
    dep->RunFor(static_cast<sim::SimTime>(fraction * static_cast<double>(t)));
    if (!done) {
      out.injected = true;
      if (hang) {
        dep->network().HangNode(victim);
      } else {
        dep->KillNode(victim, /*update_routing=*/false);
      }
    }
    EXPECT_TRUE(dep->RunUntil([&] { return done; }, 600 * sim::kMicrosPerSec));
    return out;
  }
};

TEST_F(RecoveryTest, IncrementalRecoveryProducesExactAnswer) {
  Deploy(6);
  LoadBulk(2000, 100);
  PhysicalPlan plan = JoinPlan();
  auto expect = ReferenceExecute(plan, ref_db);
  ASSERT_TRUE(expect.ok());

  QueryOptions opts;
  opts.recovery = QueryOptions::RecoveryMode::kIncremental;
  FailureRun run = RunWithFailureAt(plan, 3, 0.5, opts);
  ASSERT_TRUE(run.injected);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.result.recoveries, 1u);
  EXPECT_EQ(run.result.restarts, 0u);
  EXPECT_TRUE(SameBag(run.result.rows, *expect))
      << "got " << run.result.rows.size() << " rows, want " << expect->size();
}

TEST_F(RecoveryTest, RestartRecoveryProducesExactAnswer) {
  Deploy(6);
  LoadBulk(2000, 100);
  PhysicalPlan plan = JoinPlan();
  auto expect = ReferenceExecute(plan, ref_db);
  ASSERT_TRUE(expect.ok());

  QueryOptions opts;
  opts.recovery = QueryOptions::RecoveryMode::kRestart;
  FailureRun run = RunWithFailureAt(plan, 4, 0.5, opts);
  ASSERT_TRUE(run.injected);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.result.restarts, 1u);
  EXPECT_TRUE(SameBag(run.result.rows, *expect));
}

TEST_F(RecoveryTest, AggregationSurvivesFailureWithoutDoubleCounting) {
  Deploy(6);
  Rng rng(31);
  std::vector<Tuple> rows;
  std::map<std::string, int64_t> expect_counts;
  for (int i = 0; i < 5000; ++i) {
    std::string g = "g" + std::to_string(rng.Uniform(10));
    rows.push_back({S("k" + std::to_string(i)), S(g)});
    expect_counts[g] += 1;
  }
  LoadRows("R", rows);

  PlanBuilder b;
  int32_t rehash = b.Rehash(b.Scan("R"), {1});
  AggSpec count;
  count.fn = AggFn::kCount;
  count.has_arg = false;
  int32_t agg = b.Aggregate(rehash, {1}, {count});
  PhysicalPlan plan = b.Ship(agg);
  plan.final_stage.has_agg = true;
  plan.final_stage.group_cols = {0};
  AggSpec merge = count;
  merge.has_arg = true;
  merge.arg = Expr::Column(1);
  plan.final_stage.aggs = {merge};

  FailureRun run = RunWithFailureAt(plan, 5, 0.5, {}, /*hang=*/false, /*via=*/1);
  ASSERT_TRUE(run.injected);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  ASSERT_EQ(run.result.rows.size(), expect_counts.size());
  for (const Tuple& t : run.result.rows) {
    EXPECT_EQ(t[1].AsInt64(), expect_counts[t[0].AsString()])
        << "group " << t[0].AsString() << " double-counted or lost";
  }
}

TEST_F(RecoveryTest, TwoSequentialFailures) {
  Deploy(8);
  LoadBulk(3000, 80);
  PhysicalPlan plan = JoinPlan();
  auto expect = ReferenceExecute(plan, ref_db);
  ASSERT_TRUE(expect.ok());
  sim::SimTime t = CalibrateRuntime(plan);

  bool done = false;
  Status status;
  QueryResult result;
  dep->query(0).Execute(plan, db_epoch, {}, [&](Status st, QueryResult r) {
    status = st;
    result = std::move(r);
    done = true;
  });
  dep->RunFor(t / 4);
  ASSERT_FALSE(done);
  dep->KillNode(2, false);
  dep->RunFor(t / 3);
  if (!done) dep->KillNode(6, false);
  ASSERT_TRUE(dep->RunUntil([&] { return done; }, 600 * sim::kMicrosPerSec));
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(SameBag(result.rows, *expect));
}

TEST_F(RecoveryTest, RecoveryModeNoneFailsQuery) {
  Deploy(5);
  LoadBulk(2000, 50);
  PhysicalPlan plan = JoinPlan();
  QueryOptions opts;
  opts.recovery = QueryOptions::RecoveryMode::kNone;
  FailureRun run = RunWithFailureAt(plan, 2, 0.4, opts);
  ASSERT_TRUE(run.injected);
  EXPECT_TRUE(run.status.IsUnavailable()) << run.status.ToString();
}

TEST_F(RecoveryTest, HungNodeDetectedByPings) {
  Deploy(5);
  LoadBulk(2000, 50);
  PhysicalPlan plan = JoinPlan();
  auto expect = ReferenceExecute(plan, ref_db);
  ASSERT_TRUE(expect.ok());

  QueryOptions opts;
  opts.enable_ping = true;
  opts.ping_interval_us = 200 * sim::kMicrosPerMilli;
  opts.ping_miss_threshold = 3;
  FailureRun run = RunWithFailureAt(plan, 3, 0.3, opts, /*hang=*/true);
  ASSERT_TRUE(run.injected);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  ASSERT_EQ(run.result.failures_handled.size(), 1u);
  EXPECT_EQ(run.result.failures_handled[0], 3u);
  // Detection had to wait for missed pings, so the run is visibly longer.
  EXPECT_GT(run.result.execution_us, 600 * sim::kMicrosPerMilli);
  EXPECT_TRUE(SameBag(run.result.rows, *expect));
}

TEST_F(RecoveryTest, FailureAfterCompletionIsIgnored) {
  Deploy(4);
  LoadBulk(100, 20);
  PhysicalPlan plan = JoinPlan();
  auto r1 = dep->ExecuteQuery(0, plan, db_epoch);
  ASSERT_TRUE(r1.ok());
  dep->KillNode(2, false);
  dep->RunFor(1 * sim::kMicrosPerSec);  // no crash, nothing pending
}

// Property sweep: random failure times against the same join must always
// produce the exact failure-free answer (no loss, no duplicates).
class FailureTimeSweep : public RecoveryTest,
                         public ::testing::WithParamInterface<int> {};

TEST_P(FailureTimeSweep, ExactAnswerAtAnyFailureTime) {
  Deploy(6);
  LoadBulk(2500, 60, /*seed=*/GetParam());
  PhysicalPlan plan = JoinPlan();
  auto expect = ReferenceExecute(plan, ref_db);
  ASSERT_TRUE(expect.ok());

  double fraction = 0.15 + 0.17 * GetParam();  // 15%..83% of the runtime
  net::NodeId victim = 1 + GetParam() % 5;
  FailureRun run = RunWithFailureAt(plan, victim, fraction);
  ASSERT_TRUE(run.injected);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_TRUE(SameBag(run.result.rows, *expect))
      << "got " << run.result.rows.size() << " want " << expect->size();
}

INSTANTIATE_TEST_SUITE_P(Sweep, FailureTimeSweep, ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace orchestra::query
