// End-to-end integration: generator -> publish -> SQL -> optimizer ->
// distributed execution, checked against the reference executor for every
// query in the paper's evaluation (§VI-A), with and without failures.
#include <gtest/gtest.h>

#include "deploy/deployment.h"
#include "optimizer/optimizer.h"
#include "query/reference.h"
#include "sql/parser.h"
#include "workload/stbench.h"
#include "workload/tpch.h"

namespace orchestra {
namespace {

using workload::GeneratedRelation;

struct LoadedCluster {
  std::unique_ptr<deploy::Deployment> dep;
  std::vector<GeneratedRelation> rels;
  storage::Epoch epoch = 0;
  query::ReferenceDatabase ref_db;
  optimizer::StatsCatalog stats;

  optimizer::CatalogView Catalog() {
    return [this](const std::string& name) { return dep->storage(0).Relation(name); };
  }

  Result<optimizer::PlannedQuery> Plan(const std::string& sql_text) {
    auto q = sql::ParseAndAnalyze(sql_text, Catalog());
    ORC_RETURN_IF_ERROR(q.status());
    optimizer::CostParams params;
    params.num_nodes = dep->size();
    optimizer::Optimizer opt(stats, params);
    return opt.Plan(*q);
  }
};

LoadedCluster MakeCluster(std::vector<GeneratedRelation> rels, size_t nodes) {
  LoadedCluster c;
  deploy::DeploymentOptions opts;
  opts.num_nodes = nodes;
  c.dep = std::make_unique<deploy::Deployment>(opts);
  c.rels = std::move(rels);
  auto epoch = workload::Load(c.dep.get(), 0, c.rels);
  EXPECT_TRUE(epoch.ok()) << epoch.status().ToString();
  c.epoch = epoch.ok() ? *epoch : 0;
  c.ref_db = workload::AsReferenceDb(c.rels);
  c.stats = workload::StatsFor(c.rels);
  return c;
}

// ---------------------------------------------------------------------------
// STBenchmark scenarios, distributed == reference.

class StbDistributed : public ::testing::TestWithParam<workload::StbScenario> {};

TEST_P(StbDistributed, MatchesReference) {
  workload::StbConfig cfg;
  cfg.tuples_per_relation = 600;
  cfg.num_partitions = 16;
  auto cluster = MakeCluster(workload::StbGenerate(GetParam(), cfg), 4);

  auto planned = cluster.Plan(workload::StbQuerySql(GetParam()));
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  auto result = cluster.dep->ExecuteQuery(1, planned->plan, cluster.epoch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto expect = query::ReferenceExecute(planned->plan, cluster.ref_db);
  ASSERT_TRUE(expect.ok());
  EXPECT_TRUE(query::SameBagApprox(result->rows, *expect))
      << workload::StbScenarioName(GetParam()) << ": got " << result->rows.size()
      << " want " << expect->size() << "\n"
      << planned->plan.ToString();
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, StbDistributed,
                         ::testing::ValuesIn(workload::kAllStbScenarios),
                         [](const auto& test_info) {
                           return workload::StbScenarioName(test_info.param);
                         });

// ---------------------------------------------------------------------------
// TPC-H queries, distributed == reference.

class TpchDistributed : public ::testing::TestWithParam<std::string> {};

TEST_P(TpchDistributed, MatchesReference) {
  workload::TpchConfig cfg;
  cfg.scale_factor = 0.002;
  cfg.num_partitions = 16;
  auto cluster = MakeCluster(workload::TpchGenerate(cfg), 4);

  auto planned = cluster.Plan(workload::TpchQuerySql(GetParam()));
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  auto result = cluster.dep->ExecuteQuery(0, planned->plan, cluster.epoch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto expect = query::ReferenceExecute(planned->plan, cluster.ref_db);
  ASSERT_TRUE(expect.ok());
  EXPECT_TRUE(query::SameBagApprox(result->rows, *expect))
      << GetParam() << ": got " << result->rows.size() << " want " << expect->size()
      << "\n" << planned->plan.ToString();
}

INSTANTIATE_TEST_SUITE_P(PaperQueries, TpchDistributed,
                         ::testing::ValuesIn(workload::TpchQueryNames()),
                         [](const auto& test_info) { return test_info.param; });

// ---------------------------------------------------------------------------
// TPC-H under failure: Q1 and Q10 (the paper's Fig. 21 pair) with a node
// killed mid-query, for both recovery modes.

struct FailCase {
  std::string query;
  query::QueryOptions::RecoveryMode mode;
  double fraction;
};

class TpchFailure : public ::testing::TestWithParam<FailCase> {};

TEST_P(TpchFailure, ExactAnswerDespiteFailure) {
  workload::TpchConfig cfg;
  cfg.scale_factor = 0.004;
  cfg.num_partitions = 24;
  auto cluster = MakeCluster(workload::TpchGenerate(cfg), 8);

  auto planned = cluster.Plan(workload::TpchQuerySql(GetParam().query));
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  auto expect = query::ReferenceExecute(planned->plan, cluster.ref_db);
  ASSERT_TRUE(expect.ok());

  // Calibrate, then fail a node at the requested fraction of the runtime.
  auto base = cluster.dep->ExecuteQuery(0, planned->plan, cluster.epoch);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(query::SameBagApprox(base->rows, *expect));

  bool done = false;
  Status status;
  query::QueryResult result;
  query::QueryOptions opts;
  opts.recovery = GetParam().mode;
  cluster.dep->query(0).Execute(planned->plan, cluster.epoch, opts,
                                [&](Status st, query::QueryResult r) {
                                  status = st;
                                  result = std::move(r);
                                  done = true;
                                });
  cluster.dep->RunFor(static_cast<sim::SimTime>(
      GetParam().fraction * static_cast<double>(base->execution_us)));
  ASSERT_FALSE(done);
  cluster.dep->KillNode(5, /*update_routing=*/false);
  ASSERT_TRUE(cluster.dep->RunUntil([&] { return done; }, 600 * sim::kMicrosPerSec));
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(query::SameBagApprox(result.rows, *expect))
      << GetParam().query << " got " << result.rows.size() << " want "
      << expect->size();
  if (GetParam().mode == query::QueryOptions::RecoveryMode::kIncremental) {
    EXPECT_EQ(result.recoveries, 1u);
  } else {
    EXPECT_EQ(result.restarts, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fig21Pairs, TpchFailure,
    ::testing::Values(
        FailCase{"Q1", query::QueryOptions::RecoveryMode::kIncremental, 0.4},
        FailCase{"Q1", query::QueryOptions::RecoveryMode::kRestart, 0.4},
        FailCase{"Q10", query::QueryOptions::RecoveryMode::kIncremental, 0.5},
        FailCase{"Q10", query::QueryOptions::RecoveryMode::kRestart, 0.5}),
    [](const auto& test_info) {
      return test_info.param.query +
             (test_info.param.mode == query::QueryOptions::RecoveryMode::kIncremental
                  ? "_Recovery"
                  : "_Restart");
    });

// ---------------------------------------------------------------------------
// Provenance-overhead ablation hook: queries run identically (same answers)
// with provenance tagging disabled.

TEST(ProvenanceAblation, SameAnswersWithoutTagging) {
  workload::TpchConfig cfg;
  cfg.scale_factor = 0.002;
  auto cluster = MakeCluster(workload::TpchGenerate(cfg), 4);
  auto planned = cluster.Plan(workload::TpchQuerySql("Q3"));
  ASSERT_TRUE(planned.ok());

  query::QueryOptions with, without;
  without.provenance = false;
  without.recovery = query::QueryOptions::RecoveryMode::kNone;
  auto a = cluster.dep->ExecuteQuery(0, planned->plan, cluster.epoch, with);
  auto b = cluster.dep->ExecuteQuery(0, planned->plan, cluster.epoch, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(query::SameBagApprox(a->rows, b->rows));
}

}  // namespace
}  // namespace orchestra
