#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "net/node_host.h"

namespace orchestra::net {
namespace {

struct Recorder : public MessageHandler {
  struct Msg {
    NodeId from;
    uint32_t type;
    std::string payload;
    sim::SimTime at;
  };
  explicit Recorder(sim::Simulator* s) : sim(s) {}
  void OnMessage(NodeId from, uint32_t type, const std::string& payload) override {
    msgs.push_back({from, type, payload, sim->now()});
  }
  void OnConnectionDrop(NodeId peer) override { drops.push_back(peer); }
  sim::Simulator* sim;
  std::vector<Msg> msgs;
  std::vector<NodeId> drops;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network(&sim, LinkParams{}) {
    a = network.AddNode("a");
    b = network.AddNode("b");
    c = network.AddNode("c");
    ra = std::make_unique<Recorder>(&sim);
    rb = std::make_unique<Recorder>(&sim);
    rc = std::make_unique<Recorder>(&sim);
    network.SetHandler(a, ra.get());
    network.SetHandler(b, rb.get());
    network.SetHandler(c, rc.get());
  }
  sim::Simulator sim;
  Network network;
  NodeId a, b, c;
  std::unique_ptr<Recorder> ra, rb, rc;
};

TEST_F(NetworkTest, DeliversWithTypeAndPayload) {
  network.Send(a, b, 42, "hello");
  sim.Run();
  ASSERT_EQ(rb->msgs.size(), 1u);
  EXPECT_EQ(rb->msgs[0].from, a);
  EXPECT_EQ(rb->msgs[0].type, 42u);
  EXPECT_EQ(rb->msgs[0].payload, "hello");
  EXPECT_GE(rb->msgs[0].at, LinkParams{}.latency_us);
}

TEST_F(NetworkTest, InOrderDelivery) {
  for (int i = 0; i < 20; ++i) network.Send(a, b, i, "");
  sim.Run();
  ASSERT_EQ(rb->msgs.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rb->msgs[i].type, static_cast<uint32_t>(i));
}

TEST_F(NetworkTest, LocalLoopbackIsFreeAndUncounted) {
  network.Send(a, a, 1, "self");
  sim.Run();
  ASSERT_EQ(ra->msgs.size(), 1u);
  EXPECT_EQ(network.total_bytes(), 0u);
  EXPECT_EQ(network.total_messages(), 0u);
}

TEST_F(NetworkTest, TrafficAccounting) {
  network.Send(a, b, 1, std::string(100, 'x'));
  sim.Run();
  EXPECT_EQ(network.total_bytes(), 100 + kMessageOverheadBytes);
  EXPECT_EQ(network.traffic(a).bytes_sent, 100 + kMessageOverheadBytes);
  EXPECT_EQ(network.traffic(b).bytes_received, 100 + kMessageOverheadBytes);
  EXPECT_EQ(network.traffic(b).bytes_sent, 0u);
  network.ResetTraffic();
  EXPECT_EQ(network.total_bytes(), 0u);
}

TEST_F(NetworkTest, BandwidthDelaysLargeMessages) {
  // 1 MB at 1 MB/s should take ~1 s of simulated time (plus latency),
  // serialized on both uplink and downlink -> ~2 s.
  network.SetAllLinkParams(LinkParams{1.0e6, 100});
  network.Send(a, b, 1, std::string(1'000'000, 'x'));
  sim.Run();
  ASSERT_EQ(rb->msgs.size(), 1u);
  EXPECT_GE(rb->msgs[0].at, 2 * sim::kMicrosPerSec);
  EXPECT_LT(rb->msgs[0].at, 3 * sim::kMicrosPerSec);
}

TEST_F(NetworkTest, ReceiverDownlinkIsABottleneck) {
  // Two senders to one receiver share its downlink: total arrival time is
  // roughly double a single transfer (the paper's query-initiator collection
  // bottleneck, §VI-B).
  network.SetAllLinkParams(LinkParams{1.0e6, 0});
  network.Send(a, c, 1, std::string(500'000, 'x'));
  network.Send(b, c, 2, std::string(500'000, 'y'));
  sim.Run();
  ASSERT_EQ(rc->msgs.size(), 2u);
  EXPECT_GE(rc->msgs[1].at, 1 * sim::kMicrosPerSec);
}

TEST_F(NetworkTest, KillNotifiesPeersAndDropsDelivery) {
  network.Send(a, b, 1, "in flight");
  network.KillNode(b);
  sim.Run();
  EXPECT_TRUE(rb->msgs.empty());  // b never processed it
  // a and c both learn about the drop.
  ASSERT_EQ(ra->drops.size(), 1u);
  EXPECT_EQ(ra->drops[0], b);
  ASSERT_EQ(rc->drops.size(), 1u);
  EXPECT_FALSE(network.IsAlive(b));
}

TEST_F(NetworkTest, DeadNodeCannotSend) {
  network.KillNode(a);
  network.Send(a, b, 1, "ghost");
  sim.Run();
  EXPECT_TRUE(rb->msgs.empty());
}

TEST_F(NetworkTest, HungNodeReceivesNothingButStaysConnected) {
  network.HangNode(b);
  network.Send(a, b, 1, "stuck");
  sim.Run();
  EXPECT_TRUE(rb->msgs.empty());
  EXPECT_TRUE(network.IsAlive(b));
  EXPECT_TRUE(ra->drops.empty());  // no TCP-level signal for a hang (§V-C)
}

TEST_F(NetworkTest, UnhangDrainsBacklogInOrder) {
  network.HangNode(b);
  for (int i = 0; i < 3; ++i) network.Send(a, b, i, "queued");
  sim.Run();
  EXPECT_TRUE(rb->msgs.empty());  // wedged: backlog held, nothing lost
  EXPECT_EQ(network.inbox_stats(b).messages, 3u);
  network.UnhangNode(b);
  sim.Run();
  ASSERT_EQ(rb->msgs.size(), 3u);  // unlike a revive, the backlog survives
  for (int i = 0; i < 3; ++i) EXPECT_EQ(rb->msgs[i].type, (uint32_t)i);
  EXPECT_EQ(network.inbox_stats(b).messages, 0u);
  EXPECT_GE(network.inbox_stats(b).max_messages, 3u);
}

TEST_F(NetworkTest, AsymmetricDropOverridesPartitionOneDirection) {
  // A -> B always drops; B -> A (and every other link) stays healthy. This
  // is the asymmetric-partition groundwork: SetFaultOptions alone is
  // symmetric.
  network.SeedFaults(7);
  network.SetDropOverride(a, b, 1.0);
  for (int i = 0; i < 5; ++i) {
    network.Send(a, b, 1, "lost");
    network.Send(b, a, 2, "fine");
    network.Send(a, c, 3, "fine");
  }
  sim.Run();
  EXPECT_TRUE(rb->msgs.empty());            // a -> b severed
  EXPECT_EQ(ra->msgs.size(), 5u);           // b -> a untouched
  EXPECT_EQ(rc->msgs.size(), 5u);           // a -> c untouched
  EXPECT_EQ(network.fault_counters().dropped, 5u);

  network.ClearDropOverrides();
  network.Send(a, b, 4, "healed");
  sim.Run();
  ASSERT_EQ(rb->msgs.size(), 1u);
  EXPECT_EQ(rb->msgs[0].type, 4u);
}

TEST_F(NetworkTest, DirectionalDropComposesWithGlobalMix) {
  // Global drops off; one lossy direction via override, drawn from the same
  // seeded stream -> deterministic across runs.
  network.SeedFaults(11);
  network.SetDropOverride(b, c, 0.5);
  int delivered_run1 = 0;
  for (int i = 0; i < 40; ++i) network.Send(b, c, 1, "maybe");
  sim.Run();
  delivered_run1 = static_cast<int>(rc->msgs.size());
  EXPECT_GT(delivered_run1, 0);
  EXPECT_LT(delivered_run1, 40);
  EXPECT_EQ(40u - delivered_run1, network.fault_counters().dropped);
}

TEST_F(NetworkTest, CpuChargeSerializesHandlers) {
  // Handler charges 1000us per message; 3 messages -> node busy ~3000us.
  struct Charger : public MessageHandler {
    Network* net;
    NodeId self;
    sim::Simulator* sim;
    std::vector<sim::SimTime> handled_at;
    void OnMessage(NodeId, uint32_t, const std::string&) override {
      handled_at.push_back(sim->now());
      net->ChargeCpu(self, 1000);
    }
  };
  Charger charger;
  charger.net = &network;
  charger.self = b;
  charger.sim = &sim;
  network.SetHandler(b, &charger);
  for (int i = 0; i < 3; ++i) network.Send(a, b, i, "");
  sim.Run();
  ASSERT_EQ(charger.handled_at.size(), 3u);
  EXPECT_GE(charger.handled_at[2] - charger.handled_at[0], 2000);
}

TEST_F(NetworkTest, RunOnNodeExecutesAtRequestedTime) {
  sim::SimTime ran_at = -1;
  network.RunOnNode(a, 5000, [&] { ran_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(ran_at, 5000);
}

TEST_F(NetworkTest, PerLinkOverride) {
  network.SetLinkParams(a, b, LinkParams{125.0e6, 50'000});  // 50ms link
  network.Send(a, b, 1, "slow");
  network.Send(a, c, 2, "fast");
  sim.Run();
  ASSERT_EQ(rb->msgs.size(), 1u);
  ASSERT_EQ(rc->msgs.size(), 1u);
  EXPECT_GT(rb->msgs[0].at, rc->msgs[0].at);
}

TEST(NodeHost, RoutesByService) {
  sim::Simulator sim;
  Network network(&sim, LinkParams{});
  NodeId a = network.AddNode("a");
  NodeId b = network.AddNode("b");
  NodeHost host_a(&network, a);
  NodeHost host_b(&network, b);

  struct Svc : public Service {
    std::vector<uint16_t> codes;
    std::vector<NodeId> drops;
    void OnMessage(NodeId, uint16_t code, const std::string&) override {
      codes.push_back(code);
    }
    void OnConnectionDrop(NodeId peer) override { drops.push_back(peer); }
  };
  Svc gossip, storage;
  host_b.Register(ServiceId::kGossip, &gossip);
  host_b.Register(ServiceId::kStorage, &storage);

  host_a.SendTo(b, ServiceId::kGossip, 7, "x");
  host_a.SendTo(b, ServiceId::kStorage, 9, "y");
  sim.Run();
  ASSERT_EQ(gossip.codes.size(), 1u);
  EXPECT_EQ(gossip.codes[0], 7u);
  ASSERT_EQ(storage.codes.size(), 1u);
  EXPECT_EQ(storage.codes[0], 9u);

  network.KillNode(a);
  sim.Run();
  EXPECT_EQ(gossip.drops.size(), 1u);
  EXPECT_EQ(storage.drops.size(), 1u);
}

}  // namespace
}  // namespace orchestra::net
