#include <gtest/gtest.h>

#include <vector>

#include "sim/cost_model.h"
#include "sim/simulator.h"

namespace orchestra::sim {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimesFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleFromWithinEvent) {
  Simulator sim;
  int hits = 0;
  sim.Schedule(1, [&] {
    ++hits;
    sim.ScheduleAfter(5, [&] { ++hits; });
  });
  sim.Run();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(sim.now(), 6);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  sim.Schedule(100, [&] {
    sim.Schedule(5, [&] { EXPECT_EQ(sim.now(), 100); });
  });
  sim.Run();
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  auto id = sim.Schedule(10, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int hits = 0;
  sim.Schedule(10, [&] { ++hits; });
  sim.Schedule(20, [&] { ++hits; });
  sim.RunUntil(15);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(sim.now(), 15);
  sim.Run();
  EXPECT_EQ(hits, 2);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.Schedule(1, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(Simulator, EventsFiredCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.Schedule(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(CostModel, DefaultsAreSane) {
  const CostModel& m = CostModel::Default();
  EXPECT_GT(m.tuple_scan_us, 0);
  EXPECT_GT(m.tuple_write_us, m.tuple_scan_us);  // writes cost more than reads
  EXPECT_GT(m.msg_fixed_us, m.marshal_per_tuple_us);
}

}  // namespace
}  // namespace orchestra::sim
