#include <gtest/gtest.h>

#include "common/rng.h"
#include "deploy/deployment.h"
#include "optimizer/optimizer.h"
#include "query/reference.h"
#include "sql/parser.h"

namespace orchestra {
namespace {

using optimizer::AnalyzedQuery;
using optimizer::CatalogView;
using optimizer::CostParams;
using optimizer::Optimizer;
using optimizer::RelationStats;
using optimizer::StatsCatalog;
using query::Expr;
using storage::RelationDef;
using storage::Schema;
using storage::Value;
using storage::ValueType;

RelationDef Rel(const std::string& name, std::vector<storage::ColumnDef> cols,
                uint32_t key_arity = 1, bool everywhere = false) {
  RelationDef def;
  def.name = name;
  def.schema = Schema(std::move(cols), key_arity);
  def.num_partitions = 8;
  def.replicate_everywhere = everywhere;
  return def;
}

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() {
    defs_["R"] = Rel("R", {{"x", ValueType::kString}, {"y", ValueType::kString}});
    defs_["S"] = Rel("S", {{"y", ValueType::kString}, {"z", ValueType::kString}});
    defs_["T"] = Rel("T", {{"id", ValueType::kInt64},
                           {"grp", ValueType::kString},
                           {"val", ValueType::kDouble}});
    defs_["Tiny"] = Rel("Tiny", {{"k", ValueType::kString}, {"v", ValueType::kString}},
                        1, /*everywhere=*/true);
    catalog_ = [this](const std::string& name) -> Result<RelationDef> {
      auto it = defs_.find(name);
      if (it == defs_.end()) return Status::NotFound("no relation " + name);
      return it->second;
    };
  }
  std::map<std::string, RelationDef> defs_;
  CatalogView catalog_;
};

TEST_F(SqlTest, DateHelpers) {
  EXPECT_EQ(sql::DateToDays(1970, 1, 1), 0);
  EXPECT_EQ(sql::DateToDays(1970, 1, 2), 1);
  EXPECT_EQ(sql::DateToDays(1998, 12, 1), 10561);
  EXPECT_EQ(*sql::ParseDate("1998-12-01"), 10561);
  EXPECT_FALSE(sql::ParseDate("notadate").ok());
}

TEST_F(SqlTest, ParsesSimpleSelect) {
  auto q = sql::ParseAndAnalyze("SELECT x, y FROM R", catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->tables.size(), 1u);
  EXPECT_EQ(q->items.size(), 2u);
  EXPECT_FALSE(q->has_group_by);
}

TEST_F(SqlTest, ParsesTheRunningExample) {
  auto q = sql::ParseAndAnalyze(
      "SELECT x, MIN(z) FROM R, S WHERE R.y = S.y GROUP BY x", catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->tables.size(), 2u);
  ASSERT_EQ(q->conjuncts.size(), 1u);
  EXPECT_TRUE(q->has_group_by);
  ASSERT_EQ(q->items.size(), 2u);
  EXPECT_FALSE(q->items[0].is_aggregate);
  EXPECT_TRUE(q->items[1].is_aggregate);
  EXPECT_EQ(q->items[1].agg_fn, query::AggFn::kMin);
}

TEST_F(SqlTest, ResolvesQualifiedAndUnqualifiedColumns) {
  auto q = sql::ParseAndAnalyze("SELECT R.x FROM R, S WHERE R.y = S.y AND z = 'q'",
                                catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->conjuncts.size(), 2u);
}

TEST_F(SqlTest, AmbiguousColumnRejected) {
  auto q = sql::ParseAndAnalyze("SELECT y FROM R, S", catalog_);
  EXPECT_FALSE(q.ok());
}

TEST_F(SqlTest, UnknownColumnAndTableRejected) {
  EXPECT_FALSE(sql::ParseAndAnalyze("SELECT nope FROM R", catalog_).ok());
  EXPECT_FALSE(sql::ParseAndAnalyze("SELECT x FROM Missing", catalog_).ok());
}

TEST_F(SqlTest, NonGroupedScalarRejected) {
  auto q = sql::ParseAndAnalyze("SELECT x, COUNT(*) FROM R", catalog_);
  EXPECT_FALSE(q.ok());
}

TEST_F(SqlTest, DateAndIntervalLiterals) {
  auto q = sql::ParseAndAnalyze(
      "SELECT id FROM T WHERE id <= date '1998-12-01' - interval '90' day",
      catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->conjuncts.size(), 1u);
  // The rhs folds at eval time: 10561 - 90 = 10471.
  storage::Tuple row = {Value(int64_t{10471}), Value(std::string("g")), Value(0.0)};
  EXPECT_TRUE(q->conjuncts[0].EvalBool(row));
  row[0] = Value(int64_t{10472});
  EXPECT_FALSE(q->conjuncts[0].EvalBool(row));
}

TEST_F(SqlTest, BetweenDesugars) {
  auto q = sql::ParseAndAnalyze("SELECT id FROM T WHERE val BETWEEN 0.05 AND 0.07",
                                catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // BETWEEN desugars to two conjuncts (>= and <=).
  ASSERT_EQ(q->conjuncts.size(), 2u);
  auto matches = [&q](const storage::Tuple& row) {
    return q->conjuncts[0].EvalBool(row) && q->conjuncts[1].EvalBool(row);
  };
  storage::Tuple row = {Value(int64_t{1}), Value(std::string("g")), Value(0.06)};
  EXPECT_TRUE(matches(row));
  row[2] = Value(0.08);
  EXPECT_FALSE(matches(row));
  row[2] = Value(0.04);
  EXPECT_FALSE(matches(row));
}

TEST_F(SqlTest, AvgDecomposes) {
  auto q = sql::ParseAndAnalyze("SELECT grp, AVG(val) FROM T GROUP BY grp", catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->items[1].is_avg);
}

TEST_F(SqlTest, OrderByNameAndPosition) {
  auto q = sql::ParseAndAnalyze(
      "SELECT grp AS g, COUNT(*) AS c FROM T GROUP BY grp ORDER BY c DESC, 1 ASC "
      "LIMIT 5",
      catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_EQ(q->order_by[0].select_index, 1u);
  EXPECT_FALSE(q->order_by[0].asc);
  EXPECT_EQ(q->order_by[1].select_index, 0u);
  EXPECT_EQ(q->limit, 5);
}

TEST_F(SqlTest, SyntaxErrors) {
  EXPECT_FALSE(sql::ParseAndAnalyze("SELECT FROM R", catalog_).ok());
  EXPECT_FALSE(sql::ParseAndAnalyze("SELECT x R", catalog_).ok());
  EXPECT_FALSE(sql::ParseAndAnalyze("SELECT x FROM R WHERE", catalog_).ok());
  EXPECT_FALSE(sql::ParseAndAnalyze("SELECT x FROM R LIMIT xyz", catalog_).ok());
  EXPECT_FALSE(sql::ParseAndAnalyze("SELECT 'unterminated FROM R", catalog_).ok());
}

// ---------------------------------------------------------------------------
// Optimizer structure tests

class OptimizerTest : public SqlTest {
 protected:
  optimizer::PlannedQuery MustPlan(const std::string& text, size_t nodes = 4) {
    auto q = sql::ParseAndAnalyze(text, catalog_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    StatsCatalog stats;
    stats["R"] = RelationStats{100000, 60, {}};
    stats["S"] = RelationStats{5000, 40, {}};
    stats["T"] = RelationStats{50000, 48, {}};
    stats["Tiny"] = RelationStats{25, 30, {}};
    CostParams params;
    params.num_nodes = nodes;
    Optimizer opt(stats, params);
    auto planned = opt.Plan(*q);
    EXPECT_TRUE(planned.ok()) << planned.status().ToString();
    EXPECT_TRUE(planned->plan.Validate().ok()) << planned->plan.ToString();
    return planned.ok() ? std::move(planned).value() : optimizer::PlannedQuery{};
  }

  static size_t CountKind(const query::PhysicalPlan& plan, query::OpKind k) {
    size_t n = 0;
    for (const auto& op : plan.ops) {
      if (op.kind == k) ++n;
    }
    return n;
  }
};

TEST_F(OptimizerTest, SingleTableScanShipPlan) {
  auto planned = MustPlan("SELECT x, y FROM R");
  EXPECT_EQ(CountKind(planned.plan, query::OpKind::kScan), 1u);
  EXPECT_EQ(CountKind(planned.plan, query::OpKind::kShip), 1u);
  EXPECT_EQ(CountKind(planned.plan, query::OpKind::kRehash), 0u);
}

TEST_F(OptimizerTest, KeyOnlyQueryUsesCoveringScan) {
  auto planned = MustPlan("SELECT x FROM R");
  EXPECT_EQ(CountKind(planned.plan, query::OpKind::kCoveringScan), 1u);
  EXPECT_EQ(CountKind(planned.plan, query::OpKind::kScan), 0u);
}

TEST_F(OptimizerTest, CoPartitionedJoinSkipsOneRehash) {
  // R.y = S.y with S keyed on y: only R needs a rehash (Fig. 6).
  auto planned = MustPlan("SELECT x, z FROM R, S WHERE R.y = S.y");
  EXPECT_EQ(CountKind(planned.plan, query::OpKind::kHashJoin), 1u);
  EXPECT_EQ(CountKind(planned.plan, query::OpKind::kRehash), 1u);
}

TEST_F(OptimizerTest, ReplicatedTableJoinsWithoutAnyRehash) {
  auto planned = MustPlan("SELECT x, v FROM R, Tiny WHERE R.y = Tiny.k");
  EXPECT_EQ(CountKind(planned.plan, query::OpKind::kHashJoin), 1u);
  EXPECT_EQ(CountKind(planned.plan, query::OpKind::kRehash), 0u);
  bool broadcast_scan = false;
  for (const auto& op : planned.plan.ops) {
    if (op.broadcast_local) broadcast_scan = true;
  }
  EXPECT_TRUE(broadcast_scan);
}

TEST_F(OptimizerTest, GroupByOnKeyAggregatesLocally) {
  // Grouping by the partitioning key: groups are node-local, so no rehash is
  // needed before aggregation (the initiator still merges the per-node
  // provenance partials).
  auto planned = MustPlan("SELECT x, COUNT(*) FROM R GROUP BY x");
  EXPECT_EQ(CountKind(planned.plan, query::OpKind::kRehash), 0u);
  EXPECT_TRUE(planned.plan.final_stage.has_agg);
}

TEST_F(OptimizerTest, GroupByNonKeyNeedsMergeOrRehash) {
  auto planned = MustPlan("SELECT y, COUNT(*) FROM R GROUP BY y");
  bool has_merge = planned.plan.final_stage.has_agg;
  bool has_rehash = CountKind(planned.plan, query::OpKind::kRehash) > 0;
  EXPECT_TRUE(has_merge || has_rehash);
}

TEST_F(OptimizerTest, CrossProductRejected) {
  auto q = sql::ParseAndAnalyze("SELECT x, z FROM R, S", catalog_);
  ASSERT_TRUE(q.ok());
  Optimizer opt({}, {});
  EXPECT_FALSE(opt.Plan(*q).ok());
}

TEST_F(OptimizerTest, BranchAndBoundPrunes) {
  defs_["U"] = Rel("U", {{"z", ValueType::kString}, {"w", ValueType::kString}});
  auto q = sql::ParseAndAnalyze(
      "SELECT x, w FROM R, S, U WHERE R.y = S.y AND S.z = U.z", catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  StatsCatalog stats;
  stats["R"] = RelationStats{100000, 60, {}};
  stats["S"] = RelationStats{5000, 40, {}};
  stats["U"] = RelationStats{100, 30, {}};
  Optimizer opt(stats, {});
  auto planned = opt.Plan(*q);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_GT(opt.search_stats().candidates_generated, 3u);
}

// ---------------------------------------------------------------------------
// End-to-end: SQL -> optimizer -> distributed engine == reference executor.

class SqlEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    deploy::DeploymentOptions opts;
    opts.num_nodes = 5;
    dep = std::make_unique<deploy::Deployment>(opts);

    auto r = Rel("R", {{"x", ValueType::kString}, {"y", ValueType::kString}});
    auto s = Rel("S", {{"y", ValueType::kString}, {"z", ValueType::kString}});
    auto t = Rel("T", {{"id", ValueType::kInt64},
                       {"grp", ValueType::kString},
                       {"val", ValueType::kDouble}});
    ASSERT_TRUE(dep->CreateRelation(0, r).ok());
    ASSERT_TRUE(dep->CreateRelation(0, s).ok());
    ASSERT_TRUE(dep->CreateRelation(0, t).ok());

    Rng rng(42);
    storage::UpdateBatch batch;
    for (int i = 0; i < 400; ++i) {
      storage::Tuple row = {Value("x" + std::to_string(i)),
                            Value("y" + std::to_string(rng.Uniform(30)))};
      ref_db["R"].push_back(row);
      batch["R"].push_back(storage::Update::Insert(row));
    }
    for (int i = 0; i < 30; ++i) {
      storage::Tuple row = {Value("y" + std::to_string(i)),
                            Value("z" + std::to_string(i % 4))};
      ref_db["S"].push_back(row);
      batch["S"].push_back(storage::Update::Insert(row));
    }
    for (int i = 0; i < 500; ++i) {
      storage::Tuple row = {Value(int64_t{i}),
                            Value("g" + std::to_string(rng.Uniform(6))),
                            Value(rng.NextDouble() * 100)};
      ref_db["T"].push_back(row);
      batch["T"].push_back(storage::Update::Insert(row));
    }
    auto epoch = dep->Publish(0, std::move(batch));
    ASSERT_TRUE(epoch.ok());
    db_epoch = *epoch;

    catalog = [this](const std::string& name) {
      return dep->storage(0).Relation(name);
    };
    stats["R"] = RelationStats{400, 20, {}};
    stats["S"] = RelationStats{30, 12, {}};
    stats["T"] = RelationStats{500, 24, {}};
  }

  void CheckSql(const std::string& text) {
    auto q = sql::ParseAndAnalyze(text, catalog);
    ASSERT_TRUE(q.ok()) << text << ": " << q.status().ToString();
    CostParams params;
    params.num_nodes = dep->size();
    Optimizer opt(stats, params);
    auto planned = opt.Plan(*q);
    ASSERT_TRUE(planned.ok()) << text << ": " << planned.status().ToString();

    auto distributed = dep->ExecuteQuery(1, planned->plan, db_epoch);
    ASSERT_TRUE(distributed.ok()) << text << ": " << distributed.status().ToString();
    auto expected = query::ReferenceExecute(planned->plan, ref_db);
    ASSERT_TRUE(expected.ok()) << text;
    EXPECT_TRUE(query::SameBagApprox(distributed->rows, *expected))
        << text << "\ndistributed=" << distributed->rows.size()
        << " reference=" << expected->size() << "\nplan:\n"
        << planned->plan.ToString();
  }

  std::unique_ptr<deploy::Deployment> dep;
  query::ReferenceDatabase ref_db;
  storage::Epoch db_epoch = 0;
  CatalogView catalog;
  StatsCatalog stats;
};

TEST_F(SqlEndToEnd, Copy) { CheckSql("SELECT x, y FROM R"); }

TEST_F(SqlEndToEnd, SelectWithPredicate) {
  CheckSql("SELECT id, grp FROM T WHERE id < 100");
}

TEST_F(SqlEndToEnd, KeyJoin) { CheckSql("SELECT x, z FROM R, S WHERE R.y = S.y"); }

TEST_F(SqlEndToEnd, JoinWithFilter) {
  CheckSql("SELECT x, z FROM R, S WHERE R.y = S.y AND z = 'z1'");
}

TEST_F(SqlEndToEnd, GroupByCount) {
  CheckSql("SELECT grp, COUNT(*) FROM T GROUP BY grp");
}

TEST_F(SqlEndToEnd, GroupByMultipleAggs) {
  CheckSql(
      "SELECT grp, SUM(val), MIN(val), MAX(val), COUNT(*) FROM T GROUP BY grp");
}

TEST_F(SqlEndToEnd, AvgDecomposition) {
  CheckSql("SELECT grp, AVG(val) FROM T GROUP BY grp");
}

TEST_F(SqlEndToEnd, GlobalAggregateNoGroups) {
  CheckSql("SELECT COUNT(*), SUM(val) FROM T");
}

TEST_F(SqlEndToEnd, ComputeInSelect) {
  CheckSql("SELECT CONCAT(x, y), x FROM R");
}

TEST_F(SqlEndToEnd, ArithmeticInAggArg) {
  CheckSql("SELECT grp, SUM(val * 2.0 + 1.0) FROM T GROUP BY grp");
}

TEST_F(SqlEndToEnd, OrderByLimit) {
  CheckSql("SELECT id, val FROM T WHERE id < 50 ORDER BY id DESC LIMIT 7");
}

TEST_F(SqlEndToEnd, RunningExampleViaSql) {
  CheckSql("SELECT x, MIN(z) FROM R, S WHERE R.y = S.y GROUP BY x");
}

}  // namespace
}  // namespace orchestra
