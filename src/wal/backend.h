// Injectable byte-level I/O backend for the segmented WAL (wal/wal.h). The
// WAL layer never touches files directly; everything goes through this
// interface so the deterministic simulator and the churn harness can run the
// full durability protocol — including crashes that tear an unsynced tail —
// entirely in memory, while the recovery benchmarks exercise real files.
//
// Durability model: Append buffers bytes; Sync makes every byte appended so
// far durable. A crash (MemoryBackend::Crash) keeps all synced bytes and
// tears the unsynced tail deterministically. Rename is the atomic publish
// primitive (POSIX rename semantics): callers sync the source first, so a
// renamed file is never torn.
//
// This header and its implementation are the ONLY sanctioned home for raw
// file I/O in src/ (orchestra-lint rule `wal-raw-io`).
#ifndef ORCHESTRA_WAL_BACKEND_H_
#define ORCHESTRA_WAL_BACKEND_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace orchestra::wal {

/// Flat namespace of append-only files. All methods are safe to call from
/// multiple threads (implementations serialize internally); the WAL's own
/// single-writer discipline lives a layer up.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Appends `bytes` to `name`, creating the file if absent.
  virtual Status Append(const std::string& name, std::string_view bytes) = 0;
  /// Makes every byte appended to `name` so far durable.
  virtual Status Sync(const std::string& name) = 0;
  /// Whole current content of `name` (durable and not-yet-synced bytes).
  virtual Result<std::string> Read(const std::string& name) const = 0;
  virtual bool Exists(const std::string& name) const = 0;
  /// Discards every byte of `name` past `size` (torn-tail truncation).
  virtual Status Truncate(const std::string& name, uint64_t size) = 0;
  /// Atomically replaces `to` with `from` (the manifest publish point).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  /// Idempotent; OK even if absent.
  virtual Status Remove(const std::string& name) = 0;
  /// All file names, sorted.
  virtual std::vector<std::string> List() const = 0;
};

/// Deterministic in-memory backend for the simulator and churn harness.
/// Tracks the synced prefix of every file; Crash() models a machine failure:
/// synced bytes survive, and half of the unsynced tail (rounded down) is
/// kept — a deterministic stand-in for the arbitrary partial page writes a
/// real crash leaves behind, so torn-tail recovery is exercised on a
/// byte-reproducible input.
class MemoryBackend : public Backend {
 public:
  Status Append(const std::string& name, std::string_view bytes) override;
  Status Sync(const std::string& name) override;
  Result<std::string> Read(const std::string& name) const override;
  bool Exists(const std::string& name) const override;
  Status Truncate(const std::string& name, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& name) override;
  std::vector<std::string> List() const override;

  /// Simulates a crash: every file keeps its synced prefix plus half its
  /// unsynced tail; the surviving bytes count as durable afterwards.
  void Crash();

  uint64_t crashes() const;
  /// Bytes discarded across all Crash() calls (the torn tails).
  uint64_t crash_torn_bytes() const;

 private:
  struct FileState {
    std::string data;
    size_t synced = 0;
  };
  mutable std::mutex mu_;
  std::map<std::string, FileState> files_;
  uint64_t crashes_ = 0;
  uint64_t crash_torn_bytes_ = 0;
};

/// Real-file backend for the recovery benchmarks: one flat directory of
/// files under `root`. Append handles are cached per file; Sync does
/// fflush + fsync. Not used by any simulated deployment (the sim stays
/// deterministic on MemoryBackend).
class FileBackend : public Backend {
 public:
  /// Creates `root` if missing. `root` must name a directory dedicated to
  /// this backend; List()/Remove() treat every plain file in it as WAL state.
  explicit FileBackend(std::string root);
  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  Status Append(const std::string& name, std::string_view bytes) override;
  Status Sync(const std::string& name) override;
  Result<std::string> Read(const std::string& name) const override;
  bool Exists(const std::string& name) const override;
  Status Truncate(const std::string& name, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& name) override;
  std::vector<std::string> List() const override;

  const std::string& root() const { return root_; }

 private:
  std::string PathOf(const std::string& name) const;
  /// Closes and drops the cached append handle, if any (callers hold mu_).
  void CloseHandleLocked(const std::string& name);

  std::string root_;
  mutable std::mutex mu_;
  std::map<std::string, std::FILE*> handles_;
};

}  // namespace orchestra::wal

#endif  // ORCHESTRA_WAL_BACKEND_H_
