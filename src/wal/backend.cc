#include "wal/backend.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace orchestra::wal {

// ---------------------------------------------------------------------------
// MemoryBackend

Status MemoryBackend::Append(const std::string& name, std::string_view bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[name].data.append(bytes.data(), bytes.size());
  return Status::OK();
}

Status MemoryBackend::Sync(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("wal: sync of missing file " + name);
  it->second.synced = it->second.data.size();
  return Status::OK();
}

Result<std::string> MemoryBackend::Read(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("wal: no such file " + name);
  return it->second.data;
}

bool MemoryBackend::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.find(name) != files_.end();
}

Status MemoryBackend::Truncate(const std::string& name, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("wal: truncate of missing file " + name);
  FileState& f = it->second;
  if (size < f.data.size()) f.data.resize(size);
  f.synced = std::min<size_t>(f.synced, f.data.size());
  return Status::OK();
}

Status MemoryBackend::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("wal: rename of missing file " + from);
  FileState moved = std::move(it->second);
  files_.erase(it);
  files_[to] = std::move(moved);
  return Status::OK();
}

Status MemoryBackend::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(name);
  return Status::OK();
}

std::vector<std::string> MemoryBackend::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, f] : files_) names.push_back(name);
  return names;  // map iteration is already sorted
}

void MemoryBackend::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  crashes_ += 1;
  for (auto& [name, f] : files_) {
    if (f.data.size() > f.synced) {
      // Keep the synced prefix plus half the unsynced tail: enough to land
      // mid-record (the torn tail recovery must truncate) without being a
      // trivial "lose everything unsynced" rule.
      size_t keep = f.synced + (f.data.size() - f.synced) / 2;
      crash_torn_bytes_ += f.data.size() - keep;
      f.data.resize(keep);
    }
    f.synced = f.data.size();
  }
}

uint64_t MemoryBackend::crashes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashes_;
}

uint64_t MemoryBackend::crash_torn_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crash_torn_bytes_;
}

// ---------------------------------------------------------------------------
// FileBackend

namespace {

bool ValidName(const std::string& name) {
  return !name.empty() && name.find('/') == std::string::npos &&
         name != "." && name != "..";
}

}  // namespace

FileBackend::FileBackend(std::string root) : root_(std::move(root)) {
  ::mkdir(root_.c_str(), 0755);  // EEXIST is fine; Append reports real errors
}

FileBackend::~FileBackend() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, f] : handles_) std::fclose(f);
}

std::string FileBackend::PathOf(const std::string& name) const {
  return root_ + "/" + name;
}

void FileBackend::CloseHandleLocked(const std::string& name) {
  auto it = handles_.find(name);
  if (it != handles_.end()) {
    std::fclose(it->second);
    handles_.erase(it);
  }
}

Status FileBackend::Append(const std::string& name, std::string_view bytes) {
  if (!ValidName(name)) return Status::InvalidArgument("wal: bad file name " + name);
  std::lock_guard<std::mutex> lock(mu_);
  std::FILE*& f = handles_[name];
  if (f == nullptr) {
    f = std::fopen(PathOf(name).c_str(), "ab");
    if (f == nullptr) {
      handles_.erase(name);
      return Status::IOError("wal: open failed: " + PathOf(name) + ": " +
                             std::strerror(errno));
    }
  }
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    return Status::IOError("wal: short write: " + PathOf(name));
  }
  return Status::OK();
}

Status FileBackend::Sync(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(name);
  if (it == handles_.end()) {
    // Nothing buffered through us; the file is as durable as it gets.
    return Status::OK();
  }
  if (std::fflush(it->second) != 0 || ::fsync(::fileno(it->second)) != 0) {
    return Status::IOError("wal: fsync failed: " + PathOf(name));
  }
  return Status::OK();
}

Result<std::string> FileBackend::Read(const std::string& name) const {
  if (!ValidName(name)) return Status::InvalidArgument("wal: bad file name " + name);
  {
    // Push buffered appends down before reading through a second handle.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handles_.find(name);
    if (it != handles_.end()) std::fflush(it->second);
  }
  std::FILE* f = std::fopen(PathOf(name).c_str(), "rb");
  if (f == nullptr) return Status::NotFound("wal: no such file " + name);
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IOError("wal: read failed: " + PathOf(name));
  return out;
}

bool FileBackend::Exists(const std::string& name) const {
  struct stat st{};
  return ValidName(name) && ::stat(PathOf(name).c_str(), &st) == 0;
}

Status FileBackend::Truncate(const std::string& name, uint64_t size) {
  if (!ValidName(name)) return Status::InvalidArgument("wal: bad file name " + name);
  std::lock_guard<std::mutex> lock(mu_);
  CloseHandleLocked(name);
  if (::truncate(PathOf(name).c_str(), static_cast<off_t>(size)) != 0) {
    return Status::IOError("wal: truncate failed: " + PathOf(name));
  }
  return Status::OK();
}

Status FileBackend::Rename(const std::string& from, const std::string& to) {
  if (!ValidName(from) || !ValidName(to)) {
    return Status::InvalidArgument("wal: bad file name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  CloseHandleLocked(from);
  CloseHandleLocked(to);
  if (std::rename(PathOf(from).c_str(), PathOf(to).c_str()) != 0) {
    return Status::IOError("wal: rename failed: " + PathOf(from));
  }
  return Status::OK();
}

Status FileBackend::Remove(const std::string& name) {
  if (!ValidName(name)) return Status::InvalidArgument("wal: bad file name " + name);
  std::lock_guard<std::mutex> lock(mu_);
  CloseHandleLocked(name);
  std::remove(PathOf(name).c_str());  // already-absent is fine (idempotent)
  return Status::OK();
}

std::vector<std::string> FileBackend::List() const {
  std::vector<std::string> names;
  DIR* d = ::opendir(root_.c_str());
  if (d == nullptr) return names;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace orchestra::wal
