#include "wal/wal.h"

#include <zlib.h>

#include <algorithm>
#include <cstdio>

#include "common/serial.h"

namespace orchestra::wal {
namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestTmpName[] = "MANIFEST.tmp";
// Frame header: [len u32le][crc u32le]; len counts the type byte + payload.
constexpr size_t kFrameHeaderBytes = 8;
// WriteCheckpoint streams the snapshot to the backend in slabs of this size
// so checkpointing a large store does not buffer it twice in memory.
constexpr size_t kManifestFlushBytes = 1 << 20;

uint32_t ReadLE32(const char* p) {
  auto b = [&](int i) { return static_cast<uint32_t>(static_cast<unsigned char>(p[i])); };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

uint32_t FrameCrc(RecordType type, std::string_view payload) {
  auto t = static_cast<unsigned char>(type);
  uint32_t crc = static_cast<uint32_t>(crc32(0, &t, 1));
  return static_cast<uint32_t>(
      crc32(crc, reinterpret_cast<const unsigned char*>(payload.data()),
            static_cast<uInt>(payload.size())));
}

void AppendFrame(std::string* out, RecordType type, std::string_view payload) {
  Writer w(kFrameHeaderBytes + 1 + payload.size());
  w.PutU32(static_cast<uint32_t>(1 + payload.size()));
  w.PutU32(FrameCrc(type, payload));
  w.PutU8(static_cast<uint8_t>(type));
  w.PutRaw(payload.data(), payload.size());
  out->append(w.data());
}

std::string EncodeKv(std::string_view key, std::string_view value) {
  Writer w(key.size() + value.size() + 5);
  w.PutVarint32(static_cast<uint32_t>(key.size()));
  w.PutRaw(key.data(), key.size());
  w.PutRaw(value.data(), value.size());
  return w.Release();
}

bool DecodeKv(std::string_view payload, std::string_view* key,
              std::string_view* value) {
  Reader r(payload);
  uint32_t key_len = 0;
  if (!r.GetVarint32(&key_len).ok() || !r.GetRawView(key, key_len).ok()) {
    return false;
  }
  *value = r.RemainingView();
  return true;
}

/// Walks the CRC-framed records of one buffer. Any framing defect —
/// truncated header, impossible length, CRC mismatch — is a torn tail: the
/// walk stops at the last whole record and reports where.
struct FrameWalk {
  uint64_t records = 0;
  uint64_t valid_bytes = 0;  // offset of the first defective byte, if torn
  bool torn = false;
};

FrameWalk WalkFrames(
    std::string_view buf,
    const std::function<bool(RecordType, std::string_view payload)>& handle) {
  FrameWalk walk;
  size_t off = 0;
  while (off + kFrameHeaderBytes <= buf.size()) {
    uint32_t len = ReadLE32(buf.data() + off);
    uint32_t crc = ReadLE32(buf.data() + off + 4);
    if (len == 0 || len > buf.size() - off - kFrameHeaderBytes) break;
    std::string_view body = buf.substr(off + kFrameHeaderBytes, len);
    auto type = static_cast<RecordType>(static_cast<unsigned char>(body[0]));
    std::string_view payload = body.substr(1);
    if (FrameCrc(type, payload) != crc) break;
    if (!handle(type, payload)) {
      // Handler rejected a CRC-valid record: not a torn tail, a writer bug.
      walk.valid_bytes = off;
      walk.torn = true;
      return walk;
    }
    walk.records += 1;
    off += kFrameHeaderBytes + len;
  }
  walk.valid_bytes = off;
  walk.torn = off != buf.size();
  return walk;
}

}  // namespace

std::string Wal::SegmentName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%010llu.seg",
                static_cast<unsigned long long>(id));
  return buf;
}

bool Wal::ParseSegmentName(std::string_view name, uint64_t* id) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".seg";
  if (name.size() != kPrefix.size() + 10 + kSuffix.size()) return false;
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return false;
  uint64_t v = 0;
  for (char c : name.substr(kPrefix.size(), 10)) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *id = v;
  return true;
}

Wal::Wal(std::shared_ptr<Backend> backend, WalOptions options)
    : backend_(std::move(backend)), options_(options) {}

Status Wal::AppendRecord(RecordType type, std::string_view key,
                         std::string_view value) {
  std::string frame;
  AppendFrame(&frame, type, EncodeKv(key, value));
  ORC_RETURN_IF_ERROR(backend_->Append(SegmentName(active_id_), frame));
  active_bytes_ += frame.size();
  unsynced_records_ += 1;
  stats_.records_appended += 1;
  stats_.bytes_appended += frame.size();
  if (options_.sync_every_records > 0 &&
      unsynced_records_ >= options_.sync_every_records) {
    ORC_RETURN_IF_ERROR(Sync());
  }
  if (active_bytes_ >= options_.segment_target_bytes) {
    return SealActiveSegment();
  }
  return Status::OK();
}

Status Wal::AppendPut(std::string_view key, std::string_view value) {
  return AppendRecord(RecordType::kPut, key, value);
}

Status Wal::AppendDelete(std::string_view key) {
  return AppendRecord(RecordType::kDelete, key, {});
}

Status Wal::Sync() {
  if (unsynced_records_ == 0) return Status::OK();
  std::string name = SegmentName(active_id_);
  if (backend_->Exists(name)) {
    ORC_RETURN_IF_ERROR(backend_->Sync(name));
    stats_.syncs += 1;
  }
  unsynced_records_ = 0;
  return Status::OK();
}

Status Wal::SealActiveSegment() {
  std::string name = SegmentName(active_id_);
  if (skip_next_seal_sync_) {
    // Injected fault: the sealed bytes stay in the unsynced window, so a
    // crash now tears a NON-final segment — recovery must truncate it and
    // still replay everything after it.
    skip_next_seal_sync_ = false;
  } else if (unsynced_records_ > 0 && backend_->Exists(name)) {
    ORC_RETURN_IF_ERROR(backend_->Sync(name));
    stats_.syncs += 1;
  }
  stats_.segments_sealed += 1;
  active_id_ += 1;
  active_bytes_ = 0;
  unsynced_records_ = 0;
  return Status::OK();
}

Status Wal::WriteCheckpoint(const SnapshotIter& next) {
  // The snapshot is about to cover everything appended so far; seal the
  // active segment so the first-live watermark lands on a segment boundary.
  if (active_bytes_ > 0) ORC_RETURN_IF_ERROR(SealActiveSegment());
  uint64_t first_live = active_id_;

  backend_->Remove(kManifestTmpName).ok();  // stale tmp of a failed publish
  std::string buf;
  {
    Writer header;
    header.PutVarint64(first_live);
    AppendFrame(&buf, RecordType::kManifestHeader, header.data());
  }
  std::string_view key, value;
  while (next(&key, &value)) {
    AppendFrame(&buf, RecordType::kPut, EncodeKv(key, value));
    if (buf.size() >= kManifestFlushBytes) {
      ORC_RETURN_IF_ERROR(backend_->Append(kManifestTmpName, buf));
      buf.clear();
    }
  }
  ORC_RETURN_IF_ERROR(backend_->Append(kManifestTmpName, buf));
  ORC_RETURN_IF_ERROR(backend_->Sync(kManifestTmpName));
  stats_.syncs += 1;

  if (fail_next_checkpoint_) {
    // Injected fault: "crash" between sync and rename. The synced tmp stays
    // behind; recovery ignores it and uses the previous manifest.
    fail_next_checkpoint_ = false;
    stats_.checkpoint_failures += 1;
    return Status::Aborted("wal: checkpoint publish failed (injected)");
  }

  ORC_RETURN_IF_ERROR(backend_->Rename(kManifestTmpName, kManifestName));
  first_live_ = first_live;
  stats_.checkpoints += 1;

  // The manifest is durable; every sealed segment below it is dead weight.
  for (const std::string& name : backend_->List()) {
    uint64_t id = 0;
    if (ParseSegmentName(name, &id) && id < first_live_) {
      backend_->Remove(name).ok();
      stats_.segments_retired += 1;
    }
  }
  return Status::OK();
}

namespace {

/// Shared manifest decode: header frame then kPut entry frames. A manifest
/// is published by atomic rename after a sync, so framing defects are real
/// corruption, not torn tails.
Status ReplayManifest(std::string_view data, uint64_t* first_live,
                      const Wal::ApplyFn& apply, uint64_t* entries) {
  bool saw_header = false;
  bool bad = false;
  FrameWalk walk = WalkFrames(data, [&](RecordType type, std::string_view payload) {
    if (!saw_header) {
      if (type != RecordType::kManifestHeader) return false;
      Reader r(payload);
      if (!r.GetVarint64(first_live).ok()) return false;
      saw_header = true;
      return true;
    }
    if (type != RecordType::kPut) return false;
    std::string_view key, value;
    if (!DecodeKv(payload, &key, &value)) return false;
    apply(RecordType::kPut, key, value, /*from_checkpoint=*/true);
    if (entries != nullptr) *entries += 1;
    return true;
  });
  bad = walk.torn || !saw_header;
  if (bad) return Status::Corruption("wal: manifest corrupt");
  return Status::OK();
}

}  // namespace

Status Wal::Recover(const ApplyFn& apply) {
  stats_.recoveries += 1;
  backend_->Remove(kManifestTmpName).ok();  // unpublished checkpoint residue

  first_live_ = 1;
  if (backend_->Exists(kManifestName)) {
    Result<std::string> data = backend_->Read(kManifestName);
    if (!data.ok()) return data.status();
    ORC_RETURN_IF_ERROR(
        ReplayManifest(*data, &first_live_, apply, &stats_.snapshot_records));
  }

  uint64_t max_id = 0;
  for (const std::string& name : backend_->List()) {
    uint64_t id = 0;
    if (!ParseSegmentName(name, &id)) continue;
    if (id < first_live_) {
      // A crash between manifest publish and retirement left it behind.
      backend_->Remove(name).ok();
      stats_.segments_retired += 1;
      continue;
    }
    Result<std::string> data = backend_->Read(name);
    if (!data.ok()) return data.status();
    bool decode_ok = true;
    FrameWalk walk =
        WalkFrames(*data, [&](RecordType type, std::string_view payload) {
          std::string_view key, value;
          if (!DecodeKv(payload, &key, &value)) return false;
          if (type != RecordType::kPut && type != RecordType::kDelete) {
            decode_ok = false;
            return false;
          }
          apply(type, key, value, /*from_checkpoint=*/false);
          return true;
        });
    if (!decode_ok) return Status::Corruption("wal: bad record type in " + name);
    stats_.replayed_records += walk.records;
    if (walk.torn) {
      stats_.torn_tails += 1;
      stats_.torn_bytes += data->size() - walk.valid_bytes;
      ORC_RETURN_IF_ERROR(backend_->Truncate(name, walk.valid_bytes));
    }
    max_id = std::max(max_id, id);
  }

  // Fresh active segment past everything replayed: a truncated tail segment
  // is never appended to again.
  active_id_ = std::max(max_id + 1, first_live_);
  active_bytes_ = 0;
  unsynced_records_ = 0;
  return Status::OK();
}

Status Wal::Replay(const Backend& backend, const ApplyFn& apply) {
  // Read-only and tolerant by design: segments may be retired between List
  // and Read when a writer is live, and the active tail may end mid-window.
  // Point-in-time consistency is NOT guaranteed against a concurrent
  // checkpoint; this is the reader-side smoke/debug facility, not recovery.
  uint64_t first_live = 1;
  if (backend.Exists(kManifestName)) {
    Result<std::string> data = backend.Read(kManifestName);
    if (data.ok()) {
      ORC_RETURN_IF_ERROR(ReplayManifest(*data, &first_live, apply, nullptr));
    }
  }
  for (const std::string& name : backend.List()) {
    uint64_t id = 0;
    if (!ParseSegmentName(name, &id) || id < first_live) continue;
    Result<std::string> data = backend.Read(name);
    if (!data.ok()) continue;  // retired mid-walk
    WalkFrames(*data, [&](RecordType type, std::string_view payload) {
      std::string_view key, value;
      if (!DecodeKv(payload, &key, &value)) return false;
      if (type != RecordType::kPut && type != RecordType::kDelete) return false;
      apply(type, key, value, /*from_checkpoint=*/false);
      return true;
    });
  }
  return Status::OK();
}

}  // namespace orchestra::wal
