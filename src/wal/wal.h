// Segmented write-ahead log with checkpointed recovery. The paper's
// prototype delegated durability to BerkeleyDB (§VI); this is our
// from-scratch equivalent of its write-ahead logging layer, shaped so that
// restart cost scales with the post-checkpoint tail rather than store size.
//
//   * Records are framed [len u32le][crc32 u32le][type u8][payload] and
//     appended to the active segment. Segments seal at a size target and are
//     immutable afterwards; segment ids are monotonic and encode the replay
//     order in the file name (wal-<id>.seg).
//   * A checkpoint seals the active segment, streams a dense snapshot of the
//     live state into MANIFEST.tmp (same record framing: one header naming
//     the first live segment, then one kPut frame per live entry, sorted),
//     syncs it, and atomically renames it to MANIFEST. Sealed segments below
//     the first-live watermark are then retired (deleted) — the reclaimed
//     space never reappears in any accounting.
//   * Recover() loads the newest MANIFEST (if any) and replays only the
//     segments at-or-past its first-live watermark, in id order. A torn tail
//     (incomplete frame or CRC mismatch, the residue of a crash with
//     unsynced bytes) stops replay of that segment at the last whole record
//     and truncates the file there — deterministically, so two recoveries of
//     the same bytes agree.
//
// Determinism contract: the WAL reads no clocks and draws no randomness; all
// state is a pure function of the append/checkpoint call sequence and the
// backend's bytes. The simulator runs it on wal::MemoryBackend, whose
// Crash() tears unsynced tails reproducibly.
//
// Format details and the recovery protocol are documented in
// docs/DURABILITY.md.
#ifndef ORCHESTRA_WAL_WAL_H_
#define ORCHESTRA_WAL_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "wal/backend.h"

namespace orchestra::wal {

enum class RecordType : uint8_t {
  kPut = 1,     // payload: varint32 key_len, key bytes, value = rest
  kDelete = 2,  // payload: varint32 key_len, key bytes
  kManifestHeader = 3,  // payload: varint64 first_live_segment
};

struct WalOptions {
  /// Seal the active segment once it reaches this many bytes.
  uint64_t segment_target_bytes = 256 * 1024;
  /// Sync the active segment after every Nth append (1 = every record, the
  /// lose-nothing default; 0 = only on seal/checkpoint/explicit Sync, which
  /// leaves a crashable tail — what the churn harness uses to exercise torn
  /// tails).
  uint64_t sync_every_records = 1;
};

struct WalStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t syncs = 0;
  uint64_t segments_sealed = 0;
  uint64_t segments_retired = 0;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_failures = 0;  // injected publish failures (tests)
  uint64_t recoveries = 0;
  uint64_t snapshot_records = 0;  // manifest entries loaded across recoveries
  uint64_t replayed_records = 0;  // tail records replayed across recoveries
  uint64_t torn_tails = 0;        // segments truncated during recovery
  uint64_t torn_bytes = 0;        // bytes discarded by those truncations
};

/// Single-writer segmented WAL over an injected Backend. Thread contract:
/// all mutating calls (Append*/Sync/WriteCheckpoint/Recover) come from one
/// thread; the static Replay() is safe to run concurrently from readers
/// because it never mutates backend state.
class Wal {
 public:
  /// Applied to every recovered record. `from_checkpoint` records come from
  /// the manifest snapshot: always kPut, unique keys, sorted ascending.
  using ApplyFn = std::function<void(RecordType type, std::string_view key,
                                     std::string_view value,
                                     bool from_checkpoint)>;
  /// Pull-style snapshot source for WriteCheckpoint: yields the next live
  /// (key, value) pair in ascending key order, false when exhausted. The
  /// views only need to stay valid until the next call.
  using SnapshotIter =
      std::function<bool(std::string_view* key, std::string_view* value)>;

  explicit Wal(std::shared_ptr<Backend> backend, WalOptions options = {});

  Status AppendPut(std::string_view key, std::string_view value);
  Status AppendDelete(std::string_view key);
  /// Makes every record appended so far durable.
  Status Sync();

  /// Publishes a checkpoint: seals the active segment, writes the snapshot
  /// + first-live watermark to MANIFEST.tmp, syncs, renames to MANIFEST,
  /// then retires sealed segments below the watermark. Returns Aborted if a
  /// FailNextCheckpointPublish() hook was armed (the tmp file is left
  /// behind, exactly like a crash between sync and rename).
  Status WriteCheckpoint(const SnapshotIter& next);

  /// Rebuilds state from the backend: loads the newest manifest, replays
  /// the tail segments in id order (truncating torn tails), retires any
  /// segments a crash left below the manifest watermark, and opens a fresh
  /// active segment past everything replayed.
  Status Recover(const ApplyFn& apply);

  /// Read-only replay of a backend's current state (manifest + tail) for
  /// concurrent readers: never truncates, renames, or deletes. Torn tails
  /// stop that segment's replay silently.
  static Status Replay(const Backend& backend, const ApplyFn& apply);

  // --- Fault-injection hooks (churn harness / tests) -----------------------
  /// The next WriteCheckpoint syncs MANIFEST.tmp but "crashes" before the
  /// rename: it returns Aborted and publishes nothing. Recovery must use the
  /// previous manifest and ignore the stray tmp.
  void FailNextCheckpointPublish() { fail_next_checkpoint_ = true; }
  /// The next segment seal skips its sync, leaving the sealed bytes exposed
  /// to a crash (a torn tail in a non-final segment).
  void SkipNextSealSync() { skip_next_seal_sync_ = true; }

  const WalStats& stats() const { return stats_; }
  const WalOptions& options() const { return options_; }
  uint64_t active_segment() const { return active_id_; }
  uint64_t first_live_segment() const { return first_live_; }
  uint64_t active_segment_bytes() const { return active_bytes_; }
  Backend* backend() { return backend_.get(); }

  /// Segment file name for id (wal-<10-digit id>.seg).
  static std::string SegmentName(uint64_t id);
  /// Parses a segment file name; returns false for non-segment files.
  static bool ParseSegmentName(std::string_view name, uint64_t* id);

 private:
  Status AppendRecord(RecordType type, std::string_view key,
                      std::string_view value);
  Status SealActiveSegment();

  std::shared_ptr<Backend> backend_;
  WalOptions options_;
  WalStats stats_;
  uint64_t active_id_ = 1;
  uint64_t first_live_ = 1;
  uint64_t active_bytes_ = 0;
  uint64_t unsynced_records_ = 0;
  bool fail_next_checkpoint_ = false;
  bool skip_next_seal_sync_ = false;
};

}  // namespace orchestra::wal

#endif  // ORCHESTRA_WAL_WAL_H_
