// The ORCHESTRA CDSS layer (§I, §II): participants with local databases and
// schemas, the publish/import cycle, update exchange over schema mappings,
// and reconciliation of conflicting concurrent updates.
//
// This is a functional (simplified) realization of the components the paper
// inherits from [2] (reconciliation) and [3] (update exchange with
// mappings): mappings are select-project-join rules evaluated over the
// shared versioned store via the distributed query engine, and conflicts are
// key-level collisions between updates published by different participants
// since the importer's last sync, resolved by a trust priority order.
#ifndef ORCHESTRA_CDSS_CDSS_H_
#define ORCHESTRA_CDSS_CDSS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "deploy/deployment.h"
#include "localstore/local_store.h"
#include "optimizer/optimizer.h"
#include "query/service.h"
#include "storage/publisher.h"

namespace orchestra::cdss {

/// A schema mapping: a single-block SQL query over *shared* relations whose
/// result is imported into the participant's local `target` relation. The
/// select-list arity must match the target schema.
struct SchemaMapping {
  std::string name;
  std::string target_relation;
  std::string sql;
};

/// Conflict found during reconciliation (§II): two participants updated the
/// same key of the same shared relation in the imported epoch window.
struct Conflict {
  std::string relation;
  storage::Tuple mine;    // the version this participant had published/held
  storage::Tuple theirs;  // the competing version
  bool resolved_mine = false;
};

struct ImportReport {
  storage::Epoch epoch = 0;          // global epoch the import ran against
  size_t tuples_imported = 0;
  size_t conflicts_found = 0;
  size_t conflicts_kept_mine = 0;
  std::vector<Conflict> conflicts;
};

/// One CDSS participant: owns a local database (its own schema), publishes
/// its update log to the shared versioned store, and imports others' data
/// through its schema mappings.
class Participant {
 public:
  /// `node` is the deployment node this participant contributes/runs on.
  /// `trust_priority`: lower value wins conflicts (the paper's reconciliation
  /// uses per-participant trust policies; we model a total priority order).
  Participant(deploy::Deployment* dep, size_t node, std::string name,
              int trust_priority);

  const std::string& name() const { return name_; }
  size_t node() const { return node_; }

  // --- Local database --------------------------------------------------------
  /// Declares a local relation (exists only in this participant's DB).
  void CreateLocalRelation(const storage::RelationDef& def);
  /// Binds a local relation to the shared relation its updates publish into
  /// (its own schema mapping direction, §II). Default: same name.
  void BindLocalToShared(const std::string& local_name,
                         const std::string& shared_name) {
    shared_binding_[local_name] = shared_name;
  }
  /// Applies an edit to the local DB and appends it to the update log.
  void LocalInsert(const std::string& relation, storage::Tuple t);
  void LocalDelete(const std::string& relation, storage::Tuple key);
  /// Reads the full local relation (sorted by key).
  std::vector<storage::Tuple> LocalScan(const std::string& relation) const;
  size_t pending_updates() const { return log_.size(); }

  // --- Shared store ----------------------------------------------------------
  /// Declares a shared relation in the CDSS (any participant may do this).
  Status CreateSharedRelation(const storage::RelationDef& def);

  /// Publication (§II): pushes the local update log for `relation` into the
  /// shared versioned store as one new epoch. The log is cleared on success.
  Result<storage::Epoch> Publish();

  /// Import = update exchange + reconciliation (§II): runs every mapping
  /// query against the shared store at the current epoch, translates results
  /// into local relations, and reconciles conflicts against local versions.
  Result<ImportReport> Import();

  void AddMapping(SchemaMapping mapping) { mappings_.push_back(std::move(mapping)); }
  int trust_priority() const { return trust_priority_; }

  /// Key-collision reconciliation between a remote tuple and the local one.
  /// Returns true if the local (mine) version wins.
  bool MineWins(int other_priority) const { return trust_priority_ <= other_priority; }

 private:
  struct LoggedUpdate {
    std::string relation;
    storage::Update update;
  };

  std::string LocalKey(const std::string& relation, const storage::Tuple& t) const;

  deploy::Deployment* dep_;
  size_t node_;
  std::string name_;
  int trust_priority_;
  std::map<std::string, storage::RelationDef> local_catalog_;
  localstore::LocalStore local_db_;
  std::vector<LoggedUpdate> log_;
  std::vector<SchemaMapping> mappings_;
  std::map<std::string, std::string> shared_binding_;
};

/// Annotates shared relations with the publishing participant: the CDSS
/// convention here is that shared relations carry an `origin` column holding
/// the publisher's name plus its trust priority, which reconciliation uses.
/// Helpers to build such relations:
storage::RelationDef SharedRelation(const std::string& name,
                                    std::vector<storage::ColumnDef> cols,
                                    uint32_t key_arity,
                                    uint32_t num_partitions = 16);

}  // namespace orchestra::cdss

#endif  // ORCHESTRA_CDSS_CDSS_H_
