#include "cdss/cdss.h"

#include <algorithm>

#include "common/log.h"
#include "sql/parser.h"

namespace orchestra::cdss {

using storage::RelationDef;
using storage::Tuple;
using storage::Update;
using storage::Value;

storage::RelationDef SharedRelation(const std::string& name,
                                    std::vector<storage::ColumnDef> cols,
                                    uint32_t key_arity, uint32_t num_partitions) {
  // "Each participant stores its own updates in the CDSS, disjoint from all
  // others" (§IV): the publisher's name is part of the shared key, so
  // concurrent versions of the same logical key coexist until import-time
  // reconciliation. Placement uses only the logical key, co-locating the
  // competing versions.
  std::vector<storage::ColumnDef> shared(cols.begin(), cols.begin() + key_arity);
  shared.push_back({"origin", storage::ValueType::kString});
  shared.insert(shared.end(), cols.begin() + key_arity, cols.end());
  shared.push_back({"origin_priority", storage::ValueType::kInt64});
  RelationDef def;
  def.name = name;
  def.schema = storage::Schema(std::move(shared), key_arity + 1);
  def.partition_key_arity = key_arity;
  def.num_partitions = num_partitions;
  return def;
}

Participant::Participant(deploy::Deployment* dep, size_t node, std::string name,
                         int trust_priority)
    : dep_(dep), node_(node), name_(std::move(name)), trust_priority_(trust_priority) {}

std::string Participant::LocalKey(const std::string& relation, const Tuple& t) const {
  auto it = local_catalog_.find(relation);
  ORC_CHECK(it != local_catalog_.end(), "unknown local relation " << relation);
  std::string k = relation;
  k.push_back('\x1f');
  // Key prefix only: local DB stores one live version per key.
  Tuple key_only(t.begin(), t.begin() + it->second.schema.key_arity());
  Writer w;
  for (const Value& v : key_only) v.EncodeOrdered(&k);
  (void)w;
  return k;
}

void Participant::CreateLocalRelation(const RelationDef& def) {
  local_catalog_[def.name] = def;
}

void Participant::LocalInsert(const std::string& relation, Tuple t) {
  Writer w;
  storage::EncodeTuple(t, &w);
  local_db_.Put(LocalKey(relation, t), w.data()).ok();
  log_.push_back(LoggedUpdate{relation, Update::Insert(std::move(t))});
}

void Participant::LocalDelete(const std::string& relation, Tuple key) {
  local_db_.Delete(LocalKey(relation, key)).ok();
  log_.push_back(LoggedUpdate{relation, Update::Delete(std::move(key))});
}

std::vector<Tuple> Participant::LocalScan(const std::string& relation) const {
  std::vector<Tuple> out;
  std::string prefix = relation;
  prefix.push_back('\x1f');
  for (auto it = local_db_.SeekPrefix(prefix);
       localstore::LocalStore::WithinPrefix(it, prefix); it.Next()) {
    Reader r(it.value());
    Tuple t;
    if (storage::DecodeTuple(&r, &t).ok()) out.push_back(std::move(t));
  }
  return out;
}

Status Participant::CreateSharedRelation(const RelationDef& def) {
  return dep_->CreateRelation(node_, def);
}

Result<storage::Epoch> Participant::Publish() {
  // Translate the local update log into shared-relation updates, stamping
  // each tuple with this participant's origin metadata (§II: "publishing
  // updates from the local DBMS log to versioned storage").
  storage::UpdateBatch batch;
  for (const LoggedUpdate& lu : log_) {
    auto bound = shared_binding_.find(lu.relation);
    std::string shared_name =
        bound != shared_binding_.end() ? bound->second : lu.relation;
    auto shared = dep_->storage(node_).Relation(shared_name);
    if (!shared.ok()) {
      return Status::FailedPrecondition("no shared relation for " + lu.relation);
    }
    // Shared layout: [logical key..., origin, rest..., origin_priority].
    const Tuple& src = lu.update.tuple;
    uint32_t logical_key = shared->schema.key_arity() - 1;
    if (src.size() + 2 != shared->schema.arity() || src.size() < logical_key) {
      return Status::InvalidArgument("tuple arity does not match shared schema of " +
                                     lu.relation);
    }
    Tuple t(src.begin(), src.begin() + logical_key);
    t.emplace_back(name_);
    t.insert(t.end(), src.begin() + logical_key, src.end());
    t.emplace_back(static_cast<int64_t>(trust_priority_));
    auto& dst = batch[shared_name];
    if (lu.update.kind == Update::Kind::kInsert) {
      dst.push_back(Update::Insert(std::move(t)));
    } else {
      dst.push_back(Update::Delete(std::move(t)));
    }
  }
  if (batch.empty()) return Status::FailedPrecondition("nothing to publish");

  // Catch up on the gossiped epoch before assigning the next one (§IV); the
  // deployment helper reads the converged value deterministically.
  dep_->gossip(node_).AdvanceTo(dep_->MaxKnownEpoch());

  bool done = false;
  Status status;
  storage::Epoch epoch = 0;
  dep_->publisher(node_).PublishBatch(std::move(batch),
                                      [&](Status st, storage::Epoch e) {
                                        status = st;
                                        epoch = e;
                                        done = true;
                                      });
  if (!dep_->RunUntil([&] { return done; })) {
    return Status::TimedOut("publish did not complete");
  }
  ORC_RETURN_IF_ERROR(status);
  log_.clear();
  return epoch;
}

Result<ImportReport> Participant::Import() {
  ImportReport report;
  // The import epoch comes from gossip (§IV); the deployment helper reads the
  // converged value deterministically instead of waiting out timer rounds.
  report.epoch = dep_->MaxKnownEpoch();
  dep_->gossip(node_).AdvanceTo(report.epoch);

  auto catalog = [this](const std::string& name) {
    return dep_->storage(node_).Relation(name);
  };

  for (const SchemaMapping& mapping : mappings_) {
    auto target = local_catalog_.find(mapping.target_relation);
    if (target == local_catalog_.end()) {
      return Status::InvalidArgument("mapping targets unknown local relation " +
                                     mapping.target_relation);
    }
    // Update exchange (§II): the mapping is a query over the shared schema,
    // executed by the distributed engine against the import epoch.
    auto analyzed = sql::ParseAndAnalyze(mapping.sql, catalog);
    ORC_RETURN_IF_ERROR(analyzed.status());
    optimizer::CostParams params;
    params.num_nodes = dep_->size();
    optimizer::Optimizer opt({}, params);
    auto planned = opt.Plan(*analyzed);
    ORC_RETURN_IF_ERROR(planned.status());
    auto rows = dep_->ExecuteQuery(node_, planned->plan, report.epoch);
    ORC_RETURN_IF_ERROR(rows.status());

    const storage::Schema& schema = target->second.schema;
    // Mapping output convention: target columns, then origin name + priority.
    for (const Tuple& full : rows->rows) {
      if (full.size() != schema.arity() + 2) {
        return Status::InvalidArgument(
            "mapping " + mapping.name + " arity mismatch: got " +
            std::to_string(full.size()) + ", want " +
            std::to_string(schema.arity() + 2) + " (target + origin columns)");
      }
      Tuple t(full.begin(), full.begin() + schema.arity());
      std::string origin = full[schema.arity()].AsString();
      int other_priority =
          static_cast<int>(full[schema.arity() + 1].is_null()
                               ? 1 << 20
                               : full[schema.arity() + 1].AsInt64());
      if (origin == name_) continue;  // own data round-trips; nothing to do

      // Reconciliation (§II): key collision against the local version.
      std::string key = LocalKey(mapping.target_relation, t);
      auto existing = local_db_.Get(key);
      if (existing.ok()) {
        Reader r(*existing);
        Tuple mine;
        if (storage::DecodeTuple(&r, &mine).ok() && !(mine == t)) {
          Conflict c;
          c.relation = mapping.target_relation;
          c.mine = mine;
          c.theirs = t;
          c.resolved_mine = MineWins(other_priority);
          report.conflicts_found += 1;
          if (c.resolved_mine) {
            report.conflicts_kept_mine += 1;
            report.conflicts.push_back(std::move(c));
            continue;  // keep local version
          }
          report.conflicts.push_back(std::move(c));
        } else if (existing.ok() && (r.AtEnd())) {
          // identical or undecodable -> fall through to overwrite
        }
      }
      Writer w;
      storage::EncodeTuple(t, &w);
      local_db_.Put(key, w.data()).ok();
      report.tuples_imported += 1;
    }
  }
  return report;
}

}  // namespace orchestra::cdss
