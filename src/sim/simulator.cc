#include "sim/simulator.h"

#include "common/log.h"

namespace orchestra::sim {

Simulator::EventId Simulator::Schedule(SimTime at, Callback cb) {
  if (at < now_) at = now_;
  EventId id = next_id_++;
  heap_.push(Event{at, id, std::move(cb)});
  return id;
}

void Simulator::Cancel(EventId id) { cancelled_.insert(id); }

bool Simulator::Step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    ORC_CHECK(ev.at >= now_, "event in the past");
    now_ = ev.at;
    ++fired_;
    ev.cb();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (cancelled_.count(top.id)) {
      cancelled_.erase(top.id);
      heap_.pop();
      continue;
    }
    if (top.at > t) break;
    Step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace orchestra::sim
