#include "sim/simulator.h"

#include "common/log.h"

namespace orchestra::sim {

Simulator::EventId Simulator::Schedule(SimTime at, Callback cb) {
  if (at < now_) at = now_;
  EventId id = next_id_++;
  heap_.push(Event{at, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void Simulator::Cancel(EventId id) { callbacks_.erase(id); }

bool Simulator::Step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    ORC_CHECK(ev.at >= now_, "event in the past");
    now_ = ev.at;
    ++fired_;
    digest_ = (digest_ ^ static_cast<uint64_t>(ev.at)) * 0x100000001b3ull;
    digest_ = (digest_ ^ ev.id) * 0x100000001b3ull;
    cb();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (callbacks_.find(top.id) == callbacks_.end()) {
      heap_.pop();  // cancelled
      continue;
    }
    if (top.at > t) break;
    Step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace orchestra::sim
