// Deterministic discrete-event simulator. This is the substitute for the
// paper's physical 16-node cluster / EC2 deployment (see DESIGN.md §2): all
// distributed components run as event handlers against a simulated clock, and
// "execution time" of an experiment is the simulated makespan.
#ifndef ORCHESTRA_SIM_SIMULATOR_H_
#define ORCHESTRA_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace orchestra::sim {

/// Simulated time in microseconds since simulation start.
using SimTime = int64_t;

constexpr SimTime kMicrosPerMilli = 1000;
constexpr SimTime kMicrosPerSec = 1000 * 1000;

/// Event-queue simulator. Events with equal timestamps fire in scheduling
/// order (FIFO), making runs fully deterministic.
class Simulator {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Schedules `cb` at absolute time `at` (clamped to now if in the past).
  EventId Schedule(SimTime at, Callback cb);
  /// Schedules `cb` `delay` microseconds from now.
  EventId ScheduleAfter(SimTime delay, Callback cb) { return Schedule(now_ + delay, std::move(cb)); }
  /// Cancels a pending event; no-op if already fired or cancelled. The
  /// callback (and everything it captured) is released immediately — a
  /// cancelled far-future deadline must not pin memory until its timestamp.
  void Cancel(EventId id);

  /// Runs the next event. Returns false when the queue is empty.
  bool Step();
  /// Runs until the queue drains.
  void Run();
  /// Runs events with time <= t, then sets now to t.
  void RunUntil(SimTime t);

  SimTime now() const { return now_; }
  size_t pending_events() const { return callbacks_.size(); }
  uint64_t events_fired() const { return fired_; }
  /// Running FNV-1a digest of every fired event's (at, id) pair. Two runs of
  /// the same scenario are event-for-event identical iff their digests match
  /// at every observation point — the churn harness's determinism check.
  uint64_t trace_digest() const { return digest_; }

 private:
  // The heap orders (at, id) pairs; callbacks live in a side table so that
  // Cancel() can release a closure the moment it is cancelled. Heap entries
  // whose id is no longer in the table are skipped on pop.
  struct Event {
    SimTime at;
    EventId id;
    bool operator>(const Event& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  SimTime now_ = 0;
  EventId next_id_ = 1;
  uint64_t fired_ = 0;
  uint64_t digest_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
};

}  // namespace orchestra::sim

#endif  // ORCHESTRA_SIM_SIMULATOR_H_
