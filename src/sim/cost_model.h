// CPU cost constants for the simulated nodes, calibrated so that absolute
// runtimes land in the same order of magnitude as the paper's measurements
// (single-digit seconds for TPC-H SF 0.5 on 1-16 nodes). Shapes — speedup
// curves, crossovers — are insensitive to the absolute values as long as the
// relative weights of scan / hash / network work are sane.
#ifndef ORCHESTRA_SIM_COST_MODEL_H_
#define ORCHESTRA_SIM_COST_MODEL_H_

#include <cstdint>

#include "sim/simulator.h"

namespace orchestra::sim {

/// Per-operation CPU costs (microseconds at a node of speed 1.0). These model
/// a mid-2000s 2.4GHz Xeon running a JVM engine, per §VI.
struct CostModel {
  // Storage layer.
  double tuple_scan_us = 1.3;        // read one tuple from the local store
  double tuple_write_us = 2.2;       // insert one tuple (log append + index)
  double index_entry_us = 0.10;      // handle one tuple-id index entry

  // Query operators.
  double predicate_eval_us = 0.12;   // evaluate one predicate/expression node
  double hash_build_us = 0.55;       // hash-join build, per tuple
  double hash_probe_us = 0.45;       // hash-join probe, per tuple
  double agg_update_us = 0.50;       // aggregate update, per tuple
  double project_us = 0.08;          // copy/narrow one tuple
  double provenance_tag_us = 0.18;   // maintain one tuple's node-set (§V-D)

  // Messaging.
  double marshal_per_tuple_us = 0.45;    // encode/decode per tuple
  double marshal_per_kb_us = 2.4;        // encode/decode per KB of payload
  double compress_per_kb_us = 5.5;       // zlib fast level, per KB
  double msg_fixed_us = 18.0;            // per-message fixed dispatch cost

  static const CostModel& Default() {
    static const CostModel kModel;
    return kModel;
  }
};

}  // namespace orchestra::sim

#endif  // ORCHESTRA_SIM_COST_MODEL_H_
