#include "localstore/local_store.h"

#include "common/log.h"

namespace orchestra::localstore {

LocalStore::LocalStore(StoreOptions options) : options_(options) {}

void LocalStore::Append(bool is_delete, std::string_view key, std::string_view value) {
  log_.push_back(LogRecord{is_delete, std::string(key), std::string(value)});
  stats_.log_records += 1;
  stats_.log_bytes += key.size() + value.size() + 1;
}

Status LocalStore::Put(std::string_view key, std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("localstore: empty key");
  Append(false, key, value);
  index_[std::string(key)] = log_.size() - 1;
  stats_.puts += 1;
  stats_.live_records = index_.size();
  MaybeCompact();
  return Status::OK();
}

Result<std::string> LocalStore::Get(std::string_view key) const {
  const_cast<StoreStats&>(stats_).gets += 1;
  auto it = index_.find(key);
  if (it == index_.end()) return Status::NotFound("localstore: no such key");
  return log_[it->second].value;
}

bool LocalStore::Contains(std::string_view key) const {
  return index_.find(key) != index_.end();
}

Status LocalStore::Delete(std::string_view key) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    Append(true, key, {});
    index_.erase(it);
    stats_.deletes += 1;
    stats_.live_records = index_.size();
    MaybeCompact();
  }
  return Status::OK();
}

std::string_view LocalStore::Iterator::value() const {
  return store_->log_[it_->second].value;
}

LocalStore::Iterator LocalStore::Seek(std::string_view start) const {
  return Iterator(this, index_.lower_bound(start), index_.end());
}

LocalStore::Iterator LocalStore::SeekPrefix(std::string_view prefix) const {
  return Seek(prefix);
}

bool LocalStore::WithinPrefix(const Iterator& it, std::string_view prefix) {
  return it.Valid() && it.key().substr(0, prefix.size()) == prefix;
}

Status LocalStore::Recover() {
  std::map<std::string, uint64_t, std::less<>> rebuilt;
  for (uint64_t pos = 0; pos < log_.size(); ++pos) {
    const LogRecord& rec = log_[pos];
    if (rec.key.empty()) return Status::Corruption("localstore: empty key in log");
    if (rec.is_delete) {
      rebuilt.erase(rec.key);
    } else {
      rebuilt[rec.key] = pos;
    }
  }
  if (rebuilt != index_) {
    // The replayed state must match the live index exactly; divergence means
    // the log is not the source of truth any more.
    index_ = std::move(rebuilt);
    return Status::Corruption("localstore: index diverged from log replay");
  }
  index_ = std::move(rebuilt);
  stats_.live_records = index_.size();
  return Status::OK();
}

void LocalStore::MaybeCompact() {
  if (log_.size() < options_.compaction_min_records) return;
  double garbage =
      1.0 - static_cast<double>(index_.size()) / static_cast<double>(log_.size());
  if (garbage > options_.compaction_garbage_ratio) Compact();
}

void LocalStore::Compact() {
  std::vector<LogRecord> new_log;
  new_log.reserve(index_.size());
  for (auto& [key, pos] : index_) {
    new_log.push_back(std::move(log_[pos]));
    pos = new_log.size() - 1;
  }
  log_ = std::move(new_log);
  stats_.compactions += 1;
}

}  // namespace orchestra::localstore
