#include "localstore/local_store.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "common/log.h"

namespace orchestra::localstore {
namespace {

// 64-bit key hash: 8-byte chunks folded through a murmur3-style finalizer.
// Not cryptographic — just uniform enough for open addressing; placement
// hashing stays SHA-1 (hash/sha1.h).
inline uint64_t MixBits(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline uint64_t HashKey(std::string_view s) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ (s.size() * 0xff51afd7ed558ccdULL);
  while (s.size() >= 8) {
    uint64_t k;
    std::memcpy(&k, s.data(), 8);
    h = MixBits(h ^ k);
    s.remove_prefix(8);
  }
  if (!s.empty()) {
    uint64_t k = 0;
    std::memcpy(&k, s.data(), s.size());
    h = MixBits(h ^ k);
  }
  return h;
}

constexpr size_t kMinTableCapacity = 1024;

}  // namespace

// ---------------------------------------------------------------------------
// Arena

const char* LocalStore::Arena::Append(std::string_view a, std::string_view b) {
  size_t n = a.size() + b.size();
  if (chunks_.empty() || chunks_.back().cap - chunks_.back().used < n) {
    Chunk c;
    c.cap = std::max(kChunkBytes, n);
    c.data = std::make_unique<char[]>(c.cap);
    chunks_.push_back(std::move(c));
  }
  Chunk& c = chunks_.back();
  char* dst = c.data.get() + c.used;
  std::memcpy(dst, a.data(), a.size());
  if (!b.empty()) std::memcpy(dst + a.size(), b.data(), b.size());
  c.used += n;
  bytes_ += n;
  return dst;
}

// ---------------------------------------------------------------------------
// Robin-hood hash index

size_t LocalStore::HashFind(uint64_t hash, std::string_view key,
                            HashMiss* miss) const {
  if (htable_.empty()) {
    if (miss != nullptr) *miss = HashMiss{0, 0};
    return kNoSlot;
  }
  size_t mask = htable_.size() - 1;
  auto tag = static_cast<uint32_t>(hash);
  size_t i = tag & mask;
  size_t dist = 0;
  while (true) {
    const HashSlot& slot = htable_[i];
    // Robin-hood invariant: entries along a probe chain never get poorer;
    // meeting an empty slot or one closer to home means the key is absent.
    size_t slot_dist =
        (i + htable_.size() - (static_cast<size_t>(slot.tag) & mask)) & mask;
    if (slot.idx1 == 0 || slot_dist < dist) {
      if (miss != nullptr) *miss = HashMiss{i, dist};
      return kNoSlot;
    }
    if (slot.tag == tag && log_[live_[slot.idx1 - 1]].key() == key) return i;
    i = (i + 1) & mask;
    ++dist;
  }
}

void LocalStore::HashInsertAt(HashMiss at, uint64_t hash, uint32_t live_idx) {
  size_t mask = htable_.size() - 1;
  size_t i = at.index;
  size_t dist = at.dist;
  HashSlot carry{static_cast<uint32_t>(hash), live_idx + 1};
  while (true) {
    HashSlot& slot = htable_[i];
    if (slot.idx1 == 0) {
      slot = carry;
      ++hcount_;
      return;
    }
    size_t slot_dist =
        (i + htable_.size() - (static_cast<size_t>(slot.tag) & mask)) & mask;
    if (slot_dist < dist) {
      std::swap(carry, slot);
      dist = slot_dist;
    }
    i = (i + 1) & mask;
    ++dist;
  }
}

void LocalStore::HashInsert(uint64_t hash, uint32_t live_idx) {
  HashGrowIfNeeded();
  size_t home = static_cast<uint32_t>(hash) & (htable_.size() - 1);
  HashInsertAt(HashMiss{home, 0}, hash, live_idx);
}

void LocalStore::HashEraseAt(size_t idx) {
  size_t mask = htable_.size() - 1;
  size_t i = idx;
  while (true) {
    size_t next = (i + 1) & mask;
    const HashSlot& n = htable_[next];
    if (n.idx1 == 0 ||
        ((next + htable_.size() - (static_cast<size_t>(n.tag) & mask)) & mask) ==
            0) {
      break;
    }
    htable_[i] = htable_[next];
    i = next;
  }
  htable_[i] = HashSlot{};
  --hcount_;
}

bool LocalStore::HashGrowIfNeeded() {
  // Grow at 7/8 load; robin-hood probing stays short well past 3/4.
  if (!htable_.empty() && (hcount_ + 1) * 8 <= htable_.size() * 7) return false;
  size_t new_cap = htable_.empty() ? kMinTableCapacity : htable_.size() * 2;
  std::vector<HashSlot> old = std::move(htable_);
  htable_.assign(new_cap, HashSlot{});
  size_t old_count = hcount_;
  hcount_ = 0;
  size_t mask = new_cap - 1;
  for (const HashSlot& slot : old) {
    if (slot.idx1 != 0) {
      HashInsertAt(HashMiss{static_cast<size_t>(slot.tag) & mask, 0}, slot.tag,
                   slot.idx1 - 1);
    }
  }
  ORC_CHECK(hcount_ == old_count, "localstore: hash rebuild lost entries");
  return true;
}

// ---------------------------------------------------------------------------
// Insert-only B+tree over arena key views

LocalStore::Leaf* LocalStore::NewLeaf() {
  leaves_.emplace_back();
  return &leaves_.back();
}

LocalStore::Inner* LocalStore::NewInner() {
  inners_.emplace_back();
  return &inners_.back();
}

void LocalStore::TreeClear() {
  leaves_.clear();
  inners_.clear();
  root_ = nullptr;
  root_is_leaf_ = true;
}

LocalStore::KeyRef LocalStore::MakeKeyRef(std::string_view key) {
  KeyRef r;
  std::memset(r.pfx, 0, sizeof(r.pfx));
  std::memcpy(r.pfx, key.data(), std::min(key.size(), sizeof(r.pfx)));
  r.full = key;
  return r;
}

int LocalStore::CmpKey(const KeyRef& a, const KeyRef& b) {
  // Zero-padding keeps prefix order consistent with full lexicographic
  // order: a nonzero prefix difference is always the true difference.
  int c = std::memcmp(a.pfx, b.pfx, sizeof(a.pfx));
  if (c != 0) return c;
  return a.full.compare(b.full);
}

int LocalStore::RouteChild(const Inner* in, const KeyRef& key, bool upper) {
  int lo = 0, hi = in->n - 1;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    int c = CmpKey(in->sep[mid], key);
    bool go_right = upper ? (c <= 0) : (c < 0);
    if (go_right) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void LocalStore::TreeInsert(std::string_view key, uint32_t live_idx) {
  KeyRef kref = MakeKeyRef(key);
  if (root_ == nullptr) {
    Leaf* l = NewLeaf();
    l->e[0] = LeafEntry{kref, live_idx};
    l->n = 1;
    root_ = l;
    root_is_leaf_ = true;
    return;
  }

  struct PathEntry {
    Inner* node;
    int child;
  };
  PathEntry path[kMaxDepth];
  int depth = 0;
  void* cur = root_;
  bool is_leaf = root_is_leaf_;
  while (!is_leaf) {
    Inner* in = static_cast<Inner*>(cur);
    int ci = RouteChild(in, kref, /*upper=*/true);
    ORC_CHECK(depth < kMaxDepth, "localstore: tree too deep");
    path[depth++] = PathEntry{in, ci};
    cur = in->child[ci];
    is_leaf = in->leaf_children;
  }
  Leaf* leaf = static_cast<Leaf*>(cur);

  // In-leaf position: after any equal keys (only one can be live; order
  // among duplicates is irrelevant to iteration, which skips dead slots).
  int pos = static_cast<int>(
      std::upper_bound(leaf->e, leaf->e + leaf->n, kref,
                       [](const KeyRef& k, const LeafEntry& e) {
                         return CmpKey(k, e.key) < 0;
                       }) -
      leaf->e);

  if (leaf->n < kLeafCap) {
    std::memmove(&leaf->e[pos + 1], &leaf->e[pos],
                 sizeof(LeafEntry) * static_cast<size_t>(leaf->n - pos));
    leaf->e[pos] = LeafEntry{kref, live_idx};
    ++leaf->n;
    return;
  }

  // Leaf split: assemble the kLeafCap+1 entries, give the right half to a
  // new leaf, and push the right leaf's first key up as separator.
  LeafEntry tmp[kLeafCap + 1];
  std::memcpy(tmp, leaf->e, sizeof(LeafEntry) * static_cast<size_t>(pos));
  tmp[pos] = LeafEntry{kref, live_idx};
  std::memcpy(&tmp[pos + 1], &leaf->e[pos],
              sizeof(LeafEntry) * static_cast<size_t>(kLeafCap - pos));
  Leaf* right = NewLeaf();
  constexpr int kLeft = (kLeafCap + 1) / 2;
  constexpr int kRight = kLeafCap + 1 - kLeft;
  std::memcpy(leaf->e, tmp, sizeof(LeafEntry) * kLeft);
  leaf->n = kLeft;
  std::memcpy(right->e, &tmp[kLeft], sizeof(LeafEntry) * kRight);
  right->n = kRight;
  right->next = leaf->next;
  leaf->next = right;

  KeyRef up_sep = right->e[0].key;
  void* up_child = right;

  // Propagate the split upward.
  while (depth > 0) {
    PathEntry pe = path[--depth];
    Inner* in = pe.node;
    int ci = pe.child;  // new child goes at ci+1, separator at ci
    if (in->n < kInnerCap) {
      std::memmove(&in->sep[ci + 1], &in->sep[ci],
                   sizeof(KeyRef) * static_cast<size_t>(in->n - 1 - ci));
      std::memmove(&in->child[ci + 2], &in->child[ci + 1],
                   sizeof(void*) * static_cast<size_t>(in->n - 1 - ci));
      in->sep[ci] = up_sep;
      in->child[ci + 1] = up_child;
      ++in->n;
      return;
    }
    // Inner split via temp arrays (kInnerCap+1 children, kInnerCap seps).
    void* tchild[kInnerCap + 1];
    KeyRef tsep[kInnerCap];
    std::memcpy(tchild, in->child, sizeof(void*) * static_cast<size_t>(ci + 1));
    tchild[ci + 1] = up_child;
    std::memcpy(&tchild[ci + 2], &in->child[ci + 1],
                sizeof(void*) * static_cast<size_t>(kInnerCap - 1 - ci));
    for (int i = 0; i < ci; ++i) tsep[i] = in->sep[i];
    tsep[ci] = up_sep;
    for (int i = ci; i < kInnerCap - 1; ++i) tsep[i + 1] = in->sep[i];

    constexpr int kLeftCh = (kInnerCap + 1) / 2;
    constexpr int kRightCh = kInnerCap + 1 - kLeftCh;
    Inner* rin = NewInner();
    rin->leaf_children = in->leaf_children;
    in->n = kLeftCh;
    std::memcpy(in->child, tchild, sizeof(void*) * kLeftCh);
    for (int i = 0; i < kLeftCh - 1; ++i) in->sep[i] = tsep[i];
    rin->n = kRightCh;
    std::memcpy(rin->child, &tchild[kLeftCh], sizeof(void*) * kRightCh);
    for (int i = 0; i < kRightCh - 1; ++i) rin->sep[i] = tsep[kLeftCh + i];
    up_sep = tsep[kLeftCh - 1];
    up_child = rin;
  }

  // The root itself split: grow the tree by one level.
  Inner* nr = NewInner();
  nr->leaf_children = root_is_leaf_;
  nr->child[0] = root_;
  nr->child[1] = up_child;
  nr->sep[0] = up_sep;
  nr->n = 2;
  root_ = nr;
  root_is_leaf_ = false;
}

std::pair<const LocalStore::Leaf*, int> LocalStore::TreeLowerBound(
    std::string_view key) const {
  if (root_ == nullptr) return {nullptr, 0};
  KeyRef kref = MakeKeyRef(key);
  const void* cur = root_;
  bool is_leaf = root_is_leaf_;
  while (!is_leaf) {
    const Inner* in = static_cast<const Inner*>(cur);
    int ci = RouteChild(in, kref, /*upper=*/false);
    cur = in->child[ci];
    is_leaf = in->leaf_children;
  }
  const Leaf* leaf = static_cast<const Leaf*>(cur);
  int pos = static_cast<int>(
      std::lower_bound(leaf->e, leaf->e + leaf->n, kref,
                       [](const LeafEntry& e, const KeyRef& k) {
                         return CmpKey(e.key, k) < 0;
                       }) -
      leaf->e);
  return {leaf, pos};
}

// ---------------------------------------------------------------------------
// Iterator

void LocalStore::Iterator::Normalize() {
  while (leaf_ != nullptr) {
    if (idx_ >= leaf_->n) {
      leaf_ = leaf_->next;
      idx_ = 0;
      continue;
    }
    const LeafEntry& e = leaf_->e[idx_];
    if (store_->live_[e.live_idx] == kDeadPos) {
      ++idx_;
      continue;
    }
    if (!ub_.empty() && e.key.full >= ub_) {
      leaf_ = nullptr;
      break;
    }
    break;
  }
}

std::string_view LocalStore::Iterator::value() const {
  return store_->log_[store_->live_[leaf_->e[idx_].live_idx]].value();
}

// ---------------------------------------------------------------------------
// Store operations

LocalStore::LocalStore(StoreOptions options) : options_(std::move(options)) {
  if (options_.wal_backend != nullptr) {
    wal_ = std::make_unique<wal::Wal>(options_.wal_backend, options_.wal);
  }
}

uint64_t LocalStore::AppendRecord(bool is_delete, std::string_view key,
                                  std::string_view value, bool count_stats) {
  Slot slot;
  slot.data = arena_.Append(key, value);
  slot.key_len = static_cast<uint32_t>(key.size());
  slot.value_len = static_cast<uint32_t>(value.size());
  slot.is_delete = is_delete;
  log_.push_back(slot);
  if (count_stats) {
    stats_.log_records += 1;
    stats_.log_bytes += key.size() + value.size() + 1;
  }
  return log_.size() - 1;
}

Status LocalStore::Put(std::string_view key, std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("localstore: empty key");
  if (wal_ != nullptr) {
    // Write-ahead: the record is durable (per the sync cadence) before any
    // in-memory index observes it.
    ORC_RETURN_IF_ERROR(wal_->AppendPut(key, value));
    ++appends_since_checkpoint_;
  }
  uint64_t h = HashKey(key);
  HashMiss miss;
  size_t hidx = HashFind(h, key, &miss);
  uint64_t pos = AppendRecord(false, key, value);
  if (hidx != kNoSlot) {
    live_[htable_[hidx].idx1 - 1] = pos;  // overwrite: repoint the live slot
  } else {
    live_.push_back(pos);
    auto live_idx = static_cast<uint32_t>(live_.size() - 1);
    TreeInsert(log_[pos].key(), live_idx);
    if (HashGrowIfNeeded()) {
      HashInsert(h, live_idx);  // table replaced; the miss point is stale
    } else {
      HashInsertAt(miss, h, live_idx);  // continue from the probe's stop point
    }
  }
  stats_.puts += 1;
  stats_.live_records = hcount_;
  MaybeCompact();
  MaybeCheckpoint();
  return Status::OK();
}

Result<std::string> LocalStore::Get(std::string_view key) const {
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  size_t hidx = HashFind(HashKey(key), key);
  if (hidx == kNoSlot) return Status::NotFound("localstore: no such key");
  return std::string(log_[live_[htable_[hidx].idx1 - 1]].value());
}

Result<std::string_view> LocalStore::GetView(std::string_view key) const {
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  size_t hidx = HashFind(HashKey(key), key);
  if (hidx == kNoSlot) return Status::NotFound("localstore: no such key");
  return log_[live_[htable_[hidx].idx1 - 1]].value();
}

bool LocalStore::Contains(std::string_view key) const {
  return HashFind(HashKey(key), key) != kNoSlot;
}

Status LocalStore::Delete(std::string_view key) {
  uint64_t h = HashKey(key);
  size_t hidx = HashFind(h, key);
  if (hidx != kNoSlot) {
    if (wal_ != nullptr) {
      ORC_RETURN_IF_ERROR(wal_->AppendDelete(key));
      ++appends_since_checkpoint_;
    }
    AppendRecord(true, key, {});
    live_[htable_[hidx].idx1 - 1] = kDeadPos;  // the tree skips dead slots
    HashEraseAt(hidx);
    stats_.deletes += 1;
    stats_.live_records = hcount_;
    MaybeCompact();
    MaybeCheckpoint();
  }
  return Status::OK();
}

LocalStore::Iterator LocalStore::Seek(std::string_view start) const {
  auto [leaf, idx] = TreeLowerBound(start);
  return Iterator(this, leaf, idx, std::string());
}

std::string LocalStore::PrefixUpperBound(std::string_view prefix) {
  std::string ub(prefix);
  while (!ub.empty() && static_cast<unsigned char>(ub.back()) == 0xFF) {
    ub.pop_back();
  }
  if (ub.empty()) return ub;  // no upper bound exists
  ub.back() = static_cast<char>(static_cast<unsigned char>(ub.back()) + 1);
  return ub;
}

LocalStore::Iterator LocalStore::SeekPrefix(std::string_view prefix) const {
  auto [leaf, idx] = TreeLowerBound(prefix);
  return Iterator(this, leaf, idx, PrefixUpperBound(prefix));
}

bool LocalStore::WithinPrefix(const Iterator& it, std::string_view prefix) {
  return it.Valid() && it.key().substr(0, prefix.size()) == prefix;
}

void LocalStore::IndexLiveRecord(uint64_t pos) {
  live_.push_back(pos);
  auto live_idx = static_cast<uint32_t>(live_.size() - 1);
  std::string_view key = log_[pos].key();
  TreeInsert(key, live_idx);
  HashInsert(HashKey(key), live_idx);
}

void LocalStore::ReplayPut(std::string_view key, std::string_view value) {
  uint64_t h = HashKey(key);
  HashMiss miss;
  size_t hidx = HashFind(h, key, &miss);
  uint64_t pos = AppendRecord(false, key, value, /*count_stats=*/false);
  if (hidx != kNoSlot) {
    live_[htable_[hidx].idx1 - 1] = pos;
  } else {
    live_.push_back(pos);
    auto live_idx = static_cast<uint32_t>(live_.size() - 1);
    TreeInsert(log_[pos].key(), live_idx);
    if (HashGrowIfNeeded()) {
      HashInsert(h, live_idx);
    } else {
      HashInsertAt(miss, h, live_idx);
    }
  }
}

void LocalStore::ReplayDelete(std::string_view key) {
  size_t hidx = HashFind(HashKey(key), key);
  if (hidx == kNoSlot) return;  // deleting a key the checkpoint already folded
  live_[htable_[hidx].idx1 - 1] = kDeadPos;
  HashEraseAt(hidx);
}

Status LocalStore::Recover() {
  if (wal_ == nullptr) return RecoverFromMemoryLog();

  // Crash-restart: every in-memory structure is gone; the WAL's checkpoint
  // manifest plus the segments past it are the sole source of truth.
  // Checkpoint entries arrive sorted and unique (fast sorted-index path);
  // tail records replay through the general overwrite/delete path.
  arena_ = Arena();
  log_.clear();
  TreeClear();
  htable_.clear();
  hcount_ = 0;
  live_.clear();

  uint64_t tail_records = 0;
  Status st = wal_->Recover([&](wal::RecordType type, std::string_view key,
                                std::string_view value, bool from_checkpoint) {
    if (from_checkpoint) {
      IndexLiveRecord(AppendRecord(false, key, value, /*count_stats=*/false));
      return;
    }
    ++tail_records;
    if (type == wal::RecordType::kDelete) {
      ReplayDelete(key);
    } else {
      ReplayPut(key, value);
    }
  });
  stats_.replayed_records += tail_records;
  stats_.live_records = hcount_;
  stats_.segments_retired = wal_->stats().segments_retired;
  appends_since_checkpoint_ = tail_records;
  return st;
}

Status LocalStore::RecoverFromMemoryLog() {
  // Replay the log into a key -> position map (views into the live arena).
  std::map<std::string_view, uint64_t> rebuilt;
  for (uint64_t pos = 0; pos < log_.size(); ++pos) {
    const Slot& rec = log_[pos];
    if (rec.key_len == 0) return Status::Corruption("localstore: empty key in log");
    if (rec.is_delete) {
      rebuilt.erase(rec.key());
    } else {
      rebuilt[rec.key()] = pos;
    }
  }
  // The replayed state must match the live indexes exactly; divergence
  // means the log is not the source of truth any more.
  bool diverged = rebuilt.size() != hcount_;
  if (!diverged) {
    auto it = Seek("");
    for (const auto& [key, pos] : rebuilt) {
      if (!it.Valid() || it.key() != key || live_[it.leaf_->e[it.idx_].live_idx] != pos) {
        diverged = true;
        break;
      }
      it.Next();
    }
    if (!diverged && it.Valid()) diverged = true;
  }

  // Rebuild both indexes from the replayed state.
  TreeClear();
  htable_.clear();
  hcount_ = 0;
  live_.clear();
  for (const auto& [key, pos] : rebuilt) IndexLiveRecord(pos);
  stats_.live_records = hcount_;
  if (diverged) {
    return Status::Corruption("localstore: index diverged from log replay");
  }
  return Status::OK();
}

void LocalStore::MaybeCompact() {
  if (log_.size() < options_.compaction_min_records) return;
  if (garbage_ratio() > options_.compaction_garbage_ratio) Compact();
}

Status LocalStore::Checkpoint() {
  if (wal_ == nullptr) return Status::OK();
  auto it = Seek("");
  Status st = wal_->WriteCheckpoint(
      [&](std::string_view* key, std::string_view* value) {
        if (!it.Valid()) return false;
        *key = it.key();
        *value = it.value();
        it.Next();
        return true;
      });
  // Reset the cadence either way: a failed publish (injected crash window)
  // must not retry on the very next Put — recovery handles it.
  appends_since_checkpoint_ = 0;
  if (!st.ok()) return st;
  stats_.checkpoints += 1;
  stats_.segments_retired = wal_->stats().segments_retired;
  return st;
}

void LocalStore::MaybeCheckpoint() {
  if (wal_ == nullptr || options_.checkpoint_every_records == 0) return;
  if (appends_since_checkpoint_ < options_.checkpoint_every_records) return;
  Checkpoint().ok();  // an injected publish failure is surfaced via stats
}

void LocalStore::Compact() {
  // Rewrite live records into a fresh arena in key order (sequential reads
  // after compaction walk the arena forward), then rebuild both indexes.
  // Invalidates all outstanding views and iterators.
  Arena new_arena;
  std::vector<Slot> new_log;
  new_log.reserve(hcount_);
  for (auto it = Seek(""); it.Valid(); it.Next()) {
    Slot slot;
    std::string_view key = it.key();
    std::string_view value = it.value();
    slot.data = new_arena.Append(key, value);
    slot.key_len = static_cast<uint32_t>(key.size());
    slot.value_len = static_cast<uint32_t>(value.size());
    slot.is_delete = false;
    new_log.push_back(slot);
  }
  arena_ = std::move(new_arena);
  log_ = std::move(new_log);
  TreeClear();
  htable_.clear();
  hcount_ = 0;
  live_.clear();
  for (uint64_t pos = 0; pos < log_.size(); ++pos) IndexLiveRecord(pos);
  stats_.compactions += 1;
}

}  // namespace orchestra::localstore
