// LocalStore: the per-node embedded ordered key/value store. The paper's
// prototype used BerkeleyDB Java Edition for "persistent storage of data"
// (§VI); this is our from-scratch substitute with the same contract: an
// ordered map of byte-string keys to byte-string values with range scans.
//
// Structure is log-structured (append-only record log + in-memory ordered
// index), in the spirit of the log-structured filesystems that inspired the
// paper's versioned page scheme (§IV): writes append; the index points at
// live records; compaction reclaims superseded records; Recover() rebuilds
// the index by replaying the log.
#ifndef ORCHESTRA_LOCALSTORE_LOCAL_STORE_H_
#define ORCHESTRA_LOCALSTORE_LOCAL_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace orchestra::localstore {

struct StoreStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t log_records = 0;       // total records ever appended
  uint64_t log_bytes = 0;         // total bytes ever appended
  uint64_t live_records = 0;      // records reachable from the index
  uint64_t compactions = 0;
};

struct StoreOptions {
  /// Compact when dead records exceed this fraction of the log.
  double compaction_garbage_ratio = 0.5;
  /// Do not compact below this many records.
  uint64_t compaction_min_records = 4096;
};

class LocalStore {
 public:
  explicit LocalStore(StoreOptions options = {});

  /// Inserts or overwrites.
  Status Put(std::string_view key, std::string_view value);
  /// Fails with NotFound if absent.
  Result<std::string> Get(std::string_view key) const;
  bool Contains(std::string_view key) const;
  /// Idempotent; OK even if absent.
  Status Delete(std::string_view key);

  /// Ordered forward iteration over live entries.
  class Iterator {
   public:
    bool Valid() const { return it_ != end_; }
    void Next() { ++it_; }
    std::string_view key() const { return it_->first; }
    std::string_view value() const;

   private:
    friend class LocalStore;
    using MapIt = std::map<std::string, uint64_t, std::less<>>::const_iterator;
    Iterator(const LocalStore* store, MapIt it, MapIt end)
        : store_(store), it_(it), end_(end) {}
    const LocalStore* store_;
    MapIt it_;
    MapIt end_;
  };

  /// Iterator positioned at the first key >= `start`.
  Iterator Seek(std::string_view start) const;
  /// Iterator over keys with the given prefix (end bound computed).
  Iterator SeekPrefix(std::string_view prefix) const;
  /// True while `it` is still within `prefix`.
  static bool WithinPrefix(const Iterator& it, std::string_view prefix);

  size_t entry_count() const { return index_.size(); }
  const StoreStats& stats() const { return stats_; }

  /// Discards the index and rebuilds it by replaying the log. Verifies the
  /// log-structured invariant; exposed for tests and failure drills.
  Status Recover();

  /// Forces a compaction pass regardless of the garbage ratio.
  void Compact();

 private:
  struct LogRecord {
    bool is_delete;
    std::string key;
    std::string value;
  };

  void MaybeCompact();
  void Append(bool is_delete, std::string_view key, std::string_view value);

  StoreOptions options_;
  std::vector<LogRecord> log_;
  // Index maps key -> position in log_ of the live record.
  std::map<std::string, uint64_t, std::less<>> index_;
  StoreStats stats_;
};

}  // namespace orchestra::localstore

#endif  // ORCHESTRA_LOCALSTORE_LOCAL_STORE_H_
