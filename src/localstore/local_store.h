// LocalStore: the per-node embedded ordered key/value store. The paper's
// prototype used BerkeleyDB Java Edition for "persistent storage of data"
// (§VI); this is our from-scratch substitute with the same contract: an
// ordered map of byte-string keys to byte-string values with range scans.
//
// Structure is log-structured (append-only record log + in-memory indexes),
// in the spirit of the log-structured filesystems that inspired the paper's
// versioned page scheme (§IV): writes append; the indexes point at live
// records; compaction reclaims superseded records; Recover() rebuilds the
// indexes by replaying the log.
//
// Layout, tuned for the publish/scan hot paths:
//   * record bytes live in a chunked append-only arena — one memcpy per
//     write, no per-record heap allocations, and record locations are stable
//     until the next Compact();
//   * a robin-hood open-addressing hash index serves Get/GetView/Contains
//     point lookups and overwrite/delete mutations;
//   * an insert-only B+tree keyed by string_views into the arena provides
//     ordered range/prefix scans. Overwrites never touch the tree (both
//     indexes point into a shared live-slot table), and deletes only mark
//     the slot dead — iterators skip dead entries and compaction rebuilds
//     the tree densely.
//
// Zero-copy reads: GetView() and Iterator::key()/value() return views into
// the arena. Views remain valid until the next mutating call (a Put/Delete
// may trigger compaction, which rewrites the arena); copy before mutating.
#ifndef ORCHESTRA_LOCALSTORE_LOCAL_STORE_H_
#define ORCHESTRA_LOCALSTORE_LOCAL_STORE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "wal/wal.h"

namespace orchestra::localstore {

struct StoreStats {
  uint64_t puts = 0;
  /// Bumped on the const read path (Get/GetView) with relaxed atomics: the
  /// read path must stay safe under concurrent read-only access (the TSan
  /// smoke gate; ROADMAP real-thread concurrency). Mutating counters stay
  /// plain — writes are single-threaded by contract.
  std::atomic<uint64_t> gets{0};
  uint64_t deletes = 0;
  /// Records/bytes appended by MUTATIONS (Put/Delete) only. Recovery replay
  /// re-materializes records into a fresh log without re-counting them here,
  /// so the cumulative write volume stays truthful across restarts and
  /// checkpoint-retired WAL segments are never double-counted.
  uint64_t log_records = 0;
  uint64_t log_bytes = 0;
  uint64_t live_records = 0;      // records reachable from the index
  uint64_t compactions = 0;
  // --- Durability (all zero when no WAL backend is attached) --------------
  uint64_t checkpoints = 0;        // manifests successfully published
  uint64_t segments_retired = 0;   // sealed WAL segments deleted
  uint64_t replayed_records = 0;   // post-checkpoint tail records replayed
                                   // by Recover(), summed across restarts
};

struct StoreOptions {
  /// Compact when dead records exceed this fraction of the log.
  double compaction_garbage_ratio = 0.5;
  /// Do not compact below this many records.
  uint64_t compaction_min_records = 4096;
  /// Durability: when set, every mutation is framed into a segmented WAL on
  /// this backend and Recover() rebuilds from the newest checkpoint plus the
  /// tail segments past it. Null keeps the in-memory-only behavior (unit
  /// tests; Recover() then replays the in-memory log as a drill).
  std::shared_ptr<wal::Backend> wal_backend;
  /// WAL tuning (segment size, sync cadence); used only with wal_backend.
  wal::WalOptions wal;
  /// Publish a checkpoint after this many WAL appends since the last one
  /// (0 = only explicit Checkpoint() calls). Bounds the replay tail.
  uint64_t checkpoint_every_records = 8192;
};

class LocalStore {
 public:
  explicit LocalStore(StoreOptions options = {});

  /// Inserts or overwrites.
  Status Put(std::string_view key, std::string_view value);
  /// Fails with NotFound if absent. Copies; prefer GetView on hot paths.
  Result<std::string> Get(std::string_view key) const;
  /// Zero-copy read: the view aliases the record log and is valid until the
  /// next mutating call on this store.
  Result<std::string_view> GetView(std::string_view key) const;
  bool Contains(std::string_view key) const;
  /// Idempotent; OK even if absent.
  Status Delete(std::string_view key);

 private:
  // B+tree nodes; declared before Iterator so it can hold a leaf cursor.
  static constexpr int kLeafCap = 64;
  static constexpr int kInnerCap = 64;
  static constexpr int kMaxDepth = 16;
  static constexpr uint64_t kDeadPos = static_cast<uint64_t>(-1);

  /// Node-local key reference: the first 16 bytes inline (zero-padded) plus
  /// the full arena view. Comparisons touch the node's own cache lines and
  /// only dereference the arena on a prefix tie, which keeps B+tree binary
  /// searches from paying one cache miss per probed key.
  struct KeyRef {
    char pfx[16];
    std::string_view full;
  };
  struct LeafEntry {
    KeyRef key;
    uint32_t live_idx = 0;
  };
  struct Leaf {
    int n = 0;
    LeafEntry e[kLeafCap];
    Leaf* next = nullptr;
  };
  struct Inner {
    int n = 0;  // number of children
    KeyRef sep[kInnerCap - 1];
    void* child[kInnerCap];
    bool leaf_children = true;
  };

 public:
  /// Ordered forward iteration over live entries, up to an end bound.
  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    void Next() {
      ++idx_;
      Normalize();
    }
    std::string_view key() const { return leaf_->e[idx_].key.full; }
    std::string_view value() const;

   private:
    friend class LocalStore;
    Iterator(const LocalStore* store, const Leaf* leaf, int idx, std::string ub)
        : store_(store), leaf_(leaf), idx_(idx), ub_(std::move(ub)) {
      Normalize();
    }
    void Normalize();  // skip dead entries, hop leaves, apply the end bound

    const LocalStore* store_;
    const Leaf* leaf_;
    int idx_;
    std::string ub_;  // exclusive end bound; empty = unbounded
  };

  /// Iterator positioned at the first key >= `start` (no end bound).
  Iterator Seek(std::string_view start) const;
  /// Iterator over exactly the keys with the given prefix: positioned at the
  /// first such key, and Valid() turns false past the computed end bound
  /// (the smallest key greater than every key with the prefix).
  Iterator SeekPrefix(std::string_view prefix) const;
  /// True while `it` is valid and still within `prefix`. Compatibility shim:
  /// with SeekPrefix's end bound this is equivalent to it.Valid().
  static bool WithinPrefix(const Iterator& it, std::string_view prefix);

  /// Smallest string greater than every string with the given prefix, or ""
  /// if no such bound exists (prefix is empty or all-0xFF).
  static std::string PrefixUpperBound(std::string_view prefix);

  size_t entry_count() const { return hcount_; }
  /// Records currently in the log, live + dead. Shrinks on compaction and on
  /// a checkpointed recovery (retired WAL segments drop out entirely), so it
  /// is the CURRENT footprint, never the cumulative write volume.
  size_t log_size() const { return log_.size(); }
  const StoreStats& stats() const { return stats_; }
  /// Bytes currently held by the record arena (live + garbage).
  size_t arena_bytes() const { return arena_.bytes(); }
  /// Fraction of the CURRENT log that is dead (superseded or deleted) — the
  /// compaction trigger's input. Computed over log_size(), which excludes
  /// records reclaimed by compaction and WAL segments retired by
  /// checkpoints, so already-reclaimed space never re-counts as garbage.
  double garbage_ratio() const {
    return log_.empty()
               ? 0.0
               : 1.0 - static_cast<double>(hcount_) / static_cast<double>(log_.size());
  }
  /// Alias of garbage_ratio(); the churn harness asserts this stays below
  /// the compaction threshold plus slack.
  double dead_fraction() const { return garbage_ratio(); }

  /// Crash-recovery entry point. With a WAL backend attached: discards ALL
  /// in-memory state and rebuilds from the newest checkpoint manifest plus a
  /// replay of only the segments past it (tail-only replay; cost is bounded
  /// by checkpoint_every_records, not store size). Without a WAL: discards
  /// the indexes and rebuilds them by replaying the in-memory log, verifying
  /// the log-structured invariant (a failure drill for tests).
  Status Recover();

  /// Publishes a WAL checkpoint now (no-op without a WAL backend): dense
  /// snapshot manifest + retirement of all sealed segments below it.
  Status Checkpoint();

  /// The attached WAL, or null. Exposed for stats and the churn harness's
  /// crash-timing fault hooks.
  wal::Wal* wal() { return wal_.get(); }

  /// Forces a compaction pass regardless of the garbage ratio.
  void Compact();

 private:
  /// Chunked append-only byte storage. Chunks are never reallocated, so
  /// record locations are stable until the arena itself is replaced.
  class Arena {
   public:
    /// Appends a||b contiguously; returns the start of the copy.
    const char* Append(std::string_view a, std::string_view b);
    size_t bytes() const { return bytes_; }

   private:
    static constexpr size_t kChunkBytes = 1 << 18;  // 256 KiB
    struct Chunk {
      std::unique_ptr<char[]> data;
      size_t used = 0;
      size_t cap = 0;
    };
    std::vector<Chunk> chunks_;
    size_t bytes_ = 0;
  };

  /// One record in the log: key then value, contiguous in the arena.
  struct Slot {
    const char* data = nullptr;
    uint32_t key_len = 0;
    uint32_t value_len = 0;
    bool is_delete = false;

    std::string_view key() const { return {data, key_len}; }
    std::string_view value() const { return {data + key_len, value_len}; }
  };

  /// Robin-hood open-addressing slot: probes are kept sorted by distance
  /// from their home bucket (insertion displaces richer entries; erasure
  /// backward-shifts), so lookups terminate early on a poorer slot. 8 bytes
  /// per slot — the 32-bit tag (low hash bits) is enough to derive the home
  /// bucket (capacity <= 2^32) and to filter keys before an arena compare.
  struct HashSlot {
    uint32_t tag = 0;
    uint32_t idx1 = 0;  // live index + 1; 0 marks an empty slot
  };

  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  /// `count_stats` is false on the recovery paths: replayed records land in
  /// the fresh log but must not inflate the cumulative write counters.
  uint64_t AppendRecord(bool is_delete, std::string_view key,
                        std::string_view value, bool count_stats = true);

  /// Slot of `key`, or kNoSlot. When absent and `miss` is non-null, the
  /// probe's stopping point is recorded so HashInsertAt can continue the
  /// robin-hood displacement without re-probing from the home bucket.
  struct HashMiss {
    size_t index = 0;
    size_t dist = 0;
  };
  size_t HashFind(uint64_t hash, std::string_view key,
                  HashMiss* miss = nullptr) const;
  void HashInsert(uint64_t hash, uint32_t live_idx);
  /// Continues an insert from a HashFind miss point (same table state).
  void HashInsertAt(HashMiss at, uint64_t hash, uint32_t live_idx);
  void HashEraseAt(size_t idx);
  /// Returns true if the table grew (invalidating any HashMiss).
  bool HashGrowIfNeeded();

  static KeyRef MakeKeyRef(std::string_view key);
  /// <0, 0, >0 like memcmp; resolves on the inline prefix when possible.
  static int CmpKey(const KeyRef& a, const KeyRef& b);
  /// Index of the child to descend into. `upper`: first separator > key
  /// (insert path — equal keys go right); otherwise first separator >= key
  /// (lower-bound path — equal keys may sit at the end of the left child).
  static int RouteChild(const Inner* in, const KeyRef& key, bool upper);

  Leaf* NewLeaf();
  Inner* NewInner();
  void TreeClear();
  void TreeInsert(std::string_view key, uint32_t live_idx);
  /// Leaf cursor at the first entry (dead or alive) with key >= `key`.
  std::pair<const Leaf*, int> TreeLowerBound(std::string_view key) const;
  /// Appends one live (key, pos) record to the indexes; used by the
  /// rebuild paths (Compact/Recover), which feed keys in sorted order.
  void IndexLiveRecord(uint64_t pos);

  void MaybeCompact();
  void MaybeCheckpoint();
  /// Recovery-replay mutations: like Put/Delete but without WAL echo,
  /// compaction/checkpoint triggers, or cumulative stats counting.
  void ReplayPut(std::string_view key, std::string_view value);
  void ReplayDelete(std::string_view key);
  /// In-memory-only rebuild (the seed behavior; used when wal_ is null).
  Status RecoverFromMemoryLog();

  StoreOptions options_;
  Arena arena_;
  std::vector<Slot> log_;

  // Live-slot table: both indexes address records through it, so an
  // overwrite updates one cell and a delete marks it kDeadPos — neither
  // touches the tree.
  std::vector<uint64_t> live_;

  // Insert-only B+tree over arena key views. Node storage is deque-backed
  // (stable addresses, bulk-freed on clear).
  std::deque<Leaf> leaves_;
  std::deque<Inner> inners_;
  void* root_ = nullptr;
  bool root_is_leaf_ = true;

  std::vector<HashSlot> htable_;
  size_t hcount_ = 0;  // == number of live keys

  // Durability: present iff StoreOptions::wal_backend was set.
  std::unique_ptr<wal::Wal> wal_;
  uint64_t appends_since_checkpoint_ = 0;

  // Mutable so read methods can count reads without a const_cast.
  mutable StoreStats stats_;
};

}  // namespace orchestra::localstore

#endif  // ORCHESTRA_LOCALSTORE_LOCAL_STORE_H_
