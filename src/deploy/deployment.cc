#include "deploy/deployment.h"

#include <algorithm>
#include <variant>

#include "common/log.h"

namespace orchestra::deploy {

Deployment::Deployment(DeploymentOptions options)
    : options_(options),
      network_(&sim_, options.link),
      ring_(options.scheme),
      board_(std::make_shared<storage::SnapshotBoard>()) {
  for (size_t i = 0; i < options_.num_nodes; ++i) {
    std::string name = "node-" + std::to_string(i);
    net::NodeId id = network_.AddNode(name);
    ring_.Join(id, name);
  }
  board_->current = ring_.TakeSnapshot();

  std::vector<net::NodeId> everyone;
  for (const auto& m : board_->current.members()) everyone.push_back(m.node);

  for (size_t i = 0; i < options_.num_nodes; ++i) {
    hosts_.push_back(std::make_unique<net::NodeHost>(&network_, static_cast<net::NodeId>(i)));
    gossip_.push_back(std::make_unique<overlay::GossipService>(
        hosts_.back().get(), everyone, options_.seed + i, options_.gossip_interval_us));
    storage_.push_back(std::make_unique<storage::StorageService>(
        hosts_.back().get(), board_, options_.replication, StoreOptionsForNewNode(),
        options_.gc));
    publishers_.push_back(std::make_unique<storage::Publisher>(
        storage_.back().get(), gossip_.back().get()));
    publishers_.back()->set_gc_keep_epochs(options_.gc_keep_epochs);
    publishers_.back()->set_fence_after_us(options_.fence_after_us);
    query_.push_back(std::make_unique<query::QueryService>(
        hosts_.back().get(), storage_.back().get(), gossip_.back().get(), board_));
    sessions_.push_back(std::make_unique<client::Session>(
        storage_.back().get(), publishers_.back().get(), query_.back().get(),
        options_.session));
    if (options_.start_gossip) gossip_.back()->Start();
  }
}

Deployment::~Deployment() = default;

localstore::StoreOptions Deployment::StoreOptionsForNewNode() {
  localstore::StoreOptions opts = options_.store;
  if (options_.durable_wal && opts.wal_backend == nullptr) {
    wal_backends_.push_back(std::make_shared<wal::MemoryBackend>());
    opts.wal_backend = wal_backends_.back();
  } else {
    // Keep wal_backends_ index-aligned with hosts_ even when durability is
    // off (or the harness injected its own backend through options_.store).
    wal_backends_.push_back(nullptr);
  }
  return opts;
}

void Deployment::KillNode(net::NodeId node, bool update_routing, bool rebalance) {
  network_.KillNode(node);
  // Model the crash at the durability layer too: un-synced WAL bytes are
  // torn away deterministically, so the eventual RestartNode recovers only
  // what the node had made durable.
  if (wal_backends_[node] != nullptr) wal_backends_[node]->Crash();
  if (update_routing) {
    ring_.Leave(node);
    board_->current = ring_.TakeSnapshot();
  }
  // The dead node's own outstanding calls and queries can never complete
  // (its NIC is gone, replies hit a dead handler); every service on it
  // releases that state now — without invoking callbacks, since nothing may
  // execute on a halted node — instead of holding it until teardown.
  hosts_[node]->FailSelf();
  // The dead node's session tickets can likewise never resolve through the
  // publisher (its callbacks were just dropped); fail them at the client
  // layer so callers observe the death instead of hanging.
  sessions_[node]->AbortInFlight(Status::Unavailable("session node killed"));
  if (update_routing && rebalance) {
    for (auto& svc : storage_) {
      if (network_.IsAlive(svc->node())) svc->RebalanceTo(board_->current);
    }
  }
}

void Deployment::RestartNode(net::NodeId node) {
  if (network_.IsAlive(node)) return;
  network_.ReviveNode(node);
  if (!ring_.IsMember(node)) ring_.Join(node, network_.NodeName(node));
  board_->current = ring_.TakeSnapshot();

  // Crash-restart: only durable state survived — with durable_wal, the
  // checkpoint plus synced WAL tail; otherwise the in-process record log.
  // Either way the in-memory indexes are rebuilt from scratch.
  Status rec = storage_[node]->store().Recover();
  ORC_CHECK(rec.ok(), "restart recovery failed");
  storage_[node]->OnRestart();

  // Re-seed every node's gossip peer list (drop notices pruned the returnee
  // from the survivors' lists and vice versa).
  std::vector<net::NodeId> everyone;
  for (const auto& m : board_->current.members()) everyone.push_back(m.node);
  for (size_t i = 0; i < gossip_.size(); ++i) {
    if (network_.IsAlive(static_cast<net::NodeId>(i))) {
      gossip_[i]->ResetPeers(everyone);
    }
  }

  // Both directions of catch-up: survivors push what the returnee missed,
  // the returnee re-serves what the new table assigns elsewhere.
  for (auto& svc : storage_) {
    if (network_.IsAlive(svc->node())) svc->RebalanceTo(board_->current);
  }
}

size_t Deployment::AliveCount() const {
  size_t n = 0;
  for (size_t i = 0; i < hosts_.size(); ++i) {
    if (network_.IsAlive(static_cast<net::NodeId>(i))) ++n;
  }
  return n;
}

size_t Deployment::PendingRpcCount() const {
  size_t total = 0;
  for (const auto& svc : storage_) total += svc->pending_rpc_count();
  return total;
}

net::NodeId Deployment::AddNode() {
  std::string name = "node-" + std::to_string(network_.node_count());
  net::NodeId id = network_.AddNode(name);
  ring_.Join(id, name);

  std::vector<net::NodeId> everyone;
  for (const auto& m : board_->current.members()) everyone.push_back(m.node);
  everyone.push_back(id);
  hosts_.push_back(std::make_unique<net::NodeHost>(&network_, id));
  gossip_.push_back(std::make_unique<overlay::GossipService>(
      hosts_.back().get(), everyone, options_.seed + id, options_.gossip_interval_us));
  storage_.push_back(std::make_unique<storage::StorageService>(
      hosts_.back().get(), board_, options_.replication, StoreOptionsForNewNode(),
      options_.gc));
  publishers_.push_back(std::make_unique<storage::Publisher>(
      storage_.back().get(), gossip_.back().get()));
  publishers_.back()->set_gc_keep_epochs(options_.gc_keep_epochs);
  publishers_.back()->set_fence_after_us(options_.fence_after_us);
  query_.push_back(std::make_unique<query::QueryService>(
      hosts_.back().get(), storage_.back().get(), gossip_.back().get(), board_));
  sessions_.push_back(std::make_unique<client::Session>(
      storage_.back().get(), publishers_.back().get(), query_.back().get(),
      options_.session));

  overlay::RoutingSnapshot next = ring_.TakeSnapshot();
  // Background replication (PAST-style): existing nodes push state the new
  // table says the newcomer (or anyone else) should replicate.
  for (auto& svc : storage_) {
    if (network_.IsAlive(svc->node())) svc->RebalanceTo(next);
  }
  board_->current = next;
  return id;
}

storage::Epoch Deployment::MaxKnownEpoch() const {
  storage::Epoch max_epoch = 0;
  for (size_t i = 0; i < gossip_.size(); ++i) {
    if (network_.IsAlive(static_cast<net::NodeId>(i))) {
      max_epoch = std::max(max_epoch, gossip_[i]->epoch());
    }
  }
  return max_epoch;
}

bool Deployment::RunUntil(const std::function<bool()>& pred, sim::SimTime max_wait) {
  sim::SimTime deadline = sim_.now() + max_wait;
  while (!pred()) {
    if (sim_.now() > deadline) return false;
    if (!sim_.Step()) return pred();
  }
  return true;
}

void Deployment::RunFor(sim::SimTime duration) { sim_.RunUntil(sim_.now() + duration); }

namespace {

// Synchronous wait for the conveniences below: each submits through the
// node's client::Session and steps the simulator until the returned Pending
// resolves. The Pending's state is shared — if RunUntil gives up, a late
// completion still lands in that shared state (and is simply unobserved)
// rather than in a dead stack frame.
template <typename T>
Result<T> AwaitPending(Deployment& dep, const char* what, sim::SimTime max_wait,
                       Pending<T> p) {
  if (!dep.RunUntil([&p] { return p.done(); }, max_wait)) {
    return Status::TimedOut(std::string(what) + " did not complete");
  }
  if (!p.status().ok()) return p.status();
  return std::move(p.value());
}

constexpr sim::SimTime kDefaultWaitUs = Deployment::kDefaultWaitUs;

}  // namespace

Status Deployment::CreateRelation(size_t via_node, const storage::RelationDef& def) {
  return AwaitPending(*this, "CreateRelation", kDefaultWaitUs,
                      session(via_node).CreateRelation(def))
      .status();
}

Result<storage::Epoch> Deployment::Publish(size_t via_node,
                                           storage::UpdateBatch batch) {
  client::Ticket t = session(via_node).Submit(std::move(batch));
  return AwaitPending(*this, "Publish", kDefaultWaitUs, t.epoch);
}

Result<std::vector<storage::Tuple>> Deployment::Retrieve(size_t via_node,
                                                         const std::string& relation,
                                                         storage::Epoch epoch,
                                                         storage::KeyFilter filter) {
  return AwaitPending(*this, "Retrieve", kDefaultWaitUs,
                      session(via_node).Retrieve(relation, epoch, filter));
}

Result<query::QueryResult> Deployment::ExecuteQuery(size_t via_node,
                                                    const query::PhysicalPlan& plan,
                                                    storage::Epoch epoch,
                                                    query::QueryOptions options) {
  return AwaitPending(*this, "query", 600 * sim::kMicrosPerSec,
                      session(via_node).Query(plan, epoch, options));
}

}  // namespace orchestra::deploy
