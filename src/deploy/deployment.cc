#include "deploy/deployment.h"

#include <algorithm>

#include "common/log.h"

namespace orchestra::deploy {

Deployment::Deployment(DeploymentOptions options)
    : options_(options),
      network_(&sim_, options.link),
      ring_(options.scheme),
      board_(std::make_shared<storage::SnapshotBoard>()) {
  for (size_t i = 0; i < options_.num_nodes; ++i) {
    std::string name = "node-" + std::to_string(i);
    net::NodeId id = network_.AddNode(name);
    ring_.Join(id, name);
  }
  board_->current = ring_.TakeSnapshot();

  std::vector<net::NodeId> everyone;
  for (const auto& m : board_->current.members()) everyone.push_back(m.node);

  for (size_t i = 0; i < options_.num_nodes; ++i) {
    hosts_.push_back(std::make_unique<net::NodeHost>(&network_, static_cast<net::NodeId>(i)));
    gossip_.push_back(std::make_unique<overlay::GossipService>(
        hosts_.back().get(), everyone, options_.seed + i, options_.gossip_interval_us));
    storage_.push_back(std::make_unique<storage::StorageService>(
        hosts_.back().get(), board_, options_.replication));
    publishers_.push_back(std::make_unique<storage::Publisher>(
        storage_.back().get(), gossip_.back().get()));
    query_.push_back(std::make_unique<query::QueryService>(
        hosts_.back().get(), storage_.back().get(), gossip_.back().get(), board_));
    if (options_.start_gossip) gossip_.back()->Start();
  }
}

Deployment::~Deployment() = default;

void Deployment::KillNode(net::NodeId node, bool update_routing) {
  network_.KillNode(node);
  if (update_routing) {
    ring_.Leave(node);
    board_->current = ring_.TakeSnapshot();
  }
}

net::NodeId Deployment::AddNode() {
  std::string name = "node-" + std::to_string(network_.node_count());
  net::NodeId id = network_.AddNode(name);
  ring_.Join(id, name);

  std::vector<net::NodeId> everyone;
  for (const auto& m : board_->current.members()) everyone.push_back(m.node);
  everyone.push_back(id);
  hosts_.push_back(std::make_unique<net::NodeHost>(&network_, id));
  gossip_.push_back(std::make_unique<overlay::GossipService>(
      hosts_.back().get(), everyone, options_.seed + id, options_.gossip_interval_us));
  storage_.push_back(std::make_unique<storage::StorageService>(
      hosts_.back().get(), board_, options_.replication));
  publishers_.push_back(std::make_unique<storage::Publisher>(
      storage_.back().get(), gossip_.back().get()));
  query_.push_back(std::make_unique<query::QueryService>(
      hosts_.back().get(), storage_.back().get(), gossip_.back().get(), board_));

  overlay::RoutingSnapshot next = ring_.TakeSnapshot();
  // Background replication (PAST-style): existing nodes push state the new
  // table says the newcomer (or anyone else) should replicate.
  for (auto& svc : storage_) {
    if (network_.IsAlive(svc->node())) svc->RebalanceTo(next);
  }
  board_->current = next;
  return id;
}

storage::Epoch Deployment::MaxKnownEpoch() const {
  storage::Epoch max_epoch = 0;
  for (size_t i = 0; i < gossip_.size(); ++i) {
    if (network_.IsAlive(static_cast<net::NodeId>(i))) {
      max_epoch = std::max(max_epoch, gossip_[i]->epoch());
    }
  }
  return max_epoch;
}

bool Deployment::RunUntil(const std::function<bool()>& pred, sim::SimTime max_wait) {
  sim::SimTime deadline = sim_.now() + max_wait;
  while (!pred()) {
    if (sim_.now() > deadline) return false;
    if (!sim_.Step()) return pred();
  }
  return true;
}

void Deployment::RunFor(sim::SimTime duration) { sim_.RunUntil(sim_.now() + duration); }

Status Deployment::CreateRelation(size_t via_node, const storage::RelationDef& def) {
  bool done = false;
  Status result;
  publisher(via_node).CreateRelation(def, [&](Status st) {
    result = st;
    done = true;
  });
  if (!RunUntil([&] { return done; })) {
    return Status::TimedOut("CreateRelation did not complete");
  }
  return result;
}

Result<storage::Epoch> Deployment::Publish(size_t via_node,
                                           storage::UpdateBatch batch) {
  bool done = false;
  Status result;
  storage::Epoch epoch = 0;
  publisher(via_node).PublishBatch(std::move(batch), [&](Status st, storage::Epoch e) {
    result = st;
    epoch = e;
    done = true;
  });
  if (!RunUntil([&] { return done; })) {
    return Status::TimedOut("Publish did not complete");
  }
  if (!result.ok()) return result;
  return epoch;
}

Result<std::vector<storage::Tuple>> Deployment::Retrieve(size_t via_node,
                                                         const std::string& relation,
                                                         storage::Epoch epoch,
                                                         storage::KeyFilter filter) {
  bool done = false;
  Status result;
  std::vector<storage::Tuple> rows;
  storage(via_node).Retrieve(relation, epoch, filter,
                             [&](Status st, std::vector<storage::Tuple> r) {
                               result = st;
                               rows = std::move(r);
                               done = true;
                             });
  if (!RunUntil([&] { return done; })) {
    return Status::TimedOut("Retrieve did not complete");
  }
  if (!result.ok()) return result;
  return rows;
}

Result<query::QueryResult> Deployment::ExecuteQuery(size_t via_node,
                                                    const query::PhysicalPlan& plan,
                                                    storage::Epoch epoch,
                                                    query::QueryOptions options) {
  bool done = false;
  Status result;
  query::QueryResult out;
  query(via_node).Execute(plan, epoch, options,
                          [&](Status st, query::QueryResult r) {
                            result = st;
                            out = std::move(r);
                            done = true;
                          });
  if (!RunUntil([&] { return done; }, 600 * sim::kMicrosPerSec)) {
    return Status::TimedOut("query did not complete");
  }
  if (!result.ok()) return result;
  return out;
}

}  // namespace orchestra::deploy
