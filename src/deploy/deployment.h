// Deployment: assembles a full simulated ORCHESTRA cluster — simulator,
// network, node hosts, gossip, storage services, publishers — the way the
// paper deploys its prototype on the local cluster or EC2 (§VI). Used by
// tests, benchmarks, and examples.
#ifndef ORCHESTRA_DEPLOY_DEPLOYMENT_H_
#define ORCHESTRA_DEPLOY_DEPLOYMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "client/session.h"
#include "net/node_host.h"
#include "overlay/gossip.h"
#include "overlay/ring.h"
#include "query/service.h"
#include "sim/simulator.h"
#include "storage/publisher.h"
#include "storage/service.h"
#include "wal/backend.h"

namespace orchestra::deploy {

struct DeploymentOptions {
  size_t num_nodes = 4;
  int replication = 3;
  overlay::AllocationScheme scheme = overlay::AllocationScheme::kBalanced;
  net::LinkParams link;  // defaults: Gigabit LAN
  uint64_t seed = 42;
  /// Start periodic gossip timers (leave off for fully quiescent tests; the
  /// epoch counter still works, it just doesn't spread in the background).
  bool start_gossip = false;
  sim::SimTime gossip_interval_us = 500 * sim::kMicrosPerMilli;
  /// Multi-epoch GC: after each successful publish the publisher advertises
  /// (participant, new epoch - gc_keep_epochs); storage nodes retire
  /// superseded versions below the EFFECTIVE watermark — the min across
  /// active participants, so one slow writer pins retirement and a peer's
  /// base versions are never retired out from under it. 0 keeps every epoch
  /// forever (the seed behavior); retrievals are then valid at any epoch
  /// instead of only [watermark, current].
  uint64_t gc_keep_epochs = 0;
  /// Abandonment fencing: a claim whose owner shows no liveness for this
  /// much simulated time may be fenced by a stalled contender — the epoch is
  /// burned, the abandoned writer's orphans are purged, and its late writes
  /// are refused (Publisher::set_fence_after_us). 0 (default) disables
  /// fencing: an abandoned claim then wedges the chain forever, the seed
  /// liveness contract.
  sim::SimTime fence_after_us = 0;
  /// Per-node LocalStore tuning (compaction thresholds); harnesses lower the
  /// compaction floor so small stores still exercise the GC->compact path.
  localstore::StoreOptions store;
  /// Durability: give every node a deterministic in-memory WAL backend
  /// (wal::MemoryBackend). KillNode then models a real crash — unsynced WAL
  /// bytes are torn away — and RestartNode rebuilds the store from the
  /// newest checkpoint plus the surviving tail (docs/DURABILITY.md). Off
  /// reverts to the seed behavior where the record log itself survives.
  bool durable_wal = true;
  /// Per-node incremental background GC tuning (slice budget and pacing).
  storage::GcOptions gc;
  /// Per-node client::Session tuning: publish window (pipelining), admission
  /// control watermarks. Defaults pipeline up to 4 publishes per session.
  /// Leave `session.participant` at 0: every node's session then publishes
  /// as its own distinct participant (node id + 1), which is what makes
  /// concurrent multi-writer publishing across sessions safe.
  client::SessionOptions session;
};

class Deployment {
 public:
  explicit Deployment(DeploymentOptions options);
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  size_t size() const { return hosts_.size(); }
  sim::Simulator& sim() { return sim_; }
  net::Network& network() { return network_; }
  net::NodeHost& host(size_t i) { return *hosts_[i]; }
  storage::StorageService& storage(size_t i) { return *storage_[i]; }
  overlay::GossipService& gossip(size_t i) { return *gossip_[i]; }
  storage::Publisher& publisher(size_t i) { return *publishers_[i]; }
  query::QueryService& query(size_t i) { return *query_[i]; }
  /// The participant-facing API of node i; the synchronous conveniences
  /// below all route through it.
  client::Session& session(size_t i) { return *sessions_[i]; }
  std::shared_ptr<storage::SnapshotBoard> board() { return board_; }
  /// Node i's WAL backend (null when `durable_wal` is off). Harnesses use it
  /// to inspect crash/torn-tail counters and to stage fault injection.
  const std::shared_ptr<wal::MemoryBackend>& wal_backend(size_t i) const {
    return wal_backends_[i];
  }
  const overlay::RoutingSnapshot& snapshot() const { return board_->current; }
  const DeploymentOptions& options() const { return options_; }

  /// Kills the node (fail-stop) and, if `update_routing`, rebuilds the
  /// current routing table without it (queries keep their own snapshots).
  /// With `rebalance`, surviving nodes re-replicate to the new table — under
  /// the balanced scheme a membership change shifts every range, so without
  /// it records whose whole replica set moved become unreachable.
  void KillNode(net::NodeId node, bool update_routing = true,
                bool rebalance = false);

  /// Adds a fresh node to the ring, updates the routing table, and triggers
  /// background re-replication from existing nodes.
  net::NodeId AddNode();

  /// Restarts a previously killed node: it rejoins the ring with its durable
  /// store (indexes rebuilt via LocalStore::Recover, epoch bookkeeping via
  /// StorageService::OnRestart), every node's gossip peer list is re-seeded,
  /// and all live nodes re-replicate toward the new routing table so the
  /// returnee both catches up on missed writes and re-serves its own.
  void RestartNode(net::NodeId node);

  /// Live-node count / liveness passthroughs for harnesses.
  bool IsAlive(net::NodeId node) const { return network_.IsAlive(node); }
  size_t AliveCount() const;

  /// Highest epoch any live node has gossiped (deterministic alternative to
  /// waiting for gossip convergence in tests/harnesses).
  storage::Epoch MaxKnownEpoch() const;

  /// Sum of all storage services' pending-call tables (leak regression hook:
  /// zero once every synchronous convenience above has returned).
  size_t PendingRpcCount() const;

  /// Default wait budget for RunUntil and the synchronous conveniences.
  static constexpr sim::SimTime kDefaultWaitUs = 120 * sim::kMicrosPerSec;

  /// Steps the simulator until `pred()` or `max_wait` simulated time passes.
  /// Returns true if the predicate fired.
  bool RunUntil(const std::function<bool()>& pred,
                sim::SimTime max_wait = kDefaultWaitUs);
  /// Runs for a fixed amount of simulated time.
  void RunFor(sim::SimTime duration);

  // --- Synchronous conveniences (submit through the node's client::Session
  // and drive the sim until the returned Pending resolves) -----------------
  Status CreateRelation(size_t via_node, const storage::RelationDef& def);
  Result<storage::Epoch> Publish(size_t via_node, storage::UpdateBatch batch);
  Result<std::vector<storage::Tuple>> Retrieve(size_t via_node,
                                               const std::string& relation,
                                               storage::Epoch epoch,
                                               storage::KeyFilter filter = {});
  /// Runs a distributed query from `via_node` and drives the sim to
  /// completion. `epoch` 0 means the node's current gossiped epoch.
  Result<query::QueryResult> ExecuteQuery(size_t via_node,
                                          const query::PhysicalPlan& plan,
                                          storage::Epoch epoch = 0,
                                          query::QueryOptions options = {});

 private:
  /// Copies options_.store and, with `durable_wal`, injects a fresh
  /// MemoryBackend (recorded in wal_backends_) for the node being built.
  localstore::StoreOptions StoreOptionsForNewNode();

  DeploymentOptions options_;
  sim::Simulator sim_;
  net::Network network_;
  overlay::Ring ring_;
  std::shared_ptr<storage::SnapshotBoard> board_;
  std::vector<std::unique_ptr<net::NodeHost>> hosts_;
  std::vector<std::shared_ptr<wal::MemoryBackend>> wal_backends_;
  std::vector<std::unique_ptr<overlay::GossipService>> gossip_;
  std::vector<std::unique_ptr<storage::StorageService>> storage_;
  std::vector<std::unique_ptr<storage::Publisher>> publishers_;
  std::vector<std::unique_ptr<query::QueryService>> query_;
  std::vector<std::unique_ptr<client::Session>> sessions_;
};

}  // namespace orchestra::deploy

#endif  // ORCHESTRA_DEPLOY_DEPLOYMENT_H_
