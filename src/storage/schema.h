// Relation schemas and the replicated catalog entry describing how a relation
// is stored: key attributes (the partitioning key, §IV), the number of
// versioned pages partitioning its tuple-key-hash space, and whether the
// relation is small enough to replicate everywhere (the paper replicates
// TPC-H Nation and Region at every node, §VI-A).
#ifndef ORCHESTRA_STORAGE_SCHEMA_H_
#define ORCHESTRA_STORAGE_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "storage/value.h"

namespace orchestra::storage {

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const ColumnDef&) const = default;
};

/// Column list plus key arity: the first `key_arity` columns form the tuple
/// key (the paper partitions "on their key attribute (first key attribute, if
/// more than one attribute was present)").
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<ColumnDef> columns, uint32_t key_arity)
      : columns_(std::move(columns)), key_arity_(key_arity) {}

  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t arity() const { return columns_.size(); }
  uint32_t key_arity() const { return key_arity_; }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// Index of a column by name.
  std::optional<size_t> Find(const std::string& name) const;

  bool operator==(const Schema&) const = default;

  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, Schema* out);
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  uint32_t key_arity_ = 1;
};

/// Catalog entry for a stored relation.
struct RelationDef {
  std::string name;
  Schema schema;
  /// Number of versioned pages the tuple-key-hash space is divided into.
  /// "a slightly higher number of entries representing partitions of the
  /// tuple space" (§IV) — typically a small multiple of the node count.
  uint32_t num_partitions = 16;
  /// Replicate full content at every node (tiny relations, §VI-A).
  bool replicate_everywhere = false;
  /// How many leading key attributes determine data placement. The paper
  /// distributes tables "partitioning on their key attribute (first key
  /// attribute, if more than one attribute was present)" (§VI-A): lineitem is
  /// keyed on (orderkey, linenumber) but placed by orderkey, co-partitioning
  /// it with orders. 0 means "all key attributes".
  uint32_t partition_key_arity = 0;

  uint32_t effective_partition_arity() const {
    return partition_key_arity == 0 ? schema.key_arity() : partition_key_arity;
  }

  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, RelationDef* out);
};

/// Extracts the order-preserving key bytes of `t` under `schema`.
std::string EncodeTupleKey(const Schema& schema, const Tuple& t);

/// Inverse: decodes key bytes back into the key attribute values (used by
/// covering index scans). Output tuple has key_arity values.
Status DecodeTupleKey(const Schema& schema, std::string_view key_bytes, Tuple* out);

/// The leading bytes of `key_bytes` covering the first `arity` key values
/// (the placement prefix). EncodeOrdered values are self-delimiting.
Result<std::string> PartitionPrefixOfKey(uint32_t arity, std::string_view key_bytes);

}  // namespace orchestra::storage

#endif  // ORCHESTRA_STORAGE_SCHEMA_H_
