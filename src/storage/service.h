// StorageService: the per-node endpoint of the versioned storage protocol.
// Every node simultaneously plays all Fig. 3 roles for the key ranges it
// owns/replicates: relation coordinator, index node, inverse node, and data
// storage node. The service also implements the client side of
// Retrieve(R, e, f) — Algorithm 1 — with replica-retry on missing state, so
// a retrieval can never observe stale data: a tuple version is reachable
// only through the epoch's page list (§IV).
#ifndef ORCHESTRA_STORAGE_SERVICE_H_
#define ORCHESTRA_STORAGE_SERVICE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "localstore/local_store.h"
#include "net/node_host.h"
#include "net/rpc.h"
#include "overlay/ring.h"
#include "storage/keys.h"
#include "storage/page.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace orchestra::storage {

/// Shared mutable view of the current routing table; the membership layer
/// updates it, services read it. Queries instead pin an explicit snapshot.
struct SnapshotBoard {
  overlay::RoutingSnapshot current;
};

/// Storage protocol message codes (service kStorage).
///
/// The publish-path bodies (kPutTuples, kFetchTuples) carry each tuple's
/// placement hash in 20-byte big-endian wire form, computed once by the
/// publisher; receivers splice it straight into their localstore keys and
/// never recompute SHA-1.
enum StorageCode : uint16_t {
  kCatalogAdd = 1,
  // One coalesced frame per destination node and publish: nrels, then per
  // relation: rel, n, then per tuple: hash(20B BE), key, epoch, bytes. The
  // publisher batches every tuple write bound for a node — across all
  // relations and partitions — into a single kPutTuples RPC.
  kPutTuples = 2,
  kPutPage = 3,
  kPutCoordinator = 4,
  kGetCoordinator = 5,
  kGetPage = 6,
  kGetInverse = 7,
  kGetTuple = 8,
  kScanPage = 9,      // Algorithm 1, step 4: ask index node to scan a page
  kFetchTuples = 10,  // Algorithm 1, step 8: index node -> data node
  kTupleData = 11,    // Algorithm 1, step 9: data node -> requester (direct)
  kReplicaPush = 12,  // background re-replication (PAST-style, §III-C);
                      // leads with the pusher's GC watermark so a restarted
                      // node catches up without waiting for the next publish
  kGetMaxEpoch = 13,  // highest coordinator epoch this node stores
  kSetWatermark = 14, // one-way: (participant, GC low-watermark) advertisement
  // Multi-writer epoch claims: the pre-write serialization point. A claim
  // names (epoch, participant, node, attempt nonce); replicas grant
  // first-come (idempotent for the same participant) and answer a
  // conflicting claim with a kEpochTaken status whose body carries the
  // stored winner instance. Claims are NEVER taken over (takeover rules
  // break under membership churn): a wedged epoch is unwedged by its own
  // participant's retry or instance-exact release only.
  kClaimEpoch = 15,
  kGetEpochClaim = 16,   // read back (participant, node, committed) of a claim
  kReleaseEpoch = 17,    // one-way: delete own claim (failed publish cleanup)
  // Commit confirmation: after ALL coordinator records of an epoch are
  // written, the publisher flips its claim's `committed` flag on the claim
  // replicas. kGetMaxEpoch reports only CONFIRMED epochs, so a publisher's
  // discovered base is always a fully committed epoch — partial coordinator
  // records of torn publishes can no longer inflate discovery and leak
  // uncommitted content into other writers' bases.
  kConfirmEpoch = 18,
  // Abandonment fencing: after a claim has sat uncommitted and untouched for
  // the requester-supplied staleness TTL, any participant may BURN the epoch.
  // Body: epoch, fencer participant, fenced participant (the stored owner the
  // fencer observed), ttl_us. A grant marks the claim record fenced — nobody
  // (including the abandoned owner) can ever claim, write, or confirm at
  // that epoch again — and atomically purges the owner's orphan versions
  // (data/page/coordinator records at that epoch, plus inverse entries that
  // pointed at them). Refused while the owner is fresh (its claim refreshes
  // beat the TTL), once the epoch committed, when the slot changed hands, or
  // behind the confirmed frontier. The reply body names the fenced instance
  // (participant, node, nonce). Safety rides the same single-failure overlap
  // argument as claims: a fence needs EVERY live claim replica, so it cannot
  // coexist with a full un-fenced claim or a confirmed commit.
  kFenceEpoch = 19,
  // One-way fence propagation: (epoch, fenced participant, fenced nonce).
  // Receivers record the burn and purge local orphan versions at the epoch;
  // ignored if the local claim committed (a commit is a fact).
  kPurgeEpoch = 20,
  kReply = 100,       // RPC reply envelope
};

/// Per-call deadline for epoch discovery: much tighter than the general RPC
/// deadline so a publish past a dead member stalls seconds, not a minute.
constexpr sim::SimTime kEpochDiscoveryTimeoutUs = 5 * sim::kMicrosPerSec;

/// Whole-scan deadline for Retrieve: bounds loss of the one-way data legs.
constexpr sim::SimTime kScanDeadlineUs = 120 * sim::kMicrosPerSec;

/// A participant's GC watermark advertisement stays live this long; after
/// that the participant is considered departed and stops holding the
/// effective (min-across-participants) watermark down.
constexpr sim::SimTime kParticipantMarkTtlUs = 300 * sim::kMicrosPerSec;

/// Sargable filter pushed to index nodes: an inclusive key-bytes range.
struct KeyFilter {
  bool all = true;
  std::string lo, hi;  // valid when !all

  bool Matches(const std::string& key_bytes) const {
    return all || (key_bytes >= lo && key_bytes <= hi);
  }
  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, KeyFilter* out);
};

/// Incremental background GC tuning. Watermark advertisements (the
/// publisher's kSetWatermark one-ways, replica-push piggybacks) do not run a
/// synchronous full-store sweep any more; they schedule a background sweep
/// that retires records in bounded slices on the node's own timeline, so a
/// burst of per-publish advertisements coalesces into one sweep instead of
/// one full scan each. SetGcWatermark — the direct floor-raise entry point —
/// stays synchronous for tests and harnesses.
struct GcOptions {
  /// Records examined (scanned plus deleted) per slice before yielding the
  /// simulated CPU back to the request path.
  uint64_t slice_records = 2048;
  /// Delay before the first slice and between slices; the leading delay is
  /// what coalesces an advertisement burst into a single sweep.
  sim::SimTime slice_interval_us = 20 * sim::kMicrosPerMilli;
};

class StorageService : public net::Service {
 public:
  using RpcCallback = std::function<void(Status, const std::string& body)>;
  using RetrieveCallback =
      std::function<void(Status, std::vector<Tuple>)>;

  StorageService(net::NodeHost* host, std::shared_ptr<SnapshotBoard> board,
                 int replication, localstore::StoreOptions store_options = {},
                 GcOptions gc_options = {});

  net::NodeId node() const { return host_->node(); }
  int replication() const { return replication_; }
  const overlay::RoutingSnapshot& snapshot() const { return board_->current; }
  localstore::LocalStore& store() { return store_; }

  // --- Local (same-node) API, used by the query engine and tests ----------
  void AddRelationLocal(const RelationDef& def);
  Result<RelationDef> Relation(std::string_view name) const;
  /// Zero-copy catalog lookup for hot paths: no RelationDef copy. The
  /// pointer is valid until the catalog entry is replaced.
  const RelationDef* FindRelation(std::string_view name) const;
  std::vector<std::string> RelationNames() const;
  Result<CoordinatorRecord> ReadCoordinatorLocal(const std::string& rel, Epoch e) const;
  Result<Page> ReadPageLocal(const PageId& id) const;
  Result<PageId> ReadInverseLocal(const std::string& rel, uint32_t partition) const;
  Result<Tuple> ReadTupleLocal(const std::string& rel, const TupleId& id) const;
  /// Zero-copy read of one tuple version's stored (encoded) bytes; computes
  /// the placement hash. The view is valid until the next store mutation.
  Result<std::string_view> ReadTupleBytesLocal(std::string_view rel,
                                               const TupleId& id) const;
  /// Same, with the placement hash supplied in its 20-byte big-endian wire
  /// form (as carried by kPutTuples/kFetchTuples/kQueryFetch) — no SHA-1.
  Result<std::string_view> ReadTupleBytesRaw(std::string_view rel,
                                             std::string_view hash_be20,
                                             std::string_view key_bytes,
                                             Epoch epoch) const;
  /// Single ordered pass over the page's hash range, yielding tuples present
  /// in the page. Ids in the page but missing locally are appended to
  /// `missing` (stale replica). CPU is charged per record scanned.
  Status ScanPageLocal(const std::string& rel, const Page& page,
                       const KeyFilter& filter,
                       const std::function<void(const TupleId&, Tuple)>& yield,
                       std::vector<TupleId>* missing);

  // --- Asynchronous RPC (lifecycle-managed, see net/rpc.h) ------------------
  /// Sends a request; `cb` resolves exactly once — with the reply, with
  /// TimedOut at the per-call deadline, or with Unavailable when the
  /// destination is reaped after a connection drop.
  void Call(net::NodeId to, uint16_t code, std::string body, RpcCallback cb,
            sim::SimTime timeout_us = net::kDefaultRpcTimeoutUs);
  /// Sends the same request to several nodes; cb(OK) when all succeed, else
  /// the first error.
  void CallAll(const std::vector<net::NodeId>& targets, uint16_t code,
               const std::string& body, std::function<void(Status)> cb);
  /// Fire-and-forget message (no reply expected).
  void SendOneWay(net::NodeId to, uint16_t code, std::string body);

  /// Runs `fn` on this node's simulated thread after `delay`. Delivered as a
  /// node task, so it is dropped if the node dies before it fires (fail-stop
  /// safe, unlike a raw simulator event).
  void RunAfter(sim::SimTime delay, std::function<void()> fn);

  /// Outstanding entries in the pending-call table (leak regression hook).
  size_t pending_rpc_count() const { return rpc_.pending_count(); }
  /// Retrieve scans still in flight (leak regression hook).
  size_t active_scan_count() const { return scans_.size(); }
  const net::RpcClient::Counters& rpc_counters() const { return rpc_.counters(); }

  // --- Admission control ----------------------------------------------------
  /// This node's load measure, advertised in every RPC reply it sends:
  /// queued inbox deliveries plus queued kilobytes (so a few huge frames
  /// count like many small ones), plus any injected test load.
  uint32_t LocalLoadHint() const;
  /// Test/bench hook: adds a synthetic component to the advertised hint so
  /// backpressure can be exercised without constructing a real overload.
  void InjectLoadHint(uint32_t extra) { injected_load_hint_ = extra; }
  /// The highest load hint any peer reported within the trailing window
  /// (default 2 s of simulated time) — what a client::Session throttles on.
  uint32_t MaxRecentPeerLoad(
      sim::SimTime window_us = 2 * sim::kMicrosPerSec) const;

  // --- Distributed reads ----------------------------------------------------
  /// Fetches the coordinator record for (rel, epoch), retrying replicas.
  void GetCoordinator(const std::string& rel, Epoch epoch,
                      std::function<void(Status, CoordinatorRecord)> cb);
  /// Fetches a page from its index node, retrying replicas.
  void GetPage(const PageDescriptor& desc,
               std::function<void(Status, Page)> cb);
  /// Algorithm 1: Retrieve(R, e, f). Returns all matching tuples via cb.
  void Retrieve(const std::string& rel, Epoch epoch, const KeyFilter& filter,
                RetrieveCallback cb);
  /// Fetches one tuple version, trying each replica of its data node in turn
  /// (used when a local replica is stale, §IV).
  void FetchTuple(const std::string& rel, const TupleId& id,
                  std::function<void(Status, Tuple)> cb);

  /// Re-replicates local state according to `snap` (background replication
  /// after membership change). Sends batched kReplicaPush messages.
  void RebalanceTo(const overlay::RoutingSnapshot& snap);

  // --- Multi-epoch GC -------------------------------------------------------
  /// Raises the GC low-watermark and retires superseded versions below it:
  /// coordinator records (and epoch claims) with epoch < w, page versions
  /// older than their partition's newest version at-or-below w, and tuple
  /// versions older than their key's newest version at-or-below w (plus
  /// delete tombstones once nothing older survives). Supported retrieval
  /// epochs become [w, current]. Re-advertising the current watermark re-runs
  /// retirement, which clears records a stale replica push may have
  /// resurrected. This is the direct floor-raise entry point (tests use it);
  /// publisher advertisements instead go through SetParticipantWatermark so
  /// one slow writer holds retirement back for everyone.
  void SetGcWatermark(Epoch w);
  Epoch gc_watermark() const { return gc_watermark_; }

  /// Multi-writer GC: records participant `p`'s advertised low-watermark
  /// (monotonic per participant) and applies the EFFECTIVE watermark — the
  /// minimum across all participants heard from within kParticipantMarkTtlUs
  /// — via SetGcWatermark. A participant that lags (or advertises 0 because
  /// its committed epoch is still inside the keep window) pins the effective
  /// mark down, so versions a slow peer still bases its publishes on are
  /// never retired out from under it.
  void SetParticipantWatermark(ParticipantId p, Epoch mark);
  /// min across active participants (0 when none have advertised).
  Epoch EffectiveParticipantWatermark() const;
  /// Advertised marks currently tracked (restart wipes them; replica pushes
  /// re-teach them).
  size_t participant_mark_count() const { return participant_marks_.size(); }

  /// Highest CONFIRMED epoch this node knows of — a claim whose publisher
  /// completed the commit (kConfirmEpoch), learned directly or via replica
  /// push. The publishers' epoch-discovery RPC (kGetMaxEpoch) reports it;
  /// coordinator records alone deliberately do NOT advance it (a torn
  /// publish leaves partial records, and basing on them would absorb
  /// uncommitted updates).
  Epoch max_epoch_seen() const { return max_epoch_seen_; }

  /// Crash-restart hook: rebuilds transient epoch bookkeeping from the
  /// (durable) store after a Recover().
  void OnRestart();

  /// True if `e` is known burned on this node (fence granted here, learned
  /// via kPurgeEpoch, or rebuilt from the durable fenced claim record).
  bool IsEpochFenced(Epoch e) const { return fenced_epochs_.count(e) > 0; }
  size_t fenced_epoch_count() const { return fenced_epochs_.size(); }

  struct GcStats {
    uint64_t runs = 0;                // completed sweeps (sync or background)
    uint64_t slices = 0;              // background slices executed
    uint64_t coalesced = 0;           // advertisements folded into a sweep
                                      // already in flight (re-armed it)
    uint64_t retired_data = 0;        // superseded tuple versions
    uint64_t retired_pages = 0;       // superseded page versions
    uint64_t retired_coords = 0;      // coordinator records below watermark
    uint64_t retired_tombstones = 0;  // delete markers fully reclaimed
    uint64_t retired_claims = 0;      // epoch claims below watermark
  };
  const GcStats& gc_stats() const { return gc_; }
  /// True while a background retirement sweep is in flight (or re-armed).
  bool gc_sweep_active() const { return gc_sweep_.active; }

  // --- net::Service ----------------------------------------------------------
  void OnMessage(net::NodeId from, uint16_t code, const std::string& payload) override;
  void OnConnectionDrop(net::NodeId peer) override;
  /// Fail-stop death of this node: drop outstanding calls and scans without
  /// invoking their callbacks — nothing may execute on a halted node. Scan
  /// deadline closures are cancelled eagerly, like resolved RPC deadlines.
  void OnSelfFailed() override {
    rpc_.DropAll();
    // lint:allow(det-unordered-iter): cancels deadline closures only; no
    // callbacks run on a halted node, so order cannot reach the trace.
    for (auto& [id, scan] : scans_) {
      host_->network()->simulator()->Cancel(scan.deadline_event);
    }
    scans_.clear();
  }

  struct Counters {
    uint64_t tuples_stored = 0;
    uint64_t pages_stored = 0;
    uint64_t coordinators_stored = 0;
    uint64_t scans_served = 0;
    uint64_t tuples_served = 0;
    // Coalesced publish frames received: one per (publish, destination node)
    // pair — the RPC-count story of the pipelined publish path.
    uint64_t puttuples_frames = 0;
    // Multi-writer contention observed at this node: claim requests refused
    // with kEpochTaken, and same-epoch coordinator writes refused at the
    // commit gate (the backstop; nonzero only under claim-replica-set
    // wipeout by simultaneous membership churn).
    uint64_t claims_granted = 0;
    uint64_t claims_refused = 0;
    uint64_t coordinator_conflicts = 0;
    // Abandonment fencing at this claim replica: kFenceEpoch grants (the
    // epoch burned here) and refusals (owner fresh/committed/frontier), late
    // writes refused because their epoch is fenced, and orphan records
    // purged by fence-triggered local purges.
    uint64_t fences_granted = 0;
    uint64_t fences_refused = 0;
    uint64_t fenced_writes_refused = 0;
    uint64_t purged_orphans = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  struct ScanState {
    std::string relation;
    Epoch epoch;
    KeyFilter filter;
    RetrieveCallback cb;
    size_t pages_total = 0;
    size_t summaries_received = 0;
    size_t data_parts_expected = 0;
    size_t data_parts_received = 0;
    size_t lookups_outstanding = 0;  // retries of individually missing tuples
    std::vector<Tuple> rows;
    bool failed = false;
    // Whole-scan deadline: the data legs (kFetchTuples/kTupleData) are
    // one-way, so a lost message would otherwise leave the scan pending
    // forever. Resolves the scan with TimedOut; cancelled on completion.
    sim::Simulator::EventId deadline_event = 0;
  };

  void Respond(net::NodeId to, uint64_t req_id, Status st, std::string body);
  void RetireBelowWatermark();
  /// Background GC: starts a sliced sweep at the current watermark, or
  /// re-arms the one in flight (it finishes, then restarts at the latest
  /// watermark — which also preserves the "re-advertising clears records a
  /// stale replica push resurrected" property of the synchronous sweep).
  void ScheduleGcSweep();
  /// One scheduled slice; `generation` guards against slices queued by a
  /// sweep that was since cancelled (restart, synchronous override).
  void GcSliceTask(uint64_t generation);
  /// Retires up to `budget` records' worth of sweep work; true when the
  /// sweep has covered all four key families.
  bool RunGcSlice(uint64_t budget);
  /// Records a participant's advertised mark (monotonic, TTL-pruned)
  /// WITHOUT applying the effective watermark — bulk callers (replica push)
  /// merge everything first and sweep once.
  void MergeParticipantMark(ParticipantId p, Epoch mark);
  void HandleClaimEpoch(net::NodeId from, Reader* r, uint64_t req_id);
  void HandleFenceEpoch(net::NodeId from, Reader* r, uint64_t req_id);
  /// Records `epoch` as burned (fenced instance = participant/nonce), stores
  /// the durable fenced claim marker, and purges local orphan versions — a
  /// no-op if the local claim committed (a commit is a fact a fence never
  /// overrides) or the burn is already known.
  void MergeFencedEpoch(Epoch epoch, ParticipantId participant, uint64_t nonce);
  /// Deletes every data/page/coordinator version stored at `epoch` and
  /// repairs inverse entries that pointed at a purged page (re-aimed at the
  /// newest surviving version, or dropped when none survives), so discovery
  /// never sees torn state after a fence.
  void PurgeEpochLocal(Epoch epoch);
  void HandleRequest(net::NodeId from, uint16_t code, Reader* r, uint64_t req_id);
  void HandleScanPage(net::NodeId from, Reader* r, uint64_t req_id);
  void HandleFetchTuples(net::NodeId from, Reader* r);
  void HandleTupleData(net::NodeId from, Reader* r);
  void ScanCheckDone(uint64_t scan_id);
  void ScanFail(uint64_t scan_id, Status st);
  void StartPageScan(uint64_t scan_id, const PageDescriptor& desc, size_t replica_idx);
  void RecoverMissingTuple(uint64_t scan_id, const TupleId& id, size_t replica_idx);

  void ChargeCpu(double micros) { host_->network()->ChargeCpu(node(), micros); }

  net::NodeHost* host_;
  std::shared_ptr<SnapshotBoard> board_;
  int replication_;
  net::RpcClient rpc_;
  localstore::LocalStore store_;
  // std::less<> enables string_view lookups without temporary strings.
  std::map<std::string, RelationDef, std::less<>> catalog_;
  uint64_t next_scan_id_ = 1;
  std::unordered_map<uint64_t, ScanState> scans_;
  Counters counters_;
  Epoch max_epoch_seen_ = 0;
  Epoch gc_watermark_ = 0;
  GcStats gc_;
  GcOptions gc_options_;
  // Background sweep cursor. The watermark is pinned per sweep (retiring
  // below an older mark is always safe); phases cover the four swept key
  // families in tag order: 0 coordinators, 1 claims, 2 pages, 3 data.
  struct GcSweep {
    bool active = false;
    bool rearm = false;
    uint64_t generation = 0;
    Epoch watermark = 0;
    int phase = 0;
    std::string resume;       // lower bound of the next slice's Seek
    std::string group;        // version-group carry (phases 2 and 3)
    std::string best_key;     // newest version <= watermark in `group`
    bool best_is_tombstone = false;
  };
  GcSweep gc_sweep_;
  // Admission control: latest load hint per peer (timestamped so stale
  // reports age out) and the synthetic test component of our own hint.
  struct PeerLoad {
    uint32_t hint = 0;
    sim::SimTime at = 0;
  };
  std::unordered_map<net::NodeId, PeerLoad> peer_load_;
  uint32_t injected_load_hint_ = 0;
  // Multi-writer GC: latest watermark advertised per participant, with the
  // sim time it was heard (entries expire after kParticipantMarkTtlUs).
  struct ParticipantMark {
    Epoch mark = 0;
    sim::SimTime at = 0;
  };
  std::map<ParticipantId, ParticipantMark> participant_marks_;
  // Abandonment fencing. `claim_touch_` is the freshness clock a fence races
  // against: set at every claim grant/re-grant and confirm, seeded to "now"
  // for surviving uncommitted claims on restart (conservative: a replica
  // restart must not make a live owner look stale). Transient by design.
  std::map<Epoch, sim::SimTime> claim_touch_;
  // Burned epochs with the fenced instance (for instance-exact zombie write
  // refusals). Durable via the fenced claim record; rebuilt on restart and
  // re-taught by the replica-push piggyback. Never pruned — fences are rare
  // and a retained entry keeps a stale push from resurrecting orphans.
  struct FencedInstance {
    ParticipantId participant = 0;
    uint64_t nonce = 0;
  };
  std::map<Epoch, FencedInstance> fenced_epochs_;
};

}  // namespace orchestra::storage

#endif  // ORCHESTRA_STORAGE_SERVICE_H_
