// Publisher: the participant-side write path of the versioned store (§IV).
// Publishing a batch of updates creates a new global epoch:
//   1. fetch the coordinator records of ALL relations at the current epoch,
//   2. fetch the affected pages, apply the updates copy-on-write (the new
//      page lists the new TupleIds; untouched pages are shared),
//   3. write new tuple versions to their data storage nodes (replicated on
//      insert, §III-C), new pages to their index nodes, and a coordinator
//      record per relation at the new epoch (unchanged relations carry their
//      page list forward, so every relation is resolvable at every epoch),
//   4. advance the gossiped epoch.
//
// There is no distributed locking: participants publish disjoint update
// logs, and conflicts are resolved at import time by reconciliation (§II).
#ifndef ORCHESTRA_STORAGE_PUBLISHER_H_
#define ORCHESTRA_STORAGE_PUBLISHER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "overlay/gossip.h"
#include "storage/service.h"

namespace orchestra::storage {

/// One update in a published log. An insert with an existing key is an
/// update: the key maps to a new TupleId at the new epoch; the old version
/// remains retrievable at older epochs.
struct Update {
  enum class Kind : uint8_t { kInsert = 0, kDelete = 1 };
  Kind kind = Kind::kInsert;
  Tuple tuple;  // for kDelete only the key attributes are consulted

  static Update Insert(Tuple t) { return Update{Kind::kInsert, std::move(t)}; }
  static Update Delete(Tuple t) { return Update{Kind::kDelete, std::move(t)}; }
};

/// Relation name -> updates.
using UpdateBatch = std::map<std::string, std::vector<Update>>;

class Publisher {
 public:
  Publisher(StorageService* service, overlay::GossipService* gossip)
      : service_(service), gossip_(gossip) {}

  /// Registers a relation everywhere and writes its (empty) coordinator
  /// record at the current epoch.
  void CreateRelation(const RelationDef& def, std::function<void(Status)> cb);

  /// Publishes `batch` as one new epoch. cb receives the new epoch.
  void PublishBatch(UpdateBatch batch, std::function<void(Status, Epoch)> cb);

  Epoch current_epoch() const { return gossip_->epoch(); }

 private:
  struct PartitionWork {
    std::string relation;
    uint32_t partition = 0;
    bool has_old_desc = false;
    PageDescriptor old_desc;
    std::vector<const Update*> updates;
    // Parallel to `updates`: encoded key bytes and placement hash, computed
    // exactly once per update in FetchPages and reused everywhere after
    // (page sort, tuple writes, wire format) — SHA-1 never runs twice for
    // the same tuple in a publish.
    std::vector<std::string> update_keys;
    std::vector<HashId> update_hashes;
    Page old_page;  // empty when !has_old_desc
  };

  struct PubState {
    UpdateBatch batch;
    std::function<void(Status, Epoch)> cb;
    Epoch base_epoch = 0;
    Epoch new_epoch = 0;
    std::map<std::string, CoordinatorRecord> records;
    size_t outstanding = 0;
    Status first_error;
    std::vector<PartitionWork> parts;
    bool done = false;
  };

  void FetchPages(std::shared_ptr<PubState> st);
  void ApplyAndWrite(std::shared_ptr<PubState> st);
  void FinishIfIdle(std::shared_ptr<PubState> st);

  StorageService* service_;
  overlay::GossipService* gossip_;
};

}  // namespace orchestra::storage

#endif  // ORCHESTRA_STORAGE_PUBLISHER_H_
