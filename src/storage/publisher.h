// Publisher: the participant-side write path of the versioned store (§IV).
// Publishing a batch of updates creates a new global epoch:
//   1. fetch the coordinator records of ALL relations at the current epoch,
//   2. fetch the affected pages, apply the updates copy-on-write (the new
//      page lists the new TupleIds; untouched pages are shared),
//   3. write new tuple versions to their data storage nodes (replicated on
//      insert, §III-C), new pages to their index nodes, and a coordinator
//      record per relation at the new epoch (unchanged relations carry their
//      page list forward, so every relation is resolvable at every epoch),
//   4. advance the gossiped epoch.
//
// There is no distributed locking: participants publish disjoint update
// logs, and conflicts are resolved at import time by reconciliation (§II).
#ifndef ORCHESTRA_STORAGE_PUBLISHER_H_
#define ORCHESTRA_STORAGE_PUBLISHER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "overlay/gossip.h"
#include "storage/service.h"

namespace orchestra::storage {

/// One update in a published log. An insert with an existing key is an
/// update: the key maps to a new TupleId at the new epoch; the old version
/// remains retrievable at older epochs.
struct Update {
  enum class Kind : uint8_t { kInsert = 0, kDelete = 1 };
  Kind kind = Kind::kInsert;
  Tuple tuple;  // for kDelete only the key attributes are consulted

  static Update Insert(Tuple t) { return Update{Kind::kInsert, std::move(t)}; }
  static Update Delete(Tuple t) { return Update{Kind::kDelete, std::move(t)}; }
};

/// Relation name -> updates.
using UpdateBatch = std::map<std::string, std::vector<Update>>;

class Publisher {
 public:
  Publisher(StorageService* service, overlay::GossipService* gossip)
      : service_(service), gossip_(gossip) {}

  /// Registers a relation everywhere and writes its (empty) coordinator
  /// record at the current epoch.
  void CreateRelation(const RelationDef& def, std::function<void(Status)> cb);

  /// Publishes `batch` as one new epoch. cb receives the new epoch.
  ///
  /// Before anything else the publisher discovers the cluster's current
  /// epoch by asking every routing-table member for the highest coordinator
  /// epoch it stores (kGetMaxEpoch) and basing the publish on the max of the
  /// replies and local gossip — multi-node publishing therefore does not
  /// depend on gossip convergence (gossip stays off by default in tests).
  /// A failed publish never advances the epoch, and republishing the same
  /// batch is idempotent: the retry recomputes the same new epoch and
  /// rewrites byte-identical records over whatever the first attempt landed.
  void PublishBatch(UpdateBatch batch, std::function<void(Status, Epoch)> cb);

  Epoch current_epoch() const { return gossip_->epoch(); }

  /// Epoch-discovery toggle (on by default; off restores gossip-only bases).
  void set_epoch_discovery(bool on) { epoch_discovery_ = on; }

  /// GC policy: after each successful publish, advertise a low-watermark of
  /// (new epoch - keep) to every member, retiring superseded versions below
  /// it. 0 (default) disables GC; retrievals then work at every past epoch.
  void set_gc_keep_epochs(uint64_t keep) { gc_keep_epochs_ = keep; }
  uint64_t gc_keep_epochs() const { return gc_keep_epochs_; }

 private:
  struct PartitionWork {
    std::string relation;
    uint32_t partition = 0;
    bool has_old_desc = false;
    PageDescriptor old_desc;
    std::vector<const Update*> updates;
    // Parallel to `updates`: encoded key bytes and placement hash, computed
    // exactly once per update in FetchPages and reused everywhere after
    // (page sort, tuple writes, wire format) — SHA-1 never runs twice for
    // the same tuple in a publish.
    std::vector<std::string> update_keys;
    std::vector<HashId> update_hashes;
    Page old_page;  // empty when !has_old_desc
  };

  struct PubState {
    UpdateBatch batch;
    std::function<void(Status, Epoch)> cb;
    Epoch base_epoch = 0;
    Epoch new_epoch = 0;
    std::map<std::string, CoordinatorRecord> records;
    size_t outstanding = 0;
    Status first_error;
    std::vector<PartitionWork> parts;
    // Touched partitions per relation (true = new page version is non-empty),
    // carried from the data/page stage to the coordinator commit stage.
    std::map<std::string, std::map<uint32_t, bool>> partition_nonempty;
    bool done = false;
  };

  /// Stage 0: ask every member for its highest stored coordinator epoch;
  /// re-runs the round (up to `rounds_left`) while more than one member
  /// failed to answer, since under single-failure assumptions a committed
  /// record has at least two live replicas — at most one silent member means
  /// at least one holder of the newest record was heard.
  void DiscoverEpoch(std::shared_ptr<PubState> st, int rounds_left);
  void BeginPublish(std::shared_ptr<PubState> st);
  /// Coordinator fetch with walk-back: a torn earlier publish can leave the
  /// discovered base epoch without a committed coordinator record for some
  /// relation; the newest record at-or-below the base is then the relation's
  /// true committed state. A NotFound is only trusted after `stall_left`
  /// same-epoch re-fetches spaced apart in time: right after a membership
  /// change the record may simply not have re-replicated to the new replica
  /// set yet, and walking back past it would drop committed updates.
  void FetchBaseCoordinator(std::shared_ptr<PubState> st, const std::string& rel,
                            Epoch epoch, int walk_left, int stall_left);
  void FetchPages(std::shared_ptr<PubState> st);
  void ApplyAndWrite(std::shared_ptr<PubState> st);
  /// The commit point: coordinator records are written only after every
  /// tuple/page write succeeded, so a coordinator record never references
  /// state that was lost with a failed publish.
  void WriteCoordinators(std::shared_ptr<PubState> st);
  void FinishIfIdle(std::shared_ptr<PubState> st);

  StorageService* service_;
  overlay::GossipService* gossip_;
  bool epoch_discovery_ = true;
  uint64_t gc_keep_epochs_ = 0;
};

}  // namespace orchestra::storage

#endif  // ORCHESTRA_STORAGE_PUBLISHER_H_
