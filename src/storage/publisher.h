// Publisher: the participant-side write path of the versioned store (§IV).
// Publishing a batch of updates creates a new global epoch:
//   1. fetch the coordinator records of ALL relations at the current epoch,
//   2. fetch the affected pages, apply the updates copy-on-write (the new
//      page lists the new TupleIds; untouched pages are shared),
//   3. write new tuple versions to their data storage nodes (replicated on
//      insert, §III-C), new pages to their index nodes, and a coordinator
//      record per relation at the new epoch (unchanged relations carry their
//      page list forward, so every relation is resolvable at every epoch),
//   4. advance the gossiped epoch.
//
// There is no distributed locking: participants publish disjoint update
// logs, and conflicts are resolved at import time by reconciliation (§II).
//
// Multi-writer contention: each publisher carries a ParticipantId, and two
// publishers may race for the same new epoch. The race is decided in two
// deterministic stages:
//   * CLAIM (pre-write): before issuing any write, a publish claims its
//     epoch at the claim replicas (kClaimEpoch, first-come, idempotent per
//     participant). A refused claim (kEpochTaken naming the winner) means
//     the loser has written NOTHING at that epoch — it waits for the
//     winner's commit and then RE-BASES: it re-runs its fetch/partition/
//     apply stages on top of the winner's committed output (the same
//     machinery a chained publish uses for an in-memory base) and claims the
//     next epoch. A held claim is NEVER taken over — takeover rules break
//     under membership churn — so a wedged epoch waits for its holder's
//     same-batch retry (idempotent re-claim) or its instance-exact release;
//     split races (nobody won a full claim) self-resolve through
//     deterministic per-participant retry phases.
//   * COMMIT (authoritative): coordinator records are participant-tagged and
//     storage nodes refuse a conflicting same-epoch record with kEpochTaken
//     (first committed writer wins), so even a claim-set wiped out by
//     simultaneous membership churn cannot let two writers both commit one
//     epoch. A commit-stage loser re-bases exactly like a claim-stage loser.
// A re-based publish re-publishes its ORIGINAL batch at the higher epoch, so
// any orphan tuple/page versions its first attempt left behind are
// superseded by its own committed versions — the GC sweep's same-batch
// precondition holds for contention losers by construction.
//
// Pipelining: PublishChained() lets a client::Session keep a bounded window
// of publishes in flight. A publish chained onto a still-in-flight
// predecessor skips epoch discovery and the base-coordinator fetches — it
// bases itself on the predecessor's in-memory output (its computed
// coordinator records and new pages) as soon as the predecessor has
// *prepared* them, overlapping its own fetch/partition/apply stages with the
// predecessor's tuple/page writes (and claims its own epoch concurrently
// with those stages). Two gates keep this exactly as safe as sequential
// publishing:
//   * WRITE gate — a chained publish issues no writes until every
//     coordinator record of its predecessor is acked (the predecessor's
//     confirm round then overlaps the successor's writes), so a failed
//     predecessor aborts the successor before it puts a byte on the wire
//     whenever the failure precedes the commit;
//   * COMMIT gate — the successor's own coordinator records go out only
//     once the predecessor fully resolved, so commits stay strictly ordered
//     and a predecessor that failed even at its confirm stage aborts the
//     successor BEFORE its commit (the fail-the-suffix contract). The
//     successor's already-issued writes stay claim-pinned and are rewritten
//     byte-identically by the same-batch retry.
#ifndef ORCHESTRA_STORAGE_PUBLISHER_H_
#define ORCHESTRA_STORAGE_PUBLISHER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "overlay/gossip.h"
#include "storage/service.h"

namespace orchestra::storage {

/// One update in a published log. An insert with an existing key is an
/// update: the key maps to a new TupleId at the new epoch; the old version
/// remains retrievable at older epochs.
struct Update {
  enum class Kind : uint8_t { kInsert = 0, kDelete = 1 };
  Kind kind = Kind::kInsert;
  Tuple tuple;  // for kDelete only the key attributes are consulted

  static Update Insert(Tuple t) { return Update{Kind::kInsert, std::move(t)}; }
  static Update Delete(Tuple t) { return Update{Kind::kDelete, std::move(t)}; }
};

/// Relation name -> updates.
using UpdateBatch = std::map<std::string, std::vector<Update>>;

class Publisher {
 public:
  /// Opaque in-flight publish state (defined in publisher.cc); handles chain
  /// pipelined publishes and must be retained by the caller until the
  /// publish's callback fires (client::Session does this).
  struct PubState;
  using Handle = std::shared_ptr<PubState>;

  Publisher(StorageService* service, overlay::GossipService* gossip)
      : service_(service),
        gossip_(gossip),
        participant_(service->node() + 1) {}

  /// This publisher's participant identity (defaults to node id + 1, which
  /// is unique per node and never 0). One publisher publishes for exactly
  /// one participant; epoch claims and coordinator records carry it.
  ParticipantId participant() const { return participant_; }
  void set_participant(ParticipantId p) { participant_ = p; }

  /// Registers a relation everywhere and writes its (empty) coordinator
  /// record at the current epoch.
  void CreateRelation(const RelationDef& def, std::function<void(Status)> cb);

  /// DEPRECATED shim: publishes `batch` as one new epoch with full epoch
  /// discovery; cb receives the new epoch. Prefer client::Session, which
  /// adds pipelining, backpressure, and Pending-based completion on top of
  /// PublishChained. Semantics are unchanged from the pre-Session API:
  /// a failed publish never advances the epoch, and republishing the same
  /// batch is idempotent (the retry recomputes the same new epoch and
  /// rewrites byte-identical records over whatever the first attempt landed).
  void PublishBatch(UpdateBatch batch, std::function<void(Status, Epoch)> cb);

  /// Pipelined entry point. If `prev` names a publish from this Publisher
  /// that is still in flight, the new publish chains onto it (see the file
  /// comment); if `prev` is null or already resolved, this is a fresh
  /// publish with full epoch discovery — a resolved predecessor gives no
  /// freshness guarantee (another participant may have published since), so
  /// chaining onto one is never attempted. Returns the publish's handle
  /// (already resolved if the batch was rejected synchronously). The handle
  /// must outlive the publish; cb resolves exactly once.
  Handle PublishChained(UpdateBatch batch, Handle prev,
                        std::function<void(Status, Epoch)> cb);

  Epoch current_epoch() const { return gossip_->epoch(); }

  /// Epoch-discovery toggle (on by default; off restores gossip-only bases).
  void set_epoch_discovery(bool on) { epoch_discovery_ = on; }

  /// GC policy: after each successful publish, advertise a low-watermark of
  /// (new epoch - keep) to every member, retiring superseded versions below
  /// it. 0 (default) disables GC; retrievals then work at every past epoch.
  void set_gc_keep_epochs(uint64_t keep) { gc_keep_epochs_ = keep; }
  uint64_t gc_keep_epochs() const { return gc_keep_epochs_; }

  /// Abandonment fencing: a claim whose owner shows no liveness (no refresh,
  /// no confirm) for `ttl` of simulated time may be FENCED by a stalled
  /// contender — the claim replicas burn the epoch, purge the owner's orphan
  /// versions, and refuse the owner's late writes instance-exactly, so the
  /// chain cannot be wedged forever by a writer that died after claiming.
  /// 0 (default) disables fencing: claims then wedge until their holder
  /// retries or releases (the pre-fencing liveness contract). While enabled,
  /// a publish that holds a granted claim also heartbeats it (an idempotent
  /// re-claim every ttl/3) so a merely-slow owner always looks fresh and
  /// wins the fence race.
  void set_fence_after_us(sim::SimTime ttl) { fence_after_us_ = ttl; }
  sim::SimTime fence_after_us() const { return fence_after_us_; }

  /// Pipeline accounting (bench + regression hooks).
  struct PipelineStats {
    uint64_t publishes = 0;        // publishes started
    uint64_t chained = 0;          // based on an in-flight predecessor
    uint64_t chain_fallbacks = 0;  // prev handle given but already resolved
    uint64_t aborted_on_prev = 0;  // aborted because the predecessor failed
    uint64_t put_frames = 0;       // coalesced kPutTuples frames sent
    uint64_t tuple_records = 0;    // tuple records carried by those frames
    // Multi-writer contention accounting.
    uint64_t epoch_conflicts = 0;  // claims or commits lost to another writer
    uint64_t rebases = 0;          // publishes re-based onto a winner's epoch
    uint64_t chain_rebases = 0;    // successors re-based after a prev rebase
    // Abandonment-fencing accounting.
    uint64_t fences = 0;           // fence rounds this publisher won
    uint64_t fenced_skips = 0;     // burned epochs skipped past
  };
  const PipelineStats& pipeline_stats() const { return pipeline_stats_; }

 private:
  /// Stage 0: ask every member for its highest stored coordinator epoch;
  /// re-runs the round (up to `rounds_left`) while more than one member
  /// failed to answer, since under single-failure assumptions a committed
  /// record has at least two live replicas — at most one silent member means
  /// at least one holder of the newest record was heard.
  void DiscoverEpoch(Handle st, int rounds_left);
  void BeginPublish(Handle st);
  /// Chained stage 1: derive the base (records + epoch) from the
  /// predecessor's prepared in-memory output; no network round trips.
  void StartChained(Handle st);
  /// Base coordinator fetch. The discovered base is always a CONFIRMED
  /// epoch, so a missing record means either replication lag (the fetch
  /// re-tries the SAME epoch `stall_left` times spaced apart in time first)
  /// or a relation CREATED after that epoch committed — whose newest record
  /// below the base then carries its state forward (bounded walk-back).
  /// The walk is safe under multi-writer because everything at or below a
  /// confirmed epoch is committed (partial records exist only at the
  /// frontier's wedged successor), so it can never absorb a torn publish's
  /// output. Transient errors still fail the (retryable) publish.
  void FetchBaseCoordinator(Handle st, const std::string& rel, Epoch epoch,
                            int walk_left, int stall_left);
  void FetchPages(Handle st);
  /// Applies the batch copy-on-write: computes the new pages, tuple writes,
  /// and — via BuildOutputs — the new coordinator records, then *prepares*
  /// the publish (unblocking a chained successor) before gating its own
  /// writes on the predecessor's commit.
  void Apply(Handle st);
  /// Publishes the prepared writes: tuple versions coalesced into one
  /// multi-relation kPutTuples frame per destination node, page versions to
  /// their index nodes. Runs only once the predecessor (if any) committed.
  void IssueWrites(Handle st);
  /// Computes the new-epoch coordinator record of every relation from the
  /// base records plus the touched partitions; stored on the handle for both
  /// the commit stage and any chained successor.
  void BuildOutputs(Handle st);
  /// Write-gate release for a chained publish: runs when the predecessor's
  /// coordinator records are all acked (its confirm round then overlaps this
  /// publish's writes) or when it resolved early with a failure. Aborts on
  /// predecessor failure, re-bases (ResetAttempt + network re-fetch) when
  /// the predecessor committed at a different epoch than the one this
  /// publish prepared against (i.e. it re-based under contention), and
  /// otherwise opens the write gate.
  void ReleaseGate(Handle st, Handle prev);
  /// Starts a claim round for the attempt's epoch: one kClaimEpoch per claim
  /// replica. Launched as soon as the epoch is known (overlapping the
  /// prepare stages and, for chained publishes, the predecessor's writes);
  /// the outcome is recorded on the handle and acted upon by MaybeIssue.
  void StartClaim(Handle st);
  /// Joins the three conditions writes wait for — outputs prepared, write
  /// gate open, claim round resolved — and acts on the claim outcome:
  /// granted -> IssueWrites, lost -> LoseEpoch/AwaitWinner, error -> Finish.
  void MaybeIssue(Handle st);
  /// A claim was refused. Releases any fragments this publish holds
  /// (instance-exact via the claim nonce), then waits for the winner's
  /// commit via AwaitWinner. A claim is NEVER taken over — not even a split
  /// or seemingly-dead one: takeover rules break under membership churn
  /// (the claim replica set reshuffles on every kill), and the holder's
  /// partial writes could be shadowed. Split-claim races resolve through
  /// AwaitWinner's deterministic per-participant stall phase instead.
  void LoseEpoch(Handle st, Epoch contested, bool split);
  /// Stall loop of a claim loser: probes for the winner's committed
  /// coordinator record at the contested epoch. Found -> Rebase; not found
  /// -> re-claim (the winner may have failed and released) until the stall
  /// budget runs out, then fail the publish (the session retries the batch).
  void AwaitWinner(Handle st, Epoch contested);
  /// Stalled-contender fence round: asks every claim replica to retire the
  /// abandoned claim at `contested` (kFenceEpoch, TTL-checked server-side).
  /// All replicas granting burns the epoch — the round then broadcasts
  /// kPurgeEpoch to every member (orphan cleanup) and skips past the burned
  /// epoch. ANY refusal (owner refreshed, epoch committed, replica silent)
  /// aborts the fence and resumes waiting: the quorum rule means a live
  /// owner only has to reach one claim replica to keep its epoch.
  void FenceEpoch(Handle st, Epoch contested);
  /// Skips a publish past a BURNED epoch: like a chain re-base, but the base
  /// (and its fetched records) stay valid — only the target epoch moves to
  /// burned + 1. Used by a fencer after its fence round, and by any publish
  /// that discovers a burned epoch via a kFenced claim refusal or probe.
  void SkipFenced(Handle st, Epoch burned);
  /// Claim-liveness heartbeat (fencing enabled only): re-sends the granted
  /// claim (same nonce — an idempotent re-grant) every fence_after_us_/3 so
  /// the claim replicas' freshness clock keeps a live owner unfenceable. A
  /// kFenced reply means this publish lost a fence race; it skips or fails.
  void ScheduleClaimRefresh(Handle st, uint64_t round_id);
  /// Re-bases a contention loser onto the winner's committed output: resets
  /// the attempt state, fetches the committed coordinator records at `base`,
  /// and re-runs FetchPages/Apply/claim at base + 1. Bounded per publish.
  void Rebase(Handle st, Epoch base);
  void FetchRebaseCoordinator(Handle st, const std::string& rel, Epoch base,
                              int walk_left, int stall_left);
  /// One-way claim cleanup: deletes this participant's claim (fragments) at
  /// `epoch` on the claim replicas — only the exact instance named by
  /// `nonce`, so a delayed release can never unpin a newer attempt's claim.
  /// Sent when a publish that claimed (or may hold claim fragments at)
  /// `epoch` fails or loses the epoch.
  void ReleaseClaim(Epoch epoch, uint64_t nonce);
  /// Clears all per-attempt state so a re-base can re-run the pipeline
  /// stages against a new base; keeps the batch, callback, and chain hooks.
  static void ResetAttempt(Handle st);
  /// The commit point: coordinator records are written only after every
  /// tuple/page write succeeded, so a coordinator record never references
  /// state that was lost with a failed publish. Participant-tagged; a
  /// kEpochTaken reply (commit-time contention) triggers a re-base instead
  /// of failing the batch. For a chained publish this is also the COMMIT
  /// gate: the records go out only once the predecessor fully resolved
  /// (commit order; a predecessor that failed its confirm aborts this
  /// publish before its commit, preserving the fail-the-suffix contract).
  void WriteCoordinators(Handle st);
  void CommitAfterPrev(Handle st);
  /// Post-commit confirmation: flips the epoch claim's `committed` flag on
  /// the claim replicas so discovery can report the epoch. Runs after every
  /// coordinator record landed; a failed confirmation fails the publish
  /// (the records are durable — the same-batch retry re-claims, rewrites
  /// byte-identically, and re-confirms).
  void ConfirmEpoch(Handle st);
  /// Resolves the publish exactly once: on success advances the epoch,
  /// advertises the GC watermark, and marks the handle committed; always
  /// fires the handle's continuation hooks before the user callback.
  void Finish(Handle st, Status status);

  StorageService* service_;
  overlay::GossipService* gossip_;
  ParticipantId participant_;
  bool epoch_discovery_ = true;
  uint64_t gc_keep_epochs_ = 0;
  sim::SimTime fence_after_us_ = 0;  // 0 = abandonment fencing disabled
  /// Claim-attempt nonce source: every claim round stores a fresh
  /// (participant, nonce) instance, making releases instance-exact under
  /// message delay/reordering.
  uint64_t claim_seq_ = 0;
  /// Epochs THIS participant has issued writes at that are not yet committed:
  /// the claim on such an epoch must never be released — not even by a later
  /// attempt of the same batch that failed before writing — because only this
  /// participant's same-batch retry may rewrite the epoch byte-identically
  /// over the partial writes. Entries at or below a committed epoch are
  /// dropped (the frontier passed them; they can never be claimed again).
  std::set<Epoch> written_epochs_;
  PipelineStats pipeline_stats_;
};

}  // namespace orchestra::storage

#endif  // ORCHESTRA_STORAGE_PUBLISHER_H_
