// Publisher: the participant-side write path of the versioned store (§IV).
// Publishing a batch of updates creates a new global epoch:
//   1. fetch the coordinator records of ALL relations at the current epoch,
//   2. fetch the affected pages, apply the updates copy-on-write (the new
//      page lists the new TupleIds; untouched pages are shared),
//   3. write new tuple versions to their data storage nodes (replicated on
//      insert, §III-C), new pages to their index nodes, and a coordinator
//      record per relation at the new epoch (unchanged relations carry their
//      page list forward, so every relation is resolvable at every epoch),
//   4. advance the gossiped epoch.
//
// There is no distributed locking: participants publish disjoint update
// logs, and conflicts are resolved at import time by reconciliation (§II).
//
// Pipelining: PublishChained() lets a client::Session keep a bounded window
// of publishes in flight. A publish chained onto a still-in-flight
// predecessor skips epoch discovery and the base-coordinator fetches — it
// bases itself on the predecessor's in-memory output (its computed
// coordinator records and new pages) as soon as the predecessor has
// *prepared* them, overlapping its own fetch/partition/apply stages with the
// predecessor's tuple/page writes. Two invariants keep this exactly as safe
// as sequential publishing:
//   * a chained publish issues NO writes until its predecessor has fully
//     COMMITTED (coordinator records written) — so a failed predecessor
//     aborts the successor before it puts a single byte on the wire, and the
//     only orphan versions a torn pipeline can leave are those of the one
//     publish that was actively writing (retried with the same batch, the
//     same-batch idempotency rule the GC sweep already relies on);
//   * coordinator commits stay strictly ordered along the chain, so the
//     commit-point and walk-back reasoning from the churn-hardened
//     sequential path holds unchanged.
#ifndef ORCHESTRA_STORAGE_PUBLISHER_H_
#define ORCHESTRA_STORAGE_PUBLISHER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "overlay/gossip.h"
#include "storage/service.h"

namespace orchestra::storage {

/// One update in a published log. An insert with an existing key is an
/// update: the key maps to a new TupleId at the new epoch; the old version
/// remains retrievable at older epochs.
struct Update {
  enum class Kind : uint8_t { kInsert = 0, kDelete = 1 };
  Kind kind = Kind::kInsert;
  Tuple tuple;  // for kDelete only the key attributes are consulted

  static Update Insert(Tuple t) { return Update{Kind::kInsert, std::move(t)}; }
  static Update Delete(Tuple t) { return Update{Kind::kDelete, std::move(t)}; }
};

/// Relation name -> updates.
using UpdateBatch = std::map<std::string, std::vector<Update>>;

class Publisher {
 public:
  /// Opaque in-flight publish state (defined in publisher.cc); handles chain
  /// pipelined publishes and must be retained by the caller until the
  /// publish's callback fires (client::Session does this).
  struct PubState;
  using Handle = std::shared_ptr<PubState>;

  Publisher(StorageService* service, overlay::GossipService* gossip)
      : service_(service), gossip_(gossip) {}

  /// Registers a relation everywhere and writes its (empty) coordinator
  /// record at the current epoch.
  void CreateRelation(const RelationDef& def, std::function<void(Status)> cb);

  /// DEPRECATED shim: publishes `batch` as one new epoch with full epoch
  /// discovery; cb receives the new epoch. Prefer client::Session, which
  /// adds pipelining, backpressure, and Pending-based completion on top of
  /// PublishChained. Semantics are unchanged from the pre-Session API:
  /// a failed publish never advances the epoch, and republishing the same
  /// batch is idempotent (the retry recomputes the same new epoch and
  /// rewrites byte-identical records over whatever the first attempt landed).
  void PublishBatch(UpdateBatch batch, std::function<void(Status, Epoch)> cb);

  /// Pipelined entry point. If `prev` names a publish from this Publisher
  /// that is still in flight, the new publish chains onto it (see the file
  /// comment); if `prev` is null or already resolved, this is a fresh
  /// publish with full epoch discovery — a resolved predecessor gives no
  /// freshness guarantee (another participant may have published since), so
  /// chaining onto one is never attempted. Returns the publish's handle
  /// (already resolved if the batch was rejected synchronously). The handle
  /// must outlive the publish; cb resolves exactly once.
  Handle PublishChained(UpdateBatch batch, Handle prev,
                        std::function<void(Status, Epoch)> cb);

  Epoch current_epoch() const { return gossip_->epoch(); }

  /// Epoch-discovery toggle (on by default; off restores gossip-only bases).
  void set_epoch_discovery(bool on) { epoch_discovery_ = on; }

  /// GC policy: after each successful publish, advertise a low-watermark of
  /// (new epoch - keep) to every member, retiring superseded versions below
  /// it. 0 (default) disables GC; retrievals then work at every past epoch.
  void set_gc_keep_epochs(uint64_t keep) { gc_keep_epochs_ = keep; }
  uint64_t gc_keep_epochs() const { return gc_keep_epochs_; }

  /// Pipeline accounting (bench + regression hooks).
  struct PipelineStats {
    uint64_t publishes = 0;        // publishes started
    uint64_t chained = 0;          // based on an in-flight predecessor
    uint64_t chain_fallbacks = 0;  // prev handle given but already resolved
    uint64_t aborted_on_prev = 0;  // aborted because the predecessor failed
    uint64_t put_frames = 0;       // coalesced kPutTuples frames sent
    uint64_t tuple_records = 0;    // tuple records carried by those frames
  };
  const PipelineStats& pipeline_stats() const { return pipeline_stats_; }

 private:
  /// Stage 0: ask every member for its highest stored coordinator epoch;
  /// re-runs the round (up to `rounds_left`) while more than one member
  /// failed to answer, since under single-failure assumptions a committed
  /// record has at least two live replicas — at most one silent member means
  /// at least one holder of the newest record was heard.
  void DiscoverEpoch(Handle st, int rounds_left);
  void BeginPublish(Handle st);
  /// Chained stage 1: derive the base (records + epoch) from the
  /// predecessor's prepared in-memory output; no network round trips.
  void StartChained(Handle st);
  /// Coordinator fetch with walk-back: a torn earlier publish can leave the
  /// discovered base epoch without a committed coordinator record for some
  /// relation; the newest record at-or-below the base is then the relation's
  /// true committed state. A NotFound is only trusted after `stall_left`
  /// same-epoch re-fetches spaced apart in time: right after a membership
  /// change the record may simply not have re-replicated to the new replica
  /// set yet, and walking back past it would drop committed updates.
  void FetchBaseCoordinator(Handle st, const std::string& rel, Epoch epoch,
                            int walk_left, int stall_left);
  void FetchPages(Handle st);
  /// Applies the batch copy-on-write: computes the new pages, tuple writes,
  /// and — via BuildOutputs — the new coordinator records, then *prepares*
  /// the publish (unblocking a chained successor) before gating its own
  /// writes on the predecessor's commit.
  void Apply(Handle st);
  /// Publishes the prepared writes: tuple versions coalesced into one
  /// multi-relation kPutTuples frame per destination node, page versions to
  /// their index nodes. Runs only once the predecessor (if any) committed.
  void IssueWrites(Handle st);
  /// Computes the new-epoch coordinator record of every relation from the
  /// base records plus the touched partitions; stored on the handle for both
  /// the commit stage and any chained successor.
  void BuildOutputs(Handle st);
  /// The commit point: coordinator records are written only after every
  /// tuple/page write succeeded, so a coordinator record never references
  /// state that was lost with a failed publish.
  void WriteCoordinators(Handle st);
  /// Resolves the publish exactly once: on success advances the epoch,
  /// advertises the GC watermark, and marks the handle committed; always
  /// fires the handle's continuation hooks before the user callback.
  void Finish(Handle st, Status status);

  StorageService* service_;
  overlay::GossipService* gossip_;
  bool epoch_discovery_ = true;
  uint64_t gc_keep_epochs_ = 0;
  PipelineStats pipeline_stats_;
};

}  // namespace orchestra::storage

#endif  // ORCHESTRA_STORAGE_PUBLISHER_H_
