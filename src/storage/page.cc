#include "storage/page.h"

#include "common/log.h"
#include "common/serial.h"
#include "hash/sha1.h"

namespace orchestra::storage {

void TupleId::EncodeTo(Writer* w) const {
  w->PutString(key_bytes);
  w->PutVarint64(epoch);
}

Status TupleId::DecodeFrom(Reader* r, TupleId* out) {
  ORC_RETURN_IF_ERROR(r->GetString(&out->key_bytes));
  return r->GetVarint64(&out->epoch);
}

namespace {
// Single-threaded simulation: a plain counter is sufficient.
uint64_t g_tuple_key_hash_count = 0;
}  // namespace

uint64_t TupleKeyHashCount() { return g_tuple_key_hash_count; }

HashId TupleKeyHash(std::string_view key_bytes) {
  g_tuple_key_hash_count += 1;
  Sha1Hasher h;
  h.Update("T\x1f");
  h.Update(key_bytes);
  return HashId::FromDigest(h.Finish());
}

HashId PlacementHash(const RelationDef& def, std::string_view key_bytes) {
  uint32_t arity = def.effective_partition_arity();
  if (arity >= def.schema.key_arity()) return TupleKeyHash(key_bytes);
  auto prefix = PartitionPrefixOfKey(arity, key_bytes);
  if (!prefix.ok()) return TupleKeyHash(key_bytes);
  return TupleKeyHash(*prefix);
}

HashId CoordinatorHash(const std::string& relation, Epoch epoch) {
  Sha1Hasher h;
  h.Update("C\x1f");
  h.Update(relation);
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(epoch >> (8 * i));
  h.Update(buf, sizeof(buf));
  return HashId::FromDigest(h.Finish());
}

HashId ClaimHash(Epoch epoch) {
  Sha1Hasher h;
  h.Update("E\x1f");
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(epoch >> (8 * i));
  h.Update(buf, sizeof(buf));
  return HashId::FromDigest(h.Finish());
}

HashId PartitionBegin(uint32_t partition, uint32_t num_partitions) {
  ORC_CHECK(partition < num_partitions, "partition out of range");
  return HashId::SpacePartition(num_partitions).MultiplyBy(partition);
}

HashId PartitionEnd(uint32_t partition, uint32_t num_partitions) {
  if (partition + 1 == num_partitions) return HashId::Zero();  // wraps
  return HashId::SpacePartition(num_partitions).MultiplyBy(partition + 1);
}

uint32_t PartitionIndexFor(const HashId& h, uint32_t num_partitions) {
  // Binary search over boundaries; num_partitions is small (O(nodes)).
  HashId width = HashId::SpacePartition(num_partitions);
  uint32_t lo = 0, hi = num_partitions - 1;
  while (lo < hi) {
    uint32_t mid = (lo + hi + 1) / 2;
    if (width.MultiplyBy(mid) <= h) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

HashId PartitionHome(uint32_t partition, uint32_t num_partitions) {
  HashId begin = PartitionBegin(partition, num_partitions);
  HashId end = PartitionEnd(partition, num_partitions);
  return begin.ClockwiseMidpoint(end);
}

void PageId::EncodeTo(Writer* w) const {
  w->PutString(relation);
  w->PutVarint64(epoch);
  w->PutVarint32(partition);
}

Status PageId::DecodeFrom(Reader* r, PageId* out) {
  ORC_RETURN_IF_ERROR(r->GetString(&out->relation));
  ORC_RETURN_IF_ERROR(r->GetVarint64(&out->epoch));
  return r->GetVarint32(&out->partition);
}

std::string PageId::ToString() const {
  return relation + "@" + std::to_string(epoch) + "#" + std::to_string(partition);
}

void PageDescriptor::EncodeTo(Writer* w) const {
  id.EncodeTo(w);
  w->PutVarint32(num_partitions);
}

Status PageDescriptor::DecodeFrom(Reader* r, PageDescriptor* out) {
  ORC_RETURN_IF_ERROR(PageId::DecodeFrom(r, &out->id));
  ORC_RETURN_IF_ERROR(r->GetVarint32(&out->num_partitions));
  if (out->num_partitions == 0 || out->id.partition >= out->num_partitions) {
    return Status::Corruption("page descriptor: bad partition");
  }
  return Status::OK();
}

void Page::EncodeTo(Writer* w) const {
  ORC_CHECK(hashes.size() == ids.size(), "page: hashes not parallel to ids");
  desc.EncodeTo(w);
  w->PutVarint64(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i].EncodeTo(w);
    hashes[i].EncodeTo(w);
  }
}

Status Page::DecodeFrom(Reader* r, Page* out) {
  ORC_RETURN_IF_ERROR(PageDescriptor::DecodeFrom(r, &out->desc));
  uint64_t n;
  ORC_RETURN_IF_ERROR(r->GetVarint64(&n));
  out->ids.clear();
  out->ids.reserve(n);
  out->hashes.clear();
  out->hashes.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    TupleId id;
    ORC_RETURN_IF_ERROR(TupleId::DecodeFrom(r, &id));
    HashId h;
    ORC_RETURN_IF_ERROR(HashId::DecodeFrom(r, &h));
    out->ids.push_back(std::move(id));
    out->hashes.push_back(h);
  }
  return Status::OK();
}

void EpochClaimRecord::EncodeTo(Writer* w) const {
  w->PutVarint32(participant);
  w->PutVarint32(node);
  w->PutBool(committed);
  w->PutVarint64(nonce);
  w->PutBool(fenced);
  w->PutBool(purged);
}

Status EpochClaimRecord::DecodeFrom(Reader* r, EpochClaimRecord* out) {
  ORC_RETURN_IF_ERROR(r->GetVarint32(&out->participant));
  ORC_RETURN_IF_ERROR(r->GetVarint32(&out->node));
  ORC_RETURN_IF_ERROR(r->GetBool(&out->committed));
  ORC_RETURN_IF_ERROR(r->GetVarint64(&out->nonce));
  ORC_RETURN_IF_ERROR(r->GetBool(&out->fenced));
  return r->GetBool(&out->purged);
}

void CoordinatorRecord::EncodeTo(Writer* w) const {
  w->PutString(relation);
  w->PutVarint64(epoch);
  w->PutVarint32(participant);
  w->PutVarint64(pages.size());
  for (const auto& p : pages) p.EncodeTo(w);
}

Status CoordinatorRecord::DecodeFrom(Reader* r, CoordinatorRecord* out) {
  ORC_RETURN_IF_ERROR(r->GetString(&out->relation));
  ORC_RETURN_IF_ERROR(r->GetVarint64(&out->epoch));
  ORC_RETURN_IF_ERROR(r->GetVarint32(&out->participant));
  uint64_t n;
  ORC_RETURN_IF_ERROR(r->GetVarint64(&n));
  out->pages.clear();
  out->pages.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PageDescriptor d;
    ORC_RETURN_IF_ERROR(PageDescriptor::DecodeFrom(r, &d));
    out->pages.push_back(std::move(d));
  }
  return Status::OK();
}

}  // namespace orchestra::storage
