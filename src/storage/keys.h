// LocalStore key layouts for the versioned storage roles one node plays
// simultaneously (Fig. 3): data storage node, index node, inverse node, and
// relation coordinator. Layouts are prefix-free across namespaces and
// relations, and ordered so that:
//   * data records of a relation sort by (tuple-key hash, key, epoch) —
//     a page's tuples are "retrieved in a single pass through the hash ID
//     range for that page" (§V-B);
//   * page/coordinator records sort by epoch for debugging scans.
#ifndef ORCHESTRA_STORAGE_KEYS_H_
#define ORCHESTRA_STORAGE_KEYS_H_

#include <string>
#include <string_view>

#include "hash/hash_id.h"
#include "storage/page.h"

namespace orchestra::storage::keys {

// Namespace tag bytes — the first byte of every stored key. These constants
// and the builders/parsers below are the ONE codec for stored-key bytes;
// dispatching on a raw character literal or slicing key bytes by hand
// anywhere else is a codec-unity lint violation
// (docs/STATIC_ANALYSIS.md#codec-rawkey).
inline constexpr char kDataTag = 'D';
inline constexpr char kPageTag = 'P';
inline constexpr char kInverseTag = 'I';
inline constexpr char kCoordTag = 'C';
inline constexpr char kCatalogTag = 'M';
inline constexpr char kClaimTag = 'E';

/// Namespace tag of a stored key ('\0' for the empty key). The only
/// sanctioned way to dispatch on a key's record family.
inline char Tag(std::string_view key) { return key.empty() ? '\0' : key[0]; }

/// One-byte seek prefix for a whole namespace (e.g. the GC sweeps).
inline std::string TagPrefix(char tag) { return std::string(1, tag); }

/// Varint-length-prefixed string: makes multi-part keys prefix-free.
void AppendLenPrefixed(std::string* out, std::string_view s);
void AppendEpochBE(std::string* out, Epoch e);

/// Data record: 'D' <rel> <hash:20B BE> <key_bytes:len-prefixed> <epoch:8B BE>
std::string Data(std::string_view relation, const HashId& hash,
                 std::string_view key_bytes, Epoch epoch);
/// Same layout, with the hash already in its 20-byte big-endian wire form
/// (as carried by kPutTuples/kFetchTuples); splices without a HashId decode.
std::string DataRaw(std::string_view relation, std::string_view hash_be20,
                    std::string_view key_bytes, Epoch epoch);
/// Prefix of all data records of a relation.
std::string DataPrefix(std::string_view relation);
/// Prefix of all data records of a relation with hash >= h (for range scans).
std::string DataHashFloor(std::string_view relation, const HashId& h);

/// Index-node page record: 'P' <rel> <partition:4B BE> <epoch:8B BE>
std::string PageRec(std::string_view relation, Epoch epoch, uint32_t partition);

/// Inverse-node record: 'I' <rel> <partition:4B BE>  ->  latest PageId.
/// "look up the page holding the old version of the tuple using an inverse
/// node" (§IV).
std::string Inverse(std::string_view relation, uint32_t partition);

/// Relation-coordinator record: 'C' <rel> <epoch:8B BE>
std::string Coord(std::string_view relation, Epoch epoch);

/// Catalog entry: 'M' <rel>
std::string Catalog(std::string_view relation);

/// Epoch-claim record: 'E' <epoch:8B BE>  ->  (participant, node) of the
/// writer that owns the epoch. Replicated at ClaimHash(epoch); the claim is
/// the pre-write serialization point of multi-writer publishing (kClaimEpoch)
/// and is retired by GC like coordinator records once below the watermark.
std::string EpochClaim(Epoch epoch);

// --- Inverse parsers, used by the GC retirement pass --------------------
// Each returns false on malformed input (wrong tag, truncation, trailing
// bytes). The parsed views alias `key`.

/// Fields of a data-record key: relation, 20-byte BE hash, key bytes, epoch.
struct ParsedDataKey {
  std::string_view relation;
  std::string_view hash_be20;
  std::string_view key_bytes;
  Epoch epoch = 0;
};
bool ParseData(std::string_view key, ParsedDataKey* out);

/// Fields of a page-record key: relation, partition, epoch.
struct ParsedPageKey {
  std::string_view relation;
  uint32_t partition = 0;
  Epoch epoch = 0;
};
bool ParsePageRec(std::string_view key, ParsedPageKey* out);

/// Fields of a coordinator-record key: relation, epoch.
struct ParsedCoordKey {
  std::string_view relation;
  Epoch epoch = 0;
};
bool ParseCoord(std::string_view key, ParsedCoordKey* out);

/// Epoch of an epoch-claim key.
bool ParseClaim(std::string_view key, Epoch* out);

/// Fields of an inverse-node key: relation, partition (no epoch — the value
/// holds the latest PageId).
struct ParsedInverseKey {
  std::string_view relation;
  uint32_t partition = 0;
};
bool ParseInverse(std::string_view key, ParsedInverseKey* out);

/// Version-group prefix of a data or page key: the key minus its trailing
/// 8-byte big-endian epoch. Keys of one group differ only in epoch and sort
/// oldest-first, which is what the GC retirement pass walks. Returns an
/// empty view for keys too short to carry an epoch suffix.
std::string_view VersionGroupPrefix(std::string_view key);

}  // namespace orchestra::storage::keys

#endif  // ORCHESTRA_STORAGE_KEYS_H_
