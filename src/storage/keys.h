// LocalStore key layouts for the versioned storage roles one node plays
// simultaneously (Fig. 3): data storage node, index node, inverse node, and
// relation coordinator. Layouts are prefix-free across namespaces and
// relations, and ordered so that:
//   * data records of a relation sort by (tuple-key hash, key, epoch) —
//     a page's tuples are "retrieved in a single pass through the hash ID
//     range for that page" (§V-B);
//   * page/coordinator records sort by epoch for debugging scans.
#ifndef ORCHESTRA_STORAGE_KEYS_H_
#define ORCHESTRA_STORAGE_KEYS_H_

#include <string>

#include "hash/hash_id.h"
#include "storage/page.h"

namespace orchestra::storage::keys {

/// Varint-length-prefixed string: makes multi-part keys prefix-free.
void AppendLenPrefixed(std::string* out, const std::string& s);
void AppendEpochBE(std::string* out, Epoch e);

/// Data record: 'D' <rel> <hash:20B BE> <key_bytes:len-prefixed> <epoch:8B BE>
std::string Data(const std::string& relation, const HashId& hash,
                 const std::string& key_bytes, Epoch epoch);
/// Prefix of all data records of a relation.
std::string DataPrefix(const std::string& relation);
/// Prefix of all data records of a relation with hash >= h (for range scans).
std::string DataHashFloor(const std::string& relation, const HashId& h);

/// Index-node page record: 'P' <rel> <partition:4B BE> <epoch:8B BE>
std::string PageRec(const std::string& relation, Epoch epoch, uint32_t partition);

/// Inverse-node record: 'I' <rel> <partition:4B BE>  ->  latest PageId.
/// "look up the page holding the old version of the tuple using an inverse
/// node" (§IV).
std::string Inverse(const std::string& relation, uint32_t partition);

/// Relation-coordinator record: 'C' <rel> <epoch:8B BE>
std::string Coord(const std::string& relation, Epoch epoch);

/// Catalog entry: 'M' <rel>
std::string Catalog(const std::string& relation);

}  // namespace orchestra::storage::keys

#endif  // ORCHESTRA_STORAGE_KEYS_H_
