// The versioned page scheme of §IV (Fig. 3): relations are divided into
// pages, each covering a fixed partition of the tuple-key-hash space. A page
// version lists the TupleIds present in that partition at the epoch it was
// last modified. Coordinator records tie an epoch to its page versions;
// unchanged pages are shared across epochs (copy-on-write, as in CFS/
// log-structured filesystems).
#ifndef ORCHESTRA_STORAGE_PAGE_H_
#define ORCHESTRA_STORAGE_PAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "hash/hash_id.h"
#include "storage/schema.h"

namespace orchestra::storage {

/// Epoch: the global logical timestamp; advances after each published batch.
using Epoch = uint64_t;

/// Participant identity: one per collaborating writer (§II — participants
/// publish disjoint update logs). Epoch claims and coordinator records are
/// tagged with the publishing participant so concurrent publishers can
/// detect same-epoch contention deterministically; 0 means "unset" and is
/// never a valid published identity (Publisher defaults to node id + 1).
using ParticipantId = uint32_t;

/// "The Tuple ID is the key attribute of a tuple and the epoch in which it
/// was last modified" (§IV). key_bytes is the order-preserving encoding of
/// the key attributes; the tuple's hash key is derived from it.
struct TupleId {
  std::string key_bytes;
  Epoch epoch = 0;

  bool operator==(const TupleId&) const = default;
  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, TupleId* out);
};

/// Hash key of a tuple: SHA-1 over its key bytes (relation-independent, so
/// that a relation partitioned on its key is already co-partitioned with any
/// rehash on equal join values — the paper's Fig. 6 plan rehashes R but not
/// S). Determines the data storage node (Fig. 3).
HashId TupleKeyHash(std::string_view key_bytes);

/// Placement hash of a tuple under its relation's partitioning rule: hashes
/// only the placement prefix of the key bytes (RelationDef::
/// partition_key_arity). With the default (all key attributes) this equals
/// TupleKeyHash(key_bytes).
HashId PlacementHash(const RelationDef& def, std::string_view key_bytes);

/// Number of TupleKeyHash (SHA-1 tuple-hash) invocations since process
/// start. The publish pipeline computes each tuple's placement hash exactly
/// once and ships it with the tuple/page wire formats; tests assert the
/// invariant via deltas of this counter.
uint64_t TupleKeyHashCount();

/// Hash location of the relation coordinator for (relation, epoch).
HashId CoordinatorHash(const std::string& relation, Epoch epoch);

/// Hash location of the epoch-claim record for `epoch` — the single
/// serialization point concurrent publishers race through before writing
/// anything at that epoch (kClaimEpoch). Distinct from every relation's
/// CoordinatorHash so claim traffic spreads independently.
HashId ClaimHash(Epoch epoch);

/// The partition boundaries: partition i of P covers
/// [W*i, W*(i+1)) with W = floor(2^160 / P); the last partition absorbs the
/// remainder up to 2^160.
HashId PartitionBegin(uint32_t partition, uint32_t num_partitions);
/// End of partition (2^160 wraps to 0 for the last).
HashId PartitionEnd(uint32_t partition, uint32_t num_partitions);
/// Which partition a hash falls in.
uint32_t PartitionIndexFor(const HashId& h, uint32_t num_partitions);
/// The page's home = midpoint of its range; placing the index entry there
/// co-locates it with the bulk of its tuples (§IV).
HashId PartitionHome(uint32_t partition, uint32_t num_partitions);

/// "The index page ID consists of the relation name, the epoch in which it
/// was last modified, and a unique identifier for that relation and epoch"
/// (our unique id is the partition index) "... and the hash ID where the
/// index page is stored" (derivable via PartitionHome).
struct PageId {
  std::string relation;
  Epoch epoch = 0;       // epoch the page was last modified
  uint32_t partition = 0;

  bool operator==(const PageId&) const = default;
  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, PageId* out);
  std::string ToString() const;
};

/// Entry in a coordinator record: page id + its tuple-ID hash range.
struct PageDescriptor {
  PageId id;
  uint32_t num_partitions = 0;  // of the relation, to derive ranges

  HashId range_begin() const { return PartitionBegin(id.partition, num_partitions); }
  HashId range_end() const { return PartitionEnd(id.partition, num_partitions); }
  HashId home() const { return PartitionHome(id.partition, num_partitions); }

  bool operator==(const PageDescriptor&) const = default;
  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, PageDescriptor* out);
};

/// A page version: the TupleIds in this partition at this epoch, sorted by
/// (hash, key_bytes) so data-node scans are a single ordered pass (§V-B,
/// distributed scan). `hashes[i]` is the placement hash of `ids[i]`,
/// computed once at publish time and carried in the wire/storage format so
/// index nodes and scans never recompute SHA-1 per tuple.
struct Page {
  PageDescriptor desc;
  std::vector<TupleId> ids;
  std::vector<HashId> hashes;  // parallel to ids

  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, Page* out);
};

/// Value of an epoch-claim record ('E' keys, see keys::EpochClaim): which
/// participant owns the epoch, from which node and claim attempt (`nonce` —
/// releases and idempotent re-grants are instance-exact), and whether the
/// epoch's commit completed (`committed` — flipped by kConfirmEpoch; only
/// confirmed epochs are reported by discovery). One codec for every site
/// that touches claim bytes: the claim handlers, release, confirm, replica-
/// push merge, restart rebuild, and the publisher's commit probe.
struct EpochClaimRecord {
  ParticipantId participant = 0;
  uint32_t node = 0;
  bool committed = false;
  uint64_t nonce = 0;
  // Fenced = the epoch is BURNED: no participant (including the original
  // owner) may ever claim or confirm at this epoch again through this
  // replica — contenders skip past it. The participant/node/nonce fields
  // keep naming the fenced instance so late zombie writes are refused
  // instance-exactly. committed and fenced are mutually exclusive for all
  // time on one replica (kFenceEpoch refuses committed claims; confirm
  // refuses fenced epochs) — and when a fence round only PARTIALLY granted,
  // a replica-pushed committed record overrides a fenced one (the commit is
  // a fact the burn promise must yield to).
  bool fenced = false;
  // Purged = the fence reached unanimity: every claim replica granted, so
  // the epoch can never be observed committed and the fencer broadcast the
  // orphan purge. Only purged burns carry purge authority (restart rebuild
  // and replica pushes purge from them); a fenced-but-unpurged record is a
  // burn PROMISE from a possibly-partial fence round and must never delete
  // data. Meaningless unless fenced.
  bool purged = false;

  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, EpochClaimRecord* out);
};

/// "Relation @epoch -> list of pages' IDs & tuple ID hash ranges" (Fig. 3).
/// Only non-empty partitions carry a descriptor. `participant` tags the
/// epoch's writer: storage nodes refuse a conflicting same-epoch record from
/// a different participant with kEpochTaken (first committed writer wins),
/// which is the authoritative commit-time gate of multi-writer publishing.
struct CoordinatorRecord {
  std::string relation;
  Epoch epoch = 0;
  ParticipantId participant = 0;
  std::vector<PageDescriptor> pages;

  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, CoordinatorRecord* out);
};

}  // namespace orchestra::storage

#endif  // ORCHESTRA_STORAGE_PAGE_H_
