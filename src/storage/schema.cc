#include "storage/schema.h"

#include "common/log.h"

namespace orchestra::storage {

std::optional<size_t> Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

void Schema::EncodeTo(Writer* w) const {
  w->PutVarint32(static_cast<uint32_t>(columns_.size()));
  for (const auto& c : columns_) {
    w->PutString(c.name);
    w->PutU8(static_cast<uint8_t>(c.type));
  }
  w->PutVarint32(key_arity_);
}

Status Schema::DecodeFrom(Reader* r, Schema* out) {
  uint32_t n;
  ORC_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > (1u << 12)) return Status::Corruption("schema: absurd arity");
  out->columns_.clear();
  for (uint32_t i = 0; i < n; ++i) {
    ColumnDef c;
    ORC_RETURN_IF_ERROR(r->GetString(&c.name));
    uint8_t t;
    ORC_RETURN_IF_ERROR(r->GetU8(&t));
    c.type = static_cast<ValueType>(t);
    out->columns_.push_back(std::move(c));
  }
  ORC_RETURN_IF_ERROR(r->GetVarint32(&out->key_arity_));
  if (out->key_arity_ > out->columns_.size()) {
    return Status::Corruption("schema: key arity exceeds arity");
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string s = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) s += ", ";
    s += columns_[i].name;
    s += " ";
    s += ValueTypeName(columns_[i].type);
    if (i < key_arity_) s += " KEY";
  }
  s += ")";
  return s;
}

void RelationDef::EncodeTo(Writer* w) const {
  w->PutString(name);
  schema.EncodeTo(w);
  w->PutVarint32(num_partitions);
  w->PutBool(replicate_everywhere);
  w->PutVarint32(partition_key_arity);
}

Status RelationDef::DecodeFrom(Reader* r, RelationDef* out) {
  ORC_RETURN_IF_ERROR(r->GetString(&out->name));
  ORC_RETURN_IF_ERROR(Schema::DecodeFrom(r, &out->schema));
  ORC_RETURN_IF_ERROR(r->GetVarint32(&out->num_partitions));
  ORC_RETURN_IF_ERROR(r->GetBool(&out->replicate_everywhere));
  ORC_RETURN_IF_ERROR(r->GetVarint32(&out->partition_key_arity));
  if (out->num_partitions == 0) return Status::Corruption("relation: 0 partitions");
  if (out->partition_key_arity > out->schema.key_arity()) {
    return Status::Corruption("relation: partition arity exceeds key arity");
  }
  return Status::OK();
}

std::string EncodeTupleKey(const Schema& schema, const Tuple& t) {
  ORC_CHECK(t.size() == schema.arity(), "tuple arity mismatch");
  std::string key;
  for (uint32_t i = 0; i < schema.key_arity(); ++i) {
    t[i].EncodeOrdered(&key);
  }
  return key;
}

Result<std::string> PartitionPrefixOfKey(uint32_t arity, std::string_view key_bytes) {
  std::string_view rest = key_bytes;
  for (uint32_t i = 0; i < arity; ++i) {
    Value v;
    ORC_RETURN_IF_ERROR(Value::DecodeOrdered(&rest, &v));
  }
  return std::string(key_bytes.substr(0, key_bytes.size() - rest.size()));
}

Status DecodeTupleKey(const Schema& schema, std::string_view key_bytes, Tuple* out) {
  out->clear();
  for (uint32_t i = 0; i < schema.key_arity(); ++i) {
    Value v;
    ORC_RETURN_IF_ERROR(Value::DecodeOrdered(&key_bytes, &v));
    out->push_back(std::move(v));
  }
  if (!key_bytes.empty()) return Status::Corruption("key bytes: trailing data");
  return Status::OK();
}

}  // namespace orchestra::storage
