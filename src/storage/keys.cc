#include "storage/keys.h"

namespace orchestra::storage::keys {

void AppendLenPrefixed(std::string* out, const std::string& s) {
  uint64_t v = s.size();
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
  out->append(s);
}

void AppendEpochBE(std::string* out, Epoch e) {
  for (int i = 7; i >= 0; --i) out->push_back(static_cast<char>(e >> (8 * i)));
}

std::string Data(const std::string& relation, const HashId& hash,
                 const std::string& key_bytes, Epoch epoch) {
  std::string k = DataPrefix(relation);
  hash.AppendBigEndian(&k);
  AppendLenPrefixed(&k, key_bytes);
  AppendEpochBE(&k, epoch);
  return k;
}

std::string DataPrefix(const std::string& relation) {
  std::string k = "D";
  AppendLenPrefixed(&k, relation);
  return k;
}

std::string DataHashFloor(const std::string& relation, const HashId& h) {
  std::string k = DataPrefix(relation);
  h.AppendBigEndian(&k);
  return k;
}

std::string PageRec(const std::string& relation, Epoch epoch, uint32_t partition) {
  std::string k = "P";
  AppendLenPrefixed(&k, relation);
  for (int i = 3; i >= 0; --i) k.push_back(static_cast<char>(partition >> (8 * i)));
  AppendEpochBE(&k, epoch);
  return k;
}

std::string Inverse(const std::string& relation, uint32_t partition) {
  std::string k = "I";
  AppendLenPrefixed(&k, relation);
  for (int i = 3; i >= 0; --i) k.push_back(static_cast<char>(partition >> (8 * i)));
  return k;
}

std::string Coord(const std::string& relation, Epoch epoch) {
  std::string k = "C";
  AppendLenPrefixed(&k, relation);
  AppendEpochBE(&k, epoch);
  return k;
}

std::string Catalog(const std::string& relation) {
  std::string k = "M";
  AppendLenPrefixed(&k, relation);
  return k;
}

}  // namespace orchestra::storage::keys
