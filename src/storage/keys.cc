#include "storage/keys.h"

namespace orchestra::storage::keys {

void AppendLenPrefixed(std::string* out, std::string_view s) {
  uint64_t v = s.size();
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
  out->append(s);
}

void AppendEpochBE(std::string* out, Epoch e) {
  for (int i = 7; i >= 0; --i) out->push_back(static_cast<char>(e >> (8 * i)));
}

std::string Data(std::string_view relation, const HashId& hash,
                 std::string_view key_bytes, Epoch epoch) {
  std::string k = DataPrefix(relation);
  hash.AppendBigEndian(&k);
  AppendLenPrefixed(&k, key_bytes);
  AppendEpochBE(&k, epoch);
  return k;
}

std::string DataRaw(std::string_view relation, std::string_view hash_be20,
                    std::string_view key_bytes, Epoch epoch) {
  std::string k = DataPrefix(relation);
  k.append(hash_be20);
  AppendLenPrefixed(&k, key_bytes);
  AppendEpochBE(&k, epoch);
  return k;
}

std::string DataPrefix(std::string_view relation) {
  std::string k = "D";
  AppendLenPrefixed(&k, relation);
  return k;
}

std::string DataHashFloor(std::string_view relation, const HashId& h) {
  std::string k = DataPrefix(relation);
  h.AppendBigEndian(&k);
  return k;
}

std::string PageRec(std::string_view relation, Epoch epoch, uint32_t partition) {
  std::string k = "P";
  AppendLenPrefixed(&k, relation);
  for (int i = 3; i >= 0; --i) k.push_back(static_cast<char>(partition >> (8 * i)));
  AppendEpochBE(&k, epoch);
  return k;
}

std::string Inverse(std::string_view relation, uint32_t partition) {
  std::string k = "I";
  AppendLenPrefixed(&k, relation);
  for (int i = 3; i >= 0; --i) k.push_back(static_cast<char>(partition >> (8 * i)));
  return k;
}

std::string Coord(std::string_view relation, Epoch epoch) {
  std::string k = "C";
  AppendLenPrefixed(&k, relation);
  AppendEpochBE(&k, epoch);
  return k;
}

std::string Catalog(std::string_view relation) {
  std::string k = "M";
  AppendLenPrefixed(&k, relation);
  return k;
}

}  // namespace orchestra::storage::keys
