#include "storage/keys.h"

namespace orchestra::storage::keys {

void AppendLenPrefixed(std::string* out, std::string_view s) {
  uint64_t v = s.size();
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
  out->append(s);
}

void AppendEpochBE(std::string* out, Epoch e) {
  for (int i = 7; i >= 0; --i) out->push_back(static_cast<char>(e >> (8 * i)));
}

std::string Data(std::string_view relation, const HashId& hash,
                 std::string_view key_bytes, Epoch epoch) {
  std::string k = DataPrefix(relation);
  hash.AppendBigEndian(&k);
  AppendLenPrefixed(&k, key_bytes);
  AppendEpochBE(&k, epoch);
  return k;
}

std::string DataRaw(std::string_view relation, std::string_view hash_be20,
                    std::string_view key_bytes, Epoch epoch) {
  std::string k = DataPrefix(relation);
  k.append(hash_be20);
  AppendLenPrefixed(&k, key_bytes);
  AppendEpochBE(&k, epoch);
  return k;
}

std::string DataPrefix(std::string_view relation) {
  std::string k = "D";
  AppendLenPrefixed(&k, relation);
  return k;
}

std::string DataHashFloor(std::string_view relation, const HashId& h) {
  std::string k = DataPrefix(relation);
  h.AppendBigEndian(&k);
  return k;
}

std::string PageRec(std::string_view relation, Epoch epoch, uint32_t partition) {
  std::string k = "P";
  AppendLenPrefixed(&k, relation);
  for (int i = 3; i >= 0; --i) k.push_back(static_cast<char>(partition >> (8 * i)));
  AppendEpochBE(&k, epoch);
  return k;
}

std::string Inverse(std::string_view relation, uint32_t partition) {
  std::string k = "I";
  AppendLenPrefixed(&k, relation);
  for (int i = 3; i >= 0; --i) k.push_back(static_cast<char>(partition >> (8 * i)));
  return k;
}

std::string Coord(std::string_view relation, Epoch epoch) {
  std::string k = "C";
  AppendLenPrefixed(&k, relation);
  AppendEpochBE(&k, epoch);
  return k;
}

std::string Catalog(std::string_view relation) {
  std::string k = "M";
  AppendLenPrefixed(&k, relation);
  return k;
}

std::string EpochClaim(Epoch epoch) {
  std::string k = "E";
  AppendEpochBE(&k, epoch);
  return k;
}

// --- Inverse parsers --------------------------------------------------------
// Built on Reader (the same decoder as the wire formats) for the varint
// length prefixes; the big-endian integers are key-layout-specific (Reader's
// fixed-width integers are little-endian) and decoded here.

namespace {

bool ReadEpochBE(Reader* r, Epoch* out) {
  std::string_view raw;
  if (!r->GetRawView(&raw, 8).ok()) return false;
  Epoch e = 0;
  for (int i = 0; i < 8; ++i) e = (e << 8) | static_cast<unsigned char>(raw[i]);
  *out = e;
  return true;
}

bool ReadU32BE(Reader* r, uint32_t* out) {
  std::string_view raw;
  if (!r->GetRawView(&raw, 4).ok()) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | static_cast<unsigned char>(raw[i]);
  *out = v;
  return true;
}

}  // namespace

bool ParseData(std::string_view key, ParsedDataKey* out) {
  if (key.empty() || key[0] != 'D') return false;
  Reader r(key.substr(1));
  return r.GetStringView(&out->relation).ok() &&
         r.GetRawView(&out->hash_be20, 20).ok() &&
         r.GetStringView(&out->key_bytes).ok() && ReadEpochBE(&r, &out->epoch) &&
         r.AtEnd();
}

bool ParsePageRec(std::string_view key, ParsedPageKey* out) {
  if (key.empty() || key[0] != 'P') return false;
  Reader r(key.substr(1));
  return r.GetStringView(&out->relation).ok() && ReadU32BE(&r, &out->partition) &&
         ReadEpochBE(&r, &out->epoch) && r.AtEnd();
}

bool ParseCoord(std::string_view key, ParsedCoordKey* out) {
  if (key.empty() || key[0] != 'C') return false;
  Reader r(key.substr(1));
  return r.GetStringView(&out->relation).ok() && ReadEpochBE(&r, &out->epoch) &&
         r.AtEnd();
}

bool ParseClaim(std::string_view key, Epoch* out) {
  if (key.empty() || key[0] != 'E') return false;
  Reader r(key.substr(1));
  return ReadEpochBE(&r, out) && r.AtEnd();
}

bool ParseInverse(std::string_view key, ParsedInverseKey* out) {
  if (key.empty() || key[0] != 'I') return false;
  Reader r(key.substr(1));
  return r.GetStringView(&out->relation).ok() && ReadU32BE(&r, &out->partition) &&
         r.AtEnd();
}

std::string_view VersionGroupPrefix(std::string_view key) {
  if (key.size() < 9) return {};  // tag + 8-byte epoch minimum
  return key.substr(0, key.size() - 8);
}

}  // namespace orchestra::storage::keys
