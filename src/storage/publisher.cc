#include "storage/publisher.h"

#include <algorithm>

#include "common/log.h"

namespace orchestra::storage {

void Publisher::CreateRelation(const RelationDef& def,
                               std::function<void(Status)> cb) {
  // The catalog is replicated at every node (tiny, like Nation/Region §VI-A).
  Writer w;
  def.EncodeTo(&w);
  std::vector<net::NodeId> everyone;
  for (const auto& m : service_->snapshot().members()) everyone.push_back(m.node);

  auto after_catalog = [this, def, cb = std::move(cb)](Status st) {
    if (!st.ok()) {
      cb(st);
      return;
    }
    CoordinatorRecord rec;
    rec.relation = def.name;
    rec.epoch = gossip_->epoch();
    Writer rw;
    rec.EncodeTo(&rw);
    auto replicas = service_->snapshot().ReplicasOf(
        CoordinatorHash(def.name, rec.epoch), service_->replication());
    service_->CallAll(replicas, kPutCoordinator, rw.data(), cb);
  };
  service_->CallAll(everyone, kCatalogAdd, w.data(), std::move(after_catalog));
}

void Publisher::PublishBatch(UpdateBatch batch,
                             std::function<void(Status, Epoch)> cb) {
  auto st = std::make_shared<PubState>();
  st->batch = std::move(batch);
  st->cb = std::move(cb);

  for (const auto& [rel, updates] : st->batch) {
    if (!service_->Relation(rel).ok()) {
      st->cb(Status::InvalidArgument("publish to unknown relation " + rel), 0);
      return;
    }
    (void)updates;
  }

  if (!epoch_discovery_) {
    st->base_epoch = gossip_->epoch();
    st->new_epoch = st->base_epoch + 1;
    BeginPublish(st);
    return;
  }

  DiscoverEpoch(st, /*rounds_left=*/2);
}

void Publisher::DiscoverEpoch(std::shared_ptr<PubState> st, int rounds_left) {
  // Stage 0: epoch discovery. Every member reports the highest coordinator
  // epoch it stores; with replication r the newest coordinator record
  // survives on r nodes, so any surviving replica answers with the true
  // current epoch even when this node's gossip counter is stale. If more
  // than one member fails to answer (dead node plus dropped exchanges), the
  // newest record's holders might all be among the silent — under-discovery
  // would collide the new epoch with a committed one — so the round is
  // retried before proceeding best-effort.
  struct Disc {
    Epoch max_epoch = 0;
    size_t outstanding = 0;
    size_t members = 0;
    size_t successes = 0;
    bool started = false;
  };
  auto disc = std::make_shared<Disc>();
  std::vector<net::NodeId> members;
  for (const auto& m : service_->snapshot().members()) members.push_back(m.node);
  disc->outstanding = members.size();
  disc->members = members.size();
  auto finish_discovery = [this, st, disc, rounds_left]() {
    if (disc->started) return;
    disc->started = true;
    if (disc->members > 0 && disc->members - disc->successes > 1 &&
        rounds_left > 0) {
      DiscoverEpoch(st, rounds_left - 1);
      return;
    }
    gossip_->AdvanceTo(disc->max_epoch);
    st->base_epoch = std::max(gossip_->epoch(), disc->max_epoch);
    st->new_epoch = st->base_epoch + 1;
    BeginPublish(st);
  };
  if (members.empty()) {
    finish_discovery();
    return;
  }
  for (net::NodeId m : members) {
    service_->Call(
        m, kGetMaxEpoch, {},
        [disc, finish_discovery](Status s, const std::string& reply) {
          if (s.ok()) {
            Reader r(reply);
            uint64_t e = 0;
            if (r.GetVarint64(&e).ok()) {
              disc->max_epoch = std::max<Epoch>(disc->max_epoch, e);
              disc->successes += 1;
            }
          }
          if (--disc->outstanding == 0) finish_discovery();
        },
        kEpochDiscoveryTimeoutUs);
  }
}

void Publisher::BeginPublish(std::shared_ptr<PubState> st) {
  // Stage 1: coordinator records of every relation at the base epoch
  // (needed both for the copy-on-write page lookups and for carrying
  // unchanged relations forward to the new epoch).
  auto rels = service_->RelationNames();
  st->outstanding = rels.size();
  if (rels.empty()) {
    st->cb(Status::FailedPrecondition("no relations in catalog"), 0);
    return;
  }
  for (const auto& rel : rels) {
    FetchBaseCoordinator(st, rel, st->base_epoch, /*walk_left=*/16,
                         /*stall_left=*/2);
  }
}

void Publisher::FetchBaseCoordinator(std::shared_ptr<PubState> st,
                                     const std::string& rel, Epoch epoch,
                                     int walk_left, int stall_left) {
  service_->GetCoordinator(
      rel, epoch,
      [this, st, rel, epoch, walk_left, stall_left](Status s,
                                                    CoordinatorRecord rec) {
        if (s.IsNotFound() && epoch > 0 && stall_left > 0) {
          // Every replica answered, none has the record — but right after a
          // membership change the record may exist and simply not have
          // reached the reshuffled replica set yet. Re-fetch the SAME epoch
          // after a re-replication-sized pause before trusting the hole.
          // (Delivered as a node task: dies with this node, fail-stop safe.)
          service_->RunAfter(2 * sim::kMicrosPerSec, [this, st, rel, epoch,
                                                      walk_left, stall_left] {
            FetchBaseCoordinator(st, rel, epoch, walk_left, stall_left - 1);
          });
          return;
        }
        if (s.IsNotFound() && epoch > 0 && walk_left > 0) {
          // A persistent hole: a torn publish never committed this epoch for
          // this relation — the newest committed record below it carries the
          // relation's state forward. Transient failures (timeout, drop,
          // unreachable replicas) must NOT walk back: the record may exist,
          // and basing the publish below it would silently drop committed
          // updates. Those fail the publish; retrying the batch is safe.
          FetchBaseCoordinator(st, rel, epoch - 1, walk_left - 1,
                               /*stall_left=*/1);
          return;
        }
        if (!s.ok() && st->first_error.ok()) st->first_error = s;
        if (s.ok()) st->records[rel] = std::move(rec);
        if (--st->outstanding == 0) {
          if (!st->first_error.ok()) {
            st->cb(st->first_error, 0);
            return;
          }
          FetchPages(st);
        }
      });
}

void Publisher::FetchPages(std::shared_ptr<PubState> st) {
  // Group each relation's updates by partition. Each tuple's placement hash
  // is computed here, once, and carried through the rest of the publish.
  for (auto& [rel, updates] : st->batch) {
    const RelationDef* def = service_->FindRelation(rel);
    std::map<uint32_t, PartitionWork> by_partition;
    for (const Update& u : updates) {
      std::string kb = EncodeTupleKey(def->schema, u.tuple);
      HashId h = PlacementHash(*def, kb);
      uint32_t part = PartitionIndexFor(h, def->num_partitions);
      PartitionWork& pw = by_partition[part];
      pw.relation = rel;
      pw.partition = part;
      pw.updates.push_back(&u);
      pw.update_keys.push_back(std::move(kb));
      pw.update_hashes.push_back(h);
    }
    // Partition -> current descriptor, built once per relation instead of a
    // linear scan over rec.pages for every touched partition.
    const CoordinatorRecord& rec = st->records[rel];
    std::map<uint32_t, const PageDescriptor*> desc_of;
    for (const PageDescriptor& d : rec.pages) desc_of[d.id.partition] = &d;
    for (auto& [part, pw] : by_partition) {
      auto d = desc_of.find(part);
      if (d != desc_of.end()) {
        pw.has_old_desc = true;
        pw.old_desc = *d->second;
      }
      st->parts.push_back(std::move(pw));
    }
  }

  // Stage 2: fetch the current page of each affected partition. The paper
  // locates it via the inverse node (§IV); with the coordinator record in
  // hand the descriptor already names it, so we go straight to the index
  // node. (ReadInverseLocal/kGetInverse expose the inverse-node path too.)
  st->outstanding = 1;  // guard against zero fetches
  for (size_t i = 0; i < st->parts.size(); ++i) {
    if (!st->parts[i].has_old_desc) continue;
    st->outstanding += 1;
    service_->GetPage(st->parts[i].old_desc, [this, st, i](Status s, Page page) {
      if (!s.ok() && st->first_error.ok()) st->first_error = s;
      if (s.ok()) st->parts[i].old_page = std::move(page);
      if (--st->outstanding == 0) ApplyAndWrite(st);
    });
  }
  if (--st->outstanding == 0) ApplyAndWrite(st);
}

void Publisher::ApplyAndWrite(std::shared_ptr<PubState> st) {
  if (!st->first_error.ok()) {
    st->cb(st->first_error, 0);
    return;
  }

  struct TupleWrite {
    std::string relation;
    TupleId id;
    std::string tuple_bytes;
    HashId hash;
    bool everywhere;
  };
  std::vector<TupleWrite> tuple_writes;
  std::vector<Page> new_pages;
  auto& partition_nonempty = st->partition_nonempty;

  for (PartitionWork& pw : st->parts) {
    const RelationDef* def = service_->FindRelation(pw.relation);
    // key bytes -> (epoch, hash) of the live version. Hashes come from the
    // old page (for carried-forward tuples) or from FetchPages (for
    // updates); nothing here computes SHA-1.
    struct Live {
      Epoch epoch;
      const HashId* hash;
    };
    std::map<std::string_view, Live> ids;
    for (size_t i = 0; i < pw.old_page.ids.size(); ++i) {
      ids[pw.old_page.ids[i].key_bytes] = {pw.old_page.ids[i].epoch,
                                           &pw.old_page.hashes[i]};
    }

    for (size_t j = 0; j < pw.updates.size(); ++j) {
      const Update* u = pw.updates[j];
      const std::string& kb = pw.update_keys[j];
      if (u->kind == Update::Kind::kDelete) {
        ids.erase(std::string_view(kb));
        // Delete tombstone: an empty-value data record at the new epoch. No
        // page ever lists it; it exists so data-node GC can tell "this key
        // was deleted at epoch e" apart from "version still live" and
        // reclaim the dead versions (then the tombstone itself). Writes
        // preserve batch order, so insert+delete of one key in one batch
        // resolves to whichever came last.
        tuple_writes.push_back(TupleWrite{pw.relation,
                                          TupleId{kb, st->new_epoch},
                                          std::string(),
                                          pw.update_hashes[j],
                                          def->replicate_everywhere});
        continue;
      }
      ids[kb] = {st->new_epoch, &pw.update_hashes[j]};
      Writer tw;
      EncodeTuple(u->tuple, &tw);
      tuple_writes.push_back(TupleWrite{pw.relation,
                                        TupleId{kb, st->new_epoch},
                                        tw.Release(),
                                        pw.update_hashes[j],
                                        def->replicate_everywhere});
    }

    Page page;
    page.desc.id = PageId{pw.relation, st->new_epoch, pw.partition};
    page.desc.num_partitions = def->num_partitions;
    // Sort by (hash, key) so data-node scans are one ordered pass — a
    // decorated sort over the precomputed hashes, not SHA-1 per comparison.
    struct Row {
      const HashId* hash;
      std::string_view key;
      Epoch epoch;
    };
    std::vector<Row> rows;
    rows.reserve(ids.size());
    for (const auto& [kb, live] : ids) rows.push_back({live.hash, kb, live.epoch});
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      if (*a.hash != *b.hash) return *a.hash < *b.hash;
      return a.key < b.key;
    });
    page.ids.reserve(rows.size());
    page.hashes.reserve(rows.size());
    for (const Row& row : rows) {
      page.ids.push_back(TupleId{std::string(row.key), row.epoch});
      page.hashes.push_back(*row.hash);
    }
    partition_nonempty[pw.relation][pw.partition] = !page.ids.empty();
    // Empty pages are still written (they keep the inverse node current);
    // they simply carry no descriptor in the new coordinator record.
    new_pages.push_back(std::move(page));
  }

  // Stage 3: tuple versions and page versions. Coordinator records — the
  // commit point — only go out once every write here has succeeded
  // (WriteCoordinators), so a torn publish can leave orphan tuples/pages at
  // the uncommitted epoch but never a coordinator record referencing state
  // that was not fully written. Orphans are overwritten byte-identically
  // when the publisher retries the batch, and GC retires them eventually.
  st->outstanding = 1;
  auto track = [st](Status s) {
    if (!s.ok() && st->first_error.ok()) st->first_error = s;
  };
  auto dec = [this, st]() {
    if (--st->outstanding == 0) {
      if (!st->first_error.ok()) {
        FinishIfIdle(st);
      } else {
        WriteCoordinators(st);
      }
    }
  };

  const auto& snap = service_->snapshot();
  std::vector<net::NodeId> everyone;
  for (const auto& m : snap.members()) everyone.push_back(m.node);

  // 3a: tuple versions, batched per destination node. The wire format leads
  // each tuple with its placement hash so receivers key their stores without
  // rehashing (kPutTuples: hash(20B BE), key, epoch, tuple bytes).
  std::map<net::NodeId, std::map<std::string, Writer>> per_node_rel;
  std::map<net::NodeId, std::map<std::string, uint64_t>> per_node_rel_count;
  std::string hash_be;  // reused 20-byte scratch: no per-tuple allocation
  for (const TupleWrite& tw : tuple_writes) {
    hash_be.clear();
    tw.hash.AppendBigEndian(&hash_be);
    std::vector<net::NodeId> targets =
        tw.everywhere ? everyone : snap.ReplicasOf(tw.hash, service_->replication());
    for (net::NodeId t : targets) {
      Writer& w = per_node_rel[t][tw.relation];
      w.PutRaw(hash_be.data(), hash_be.size());
      w.PutString(tw.id.key_bytes);
      w.PutVarint64(tw.id.epoch);
      w.PutString(tw.tuple_bytes);
      per_node_rel_count[t][tw.relation] += 1;
    }
  }
  for (auto& [target, rels] : per_node_rel) {
    for (auto& [rel, w] : rels) {
      Writer body;
      body.PutString(rel);
      body.PutVarint64(per_node_rel_count[target][rel]);
      body.PutRaw(w.data().data(), w.size());
      st->outstanding += 1;
      service_->Call(target, kPutTuples, body.Release(),
                     [track, dec](Status s, const std::string&) {
                       track(s);
                       dec();
                     });
    }
  }

  // 3b: new page versions to their index nodes.
  for (const Page& page : new_pages) {
    const RelationDef* def = service_->FindRelation(page.desc.id.relation);
    Writer w;
    page.EncodeTo(&w);
    std::vector<net::NodeId> targets =
        def->replicate_everywhere
            ? everyone
            : snap.ReplicasOf(page.desc.home(), service_->replication());
    st->outstanding += 1;
    service_->CallAll(targets, kPutPage, w.data(), [track, dec](Status s) {
      track(s);
      dec();
    });
  }

  dec();
}

void Publisher::WriteCoordinators(std::shared_ptr<PubState> st) {
  const auto& snap = service_->snapshot();
  const auto& partition_nonempty = st->partition_nonempty;
  st->outstanding = 1;
  auto track = [st](Status s) {
    if (!s.ok() && st->first_error.ok()) st->first_error = s;
  };
  auto dec = [this, st]() {
    if (--st->outstanding == 0) FinishIfIdle(st);
  };

  // Commit: coordinator records for EVERY relation at the new epoch.
  for (const auto& rel : service_->RelationNames()) {
    CoordinatorRecord rec;
    rec.relation = rel;
    rec.epoch = st->new_epoch;
    const CoordinatorRecord& old = st->records[rel];
    auto changed = partition_nonempty.find(rel);
    // Carry forward untouched pages.
    for (const PageDescriptor& d : old.pages) {
      bool touched = changed != partition_nonempty.end() &&
                     changed->second.count(d.id.partition) > 0;
      if (!touched) rec.pages.push_back(d);
    }
    // Add the new versions of touched, non-empty partitions.
    if (changed != partition_nonempty.end()) {
      const RelationDef* def = service_->FindRelation(rel);
      for (const auto& [part, nonempty] : changed->second) {
        if (!nonempty) continue;
        PageDescriptor d;
        d.id = PageId{rel, st->new_epoch, part};
        d.num_partitions = def->num_partitions;
        rec.pages.push_back(d);
      }
    }
    std::sort(rec.pages.begin(), rec.pages.end(),
              [](const PageDescriptor& a, const PageDescriptor& b) {
                return a.id.partition < b.id.partition;
              });
    Writer w;
    rec.EncodeTo(&w);
    auto replicas = snap.ReplicasOf(CoordinatorHash(rel, st->new_epoch),
                                    service_->replication());
    st->outstanding += 1;
    service_->CallAll(replicas, kPutCoordinator, w.data(), [track, dec](Status s) {
      track(s);
      dec();
    });
  }

  if (--st->outstanding == 0) FinishIfIdle(st);
}

void Publisher::FinishIfIdle(std::shared_ptr<PubState> st) {
  if (st->done) return;
  st->done = true;
  if (!st->first_error.ok()) {
    st->cb(st->first_error, 0);
    return;
  }
  gossip_->AdvanceTo(st->new_epoch);
  // Coordinator role: advertise the GC low-watermark. One-way and
  // best-effort — a node that misses it catches up on the next publish
  // (SetGcWatermark re-runs retirement even at an unchanged watermark).
  if (gc_keep_epochs_ > 0 && st->new_epoch > gc_keep_epochs_) {
    Epoch w = st->new_epoch - gc_keep_epochs_;
    Writer ww;
    ww.PutVarint64(w);
    for (const auto& m : service_->snapshot().members()) {
      service_->SendOneWay(m.node, kSetWatermark, ww.data());
    }
  }
  st->cb(Status::OK(), st->new_epoch);
}

}  // namespace orchestra::storage
