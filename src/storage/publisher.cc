#include "storage/publisher.h"

#include <algorithm>

#include "common/log.h"

namespace orchestra::storage {

/// Everything one in-flight publish owns. Shared between the publish's own
/// async stages (each RPC callback keeps the handle alive) and — when
/// pipelined — a chained successor, which holds `prev` until its write gate
/// resolves. Cross-publish continuation hooks (`on_prepared`, `on_done`)
/// capture the *successor* weakly so an abandoned pipeline can never form a
/// shared_ptr cycle; the client::Session retains every in-flight handle.
struct Publisher::PubState {
  struct PartitionWork {
    std::string relation;
    uint32_t partition = 0;
    bool has_old_desc = false;
    PageDescriptor old_desc;
    std::vector<const Update*> updates;
    // Parallel to `updates`: encoded key bytes and placement hash, computed
    // exactly once per update in FetchPages and reused everywhere after
    // (page sort, tuple writes, wire format) — SHA-1 never runs twice for
    // the same tuple in a publish.
    std::vector<std::string> update_keys;
    std::vector<HashId> update_hashes;
    Page old_page;  // empty when !has_old_desc
  };

  struct TupleWrite {
    std::string relation;
    TupleId id;
    std::string tuple_bytes;
    HashId hash;
    bool everywhere = false;
  };

  UpdateBatch batch;
  std::function<void(Status, Epoch)> cb;
  Epoch base_epoch = 0;
  Epoch new_epoch = 0;
  std::map<std::string, CoordinatorRecord> records;  // base-epoch records
  size_t outstanding = 0;
  Status first_error;
  std::vector<PartitionWork> parts;
  // Touched partitions per relation (true = new page version is non-empty),
  // carried from the apply stage to the coordinator construction.
  std::map<std::string, std::map<uint32_t, bool>> partition_nonempty;

  // Prepared output: what a chained successor bases itself on, and what the
  // write/commit stages send. Valid once `prepared`; released at Finish.
  std::vector<TupleWrite> tuple_writes;
  std::vector<Page> new_pages;
  std::map<std::string, CoordinatorRecord> out_records;  // new-epoch records

  // Lifecycle. `prepared` -> outputs computed (successors may start);
  // `records_committed` -> every coordinator record acked (successors may
  // WRITE; the confirm round overlaps them); `done` -> resolved;
  // `committed` -> done with success (commit point passed and confirmed,
  // epoch advanced). A successor's writes wait for `records_committed`; its
  // own COMMIT additionally waits for `done` (commit order + the
  // fail-the-suffix contract). A contention re-base clears `prepared` again
  // while the attempt state is rebuilt, so late-chaining successors wait for
  // the re-based outputs.
  bool prepared = false;
  bool records_committed = false;
  bool done = false;
  bool committed = false;
  Status final_status;
  Handle prev;         // chain predecessor; cleared when the write gate opens
  Handle commit_prev;  // retained until the commit gate (prev fully resolved)
  std::vector<std::function<void()>> on_prepared;
  std::vector<std::function<void()>> on_records_committed;
  std::vector<std::function<void()>> on_done;

  // Multi-writer contention bookkeeping (reset by ResetAttempt). The claim
  // round runs CONCURRENTLY with the prepare stages (it is started as soon
  // as the attempt's epoch is known); its outcome is acted on only once the
  // publish is prepared and its write gate is open (MaybeIssue).
  enum class ClaimState : uint8_t { kNone, kInFlight, kGranted, kLost, kError };
  ClaimState claim_state = ClaimState::kNone;
  uint64_t claim_round = 0;    // generation guard: a re-base invalidates any
                               // still-in-flight claim round
  uint64_t claim_nonce = 0;    // instance id the latest round stored
  ParticipantId claim_winner = 0;  // smallest winner named by a refusal
  bool claim_split = false;        // we were granted at least one fragment
  Status claim_error;
  Epoch claim_attempted = 0;   // epoch a claim round was sent for (fragments
                               // may be stored; released on failure/loss
                               // unless writes were issued — see below)
  Epoch claimed_epoch = 0;     // epoch this publish holds a full claim on
  bool write_gate_open = false;
  bool writes_issued = false;  // IssueWrites put bytes on the wire: a failed
                               // publish then KEEPS its claim, pinning the
                               // epoch so this participant's same-batch retry
                               // recommits the SAME epoch byte-identically —
                               // no other writer can take the epoch and leave
                               // our partial writes as shadowing orphans
  int claim_stall_left = 6;    // AwaitWinner probes before failing the batch
  int rebase_left = 4;         // contention re-bases allowed for this publish
  int fence_skip_left = 64;    // burned epochs this publish may step past —
                               // separate from rebase_left because a skip
                               // keeps the base and prepared records intact
                               // and always moves forward, while abandonment
                               // churn can burn runs of epochs far wider than
                               // any sane contention re-base budget
  bool claim_fenced = false;   // the claim round hit a BURNED epoch
  int fence_rounds_left = 2;   // fence attempts per attempt (reset on re-base)
  ParticipantId fence_target = 0;  // stalled owner named by the last probe

  void FireRecordsCommitted() {
    records_committed = true;
    for (size_t i = 0; i < on_records_committed.size(); ++i) {
      on_records_committed[i]();
    }
    on_records_committed.clear();
  }

  void FirePrepared() {
    prepared = true;
    // Index loop: StartChained may run synchronously and register further
    // hooks on *other* states, never re-entrantly on this vector.
    for (size_t i = 0; i < on_prepared.size(); ++i) on_prepared[i]();
    on_prepared.clear();
  }
};

void Publisher::CreateRelation(const RelationDef& def,
                               std::function<void(Status)> cb) {
  // The catalog is replicated at every node (tiny, like Nation/Region §VI-A).
  Writer w;
  def.EncodeTo(&w);
  std::vector<net::NodeId> everyone;
  for (const auto& m : service_->snapshot().members()) everyone.push_back(m.node);

  auto after_catalog = [this, def, cb = std::move(cb)](Status st) {
    if (!st.ok()) {
      cb(st);
      return;
    }
    CoordinatorRecord rec;
    rec.relation = def.name;
    rec.epoch = gossip_->epoch();
    rec.participant = participant_;
    Writer rw;
    rec.EncodeTo(&rw);
    auto replicas = service_->snapshot().ReplicasOf(
        CoordinatorHash(def.name, rec.epoch), service_->replication());
    service_->CallAll(replicas, kPutCoordinator, rw.data(), cb);
  };
  service_->CallAll(everyone, kCatalogAdd, w.data(), std::move(after_catalog));
}

void Publisher::PublishBatch(UpdateBatch batch,
                             std::function<void(Status, Epoch)> cb) {
  PublishChained(std::move(batch), nullptr, std::move(cb));
}

Publisher::Handle Publisher::PublishChained(UpdateBatch batch, Handle prev,
                                            std::function<void(Status, Epoch)> cb) {
  auto st = std::make_shared<PubState>();
  st->batch = std::move(batch);
  st->cb = std::move(cb);
  pipeline_stats_.publishes += 1;

  for (const auto& [rel, updates] : st->batch) {
    if (!service_->Relation(rel).ok()) {
      Finish(st, Status::InvalidArgument("publish to unknown relation " + rel));
      return st;
    }
    (void)updates;
  }

  // Chain only onto a predecessor that is still in flight: its in-memory
  // output is then by construction the newest epoch this participant can
  // know about. A *resolved* predecessor carries no such freshness (another
  // participant may have published since), so that falls back to the full
  // discovery path.
  if (prev && !prev->done) {
    pipeline_stats_.chained += 1;
    st->prev = std::move(prev);
    if (st->prev->prepared) {
      StartChained(st);
    } else {
      std::weak_ptr<PubState> weak = st;
      st->prev->on_prepared.push_back([this, weak] {
        if (Handle s = weak.lock()) StartChained(s);
      });
    }
    return st;
  }
  if (prev) pipeline_stats_.chain_fallbacks += 1;

  if (!epoch_discovery_) {
    st->base_epoch = gossip_->epoch();
    st->new_epoch = st->base_epoch + 1;
    BeginPublish(st);
    return st;
  }
  DiscoverEpoch(st, /*rounds_left=*/2);
  return st;
}

void Publisher::StartChained(Handle st) {
  Handle prev = st->prev;
  if (prev == nullptr || st->done) return;
  if (prev->done && !prev->final_status.ok()) {
    pipeline_stats_.aborted_on_prev += 1;
    st->prev.reset();
    Finish(st, Status::Aborted("pipeline predecessor failed: " +
                               prev->final_status.ToString()));
    return;
  }
  // The predecessor's prepared output IS this publish's base: its new-epoch
  // coordinator records cover every relation, so discovery and the base
  // coordinator fetches are skipped entirely. The epoch claim launches now,
  // overlapping this publish's prepare stages AND the predecessor's writes.
  st->base_epoch = prev->new_epoch;
  st->new_epoch = st->base_epoch + 1;
  st->records = prev->out_records;
  StartClaim(st);
  FetchPages(st);
}

void Publisher::DiscoverEpoch(Handle st, int rounds_left) {
  // Stage 0: epoch discovery. Every member reports the highest coordinator
  // epoch it stores; with replication r the newest coordinator record
  // survives on r nodes, so any surviving replica answers with the true
  // current epoch even when this node's gossip counter is stale. If more
  // than one member fails to answer (dead node plus dropped exchanges), the
  // newest record's holders might all be among the silent — under-discovery
  // would collide the new epoch with a committed one — so the round is
  // retried before proceeding best-effort.
  struct Disc {
    Epoch max_epoch = 0;
    size_t outstanding = 0;
    size_t members = 0;
    size_t successes = 0;
    bool started = false;
  };
  auto disc = std::make_shared<Disc>();
  std::vector<net::NodeId> members;
  for (const auto& m : service_->snapshot().members()) members.push_back(m.node);
  disc->outstanding = members.size();
  disc->members = members.size();
  auto finish_discovery = [this, st, disc, rounds_left]() {
    if (disc->started) return;
    disc->started = true;
    if (disc->members > 0 && disc->members - disc->successes > 1 &&
        rounds_left > 0) {
      DiscoverEpoch(st, rounds_left - 1);
      return;
    }
    gossip_->AdvanceTo(disc->max_epoch);
    st->base_epoch = std::max(gossip_->epoch(), disc->max_epoch);
    st->new_epoch = st->base_epoch + 1;
    BeginPublish(st);
  };
  if (members.empty()) {
    finish_discovery();
    return;
  }
  for (net::NodeId m : members) {
    service_->Call(
        m, kGetMaxEpoch, {},
        [disc, finish_discovery](Status s, const std::string& reply) {
          if (s.ok()) {
            Reader r(reply);
            uint64_t e = 0;
            if (r.GetVarint64(&e).ok()) {
              disc->max_epoch = std::max<Epoch>(disc->max_epoch, e);
              disc->successes += 1;
            }
          }
          if (--disc->outstanding == 0) finish_discovery();
        },
        kEpochDiscoveryTimeoutUs);
  }
}

void Publisher::BeginPublish(Handle st) {
  // Stage 1: coordinator records of every relation at the base epoch
  // (needed both for the copy-on-write page lookups and for carrying
  // unchanged relations forward to the new epoch). The epoch claim launches
  // concurrently — by the time the prepare stages finish, the claim outcome
  // is usually already in.
  auto rels = service_->RelationNames();
  st->outstanding = rels.size();
  if (rels.empty()) {
    Finish(st, Status::FailedPrecondition("no relations in catalog"));
    return;
  }
  StartClaim(st);
  for (const auto& rel : rels) {
    FetchBaseCoordinator(st, rel, st->base_epoch, /*walk_left=*/16,
                         /*stall_left=*/4);
  }
}

void Publisher::FetchBaseCoordinator(Handle st, const std::string& rel,
                                     Epoch epoch, int walk_left, int stall_left) {
  service_->GetCoordinator(
      rel, epoch,
      [this, st, rel, epoch, walk_left, stall_left](Status s,
                                                    CoordinatorRecord rec) {
        if (st->done) return;
        if (s.IsNotFound() && epoch > 0 && stall_left > 0) {
          // Right after a membership change the record may exist and simply
          // not have reached the reshuffled replica set yet: re-fetch the
          // SAME epoch after a re-replication-sized pause before trusting
          // the hole. (Delivered as a node task: dies with this node,
          // fail-stop safe.)
          service_->RunAfter(2 * sim::kMicrosPerSec,
                             [this, st, rel, epoch, walk_left, stall_left] {
                               FetchBaseCoordinator(st, rel, epoch, walk_left,
                                                    stall_left - 1);
                             });
          return;
        }
        if (s.IsNotFound() && epoch > 0 && walk_left > 0) {
          // A persistent hole: this relation has no record at the base —
          // which happens when it was CREATED after that epoch committed
          // (CreateRelation writes its first record at the then-current
          // epoch). The newest record below the base carries its state
          // forward. This is safe under multi-writer: the base is a
          // CONFIRMED epoch, and everything at or below a confirmed epoch
          // is committed (partial records can only exist at the frontier's
          // wedged successor), so the walk can never absorb uncommitted
          // state — the stalls above already guarded the replication-lag
          // case. Transient errors (timeout, drop) still fail the publish.
          FetchBaseCoordinator(st, rel, epoch - 1, walk_left - 1,
                               /*stall_left=*/1);
          return;
        }
        if (!s.ok() && st->first_error.ok()) st->first_error = s;
        if (s.ok()) st->records[rel] = std::move(rec);
        if (--st->outstanding == 0) {
          if (!st->first_error.ok()) {
            Finish(st, st->first_error);
            return;
          }
          FetchPages(st);
        }
      });
}

void Publisher::FetchPages(Handle st) {
  // Group each relation's updates by partition. Each tuple's placement hash
  // is computed here, once, and carried through the rest of the publish.
  for (auto& [rel, updates] : st->batch) {
    const RelationDef* def = service_->FindRelation(rel);
    std::map<uint32_t, PubState::PartitionWork> by_partition;
    for (const Update& u : updates) {
      std::string kb = EncodeTupleKey(def->schema, u.tuple);
      HashId h = PlacementHash(*def, kb);
      uint32_t part = PartitionIndexFor(h, def->num_partitions);
      PubState::PartitionWork& pw = by_partition[part];
      pw.relation = rel;
      pw.partition = part;
      pw.updates.push_back(&u);
      pw.update_keys.push_back(std::move(kb));
      pw.update_hashes.push_back(h);
    }
    // Partition -> current descriptor, built once per relation instead of a
    // linear scan over rec.pages for every touched partition.
    const CoordinatorRecord& rec = st->records[rel];
    std::map<uint32_t, const PageDescriptor*> desc_of;
    for (const PageDescriptor& d : rec.pages) desc_of[d.id.partition] = &d;
    for (auto& [part, pw] : by_partition) {
      auto d = desc_of.find(part);
      if (d != desc_of.end()) {
        pw.has_old_desc = true;
        pw.old_desc = *d->second;
      }
      st->parts.push_back(std::move(pw));
    }
  }

  // Stage 2: fetch the current page of each affected partition. The paper
  // locates it via the inverse node (§IV); with the coordinator record in
  // hand the descriptor already names it, so we go straight to the index
  // node. (ReadInverseLocal/kGetInverse expose the inverse-node path too.)
  //
  // Chained publishes: a descriptor at an uncommitted ancestor's epoch names
  // a page that may still be in flight to its index nodes — it MUST be taken
  // from that ancestor's in-memory output, which doubles as the pipeline
  // overlap win: these partitions cost no round trip at all. The walk covers
  // the whole live chain (a window-4 pipeline can reference pages from three
  // epochs back); ancestors whose chain link was already cleared have
  // committed, so their pages are durably fetchable over the network.
  auto page_from_chain = [&st](const PubState::PartitionWork& pw) -> const Page* {
    for (const PubState* anc = st->prev.get(); anc != nullptr;
         anc = anc->prev.get()) {
      if (pw.old_desc.id.epoch != anc->new_epoch) continue;
      for (const Page& page : anc->new_pages) {
        if (page.desc.id.relation == pw.relation &&
            page.desc.id.partition == pw.partition) {
          return &page;
        }
      }
      return nullptr;  // right epoch, page missing: fetch over the network
    }
    return nullptr;
  };
  st->outstanding = 1;  // guard against zero fetches
  for (size_t i = 0; i < st->parts.size(); ++i) {
    PubState::PartitionWork& pw = st->parts[i];
    if (!pw.has_old_desc) continue;
    if (const Page* cached = page_from_chain(pw)) {
      pw.old_page = *cached;
      continue;
    }
    st->outstanding += 1;
    service_->GetPage(pw.old_desc, [this, st, i](Status s, Page page) {
      if (!s.ok() && st->first_error.ok()) st->first_error = s;
      if (s.ok()) st->parts[i].old_page = std::move(page);
      if (--st->outstanding == 0) Apply(st);
    });
  }
  if (--st->outstanding == 0) Apply(st);
}

void Publisher::Apply(Handle st) {
  if (!st->first_error.ok()) {
    Finish(st, st->first_error);
    return;
  }

  for (PubState::PartitionWork& pw : st->parts) {
    const RelationDef* def = service_->FindRelation(pw.relation);
    // key bytes -> (epoch, hash) of the live version. Hashes come from the
    // old page (for carried-forward tuples) or from FetchPages (for
    // updates); nothing here computes SHA-1.
    struct Live {
      Epoch epoch;
      const HashId* hash;
    };
    std::map<std::string_view, Live> ids;
    for (size_t i = 0; i < pw.old_page.ids.size(); ++i) {
      ids[pw.old_page.ids[i].key_bytes] = {pw.old_page.ids[i].epoch,
                                           &pw.old_page.hashes[i]};
    }

    for (size_t j = 0; j < pw.updates.size(); ++j) {
      const Update* u = pw.updates[j];
      const std::string& kb = pw.update_keys[j];
      if (u->kind == Update::Kind::kDelete) {
        ids.erase(std::string_view(kb));
        // Delete tombstone: an empty-value data record at the new epoch. No
        // page ever lists it; it exists so data-node GC can tell "this key
        // was deleted at epoch e" apart from "version still live" and
        // reclaim the dead versions (then the tombstone itself). Writes
        // preserve batch order, so insert+delete of one key in one batch
        // resolves to whichever came last.
        st->tuple_writes.push_back(
            PubState::TupleWrite{pw.relation,
                                 TupleId{kb, st->new_epoch},
                                 std::string(),
                                 pw.update_hashes[j],
                                 def->replicate_everywhere});
        continue;
      }
      ids[kb] = {st->new_epoch, &pw.update_hashes[j]};
      Writer tw;
      EncodeTuple(u->tuple, &tw);
      st->tuple_writes.push_back(
          PubState::TupleWrite{pw.relation,
                               TupleId{kb, st->new_epoch},
                               tw.Release(),
                               pw.update_hashes[j],
                               def->replicate_everywhere});
    }

    Page page;
    page.desc.id = PageId{pw.relation, st->new_epoch, pw.partition};
    page.desc.num_partitions = def->num_partitions;
    // Sort by (hash, key) so data-node scans are one ordered pass — a
    // decorated sort over the precomputed hashes, not SHA-1 per comparison.
    struct Row {
      const HashId* hash;
      std::string_view key;
      Epoch epoch;
    };
    std::vector<Row> rows;
    rows.reserve(ids.size());
    for (const auto& [kb, live] : ids) rows.push_back({live.hash, kb, live.epoch});
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      if (*a.hash != *b.hash) return *a.hash < *b.hash;
      return a.key < b.key;
    });
    page.ids.reserve(rows.size());
    page.hashes.reserve(rows.size());
    for (const Row& row : rows) {
      page.ids.push_back(TupleId{std::string(row.key), row.epoch});
      page.hashes.push_back(*row.hash);
    }
    st->partition_nonempty[pw.relation][pw.partition] = !page.ids.empty();
    // Empty pages are still written (they keep the inverse node current);
    // they simply carry no descriptor in the new coordinator record.
    st->new_pages.push_back(std::move(page));
  }

  // The publish is now *prepared*: its output (new pages + coordinator
  // records) exists in memory, so a chained successor can begin its own
  // fetch/partition/apply stages — overlapping them with this publish's
  // writes and commit.
  BuildOutputs(st);
  st->FirePrepared();

  // Write gate: a chained publish puts nothing on the wire until the
  // predecessor's coordinator records are all acked (its commit, minus the
  // confirm round, which then overlaps our writes); its own COMMIT
  // additionally waits for the predecessor to fully resolve
  // (WriteCoordinators). This keeps the pipeline's failure story identical
  // to sequential publishing — at most one publish per chain can leave
  // orphan versions at an epoch it claimed, and only its own same-batch
  // retry can rewrite that epoch, so the GC sweep's locally-checkable
  // precondition holds. Once the gate opens, the publish must still hold
  // its epoch CLAIM before anything goes on the wire (MaybeIssue).
  Handle prev = st->prev;
  if (prev == nullptr) {
    st->write_gate_open = true;
    MaybeIssue(st);
    return;
  }
  st->commit_prev = prev;  // retained for the commit gate
  if (prev->records_committed || prev->done) {
    st->prev.reset();
    ReleaseGate(st, prev);
    return;
  }
  std::weak_ptr<PubState> weak = st;
  prev->on_records_committed.push_back([this, weak] {
    Handle s = weak.lock();
    if (s == nullptr || s->done) return;
    Handle p = s->prev;
    s->prev.reset();
    if (p != nullptr) ReleaseGate(s, p);
  });
}

void Publisher::ReleaseGate(Handle st, Handle prev) {
  if (st->done) return;
  if (prev->done && !prev->final_status.ok()) {
    pipeline_stats_.aborted_on_prev += 1;
    Finish(st, Status::Aborted("pipeline predecessor failed: " +
                               prev->final_status.ToString()));
    return;
  }
  if (prev->new_epoch != st->base_epoch) {
    // The predecessor lost an epoch race and re-based: it committed at a
    // later epoch than the one our prepared output was built against, so our
    // base coordinator records, page contents, epoch — and the claim round
    // we launched for it — are all stale. Re-base onto its FINAL output. Its
    // records are copied here (the hook runs before Finish releases them);
    // its pages are already durably committed, so the re-run fetches them
    // over the network. Any fragments our stale claim stored sit at an
    // epoch at or below the predecessor's committed one — no future claim
    // ever targets it, and GC sweeps it.
    pipeline_stats_.chain_rebases += 1;
    if (written_epochs_.count(st->new_epoch) == 0) {
      ReleaseClaim(st->new_epoch, st->claim_nonce);
    }
    if (prev->done) {
      // The predecessor already RESOLVED — Finish released its out_records,
      // so the in-memory copy path would hand us an EMPTY base and silently
      // drop every relation's carried-forward state. Its committed records
      // are durable; re-fetch them over the network instead.
      Rebase(st, prev->new_epoch);
      return;
    }
    auto records = prev->out_records;
    ResetAttempt(st);
    st->records = std::move(records);
    st->base_epoch = prev->new_epoch;
    st->new_epoch = st->base_epoch + 1;
    StartClaim(st);
    FetchPages(st);
    return;
  }
  st->write_gate_open = true;
  MaybeIssue(st);
}

void Publisher::ResetAttempt(Handle st) {
  st->records.clear();
  st->parts.clear();
  st->tuple_writes.clear();
  st->new_pages.clear();
  st->out_records.clear();
  st->partition_nonempty.clear();
  st->first_error = Status::OK();
  st->outstanding = 0;
  // Late-chaining successors must wait for the re-based outputs.
  st->prepared = false;
  st->write_gate_open = false;
  // Invalidate any in-flight claim round (its completion becomes a no-op).
  st->claim_round += 1;
  st->claim_state = PubState::ClaimState::kNone;
  st->claim_nonce = 0;
  st->claim_winner = 0;
  st->claim_split = false;
  st->claim_error = Status::OK();
  st->claim_attempted = 0;
  st->claimed_epoch = 0;
  st->writes_issued = false;
  st->claim_stall_left = 6;
  st->claim_fenced = false;
  st->fence_rounds_left = 2;
  st->fence_target = 0;
}

void Publisher::ReleaseClaim(Epoch epoch, uint64_t nonce) {
  Writer w;
  w.PutVarint64(epoch);
  w.PutVarint32(participant_);
  w.PutVarint64(nonce);
  auto replicas =
      service_->snapshot().ReplicasOf(ClaimHash(epoch), service_->replication());
  for (net::NodeId r : replicas) {
    service_->SendOneWay(r, kReleaseEpoch, w.data());
  }
}

void Publisher::StartClaim(Handle st) {
  if (st->done) return;
  const Epoch epoch = st->new_epoch;
  const uint64_t round_id = ++st->claim_round;
  st->claim_state = PubState::ClaimState::kInFlight;
  st->claim_attempted = epoch;
  auto replicas =
      service_->snapshot().ReplicasOf(ClaimHash(epoch), service_->replication());
  if (replicas.empty()) {  // degenerate single-node teardown; nothing to race
    st->claim_state = PubState::ClaimState::kGranted;
    st->claimed_epoch = epoch;
    MaybeIssue(st);
    return;
  }
  // The requester needs EVERY replica to grant: under the single-failure
  // assumption any two claim rounds for one epoch overlap on at least one
  // live replica, so two full claims for the same epoch cannot both be
  // granted (the same overlap argument epoch discovery already relies on).
  struct Round {
    size_t outstanding = 0;
    size_t granted = 0;
    bool any_taken = false;
    bool any_fenced = false;   // a replica holds the BURNED marker
    ParticipantId winner = 0;  // smallest winner named by a refusal
    Status error;              // first non-taken failure
  };
  auto round = std::make_shared<Round>();
  round->outstanding = replicas.size();
  st->claim_nonce = ++claim_seq_;
  Writer w;
  w.PutVarint64(epoch);
  w.PutVarint32(participant_);
  w.PutVarint32(service_->node());
  w.PutVarint64(st->claim_nonce);
  std::string body = w.Release();
  for (net::NodeId target : replicas) {
    service_->Call(
        target, kClaimEpoch, body,
        [this, st, round, round_id, epoch](Status s, const std::string& reply) {
          if (s.ok()) {
            round->granted += 1;
          } else if (s.IsFenced()) {
            round->any_fenced = true;
          } else if (s.IsEpochTaken()) {
            round->any_taken = true;
            Reader r(reply);
            uint32_t p = 0;
            if (r.GetVarint32(&p).ok() &&
                (round->winner == 0 || p < round->winner)) {
              round->winner = p;
            }
          } else if (round->error.ok()) {
            round->error = s;
          }
          if (--round->outstanding > 0) return;
          if (st->done || round_id != st->claim_round) return;  // stale round
          if (round->any_fenced) {
            // The epoch is BURNED: nobody — this participant included — may
            // ever hold it again. Routed through the kLost path so fragments
            // stored on grant-side replicas are released before skipping.
            st->claim_state = PubState::ClaimState::kLost;
            st->claim_fenced = true;
            st->claim_split = round->granted > 0;
          } else if (round->any_taken) {
            pipeline_stats_.epoch_conflicts += 1;
            st->claim_state = PubState::ClaimState::kLost;
            st->claim_winner = round->winner;
            st->claim_split = round->granted > 0;
          } else if (!round->error.ok()) {
            st->claim_state = PubState::ClaimState::kError;
            st->claim_error = round->error;
          } else {
            st->claim_state = PubState::ClaimState::kGranted;
            st->claimed_epoch = epoch;
            ScheduleClaimRefresh(st, round_id);
          }
          MaybeIssue(st);
        },
        kEpochDiscoveryTimeoutUs);
  }
}

void Publisher::MaybeIssue(Handle st) {
  // Writes launch once all three hold: outputs prepared, write gate open
  // (predecessor's records acked), claim round resolved. The claim usually
  // resolves first — it was launched with the prepare stages.
  if (st->done || !st->prepared || !st->write_gate_open || st->writes_issued) {
    return;
  }
  switch (st->claim_state) {
    case PubState::ClaimState::kNone:
    case PubState::ClaimState::kInFlight:
      return;  // claim completion re-enters
    case PubState::ClaimState::kGranted:
      IssueWrites(st);
      return;
    case PubState::ClaimState::kError:
      // A claim replica was unreachable: fail the batch (retryable);
      // fragments we stored are released by Finish.
      Finish(st, st->claim_error);
      return;
    case PubState::ClaimState::kLost: {
      bool split = st->claim_split;
      st->claim_state = PubState::ClaimState::kNone;  // consumed
      if (st->claim_fenced) {
        st->claim_fenced = false;
        if (split && written_epochs_.count(st->new_epoch) == 0) {
          ReleaseClaim(st->new_epoch, st->claim_nonce);
        }
        if (written_epochs_.count(st->new_epoch) > 0) {
          // WE are the fenced instance at an epoch we hold writes at. The
          // burn may be PARTIAL (a fence round that granted on some replicas
          // and was refused on others leaves us unable to either commit or
          // safely abandon the epoch). Escalate a SELF-fence: if it reaches
          // unanimity, the purge broadcast removes our orphans cluster-wide
          // and FenceEpoch's grant path unpins and skips; if a replica
          // refuses because the epoch committed, the re-claim loop recommits
          // it. Out of fence budget -> retryable failure that KEEPS the pin
          // and the claim, so the session's same-batch retry resolves it.
          if (st->fence_rounds_left-- > 0) {
            st->fence_target = participant_;
            FenceEpoch(st, st->new_epoch);
          } else {
            Finish(st,
                   Status::Unavailable(
                       "epoch " + std::to_string(st->new_epoch) +
                       " is burn-promised under this participant's writes"));
          }
        } else {
          SkipFenced(st, st->new_epoch);
        }
        return;
      }
      LoseEpoch(st, st->new_epoch, split);
      return;
    }
  }
}

void Publisher::LoseEpoch(Handle st, Epoch contested, bool split) {
  if (st->done) return;
  // Our fragments (replicas that granted before another writer was stored)
  // must not wedge the epoch for everyone else. We issued no writes (claims
  // precede writes), so releasing is always safe here — and the release is
  // instance-exact (nonce), so it can never unpin a later attempt.
  if (split && written_epochs_.count(contested) == 0) {
    ReleaseClaim(contested, st->claim_nonce);
  }
  // There is deliberately NO takeover of another participant's claim — not
  // even of a split or seemingly-dead one. Any takeover rule that looks
  // safe locally breaks under membership churn (a kill reshuffles the claim
  // replica set, so a "split" view can coexist with a full claim on the old
  // set whose holder is writing). Instead: wait for the holder to commit
  // (then re-base) or to release/retry (then re-claim). Split-claim races
  // where nobody won resolve themselves because AwaitWinner's stall delay
  // carries a deterministic per-participant phase offset — contenders
  // re-claim at distinct times, and the first one wins the whole slot.
  AwaitWinner(st, contested);
}

void Publisher::AwaitWinner(Handle st, Epoch contested) {
  if (st->done) return;
  if (st->claim_stall_left-- <= 0) {
    // The winner has neither committed nor released within the stall budget.
    // With fencing enabled and a named owner, escalate: ask the claim
    // replicas to retire the claim as abandoned (they refuse if the owner is
    // merely slow — its heartbeat keeps the freshness clock warm). Without
    // fencing (or out of fence budget), fail the batch; the session's
    // same-batch retry discipline re-runs discovery + claim later, and the
    // winner's own retry (or its release) eventually unwedges the epoch.
    if (fence_after_us_ > 0 && st->fence_target != 0 &&
        st->fence_rounds_left-- > 0) {
      FenceEpoch(st, contested);
      return;
    }
    Finish(st, Status::Unavailable(
                   "epoch " + std::to_string(contested) +
                   " claimed by another participant that has not committed"));
    return;
  }
  // Probe the claim's `committed` flag — NOT a coordinator record. A torn
  // commit leaves partial records at the contested epoch, and basing on
  // those would absorb the winner's uncommitted (and possibly cross-attempt
  // inconsistent) state; the confirm flag is flipped only after EVERY record
  // of the epoch was acked.
  Writer w;
  w.PutVarint64(contested);
  auto replicas = service_->snapshot().ReplicasOf(ClaimHash(contested),
                                                  service_->replication());
  service_->Call(
      replicas.empty() ? service_->node() : replicas.front(), kGetEpochClaim,
      w.Release(),
      [this, st, contested](Status s, const std::string& reply) {
        if (st->done) return;
        if (s.ok()) {
          Reader r(reply);
          EpochClaimRecord claim;
          if (EpochClaimRecord::DecodeFrom(&r, &claim).ok()) {
            if (claim.committed) {
              Rebase(st, contested);
              return;
            }
            if (claim.fenced && claim.purged) {
              // The fence reached unanimity: the epoch is burned for
              // everyone — skip past it with the base intact.
              SkipFenced(st, contested);
              return;
            }
            // Remember the stalled owner: a fence round must name the exact
            // participant it retires (the replicas refuse a mismatched
            // target, so a hand-off between owners can never be mis-fenced).
            // A bare burn promise (fenced, not purged) lands here too — it
            // is NOT skippable (the epoch may yet commit); waiting and, on
            // stall, re-fencing it to unanimity is what resolves it.
            if (claim.participant != 0) st->fence_target = claim.participant;
          }
        }
        // Not committed yet: re-claim after a pause. If the winner's publish
        // failed and released the claim, the re-claim is granted and this
        // publish proceeds at its ORIGINAL epoch with its prepared outputs
        // intact; otherwise the refusal routes back here with one less
        // stall. The pause carries a deterministic per-participant phase
        // offset so split-claim contenders re-claim at distinct times and
        // the earliest one wins the whole slot (no takeover needed).
        sim::SimTime pause = 2 * sim::kMicrosPerSec +
                             static_cast<sim::SimTime>(participant_) *
                                 (sim::kMicrosPerSec / 4);
        service_->RunAfter(pause, [this, st] {
          StartClaim(st);
        });
      },
      kEpochDiscoveryTimeoutUs);
}

void Publisher::FenceEpoch(Handle st, Epoch contested) {
  if (st->done) return;
  // One kFenceEpoch per claim replica. Every replica must grant — the same
  // all-replicas rule claims use, and for the same overlap reason: a fence
  // round and the owner's refresh round share at least one live replica, so
  // a refreshing owner is always seen by the fence round and refused there.
  auto replicas = service_->snapshot().ReplicasOf(ClaimHash(contested),
                                                  service_->replication());
  if (replicas.empty()) {  // degenerate teardown: nothing holds the epoch
    SkipFenced(st, contested);
    return;
  }
  struct FenceRound {
    size_t outstanding = 0;
    size_t total = 0;
    size_t granted = 0;
    bool have_instance = false;
    ParticipantId fenced_participant = 0;
    uint64_t fenced_nonce = 0;
  };
  auto round = std::make_shared<FenceRound>();
  round->outstanding = replicas.size();
  round->total = replicas.size();
  round->fenced_participant = st->fence_target;
  Writer w;
  w.PutVarint64(contested);
  w.PutVarint32(participant_);       // fencer (audit trail)
  w.PutVarint32(st->fence_target);   // the instance being retired
  w.PutVarint64(fence_after_us_);    // staleness TTL the replicas check
  std::string body = w.Release();
  for (net::NodeId target : replicas) {
    service_->Call(
        target, kFenceEpoch, body,
        [this, st, round, contested](Status s, const std::string& reply) {
          if (s.ok()) {
            round->granted += 1;
            if (!round->have_instance) {
              // Grant replies name the exact fenced instance; the purge
              // broadcast carries it so stragglers refuse its writes too.
              Reader r(reply);
              uint32_t p = 0, node = 0;
              uint64_t nonce = 0;
              if (r.GetVarint32(&p).ok() && r.GetVarint32(&node).ok() &&
                  r.GetVarint64(&nonce).ok()) {
                round->have_instance = true;
                round->fenced_participant = p;
                round->fenced_nonce = nonce;
              }
            }
          }
          if (--round->outstanding > 0) return;
          if (st->done) return;
          if (round->granted == round->total) {
            pipeline_stats_.fences += 1;
            // The epoch is burned. Tell EVERY member (not just the claim
            // replicas) so orphan tuple/page/coordinator versions the
            // abandoned writer landed are purged cluster-wide and its late
            // writes are refused wherever they arrive. One-way best-effort:
            // replica pushes piggyback the burned set for any node missed.
            Writer pw;
            pw.PutVarint64(contested);
            pw.PutVarint32(round->fenced_participant);
            pw.PutVarint64(round->fenced_nonce);
            for (const auto& m : service_->snapshot().members()) {
              service_->SendOneWay(m.node, kPurgeEpoch, pw.data());
            }
            // Unanimity also settles a SELF-fence: with the purge broadcast
            // out, our own partial writes at the burned epoch are doomed
            // everywhere, so the pin (which exists to keep them from turning
            // into shadowing orphans) can be dropped before skipping past.
            written_epochs_.erase(contested);
            SkipFenced(st, contested);
            return;
          }
          // Any refusal aborts the fence: the owner refreshed (merely slow),
          // the epoch committed/changed hands, or a replica was unreachable
          // (then the overlap argument cannot be relied on). Resume waiting
          // with a short stall budget — the next exhaustion may retry the
          // fence if budget remains.
          st->claim_stall_left = 2;
          sim::SimTime pause = 2 * sim::kMicrosPerSec +
                               static_cast<sim::SimTime>(participant_) *
                                   (sim::kMicrosPerSec / 4);
          service_->RunAfter(pause, [this, st] { StartClaim(st); });
        },
        kEpochDiscoveryTimeoutUs);
  }
}

void Publisher::SkipFenced(Handle st, Epoch burned) {
  if (st->done) return;
  // Skips have their own (deliberately deep) budget: each burned epoch costs
  // one claim round and nothing else, and new_epoch only ever moves forward,
  // so the loop terminates at the far edge of any burn region. Only a
  // pathological fence storm fails the publish here.
  if (--st->fence_skip_left < 0) {
    Finish(st, Status::Aborted("fencing: burned-epoch skip budget exhausted"));
    return;
  }
  pipeline_stats_.fenced_skips += 1;
  // Unlike Rebase, the base is still valid — a burned epoch committed
  // nothing, so this publish's base records carry forward unchanged and only
  // the target epoch moves past the burn. (In-memory re-base, like
  // ReleaseGate's chain path.)
  auto records = std::move(st->records);
  ResetAttempt(st);
  st->records = std::move(records);
  st->new_epoch = burned + 1;
  StartClaim(st);
  FetchPages(st);
}

void Publisher::ScheduleClaimRefresh(Handle st, uint64_t round_id) {
  if (fence_after_us_ == 0) return;
  sim::SimTime period = std::max<sim::SimTime>(1, fence_after_us_ / 3);
  service_->RunAfter(period, [this, st, round_id] {
    // Only the round that was granted refreshes; a re-base, loss, or
    // resolution since then makes this heartbeat a no-op.
    if (st->done || round_id != st->claim_round ||
        st->claim_state != PubState::ClaimState::kGranted) {
      return;
    }
    Writer w;
    w.PutVarint64(st->claimed_epoch);
    w.PutVarint32(participant_);
    w.PutVarint32(service_->node());
    w.PutVarint64(st->claim_nonce);  // same instance: an idempotent re-grant
    std::string body = w.Release();
    auto replicas = service_->snapshot().ReplicasOf(ClaimHash(st->claimed_epoch),
                                                    service_->replication());
    struct Beat {
      size_t outstanding = 0;
      bool fenced = false;
    };
    auto beat = std::make_shared<Beat>();
    beat->outstanding = replicas.size();
    if (replicas.empty()) {
      ScheduleClaimRefresh(st, round_id);
      return;
    }
    for (net::NodeId target : replicas) {
      service_->Call(
          target, kClaimEpoch, body,
          [this, st, round_id, beat](Status s, const std::string&) {
            if (s.IsFenced()) beat->fenced = true;
            if (--beat->outstanding > 0) return;
            if (st->done || round_id != st->claim_round) return;
            if (beat->fenced) {
              // Lost a fence race while holding the claim (we looked
              // abandoned long enough). Writes issued -> the zombie path:
              // every further write/commit at the burned epoch is refused
              // with kFenced, so the pipeline surfaces the terminal error on
              // its own — just stop refreshing. No writes yet -> route
              // through the kLost/claim_fenced path, which MaybeIssue
              // consumes only once the prepare stages are quiescent (acting
              // here could collide with in-flight page fetches).
              if (!st->writes_issued) {
                st->claim_state = PubState::ClaimState::kLost;
                st->claim_fenced = true;
                st->claim_split = true;  // we held a grant; release fragments
                MaybeIssue(st);
              }
              return;
            }
            ScheduleClaimRefresh(st, round_id);
          },
          kEpochDiscoveryTimeoutUs);
    }
  });
}

void Publisher::Rebase(Handle st, Epoch base) {
  if (st->done) return;
  if (--st->rebase_left < 0) {
    Finish(st, Status::Aborted("epoch contention: rebase budget exhausted"));
    return;
  }
  pipeline_stats_.rebases += 1;
  ResetAttempt(st);
  st->base_epoch = base;
  st->new_epoch = base + 1;
  auto rels = service_->RelationNames();
  if (rels.empty()) {
    Finish(st, Status::FailedPrecondition("no relations in catalog"));
    return;
  }
  StartClaim(st);  // overlaps the re-based record fetches
  st->outstanding = rels.size();
  for (const auto& rel : rels) {
    FetchRebaseCoordinator(st, rel, base, /*walk_left=*/16, /*stall_left=*/3);
  }
}

void Publisher::FetchRebaseCoordinator(Handle st, const std::string& rel,
                                       Epoch base, int walk_left,
                                       int stall_left) {
  // The winner's confirmed commit covers every relation IT knew — a
  // relation created after its BuildOutputs has no record at `base`, and
  // the newest record below carries it forward (safe for the same reason as
  // FetchBaseCoordinator's walk: everything at or below a confirmed epoch
  // is committed). Stalls come first so a replication-lagged record is not
  // walked past.
  service_->GetCoordinator(
      rel, base,
      [this, st, rel, base, walk_left, stall_left](Status s,
                                                   CoordinatorRecord rec) {
        if (st->done) return;
        if (s.IsNotFound() && stall_left > 0) {
          service_->RunAfter(2 * sim::kMicrosPerSec,
                             [this, st, rel, base, walk_left, stall_left] {
                               FetchRebaseCoordinator(st, rel, base, walk_left,
                                                      stall_left - 1);
                             });
          return;
        }
        if (s.IsNotFound() && base > 0 && walk_left > 0) {
          FetchRebaseCoordinator(st, rel, base - 1, walk_left - 1,
                                 /*stall_left=*/1);
          return;
        }
        if (!s.ok() && st->first_error.ok()) st->first_error = s;
        if (s.ok()) st->records[rel] = std::move(rec);
        if (--st->outstanding == 0) {
          if (!st->first_error.ok()) {
            Finish(st, st->first_error);
            return;
          }
          FetchPages(st);
        }
      });
}

void Publisher::BuildOutputs(Handle st) {
  // New-epoch coordinator record for EVERY relation: carry forward untouched
  // pages, add the new versions of touched non-empty partitions. Built once,
  // pre-write: the commit stage serializes these, and a chained successor
  // bases itself on them.
  for (const auto& rel : service_->RelationNames()) {
    CoordinatorRecord rec;
    rec.relation = rel;
    rec.epoch = st->new_epoch;
    rec.participant = participant_;
    // Every relation's base record must be present: committing from a
    // default-constructed base would silently drop the relation's entire
    // carried-forward state at this epoch.
    ORC_CHECK(st->records.count(rel) > 0,
              "publish base is missing a relation's coordinator record");
    const CoordinatorRecord& old = st->records[rel];
    auto changed = st->partition_nonempty.find(rel);
    for (const PageDescriptor& d : old.pages) {
      bool touched = changed != st->partition_nonempty.end() &&
                     changed->second.count(d.id.partition) > 0;
      if (!touched) rec.pages.push_back(d);
    }
    if (changed != st->partition_nonempty.end()) {
      const RelationDef* def = service_->FindRelation(rel);
      for (const auto& [part, nonempty] : changed->second) {
        if (!nonempty) continue;
        PageDescriptor d;
        d.id = PageId{rel, st->new_epoch, part};
        d.num_partitions = def->num_partitions;
        rec.pages.push_back(d);
      }
    }
    std::sort(rec.pages.begin(), rec.pages.end(),
              [](const PageDescriptor& a, const PageDescriptor& b) {
                return a.id.partition < b.id.partition;
              });
    st->out_records[rel] = std::move(rec);
  }
}

void Publisher::IssueWrites(Handle st) {
  // Stage 3: tuple versions and page versions. Coordinator records — the
  // commit point — only go out once every write here has succeeded
  // (WriteCoordinators), so a torn publish can leave orphan tuples/pages at
  // the uncommitted epoch but never a coordinator record referencing state
  // that was not fully written. Orphans are overwritten byte-identically
  // when the publisher retries the batch, and GC retires them eventually.
  st->outstanding = 1;
  auto track = [st](Status s) {
    if (!s.ok() && st->first_error.ok()) st->first_error = s;
  };
  auto dec = [this, st]() {
    if (--st->outstanding == 0) {
      if (!st->first_error.ok()) {
        Finish(st, st->first_error);
      } else {
        WriteCoordinators(st);
      }
    }
  };

  const auto& snap = service_->snapshot();
  std::vector<net::NodeId> everyone;
  for (const auto& m : snap.members()) everyone.push_back(m.node);

  st->writes_issued = true;
  written_epochs_.insert(st->new_epoch);

  // 3a: tuple versions, coalesced into ONE multi-relation kPutTuples frame
  // per destination node — however many relations and partitions the batch
  // touches, each replica sees a single RPC. The wire format leads each
  // tuple with its placement hash so receivers key their stores without
  // rehashing (per relation: rel, n, then hash(20B BE), key, epoch, bytes).
  std::map<net::NodeId, std::map<std::string_view, Writer>> per_node_rel;
  std::map<net::NodeId, std::map<std::string_view, uint64_t>> per_node_count;
  std::string hash_be;  // reused 20-byte scratch: no per-tuple allocation
  for (const PubState::TupleWrite& tw : st->tuple_writes) {
    hash_be.clear();
    tw.hash.AppendBigEndian(&hash_be);
    std::vector<net::NodeId> targets =
        tw.everywhere ? everyone : snap.ReplicasOf(tw.hash, service_->replication());
    for (net::NodeId t : targets) {
      Writer& w = per_node_rel[t][tw.relation];
      w.PutRaw(hash_be.data(), hash_be.size());
      w.PutString(tw.id.key_bytes);
      w.PutVarint64(tw.id.epoch);
      w.PutString(tw.tuple_bytes);
      per_node_count[t][tw.relation] += 1;
      pipeline_stats_.tuple_records += 1;
    }
  }
  for (auto& [target, rels] : per_node_rel) {
    Writer body;
    body.PutVarint64(rels.size());
    for (auto& [rel, w] : rels) {
      body.PutString(rel);
      body.PutVarint64(per_node_count[target][rel]);
      body.PutRaw(w.data().data(), w.size());
    }
    st->outstanding += 1;
    pipeline_stats_.put_frames += 1;
    service_->Call(target, kPutTuples, body.Release(),
                   [track, dec](Status s, const std::string&) {
                     track(s);
                     dec();
                   });
  }

  // 3b: new page versions to their index nodes.
  for (const Page& page : st->new_pages) {
    const RelationDef* def = service_->FindRelation(page.desc.id.relation);
    Writer w;
    page.EncodeTo(&w);
    std::vector<net::NodeId> targets =
        def->replicate_everywhere
            ? everyone
            : snap.ReplicasOf(page.desc.home(), service_->replication());
    st->outstanding += 1;
    service_->CallAll(targets, kPutPage, w.data(), [track, dec](Status s) {
      track(s);
      dec();
    });
  }

  dec();
}

void Publisher::WriteCoordinators(Handle st) {
  // Commit gate: a chained publish commits only after its predecessor fully
  // resolved (including the confirm round, which overlapped our writes). A
  // predecessor that failed at any stage aborts us here, BEFORE our commit —
  // the fail-the-suffix contract; our issued writes stay pinned by our claim
  // and are rewritten byte-identically by the same-batch retry.
  Handle cp = st->commit_prev;
  if (cp != nullptr && !cp->done) {
    std::weak_ptr<PubState> weak = st;
    cp->on_done.push_back([this, weak] {
      Handle s = weak.lock();
      if (s == nullptr || s->done) return;
      CommitAfterPrev(s);
    });
    return;
  }
  CommitAfterPrev(st);
}

void Publisher::CommitAfterPrev(Handle st) {
  if (st->done) return;
  Handle cp = st->commit_prev;
  st->commit_prev.reset();
  if (cp != nullptr && !cp->final_status.ok()) {
    pipeline_stats_.aborted_on_prev += 1;
    Finish(st, Status::Aborted("pipeline predecessor failed: " +
                               cp->final_status.ToString()));
    return;
  }
  const auto& snap = service_->snapshot();
  st->outstanding = 1;
  auto track = [st](Status s) {
    // A kEpochTaken refusal outranks transient errors: it means another
    // participant committed this epoch and this publish must re-base, not
    // merely retry. Likewise kFenced — the epoch was burned out from under
    // this publish mid-commit and the batch must move to a fresh epoch.
    if (s.IsEpochTaken() || s.IsFenced()) {
      st->first_error = s;
    } else if (!s.ok() && st->first_error.ok()) {
      st->first_error = s;
    }
  };
  auto dec = [this, st]() {
    if (--st->outstanding > 0) return;
    if (st->first_error.IsEpochTaken()) {
      // Commit-time contention (the backstop gate): another writer committed
      // our epoch despite the claim — possible only when the claim replica
      // set was wiped out by simultaneous membership churn. Our claim is
      // moot; re-base onto the committed epoch and re-publish the batch.
      pipeline_stats_.epoch_conflicts += 1;
      ReleaseClaim(st->new_epoch, st->claim_nonce);
      st->claim_attempted = 0;
      Rebase(st, st->new_epoch);
      return;
    }
    if (!st->first_error.ok()) {
      Finish(st, st->first_error);
      return;
    }
    // Every coordinator record acked: successors may start WRITING now —
    // their commits still wait for our confirm via the commit gate.
    st->FireRecordsCommitted();
    ConfirmEpoch(st);
  };

  // Commit: the prepared coordinator records for EVERY relation at the new
  // epoch (constructed in BuildOutputs, before the writes went out).
  for (const auto& [rel, rec] : st->out_records) {
    Writer w;
    rec.EncodeTo(&w);
    auto replicas = snap.ReplicasOf(CoordinatorHash(rel, st->new_epoch),
                                    service_->replication());
    st->outstanding += 1;
    service_->CallAll(replicas, kPutCoordinator, w.data(), [track, dec](Status s) {
      track(s);
      dec();
    });
  }

  dec();
}

void Publisher::ConfirmEpoch(Handle st) {
  if (st->done) return;
  // The commit is durable (every coordinator record acked); publish the fact
  // to the claim replicas so discovery reports this epoch as the frontier.
  // Runs BEFORE the user callback resolves: a participant that observes its
  // ticket committed is guaranteed the next discovery sees the epoch.
  Writer w;
  w.PutVarint64(st->new_epoch);
  w.PutVarint32(participant_);
  w.PutVarint32(service_->node());
  w.PutVarint64(st->claim_nonce);
  auto replicas = service_->snapshot().ReplicasOf(ClaimHash(st->new_epoch),
                                                  service_->replication());
  if (replicas.empty()) {
    Finish(st, Status::OK());
    return;
  }
  service_->CallAll(replicas, kConfirmEpoch, w.data(), [this, st](Status s) {
    Finish(st, s);
  });
}

void Publisher::Finish(Handle st, Status status) {
  if (st->done) return;
  st->done = true;
  st->final_status = status;
  if (status.ok()) {
    st->committed = true;
    // The frontier passed every epoch at or below this commit: our partial
    // writes there (if any) are either this very commit or superseded by it,
    // and those epochs can never be claimed again.
    written_epochs_.erase(written_epochs_.begin(),
                          written_epochs_.upper_bound(st->new_epoch));
    gossip_->AdvanceTo(st->new_epoch);
    // Coordinator role: advertise this PARTICIPANT's GC low-watermark. The
    // storage nodes retire below the min across active participants, so a
    // mark of 0 (committed epoch still inside the keep window) registers the
    // participant and holds retirement back rather than being skipped.
    // One-way and best-effort — a node that misses it catches up on the next
    // publish or replica push (which piggybacks the participant table).
    if (gc_keep_epochs_ > 0) {
      Epoch w = st->new_epoch > gc_keep_epochs_ ? st->new_epoch - gc_keep_epochs_
                                                : 0;
      Writer ww;
      ww.PutVarint32(participant_);
      ww.PutVarint64(w);
      for (const auto& m : service_->snapshot().members()) {
        service_->SendOneWay(m.node, kSetWatermark, ww.data());
      }
    }
  } else if (status.IsFenced()) {
    // This participant WAS the fenced instance: its epoch is burned, its
    // orphan writes are purged, and its late rewrites are refused. Unpin the
    // epoch — the written_epochs_ pinning rule exists to let the same-batch
    // retry rewrite the SAME epoch byte-identically, but a burned epoch can
    // never be written or committed by anyone, so the retry must (and safely
    // can) republish at a fresh epoch instead.
    written_epochs_.erase(st->new_epoch);
  } else if (st->claim_attempted != 0 && !st->writes_issued &&
             written_epochs_.count(st->claim_attempted) == 0) {
    // The failed publish holds a claim (or fragments) at an epoch THIS
    // PARTICIPANT never wrote to — by any attempt, not just this one;
    // release so other participants are not wedged waiting for a commit
    // that will never come. A written-at epoch keeps its claim instead: the
    // pinned epoch guarantees this participant's same-batch retry recommits
    // the SAME epoch over the partial writes (byte-identical), which is
    // what keeps the GC sweep's newest-version rule safe — releasing would
    // let another writer take the epoch and turn the partial writes into
    // shadowing orphans.
    ReleaseClaim(st->claim_attempted, st->claim_nonce);
  }
  // Continuation hooks fire before the user callback: a successor blocked on
  // this publish learns its fate (and starts writing, or aborts) first.
  if (!st->prepared) st->FirePrepared();  // waiters observe done + status
  if (!st->records_committed) st->FireRecordsCommitted();  // ditto (failures)
  for (size_t i = 0; i < st->on_done.size(); ++i) st->on_done[i]();
  st->on_done.clear();
  st->prev.reset();
  st->commit_prev.reset();

  // Release the heavy state now rather than at handle destruction: a
  // client::Session keeps the last handle around as its chain tail, and
  // nothing may chain onto (or read from) a resolved publish.
  st->batch.clear();
  st->parts.clear();
  st->tuple_writes.clear();
  st->new_pages.clear();
  st->records.clear();
  st->out_records.clear();
  st->partition_nonempty.clear();

  auto cb = std::move(st->cb);
  st->cb = nullptr;
  cb(status, status.ok() ? st->new_epoch : 0);
}

}  // namespace orchestra::storage
