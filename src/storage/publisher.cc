#include "storage/publisher.h"

#include <algorithm>

#include "common/log.h"

namespace orchestra::storage {

/// Everything one in-flight publish owns. Shared between the publish's own
/// async stages (each RPC callback keeps the handle alive) and — when
/// pipelined — a chained successor, which holds `prev` until its write gate
/// resolves. Cross-publish continuation hooks (`on_prepared`, `on_done`)
/// capture the *successor* weakly so an abandoned pipeline can never form a
/// shared_ptr cycle; the client::Session retains every in-flight handle.
struct Publisher::PubState {
  struct PartitionWork {
    std::string relation;
    uint32_t partition = 0;
    bool has_old_desc = false;
    PageDescriptor old_desc;
    std::vector<const Update*> updates;
    // Parallel to `updates`: encoded key bytes and placement hash, computed
    // exactly once per update in FetchPages and reused everywhere after
    // (page sort, tuple writes, wire format) — SHA-1 never runs twice for
    // the same tuple in a publish.
    std::vector<std::string> update_keys;
    std::vector<HashId> update_hashes;
    Page old_page;  // empty when !has_old_desc
  };

  struct TupleWrite {
    std::string relation;
    TupleId id;
    std::string tuple_bytes;
    HashId hash;
    bool everywhere = false;
  };

  UpdateBatch batch;
  std::function<void(Status, Epoch)> cb;
  Epoch base_epoch = 0;
  Epoch new_epoch = 0;
  std::map<std::string, CoordinatorRecord> records;  // base-epoch records
  size_t outstanding = 0;
  Status first_error;
  std::vector<PartitionWork> parts;
  // Touched partitions per relation (true = new page version is non-empty),
  // carried from the apply stage to the coordinator construction.
  std::map<std::string, std::map<uint32_t, bool>> partition_nonempty;

  // Prepared output: what a chained successor bases itself on, and what the
  // write/commit stages send. Valid once `prepared`; released at Finish.
  std::vector<TupleWrite> tuple_writes;
  std::vector<Page> new_pages;
  std::map<std::string, CoordinatorRecord> out_records;  // new-epoch records

  // Lifecycle. `prepared` -> outputs computed (successors may start);
  // `done` -> resolved; `committed` -> done with success (commit point
  // passed, epoch advanced). A successor's writes wait for `committed`.
  bool prepared = false;
  bool done = false;
  bool committed = false;
  Status final_status;
  Handle prev;  // chain predecessor; cleared when the write gate resolves
  std::vector<std::function<void()>> on_prepared;
  std::vector<std::function<void()>> on_done;

  void FirePrepared() {
    prepared = true;
    // Index loop: StartChained may run synchronously and register further
    // hooks on *other* states, never re-entrantly on this vector.
    for (size_t i = 0; i < on_prepared.size(); ++i) on_prepared[i]();
    on_prepared.clear();
  }
};

void Publisher::CreateRelation(const RelationDef& def,
                               std::function<void(Status)> cb) {
  // The catalog is replicated at every node (tiny, like Nation/Region §VI-A).
  Writer w;
  def.EncodeTo(&w);
  std::vector<net::NodeId> everyone;
  for (const auto& m : service_->snapshot().members()) everyone.push_back(m.node);

  auto after_catalog = [this, def, cb = std::move(cb)](Status st) {
    if (!st.ok()) {
      cb(st);
      return;
    }
    CoordinatorRecord rec;
    rec.relation = def.name;
    rec.epoch = gossip_->epoch();
    Writer rw;
    rec.EncodeTo(&rw);
    auto replicas = service_->snapshot().ReplicasOf(
        CoordinatorHash(def.name, rec.epoch), service_->replication());
    service_->CallAll(replicas, kPutCoordinator, rw.data(), cb);
  };
  service_->CallAll(everyone, kCatalogAdd, w.data(), std::move(after_catalog));
}

void Publisher::PublishBatch(UpdateBatch batch,
                             std::function<void(Status, Epoch)> cb) {
  PublishChained(std::move(batch), nullptr, std::move(cb));
}

Publisher::Handle Publisher::PublishChained(UpdateBatch batch, Handle prev,
                                            std::function<void(Status, Epoch)> cb) {
  auto st = std::make_shared<PubState>();
  st->batch = std::move(batch);
  st->cb = std::move(cb);
  pipeline_stats_.publishes += 1;

  for (const auto& [rel, updates] : st->batch) {
    if (!service_->Relation(rel).ok()) {
      Finish(st, Status::InvalidArgument("publish to unknown relation " + rel));
      return st;
    }
    (void)updates;
  }

  // Chain only onto a predecessor that is still in flight: its in-memory
  // output is then by construction the newest epoch this participant can
  // know about. A *resolved* predecessor carries no such freshness (another
  // participant may have published since), so that falls back to the full
  // discovery path.
  if (prev && !prev->done) {
    pipeline_stats_.chained += 1;
    st->prev = std::move(prev);
    if (st->prev->prepared) {
      StartChained(st);
    } else {
      std::weak_ptr<PubState> weak = st;
      st->prev->on_prepared.push_back([this, weak] {
        if (Handle s = weak.lock()) StartChained(s);
      });
    }
    return st;
  }
  if (prev) pipeline_stats_.chain_fallbacks += 1;

  if (!epoch_discovery_) {
    st->base_epoch = gossip_->epoch();
    st->new_epoch = st->base_epoch + 1;
    BeginPublish(st);
    return st;
  }
  DiscoverEpoch(st, /*rounds_left=*/2);
  return st;
}

void Publisher::StartChained(Handle st) {
  Handle prev = st->prev;
  if (prev == nullptr || st->done) return;
  if (prev->done && !prev->final_status.ok()) {
    pipeline_stats_.aborted_on_prev += 1;
    st->prev.reset();
    Finish(st, Status::Aborted("pipeline predecessor failed: " +
                               prev->final_status.ToString()));
    return;
  }
  // The predecessor's prepared output IS this publish's base: its new-epoch
  // coordinator records cover every relation, so discovery and the base
  // coordinator fetches are skipped entirely.
  st->base_epoch = prev->new_epoch;
  st->new_epoch = st->base_epoch + 1;
  st->records = prev->out_records;
  FetchPages(st);
}

void Publisher::DiscoverEpoch(Handle st, int rounds_left) {
  // Stage 0: epoch discovery. Every member reports the highest coordinator
  // epoch it stores; with replication r the newest coordinator record
  // survives on r nodes, so any surviving replica answers with the true
  // current epoch even when this node's gossip counter is stale. If more
  // than one member fails to answer (dead node plus dropped exchanges), the
  // newest record's holders might all be among the silent — under-discovery
  // would collide the new epoch with a committed one — so the round is
  // retried before proceeding best-effort.
  struct Disc {
    Epoch max_epoch = 0;
    size_t outstanding = 0;
    size_t members = 0;
    size_t successes = 0;
    bool started = false;
  };
  auto disc = std::make_shared<Disc>();
  std::vector<net::NodeId> members;
  for (const auto& m : service_->snapshot().members()) members.push_back(m.node);
  disc->outstanding = members.size();
  disc->members = members.size();
  auto finish_discovery = [this, st, disc, rounds_left]() {
    if (disc->started) return;
    disc->started = true;
    if (disc->members > 0 && disc->members - disc->successes > 1 &&
        rounds_left > 0) {
      DiscoverEpoch(st, rounds_left - 1);
      return;
    }
    gossip_->AdvanceTo(disc->max_epoch);
    st->base_epoch = std::max(gossip_->epoch(), disc->max_epoch);
    st->new_epoch = st->base_epoch + 1;
    BeginPublish(st);
  };
  if (members.empty()) {
    finish_discovery();
    return;
  }
  for (net::NodeId m : members) {
    service_->Call(
        m, kGetMaxEpoch, {},
        [disc, finish_discovery](Status s, const std::string& reply) {
          if (s.ok()) {
            Reader r(reply);
            uint64_t e = 0;
            if (r.GetVarint64(&e).ok()) {
              disc->max_epoch = std::max<Epoch>(disc->max_epoch, e);
              disc->successes += 1;
            }
          }
          if (--disc->outstanding == 0) finish_discovery();
        },
        kEpochDiscoveryTimeoutUs);
  }
}

void Publisher::BeginPublish(Handle st) {
  // Stage 1: coordinator records of every relation at the base epoch
  // (needed both for the copy-on-write page lookups and for carrying
  // unchanged relations forward to the new epoch).
  auto rels = service_->RelationNames();
  st->outstanding = rels.size();
  if (rels.empty()) {
    Finish(st, Status::FailedPrecondition("no relations in catalog"));
    return;
  }
  for (const auto& rel : rels) {
    FetchBaseCoordinator(st, rel, st->base_epoch, /*walk_left=*/16,
                         /*stall_left=*/2);
  }
}

void Publisher::FetchBaseCoordinator(Handle st, const std::string& rel,
                                     Epoch epoch, int walk_left, int stall_left) {
  service_->GetCoordinator(
      rel, epoch,
      [this, st, rel, epoch, walk_left, stall_left](Status s,
                                                    CoordinatorRecord rec) {
        if (s.IsNotFound() && epoch > 0 && stall_left > 0) {
          // Every replica answered, none has the record — but right after a
          // membership change the record may exist and simply not have
          // reached the reshuffled replica set yet. Re-fetch the SAME epoch
          // after a re-replication-sized pause before trusting the hole.
          // (Delivered as a node task: dies with this node, fail-stop safe.)
          service_->RunAfter(2 * sim::kMicrosPerSec, [this, st, rel, epoch,
                                                      walk_left, stall_left] {
            FetchBaseCoordinator(st, rel, epoch, walk_left, stall_left - 1);
          });
          return;
        }
        if (s.IsNotFound() && epoch > 0 && walk_left > 0) {
          // A persistent hole: a torn publish never committed this epoch for
          // this relation — the newest committed record below it carries the
          // relation's state forward. Transient failures (timeout, drop,
          // unreachable replicas) must NOT walk back: the record may exist,
          // and basing the publish below it would silently drop committed
          // updates. Those fail the publish; retrying the batch is safe.
          FetchBaseCoordinator(st, rel, epoch - 1, walk_left - 1,
                               /*stall_left=*/1);
          return;
        }
        if (!s.ok() && st->first_error.ok()) st->first_error = s;
        if (s.ok()) st->records[rel] = std::move(rec);
        if (--st->outstanding == 0) {
          if (!st->first_error.ok()) {
            Finish(st, st->first_error);
            return;
          }
          FetchPages(st);
        }
      });
}

void Publisher::FetchPages(Handle st) {
  // Group each relation's updates by partition. Each tuple's placement hash
  // is computed here, once, and carried through the rest of the publish.
  for (auto& [rel, updates] : st->batch) {
    const RelationDef* def = service_->FindRelation(rel);
    std::map<uint32_t, PubState::PartitionWork> by_partition;
    for (const Update& u : updates) {
      std::string kb = EncodeTupleKey(def->schema, u.tuple);
      HashId h = PlacementHash(*def, kb);
      uint32_t part = PartitionIndexFor(h, def->num_partitions);
      PubState::PartitionWork& pw = by_partition[part];
      pw.relation = rel;
      pw.partition = part;
      pw.updates.push_back(&u);
      pw.update_keys.push_back(std::move(kb));
      pw.update_hashes.push_back(h);
    }
    // Partition -> current descriptor, built once per relation instead of a
    // linear scan over rec.pages for every touched partition.
    const CoordinatorRecord& rec = st->records[rel];
    std::map<uint32_t, const PageDescriptor*> desc_of;
    for (const PageDescriptor& d : rec.pages) desc_of[d.id.partition] = &d;
    for (auto& [part, pw] : by_partition) {
      auto d = desc_of.find(part);
      if (d != desc_of.end()) {
        pw.has_old_desc = true;
        pw.old_desc = *d->second;
      }
      st->parts.push_back(std::move(pw));
    }
  }

  // Stage 2: fetch the current page of each affected partition. The paper
  // locates it via the inverse node (§IV); with the coordinator record in
  // hand the descriptor already names it, so we go straight to the index
  // node. (ReadInverseLocal/kGetInverse expose the inverse-node path too.)
  //
  // Chained publishes: a descriptor at an uncommitted ancestor's epoch names
  // a page that may still be in flight to its index nodes — it MUST be taken
  // from that ancestor's in-memory output, which doubles as the pipeline
  // overlap win: these partitions cost no round trip at all. The walk covers
  // the whole live chain (a window-4 pipeline can reference pages from three
  // epochs back); ancestors whose chain link was already cleared have
  // committed, so their pages are durably fetchable over the network.
  auto page_from_chain = [&st](const PubState::PartitionWork& pw) -> const Page* {
    for (const PubState* anc = st->prev.get(); anc != nullptr;
         anc = anc->prev.get()) {
      if (pw.old_desc.id.epoch != anc->new_epoch) continue;
      for (const Page& page : anc->new_pages) {
        if (page.desc.id.relation == pw.relation &&
            page.desc.id.partition == pw.partition) {
          return &page;
        }
      }
      return nullptr;  // right epoch, page missing: fetch over the network
    }
    return nullptr;
  };
  st->outstanding = 1;  // guard against zero fetches
  for (size_t i = 0; i < st->parts.size(); ++i) {
    PubState::PartitionWork& pw = st->parts[i];
    if (!pw.has_old_desc) continue;
    if (const Page* cached = page_from_chain(pw)) {
      pw.old_page = *cached;
      continue;
    }
    st->outstanding += 1;
    service_->GetPage(pw.old_desc, [this, st, i](Status s, Page page) {
      if (!s.ok() && st->first_error.ok()) st->first_error = s;
      if (s.ok()) st->parts[i].old_page = std::move(page);
      if (--st->outstanding == 0) Apply(st);
    });
  }
  if (--st->outstanding == 0) Apply(st);
}

void Publisher::Apply(Handle st) {
  if (!st->first_error.ok()) {
    Finish(st, st->first_error);
    return;
  }

  for (PubState::PartitionWork& pw : st->parts) {
    const RelationDef* def = service_->FindRelation(pw.relation);
    // key bytes -> (epoch, hash) of the live version. Hashes come from the
    // old page (for carried-forward tuples) or from FetchPages (for
    // updates); nothing here computes SHA-1.
    struct Live {
      Epoch epoch;
      const HashId* hash;
    };
    std::map<std::string_view, Live> ids;
    for (size_t i = 0; i < pw.old_page.ids.size(); ++i) {
      ids[pw.old_page.ids[i].key_bytes] = {pw.old_page.ids[i].epoch,
                                           &pw.old_page.hashes[i]};
    }

    for (size_t j = 0; j < pw.updates.size(); ++j) {
      const Update* u = pw.updates[j];
      const std::string& kb = pw.update_keys[j];
      if (u->kind == Update::Kind::kDelete) {
        ids.erase(std::string_view(kb));
        // Delete tombstone: an empty-value data record at the new epoch. No
        // page ever lists it; it exists so data-node GC can tell "this key
        // was deleted at epoch e" apart from "version still live" and
        // reclaim the dead versions (then the tombstone itself). Writes
        // preserve batch order, so insert+delete of one key in one batch
        // resolves to whichever came last.
        st->tuple_writes.push_back(
            PubState::TupleWrite{pw.relation,
                                 TupleId{kb, st->new_epoch},
                                 std::string(),
                                 pw.update_hashes[j],
                                 def->replicate_everywhere});
        continue;
      }
      ids[kb] = {st->new_epoch, &pw.update_hashes[j]};
      Writer tw;
      EncodeTuple(u->tuple, &tw);
      st->tuple_writes.push_back(
          PubState::TupleWrite{pw.relation,
                               TupleId{kb, st->new_epoch},
                               tw.Release(),
                               pw.update_hashes[j],
                               def->replicate_everywhere});
    }

    Page page;
    page.desc.id = PageId{pw.relation, st->new_epoch, pw.partition};
    page.desc.num_partitions = def->num_partitions;
    // Sort by (hash, key) so data-node scans are one ordered pass — a
    // decorated sort over the precomputed hashes, not SHA-1 per comparison.
    struct Row {
      const HashId* hash;
      std::string_view key;
      Epoch epoch;
    };
    std::vector<Row> rows;
    rows.reserve(ids.size());
    for (const auto& [kb, live] : ids) rows.push_back({live.hash, kb, live.epoch});
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      if (*a.hash != *b.hash) return *a.hash < *b.hash;
      return a.key < b.key;
    });
    page.ids.reserve(rows.size());
    page.hashes.reserve(rows.size());
    for (const Row& row : rows) {
      page.ids.push_back(TupleId{std::string(row.key), row.epoch});
      page.hashes.push_back(*row.hash);
    }
    st->partition_nonempty[pw.relation][pw.partition] = !page.ids.empty();
    // Empty pages are still written (they keep the inverse node current);
    // they simply carry no descriptor in the new coordinator record.
    st->new_pages.push_back(std::move(page));
  }

  // The publish is now *prepared*: its output (new pages + coordinator
  // records) exists in memory, so a chained successor can begin its own
  // fetch/partition/apply stages — overlapping them with this publish's
  // writes and commit.
  BuildOutputs(st);
  st->FirePrepared();

  // Write gate: a chained publish puts nothing on the wire until the
  // predecessor has fully committed. This keeps the pipeline's failure
  // story identical to sequential publishing — at most one publish (the
  // actively-writing one) can leave orphan versions, and it is retried with
  // the same batch, so the GC sweep's locally-checkable precondition holds.
  Handle prev = st->prev;
  if (prev == nullptr) {
    IssueWrites(st);
    return;
  }
  if (prev->done) {
    st->prev.reset();
    if (prev->final_status.ok()) {
      IssueWrites(st);
    } else {
      pipeline_stats_.aborted_on_prev += 1;
      Finish(st, Status::Aborted("pipeline predecessor failed: " +
                                 prev->final_status.ToString()));
    }
    return;
  }
  std::weak_ptr<PubState> weak = st;
  prev->on_done.push_back([this, weak] {
    Handle s = weak.lock();
    if (s == nullptr || s->done) return;
    Handle p = s->prev;
    s->prev.reset();
    if (p != nullptr && !p->final_status.ok()) {
      pipeline_stats_.aborted_on_prev += 1;
      Finish(s, Status::Aborted("pipeline predecessor failed: " +
                                p->final_status.ToString()));
      return;
    }
    IssueWrites(s);
  });
}

void Publisher::BuildOutputs(Handle st) {
  // New-epoch coordinator record for EVERY relation: carry forward untouched
  // pages, add the new versions of touched non-empty partitions. Built once,
  // pre-write: the commit stage serializes these, and a chained successor
  // bases itself on them.
  for (const auto& rel : service_->RelationNames()) {
    CoordinatorRecord rec;
    rec.relation = rel;
    rec.epoch = st->new_epoch;
    const CoordinatorRecord& old = st->records[rel];
    auto changed = st->partition_nonempty.find(rel);
    for (const PageDescriptor& d : old.pages) {
      bool touched = changed != st->partition_nonempty.end() &&
                     changed->second.count(d.id.partition) > 0;
      if (!touched) rec.pages.push_back(d);
    }
    if (changed != st->partition_nonempty.end()) {
      const RelationDef* def = service_->FindRelation(rel);
      for (const auto& [part, nonempty] : changed->second) {
        if (!nonempty) continue;
        PageDescriptor d;
        d.id = PageId{rel, st->new_epoch, part};
        d.num_partitions = def->num_partitions;
        rec.pages.push_back(d);
      }
    }
    std::sort(rec.pages.begin(), rec.pages.end(),
              [](const PageDescriptor& a, const PageDescriptor& b) {
                return a.id.partition < b.id.partition;
              });
    st->out_records[rel] = std::move(rec);
  }
}

void Publisher::IssueWrites(Handle st) {
  // Stage 3: tuple versions and page versions. Coordinator records — the
  // commit point — only go out once every write here has succeeded
  // (WriteCoordinators), so a torn publish can leave orphan tuples/pages at
  // the uncommitted epoch but never a coordinator record referencing state
  // that was not fully written. Orphans are overwritten byte-identically
  // when the publisher retries the batch, and GC retires them eventually.
  st->outstanding = 1;
  auto track = [st](Status s) {
    if (!s.ok() && st->first_error.ok()) st->first_error = s;
  };
  auto dec = [this, st]() {
    if (--st->outstanding == 0) {
      if (!st->first_error.ok()) {
        Finish(st, st->first_error);
      } else {
        WriteCoordinators(st);
      }
    }
  };

  const auto& snap = service_->snapshot();
  std::vector<net::NodeId> everyone;
  for (const auto& m : snap.members()) everyone.push_back(m.node);

  // 3a: tuple versions, coalesced into ONE multi-relation kPutTuples frame
  // per destination node — however many relations and partitions the batch
  // touches, each replica sees a single RPC. The wire format leads each
  // tuple with its placement hash so receivers key their stores without
  // rehashing (per relation: rel, n, then hash(20B BE), key, epoch, bytes).
  std::map<net::NodeId, std::map<std::string_view, Writer>> per_node_rel;
  std::map<net::NodeId, std::map<std::string_view, uint64_t>> per_node_count;
  std::string hash_be;  // reused 20-byte scratch: no per-tuple allocation
  for (const PubState::TupleWrite& tw : st->tuple_writes) {
    hash_be.clear();
    tw.hash.AppendBigEndian(&hash_be);
    std::vector<net::NodeId> targets =
        tw.everywhere ? everyone : snap.ReplicasOf(tw.hash, service_->replication());
    for (net::NodeId t : targets) {
      Writer& w = per_node_rel[t][tw.relation];
      w.PutRaw(hash_be.data(), hash_be.size());
      w.PutString(tw.id.key_bytes);
      w.PutVarint64(tw.id.epoch);
      w.PutString(tw.tuple_bytes);
      per_node_count[t][tw.relation] += 1;
      pipeline_stats_.tuple_records += 1;
    }
  }
  for (auto& [target, rels] : per_node_rel) {
    Writer body;
    body.PutVarint64(rels.size());
    for (auto& [rel, w] : rels) {
      body.PutString(rel);
      body.PutVarint64(per_node_count[target][rel]);
      body.PutRaw(w.data().data(), w.size());
    }
    st->outstanding += 1;
    pipeline_stats_.put_frames += 1;
    service_->Call(target, kPutTuples, body.Release(),
                   [track, dec](Status s, const std::string&) {
                     track(s);
                     dec();
                   });
  }

  // 3b: new page versions to their index nodes.
  for (const Page& page : st->new_pages) {
    const RelationDef* def = service_->FindRelation(page.desc.id.relation);
    Writer w;
    page.EncodeTo(&w);
    std::vector<net::NodeId> targets =
        def->replicate_everywhere
            ? everyone
            : snap.ReplicasOf(page.desc.home(), service_->replication());
    st->outstanding += 1;
    service_->CallAll(targets, kPutPage, w.data(), [track, dec](Status s) {
      track(s);
      dec();
    });
  }

  dec();
}

void Publisher::WriteCoordinators(Handle st) {
  const auto& snap = service_->snapshot();
  st->outstanding = 1;
  auto track = [st](Status s) {
    if (!s.ok() && st->first_error.ok()) st->first_error = s;
  };
  auto dec = [this, st]() {
    if (--st->outstanding == 0) Finish(st, st->first_error);
  };

  // Commit: the prepared coordinator records for EVERY relation at the new
  // epoch (constructed in BuildOutputs, before the writes went out).
  for (const auto& [rel, rec] : st->out_records) {
    Writer w;
    rec.EncodeTo(&w);
    auto replicas = snap.ReplicasOf(CoordinatorHash(rel, st->new_epoch),
                                    service_->replication());
    st->outstanding += 1;
    service_->CallAll(replicas, kPutCoordinator, w.data(), [track, dec](Status s) {
      track(s);
      dec();
    });
  }

  if (--st->outstanding == 0) Finish(st, st->first_error);
}

void Publisher::Finish(Handle st, Status status) {
  if (st->done) return;
  st->done = true;
  st->final_status = status;
  if (status.ok()) {
    st->committed = true;
    gossip_->AdvanceTo(st->new_epoch);
    // Coordinator role: advertise the GC low-watermark. One-way and
    // best-effort — a node that misses it catches up on the next publish or
    // replica push (SetGcWatermark re-runs retirement even at an unchanged
    // watermark, and re-replication piggybacks the mark).
    if (gc_keep_epochs_ > 0 && st->new_epoch > gc_keep_epochs_) {
      Epoch w = st->new_epoch - gc_keep_epochs_;
      Writer ww;
      ww.PutVarint64(w);
      for (const auto& m : service_->snapshot().members()) {
        service_->SendOneWay(m.node, kSetWatermark, ww.data());
      }
    }
  }
  // Continuation hooks fire before the user callback: a successor blocked on
  // this publish learns its fate (and starts writing, or aborts) first.
  if (!st->prepared) st->FirePrepared();  // waiters observe done + status
  for (size_t i = 0; i < st->on_done.size(); ++i) st->on_done[i]();
  st->on_done.clear();
  st->prev.reset();

  // Release the heavy state now rather than at handle destruction: a
  // client::Session keeps the last handle around as its chain tail, and
  // nothing may chain onto (or read from) a resolved publish.
  st->batch.clear();
  st->parts.clear();
  st->tuple_writes.clear();
  st->new_pages.clear();
  st->records.clear();
  st->out_records.clear();
  st->partition_nonempty.clear();

  auto cb = std::move(st->cb);
  st->cb = nullptr;
  cb(status, status.ok() ? st->new_epoch : 0);
}

}  // namespace orchestra::storage
