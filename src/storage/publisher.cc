#include "storage/publisher.h"

#include <algorithm>

#include "common/log.h"

namespace orchestra::storage {

void Publisher::CreateRelation(const RelationDef& def,
                               std::function<void(Status)> cb) {
  // The catalog is replicated at every node (tiny, like Nation/Region §VI-A).
  Writer w;
  def.EncodeTo(&w);
  std::vector<net::NodeId> everyone;
  for (const auto& m : service_->snapshot().members()) everyone.push_back(m.node);

  auto after_catalog = [this, def, cb = std::move(cb)](Status st) {
    if (!st.ok()) {
      cb(st);
      return;
    }
    CoordinatorRecord rec;
    rec.relation = def.name;
    rec.epoch = gossip_->epoch();
    Writer rw;
    rec.EncodeTo(&rw);
    auto replicas = service_->snapshot().ReplicasOf(
        CoordinatorHash(def.name, rec.epoch), service_->replication());
    service_->CallAll(replicas, kPutCoordinator, rw.data(), cb);
  };
  service_->CallAll(everyone, kCatalogAdd, w.data(), std::move(after_catalog));
}

void Publisher::PublishBatch(UpdateBatch batch,
                             std::function<void(Status, Epoch)> cb) {
  auto st = std::make_shared<PubState>();
  st->batch = std::move(batch);
  st->cb = std::move(cb);
  st->base_epoch = gossip_->epoch();
  st->new_epoch = st->base_epoch + 1;

  for (const auto& [rel, updates] : st->batch) {
    if (!service_->Relation(rel).ok()) {
      st->cb(Status::InvalidArgument("publish to unknown relation " + rel), 0);
      return;
    }
    (void)updates;
  }

  // Stage 1: coordinator records of every relation at the base epoch
  // (needed both for the copy-on-write page lookups and for carrying
  // unchanged relations forward to the new epoch).
  auto rels = service_->RelationNames();
  st->outstanding = rels.size();
  if (rels.empty()) {
    st->cb(Status::FailedPrecondition("no relations in catalog"), 0);
    return;
  }
  for (const auto& rel : rels) {
    service_->GetCoordinator(
        rel, st->base_epoch, [this, st, rel](Status s, CoordinatorRecord rec) {
          if (!s.ok() && st->first_error.ok()) st->first_error = s;
          if (s.ok()) st->records[rel] = std::move(rec);
          if (--st->outstanding == 0) {
            if (!st->first_error.ok()) {
              st->cb(st->first_error, 0);
              return;
            }
            FetchPages(st);
          }
        });
  }
}

void Publisher::FetchPages(std::shared_ptr<PubState> st) {
  // Group each relation's updates by partition.
  for (auto& [rel, updates] : st->batch) {
    RelationDef def = service_->Relation(rel).value();
    std::map<uint32_t, PartitionWork> by_partition;
    for (const Update& u : updates) {
      std::string kb = EncodeTupleKey(def.schema, u.tuple);
      uint32_t part = PartitionIndexFor(PlacementHash(def, kb), def.num_partitions);
      PartitionWork& pw = by_partition[part];
      pw.relation = rel;
      pw.partition = part;
      pw.updates.push_back(&u);
    }
    const CoordinatorRecord& rec = st->records[rel];
    for (auto& [part, pw] : by_partition) {
      for (const PageDescriptor& d : rec.pages) {
        if (d.id.partition == part) {
          pw.has_old_desc = true;
          pw.old_desc = d;
          break;
        }
      }
      st->parts.push_back(std::move(pw));
    }
  }

  // Stage 2: fetch the current page of each affected partition. The paper
  // locates it via the inverse node (§IV); with the coordinator record in
  // hand the descriptor already names it, so we go straight to the index
  // node. (ReadInverseLocal/kGetInverse expose the inverse-node path too.)
  st->outstanding = 1;  // guard against zero fetches
  for (size_t i = 0; i < st->parts.size(); ++i) {
    if (!st->parts[i].has_old_desc) continue;
    st->outstanding += 1;
    service_->GetPage(st->parts[i].old_desc, [this, st, i](Status s, Page page) {
      if (!s.ok() && st->first_error.ok()) st->first_error = s;
      if (s.ok()) st->parts[i].old_page = std::move(page);
      if (--st->outstanding == 0) ApplyAndWrite(st);
    });
  }
  if (--st->outstanding == 0) ApplyAndWrite(st);
}

void Publisher::ApplyAndWrite(std::shared_ptr<PubState> st) {
  if (!st->first_error.ok()) {
    st->cb(st->first_error, 0);
    return;
  }

  struct TupleWrite {
    std::string relation;
    TupleId id;
    std::string tuple_bytes;
    HashId hash;
    bool everywhere;
  };
  std::vector<TupleWrite> tuple_writes;
  std::vector<Page> new_pages;
  std::map<std::string, std::map<uint32_t, bool>> partition_nonempty;

  for (PartitionWork& pw : st->parts) {
    RelationDef def = service_->Relation(pw.relation).value();
    // key bytes -> epoch of the live version.
    std::map<std::string, Epoch> ids;
    for (const TupleId& id : pw.old_page.ids) ids[id.key_bytes] = id.epoch;

    for (const Update* u : pw.updates) {
      std::string kb = EncodeTupleKey(def.schema, u->tuple);
      if (u->kind == Update::Kind::kDelete) {
        ids.erase(kb);
        continue;
      }
      ids[kb] = st->new_epoch;
      Writer tw;
      EncodeTuple(u->tuple, &tw);
      tuple_writes.push_back(TupleWrite{pw.relation,
                                        TupleId{kb, st->new_epoch},
                                        tw.Release(),
                                        PlacementHash(def, kb),
                                        def.replicate_everywhere});
    }

    Page page;
    page.desc.id = PageId{pw.relation, st->new_epoch, pw.partition};
    page.desc.num_partitions = def.num_partitions;
    page.ids.reserve(ids.size());
    for (auto& [kb, e] : ids) page.ids.push_back(TupleId{kb, e});
    // Sort by (hash, key) so data-node scans are one ordered pass.
    std::sort(page.ids.begin(), page.ids.end(),
              [&def](const TupleId& a, const TupleId& b) {
                HashId ha = PlacementHash(def, a.key_bytes);
                HashId hb = PlacementHash(def, b.key_bytes);
                if (ha != hb) return ha < hb;
                return a.key_bytes < b.key_bytes;
              });
    partition_nonempty[pw.relation][pw.partition] = !page.ids.empty();
    // Empty pages are still written (they keep the inverse node current);
    // they simply carry no descriptor in the new coordinator record.
    new_pages.push_back(std::move(page));
  }

  // Stage 3: issue all writes, then finish.
  st->outstanding = 1;
  auto track = [st](Status s) {
    if (!s.ok() && st->first_error.ok()) st->first_error = s;
  };
  auto dec = [this, st]() {
    if (--st->outstanding == 0) FinishIfIdle(st);
  };

  const auto& snap = service_->snapshot();
  std::vector<net::NodeId> everyone;
  for (const auto& m : snap.members()) everyone.push_back(m.node);

  // 3a: tuple versions, batched per destination node.
  std::map<net::NodeId, std::map<std::string, Writer>> per_node_rel;
  std::map<net::NodeId, std::map<std::string, uint64_t>> per_node_rel_count;
  for (const TupleWrite& tw : tuple_writes) {
    std::vector<net::NodeId> targets =
        tw.everywhere ? everyone : snap.ReplicasOf(tw.hash, service_->replication());
    for (net::NodeId t : targets) {
      Writer& w = per_node_rel[t][tw.relation];
      tw.id.EncodeTo(&w);
      w.PutString(tw.tuple_bytes);
      per_node_rel_count[t][tw.relation] += 1;
    }
  }
  for (auto& [target, rels] : per_node_rel) {
    for (auto& [rel, w] : rels) {
      Writer body;
      body.PutString(rel);
      body.PutVarint64(per_node_rel_count[target][rel]);
      body.PutRaw(w.data().data(), w.size());
      st->outstanding += 1;
      service_->Call(target, kPutTuples, body.Release(),
                     [track, dec](Status s, const std::string&) {
                       track(s);
                       dec();
                     });
    }
  }

  // 3b: new page versions to their index nodes.
  for (const Page& page : new_pages) {
    RelationDef def = service_->Relation(page.desc.id.relation).value();
    Writer w;
    page.EncodeTo(&w);
    std::vector<net::NodeId> targets =
        def.replicate_everywhere
            ? everyone
            : snap.ReplicasOf(page.desc.home(), service_->replication());
    st->outstanding += 1;
    service_->CallAll(targets, kPutPage, w.data(), [track, dec](Status s) {
      track(s);
      dec();
    });
  }

  // 3c: coordinator records for EVERY relation at the new epoch.
  for (const auto& rel : service_->RelationNames()) {
    CoordinatorRecord rec;
    rec.relation = rel;
    rec.epoch = st->new_epoch;
    const CoordinatorRecord& old = st->records[rel];
    auto changed = partition_nonempty.find(rel);
    // Carry forward untouched pages.
    for (const PageDescriptor& d : old.pages) {
      bool touched = changed != partition_nonempty.end() &&
                     changed->second.count(d.id.partition) > 0;
      if (!touched) rec.pages.push_back(d);
    }
    // Add the new versions of touched, non-empty partitions.
    if (changed != partition_nonempty.end()) {
      RelationDef def = service_->Relation(rel).value();
      for (const auto& [part, nonempty] : changed->second) {
        if (!nonempty) continue;
        PageDescriptor d;
        d.id = PageId{rel, st->new_epoch, part};
        d.num_partitions = def.num_partitions;
        rec.pages.push_back(d);
      }
    }
    std::sort(rec.pages.begin(), rec.pages.end(),
              [](const PageDescriptor& a, const PageDescriptor& b) {
                return a.id.partition < b.id.partition;
              });
    Writer w;
    rec.EncodeTo(&w);
    auto replicas = snap.ReplicasOf(CoordinatorHash(rel, st->new_epoch),
                                    service_->replication());
    st->outstanding += 1;
    service_->CallAll(replicas, kPutCoordinator, w.data(), [track, dec](Status s) {
      track(s);
      dec();
    });
  }

  if (--st->outstanding == 0) FinishIfIdle(st);
}

void Publisher::FinishIfIdle(std::shared_ptr<PubState> st) {
  if (st->done) return;
  st->done = true;
  if (!st->first_error.ok()) {
    st->cb(st->first_error, 0);
    return;
  }
  gossip_->AdvanceTo(st->new_epoch);
  st->cb(Status::OK(), st->new_epoch);
}

}  // namespace orchestra::storage
