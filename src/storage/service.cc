#include "storage/service.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/log.h"

namespace orchestra::storage {

void KeyFilter::EncodeTo(Writer* w) const {
  w->PutBool(all);
  if (!all) {
    w->PutString(lo);
    w->PutString(hi);
  }
}

Status KeyFilter::DecodeFrom(Reader* r, KeyFilter* out) {
  ORC_RETURN_IF_ERROR(r->GetBool(&out->all));
  if (!out->all) {
    ORC_RETURN_IF_ERROR(r->GetString(&out->lo));
    ORC_RETURN_IF_ERROR(r->GetString(&out->hi));
  }
  return Status::OK();
}

StorageService::StorageService(net::NodeHost* host,
                               std::shared_ptr<SnapshotBoard> board, int replication,
                               localstore::StoreOptions store_options,
                               GcOptions gc_options)
    : host_(host),
      board_(std::move(board)),
      replication_(replication),
      rpc_(host, net::ServiceId::kStorage, kReply),
      store_(store_options),
      gc_options_(gc_options) {
  host_->Register(net::ServiceId::kStorage, this);
  // Every reply this node receives carries the responder's load hint; keep a
  // timestamped per-peer view for the session's admission control.
  rpc_.SetLoadHintHandler([this](net::NodeId peer, uint32_t hint) {
    peer_load_[peer] =
        PeerLoad{hint, host_->network()->simulator()->now()};
  });
}

uint32_t StorageService::LocalLoadHint() const {
  const net::InboxStats& inbox = host_->network()->inbox_stats(node());
  uint64_t hint = inbox.messages + inbox.bytes / 1024 + injected_load_hint_;
  return static_cast<uint32_t>(
      std::min<uint64_t>(hint, std::numeric_limits<uint32_t>::max()));
}

uint32_t StorageService::MaxRecentPeerLoad(sim::SimTime window_us) const {
  sim::SimTime now = host_->network()->simulator()->now();
  uint32_t worst = 0;
  // lint:allow(det-unordered-iter): max-aggregation is order-independent.
  for (const auto& [peer, load] : peer_load_) {
    if (now - load.at <= window_us) worst = std::max(worst, load.hint);
  }
  return worst;
}

// --------------------------------------------------------------------------
// Local API

void StorageService::AddRelationLocal(const RelationDef& def) {
  catalog_[def.name] = def;
  Writer w;
  def.EncodeTo(&w);
  store_.Put(keys::Catalog(def.name), w.data()).ok();
}

Result<RelationDef> StorageService::Relation(std::string_view name) const {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no relation " + std::string(name));
  }
  return it->second;
}

const RelationDef* StorageService::FindRelation(std::string_view name) const {
  auto it = catalog_.find(name);
  return it == catalog_.end() ? nullptr : &it->second;
}

std::vector<std::string> StorageService::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(catalog_.size());
  for (const auto& [name, def] : catalog_) names.push_back(name);
  return names;
}

Result<CoordinatorRecord> StorageService::ReadCoordinatorLocal(const std::string& rel,
                                                               Epoch e) const {
  ORC_ASSIGN_OR_RETURN(std::string bytes, store_.Get(keys::Coord(rel, e)));
  Reader r(bytes);
  CoordinatorRecord rec;
  ORC_RETURN_IF_ERROR(CoordinatorRecord::DecodeFrom(&r, &rec));
  return rec;
}

Result<Page> StorageService::ReadPageLocal(const PageId& id) const {
  ORC_ASSIGN_OR_RETURN(std::string bytes,
                       store_.Get(keys::PageRec(id.relation, id.epoch, id.partition)));
  Reader r(bytes);
  Page page;
  ORC_RETURN_IF_ERROR(Page::DecodeFrom(&r, &page));
  return page;
}

Result<PageId> StorageService::ReadInverseLocal(const std::string& rel,
                                                uint32_t partition) const {
  ORC_ASSIGN_OR_RETURN(std::string bytes, store_.Get(keys::Inverse(rel, partition)));
  Reader r(bytes);
  PageId id;
  ORC_RETURN_IF_ERROR(PageId::DecodeFrom(&r, &id));
  return id;
}

Result<Tuple> StorageService::ReadTupleLocal(const std::string& rel,
                                             const TupleId& id) const {
  ORC_ASSIGN_OR_RETURN(std::string_view bytes, ReadTupleBytesLocal(rel, id));
  Reader r(bytes);
  Tuple t;
  ORC_RETURN_IF_ERROR(DecodeTuple(&r, &t));
  return t;
}

Result<std::string_view> StorageService::ReadTupleBytesLocal(
    std::string_view rel, const TupleId& id) const {
  const RelationDef* def = FindRelation(rel);
  if (def == nullptr) return Status::NotFound("no relation " + std::string(rel));
  HashId h = PlacementHash(*def, id.key_bytes);
  return store_.GetView(keys::Data(rel, h, id.key_bytes, id.epoch));
}

Result<std::string_view> StorageService::ReadTupleBytesRaw(
    std::string_view rel, std::string_view hash_be20, std::string_view key_bytes,
    Epoch epoch) const {
  return store_.GetView(keys::DataRaw(rel, hash_be20, key_bytes, epoch));
}

Status StorageService::ScanPageLocal(
    const std::string& rel, const Page& page, const KeyFilter& filter,
    const std::function<void(const TupleId&, Tuple)>& yield,
    std::vector<TupleId>* missing) {
  // Build the membership set: localstore data key -> index into page.ids.
  // Placement hashes ride in the page itself — no SHA-1 here. Transparent
  // hashing lets the scan below probe with key views, no per-record string.
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, size_t, SvHash, std::equal_to<>> wanted;
  wanted.reserve(page.ids.size());
  for (size_t i = 0; i < page.ids.size(); ++i) {
    const TupleId& id = page.ids[i];
    if (!filter.Matches(id.key_bytes)) continue;
    wanted.emplace(keys::Data(rel, page.hashes[i], id.key_bytes, id.epoch), i);
  }
  ChargeCpu(host_->network()->costs().index_entry_us *
            static_cast<double>(page.ids.size()));

  // Single ordered pass through the page's hash range (§V-B).
  std::string start = keys::DataHashFloor(rel, page.desc.range_begin());
  std::string prefix = keys::DataPrefix(rel);
  HashId end = page.desc.range_end();
  bool wraps = end == HashId::Zero();
  std::string end_key = wraps ? std::string() : keys::DataHashFloor(rel, end);

  std::vector<bool> found(page.ids.size(), false);
  size_t scanned = 0;
  for (auto it = store_.Seek(start); localstore::LocalStore::WithinPrefix(it, prefix);
       it.Next()) {
    if (!wraps && std::string_view(it.key()) >= end_key) break;
    ++scanned;
    auto w = wanted.find(it.key());
    if (w == wanted.end()) continue;  // other version / other epoch
    Reader r(it.value());
    Tuple t;
    ORC_RETURN_IF_ERROR(DecodeTuple(&r, &t));
    found[w->second] = true;
    yield(page.ids[w->second], std::move(t));
  }
  ChargeCpu(host_->network()->costs().tuple_scan_us * static_cast<double>(scanned));

  if (missing != nullptr) {
    for (size_t i = 0; i < page.ids.size(); ++i) {
      if (!found[i] && filter.Matches(page.ids[i].key_bytes)) {
        missing->push_back(page.ids[i]);
      }
    }
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// RPC plumbing

void StorageService::Call(net::NodeId to, uint16_t code, std::string body,
                          RpcCallback cb, sim::SimTime timeout_us) {
  rpc_.Call(to, code, std::move(body), std::move(cb), timeout_us);
}

void StorageService::CallAll(const std::vector<net::NodeId>& targets, uint16_t code,
                             const std::string& body,
                             std::function<void(Status)> cb) {
  rpc_.CallAll(targets, code, body, std::move(cb));
}

void StorageService::SendOneWay(net::NodeId to, uint16_t code, std::string body) {
  host_->SendTo(to, net::ServiceId::kStorage, code, std::move(body));
}

void StorageService::RunAfter(sim::SimTime delay, std::function<void()> fn) {
  net::Network* net = host_->network();
  net->RunOnNode(node(), net->simulator()->now() + delay, std::move(fn));
}

void StorageService::Respond(net::NodeId to, uint64_t req_id, Status st,
                             std::string body) {
  net::RpcClient::SendReply(host_, to, net::ServiceId::kStorage, kReply, req_id,
                            st, std::move(body), LocalLoadHint());
}

void StorageService::OnConnectionDrop(net::NodeId peer) {
  // Orphan reaping: every call addressed to the failed peer resolves now
  // with Unavailable instead of waiting out its deadline.
  rpc_.FailPeer(peer);
}

// --------------------------------------------------------------------------
// Message handling

void StorageService::OnMessage(net::NodeId from, uint16_t code,
                               const std::string& payload) {
  Reader r(payload);
  if (code == kReply) {
    rpc_.HandleReply(payload);
    return;
  }
  if (code == kFetchTuples) {
    HandleFetchTuples(from, &r);
    return;
  }
  if (code == kTupleData) {
    HandleTupleData(from, &r);
    return;
  }
  if (code == kSetWatermark) {
    uint32_t participant;
    uint64_t w;
    if (r.GetVarint32(&participant).ok() && r.GetVarint64(&w).ok()) {
      SetParticipantWatermark(participant, w);
    }
    return;
  }
  if (code == kPurgeEpoch) {
    // One-way fence propagation from a successful fence round: record the
    // burn and purge local orphans. Safe against races by construction —
    // MergeFencedEpoch refuses to touch a committed epoch.
    uint64_t epoch, nonce;
    uint32_t participant;
    if (!r.GetVarint64(&epoch).ok() || !r.GetVarint32(&participant).ok() ||
        !r.GetVarint64(&nonce).ok()) {
      return;
    }
    MergeFencedEpoch(epoch, participant, nonce);
    return;
  }
  if (code == kReleaseEpoch) {
    // One-way claim cleanup from a failed publish: delete the claim only if
    // it is still the EXACT instance the releaser stored — matched by
    // (participant, nonce). A successor claimant's slot is not ours to
    // clear, and neither is a NEWER attempt of the same participant (a
    // delayed release from a dead attempt must not unpin the epoch its
    // retry re-claimed and is writing at).
    uint64_t epoch, nonce;
    uint32_t participant;
    if (!r.GetVarint64(&epoch).ok() || !r.GetVarint32(&participant).ok() ||
        !r.GetVarint64(&nonce).ok()) {
      return;
    }
    auto cur = store_.Get(keys::EpochClaim(epoch));
    if (!cur.ok()) return;
    Reader cr(cur.value());
    EpochClaimRecord stored;
    if (EpochClaimRecord::DecodeFrom(&cr, &stored).ok() &&
        stored.participant == participant && stored.nonce == nonce &&
        !stored.committed && !stored.fenced) {
      // A fenced marker is NOT the releaser's to clear either: the burn must
      // survive so the epoch stays dead for everyone.
      store_.Delete(keys::EpochClaim(epoch)).ok();
      claim_touch_.erase(epoch);
    }
    return;
  }
  uint64_t req_id;
  if (!r.GetU64(&req_id).ok()) return;
  HandleRequest(from, code, &r, req_id);
}

void StorageService::HandleRequest(net::NodeId from, uint16_t code, Reader* r,
                                   uint64_t req_id) {
  const auto& costs = host_->network()->costs();
  switch (code) {
    case kCatalogAdd: {
      RelationDef def;
      if (!RelationDef::DecodeFrom(r, &def).ok()) {
        Respond(from, req_id, Status::Corruption("bad catalog entry"), {});
        return;
      }
      AddRelationLocal(def);
      Respond(from, req_id, Status::OK(), {});
      return;
    }
    case kPutTuples: {
      // One coalesced frame per (publish, destination): every tuple write
      // bound for this node, grouped by relation. Zero-copy receive: every
      // field is consumed as a view of the payload, and the
      // publisher-computed placement hash is spliced straight into the data
      // key — no SHA-1, no TupleId/tuple-bytes copies.
      uint64_t nrels;
      if (!r->GetVarint64(&nrels).ok()) return;
      counters_.puttuples_frames += 1;
      uint64_t total = 0;
      uint64_t fenced_refused = 0;
      for (uint64_t ri = 0; ri < nrels; ++ri) {
        std::string_view rel;
        uint64_t n;
        if (!r->GetStringView(&rel).ok() || !r->GetVarint64(&n).ok()) return;
        if (FindRelation(rel) == nullptr) {
          Respond(from, req_id,
                  Status::NotFound("no relation " + std::string(rel)), {});
          return;
        }
        for (uint64_t i = 0; i < n; ++i) {
          std::string_view hash_be20, key_bytes, tuple_bytes;
          uint64_t epoch;
          if (!r->GetRawView(&hash_be20, 20).ok() ||
              !r->GetStringView(&key_bytes).ok() ||
              !r->GetVarint64(&epoch).ok() ||
              !r->GetStringView(&tuple_bytes).ok()) {
            return;
          }
          // Zombie write refusal: a fenced epoch can never be resurrected.
          // The empty() fast path keeps the hot loop map-free normally.
          if (!fenced_epochs_.empty() && fenced_epochs_.count(epoch) > 0) {
            ++fenced_refused;
            continue;
          }
          store_.Put(keys::DataRaw(rel, hash_be20, key_bytes, epoch), tuple_bytes)
              .ok();
          counters_.tuples_stored += 1;
        }
        total += n;
      }
      ChargeCpu(costs.tuple_write_us * static_cast<double>(total));
      if (fenced_refused > 0) {
        counters_.fenced_writes_refused += fenced_refused;
        Respond(from, req_id,
                Status::Fenced("tuple writes at a fenced epoch refused"), {});
        return;
      }
      Respond(from, req_id, Status::OK(), {});
      return;
    }
    case kPutPage: {
      // The body after the request id IS the stored record: validate with a
      // full decode, then store the raw wire bytes — no re-encode.
      std::string_view page_bytes = r->RemainingView();
      Page page;
      if (!Page::DecodeFrom(r, &page).ok() || !r->AtEnd()) {
        Respond(from, req_id, Status::Corruption("bad page"), {});
        return;
      }
      const PageId& id = page.desc.id;
      if (!fenced_epochs_.empty() && fenced_epochs_.count(id.epoch) > 0) {
        counters_.fenced_writes_refused += 1;
        Respond(from, req_id,
                Status::Fenced("page write at fenced epoch " +
                               std::to_string(id.epoch)),
                {});
        return;
      }
      store_.Put(keys::PageRec(id.relation, id.epoch, id.partition), page_bytes)
          .ok();
      counters_.pages_stored += 1;
      ChargeCpu(costs.index_entry_us * static_cast<double>(page.ids.size()));
      // Inverse node bookkeeping: latest page for this partition (§IV).
      auto cur = ReadInverseLocal(id.relation, id.partition);
      if (!cur.ok() || cur.value().epoch <= id.epoch) {
        Writer iw;
        id.EncodeTo(&iw);
        store_.Put(keys::Inverse(id.relation, id.partition), iw.data()).ok();
      }
      Respond(from, req_id, Status::OK(), {});
      return;
    }
    case kPutCoordinator: {
      // As with kPutPage: validate with a full decode, store the wire bytes.
      std::string_view rec_bytes = r->RemainingView();
      CoordinatorRecord rec;
      if (!CoordinatorRecord::DecodeFrom(r, &rec).ok() || !r->AtEnd()) {
        Respond(from, req_id, Status::Corruption("bad coordinator record"), {});
        return;
      }
      // Zombie commit refusal: a fenced epoch's coordinator chain is burned
      // and purged; no participant may rebuild it.
      if (!fenced_epochs_.empty() && fenced_epochs_.count(rec.epoch) > 0) {
        counters_.fenced_writes_refused += 1;
        Respond(from, req_id,
                Status::Fenced("coordinator write at fenced epoch " +
                               std::to_string(rec.epoch)),
                {});
        return;
      }
      // Multi-writer commit gate: the first committed writer of (rel, epoch)
      // wins. A record from the SAME participant overwrites freely (the
      // byte-identical same-batch retry); a conflicting participant is
      // refused with kEpochTaken carrying the stored winner so it can
      // re-base onto the committed epoch instead of tearing it.
      auto existing = store_.Get(keys::Coord(rec.relation, rec.epoch));
      if (existing.ok()) {
        Reader er(existing.value());
        CoordinatorRecord old;
        if (CoordinatorRecord::DecodeFrom(&er, &old).ok() &&
            old.participant != 0 && rec.participant != 0 &&
            old.participant != rec.participant) {
          counters_.coordinator_conflicts += 1;
          Writer wb;
          wb.PutVarint32(old.participant);
          Respond(from, req_id,
                  Status::EpochTaken("coordinator " + rec.relation + "@" +
                                     std::to_string(rec.epoch) +
                                     " already committed by participant " +
                                     std::to_string(old.participant)),
                  wb.Release());
          return;
        }
      }
      store_.Put(keys::Coord(rec.relation, rec.epoch), rec_bytes).ok();
      counters_.coordinators_stored += 1;
      // Deliberately does NOT advance max_epoch_seen_: a torn publish leaves
      // partial records, and discovery basing on them would absorb
      // uncommitted updates. Only kConfirmEpoch advances the frontier.
      Respond(from, req_id, Status::OK(), {});
      return;
    }
    case kClaimEpoch:
      HandleClaimEpoch(from, r, req_id);
      return;
    case kFenceEpoch:
      HandleFenceEpoch(from, r, req_id);
      return;
    case kConfirmEpoch: {
      // The epoch's coordinator records are all written: mark the claim
      // committed so discovery (kGetMaxEpoch) can report the epoch. Stored
      // even if the claim is missing here — after membership churn the new
      // claim replicas must still learn the confirmed frontier.
      uint64_t epoch, nonce;
      uint32_t participant, claimant_node;
      if (!r->GetVarint64(&epoch).ok() || !r->GetVarint32(&participant).ok() ||
          !r->GetVarint32(&claimant_node).ok() || !r->GetVarint64(&nonce).ok()) {
        Respond(from, req_id, Status::Corruption("bad epoch confirm"), {});
        return;
      }
      // A fence that completed first wins: the epoch is burned and its
      // orphans purged, so flipping it committed now would report an epoch
      // whose data is gone. The publisher's ticket fails with kFenced and
      // the batch republishes at a fresh epoch.
      if (fenced_epochs_.count(epoch) > 0) {
        counters_.fenced_writes_refused += 1;
        Respond(from, req_id,
                Status::Fenced("confirm at fenced epoch " +
                               std::to_string(epoch)),
                {});
        return;
      }
      // A burn PROMISE (fence granted here, unanimity unknown) also refuses
      // the confirm — that refusal is what makes unanimity meaningful — but
      // as a RETRYABLE error, not kFenced: the publisher keeps its epoch
      // pinned and resolves the partial burn on retry (self-fence to
      // unanimity, or recommit once a committed record heals this replica).
      {
        auto curc = store_.Get(keys::EpochClaim(epoch));
        if (curc.ok()) {
          Reader cr(curc.value());
          EpochClaimRecord stored;
          if (EpochClaimRecord::DecodeFrom(&cr, &stored).ok() &&
              stored.fenced) {
            counters_.fenced_writes_refused += 1;
            Respond(from, req_id,
                    Status::Unavailable("confirm at burn-promised epoch " +
                                        std::to_string(epoch)),
                    {});
            return;
          }
        }
      }
      EpochClaimRecord rec{participant, claimant_node, /*committed=*/true,
                           nonce};
      Writer w;
      rec.EncodeTo(&w);
      store_.Put(keys::EpochClaim(epoch), w.data()).ok();
      max_epoch_seen_ = std::max(max_epoch_seen_, epoch);
      claim_touch_[epoch] = host_->network()->simulator()->now();
      Respond(from, req_id, Status::OK(), {});
      return;
    }
    case kGetEpochClaim: {
      uint64_t epoch;
      if (!r->GetVarint64(&epoch).ok()) return;
      auto bytes = store_.Get(keys::EpochClaim(epoch));
      if (!bytes.ok()) {
        Respond(from, req_id, bytes.status(), {});
      } else {
        Respond(from, req_id, Status::OK(), std::move(bytes).value());
      }
      return;
    }
    case kGetMaxEpoch: {
      Writer w;
      w.PutVarint64(max_epoch_seen_);
      Respond(from, req_id, Status::OK(), w.Release());
      return;
    }
    case kGetCoordinator: {
      std::string rel;
      uint64_t epoch;
      if (!r->GetString(&rel).ok() || !r->GetVarint64(&epoch).ok()) return;
      auto bytes = store_.Get(keys::Coord(rel, epoch));
      if (!bytes.ok()) {
        Respond(from, req_id, bytes.status(), {});
      } else {
        Respond(from, req_id, Status::OK(), std::move(bytes).value());
      }
      return;
    }
    case kGetPage: {
      PageId id;
      if (!PageId::DecodeFrom(r, &id).ok()) return;
      auto bytes = store_.Get(keys::PageRec(id.relation, id.epoch, id.partition));
      if (!bytes.ok()) {
        Respond(from, req_id, bytes.status(), {});
      } else {
        Respond(from, req_id, Status::OK(), std::move(bytes).value());
      }
      return;
    }
    case kGetInverse: {
      std::string rel;
      uint32_t partition;
      if (!r->GetString(&rel).ok() || !r->GetVarint32(&partition).ok()) return;
      auto bytes = store_.Get(keys::Inverse(rel, partition));
      if (!bytes.ok()) {
        Respond(from, req_id, bytes.status(), {});
      } else {
        Respond(from, req_id, Status::OK(), std::move(bytes).value());
      }
      return;
    }
    case kGetTuple: {
      // The stored bytes are already the encoded tuple: respond with them
      // directly instead of decode + re-encode.
      std::string_view rel;
      TupleId id;
      if (!r->GetStringView(&rel).ok() || !TupleId::DecodeFrom(r, &id).ok()) return;
      auto bytes = ReadTupleBytesLocal(rel, id);
      ChargeCpu(costs.tuple_scan_us);
      // Empty stored bytes are a delete tombstone, never a servable tuple.
      if (bytes.ok() && bytes.value().empty()) {
        Respond(from, req_id, Status::NotFound("tuple deleted"), {});
      } else if (!bytes.ok()) {
        Respond(from, req_id, bytes.status(), {});
      } else {
        Respond(from, req_id, Status::OK(), std::string(bytes.value()));
      }
      return;
    }
    case kReplicaPush: {
      // Leads with the pusher's participant-watermark table so a restarted
      // node re-learns every participant's mark (not just a scalar) from
      // re-replication; the effective watermark is recomputed as the min.
      uint64_t mark_count, n;
      if (!r->GetVarint64(&mark_count).ok()) return;
      std::vector<std::pair<ParticipantId, Epoch>> pushed_marks;
      pushed_marks.reserve(mark_count);
      for (uint64_t i = 0; i < mark_count; ++i) {
        uint32_t p;
        uint64_t m;
        if (!r->GetVarint32(&p).ok() || !r->GetVarint64(&m).ok()) return;
        pushed_marks.emplace_back(p, m);
      }
      // Piggybacked fenced-epoch table: merged BEFORE the records below so a
      // push can never resurrect orphans at epochs its own sender knows are
      // burned (and so a restarted receiver whose fenced claim records were
      // GC'd below the watermark still re-learns the burns).
      uint64_t fence_count;
      if (!r->GetVarint64(&fence_count).ok()) return;
      for (uint64_t i = 0; i < fence_count; ++i) {
        uint64_t fe, fnonce;
        uint32_t fp;
        if (!r->GetVarint64(&fe).ok() || !r->GetVarint32(&fp).ok() ||
            !r->GetVarint64(&fnonce).ok()) {
          return;
        }
        MergeFencedEpoch(fe, fp, fnonce);
      }
      if (!r->GetVarint64(&n).ok()) return;
      for (uint64_t i = 0; i < n; ++i) {
        std::string_view key, value;
        if (!r->GetStringView(&key).ok() || !r->GetStringView(&value).ok()) return;
        if (keys::Tag(key) == keys::kClaimTag) {
          // Epoch claims merge by strength: committed > purged burn > burn
          // promise > uncommitted claim > absent. A CONFIRMED claim replaces
          // anything unconfirmed (the commit is a fact — including a burn
          // promise from a fence round the commit's confirm refused
          // elsewhere). A PURGED burn carries purge authority and merges via
          // the phase-two path; a bare burn promise only installs the
          // marker — it must never purge, its fence round may have failed. A
          // plain claim fills an empty slot with a conservatively-fresh
          // clock (a pushed claim's owner gets a TTL of grace before a fence
          // can use this replica's vote).
          Reader vr(value);
          EpochClaimRecord pushed;
          if (EpochClaimRecord::DecodeFrom(&vr, &pushed).ok()) {
            EpochClaimRecord mine;
            bool have_mine = false;
            auto curv = store_.Get(key);
            if (curv.ok()) {
              Reader cr(curv.value());
              have_mine = EpochClaimRecord::DecodeFrom(&cr, &mine).ok();
            }
            Epoch ce = 0;
            bool parsed = keys::ParseClaim(key, &ce);
            if (pushed.committed) {
              if (!have_mine || !mine.committed) store_.Put(key, value).ok();
              if (parsed) {
                max_epoch_seen_ = std::max(max_epoch_seen_, ce);
                claim_touch_.erase(ce);
              }
            } else if (pushed.fenced && pushed.purged) {
              if (parsed && (!have_mine || !mine.committed)) {
                MergeFencedEpoch(ce, pushed.participant, pushed.nonce);
              }
            } else if (pushed.fenced) {
              if (!have_mine || (!mine.committed && !mine.fenced)) {
                store_.Put(key, value).ok();
                if (parsed) claim_touch_.erase(ce);
              }
            } else if (!have_mine && !curv.ok()) {
              if (!(parsed && fenced_epochs_.count(ce) > 0)) {
                store_.Put(key, value).ok();
                if (parsed) {
                  claim_touch_[ce] =
                      host_->network()->simulator()->now();
                }
              }
            }
          }
          continue;
        }
        if (keys::Tag(key) == keys::kCoordTag) {
          // Coordinator records replicate store-if-absent like everything
          // else, EXCEPT when replicas disagree about a (rel, epoch)'s
          // writer — possible only after the commit-gate backstop fired
          // under a claim-replica wipeout. Store-if-absent would then
          // freeze the disagreement forever (neither writer's pushes could
          // ever overwrite the other's replicas); merging toward the
          // smaller participant makes every replica CONVERGE to one
          // deterministic writer per epoch instead.
          if (!fenced_epochs_.empty()) {
            keys::ParsedCoordKey ck;
            if (keys::ParseCoord(key, &ck) &&
                fenced_epochs_.count(ck.epoch) > 0) {
              continue;  // burned epoch: never rebuild its coordinator chain
            }
          }
          auto curv = store_.Get(key);
          if (!curv.ok()) {
            store_.Put(key, value).ok();
          } else {
            Reader pr(value);
            Reader cr(curv.value());
            CoordinatorRecord pushed, mine;
            if (CoordinatorRecord::DecodeFrom(&pr, &pushed).ok() &&
                CoordinatorRecord::DecodeFrom(&cr, &mine).ok() &&
                pushed.participant != 0 && mine.participant != 0 &&
                pushed.participant < mine.participant) {
              store_.Put(key, value).ok();
            }
          }
          continue;
        }
        // Fence filter on store-if-absent: a stale pusher that missed a
        // fence must not resurrect the purged orphans here.
        if (!fenced_epochs_.empty()) {
          Epoch ve = 0;
          bool versioned = false;
          if (keys::Tag(key) == keys::kDataTag) {
            keys::ParsedDataKey dk;
            versioned = keys::ParseData(key, &dk);
            if (versioned) ve = dk.epoch;
          } else if (keys::Tag(key) == keys::kPageTag) {
            keys::ParsedPageKey pk;
            versioned = keys::ParsePageRec(key, &pk);
            if (versioned) ve = pk.epoch;
          }
          if (versioned && fenced_epochs_.count(ve) > 0) continue;
        }
        if (!store_.Contains(key)) store_.Put(key, value).ok();
        if (keys::Tag(key) == keys::kCatalogTag) {
          Reader cr(value);
          RelationDef def;
          if (RelationDef::DecodeFrom(&cr, &def).ok()) catalog_[def.name] = def;
        }
      }
      ChargeCpu(costs.tuple_write_us * static_cast<double>(n));
      // Piggybacked GC watermarks: a freshly restarted node (its table
      // resets empty) learns every participant's mark from the first replica
      // push instead of waiting for the next advertisements. Conversely, a
      // push from a node that lags OUR watermark may have resurrected
      // already-retired records. Marks are merged WITHOUT per-mark
      // retirement and the sweep runs ONCE at the end — a push used to run
      // a full-store sweep per mark plus one more.
      for (const auto& [p, m] : pushed_marks) MergeParticipantMark(p, m);
      Epoch effective = EffectiveParticipantWatermark();
      if (effective > gc_watermark_) gc_watermark_ = effective;
      if (n > 0 && gc_watermark_ > 0) ScheduleGcSweep();
      Respond(from, req_id, Status::OK(), {});
      return;
    }
    case kScanPage:
      HandleScanPage(from, r, req_id);
      return;
    default:
      Respond(from, req_id, Status::NotSupported("unknown storage code"), {});
  }
}

void StorageService::HandleClaimEpoch(net::NodeId from, Reader* r,
                                      uint64_t req_id) {
  // The pre-write serialization point of multi-writer publishing. Body:
  // epoch, participant, claimant node, attempt nonce. Grant rules, in order:
  //   * empty slot                        -> store, grant;
  //   * stored participant == requester   -> grant (idempotent retry; node
  //                                          and nonce refresh to the newest
  //                                          attempt's);
  //   * otherwise                         -> kEpochTaken, body names the
  //                                          stored winner instance.
  // There is deliberately NO takeover rule — not for "split" claims and not
  // for claims whose holder node died. Any takeover breaks under membership
  // churn (a kill reshuffles the claim replica set, so a takeover can seize
  // an epoch whose holder held a full claim on the previous set and already
  // wrote at it). A wedged epoch is unwedged only by its own participant's
  // same-batch retry (idempotent re-grant) or its instance-exact release;
  // split races resolve through the publishers' per-participant stall
  // phases (see Publisher::LoseEpoch).
  uint64_t epoch, nonce;
  uint32_t participant, claimant_node;
  if (!r->GetVarint64(&epoch).ok() || !r->GetVarint32(&participant).ok() ||
      !r->GetVarint32(&claimant_node).ok() || !r->GetVarint64(&nonce).ok()) {
    Respond(from, req_id, Status::Corruption("bad epoch claim"), {});
    return;
  }
  ChargeCpu(host_->network()->costs().tuple_scan_us);
  // `committed` is flipped by kConfirmEpoch once the epoch's coordinator
  // records are all written; an idempotent re-grant preserves it (a
  // publisher retrying a publish that failed after its commit round must
  // not un-commit the epoch).
  auto grant = [&](bool committed, uint64_t stored_nonce) {
    EpochClaimRecord rec{participant, claimant_node, committed, stored_nonce};
    Writer w;
    rec.EncodeTo(&w);
    store_.Put(keys::EpochClaim(epoch), w.data()).ok();
    counters_.claims_granted += 1;
    // The freshness clock a fence races against: every grant (including the
    // owner's periodic refresh re-grants) resets the staleness TTL.
    claim_touch_[epoch] = host_->network()->simulator()->now();
    Respond(from, req_id, Status::OK(), {});
  };
  // Unanimity-table backstop: a burned epoch stays refused even after its
  // claim record was GC'd below the watermark (the in-memory burned set
  // outlives the record; pushes and kPurgeEpoch keep re-seeding it).
  if (fenced_epochs_.count(epoch) > 0) {
    const FencedInstance& inst = fenced_epochs_[epoch];
    counters_.claims_refused += 1;
    Writer wb;
    wb.PutVarint32(inst.participant);
    wb.PutVarint32(0);
    wb.PutVarint64(inst.nonce);
    Respond(from, req_id,
            Status::Fenced("epoch " + std::to_string(epoch) +
                           " burned by abandonment fencing"),
            wb.Release());
    return;
  }
  auto cur = store_.Get(keys::EpochClaim(epoch));
  if (!cur.ok()) {
    grant(false, nonce);
    return;
  }
  Reader cr(cur.value());
  EpochClaimRecord stored;
  if (!EpochClaimRecord::DecodeFrom(&cr, &stored).ok()) {
    grant(false, nonce);  // malformed slot: treat as empty
    return;
  }
  if (stored.fenced) {
    counters_.claims_refused += 1;
    Writer wb;
    wb.PutVarint32(stored.participant);
    wb.PutVarint32(stored.node);
    wb.PutVarint64(stored.nonce);
    if (stored.purged) {
      // Authoritative burn (the fence reached unanimity): refused for
      // EVERYONE, owner included (a zombie resurrecting its fenced epoch is
      // exactly what the burn prevents). Contenders skip past it.
      Respond(from, req_id,
              Status::Fenced("epoch " + std::to_string(epoch) +
                             " burned by abandonment fencing"),
              wb.Release());
    } else {
      // Bare burn promise (a fence round touched this replica; unanimity
      // unknown — the epoch may yet commit through a heal, or harden to a
      // purged burn). Refuse like an ordinary taken slot so the requester
      // waits and resolves it through the probe/fence machinery instead of
      // skipping an epoch that might still commit. Deliberately NO owner
      // re-grant here: silently clearing the promise would reopen the
      // confirm-vs-fence race the promise exists to close — the owner
      // retires its own instance with a self-fence instead.
      Respond(from, req_id,
              Status::EpochTaken("epoch " + std::to_string(epoch) +
                                 " burn-promised under participant " +
                                 std::to_string(stored.participant)),
              wb.Release());
    }
    return;
  }
  if (stored.participant == participant) {
    // Idempotent re-grant. The stored nonce only moves FORWARD (attempt
    // nonces are monotonic per publisher): a DELAYED claim from an old
    // attempt must not roll the instance back, or the old attempt's equally
    // delayed release could match again and unpin the epoch the newest
    // attempt is writing at.
    grant(stored.committed, std::max(stored.nonce, nonce));
    return;
  }
  counters_.claims_refused += 1;
  Writer wb;
  wb.PutVarint32(stored.participant);
  wb.PutVarint32(stored.node);
  wb.PutVarint64(stored.nonce);
  Respond(from, req_id,
          Status::EpochTaken("epoch " + std::to_string(epoch) +
                             " claimed by participant " +
                             std::to_string(stored.participant)),
          wb.Release());
}

void StorageService::HandleFenceEpoch(net::NodeId from, Reader* r,
                                      uint64_t req_id) {
  // Abandonment fencing (see kFenceEpoch in service.h). Decision order:
  //   1. already fenced            -> idempotent grant (another fencer won a
  //                                   race, or this is a retry);
  //   2. behind confirmed frontier -> refuse (a vacuous grant after
  //                                   membership churn could burn an epoch
  //                                   that committed elsewhere);
  //   3. stored claim committed    -> refuse (a commit is a fact; purging
  //                                   under it would lose visible data);
  //   4. slot changed hands        -> refuse (the fencer's staleness
  //                                   evidence is about a different owner);
  //   5. owner still fresh         -> refuse (a live-but-slow owner's claim
  //                                   refreshes win the race against fences)
  //                                   — waived when the owner fences ITSELF
  //                                   (retiring its own doomed instance);
  //   6. otherwise                 -> burn the epoch: store the fenced
  //                                   marker (refusing all future claims and
  //                                   confirms here).
  // A missing/malformed slot past the frontier grants vacuously — the burn
  // marker is what keeps a zombie's late re-claim out.
  //
  // The grant deliberately does NOT purge data: this round may still be
  // refused at another replica (owner fresh there, or its confirm landed
  // first), and a purge under an epoch that can still be observed committed
  // would delete visible data. Purging happens only in phase two — the
  // fencer's kPurgeEpoch broadcast after EVERY replica granted, which proves
  // no confirm round can ever complete at this epoch.
  uint64_t epoch, ttl_us;
  uint32_t fencer, fenced_participant;
  if (!r->GetVarint64(&epoch).ok() || !r->GetVarint32(&fencer).ok() ||
      !r->GetVarint32(&fenced_participant).ok() ||
      !r->GetVarint64(&ttl_us).ok()) {
    Respond(from, req_id, Status::Corruption("bad fence request"), {});
    return;
  }
  ChargeCpu(host_->network()->costs().tuple_scan_us);
  EpochClaimRecord stored;
  bool have = false;
  auto cur = store_.Get(keys::EpochClaim(epoch));
  if (cur.ok()) {
    Reader cr(cur.value());
    have = EpochClaimRecord::DecodeFrom(&cr, &stored).ok();
  }
  auto grant = [&](const EpochClaimRecord& inst) {
    counters_.fences_granted += 1;
    Writer wb;
    wb.PutVarint32(inst.participant);
    wb.PutVarint32(inst.node);
    wb.PutVarint64(inst.nonce);
    Respond(from, req_id, Status::OK(), wb.Release());
  };
  if (have && stored.fenced) {
    grant(stored);
    return;
  }
  auto refuse = [&](Status st) {
    counters_.fences_refused += 1;
    Respond(from, req_id, st, {});
  };
  if (epoch <= max_epoch_seen_) {
    refuse(Status::EpochTaken("fence refused: epoch " + std::to_string(epoch) +
                              " is at or behind the confirmed frontier"));
    return;
  }
  if (have && stored.committed) {
    refuse(Status::EpochTaken("fence refused: epoch " + std::to_string(epoch) +
                              " committed by participant " +
                              std::to_string(stored.participant)));
    return;
  }
  if (have && stored.participant != fenced_participant) {
    refuse(Status::EpochTaken(
        "fence refused: epoch " + std::to_string(epoch) + " now held by " +
        std::to_string(stored.participant) + ", not " +
        std::to_string(fenced_participant)));
    return;
  }
  // A self-fence (the owner retiring its own instance — it discovered a
  // partial burn it can neither commit through nor safely abandon) waives
  // the freshness check: the clock protects the owner, and the owner is the
  // requester.
  if (have && fencer != fenced_participant) {
    auto touch = claim_touch_.find(epoch);
    sim::SimTime now = host_->network()->simulator()->now();
    if (touch == claim_touch_.end()) {
      // Unknown freshness: this replica gained the claim without a grant
      // (replica push, rebalance). Seed the clock and refuse once — the
      // owner, if live, gets one TTL of grace to heartbeat it; a truly
      // abandoned claim is fenceable one TTL later.
      claim_touch_[epoch] = now;
      refuse(Status::Unavailable("fence refused: claim owner of epoch " +
                                 std::to_string(epoch) +
                                 " has unknown freshness; seeded"));
      return;
    }
    if (now - touch->second < static_cast<sim::SimTime>(ttl_us)) {
      refuse(Status::Unavailable("fence refused: claim owner of epoch " +
                                 std::to_string(epoch) + " is still fresh"));
      return;
    }
  }
  EpochClaimRecord burned;
  if (have) {
    burned = stored;
  } else {
    burned.participant = fenced_participant;
  }
  burned.committed = false;
  burned.fenced = true;
  Writer w;
  burned.EncodeTo(&w);
  store_.Put(keys::EpochClaim(epoch), w.data()).ok();
  claim_touch_.erase(epoch);
  grant(burned);
}

void StorageService::MergeFencedEpoch(Epoch epoch, ParticipantId participant,
                                      uint64_t nonce) {
  EpochClaimRecord stored;
  bool have = false;
  auto cur = store_.Get(keys::EpochClaim(epoch));
  if (cur.ok()) {
    Reader cr(cur.value());
    have = EpochClaimRecord::DecodeFrom(&cr, &stored).ok();
  }
  // A commit is a fact a fence never overrides: if this replica learned the
  // epoch committed (the fence round and a confirm round can interleave at
  // DIFFERENT replicas; both then fail their callers), keep the commit.
  if (have && stored.committed) return;
  if (fenced_epochs_.count(epoch) > 0) return;
  fenced_epochs_[epoch] = FencedInstance{participant, nonce};
  claim_touch_.erase(epoch);
  // Persist the burn WITH purge authority (`purged`) so a restart re-learns
  // both facts and replica pushes propagate them (the marker replicates like
  // any claim record). Purge authority is what distinguishes this phase-two
  // entry point from a fence grant's burn promise: callers reach here only
  // downstream of a unanimously granted fence round.
  EpochClaimRecord burned;
  if (have) {
    burned = stored;
  } else {
    burned.participant = participant;
    burned.nonce = nonce;
  }
  burned.committed = false;
  burned.fenced = true;
  burned.purged = true;
  Writer w;
  burned.EncodeTo(&w);
  store_.Put(keys::EpochClaim(epoch), w.data()).ok();
  PurgeEpochLocal(epoch);
}

void StorageService::PurgeEpochLocal(Epoch epoch) {
  // The orphan purge behind a fence: the burned epoch never committed (both
  // fence entry points refuse committed epochs), so every version stored at
  // it is unreachable garbage — and worse, a data version at the burned
  // epoch would SHADOW the committed version the coordinator chain
  // references once the GC watermark passes it. One ordered pass per family.
  std::vector<std::string> doomed;
  uint64_t scanned = 0;
  for (auto it = store_.SeekPrefix(keys::TagPrefix(keys::kDataTag)); it.Valid();
       it.Next()) {
    ++scanned;
    keys::ParsedDataKey dk;
    if (keys::ParseData(it.key(), &dk) && dk.epoch == epoch) {
      doomed.emplace_back(it.key());
    }
  }
  // Page purge also tracks, per purged partition, the newest SURVIVING page
  // version so inverse entries can be re-aimed below — discovery must never
  // see an inverse pointing at a purged page (torn state).
  struct PurgedPartition {
    std::string relation;
    uint32_t partition = 0;
    Epoch newest_surviving = 0;
    bool any_surviving = false;
  };
  std::vector<PurgedPartition> purged_parts;
  {
    std::string group;
    bool group_purged = false;
    PurgedPartition part;
    auto flush = [&] {
      if (group_purged) purged_parts.push_back(part);
      group_purged = false;
      part = PurgedPartition{};
    };
    for (auto it = store_.SeekPrefix(keys::TagPrefix(keys::kPageTag));
         it.Valid(); it.Next()) {
      ++scanned;
      keys::ParsedPageKey pk;
      if (!keys::ParsePageRec(it.key(), &pk)) continue;
      std::string_view g = keys::VersionGroupPrefix(it.key());
      if (g != group) {
        flush();
        group.assign(g);
      }
      if (pk.epoch == epoch) {
        doomed.emplace_back(it.key());
        group_purged = true;
        part.relation.assign(pk.relation);
        part.partition = pk.partition;
      } else {
        part.any_surviving = true;
        part.newest_surviving = std::max(part.newest_surviving, pk.epoch);
      }
    }
    flush();
  }
  for (auto it = store_.SeekPrefix(keys::TagPrefix(keys::kCoordTag));
       it.Valid(); it.Next()) {
    ++scanned;
    keys::ParsedCoordKey ck;
    if (keys::ParseCoord(it.key(), &ck) && ck.epoch == epoch) {
      doomed.emplace_back(it.key());
    }
  }
  for (const std::string& key : doomed) store_.Delete(key).ok();
  for (const PurgedPartition& pp : purged_parts) {
    auto inv = ReadInverseLocal(pp.relation, pp.partition);
    if (!inv.ok() || inv.value().epoch != epoch) continue;
    if (pp.any_surviving) {
      Writer iw;
      PageId{pp.relation, pp.newest_surviving, pp.partition}.EncodeTo(&iw);
      store_.Put(keys::Inverse(pp.relation, pp.partition), iw.data()).ok();
    } else {
      store_.Delete(keys::Inverse(pp.relation, pp.partition)).ok();
    }
  }
  counters_.purged_orphans += doomed.size();
  ChargeCpu(host_->network()->costs().tuple_scan_us *
            static_cast<double>(scanned + doomed.size()));
}

void StorageService::HandleScanPage(net::NodeId from, Reader* r, uint64_t req_id) {
  uint64_t scan_id;
  uint32_t requester;
  std::string rel;
  PageDescriptor desc;
  KeyFilter filter;
  if (!r->GetU64(&scan_id).ok() || !r->GetU32(&requester).ok() ||
      !r->GetString(&rel).ok() || !PageDescriptor::DecodeFrom(r, &desc).ok() ||
      !KeyFilter::DecodeFrom(r, &filter).ok()) {
    Respond(from, req_id, Status::Corruption("bad scan request"), {});
    return;
  }

  auto page = ReadPageLocal(desc.id);
  if (!page.ok()) {
    // This replica does not (yet) have the page; the caller retries another.
    Respond(from, req_id, page.status(), {});
    return;
  }
  counters_.scans_served += 1;
  ChargeCpu(host_->network()->costs().index_entry_us *
            static_cast<double>(page->ids.size()));

  // Group surviving tuple ids by their data storage node (Algorithm 1 line
  // 8), routing on the hashes carried in the page — no SHA-1 per id.
  if (FindRelation(rel) == nullptr) {
    Respond(from, req_id, Status::NotFound("no relation " + rel), {});
    return;
  }
  std::map<net::NodeId, std::vector<size_t>> by_owner;
  for (size_t i = 0; i < page->ids.size(); ++i) {
    if (!filter.Matches(page->ids[i].key_bytes)) continue;
    net::NodeId owner = board_->current.OwnerOf(page->hashes[i]);
    by_owner[owner].push_back(i);
  }

  uint64_t total_ids = 0;
  std::string hb;  // reused 20-byte scratch: no per-id allocation
  for (auto& [owner, idxs] : by_owner) {
    Writer w;
    w.PutU64(scan_id);
    w.PutU32(requester);
    w.PutString(rel);
    w.PutVarint64(idxs.size());
    for (size_t i : idxs) {
      // hash(20B BE) + TupleId: the data node splices these into its keys.
      hb.clear();
      page->hashes[i].AppendBigEndian(&hb);
      w.PutRaw(hb.data(), hb.size());
      page->ids[i].EncodeTo(&w);
    }
    total_ids += idxs.size();
    SendOneWay(owner, kFetchTuples, w.Release());
  }

  // Page summary back to the requester so it can count completion.
  Writer w;
  w.PutVarint64(by_owner.size());
  w.PutVarint64(total_ids);
  Respond(from, req_id, Status::OK(), w.Release());
}

void StorageService::HandleFetchTuples(net::NodeId /*from*/, Reader* r) {
  uint64_t scan_id;
  uint32_t requester;
  std::string rel;
  uint64_t n;
  if (!r->GetU64(&scan_id).ok() || !r->GetU32(&requester).ok() ||
      !r->GetString(&rel).ok() || !r->GetVarint64(&n).ok()) {
    return;
  }
  Writer out;
  out.PutU64(scan_id);
  Writer rows;
  Writer missing;
  uint64_t rows_n = 0, missing_n = 0;
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view hash_be20, key_bytes;
    uint64_t epoch;
    if (!r->GetRawView(&hash_be20, 20).ok() ||
        !r->GetStringView(&key_bytes).ok() || !r->GetVarint64(&epoch).ok()) {
      return;
    }
    // The stored bytes ARE the encoded tuple: splice them into the reply
    // without decode/re-encode, keyed by the wire-carried hash (no SHA-1).
    // Empty bytes are a delete tombstone — report the id missing instead.
    auto bytes = ReadTupleBytesRaw(rel, hash_be20, key_bytes, epoch);
    if (bytes.ok() && !bytes.value().empty()) {
      rows.PutRaw(bytes.value().data(), bytes.value().size());
      ++rows_n;
    } else {
      TupleId{std::string(key_bytes), epoch}.EncodeTo(&missing);
      ++missing_n;
    }
  }
  counters_.tuples_served += rows_n;
  ChargeCpu(host_->network()->costs().tuple_scan_us * static_cast<double>(n));
  out.PutString(rel);
  out.PutVarint64(rows_n);
  out.PutRaw(rows.data().data(), rows.size());
  out.PutVarint64(missing_n);
  out.PutRaw(missing.data().data(), missing.size());
  // Direct to the requester, "bypassing the Index node and Relation
  // Coordinator" (Algorithm 1 line 9).
  SendOneWay(requester, kTupleData, out.Release());
}

void StorageService::HandleTupleData(net::NodeId /*from*/, Reader* r) {
  uint64_t scan_id;
  std::string rel;
  if (!r->GetU64(&scan_id).ok() || !r->GetString(&rel).ok()) return;
  auto it = scans_.find(scan_id);
  if (it == scans_.end()) return;  // scan already failed/finished
  ScanState& state = it->second;

  uint64_t rows_n;
  if (!r->GetVarint64(&rows_n).ok()) return;
  for (uint64_t i = 0; i < rows_n; ++i) {
    Tuple t;
    if (!DecodeTuple(r, &t).ok()) return;
    state.rows.push_back(std::move(t));
  }
  uint64_t missing_n;
  if (!r->GetVarint64(&missing_n).ok()) return;
  std::vector<TupleId> missing(missing_n);
  for (auto& id : missing) {
    if (!TupleId::DecodeFrom(r, &id).ok()) return;
  }
  state.data_parts_received += 1;
  for (const auto& id : missing) {
    state.lookups_outstanding += 1;
    RecoverMissingTuple(scan_id, id, 0);
  }
  ScanCheckDone(scan_id);
}

// --------------------------------------------------------------------------
// Retrieve (Algorithm 1)

void StorageService::GetCoordinator(
    const std::string& rel, Epoch epoch,
    std::function<void(Status, CoordinatorRecord)> cb) {
  HashId where = CoordinatorHash(rel, epoch);
  auto replicas = board_->current.ReplicasOf(where, replication_);
  Writer w;
  w.PutString(rel);
  w.PutVarint64(epoch);

  rpc_.CallFirst(std::move(replicas), kGetCoordinator, w.Release(),
                 [cb = std::move(cb)](Status st, const std::string& reply) {
                   if (!st.ok()) {
                     // Pass the last replica's error through: NotFound (a live
                     // replica definitively lacks the record) means something
                     // different to the publisher's walk-back than a timeout
                     // or drop does, and must not be flattened away.
                     cb(st, {});
                     return;
                   }
                   Reader r(reply);
                   CoordinatorRecord rec;
                   Status ds = CoordinatorRecord::DecodeFrom(&r, &rec);
                   if (ds.ok()) {
                     cb(Status::OK(), std::move(rec));
                   } else {
                     cb(ds, {});
                   }
                 });
}

void StorageService::GetPage(const PageDescriptor& desc,
                             std::function<void(Status, Page)> cb) {
  auto replicas = board_->current.ReplicasOf(desc.home(), replication_);
  Writer w;
  desc.id.EncodeTo(&w);

  rpc_.CallFirst(std::move(replicas), kGetPage, w.Release(),
                 [cb = std::move(cb)](Status st, const std::string& reply) {
                   if (!st.ok()) {
                     cb(Status::Unavailable("no replica has page"), {});
                     return;
                   }
                   Reader r(reply);
                   Page page;
                   Status ds = Page::DecodeFrom(&r, &page);
                   if (ds.ok()) {
                     cb(Status::OK(), std::move(page));
                   } else {
                     cb(ds, {});
                   }
                 });
}

void StorageService::Retrieve(const std::string& rel, Epoch epoch,
                              const KeyFilter& filter, RetrieveCallback cb) {
  uint64_t scan_id = next_scan_id_++;
  ScanState state;
  state.relation = rel;
  state.epoch = epoch;
  state.filter = filter;
  state.cb = std::move(cb);
  state.deadline_event = host_->network()->simulator()->ScheduleAfter(
      kScanDeadlineUs, [this, scan_id] {
        ScanFail(scan_id, Status::TimedOut("retrieve scan deadline"));
      });
  scans_.emplace(scan_id, std::move(state));

  GetCoordinator(rel, epoch, [this, scan_id](Status st, CoordinatorRecord rec) {
    auto it = scans_.find(scan_id);
    if (it == scans_.end()) return;
    if (!st.ok()) {
      ScanFail(scan_id, st);
      return;
    }
    it->second.pages_total = rec.pages.size();
    if (rec.pages.empty()) {
      ScanCheckDone(scan_id);
      return;
    }
    for (const PageDescriptor& desc : rec.pages) {
      StartPageScan(scan_id, desc, 0);
    }
  });
}

void StorageService::StartPageScan(uint64_t scan_id, const PageDescriptor& desc,
                                   size_t replica_idx) {
  auto it = scans_.find(scan_id);
  if (it == scans_.end()) return;
  ScanState& state = it->second;

  auto replicas = board_->current.ReplicasOf(desc.home(), replication_);
  if (replica_idx >= replicas.size()) {
    ScanFail(scan_id, Status::Unavailable("no replica can scan page " +
                                          desc.id.ToString()));
    return;
  }
  Writer w;
  w.PutU64(scan_id);
  w.PutU32(node());
  w.PutString(state.relation);
  desc.EncodeTo(&w);
  state.filter.EncodeTo(&w);

  Call(replicas[replica_idx], kScanPage, w.Release(),
       [this, scan_id, desc, replica_idx](Status st, const std::string& reply) {
         auto sit = scans_.find(scan_id);
         if (sit == scans_.end()) return;
         if (!st.ok()) {
           StartPageScan(scan_id, desc, replica_idx + 1);
           return;
         }
         Reader r(reply);
         uint64_t parts, ids;
         if (!r.GetVarint64(&parts).ok() || !r.GetVarint64(&ids).ok()) {
           ScanFail(scan_id, Status::Corruption("bad page summary"));
           return;
         }
         sit->second.summaries_received += 1;
         sit->second.data_parts_expected += parts;
         ScanCheckDone(scan_id);
       });
}

void StorageService::FetchTuple(const std::string& rel, const TupleId& id,
                                std::function<void(Status, Tuple)> cb) {
  auto def = Relation(rel);
  if (!def.ok()) {
    cb(def.status(), {});
    return;
  }
  auto replicas =
      board_->current.ReplicasOf(PlacementHash(*def, id.key_bytes), replication_);
  Writer w;
  w.PutString(rel);
  id.EncodeTo(&w);

  rpc_.CallFirst(std::move(replicas), kGetTuple, w.Release(),
                 [cb = std::move(cb)](Status st, const std::string& reply) {
                   if (!st.ok()) {
                     cb(Status::Unavailable("tuple not found on any replica"), {});
                     return;
                   }
                   Reader r(reply);
                   Tuple t;
                   Status ds = DecodeTuple(&r, &t);
                   if (!ds.ok()) {
                     cb(ds, {});
                     return;
                   }
                   cb(Status::OK(), std::move(t));
                 });
}

void StorageService::RecoverMissingTuple(uint64_t scan_id, const TupleId& id,
                                         size_t replica_idx) {
  auto it = scans_.find(scan_id);
  if (it == scans_.end()) return;
  ScanState& state = it->second;

  auto def = Relation(state.relation);
  if (!def.ok()) {
    ScanFail(scan_id, def.status());
    return;
  }
  auto replicas = board_->current.ReplicasOf(PlacementHash(*def, id.key_bytes),
                                             replication_);
  if (replica_idx >= replicas.size()) {
    ScanFail(scan_id, Status::Unavailable("tuple lost from all replicas"));
    return;
  }
  Writer w;
  w.PutString(state.relation);
  id.EncodeTo(&w);
  Call(replicas[replica_idx], kGetTuple, w.Release(),
       [this, scan_id, id, replica_idx](Status st, const std::string& reply) {
         auto sit = scans_.find(scan_id);
         if (sit == scans_.end()) return;
         if (!st.ok()) {
           RecoverMissingTuple(scan_id, id, replica_idx + 1);
           return;
         }
         Reader r(reply);
         Tuple t;
         if (!DecodeTuple(&r, &t).ok()) {
           ScanFail(scan_id, Status::Corruption("bad tuple reply"));
           return;
         }
         sit->second.rows.push_back(std::move(t));
         sit->second.lookups_outstanding -= 1;
         ScanCheckDone(scan_id);
       });
}

void StorageService::ScanCheckDone(uint64_t scan_id) {
  auto it = scans_.find(scan_id);
  if (it == scans_.end()) return;
  ScanState& state = it->second;
  if (state.failed) return;
  if (state.summaries_received < state.pages_total) return;
  if (state.data_parts_received < state.data_parts_expected) return;
  if (state.lookups_outstanding > 0) return;
  RetrieveCallback cb = std::move(state.cb);
  std::vector<Tuple> rows = std::move(state.rows);
  host_->network()->simulator()->Cancel(state.deadline_event);
  scans_.erase(it);
  cb(Status::OK(), std::move(rows));
}

void StorageService::ScanFail(uint64_t scan_id, Status st) {
  auto it = scans_.find(scan_id);
  if (it == scans_.end()) return;
  RetrieveCallback cb = std::move(it->second.cb);
  host_->network()->simulator()->Cancel(it->second.deadline_event);
  scans_.erase(it);
  cb(st, {});
}

// --------------------------------------------------------------------------
// Background re-replication

void StorageService::RebalanceTo(const overlay::RoutingSnapshot& snap) {
  std::map<net::NodeId, Writer> batches;
  std::map<net::NodeId, uint64_t> batch_counts;

  auto add_to = [&](net::NodeId target, std::string_view key, std::string_view value) {
    if (target == node()) return;
    Writer& w = batches[target];
    w.PutString(key);
    w.PutString(value);
    batch_counts[target] += 1;
  };

  for (auto it = store_.Seek(""); it.Valid(); it.Next()) {
    std::string_view key = it.key();
    if (key.empty()) continue;
    std::vector<net::NodeId> targets;
    switch (keys::Tag(key)) {
      case keys::kDataTag: {
        keys::ParsedDataKey dk;
        if (!keys::ParseData(key, &dk)) continue;
        HashId h = HashId::FromBigEndianBytes(dk.hash_be20);
        targets = snap.ReplicasOf(h, replication_);
        break;
      }
      case keys::kPageTag: {
        keys::ParsedPageKey pk;
        if (!keys::ParsePageRec(key, &pk)) continue;
        auto def = catalog_.find(std::string(pk.relation));
        if (def == catalog_.end()) continue;
        targets = snap.ReplicasOf(
            PartitionHome(pk.partition, def->second.num_partitions), replication_);
        break;
      }
      case keys::kInverseTag: {
        keys::ParsedInverseKey ik;
        if (!keys::ParseInverse(key, &ik)) continue;
        auto def = catalog_.find(std::string(ik.relation));
        if (def == catalog_.end()) continue;
        targets = snap.ReplicasOf(
            PartitionHome(ik.partition, def->second.num_partitions), replication_);
        break;
      }
      case keys::kCoordTag: {
        keys::ParsedCoordKey ck;
        if (!keys::ParseCoord(key, &ck)) continue;
        targets = snap.ReplicasOf(CoordinatorHash(std::string(ck.relation), ck.epoch),
                                  replication_);
        break;
      }
      case keys::kClaimTag: {
        Epoch e;
        if (!keys::ParseClaim(key, &e)) continue;
        targets = snap.ReplicasOf(ClaimHash(e), replication_);
        break;
      }
      case keys::kCatalogTag: {
        for (const auto& m : snap.members()) targets.push_back(m.node);
        break;
      }
      default:
        continue;
    }
    for (net::NodeId t : targets) add_to(t, key, it.value());
  }

  for (auto& [target, w] : batches) {
    Writer out;
    // Piggybacked GC marks: the full participant table, so a restarted
    // receiver rebuilds the min-across-participants watermark, not a scalar.
    out.PutVarint64(participant_marks_.size());
    for (const auto& [p, pm] : participant_marks_) {
      out.PutVarint32(p);
      out.PutVarint64(pm.mark);
    }
    // Piggybacked fenced-epoch table: burns propagate even after the fenced
    // claim records themselves were retired below the GC watermark.
    out.PutVarint64(fenced_epochs_.size());
    for (const auto& [fe, inst] : fenced_epochs_) {
      out.PutVarint64(fe);
      out.PutVarint32(inst.participant);
      out.PutVarint64(inst.nonce);
    }
    out.PutVarint64(batch_counts[target]);
    out.PutRaw(w.data().data(), w.size());
    Call(target, kReplicaPush, out.Release(), [](Status, const std::string&) {});
  }
}

// --------------------------------------------------------------------------
// Multi-epoch GC

void StorageService::SetGcWatermark(Epoch w) {
  if (w < gc_watermark_ || w == 0) return;  // monotonic; 0 disables
  gc_watermark_ = w;
  // The direct entry point is synchronous: callers (tests, harness nudges)
  // expect retirement to have happened on return. Any background sweep in
  // flight is now redundant — cancel it rather than let its stale slices
  // rescan what this full sweep just covered.
  if (gc_sweep_.active) {
    gc_sweep_.active = false;
    gc_sweep_.rearm = false;
    gc_sweep_.generation += 1;
  }
  RetireBelowWatermark();
}

Epoch StorageService::EffectiveParticipantWatermark() const {
  sim::SimTime now = host_->network()->simulator()->now();
  Epoch min_mark = 0;
  bool any = false;
  for (const auto& [p, pm] : participant_marks_) {
    if (now - pm.at > kParticipantMarkTtlUs) continue;  // departed
    if (!any || pm.mark < min_mark) min_mark = pm.mark;
    any = true;
  }
  return any ? min_mark : 0;
}

void StorageService::MergeParticipantMark(ParticipantId p, Epoch mark) {
  sim::SimTime now = host_->network()->simulator()->now();
  ParticipantMark& pm = participant_marks_[p];
  pm.mark = std::max(pm.mark, mark);  // monotonic per participant
  pm.at = now;
  // Expire departed participants eagerly so they stop pinning the min (and
  // so replica pushes don't keep resurrecting their entries elsewhere).
  for (auto it = participant_marks_.begin(); it != participant_marks_.end();) {
    if (now - it->second.at > kParticipantMarkTtlUs) {
      it = participant_marks_.erase(it);
    } else {
      ++it;
    }
  }
}

void StorageService::SetParticipantWatermark(ParticipantId p, Epoch mark) {
  MergeParticipantMark(p, mark);
  Epoch effective = EffectiveParticipantWatermark();
  if (effective == 0 || effective < gc_watermark_) return;
  // Advertisements raise the floor immediately (watermark reads must see the
  // new mark) but retire in the background: each publish used to pay a
  // synchronous full-store sweep here, which is where the steady-state GC
  // throughput tax came from.
  gc_watermark_ = effective;
  ScheduleGcSweep();
}

void StorageService::RetireBelowWatermark() {
  const Epoch w = gc_watermark_;
  std::vector<std::string> doomed;
  uint64_t scanned = 0;
  uint64_t n_coords = 0, n_pages = 0, n_data = 0, n_tombs = 0, n_claims = 0;

  // Coordinator records: retrieval is supported at epochs [w, current], so
  // any coordinator record below the watermark is unreachable.
  for (auto it = store_.SeekPrefix(keys::TagPrefix(keys::kCoordTag));
       it.Valid(); it.Next()) {
    ++scanned;
    keys::ParsedCoordKey ck;
    if (!keys::ParseCoord(it.key(), &ck)) continue;
    if (ck.epoch < w) {
      doomed.emplace_back(it.key());
      ++n_coords;
    }
  }

  // Epoch claims below the watermark: their epoch committed (or was
  // abandoned and superseded) long ago; no publisher can contend for it.
  for (auto it = store_.SeekPrefix(keys::TagPrefix(keys::kClaimTag));
       it.Valid(); it.Next()) {
    ++scanned;
    Epoch e;
    if (!keys::ParseClaim(it.key(), &e)) continue;
    if (e < w) {
      doomed.emplace_back(it.key());
      ++n_claims;
      claim_touch_.erase(e);  // the freshness clock follows the claim
    }
  }

  // Page and data records share the layout <group-prefix><epoch:8B BE> and
  // sort by group then epoch, so one ordered pass sees each group's versions
  // oldest-first. Within a group, every version at-or-below the watermark is
  // superseded by the next one at-or-below it; the newest such version is
  // what the kept coordinators still reference and survives. A data group's
  // survivor that is a delete tombstone (empty value) is retired too — it
  // exists only to kill older versions, which are gone once this pass runs.
  //
  // Correctness precondition: every version at-or-below the watermark was
  // referenced by some committed coordinator when written. Torn publishes
  // keep this locally checkable: coordinator records (the commit point) go
  // out only after every tuple/page write succeeded, and a failed publish
  // must be retried with the SAME batch (idempotent overwrite) before
  // publishing different data — an abandoned batch's orphan versions would
  // otherwise shadow the committed version the coordinators reference once
  // the watermark passes them (see ROADMAP: orphan reconciliation).
  auto sweep_versions = [&](char tag, uint64_t* retired,
                            bool reap_trailing_tombstone, auto&& epoch_of) {
    std::string group;          // current group prefix (key minus epoch)
    std::string best_key;       // newest version <= w seen in this group
    bool best_is_tombstone = false;
    auto flush_group = [&] {
      if (reap_trailing_tombstone && best_is_tombstone && !best_key.empty()) {
        doomed.push_back(best_key);
        ++n_tombs;
      }
      best_key.clear();
      best_is_tombstone = false;
    };
    for (auto it = store_.SeekPrefix(std::string_view(&tag, 1)); it.Valid();
         it.Next()) {
      ++scanned;
      std::string_view key = it.key();
      Epoch epoch = 0;
      if (!epoch_of(key, &epoch)) continue;  // malformed: leave it alone
      std::string_view prefix = keys::VersionGroupPrefix(key);
      if (prefix != group) {
        flush_group();
        group.assign(prefix);
      }
      if (epoch > w) continue;
      // A version at a fenced epoch is NEVER a survivor: it is purged
      // garbage a stale push resurrected, and letting it win the
      // newest-at-or-below race would shadow the committed version the
      // coordinators reference. Doom it without updating the carry.
      if (!fenced_epochs_.empty() && fenced_epochs_.count(epoch) > 0) {
        doomed.emplace_back(key);
        ++*retired;
        continue;
      }
      if (!best_key.empty()) {
        doomed.push_back(best_key);
        if (best_is_tombstone) {
          ++n_tombs;
        } else {
          ++*retired;
        }
      }
      best_key.assign(key);
      best_is_tombstone = reap_trailing_tombstone && it.value().empty();
    }
    flush_group();
  };
  sweep_versions(keys::kPageTag, &n_pages, /*reap_trailing_tombstone=*/false,
                 [](std::string_view key, Epoch* e) {
                   keys::ParsedPageKey pk;
                   if (!keys::ParsePageRec(key, &pk)) return false;
                   *e = pk.epoch;
                   return true;
                 });
  sweep_versions(keys::kDataTag, &n_data, /*reap_trailing_tombstone=*/true,
                 [](std::string_view key, Epoch* e) {
                   keys::ParsedDataKey dk;
                   if (!keys::ParseData(key, &dk)) return false;
                   *e = dk.epoch;
                   return true;
                 });

  for (const std::string& key : doomed) store_.Delete(key).ok();

  ChargeCpu(host_->network()->costs().tuple_scan_us *
            static_cast<double>(scanned + doomed.size()));
  gc_.runs += 1;
  gc_.retired_coords += n_coords;
  gc_.retired_pages += n_pages;
  gc_.retired_data += n_data;
  gc_.retired_tombstones += n_tombs;
  gc_.retired_claims += n_claims;
}

// --------------------------------------------------------------------------
// Incremental background GC

void StorageService::ScheduleGcSweep() {
  if (gc_watermark_ == 0) return;
  if (gc_sweep_.active) {
    // A sweep is in flight: fold this advertisement into it. The running
    // sweep keeps its pinned (older) watermark; on completion it restarts at
    // the latest one, which also re-covers anything a stale replica push
    // resurrected behind the cursor.
    gc_sweep_.rearm = true;
    gc_.coalesced += 1;
    return;
  }
  gc_sweep_.active = true;
  gc_sweep_.rearm = false;
  gc_sweep_.generation += 1;
  gc_sweep_.watermark = gc_watermark_;
  gc_sweep_.phase = 0;
  gc_sweep_.resume = keys::TagPrefix(keys::kCoordTag);
  gc_sweep_.group.clear();
  gc_sweep_.best_key.clear();
  gc_sweep_.best_is_tombstone = false;
  const uint64_t gen = gc_sweep_.generation;
  RunAfter(gc_options_.slice_interval_us, [this, gen] { GcSliceTask(gen); });
}

void StorageService::GcSliceTask(uint64_t generation) {
  if (!gc_sweep_.active || generation != gc_sweep_.generation) return;
  if (!RunGcSlice(gc_options_.slice_records)) {
    RunAfter(gc_options_.slice_interval_us,
             [this, generation] { GcSliceTask(generation); });
    return;
  }
  gc_sweep_.active = false;
  gc_.runs += 1;
  if (gc_sweep_.rearm) ScheduleGcSweep();
}

bool StorageService::RunGcSlice(uint64_t budget) {
  static constexpr char kPhaseTags[4] = {keys::kCoordTag, keys::kClaimTag,
                                         keys::kPageTag, keys::kDataTag};
  const Epoch w = gc_sweep_.watermark;
  std::vector<std::string> doomed;
  uint64_t scanned = 0;
  uint64_t n_coords = 0, n_pages = 0, n_data = 0, n_tombs = 0, n_claims = 0;

  // Reaps the tracked survivor if it is a trailing tombstone, then clears
  // the version-group carry — the sliced twin of the synchronous sweep's
  // flush_group (see RetireBelowWatermark for the retention argument).
  auto flush_group = [&] {
    if (gc_sweep_.best_is_tombstone && !gc_sweep_.best_key.empty()) {
      doomed.push_back(gc_sweep_.best_key);
      ++n_tombs;
    }
    gc_sweep_.best_key.clear();
    gc_sweep_.best_is_tombstone = false;
  };

  while (gc_sweep_.phase < 4 && scanned < budget) {
    const int phase = gc_sweep_.phase;
    const std::string prefix = keys::TagPrefix(kPhaseTags[phase]);
    bool exhausted = true;
    for (auto it = store_.Seek(gc_sweep_.resume);
         localstore::LocalStore::WithinPrefix(it, prefix); it.Next()) {
      if (scanned >= budget) {
        // Stop BEFORE consuming this record; the next slice re-seeks to it.
        // Records a push inserts behind the cursor are caught by the re-arm
        // sweep, exactly like ones behind a completed synchronous sweep.
        gc_sweep_.resume.assign(it.key());
        exhausted = false;
        break;
      }
      ++scanned;
      std::string_view key = it.key();
      switch (phase) {
        case 0: {
          keys::ParsedCoordKey ck;
          if (keys::ParseCoord(key, &ck) && ck.epoch < w) {
            doomed.emplace_back(key);
            ++n_coords;
          }
          break;
        }
        case 1: {
          Epoch e = 0;
          if (keys::ParseClaim(key, &e) && e < w) {
            doomed.emplace_back(key);
            ++n_claims;
            claim_touch_.erase(e);
          }
          break;
        }
        default: {
          Epoch epoch = 0;
          bool parsed = false;
          if (phase == 2) {
            keys::ParsedPageKey pk;
            parsed = keys::ParsePageRec(key, &pk);
            if (parsed) epoch = pk.epoch;
          } else {
            keys::ParsedDataKey dk;
            parsed = keys::ParseData(key, &dk);
            if (parsed) epoch = dk.epoch;
          }
          if (!parsed) break;  // malformed: leave it alone
          std::string_view group = keys::VersionGroupPrefix(key);
          if (group != gc_sweep_.group) {
            flush_group();
            gc_sweep_.group.assign(group);
          }
          if (epoch > w) break;
          // Fenced-epoch versions are never survivors (see the synchronous
          // sweep's twin of this check for the shadowing argument).
          if (!fenced_epochs_.empty() && fenced_epochs_.count(epoch) > 0) {
            doomed.emplace_back(key);
            ++(phase == 2 ? n_pages : n_data);
            break;
          }
          if (!gc_sweep_.best_key.empty()) {
            doomed.push_back(gc_sweep_.best_key);
            if (gc_sweep_.best_is_tombstone) {
              ++n_tombs;
            } else {
              ++(phase == 2 ? n_pages : n_data);
            }
          }
          gc_sweep_.best_key.assign(key);
          // Only data-family tombstones (empty value) are reaped once
          // trailing; pages have no tombstone notion.
          gc_sweep_.best_is_tombstone = phase == 3 && it.value().empty();
          break;
        }
      }
    }
    if (!exhausted) break;
    if (phase >= 2) flush_group();
    gc_sweep_.phase += 1;
    gc_sweep_.group.clear();
    if (gc_sweep_.phase < 4) {
      gc_sweep_.resume = keys::TagPrefix(kPhaseTags[gc_sweep_.phase]);
    }
  }

  for (const std::string& key : doomed) store_.Delete(key).ok();
  ChargeCpu(host_->network()->costs().tuple_scan_us *
            static_cast<double>(scanned + doomed.size()));
  gc_.slices += 1;
  gc_.retired_coords += n_coords;
  gc_.retired_pages += n_pages;
  gc_.retired_data += n_data;
  gc_.retired_tombstones += n_tombs;
  gc_.retired_claims += n_claims;
  return gc_sweep_.phase >= 4;
}

void StorageService::OnRestart() {
  // The store is durable across a crash; the epoch high-mark is not. Rebuild
  // it from the surviving CONFIRMED epoch claims (coordinator records alone
  // may belong to torn publishes) so epoch discovery stays truthful. The
  // watermark resets to 0 and is re-learned from the next advertisement —
  // GC merely lags on a freshly restarted node.
  max_epoch_seen_ = 0;
  fenced_epochs_.clear();
  claim_touch_.clear();
  const sim::SimTime now = host_->network()->simulator()->now();
  for (auto it = store_.SeekPrefix(keys::TagPrefix(keys::kClaimTag));
       it.Valid(); it.Next()) {
    Epoch e;
    if (!keys::ParseClaim(it.key(), &e)) continue;
    Reader vr(it.value());
    EpochClaimRecord rec;
    if (!EpochClaimRecord::DecodeFrom(&vr, &rec).ok()) continue;
    if (rec.committed) {
      max_epoch_seen_ = std::max(max_epoch_seen_, e);
    } else if (rec.fenced) {
      // Burns are durable. Only PURGED burns re-enter the purge-authority
      // table — a bare burn promise (partial fence round) keeps refusing
      // claims/confirms through the record itself but must never purge.
      if (rec.purged) {
        fenced_epochs_[e] = FencedInstance{rec.participant, rec.nonce};
      }
    } else {
      // Conservative freshness seed: a replica restart must not make a LIVE
      // claim owner look stale — its next refresh re-arms the clock anyway.
      claim_touch_[e] = now;
    }
  }
  gc_watermark_ = 0;
  // Per-participant marks are transient too; re-learned from advertisements
  // and the replica-push piggyback table.
  participant_marks_.clear();
  // Any background sweep died with the node (its slice tasks were dropped as
  // node tasks); reset the cursor so the next advertisement starts fresh.
  gc_sweep_.active = false;
  gc_sweep_.rearm = false;
  gc_sweep_.generation += 1;
}

}  // namespace orchestra::storage
