// Typed values and tuples. The engine supports the three types the paper's
// workloads need (§VI-A): 64-bit integers (also used for dates, as day
// numbers), doubles, and variable-length strings (STBenchmark's 25-char
// payloads, TPC-H comments).
#ifndef ORCHESTRA_STORAGE_VALUE_H_
#define ORCHESTRA_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/serial.h"

namespace orchestra::storage {

enum class ValueType : uint8_t { kNull = 0, kInt64 = 1, kDouble = 2, kString = 3 };

const char* ValueTypeName(ValueType t);

/// A single typed value. Ordered comparison is defined within a type;
/// cross-type comparison orders by type tag (needed only for canonical
/// sorting, never produced by well-typed plans).
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  static Value Null() { return Value(); }

  ValueType type() const { return static_cast<ValueType>(v_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric coercion: int64 widens to double. Precondition: numeric type.
  double NumericValue() const;

  bool operator==(const Value& o) const { return v_ == o.v_; }
  /// Total order: by type tag, then by value.
  int Compare(const Value& o) const;
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, Value* out);

  /// Order-preserving byte encoding (memcmp order == value order within a
  /// type); used for key bytes so the localstore's ordered scans follow key
  /// order. Strings must not be compared against numerics.
  void EncodeOrdered(std::string* out) const;

  /// Inverse of EncodeOrdered: consumes one value from the front of `in`,
  /// advancing it. Enables covering index scans, which materialize key
  /// attributes directly from TupleIds without touching data nodes (Table I).
  static Status DecodeOrdered(std::string_view* in, Value* out);

  std::string ToString() const;
  size_t StdHash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

/// A row: one Value per schema column.
using Tuple = std::vector<Value>;

void EncodeTuple(const Tuple& t, Writer* w);
Status DecodeTuple(Reader* r, Tuple* out);
std::string TupleToString(const Tuple& t);

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 0x9E3779B97F4A7C15ull;
    for (const auto& v : t) h = h * 1099511628211ull + v.StdHash();
    return h;
  }
};

/// Lexicographic tuple comparison.
int CompareTuples(const Tuple& a, const Tuple& b);

}  // namespace orchestra::storage

#endif  // ORCHESTRA_STORAGE_VALUE_H_
