#include "storage/value.h"

#include <cmath>
#include <cstring>

#include "common/log.h"

namespace orchestra::storage {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt64: return "INT64";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "?";
}

double Value::NumericValue() const {
  if (type() == ValueType::kInt64) return static_cast<double>(AsInt64());
  ORC_CHECK(type() == ValueType::kDouble, "NumericValue on non-numeric");
  return AsDouble();
}

int Value::Compare(const Value& o) const {
  if (type() != o.type()) {
    // Numeric cross-compare is meaningful; everything else orders by tag.
    bool numeric = (type() == ValueType::kInt64 || type() == ValueType::kDouble) &&
                   (o.type() == ValueType::kInt64 || o.type() == ValueType::kDouble);
    if (numeric) {
      double a = NumericValue(), b = o.NumericValue();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    return type() < o.type() ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64: {
      int64_t a = AsInt64(), b = o.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kDouble: {
      double a = AsDouble(), b = o.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString:
      return AsString().compare(o.AsString()) < 0
                 ? -1
                 : (AsString() == o.AsString() ? 0 : 1);
  }
  return 0;
}

void Value::EncodeTo(Writer* w) const {
  w->PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      // Zigzag so small negatives stay short.
      w->PutVarint64((static_cast<uint64_t>(AsInt64()) << 1) ^
                     static_cast<uint64_t>(AsInt64() >> 63));
      break;
    case ValueType::kDouble:
      w->PutDouble(AsDouble());
      break;
    case ValueType::kString:
      w->PutString(AsString());
      break;
  }
}

Status Value::DecodeFrom(Reader* r, Value* out) {
  uint8_t tag;
  ORC_RETURN_IF_ERROR(r->GetU8(&tag));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return Status::OK();
    case ValueType::kInt64: {
      uint64_t z;
      ORC_RETURN_IF_ERROR(r->GetVarint64(&z));
      *out = Value(static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1)));
      return Status::OK();
    }
    case ValueType::kDouble: {
      double d;
      ORC_RETURN_IF_ERROR(r->GetDouble(&d));
      *out = Value(d);
      return Status::OK();
    }
    case ValueType::kString: {
      std::string s;
      ORC_RETURN_IF_ERROR(r->GetString(&s));
      *out = Value(std::move(s));
      return Status::OK();
    }
  }
  return Status::Corruption("value: bad type tag");
}

void Value::EncodeOrdered(std::string* out) const {
  out->push_back(static_cast<char>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64: {
      // Flip the sign bit: two's-complement order becomes memcmp order.
      uint64_t u = static_cast<uint64_t>(AsInt64()) ^ (1ull << 63);
      for (int i = 7; i >= 0; --i) out->push_back(static_cast<char>(u >> (8 * i)));
      break;
    }
    case ValueType::kDouble: {
      uint64_t bits;
      double d = AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      // IEEE754 total order transform.
      if (bits >> 63) {
        bits = ~bits;
      } else {
        bits |= (1ull << 63);
      }
      for (int i = 7; i >= 0; --i) out->push_back(static_cast<char>(bits >> (8 * i)));
      break;
    }
    case ValueType::kString: {
      // Escape 0x00 as 0x00 0xFF, terminate with 0x00 0x01: order-preserving
      // and unambiguous for arbitrary bytes.
      for (char c : AsString()) {
        out->push_back(c);
        if (c == '\0') out->push_back(static_cast<char>(0xFF));
      }
      out->push_back('\0');
      out->push_back('\x01');
      break;
    }
  }
}

Status Value::DecodeOrdered(std::string_view* in, Value* out) {
  if (in->empty()) return Status::Corruption("ordered: empty input");
  auto type = static_cast<ValueType>((*in)[0]);
  in->remove_prefix(1);
  switch (type) {
    case ValueType::kNull:
      *out = Value::Null();
      return Status::OK();
    case ValueType::kInt64: {
      if (in->size() < 8) return Status::Corruption("ordered: short int");
      uint64_t u = 0;
      for (int i = 0; i < 8; ++i) u = (u << 8) | static_cast<uint8_t>((*in)[i]);
      in->remove_prefix(8);
      *out = Value(static_cast<int64_t>(u ^ (1ull << 63)));
      return Status::OK();
    }
    case ValueType::kDouble: {
      if (in->size() < 8) return Status::Corruption("ordered: short double");
      uint64_t bits = 0;
      for (int i = 0; i < 8; ++i) bits = (bits << 8) | static_cast<uint8_t>((*in)[i]);
      in->remove_prefix(8);
      if (bits >> 63) {
        bits &= ~(1ull << 63);
      } else {
        bits = ~bits;
      }
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value(d);
      return Status::OK();
    }
    case ValueType::kString: {
      std::string s;
      size_t i = 0;
      while (true) {
        if (i >= in->size()) return Status::Corruption("ordered: unterminated string");
        char c = (*in)[i];
        if (c == '\0') {
          if (i + 1 >= in->size()) return Status::Corruption("ordered: bad escape");
          char next = (*in)[i + 1];
          if (next == '\x01') {  // terminator
            i += 2;
            break;
          }
          if (next == '\xFF') {  // escaped NUL
            s.push_back('\0');
            i += 2;
            continue;
          }
          return Status::Corruption("ordered: bad escape byte");
        }
        s.push_back(c);
        ++i;
      }
      in->remove_prefix(i);
      *out = Value(std::move(s));
      return Status::OK();
    }
  }
  return Status::Corruption("ordered: bad type tag");
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt64: return std::to_string(AsInt64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    case ValueType::kString: return "'" + AsString() + "'";
  }
  return "?";
}

size_t Value::StdHash() const {
  switch (type()) {
    case ValueType::kNull: return 0xDEADBEEF;
    case ValueType::kInt64: return std::hash<int64_t>()(AsInt64());
    case ValueType::kDouble: {
      double d = AsDouble();
      if (d == static_cast<int64_t>(d)) return std::hash<int64_t>()(static_cast<int64_t>(d));
      return std::hash<double>()(d);
    }
    case ValueType::kString: return std::hash<std::string>()(AsString());
  }
  return 0;
}

void EncodeTuple(const Tuple& t, Writer* w) {
  w->PutVarint32(static_cast<uint32_t>(t.size()));
  for (const auto& v : t) v.EncodeTo(w);
}

Status DecodeTuple(Reader* r, Tuple* out) {
  uint32_t n;
  ORC_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > (1u << 16)) return Status::Corruption("tuple: absurd arity");
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    ORC_RETURN_IF_ERROR(Value::DecodeFrom(r, &v));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

std::string TupleToString(const Tuple& t) {
  std::string s = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i) s += ", ";
    s += t[i].ToString();
  }
  s += ")";
  return s;
}

int CompareTuples(const Tuple& a, const Tuple& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
}

}  // namespace orchestra::storage
