// NodeHost: demultiplexes one node's inbound messages to the services running
// on it (storage, query executor, gossip, CDSS participant...). Message types
// are (service_id << 16) | code.
#ifndef ORCHESTRA_NET_NODE_HOST_H_
#define ORCHESTRA_NET_NODE_HOST_H_

#include <map>
#include <string>

#include "net/network.h"

namespace orchestra::net {

/// Well-known service identifiers.
enum class ServiceId : uint16_t {
  kGossip = 1,
  kStorage = 2,
  kQuery = 3,
  kPing = 4,
  kCdss = 5,
};

/// A protocol endpoint living on one node.
class Service {
 public:
  virtual ~Service() = default;
  virtual void OnMessage(NodeId from, uint16_t code, const std::string& payload) = 0;
  virtual void OnConnectionDrop(NodeId /*peer*/) {}
  /// This node itself was marked failed (fail-stop). Release per-call and
  /// per-query state WITHOUT invoking completion callbacks: the node is
  /// halted, so nothing may execute on it anymore.
  virtual void OnSelfFailed() {}
};

/// Owns the per-node dispatch table; installed as the node's MessageHandler.
class NodeHost : public MessageHandler {
 public:
  NodeHost(Network* network, NodeId node) : network_(network), node_(node) {
    network->SetHandler(node, this);
  }

  void Register(ServiceId id, Service* service) { services_[id] = service; }

  /// Sends from this node to `to` addressed at (service, code).
  void SendTo(NodeId to, ServiceId service, uint16_t code, std::string payload) {
    uint32_t type = (static_cast<uint32_t>(service) << 16) | code;
    network_->Send(node_, to, type, std::move(payload));
  }

  void OnMessage(NodeId from, uint32_t type, const std::string& payload) override {
    auto id = static_cast<ServiceId>(type >> 16);
    auto it = services_.find(id);
    if (it != services_.end()) {
      it->second->OnMessage(from, static_cast<uint16_t>(type & 0xFFFF), payload);
    }
  }

  void OnConnectionDrop(NodeId peer) override {
    for (auto& [id, service] : services_) service->OnConnectionDrop(peer);
  }

  /// Propagates fail-stop death of this node to every service on it.
  void FailSelf() {
    for (auto& [id, service] : services_) service->OnSelfFailed();
  }

  NodeId node() const { return node_; }
  Network* network() { return network_; }

 private:
  Network* network_;
  NodeId node_;
  std::map<ServiceId, Service*> services_;
};

}  // namespace orchestra::net

#endif  // ORCHESTRA_NET_NODE_HOST_H_
