// Simulated message-based network with TCP-like semantics (§III-B, §V-A):
//  * reliable, in-order delivery between any pair of live nodes,
//  * near-immediate notification of connection drop when a peer dies,
//  * flow control arises from bandwidth pacing (uplink/downlink occupancy),
//  * per-link bandwidth and latency knobs (the NetEm/HTB substitute, §VI-C),
//  * complete traffic accounting — real serialized byte counts.
//
// CPU execution model: each node is single-threaded. Incoming messages queue
// at the node and are drained one at a time; handlers charge simulated CPU
// through ChargeCpu(), which advances the node's clock. Messages sent from
// inside a handler depart at the handler's (charged) completion time.
#ifndef ORCHESTRA_NET_NETWORK_H_
#define ORCHESTRA_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "hash/hash_id.h"
#include "sim/cost_model.h"
#include "sim/simulator.h"

namespace orchestra::net {

/// Dense node identifier: index into the network's node table.
using NodeId = uint32_t;
constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Framing overhead charged per message on top of the payload (Ethernet + IP
/// + TCP headers and our type/length framing).
constexpr uint64_t kMessageOverheadBytes = 66;

/// Application hook for a node.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  /// A message arrived. `type` is an application-defined tag; `payload` the
  /// serialized body. Runs on the node's (simulated) thread.
  virtual void OnMessage(NodeId from, uint32_t type, const std::string& payload) = 0;
  /// The TCP connection to `peer` dropped (peer failed or partitioned).
  virtual void OnConnectionDrop(NodeId /*peer*/) {}
};

/// Link characteristics; defaults model the paper's Gigabit LAN.
struct LinkParams {
  double bandwidth_bytes_per_sec = 125.0e6;  // 1 Gbit/s
  sim::SimTime latency_us = 100;             // 0.1 ms LAN RTT/2
};

struct NodeTraffic {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
};

/// A node's inbox occupancy: queued-but-undrained deliveries (messages,
/// drop notices, and node tasks) and their payload bytes, plus high-water
/// marks since the last ResetTraffic(). This is the admission-control
/// signal — storage replies advertise it as a load hint, and it is what the
/// pipelined-publish bench bounds under overload.
struct InboxStats {
  uint64_t messages = 0;      // deliveries currently queued
  uint64_t bytes = 0;         // payload bytes currently queued
  uint64_t max_messages = 0;  // high-water marks (reset with traffic)
  uint64_t max_bytes = 0;
};

/// Fault-injection mix applied to cross-node messages (local loopback, drop
/// notices, and node tasks are never perturbed). Decisions are drawn from a
/// dedicated seeded Rng in Send order, so a run is bit-for-bit reproducible.
/// Per-direction drop overrides (SetDropOverride) model asymmetric
/// partitions: the ordered pair (from -> to) can drop at its own rate while
/// the reverse direction stays healthy.
struct FaultOptions {
  double drop_prob = 0;               // P(message silently lost)
  double delay_prob = 0;              // P(extra propagation delay)
  sim::SimTime max_extra_delay_us = 0;  // delay drawn uniform in [1, max]
};

struct FaultCounters {
  uint64_t dropped = 0;
  uint64_t delayed = 0;
};

/// The simulated network. Owns node state; applications register a
/// MessageHandler per node.
class Network {
 public:
  Network(sim::Simulator* simulator, LinkParams default_link,
          const sim::CostModel* cost_model = &sim::CostModel::Default());

  /// Adds a node; `cpu_speed` scales CPU charges (1.0 = reference machine).
  NodeId AddNode(const std::string& name, double cpu_speed = 1.0);
  size_t node_count() const { return nodes_.size(); }

  void SetHandler(NodeId node, MessageHandler* handler);
  const std::string& NodeName(NodeId node) const { return nodes_[node].name; }
  double NodeCpuSpeed(NodeId node) const { return nodes_[node].cpu_speed; }

  /// Overrides link params for the ordered pair (from → to).
  void SetLinkParams(NodeId from, NodeId to, LinkParams params);
  /// Overrides every link's params (bandwidth sweep experiments).
  void SetAllLinkParams(LinkParams params);
  LinkParams GetLinkParams(NodeId from, NodeId to) const;

  /// Reliable in-order send. Local sends (from == to) are delivered without
  /// touching the network (zero traffic, zero latency) — this is what makes
  /// the storage layer's index/data co-location optimization real (§IV).
  void Send(NodeId from, NodeId to, uint32_t type, std::string payload);

  /// Fail-stop kill: node stops processing; all peers get OnConnectionDrop
  /// after their one-way latency to the dead node (TCP reset detection).
  void KillNode(NodeId node);
  /// "Hung" machine (§V-C): stops draining its inbox but connections stay
  /// open, so only application-level pings can detect it.
  void HangNode(NodeId node);
  /// Recovers a hung (still-alive) machine: it resumes draining its inbox,
  /// backlog first — unlike ReviveNode, nothing queued was lost.
  void UnhangNode(NodeId node);
  /// Restart after a fail-stop kill: the node processes messages again with
  /// an empty inbox. Everything in flight to it while dead was lost; peers
  /// reconnect implicitly on the next send.
  void ReviveNode(NodeId node);
  bool IsAlive(NodeId node) const { return nodes_[node].alive; }
  bool IsHung(NodeId node) const { return nodes_[node].hung; }

  // --- Fault injection ------------------------------------------------------
  /// Seeds the fault stream; faults stay disabled until SetFaultOptions gives
  /// non-zero probabilities. Reseeding restarts the stream.
  void SeedFaults(uint64_t seed) { fault_rng_ = Rng(seed); }
  /// Swaps the active fault mix (e.g. zeroed at a convergence point). The
  /// decision stream keeps its position, so toggling is itself deterministic.
  void SetFaultOptions(FaultOptions opts) { fault_opts_ = opts; }
  const FaultOptions& fault_options() const { return fault_opts_; }
  const FaultCounters& fault_counters() const { return fault_counters_; }
  /// Asymmetric partition support: the ordered link (from -> to) drops at
  /// `prob` instead of the global drop_prob; the reverse direction is
  /// unaffected. Decisions still come from the shared seeded stream in Send
  /// order, so runs stay reproducible. Remove with ClearDropOverrides().
  void SetDropOverride(NodeId from, NodeId to, double prob) {
    drop_overrides_[{from, to}] = prob;
  }
  /// Heals one directed link (removes its override; the global drop_prob
  /// applies again). No-op if no override is set.
  void ClearDropOverride(NodeId from, NodeId to) {
    drop_overrides_.erase({from, to});
  }
  void ClearDropOverrides() { drop_overrides_.clear(); }
  size_t drop_override_count() const { return drop_overrides_.size(); }

  /// Charges `micros` of reference-speed CPU to `node` (scaled by its speed).
  /// Must be called from inside a message handler or scheduled node task.
  void ChargeCpu(NodeId node, double micros);

  /// Runs `fn` as a task on `node`'s simulated thread at time >= `at`.
  void RunOnNode(NodeId node, sim::SimTime at, std::function<void()> fn);

  // --- Traffic accounting ---------------------------------------------------
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_messages() const { return total_messages_; }
  const NodeTraffic& traffic(NodeId node) const { return nodes_[node].traffic; }
  /// Current + high-water inbox occupancy (admission-control signal).
  const InboxStats& inbox_stats(NodeId node) const { return nodes_[node].inbox_stats; }
  /// Max over nodes of the inbox message high-water mark.
  uint64_t MaxInboxMessages() const;
  void ResetTraffic();
  /// Max over nodes of (sent + received); the paper's "per-node traffic" plots
  /// report the average, provided here too.
  double AvgPerNodeTraffic() const;

  sim::Simulator* simulator() { return sim_; }
  const sim::CostModel& costs() const { return *costs_; }

 private:
  struct Delivery {
    NodeId from = kInvalidNode;
    uint32_t type = 0;
    std::string payload;
    bool is_drop_notice = false;  // OnConnectionDrop pseudo-message
    std::function<void()> task;   // RunOnNode pseudo-message
  };

  struct NodeState {
    std::string name;
    double cpu_speed = 1.0;
    bool alive = true;
    bool hung = false;
    MessageHandler* handler = nullptr;
    std::deque<Delivery> inbox;
    bool drain_scheduled = false;
    sim::SimTime cpu_free = 0;      // node's thread is busy until this time
    sim::SimTime uplink_free = 0;   // outgoing NIC busy until
    sim::SimTime downlink_free = 0; // incoming NIC busy until
    // Arrival time of the latest in-flight message per sender; a drop notice
    // for a dead sender must not overtake these (per-connection TCP order).
    std::map<NodeId, sim::SimTime> last_arrival_from;
    NodeTraffic traffic;
    InboxStats inbox_stats;
  };

  void EnqueueDelivery(NodeId to, Delivery d, sim::SimTime at);
  void ScheduleDrain(NodeId node, sim::SimTime at);
  void DrainOne(NodeId node);

  void InboxPush(NodeState& node, const Delivery& d);
  void InboxPop(NodeState& node, const Delivery& d);
  void InboxClear(NodeState& node);

  sim::Simulator* sim_;
  const sim::CostModel* costs_;
  LinkParams default_link_;
  std::map<std::pair<NodeId, NodeId>, LinkParams> link_overrides_;
  std::map<std::pair<NodeId, NodeId>, double> drop_overrides_;
  std::vector<NodeState> nodes_;
  uint64_t total_bytes_ = 0;
  uint64_t total_messages_ = 0;
  NodeId draining_node_ = kInvalidNode;  // node whose handler is running
  Rng fault_rng_{0};
  FaultOptions fault_opts_;
  FaultCounters fault_counters_;
};

}  // namespace orchestra::net

#endif  // ORCHESTRA_NET_NETWORK_H_
