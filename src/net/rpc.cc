#include "net/rpc.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/log.h"
#include "common/serial.h"

namespace orchestra::net {

namespace {

std::atomic<int64_t> g_callbacks_alive{0};
std::atomic<uint64_t> g_calls_started{0};
std::atomic<uint64_t> g_calls_resolved{0};

Status MakeStatus(uint8_t code, const std::string& msg) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk: return Status::OK();
    case Status::Code::kNotFound: return Status::NotFound(msg);
    case Status::Code::kInvalidArgument: return Status::InvalidArgument(msg);
    case Status::Code::kCorruption: return Status::Corruption(msg);
    case Status::Code::kIOError: return Status::IOError(msg);
    case Status::Code::kUnavailable: return Status::Unavailable(msg);
    case Status::Code::kAborted: return Status::Aborted(msg);
    case Status::Code::kTimedOut: return Status::TimedOut(msg);
    case Status::Code::kNotSupported: return Status::NotSupported(msg);
    case Status::Code::kFailedPrecondition: return Status::FailedPrecondition(msg);
    case Status::Code::kEpochTaken: return Status::EpochTaken(msg);
    case Status::Code::kFenced: return Status::Fenced(msg);
  }
  return Status::IOError("rpc: unknown status code " + std::to_string(code));
}

}  // namespace

int64_t RpcStats::callbacks_alive() { return g_callbacks_alive.load(); }
uint64_t RpcStats::calls_started() { return g_calls_started.load(); }
uint64_t RpcStats::calls_resolved() { return g_calls_resolved.load(); }

RpcClient::RpcClient(NodeHost* host, ServiceId service, uint16_t reply_code)
    : host_(host), service_(service), reply_code_(reply_code) {}

RpcClient::~RpcClient() { DropAll(); }

void RpcClient::DropAll() {
  sim::Simulator* sim = host_->network()->simulator();
  // lint:allow(det-unordered-iter): cancel + count only; no callbacks run
  // and no messages are sent, so order cannot reach the trace.
  for (auto& [id, pc] : pending_) {
    sim->Cancel(pc.deadline_event);
    counters_.cancelled += 1;
    g_callbacks_alive.fetch_sub(1);
    g_calls_resolved.fetch_add(1);
  }
  pending_.clear();
}

uint64_t RpcClient::Call(NodeId to, uint16_t code, std::string body, Callback cb,
                         sim::SimTime timeout_us) {
  uint64_t req_id = next_req_id_++;
  Writer w(body.size() + 12);
  w.PutU64(req_id);
  w.PutRaw(body.data(), body.size());

  sim::Simulator* sim = host_->network()->simulator();
  PendingCall pc;
  pc.to = to;
  pc.cb = std::move(cb);
  pc.deadline_event = sim->ScheduleAfter(timeout_us, [this, req_id]() {
    Resolve(req_id, Resolution::kTimeout, Status::TimedOut("rpc deadline exceeded"),
            {});
  });
  pending_.emplace(req_id, std::move(pc));
  counters_.started += 1;
  g_calls_started.fetch_add(1);
  g_callbacks_alive.fetch_add(1);

  host_->SendTo(to, service_, code, w.Release());
  return req_id;
}

void RpcClient::CallAll(const std::vector<NodeId>& targets, uint16_t code,
                        const std::string& body, std::function<void(Status)> cb,
                        sim::SimTime timeout_us) {
  if (targets.empty()) {
    cb(Status::OK());
    return;
  }
  struct FanOut {
    size_t remaining;
    Status first_error;
    std::function<void(Status)> cb;
  };
  auto state = std::make_shared<FanOut>();
  state->remaining = targets.size();
  state->cb = std::move(cb);
  for (NodeId t : targets) {
    Call(t, code, body,
         [state](Status st, const std::string&) {
           if (!st.ok() && state->first_error.ok()) state->first_error = st;
           if (--state->remaining == 0) state->cb(state->first_error);
         },
         timeout_us);
  }
}

void RpcClient::CallFirst(std::vector<NodeId> targets, uint16_t code,
                          std::string body, Callback cb, sim::SimTime timeout_us) {
  if (targets.empty()) {
    cb(Status::Unavailable("rpc: no replicas to call"), {});
    return;
  }
  NodeId first = targets.front();
  targets.erase(targets.begin());
  if (targets.empty()) {
    // Final attempt: its outcome — success or the last error — goes straight
    // to the caller, so no retry state (or body copy) needs to be retained.
    Call(first, code, std::move(body), std::move(cb), timeout_us);
    return;
  }
  // The attempt's callback owns the remaining targets and the body by value;
  // on failure it re-enters CallFirst with one fewer target. Unlike a
  // self-capturing shared function, nothing here references itself, so the
  // whole chain is released as soon as one attempt succeeds or the last one
  // fails.
  std::string wire_body = body;
  Call(
      first, code, std::move(wire_body),
      [this, targets = std::move(targets), code, body = std::move(body),
       cb = std::move(cb), timeout_us](Status st, const std::string& reply) mutable {
        if (st.ok() || targets.empty()) {
          cb(st, reply);
          return;
        }
        CallFirst(std::move(targets), code, std::move(body), std::move(cb),
                  timeout_us);
      },
      timeout_us);
}

void RpcClient::FailPeer(NodeId peer) {
  std::vector<uint64_t> orphans;
  // lint:allow(det-unordered-iter): collect-only; resolution order is fixed
  // by the sort below, not by table order.
  for (const auto& [id, pc] : pending_) {
    if (pc.to == peer) orphans.push_back(id);
  }
  // Reap in issue order (req-ids are monotonic): orphan callbacks can send
  // messages, so their firing order feeds the trace and must not be a hash
  // artifact.
  std::sort(orphans.begin(), orphans.end());
  for (uint64_t id : orphans) {
    Resolve(id, Resolution::kReap, Status::Unavailable("peer failed"), {});
  }
}

void RpcClient::CancelAll(Status st) {
  while (!pending_.empty()) {
    Resolve(pending_.begin()->first, Resolution::kCancel, st, {});
  }
}

bool RpcClient::HandleReply(const std::string& payload) {
  Reader r(payload);
  uint64_t req_id;
  uint8_t st_code;
  std::string st_msg;
  uint32_t load_hint;
  if (!r.GetU64(&req_id).ok() || !r.GetU8(&st_code).ok() ||
      !r.GetString(&st_msg).ok() || !r.GetVarint32(&load_hint).ok()) {
    return false;
  }
  auto it = pending_.find(req_id);
  if (it == pending_.end()) return false;  // raced, resolved
  // Surface the responder's load hint before the call's callback runs, so a
  // caller that reacts to its own completion already sees fresh load state.
  if (load_hint_handler_) load_hint_handler_(it->second.to, load_hint);
  std::string body(payload.substr(r.position()));
  Resolve(req_id, Resolution::kReply, MakeStatus(st_code, st_msg), body);
  return true;
}

void RpcClient::Resolve(uint64_t req_id, Resolution how, Status st,
                        const std::string& body) {
  auto it = pending_.find(req_id);
  if (it == pending_.end()) return;
  Callback cb = std::move(it->second.cb);
  if (how != Resolution::kTimeout) {
    host_->network()->simulator()->Cancel(it->second.deadline_event);
  }
  pending_.erase(it);
  switch (how) {
    case Resolution::kReply: counters_.completed += 1; break;
    case Resolution::kTimeout: counters_.timed_out += 1; break;
    case Resolution::kReap: counters_.reaped += 1; break;
    case Resolution::kCancel: counters_.cancelled += 1; break;
  }
  g_callbacks_alive.fetch_sub(1);
  g_calls_resolved.fetch_add(1);
  cb(st, body);
}

void RpcClient::SendReply(NodeHost* host, NodeId to, ServiceId service,
                          uint16_t reply_code, uint64_t req_id, const Status& st,
                          std::string body, uint32_t load_hint) {
  Writer w(body.size() + 20);
  w.PutU64(req_id);
  w.PutU8(static_cast<uint8_t>(st.code()));
  w.PutString(st.message());
  w.PutVarint32(load_hint);
  w.PutRaw(body.data(), body.size());
  host->SendTo(to, service, reply_code, w.Release());
}

}  // namespace orchestra::net
