#include "net/network.h"

#include <algorithm>

#include "common/log.h"

namespace orchestra::net {

Network::Network(sim::Simulator* simulator, LinkParams default_link,
                 const sim::CostModel* cost_model)
    : sim_(simulator), costs_(cost_model), default_link_(default_link) {}

NodeId Network::AddNode(const std::string& name, double cpu_speed) {
  NodeState state;
  state.name = name;
  state.cpu_speed = cpu_speed;
  nodes_.push_back(std::move(state));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::SetHandler(NodeId node, MessageHandler* handler) {
  nodes_[node].handler = handler;
}

void Network::SetLinkParams(NodeId from, NodeId to, LinkParams params) {
  link_overrides_[{from, to}] = params;
}

void Network::SetAllLinkParams(LinkParams params) {
  default_link_ = params;
  link_overrides_.clear();
}

LinkParams Network::GetLinkParams(NodeId from, NodeId to) const {
  auto it = link_overrides_.find({from, to});
  if (it != link_overrides_.end()) return it->second;
  return default_link_;
}

void Network::Send(NodeId from, NodeId to, uint32_t type, std::string payload) {
  ORC_CHECK(from < nodes_.size() && to < nodes_.size(), "bad node id");
  NodeState& sender = nodes_[from];
  if (!sender.alive) return;  // a dead node sends nothing

  // If called from inside this node's handler, the message departs at the
  // handler's current charged time; otherwise at the simulator's now.
  sim::SimTime initiate = std::max(sim_->now(), sender.cpu_free);

  Delivery d;
  d.from = from;
  d.type = type;
  d.payload = std::move(payload);

  if (from == to) {
    // Local loopback: no network resource usage (co-location is free).
    EnqueueDelivery(to, std::move(d), initiate);
    return;
  }

  uint64_t bytes = d.payload.size() + kMessageOverheadBytes;
  sender.traffic.bytes_sent += bytes;
  sender.traffic.messages_sent += 1;
  total_bytes_ += bytes;
  total_messages_ += 1;

  LinkParams lp = GetLinkParams(from, to);
  double tx_us = static_cast<double>(bytes) / lp.bandwidth_bytes_per_sec * 1e6;

  // Uplink serialization at the sender ...
  sim::SimTime tx_start = std::max(initiate, sender.uplink_free);
  sim::SimTime tx_done = tx_start + static_cast<sim::SimTime>(tx_us);
  sender.uplink_free = tx_done;
  // Fault injection: the seeded stream decides this message's fate. A drop
  // loses the message downstream of the sender's NIC (uplink time already
  // spent, nothing reaches the receiver); a delay stretches propagation.
  // Directional overrides take precedence over the global drop rate, so an
  // asymmetric partition (A -> B lossy, B -> A clean) is expressible.
  sim::SimTime extra_delay = 0;
  double drop_prob = fault_opts_.drop_prob;
  if (!drop_overrides_.empty()) {
    auto ov = drop_overrides_.find({from, to});
    if (ov != drop_overrides_.end()) drop_prob = ov->second;
  }
  if (drop_prob > 0 && fault_rng_.NextDouble() < drop_prob) {
    fault_counters_.dropped += 1;
    return;
  }
  if (fault_opts_.delay_prob > 0 &&
      fault_rng_.NextDouble() < fault_opts_.delay_prob) {
    extra_delay = 1 + static_cast<sim::SimTime>(
                          fault_rng_.Uniform(static_cast<uint64_t>(
                              std::max<sim::SimTime>(fault_opts_.max_extra_delay_us, 1))));
    fault_counters_.delayed += 1;
  }
  // ... propagation ...
  sim::SimTime arrival = tx_done + lp.latency_us + extra_delay;
  // ... downlink serialization at the receiver. This is what makes a query
  // initiator collecting results from 15 peers a genuine bottleneck (§VI-B).
  NodeState& receiver = nodes_[to];
  sim::SimTime rx_start = std::max(arrival, receiver.downlink_free);
  sim::SimTime rx_done = rx_start + static_cast<sim::SimTime>(tx_us);
  receiver.downlink_free = rx_done;
  receiver.last_arrival_from[from] = rx_done;

  EnqueueDelivery(to, std::move(d), rx_done);
}

void Network::EnqueueDelivery(NodeId to, Delivery d, sim::SimTime at) {
  sim_->Schedule(at, [this, to, d = std::move(d)]() mutable {
    NodeState& node = nodes_[to];
    if (!node.alive) return;  // bytes hit a dead NIC
    if (!d.task && !d.is_drop_notice && d.from != to) {
      uint64_t bytes = d.payload.size() + kMessageOverheadBytes;
      node.traffic.bytes_received += bytes;
      node.traffic.messages_received += 1;
    }
    InboxPush(node, d);
    node.inbox.push_back(std::move(d));
    if (!node.hung) ScheduleDrain(to, std::max(sim_->now(), node.cpu_free));
  });
}

void Network::InboxPush(NodeState& node, const Delivery& d) {
  InboxStats& s = node.inbox_stats;
  s.messages += 1;
  s.bytes += d.payload.size();
  s.max_messages = std::max(s.max_messages, s.messages);
  s.max_bytes = std::max(s.max_bytes, s.bytes);
}

void Network::InboxPop(NodeState& node, const Delivery& d) {
  InboxStats& s = node.inbox_stats;
  s.messages -= 1;
  s.bytes -= d.payload.size();
}

void Network::InboxClear(NodeState& node) {
  node.inbox_stats.messages = 0;
  node.inbox_stats.bytes = 0;
  node.inbox.clear();
}

void Network::ScheduleDrain(NodeId node, sim::SimTime at) {
  NodeState& state = nodes_[node];
  if (state.drain_scheduled) return;
  state.drain_scheduled = true;
  sim_->Schedule(at, [this, node]() { DrainOne(node); });
}

void Network::DrainOne(NodeId node) {
  NodeState& state = nodes_[node];
  state.drain_scheduled = false;
  if (!state.alive || state.hung || state.inbox.empty()) return;

  Delivery d = std::move(state.inbox.front());
  state.inbox.pop_front();
  InboxPop(state, d);

  state.cpu_free = std::max(state.cpu_free, sim_->now());
  NodeId prev_draining = draining_node_;
  draining_node_ = node;

  if (d.task) {
    d.task();
  } else if (d.is_drop_notice) {
    if (state.handler) state.handler->OnConnectionDrop(d.from);
  } else {
    ChargeCpu(node, costs_->msg_fixed_us);
    if (state.handler) state.handler->OnMessage(d.from, d.type, d.payload);
  }

  draining_node_ = prev_draining;
  if (state.alive && !state.hung && !state.inbox.empty()) {
    ScheduleDrain(node, std::max(sim_->now(), state.cpu_free));
  }
}

void Network::KillNode(NodeId node) {
  NodeState& state = nodes_[node];
  if (!state.alive) return;
  state.alive = false;
  InboxClear(state);
  // TCP reset propagates to every peer holding a connection; with complete
  // routing tables (§III-B) that is every other node. In-order delivery is
  // per-connection: the reset cannot overtake data the dead node already
  // sent to that peer (so a handler never sees a message from a peer it has
  // observed as dropped), but it is NOT delayed by unrelated traffic the
  // peer is ingesting from other nodes.
  for (NodeId peer = 0; peer < nodes_.size(); ++peer) {
    if (peer == node || !nodes_[peer].alive) continue;
    Delivery d;
    d.from = node;
    d.is_drop_notice = true;
    sim::SimTime at = sim_->now() + GetLinkParams(node, peer).latency_us;
    auto last = nodes_[peer].last_arrival_from.find(node);
    if (last != nodes_[peer].last_arrival_from.end()) {
      at = std::max(at, last->second);
    }
    EnqueueDelivery(peer, std::move(d), at);
  }
}

void Network::HangNode(NodeId node) { nodes_[node].hung = true; }

void Network::UnhangNode(NodeId node) {
  NodeState& state = nodes_[node];
  if (!state.alive || !state.hung) return;
  state.hung = false;
  // The machine was alive the whole time: its queued backlog survives and
  // drains now, oldest first (peers' RPCs to it may long since have timed
  // out; their reply handling tolerates late responses).
  state.cpu_free = std::max(state.cpu_free, sim_->now());
  if (!state.inbox.empty()) {
    ScheduleDrain(node, std::max(sim_->now(), state.cpu_free));
  }
}

void Network::ReviveNode(NodeId node) {
  NodeState& state = nodes_[node];
  if (state.alive) return;
  state.alive = true;
  state.hung = false;
  InboxClear(state);
  // The machine boots "now": its clocks cannot owe time from before death.
  sim::SimTime now = sim_->now();
  state.cpu_free = std::max(state.cpu_free, now);
  state.uplink_free = std::max(state.uplink_free, now);
  state.downlink_free = std::max(state.downlink_free, now);
}

void Network::ChargeCpu(NodeId node, double micros) {
  NodeState& state = nodes_[node];
  double scaled = micros / state.cpu_speed;
  state.cpu_free = std::max(state.cpu_free, sim_->now()) +
                   static_cast<sim::SimTime>(scaled);
}

void Network::RunOnNode(NodeId node, sim::SimTime at, std::function<void()> fn) {
  Delivery d;
  d.from = node;
  d.task = std::move(fn);
  EnqueueDelivery(node, std::move(d), at);
}

void Network::ResetTraffic() {
  total_bytes_ = 0;
  total_messages_ = 0;
  for (auto& n : nodes_) {
    n.traffic = NodeTraffic{};
    n.inbox_stats.max_messages = n.inbox_stats.messages;
    n.inbox_stats.max_bytes = n.inbox_stats.bytes;
  }
}

uint64_t Network::MaxInboxMessages() const {
  uint64_t m = 0;
  for (const auto& n : nodes_) m = std::max(m, n.inbox_stats.max_messages);
  return m;
}

double Network::AvgPerNodeTraffic() const {
  if (nodes_.empty()) return 0;
  return static_cast<double>(total_bytes_) / static_cast<double>(nodes_.size());
}

}  // namespace orchestra::net
