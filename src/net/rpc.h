// RPC lifecycle layer: explicit ownership for every async request/reply
// exchange in the system.
//
// Every service that issues calls owns an RpcClient. A call's completion
// callback lives in the client's pending-call table from Call() until exactly
// one of the following, after which the entry — and everything the callback
// captured — is released:
//   * a reply arrives            -> cb(decoded status, body)
//   * the per-call deadline hits -> cb(Status::TimedOut)
//   * the destination node is reported failed (orphan reaping)
//                                -> cb(Status::Unavailable)
//   * CancelAll() / destruction  -> cb(Status::Aborted) / silently dropped
//
// A callback can never fire twice and can never outlive its call: Complete()
// moves it out of the table and erases the entry before invoking it, and the
// deadline timer is cancelled (and its closure freed) the moment the call
// resolves. RpcStats counts callbacks currently retained by any table — the
// leak-regression tests assert it returns to zero.
#ifndef ORCHESTRA_NET_RPC_H_
#define ORCHESTRA_NET_RPC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/node_host.h"

namespace orchestra::net {

/// Default per-call deadline; matches the paper's conservative end-to-end
/// failure-detection bound (§V-C).
constexpr sim::SimTime kDefaultRpcTimeoutUs = 60 * sim::kMicrosPerSec;

/// Process-wide lifecycle accounting, used by leak-regression tests.
struct RpcStats {
  /// Completion callbacks currently held in any RpcClient's pending table.
  static int64_t callbacks_alive();
  /// Calls started / resolved since process start (resolved counts replies,
  /// timeouts, reaped orphans, and cancellations).
  static uint64_t calls_started();
  static uint64_t calls_resolved();
};

class RpcClient {
 public:
  using Callback = std::function<void(Status, const std::string& body)>;

  struct Counters {
    uint64_t started = 0;
    uint64_t completed = 0;   // reply arrived
    uint64_t timed_out = 0;   // per-call deadline fired
    uint64_t reaped = 0;      // destination reported failed
    uint64_t cancelled = 0;   // CancelAll / destruction
  };

  /// Calls are sent as (service, code) with a req-id header; replies are
  /// expected on (service, reply_code).
  RpcClient(NodeHost* host, ServiceId service, uint16_t reply_code);
  /// Drops (without invoking) every outstanding callback: at teardown the
  /// surrounding services are being destroyed and must not be re-entered.
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Sends a request; `cb` resolves exactly once (see file comment).
  /// Returns the request id.
  uint64_t Call(NodeId to, uint16_t code, std::string body, Callback cb,
                sim::SimTime timeout_us = kDefaultRpcTimeoutUs);

  /// Fan-out: sends to every target; cb(OK) when all succeed, else the first
  /// error once all have resolved.
  void CallAll(const std::vector<NodeId>& targets, uint16_t code,
               const std::string& body, std::function<void(Status)> cb,
               sim::SimTime timeout_us = kDefaultRpcTimeoutUs);

  /// Sequential replica failover: tries targets in order; the first OK reply
  /// wins. Any per-target error (timeout, drop, NotFound...) moves on to the
  /// next target. When all targets have failed, cb receives the last error
  /// (Unavailable if the target list was empty). No self-referential
  /// closures: each attempt's callback owns the remaining state by value.
  void CallFirst(std::vector<NodeId> targets, uint16_t code, std::string body,
                 Callback cb, sim::SimTime timeout_us = kDefaultRpcTimeoutUs);

  /// Orphan reaping: resolves every pending call addressed to `peer` with
  /// Status::Unavailable. Invoked from OnConnectionDrop and when the
  /// membership layer marks a node failed.
  void FailPeer(NodeId peer);

  /// Resolves every pending call with `st` (callbacks are invoked).
  void CancelAll(Status st);

  /// Releases every pending call WITHOUT invoking its callback — for
  /// fail-stop death of the owning node (nothing may execute there anymore)
  /// and for teardown. Counted under Counters::cancelled.
  void DropAll();

  /// Feeds a reply payload received on (service, reply_code); returns false
  /// if it was malformed or raced with a timeout/reap (already resolved).
  bool HandleReply(const std::string& payload);

  /// Admission control: every reply envelope carries the responder's load
  /// hint (its inbox depth measure). The handler — if set — observes
  /// (responder, hint) for each reply before the call's own callback runs,
  /// letting the owning service keep a per-peer load view without touching
  /// individual call sites.
  void SetLoadHintHandler(std::function<void(NodeId, uint32_t)> handler) {
    load_hint_handler_ = std::move(handler);
  }

  size_t pending_count() const { return pending_.size(); }
  const Counters& counters() const { return counters_; }

  /// Encodes req-id + status + load hint + body and sends it as
  /// (service, reply_code) from `host`'s node to `to` — the server half of
  /// the envelope. `load_hint` is the responder's current load measure
  /// (0 = unloaded); clients surface it through SetLoadHintHandler.
  static void SendReply(NodeHost* host, NodeId to, ServiceId service,
                        uint16_t reply_code, uint64_t req_id, const Status& st,
                        std::string body, uint32_t load_hint = 0);

 private:
  struct PendingCall {
    NodeId to = kInvalidNode;
    Callback cb;
    sim::Simulator::EventId deadline_event = 0;  // enforces the deadline
  };

  enum class Resolution { kReply, kTimeout, kReap, kCancel };

  /// Erases the entry (releasing captured state) and then invokes the
  /// callback; no-op if the call already resolved.
  void Resolve(uint64_t req_id, Resolution how, Status st, const std::string& body);

  NodeHost* host_;
  ServiceId service_;
  uint16_t reply_code_;
  uint64_t next_req_id_ = 1;
  std::unordered_map<uint64_t, PendingCall> pending_;
  std::function<void(NodeId, uint32_t)> load_hint_handler_;
  Counters counters_;
};

}  // namespace orchestra::net

#endif  // ORCHESTRA_NET_RPC_H_
