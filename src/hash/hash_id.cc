#include "hash/hash_id.h"

#include <cstdio>

#include "common/serial.h"

namespace orchestra {

HashId HashId::FromDigest(const Sha1Digest& d) {
  HashId id;
  // Digest bytes are big-endian; w_[4] is the most significant limb.
  for (int limb = 0; limb < 5; ++limb) {
    int base = (4 - limb) * 4;
    id.w_[limb] = (static_cast<uint32_t>(d[base]) << 24) |
                  (static_cast<uint32_t>(d[base + 1]) << 16) |
                  (static_cast<uint32_t>(d[base + 2]) << 8) |
                  static_cast<uint32_t>(d[base + 3]);
  }
  return id;
}

HashId HashId::OfBytes(std::string_view data) { return FromDigest(Sha1(data)); }

HashId HashId::FromBigEndianBytes(std::string_view bytes20) {
  Sha1Digest d{};
  for (size_t i = 0; i < 20 && i < bytes20.size(); ++i) {
    d[i] = static_cast<uint8_t>(bytes20[i]);
  }
  return FromDigest(d);
}

HashId HashId::Max() {
  HashId id;
  id.w_.fill(0xFFFFFFFFu);
  return id;
}

HashId HashId::FromU64(uint64_t v) {
  HashId id;
  id.w_[0] = static_cast<uint32_t>(v);
  id.w_[1] = static_cast<uint32_t>(v >> 32);
  return id;
}

std::strong_ordering HashId::operator<=>(const HashId& o) const {
  for (int i = 4; i >= 0; --i) {
    if (w_[i] != o.w_[i]) return w_[i] <=> o.w_[i];
  }
  return std::strong_ordering::equal;
}

HashId HashId::Add(const HashId& o) const {
  HashId out;
  uint64_t carry = 0;
  for (int i = 0; i < 5; ++i) {
    uint64_t sum = static_cast<uint64_t>(w_[i]) + o.w_[i] + carry;
    out.w_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  return out;  // carry out of limb 4 wraps mod 2^160
}

HashId HashId::Sub(const HashId& o) const {
  HashId out;
  int64_t borrow = 0;
  for (int i = 0; i < 5; ++i) {
    int64_t diff = static_cast<int64_t>(w_[i]) - o.w_[i] - borrow;
    if (diff < 0) {
      diff += (1ll << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.w_[i] = static_cast<uint32_t>(diff);
  }
  return out;
}

HashId HashId::DivideBy(uint32_t n) const {
  HashId out;
  uint64_t rem = 0;
  for (int i = 4; i >= 0; --i) {
    uint64_t cur = (rem << 32) | w_[i];
    out.w_[i] = static_cast<uint32_t>(cur / n);
    rem = cur % n;
  }
  return out;
}

HashId HashId::MultiplyBy(uint32_t k) const {
  HashId out;
  uint64_t carry = 0;
  for (int i = 0; i < 5; ++i) {
    uint64_t prod = static_cast<uint64_t>(w_[i]) * k + carry;
    out.w_[i] = static_cast<uint32_t>(prod);
    carry = prod >> 32;
  }
  return out;
}

HashId HashId::ClockwiseMidpoint(const HashId& end) const {
  return Add(end.Sub(*this).DivideBy(2));
}

HashId HashId::SpacePartition(uint32_t n) {
  // floor(2^160 / n) by long division of [1,0,0,0,0,0] (limb 5 = 1).
  HashId out;
  uint64_t rem = 1;  // the leading limb of value 2^160
  for (int i = 4; i >= 0; --i) {
    uint64_t cur = (rem << 32);  // next limb of the dividend is 0
    out.w_[i] = static_cast<uint32_t>(cur / n);
    rem = cur % n;
  }
  return out;
}

bool HashId::InRange(const HashId& begin, const HashId& end) const {
  if (begin == end) return true;  // whole ring
  if (begin < end) return begin <= *this && *this < end;
  // Wrapping range.
  return *this >= begin || *this < end;
}

std::string HashId::ToHex() const {
  char buf[41];
  for (int limb = 4, pos = 0; limb >= 0; --limb, pos += 8) {
    std::snprintf(buf + pos, 9, "%08x", w_[limb]);
  }
  return std::string(buf, 40);
}

std::string HashId::ToShortHex() const { return ToHex().substr(0, 8); }

void HashId::AppendBigEndian(std::string* out) const {
  for (int limb = 4; limb >= 0; --limb) {
    for (int b = 3; b >= 0; --b) {
      out->push_back(static_cast<char>(w_[limb] >> (8 * b)));
    }
  }
}

void HashId::EncodeTo(Writer* w) const {
  for (uint32_t limb : w_) w->PutU32(limb);
}

Status HashId::DecodeFrom(Reader* r, HashId* out) {
  for (auto& limb : out->w_) ORC_RETURN_IF_ERROR(r->GetU32(&limb));
  return Status::OK();
}

size_t HashId::StdHash() const {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (uint32_t limb : w_) {
    h ^= limb;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 29;
  }
  return static_cast<size_t>(h);
}

uint64_t HashId::Top64() const {
  return (static_cast<uint64_t>(w_[4]) << 32) | w_[3];
}

}  // namespace orchestra
