// HashId: a 160-bit unsigned integer on the substrate's key ring (§III-A).
// Values start at 0, increase clockwise, and wrap at 2^160-1. Supports the
// ring arithmetic the overlay needs: modular add/sub, clockwise distance,
// midpoints, and exact division of the full space into n equal ranges.
#ifndef ORCHESTRA_HASH_HASH_ID_H_
#define ORCHESTRA_HASH_HASH_ID_H_

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "hash/sha1.h"

namespace orchestra {

class Writer;
class Reader;
class Status;

/// 160-bit unsigned integer; limbs stored little-endian (w[0] = least
/// significant 32 bits) so carries run forward.
class HashId {
 public:
  HashId() : w_{} {}

  /// From a SHA-1 digest (big-endian byte order, per convention).
  static HashId FromDigest(const Sha1Digest& d);
  /// From 20 big-endian bytes (inverse of AppendBigEndian).
  static HashId FromBigEndianBytes(std::string_view bytes20);
  /// SHA-1 of arbitrary bytes.
  static HashId OfBytes(std::string_view data);
  /// Smallest value (0).
  static HashId Zero() { return HashId(); }
  /// Largest value (2^160 - 1).
  static HashId Max();
  /// From a small integer (for tests).
  static HashId FromU64(uint64_t v);

  /// Total order as unsigned integers (NOT ring distance).
  std::strong_ordering operator<=>(const HashId& o) const;
  bool operator==(const HashId& o) const = default;

  /// (this + o) mod 2^160.
  HashId Add(const HashId& o) const;
  /// (this - o) mod 2^160.
  HashId Sub(const HashId& o) const;
  /// Clockwise distance from `from` to this: (this - from) mod 2^160.
  HashId DistanceFrom(const HashId& from) const { return Sub(from); }
  /// this / n (truncating). Precondition: n > 0.
  HashId DivideBy(uint32_t n) const;
  /// this * k mod 2^160.
  HashId MultiplyBy(uint32_t k) const;
  /// Midpoint of the clockwise range [this, end): this + (end - this)/2.
  HashId ClockwiseMidpoint(const HashId& end) const;
  /// Size of one of n equal partitions of the whole space: floor(2^160 / n).
  static HashId SpacePartition(uint32_t n);

  /// True iff this lies in the clockwise half-open range [begin, end).
  /// An empty ring range (begin == end) is interpreted as the FULL ring,
  /// matching the single-node case where one node owns everything.
  bool InRange(const HashId& begin, const HashId& end) const;

  /// Hex, most significant first, e.g. "00ab...". 40 chars.
  std::string ToHex() const;
  /// Appends the 20 bytes big-endian (memcmp order == numeric order); used
  /// for ordered localstore keys.
  void AppendBigEndian(std::string* out) const;
  /// First 8 hex chars, for logs.
  std::string ToShortHex() const;

  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, HashId* out);

  /// Stable hash for unordered containers.
  size_t StdHash() const;

  /// Top 64 bits (for approximate math / pretty printing).
  uint64_t Top64() const;

 private:
  std::array<uint32_t, 5> w_;
};

struct HashIdHash {
  size_t operator()(const HashId& h) const { return h.StdHash(); }
};

}  // namespace orchestra

#endif  // ORCHESTRA_HASH_HASH_ID_H_
