#include "hash/sha1.h"

#include <cstring>

namespace orchestra {

namespace {
inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }
}  // namespace

Sha1Hasher::Sha1Hasher() {
  h_[0] = 0x67452301;
  h_[1] = 0xEFCDAB89;
  h_[2] = 0x98BADCFE;
  h_[3] = 0x10325476;
  h_[4] = 0xC3D2E1F0;
}

void Sha1Hasher::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    uint32_t tmp = Rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1Hasher::Update(std::string_view data) { Update(data.data(), data.size()); }

void Sha1Hasher::Update(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_len_ += n;
  if (buffer_len_ > 0) {
    size_t take = std::min(n, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (n >= 64) {
    ProcessBlock(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffer_len_ = n;
  }
}

Sha1Digest Sha1Hasher::Finish() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffer_len_ != 56) Update(&zero, 1);
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  Update(len_bytes, 8);

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<uint8_t>(h_[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(h_[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(h_[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(h_[i]);
  }
  return digest;
}

Sha1Digest Sha1(std::string_view data) {
  Sha1Hasher hasher;
  hasher.Update(data);
  return hasher.Finish();
}

}  // namespace orchestra
