// SHA-1 (FIPS 180-1), implemented from the specification. The substrate keys
// all data placement off SHA-1 per §III-A; cryptographic strength is not the
// point — matching the paper's 160-bit uniformly distributed key space is.
#ifndef ORCHESTRA_HASH_SHA1_H_
#define ORCHESTRA_HASH_SHA1_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace orchestra {

/// 20-byte SHA-1 digest.
using Sha1Digest = std::array<uint8_t, 20>;

/// One-shot SHA-1 of `data`.
Sha1Digest Sha1(std::string_view data);

/// Incremental SHA-1 for hashing composite keys without concatenation copies.
class Sha1Hasher {
 public:
  Sha1Hasher();
  void Update(std::string_view data);
  void Update(const void* data, size_t n);
  Sha1Digest Finish();

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[5];
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

}  // namespace orchestra

#endif  // ORCHESTRA_HASH_SHA1_H_
