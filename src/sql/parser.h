// Single-block SQL front end (§VI: the optimizer "currently handles
// single-block SQL queries, including function evaluation and grouping").
// Supports exactly the shapes the paper's workloads need:
//
//   SELECT expr [AS name], ... | aggregates (SUM/MIN/MAX/COUNT/AVG)
//   FROM rel [alias], ...
//   [WHERE conjunct AND conjunct ...]
//   [GROUP BY col, ...]
//   [ORDER BY name|position [ASC|DESC], ...]
//   [LIMIT n]
//
// plus CONCAT(...), arithmetic, comparisons, DATE 'YYYY-MM-DD' literals
// (bound to INT64 day numbers) and INTERVAL 'n' DAY.
#ifndef ORCHESTRA_SQL_PARSER_H_
#define ORCHESTRA_SQL_PARSER_H_

#include <string>

#include "optimizer/logical.h"

namespace orchestra::sql {

/// Parses `text` and binds names against `catalog`.
Result<optimizer::AnalyzedQuery> ParseAndAnalyze(const std::string& text,
                                                 const optimizer::CatalogView& catalog);

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
int64_t DateToDays(int year, int month, int day);
/// Parses 'YYYY-MM-DD'.
Result<int64_t> ParseDate(const std::string& iso);

}  // namespace orchestra::sql

#endif  // ORCHESTRA_SQL_PARSER_H_
