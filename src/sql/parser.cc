#include "sql/parser.h"

#include <algorithm>
#include <cctype>
#include <optional>

#include "common/log.h"

namespace orchestra::sql {

using optimizer::AnalyzedQuery;
using optimizer::SelectItem;
using optimizer::TableRef;
using query::AggFn;
using query::Expr;
using storage::Value;

int64_t DateToDays(int y, int m, int d) {
  // Howard Hinnant's days_from_civil.
  y -= m <= 2;
  int64_t era = (y >= 0 ? y : y - 399) / 400;
  unsigned yoe = static_cast<unsigned>(y - era * 400);
  unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

Result<int64_t> ParseDate(const std::string& iso) {
  int y, m, d;
  if (std::sscanf(iso.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    return Status::InvalidArgument("bad date literal: " + iso);
  }
  return DateToDays(y, m, d);
}

namespace {

// ---------------------------------------------------------------------------
// Lexer

enum class Tok : uint8_t {
  kEnd,
  kIdent,
  kInt,
  kFloat,
  kString,
  kSymbol,  // one of ( ) , . * + - / ; and comparison glyphs in text
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;   // identifier (upper-cased keyword check uses upper)
  std::string upper;  // uppercase of text
  int64_t int_val = 0;
  double float_val = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : in_(input) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    while (i < in_.size()) {
      char c = in_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < in_.size() &&
               (std::isalnum(static_cast<unsigned char>(in_[j])) || in_[j] == '_')) {
          ++j;
        }
        Token t;
        t.kind = Tok::kIdent;
        t.text = in_.substr(i, j - i);
        t.upper = Upper(t.text);
        out->push_back(std::move(t));
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && i + 1 < in_.size() &&
           std::isdigit(static_cast<unsigned char>(in_[i + 1])))) {
        size_t j = i;
        bool is_float = false;
        while (j < in_.size() && (std::isdigit(static_cast<unsigned char>(in_[j])) ||
                                  in_[j] == '.')) {
          if (in_[j] == '.') is_float = true;
          ++j;
        }
        Token t;
        std::string num = in_.substr(i, j - i);
        if (is_float) {
          t.kind = Tok::kFloat;
          t.float_val = std::stod(num);
        } else {
          t.kind = Tok::kInt;
          t.int_val = std::stoll(num);
        }
        out->push_back(std::move(t));
        i = j;
        continue;
      }
      if (c == '\'') {
        size_t j = i + 1;
        std::string s;
        while (j < in_.size() && in_[j] != '\'') s += in_[j++];
        if (j >= in_.size()) return Status::InvalidArgument("unterminated string");
        Token t;
        t.kind = Tok::kString;
        t.text = std::move(s);
        out->push_back(std::move(t));
        i = j + 1;
        continue;
      }
      // Multi-char comparison operators.
      std::string sym(1, c);
      if ((c == '<' || c == '>' || c == '!') && i + 1 < in_.size()) {
        char n = in_[i + 1];
        if (n == '=' || (c == '<' && n == '>')) {
          sym += n;
        }
      }
      static const std::string kAllowed = "()*,./+-<>=;";
      if (kAllowed.find(c) == std::string::npos) {
        return Status::InvalidArgument(std::string("unexpected character '") + c + "'");
      }
      Token t;
      t.kind = Tok::kSymbol;
      t.text = sym;
      t.upper = sym;
      out->push_back(std::move(t));
      i += sym.size();
    }
    out->push_back(Token{});  // kEnd
    return Status::OK();
  }

 private:
  static std::string Upper(const std::string& s) {
    std::string u = s;
    std::transform(u.begin(), u.end(), u.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return u;
  }
  const std::string& in_;
};

// ---------------------------------------------------------------------------
// AST

struct ExprAst {
  enum class Kind {
    kLiteral,
    kColRef,
    kBinary,  // op: + - * / < <= = <> >= > AND OR
    kNot,
    kFunc,  // MIN MAX SUM COUNT AVG CONCAT
    kStar,  // only inside COUNT(*)
  };
  Kind kind = Kind::kLiteral;
  Value literal;
  std::string table, column;  // colref
  std::string op;             // binary
  std::string func;
  std::vector<ExprAst> args;
};

struct ParsedItem {
  ExprAst expr;
  std::string alias;
};

struct ParsedQuery {
  std::vector<ParsedItem> items;
  std::vector<std::pair<std::string, std::string>> tables;  // (name, alias)
  std::optional<ExprAst> where;
  std::vector<ExprAst> group_by;  // colrefs
  struct Order {
    std::string name;  // or empty when positional
    int64_t position = -1;
    bool asc = true;
  };
  std::vector<Order> order_by;
  int64_t limit = -1;
};

// ---------------------------------------------------------------------------
// Parser (recursive descent)

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery q;
    ORC_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    while (true) {
      ParsedItem item;
      ORC_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("AS")) {
        if (Cur().kind != Tok::kIdent) return Err("expected alias after AS");
        item.alias = Cur().text;
        Advance();
      }
      q.items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    ORC_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      if (Cur().kind != Tok::kIdent) return Err("expected table name");
      std::string name = Cur().text;
      Advance();
      std::string alias = name;
      if (Cur().kind == Tok::kIdent && !IsKeyword(Cur().upper)) {
        alias = Cur().text;
        Advance();
      }
      q.tables.emplace_back(name, alias);
      if (!AcceptSymbol(",")) break;
    }
    if (AcceptKeyword("WHERE")) {
      ORC_ASSIGN_OR_RETURN(ExprAst w, ParseOr());
      q.where = std::move(w);
    }
    if (AcceptKeyword("GROUP")) {
      ORC_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        ORC_ASSIGN_OR_RETURN(ExprAst c, ParsePrimary());
        if (c.kind != ExprAst::Kind::kColRef) return Err("GROUP BY expects columns");
        q.group_by.push_back(std::move(c));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("ORDER")) {
      ORC_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        ParsedQuery::Order o;
        if (Cur().kind == Tok::kInt) {
          o.position = Cur().int_val;
          Advance();
        } else if (Cur().kind == Tok::kIdent) {
          o.name = Cur().text;
          Advance();
          if (AcceptSymbol(".")) {  // qualified: keep the column part
            if (Cur().kind != Tok::kIdent) return Err("bad ORDER BY column");
            o.name = Cur().text;
            Advance();
          }
        } else {
          return Err("bad ORDER BY item");
        }
        if (AcceptKeyword("DESC")) {
          o.asc = false;
        } else {
          AcceptKeyword("ASC");
        }
        q.order_by.push_back(std::move(o));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (Cur().kind != Tok::kInt) return Err("LIMIT expects an integer");
      q.limit = Cur().int_val;
      Advance();
    }
    AcceptSymbol(";");
    if (Cur().kind != Tok::kEnd) return Err("trailing input: '" + Cur().text + "'");
    return q;
  }

 private:
  static bool IsKeyword(const std::string& u) {
    static const char* kw[] = {"SELECT", "FROM",  "WHERE", "GROUP", "BY",
                               "ORDER",  "ASC",   "DESC",  "LIMIT", "AND",
                               "OR",     "NOT",   "AS",    "MIN",   "MAX",
                               "SUM",    "COUNT", "AVG",   "CONCAT", "DATE",
                               "INTERVAL", "DAY", "BETWEEN"};
    for (const char* k : kw) {
      if (u == k) return true;
    }
    return false;
  }

  const Token& Cur() const { return toks_[pos_]; }
  void Advance() { ++pos_; }
  bool AcceptSymbol(const std::string& s) {
    if (Cur().kind == Tok::kSymbol && Cur().text == s) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptKeyword(const std::string& u) {
    if (Cur().kind == Tok::kIdent && Cur().upper == u) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& u) {
    if (!AcceptKeyword(u)) {
      return Status::InvalidArgument("expected " + u + " near '" + Cur().text + "'");
    }
    return Status::OK();
  }
  Status Err(const std::string& msg) const { return Status::InvalidArgument(msg); }

  // expr := or
  Result<ExprAst> ParseExpr() { return ParseOr(); }

  Result<ExprAst> ParseOr() {
    ORC_ASSIGN_OR_RETURN(ExprAst lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      ORC_ASSIGN_OR_RETURN(ExprAst rhs, ParseAnd());
      ExprAst e;
      e.kind = ExprAst::Kind::kBinary;
      e.op = "OR";
      e.args = {std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprAst> ParseAnd() {
    ORC_ASSIGN_OR_RETURN(ExprAst lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      ORC_ASSIGN_OR_RETURN(ExprAst rhs, ParseNot());
      ExprAst e;
      e.kind = ExprAst::Kind::kBinary;
      e.op = "AND";
      e.args = {std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprAst> ParseNot() {
    if (AcceptKeyword("NOT")) {
      ORC_ASSIGN_OR_RETURN(ExprAst inner, ParseNot());
      ExprAst e;
      e.kind = ExprAst::Kind::kNot;
      e.args = {std::move(inner)};
      return e;
    }
    return ParseComparison();
  }

  Result<ExprAst> ParseComparison() {
    ORC_ASSIGN_OR_RETURN(ExprAst lhs, ParseAdditive());
    if (AcceptKeyword("BETWEEN")) {
      ORC_ASSIGN_OR_RETURN(ExprAst lo, ParseAdditive());
      ORC_RETURN_IF_ERROR(ExpectKeyword("AND"));
      ORC_ASSIGN_OR_RETURN(ExprAst hi, ParseAdditive());
      ExprAst ge;
      ge.kind = ExprAst::Kind::kBinary;
      ge.op = ">=";
      ge.args = {lhs, std::move(lo)};
      ExprAst le;
      le.kind = ExprAst::Kind::kBinary;
      le.op = "<=";
      le.args = {std::move(lhs), std::move(hi)};
      ExprAst both;
      both.kind = ExprAst::Kind::kBinary;
      both.op = "AND";
      both.args = {std::move(ge), std::move(le)};
      return both;
    }
    if (Cur().kind == Tok::kSymbol) {
      std::string op = Cur().text;
      if (op == "<" || op == "<=" || op == "=" || op == "<>" || op == ">=" ||
          op == ">" || op == "!=") {
        Advance();
        ORC_ASSIGN_OR_RETURN(ExprAst rhs, ParseAdditive());
        ExprAst e;
        e.kind = ExprAst::Kind::kBinary;
        e.op = (op == "!=") ? "<>" : op;
        e.args = {std::move(lhs), std::move(rhs)};
        return e;
      }
    }
    return lhs;
  }

  Result<ExprAst> ParseAdditive() {
    ORC_ASSIGN_OR_RETURN(ExprAst lhs, ParseMultiplicative());
    while (Cur().kind == Tok::kSymbol && (Cur().text == "+" || Cur().text == "-")) {
      std::string op = Cur().text;
      Advance();
      ORC_ASSIGN_OR_RETURN(ExprAst rhs, ParseMultiplicative());
      ExprAst e;
      e.kind = ExprAst::Kind::kBinary;
      e.op = op;
      e.args = {std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprAst> ParseMultiplicative() {
    ORC_ASSIGN_OR_RETURN(ExprAst lhs, ParsePrimary());
    while (Cur().kind == Tok::kSymbol && (Cur().text == "*" || Cur().text == "/")) {
      std::string op = Cur().text;
      Advance();
      ORC_ASSIGN_OR_RETURN(ExprAst rhs, ParsePrimary());
      ExprAst e;
      e.kind = ExprAst::Kind::kBinary;
      e.op = op;
      e.args = {std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprAst> ParsePrimary() {
    const Token& t = Cur();
    if (t.kind == Tok::kSymbol && t.text == "(") {
      Advance();
      ORC_ASSIGN_OR_RETURN(ExprAst inner, ParseOr());
      if (!AcceptSymbol(")")) return Err("expected )");
      return inner;
    }
    if (t.kind == Tok::kInt) {
      ExprAst e;
      e.literal = Value(t.int_val);
      Advance();
      return e;
    }
    if (t.kind == Tok::kFloat) {
      ExprAst e;
      e.literal = Value(t.float_val);
      Advance();
      return e;
    }
    if (t.kind == Tok::kString) {
      ExprAst e;
      e.literal = Value(t.text);
      Advance();
      return e;
    }
    if (t.kind == Tok::kSymbol && t.text == "*") {
      ExprAst e;
      e.kind = ExprAst::Kind::kStar;
      Advance();
      return e;
    }
    if (t.kind == Tok::kIdent) {
      std::string upper = t.upper;
      // DATE 'YYYY-MM-DD'
      if (upper == "DATE") {
        Advance();
        if (Cur().kind != Tok::kString) return Err("DATE expects a string literal");
        ORC_ASSIGN_OR_RETURN(int64_t days, ParseDate(Cur().text));
        Advance();
        ExprAst e;
        e.literal = Value(days);
        return e;
      }
      // INTERVAL 'n' DAY -> integer day count
      if (upper == "INTERVAL") {
        Advance();
        if (Cur().kind != Tok::kString) return Err("INTERVAL expects a string");
        int64_t n = std::stoll(Cur().text);
        Advance();
        if (!AcceptKeyword("DAY")) return Err("only DAY intervals are supported");
        ExprAst e;
        e.literal = Value(n);
        return e;
      }
      if (upper == "MIN" || upper == "MAX" || upper == "SUM" || upper == "COUNT" ||
          upper == "AVG" || upper == "CONCAT") {
        Advance();
        if (!AcceptSymbol("(")) return Err(upper + " expects (");
        ExprAst e;
        e.kind = ExprAst::Kind::kFunc;
        e.func = upper;
        if (!AcceptSymbol(")")) {
          while (true) {
            ORC_ASSIGN_OR_RETURN(ExprAst arg, ParseExpr());
            e.args.push_back(std::move(arg));
            if (!AcceptSymbol(",")) break;
          }
          if (!AcceptSymbol(")")) return Err("expected ) after " + upper);
        }
        return e;
      }
      // Column reference: ident or ident.ident
      ExprAst e;
      e.kind = ExprAst::Kind::kColRef;
      e.column = t.text;
      Advance();
      if (AcceptSymbol(".")) {
        if (Cur().kind != Tok::kIdent) return Err("expected column after .");
        e.table = e.column;
        e.column = Cur().text;
        Advance();
      }
      return e;
    }
    return Err("unexpected token '" + t.text + "'");
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Analyzer

class Analyzer {
 public:
  Analyzer(const optimizer::CatalogView& catalog) : catalog_(catalog) {}

  Result<AnalyzedQuery> Analyze(const ParsedQuery& parsed) {
    AnalyzedQuery out;
    uint32_t offset = 0;
    for (const auto& [name, alias] : parsed.tables) {
      ORC_ASSIGN_OR_RETURN(storage::RelationDef def, catalog_(name));
      TableRef ref;
      ref.relation = name;
      ref.alias = alias;
      ref.def = std::move(def);
      ref.first_column = offset;
      offset += static_cast<uint32_t>(ref.def.schema.arity());
      out.tables.push_back(std::move(ref));
    }

    if (parsed.where.has_value()) {
      ORC_RETURN_IF_ERROR(CollectConjuncts(*parsed.where, &out));
    }

    for (const ExprAst& g : parsed.group_by) {
      ORC_ASSIGN_OR_RETURN(int32_t col, ResolveColumn(g, out));
      out.group_cols.push_back(col);
    }
    out.has_group_by = !out.group_cols.empty();

    bool any_agg = false;
    for (const ParsedItem& item : parsed.items) {
      SelectItem si;
      si.name = item.alias;
      if (item.expr.kind == ExprAst::Kind::kFunc && item.expr.func != "CONCAT") {
        any_agg = true;
        si.is_aggregate = true;
        if (si.name.empty()) si.name = item.expr.func;
        if (item.expr.func == "COUNT" &&
            (item.expr.args.empty() ||
             item.expr.args[0].kind == ExprAst::Kind::kStar)) {
          si.agg_fn = AggFn::kCount;
          si.agg_has_arg = false;
        } else {
          if (item.expr.args.size() != 1) {
            return Status::InvalidArgument(item.expr.func + " expects one argument");
          }
          ORC_ASSIGN_OR_RETURN(si.expr, Bind(item.expr.args[0], out));
          si.agg_has_arg = true;
          if (item.expr.func == "SUM") si.agg_fn = AggFn::kSum;
          else if (item.expr.func == "MIN") si.agg_fn = AggFn::kMin;
          else if (item.expr.func == "MAX") si.agg_fn = AggFn::kMax;
          else if (item.expr.func == "COUNT") si.agg_fn = AggFn::kCount;
          else if (item.expr.func == "AVG") {
            si.agg_fn = AggFn::kSum;  // planner adds the COUNT + division
            si.is_avg = true;
          } else {
            return Status::InvalidArgument("unknown aggregate " + item.expr.func);
          }
        }
      } else {
        ORC_ASSIGN_OR_RETURN(si.expr, Bind(item.expr, out));
        if (si.name.empty()) {
          si.name = item.expr.kind == ExprAst::Kind::kColRef ? item.expr.column
                                                             : "expr";
        }
      }
      out.items.push_back(std::move(si));
    }

    if (any_agg || out.has_group_by) {
      // Every non-aggregate item must be a group column reference.
      for (const SelectItem& si : out.items) {
        if (si.is_aggregate) continue;
        if (si.expr.kind() != Expr::Kind::kColumn ||
            std::find(out.group_cols.begin(), out.group_cols.end(),
                      si.expr.column()) == out.group_cols.end()) {
          return Status::InvalidArgument(
              "non-aggregate select item must appear in GROUP BY: " + si.name);
        }
      }
    }

    for (const ParsedQuery::Order& o : parsed.order_by) {
      optimizer::OrderItem item;
      item.asc = o.asc;
      if (o.position > 0) {
        if (o.position > static_cast<int64_t>(out.items.size())) {
          return Status::InvalidArgument("ORDER BY position out of range");
        }
        item.select_index = static_cast<uint32_t>(o.position - 1);
      } else {
        bool found = false;
        for (size_t i = 0; i < out.items.size(); ++i) {
          if (out.items[i].name == o.name) {
            item.select_index = static_cast<uint32_t>(i);
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::InvalidArgument("ORDER BY refers to unknown item " + o.name);
        }
      }
      out.order_by.push_back(item);
    }
    out.limit = parsed.limit;
    return out;
  }

 private:
  Status CollectConjuncts(const ExprAst& ast, AnalyzedQuery* out) {
    if (ast.kind == ExprAst::Kind::kBinary && ast.op == "AND") {
      ORC_RETURN_IF_ERROR(CollectConjuncts(ast.args[0], out));
      ORC_RETURN_IF_ERROR(CollectConjuncts(ast.args[1], out));
      return Status::OK();
    }
    ORC_ASSIGN_OR_RETURN(Expr e, Bind(ast, *out));
    out->conjuncts.push_back(std::move(e));
    return Status::OK();
  }

  Result<int32_t> ResolveColumn(const ExprAst& ref, const AnalyzedQuery& q) {
    ORC_CHECK(ref.kind == ExprAst::Kind::kColRef, "not a column ref");
    int32_t found = -1;
    for (const TableRef& t : q.tables) {
      if (!ref.table.empty() && ref.table != t.alias && ref.table != t.relation) {
        continue;
      }
      auto idx = t.def.schema.Find(ref.column);
      if (idx.has_value()) {
        if (found >= 0) {
          return Status::InvalidArgument("ambiguous column " + ref.column);
        }
        found = static_cast<int32_t>(t.first_column + *idx);
      }
    }
    if (found < 0) {
      return Status::InvalidArgument("unknown column " +
                                     (ref.table.empty() ? ref.column
                                                        : ref.table + "." + ref.column));
    }
    return found;
  }

  Result<Expr> Bind(const ExprAst& ast, const AnalyzedQuery& q) {  // NOLINT
    switch (ast.kind) {
      case ExprAst::Kind::kLiteral:
        return Expr::Literal(ast.literal);
      case ExprAst::Kind::kColRef: {
        ORC_ASSIGN_OR_RETURN(int32_t col, ResolveColumn(ast, q));
        return Expr::Column(col);
      }
      case ExprAst::Kind::kBinary: {
        if (ast.op == "AND" || ast.op == "OR") {
          ORC_ASSIGN_OR_RETURN(Expr l, Bind(ast.args[0], q));
          ORC_ASSIGN_OR_RETURN(Expr r, Bind(ast.args[1], q));
          return ast.op == "AND" ? Expr::And(std::move(l), std::move(r))
                                 : Expr::Or(std::move(l), std::move(r));
        }
        ORC_ASSIGN_OR_RETURN(Expr l, Bind(ast.args[0], q));
        ORC_ASSIGN_OR_RETURN(Expr r, Bind(ast.args[1], q));
        if (ast.op == "+" || ast.op == "-" || ast.op == "*" || ast.op == "/") {
          return Expr::Arith(ast.op[0], std::move(l), std::move(r));
        }
        char op;
        if (ast.op == "<") op = '<';
        else if (ast.op == "<=") op = 'L';
        else if (ast.op == "=") op = '=';
        else if (ast.op == "<>") op = '!';
        else if (ast.op == ">=") op = 'G';
        else if (ast.op == ">") op = '>';
        else return Status::InvalidArgument("unknown operator " + ast.op);
        return Expr::Compare(op, std::move(l), std::move(r));
      }
      case ExprAst::Kind::kNot: {
        ORC_ASSIGN_OR_RETURN(Expr inner, Bind(ast.args[0], q));
        return Expr::Not(std::move(inner));
      }
      case ExprAst::Kind::kFunc: {
        if (ast.func == "CONCAT") {
          std::vector<Expr> args;
          for (const ExprAst& a : ast.args) {
            ORC_ASSIGN_OR_RETURN(Expr e, Bind(a, q));
            args.push_back(std::move(e));
          }
          return Expr::Concat(std::move(args));
        }
        return Status::InvalidArgument("aggregate " + ast.func +
                                       " not allowed in this context");
      }
      case ExprAst::Kind::kStar:
        return Status::InvalidArgument("* not allowed in this context");
    }
    return Status::InvalidArgument("bad expression");
  }

  const optimizer::CatalogView& catalog_;
};

}  // namespace

Result<AnalyzedQuery> ParseAndAnalyze(const std::string& text,
                                      const optimizer::CatalogView& catalog) {
  std::vector<Token> tokens;
  ORC_RETURN_IF_ERROR(Lexer(text).Tokenize(&tokens));
  Parser parser(std::move(tokens));
  ORC_ASSIGN_OR_RETURN(ParsedQuery parsed, parser.Parse());
  Analyzer analyzer(catalog);
  return analyzer.Analyze(parsed);
}

}  // namespace orchestra::sql
