#include "common/serial.h"

namespace orchestra {

void Writer::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void Writer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Writer::PutVarint32(uint32_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v | 0x80));
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void Writer::PutVarint64(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v | 0x80));
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void Writer::PutString(std::string_view s) {
  PutVarint64(s.size());
  PutRaw(s.data(), s.size());
}

void Writer::PutRaw(const void* data, size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

Status Reader::GetU8(uint8_t* v) {
  ORC_RETURN_IF_ERROR(Need(1));
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status Reader::GetU16(uint16_t* v) {
  ORC_RETURN_IF_ERROR(Need(2));
  uint16_t r = 0;
  for (int i = 0; i < 2; ++i) r |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  *v = r;
  return Status::OK();
}

Status Reader::GetU32(uint32_t* v) {
  ORC_RETURN_IF_ERROR(Need(4));
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) r |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  *v = r;
  return Status::OK();
}

Status Reader::GetU64(uint64_t* v) {
  ORC_RETURN_IF_ERROR(Need(8));
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) r |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  *v = r;
  return Status::OK();
}

Status Reader::GetI64(int64_t* v) {
  uint64_t u;
  ORC_RETURN_IF_ERROR(GetU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status Reader::GetDouble(double* v) {
  uint64_t bits;
  ORC_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status Reader::GetVarint32(uint32_t* v) {
  uint64_t wide;
  ORC_RETURN_IF_ERROR(GetVarint64(&wide));
  if (wide > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *v = static_cast<uint32_t>(wide);
  return Status::OK();
}

Status Reader::GetVarint64(uint64_t* v) {
  uint64_t r = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    uint8_t byte;
    ORC_RETURN_IF_ERROR(GetU8(&byte));
    r |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) {
      *v = r;
      return Status::OK();
    }
  }
  return Status::Corruption("varint64 too long");
}

Status Reader::GetString(std::string* s) {
  std::string_view view;
  ORC_RETURN_IF_ERROR(GetStringView(&view));
  s->assign(view);
  return Status::OK();
}

Status Reader::GetStringView(std::string_view* s) {
  uint64_t n;
  ORC_RETURN_IF_ERROR(GetVarint64(&n));
  ORC_RETURN_IF_ERROR(Need(n));
  *s = data_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

Status Reader::GetRawView(std::string_view* out, size_t n) {
  ORC_RETURN_IF_ERROR(Need(n));
  *out = data_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

Status Reader::GetRaw(void* out, size_t n) {
  ORC_RETURN_IF_ERROR(Need(n));
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status Reader::GetBool(bool* b) {
  uint8_t v;
  ORC_RETURN_IF_ERROR(GetU8(&v));
  *b = (v != 0);
  return Status::OK();
}

}  // namespace orchestra
