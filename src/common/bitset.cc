#include "common/bitset.h"

#include <cassert>

#include "common/serial.h"

namespace orchestra {

bool DynamicBitset::empty_set() const {
  for (uint64_t w : words_)
    if (w) return false;
  return true;
}

void DynamicBitset::Set(size_t i) {
  assert(i < bits_);
  words_[i / 64] |= (1ull << (i % 64));
}

void DynamicBitset::Reset(size_t i) {
  assert(i < bits_);
  words_[i / 64] &= ~(1ull << (i % 64));
}

bool DynamicBitset::Test(size_t i) const {
  assert(i < bits_);
  return (words_[i / 64] >> (i % 64)) & 1;
}

void DynamicBitset::UnionWith(const DynamicBitset& other) {
  assert(bits_ == other.bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i)
    if (words_[i] & other.words_[i]) return true;
  return false;
}

size_t DynamicBitset::Count() const {
  size_t c = 0;
  for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
  return c;
}

size_t DynamicBitset::FirstSet() const {
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i]) return i * 64 + static_cast<size_t>(__builtin_ctzll(words_[i]));
  }
  return bits_;
}

size_t DynamicBitset::Hash() const {
  // FNV-1a over words plus the size.
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(bits_);
  for (uint64_t w : words_) mix(w);
  return static_cast<size_t>(h);
}

void DynamicBitset::EncodeTo(Writer* w) const {
  w->PutVarint64(bits_);
  for (uint64_t word : words_) w->PutVarint64(word);
}

Status DynamicBitset::DecodeFrom(Reader* r, DynamicBitset* out) {
  uint64_t bits;
  ORC_RETURN_IF_ERROR(r->GetVarint64(&bits));
  if (bits > (1u << 20)) return Status::Corruption("bitset: absurd size");
  DynamicBitset b(bits);
  for (auto& word : b.words_) ORC_RETURN_IF_ERROR(r->GetVarint64(&word));
  *out = std::move(b);
  return Status::OK();
}

std::string DynamicBitset::ToString() const {
  std::string s = "{";
  bool first = true;
  for (size_t i = 0; i < bits_; ++i) {
    if (Test(i)) {
      if (!first) s += ",";
      s += std::to_string(i);
      first = false;
    }
  }
  s += "}";
  return s;
}

}  // namespace orchestra
