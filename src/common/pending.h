// Pending<T>: a lightweight single-threaded future/continuation handle — the
// completion type of the client::Session API. A Pending is a copyable view of
// shared completion state; the producer resolves it exactly once with a
// Status and (on success) a value, and every registered continuation runs at
// that moment. There is no blocking wait: callers either poll done() while
// driving the simulator, or chain work with OnReady().
//
// Exactly-once completion is inherited from the layers below (the RPC
// lifecycle table resolves every call once); Resolve() enforces it locally by
// ignoring — and reporting — a second resolution attempt.
//
// Thread/ordering contract: Pending is NOT thread-safe — producer and
// consumers must share the (simulated) event-loop thread. Continuations
// registered with OnReady() fire synchronously inside Resolve(), in
// registration order, on the resolver's call stack; a continuation may
// re-enter the owning API (e.g. Submit more work from a ticket callback) and
// may register further continuations, which then run immediately (the handle
// is already resolved). Copies share one completion state: resolving any
// copy resolves them all.
#ifndef ORCHESTRA_COMMON_PENDING_H_
#define ORCHESTRA_COMMON_PENDING_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace orchestra {

template <typename T>
class Pending {
 public:
  Pending() : state_(std::make_shared<State>()) {}

  /// True once the producer resolved this handle (with success or failure).
  bool done() const { return state_->done; }
  /// True iff resolved successfully; false while still pending.
  bool ok() const { return state_->done && state_->status.ok(); }
  /// OK() while pending; the resolution status afterwards.
  const Status& status() const { return state_->status; }

  /// Precondition: ok().
  T& value() { return state_->value; }
  const T& value() const { return state_->value; }

  /// Runs `fn` when the handle resolves — immediately if it already has.
  /// Continuations run in resolution order, on the resolver's call stack.
  void OnReady(std::function<void()> fn) {
    if (state_->done) {
      fn();
    } else {
      state_->waiters.push_back(std::move(fn));
    }
  }

  /// Producer side: resolves the handle and fires continuations. Returns
  /// false (and changes nothing) if the handle was already resolved — a
  /// belt-and-braces guard; the layers below already complete exactly once.
  bool Resolve(Status status, T value = T{}) {
    if (state_->done) return false;
    state_->status = std::move(status);
    state_->value = std::move(value);
    state_->done = true;
    // Waiters may register further waiters from inside a continuation; index
    // iteration keeps that safe, and the vector is released afterwards.
    for (size_t i = 0; i < state_->waiters.size(); ++i) state_->waiters[i]();
    state_->waiters.clear();
    state_->waiters.shrink_to_fit();
    return true;
  }

  /// Snapshot as a Result: the value when ok(), the status otherwise (a
  /// still-pending handle reports Unavailable).
  Result<T> ToResult() const {
    if (!state_->done) return Status::Unavailable("still pending");
    if (!state_->status.ok()) return state_->status;
    return state_->value;
  }

 private:
  struct State {
    bool done = false;
    Status status;
    T value{};
    std::vector<std::function<void()>> waiters;
  };
  std::shared_ptr<State> state_;
};

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_PENDING_H_
