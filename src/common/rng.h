// Deterministic random number generation. Every source of randomness in the
// system (data generation, failure times, gossip fan-out) flows through an
// explicitly seeded Rng so experiments are reproducible bit-for-bit.
#ifndef ORCHESTRA_COMMON_RNG_H_
#define ORCHESTRA_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace orchestra {

/// splitmix64-based PRNG: tiny state, excellent distribution, fully portable
/// across platforms (unlike std:: distributions, which vary by libstdc++).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ull) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return NextU64() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform in [0, 1).
  double NextDouble() { return (NextU64() >> 11) * (1.0 / 9007199254740992.0); }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Random lowercase-alpha string of length `len` (STBenchmark-style payload).
  std::string AlphaString(size_t len) {
    std::string s(len, 'a');
    for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
    return s;
  }

  /// Derives an independent child stream; used to give each node/relation its
  /// own stream so insertion order does not perturb unrelated draws.
  Rng Fork(uint64_t salt) { return Rng(NextU64() ^ (salt * 0xD1B54A32D192ED03ull)); }

 private:
  uint64_t state_;
};

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_RNG_H_
