// Byte-level serialization: little-endian fixed ints, LEB128 varints,
// length-prefixed strings. All network messages and on-disk records in the
// system are encoded through Writer/Reader so that message sizes measured by
// the network layer are real byte counts.
#ifndef ORCHESTRA_COMMON_SERIAL_H_
#define ORCHESTRA_COMMON_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace orchestra {

/// Appends encoded values to an owned byte buffer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(size_t reserve) { buf_.reserve(reserve); }

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutVarint32(uint32_t v);
  void PutVarint64(uint64_t v);
  /// Length-prefixed (varint) byte string.
  void PutString(std::string_view s);
  /// Raw bytes, no prefix.
  void PutRaw(const void* data, size_t n);
  void PutBool(bool b) { PutU8(b ? 1 : 0); }

  const std::string& data() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder over a non-owned byte span.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v);
  Status GetU16(uint16_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI64(int64_t* v);
  Status GetDouble(double* v);
  Status GetVarint32(uint32_t* v);
  Status GetVarint64(uint64_t* v);
  Status GetString(std::string* s);
  Status GetStringView(std::string_view* s);
  Status GetRaw(void* out, size_t n);
  /// Zero-copy view of the next `n` raw (unprefixed) bytes.
  Status GetRawView(std::string_view* out, size_t n);
  Status GetBool(bool* b);

  /// Zero-copy view of everything not yet consumed (position is unchanged).
  std::string_view RemainingView() const { return data_.substr(pos_); }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n) {
    if (remaining() < n) return Status::Corruption("serial: truncated input");
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_SERIAL_H_
