// DynamicBitset: the provenance node-set attached to tuples (§V-D). Sized to
// the routing snapshot's node count at query start; supports the operations
// taint-tracking needs (union, intersection test, canonical key form).
#ifndef ORCHESTRA_COMMON_BITSET_H_
#define ORCHESTRA_COMMON_BITSET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace orchestra {

class Writer;
class Reader;
class Status;

/// Fixed-capacity bitset whose size is chosen at construction.
///
/// Equality/hash are value-based so a DynamicBitset can key a hash map (the
/// aggregate operator partitions each group into sub-groups keyed by the set
/// of nodes that contributed, §V-D).
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

  size_t size() const { return bits_; }
  bool empty_set() const;  // true when no bit is set

  void Set(size_t i);
  void Reset(size_t i);
  bool Test(size_t i) const;

  /// this |= other. Both must have identical size.
  void UnionWith(const DynamicBitset& other);
  /// Any common set bit?
  bool Intersects(const DynamicBitset& other) const;
  size_t Count() const;
  /// Index of lowest set bit, or size() when empty.
  size_t FirstSet() const;

  bool operator==(const DynamicBitset& other) const {
    return bits_ == other.bits_ && words_ == other.words_;
  }

  /// Total order (size, then word-lexicographic): lets bitset-keyed maps be
  /// ordered, so iteration order is deterministic — required anywhere the
  /// traversal feeds emitted rows or wire frames (det-unordered-iter).
  bool operator<(const DynamicBitset& other) const {
    if (bits_ != other.bits_) return bits_ < other.bits_;
    return words_ < other.words_;
  }

  /// Stable hash for use as unordered_map key.
  size_t Hash() const;

  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, DynamicBitset* out);

  std::string ToString() const;  // e.g. "{0,3,7}"

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

struct DynamicBitsetHash {
  size_t operator()(const DynamicBitset& b) const { return b.Hash(); }
};

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_BITSET_H_
