#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace orchestra {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  const char* base = file;
  for (const char* p = file; *p; ++p)
    if (*p == '/') base = p + 1;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg.c_str());
}

void CheckFailed(const char* file, int line, const char* expr, const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr, msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace orchestra
