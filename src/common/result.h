// Result<T>: value-or-Status, the return type for fallible producers.
#ifndef ORCHESTRA_COMMON_RESULT_H_
#define ORCHESTRA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace orchestra {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent. Mirrors arrow::Result / rocksdb's StatusOr idiom.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T ValueOr(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its Status.
#define ORC_CONCAT_INNER_(a, b) a##b
#define ORC_CONCAT_(a, b) ORC_CONCAT_INNER_(a, b)
#define ORC_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                               \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value()
#define ORC_ASSIGN_OR_RETURN(lhs, rexpr) \
  ORC_ASSIGN_OR_RETURN_IMPL_(ORC_CONCAT_(_orc_result_, __LINE__), lhs, rexpr)

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_RESULT_H_
