// Lightweight Zip-based block compression (paper §V-A: tuple blocks are
// "compressed using lightweight Zip-based compression"). Thin wrapper over
// zlib with a level tuned for speed.
#ifndef ORCHESTRA_COMMON_COMPRESS_H_
#define ORCHESTRA_COMMON_COMPRESS_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace orchestra {

/// Compresses `input` with zlib (fast level). The output embeds the
/// uncompressed size so Uncompress needs no side channel.
std::string CompressBlock(std::string_view input);

/// Inverse of CompressBlock. Fails with Corruption on malformed input.
Result<std::string> UncompressBlock(std::string_view input);

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_COMPRESS_H_
