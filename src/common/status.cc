#include "common/status.h"

namespace orchestra {

namespace {
const char* CodeName(Status::Code c) {
  switch (c) {
    case Status::Code::kOk: return "OK";
    case Status::Code::kNotFound: return "NotFound";
    case Status::Code::kInvalidArgument: return "InvalidArgument";
    case Status::Code::kCorruption: return "Corruption";
    case Status::Code::kIOError: return "IOError";
    case Status::Code::kUnavailable: return "Unavailable";
    case Status::Code::kAborted: return "Aborted";
    case Status::Code::kTimedOut: return "TimedOut";
    case Status::Code::kNotSupported: return "NotSupported";
    case Status::Code::kFailedPrecondition: return "FailedPrecondition";
    case Status::Code::kEpochTaken: return "EpochTaken";
    case Status::Code::kFenced: return "Fenced";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace orchestra
