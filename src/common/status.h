// Status: RocksDB/Arrow-style error handling for expected failures.
// Exceptions are reserved for programmer errors (see ORC_CHECK in log.h).
#ifndef ORCHESTRA_COMMON_STATUS_H_
#define ORCHESTRA_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace orchestra {

/// Outcome of an operation that can fail in expected ways.
///
/// A `Status` is cheap to copy when OK (no allocation) and carries a code
/// plus human-readable message otherwise. Functions that can fail return
/// `Status` (or `Result<T>`, see result.h) rather than throwing.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kInvalidArgument = 2,
    kCorruption = 3,
    kIOError = 4,
    kUnavailable = 5,   // node down / data not yet replicated; retryable
    kAborted = 6,       // query aborted (e.g. for full restart)
    kTimedOut = 7,
    kNotSupported = 8,
    kFailedPrecondition = 9,
    kEpochTaken = 10,   // multi-writer epoch contention: another participant
                        // owns this epoch; the reply body names the winner
    kFenced = 11,       // this claim instance was fenced after abandonment;
                        // terminal for the fenced participant (never retried)
  };

  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) { return Status(Code::kNotFound, msg); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status Corruption(std::string_view msg) { return Status(Code::kCorruption, msg); }
  static Status IOError(std::string_view msg) { return Status(Code::kIOError, msg); }
  static Status Unavailable(std::string_view msg) { return Status(Code::kUnavailable, msg); }
  static Status Aborted(std::string_view msg) { return Status(Code::kAborted, msg); }
  static Status TimedOut(std::string_view msg) { return Status(Code::kTimedOut, msg); }
  static Status NotSupported(std::string_view msg) { return Status(Code::kNotSupported, msg); }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status EpochTaken(std::string_view msg) {
    return Status(Code::kEpochTaken, msg);
  }
  static Status Fenced(std::string_view msg) { return Status(Code::kFenced, msg); }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsEpochTaken() const { return code_ == Code::kEpochTaken; }
  bool IsFenced() const { return code_ == Code::kFenced; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  Code code_ = Code::kOk;
  std::string msg_;
};

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if not OK.
#define ORC_RETURN_IF_ERROR(expr)                    \
  do {                                               \
    ::orchestra::Status _orc_s = (expr);             \
    if (!_orc_s.ok()) return _orc_s;                 \
  } while (0)

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_STATUS_H_
