#include "common/compress.h"

#include <zlib.h>

#include "common/serial.h"

namespace orchestra {

std::string CompressBlock(std::string_view input) {
  uLongf bound = compressBound(static_cast<uLong>(input.size()));
  Writer header;
  header.PutVarint64(input.size());
  std::string out = header.Release();
  size_t header_size = out.size();
  out.resize(header_size + bound);
  // Z_BEST_SPEED: the paper emphasizes *lightweight* compression; the goal is
  // exploiting commonality across batched tuples, not maximal ratio.
  int rc = compress2(reinterpret_cast<Bytef*>(out.data() + header_size), &bound,
                     reinterpret_cast<const Bytef*>(input.data()),
                     static_cast<uLong>(input.size()), Z_BEST_SPEED);
  if (rc != Z_OK) {
    // compressBound guarantees success for valid inputs; treat as fatal.
    out.resize(header_size);
    return out;
  }
  out.resize(header_size + bound);
  return out;
}

Result<std::string> UncompressBlock(std::string_view input) {
  Reader reader(input);
  uint64_t raw_size;
  ORC_RETURN_IF_ERROR(reader.GetVarint64(&raw_size));
  if (raw_size > (1ull << 32)) return Status::Corruption("compress: absurd size");
  std::string out;
  out.resize(raw_size);
  uLongf dest_len = static_cast<uLongf>(raw_size);
  std::string_view body = input.substr(reader.position());
  int rc = uncompress(reinterpret_cast<Bytef*>(out.data()), &dest_len,
                      reinterpret_cast<const Bytef*>(body.data()),
                      static_cast<uLong>(body.size()));
  if (rc != Z_OK || dest_len != raw_size) {
    return Status::Corruption("compress: inflate failed");
  }
  return out;
}

}  // namespace orchestra
