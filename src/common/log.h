// Minimal leveled logging + invariant checks.
#ifndef ORCHESTRA_COMMON_LOG_H_
#define ORCHESTRA_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace orchestra {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default kWarn so tests
/// and benches stay quiet unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);
}  // namespace internal

#define ORC_LOG(level, ...)                                                     \
  do {                                                                          \
    if (static_cast<int>(level) >= static_cast<int>(::orchestra::GetLogLevel())) { \
      std::ostringstream _orc_os;                                               \
      _orc_os << __VA_ARGS__;                                                   \
      ::orchestra::internal::LogMessage(level, __FILE__, __LINE__, _orc_os.str()); \
    }                                                                           \
  } while (0)

#define ORC_DEBUG(...) ORC_LOG(::orchestra::LogLevel::kDebug, __VA_ARGS__)
#define ORC_INFO(...) ORC_LOG(::orchestra::LogLevel::kInfo, __VA_ARGS__)
#define ORC_WARN(...) ORC_LOG(::orchestra::LogLevel::kWarn, __VA_ARGS__)
#define ORC_ERROR(...) ORC_LOG(::orchestra::LogLevel::kError, __VA_ARGS__)

/// Invariant check: aborts on violation (programmer error, not expected
/// failure — those use Status).
#define ORC_CHECK(expr, ...)                                                  \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream _orc_os;                                             \
      _orc_os << "" __VA_ARGS__;                                              \
      ::orchestra::internal::CheckFailed(__FILE__, __LINE__, #expr, _orc_os.str()); \
    }                                                                         \
  } while (0)

}  // namespace orchestra

#endif  // ORCHESTRA_COMMON_LOG_H_
