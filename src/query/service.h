// QueryService: the per-node distributed query engine (§V).
//
// Worker role (every node in the snapshot):
//  * instantiates the disseminated plan + routing-table snapshot,
//  * drives leaf scans over the versioned pages it owns (distributed scan
//    spillover pushes remote tuples into the plan at their data node),
//  * routes Rehash output by hash under the query's routing table, batches
//    and compresses blocks, acks received blocks,
//  * runs the end-of-stream protocol: scans use a part-done barrier; a
//    Rehash broadcasts EOS markers only after its input ended AND all its
//    blocks were acked (§V-B),
//  * on a recovery message: purges tainted state, re-arms EOS for the new
//    phase, restarts leaf scans for inherited ranges, and re-sends cached
//    output that had been destined to failed nodes (§V-D stages 2-4).
//
// Initiator role:
//  * resolves scan bindings (coordinator records) at the chosen epoch,
//  * takes the routing snapshot and disseminates it with the plan (§V-A),
//  * collects shipped rows (with taints) and runs the final stage,
//  * detects failures via connection drops, participant reports, and
//    optional pings; recovers incrementally or by full restart (§V-C/D).
#ifndef ORCHESTRA_QUERY_SERVICE_H_
#define ORCHESTRA_QUERY_SERVICE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "overlay/gossip.h"
#include "query/operators.h"
#include "query/plan.h"
#include "storage/service.h"

namespace orchestra::query {

struct QueryOptions {
  enum class RecoveryMode : uint8_t { kNone = 0, kRestart = 1, kIncremental = 2 };
  RecoveryMode recovery = RecoveryMode::kIncremental;
  /// Rows per network block (batching, §V-A).
  uint32_t block_rows = 1024;
  /// Background pings to detect "hung" machines (§V-C).
  bool enable_ping = false;
  sim::SimTime ping_interval_us = 1 * sim::kMicrosPerSec;
  int ping_miss_threshold = 3;
  /// Disable provenance tagging (for the recovery-overhead ablation; queries
  /// cannot be recovered incrementally without it).
  bool provenance = true;
};

struct QueryResult {
  std::vector<Tuple> rows;
  sim::SimTime execution_us = 0;
  uint32_t recoveries = 0;
  uint32_t restarts = 0;
  std::vector<net::NodeId> failures_handled;
};

class QueryService : public net::Service {
 public:
  using Callback = std::function<void(Status, QueryResult)>;

  QueryService(net::NodeHost* host, storage::StorageService* storage,
               overlay::GossipService* gossip,
               std::shared_ptr<storage::SnapshotBoard> board);

  /// Initiator entry point: runs `plan` against `epoch` and delivers the
  /// final rows. The epoch defaults (0) to the gossiped current epoch.
  void Execute(const PhysicalPlan& plan, storage::Epoch epoch, QueryOptions options,
               Callback cb);

  void OnMessage(net::NodeId from, uint16_t code, const std::string& payload) override;
  void OnConnectionDrop(net::NodeId peer) override;
  /// Fail-stop death of this node: release every root (initiator state,
  /// including the user's completion callback), exec, and buffered message
  /// without invoking anything — the node is halted.
  void OnSelfFailed() override {
    roots_.clear();
    execs_.clear();
    pending_.clear();
  }

  net::NodeId node() const { return host_->node(); }

  struct Counters {
    uint64_t blocks_sent = 0;
    uint64_t blocks_received = 0;
    uint64_t rows_routed = 0;
    uint64_t rows_shipped = 0;
    uint64_t rows_dropped_tainted = 0;
    uint64_t scans_restarted = 0;
    uint64_t cache_rows_resent = 0;
  };
  const Counters& counters() const { return counters_; }

  /// Human-readable dump of per-query execution state (stall diagnosis).
  std::string DebugString() const;

  // --- Leak regression hooks -------------------------------------------------
  /// Initiator-side queries still holding a completion callback.
  size_t active_root_count() const { return roots_.size(); }
  /// Worker-side executions still instantiated.
  size_t active_exec_count() const { return execs_.size(); }
  /// Messages buffered ahead of their plan across all queries.
  size_t buffered_message_count() const {
    size_t n = 0;
    for (const auto& [qid, msgs] : pending_) n += msgs.size();
    return n;
  }

 private:
  enum QueryCode : uint16_t {
    kPlan = 1,
    kDataBlock = 2,
    kBlockAck = 3,
    kEosMarker = 4,
    kScanPartDone = 5,
    kQueryFetch = 6,
    kShipBlock = 7,
    kShipEos = 8,
    kNodeSuspect = 9,
    kRecover = 10,
    kAbort = 11,
    kPing = 12,
    kPong = 13,
  };

  // --- Worker-side state -----------------------------------------------------
  struct RehashState {
    std::map<net::NodeId, std::vector<BlockRow>> buffers;
    std::map<net::NodeId, uint32_t> next_seq;
    std::map<net::NodeId, std::set<uint32_t>> unacked;
    struct CacheEntry {
      BlockRow row;
      net::NodeId dest;
    };
    std::vector<CacheEntry> cache;  // output cache for recovery resend (§V-D)
    bool child_eos = false;
    bool eos_broadcast = false;  // for the current phase
  };

  struct ScanState {
    std::deque<storage::PageDescriptor> pending_pages;
    /// Pages this node already scanned whose ids must be re-routed because
    /// their data-storage node failed (partial rescan, §V-D stage 3).
    std::deque<storage::PageDescriptor> pending_partial;
    bool iteration_done = false;
    bool part_done_broadcast = false;
    size_t async_outstanding = 0;
    std::map<net::NodeId, uint32_t> part_done_phase;  // scan barrier
    bool chain_running = false;
  };

  struct Exec {
    uint64_t query_id = 0;
    net::NodeId initiator = net::kInvalidNode;
    storage::Epoch epoch = 0;
    bool provenance = true;
    uint32_t block_rows = 1024;
    PhysicalPlan plan;
    overlay::RoutingSnapshot snapshot;    // as disseminated
    overlay::RoutingSnapshot table;       // current (updated by recovery)
    overlay::RoutingSnapshot prev_table;  // table of the previous phase
    ExecContext cx;
    std::vector<std::unique_ptr<Operator>> ops;
    std::vector<int32_t> parents;
    std::map<int32_t, storage::CoordinatorRecord> bindings;
    std::map<int32_t, RehashState> rehash;
    std::map<int32_t, ScanState> scans;
    std::map<int32_t, std::map<net::NodeId, uint32_t>> eos_from;  // rehash EOS
    std::map<int32_t, bool> net_eos_delivered;  // per rehash op, this phase
    std::vector<BlockRow> ship_buffer;
    uint32_t ship_seq = 0;
    bool ship_eos_sent = false;
  };

  // --- Initiator-side state ---------------------------------------------------
  struct Root {
    uint64_t query_id = 0;
    PhysicalPlan plan;
    storage::Epoch epoch = 0;
    QueryOptions options;
    overlay::RoutingSnapshot snapshot;
    overlay::RoutingSnapshot table;
    uint32_t phase = 0;
    std::vector<net::NodeId> failed;
    DynamicBitset failed_bits;
    std::map<int32_t, storage::CoordinatorRecord> bindings;
    std::vector<BlockRow> results;
    std::map<net::NodeId, uint32_t> ship_eos_phase;
    Callback cb;
    sim::SimTime started_at = 0;
    uint32_t recoveries = 0;
    uint32_t restarts = 0;
    // Ping-based hung-node detection.
    uint64_t ping_round = 0;
    std::map<net::NodeId, uint64_t> last_pong_round;
    bool ping_timer_armed = false;
  };

  // Worker paths.
  void HandlePlan(net::NodeId from, const std::string& payload);
  void HandleDataBlock(net::NodeId from, const std::string& payload);
  void HandleBlockAck(net::NodeId from, Reader* r);
  void HandleEosMarker(net::NodeId from, Reader* r);
  void HandleScanPartDone(net::NodeId from, Reader* r);
  void HandleQueryFetch(net::NodeId from, Reader* r);
  void HandleRecover(net::NodeId from, const std::string& payload);
  void HandleAbort(Reader* r);

  void StartExec(Exec& ex);
  void AssignScanPages(Exec& ex, int32_t scan_op,
                       const overlay::RoutingSnapshot& table,
                       std::deque<storage::PageDescriptor>* out) const;
  void DriveScanChain(uint64_t query_id, int32_t scan_op);
  enum class ScanMode { kFull, kFailedOwnersOnly };
  void ProcessPage(Exec& ex, int32_t scan_op, const storage::Page& page,
                   ScanMode mode);
  void InjectScanRow(Exec& ex, int32_t scan_op, Tuple tuple, DynamicBitset taint);
  void FinishScanIteration(Exec& ex, int32_t scan_op);
  void CheckScanEos(Exec& ex, int32_t scan_op);
  void RouteRow(Exec& ex, int32_t rehash_op, BlockRow row, bool count_cache);
  void FlushRehash(Exec& ex, int32_t rehash_op, net::NodeId dest);
  void FlushAllRehash(Exec& ex, int32_t rehash_op);
  void TryBroadcastRehashEos(Exec& ex, int32_t rehash_op);
  void CheckNetEos(Exec& ex, int32_t op);
  void ShipRow(Exec& ex, BlockRow row);
  void FlushShip(Exec& ex);
  void OnShipChildEos(Exec& ex);
  std::vector<net::NodeId> LiveMembers(const Exec& ex) const;

  // Initiator paths.
  void DisseminatePlan(Root& root);
  void HandleShipBlock(net::NodeId from, const std::string& payload);
  void HandleShipEos(net::NodeId from, Reader* r);
  void HandleSuspect(Root& root, net::NodeId node);
  void CheckRootDone(Root& root);
  void FinishRoot(Root& root, Status st);
  void PingTick(uint64_t query_id);
  std::vector<net::NodeId> LiveMembers(const Root& root) const;

  void ChargeBlockCosts(const TupleBlock& block);
  void SendTo(net::NodeId to, uint16_t code, std::string payload) {
    host_->SendTo(to, net::ServiceId::kQuery, code, std::move(payload));
  }
  Exec* FindExec(uint64_t query_id);
  Root* FindRoot(uint64_t query_id);
  void BufferPending(uint64_t query_id, net::NodeId from, uint16_t code,
                     const std::string& payload);
  /// Records a finished/aborted query id (so late messages are not
  /// re-buffered), evicting the oldest ids beyond a fixed cap.
  void MarkAborted(uint64_t query_id);

  net::NodeHost* host_;
  storage::StorageService* storage_;
  overlay::GossipService* gossip_;
  std::shared_ptr<storage::SnapshotBoard> board_;
  std::map<uint64_t, std::unique_ptr<Exec>> execs_;
  std::map<uint64_t, std::unique_ptr<Root>> roots_;
  // Blocks that raced ahead of their plan message (FIFO is per-connection).
  std::map<uint64_t, std::vector<std::tuple<net::NodeId, uint16_t, std::string>>>
      pending_;
  std::set<uint64_t> aborted_;          // recently finished/aborted queries
  std::deque<uint64_t> aborted_order_;  // insertion order, for capped eviction
  // Peers whose connection dropped (fail-stop, ids are never reused): their
  // queries can make no progress, so messages for them are never buffered.
  std::set<net::NodeId> dropped_peers_;
  uint64_t next_query_seq_ = 1;
  Counters counters_;
};

}  // namespace orchestra::query

#endif  // ORCHESTRA_QUERY_SERVICE_H_
