#include "query/reference.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "common/log.h"
#include "storage/schema.h"

namespace orchestra::query {

namespace {

struct RefEval {
  const PhysicalPlan& plan;
  const ReferenceDatabase& db;

  Result<std::vector<Tuple>> Eval(int32_t id) {  // NOLINT(misc-no-recursion)
    const PhysOp& op = plan.op(id);
    switch (op.kind) {
      case OpKind::kScan:
      case OpKind::kCoveringScan: {
        auto it = db.find(op.relation);
        if (it == db.end()) {
          return Status::NotFound("reference: no relation " + op.relation);
        }
        std::vector<Tuple> out;
        for (const Tuple& t : it->second) out.push_back(t);
        return out;
      }
      case OpKind::kSelect: {
        ORC_ASSIGN_OR_RETURN(auto in, Eval(op.children[0]));
        std::vector<Tuple> out;
        for (Tuple& t : in) {
          if (op.predicate.EvalBool(t)) out.push_back(std::move(t));
        }
        return out;
      }
      case OpKind::kProject: {
        ORC_ASSIGN_OR_RETURN(auto in, Eval(op.children[0]));
        std::vector<Tuple> out;
        out.reserve(in.size());
        for (const Tuple& t : in) {
          Tuple row;
          row.reserve(op.columns.size());
          for (int32_t c : op.columns) row.push_back(t[c]);
          out.push_back(std::move(row));
        }
        return out;
      }
      case OpKind::kCompute: {
        ORC_ASSIGN_OR_RETURN(auto in, Eval(op.children[0]));
        std::vector<Tuple> out;
        out.reserve(in.size());
        for (const Tuple& t : in) {
          Tuple row;
          row.reserve(op.exprs.size());
          for (const Expr& e : op.exprs) row.push_back(e.Eval(t));
          out.push_back(std::move(row));
        }
        return out;
      }
      case OpKind::kHashJoin: {
        ORC_ASSIGN_OR_RETURN(auto left, Eval(op.children[0]));
        ORC_ASSIGN_OR_RETURN(auto right, Eval(op.children[1]));
        std::unordered_multimap<std::string, const Tuple*> index;
        for (const Tuple& r : right) {
          Writer w;
          for (int32_t c : op.right_keys) r[c].EncodeTo(&w);
          index.emplace(w.Release(), &r);
        }
        std::vector<Tuple> out;
        for (const Tuple& l : left) {
          Writer w;
          for (int32_t c : op.left_keys) l[c].EncodeTo(&w);
          auto [lo, hi] = index.equal_range(w.data());
          for (auto it = lo; it != hi; ++it) {
            Tuple row = l;
            row.insert(row.end(), it->second->begin(), it->second->end());
            out.push_back(std::move(row));
          }
        }
        return out;
      }
      case OpKind::kAggregate: {
        ORC_ASSIGN_OR_RETURN(auto in, Eval(op.children[0]));
        struct Group {
          Tuple vals;
          std::vector<AggState> states;
        };
        std::map<std::string, Group> groups;
        for (const Tuple& t : in) {
          Writer kw;
          for (int32_t c : op.group_cols) t[c].EncodeTo(&kw);
          auto [it, inserted] = groups.try_emplace(kw.data());
          if (inserted) {
            for (int32_t c : op.group_cols) it->second.vals.push_back(t[c]);
            for (const AggSpec& a : op.aggs) it->second.states.emplace_back(a.fn);
          }
          for (size_t i = 0; i < op.aggs.size(); ++i) {
            const AggSpec& a = op.aggs[i];
            if (op.merge_partials) {
              it->second.states[i].Merge(a.has_arg ? a.arg.Eval(t) : Value(int64_t{1}));
            } else if (a.has_arg) {
              it->second.states[i].Update(a.arg.Eval(t));
            } else {
              it->second.states[i].UpdateCountStar();
            }
          }
        }
        std::vector<Tuple> out;
        for (auto& [k, g] : groups) {
          Tuple row = g.vals;
          for (const AggState& s : g.states) row.push_back(s.Finish());
          out.push_back(std::move(row));
        }
        return out;
      }
      case OpKind::kRehash:
      case OpKind::kShip:
        return Eval(op.children[0]);
    }
    return Status::InvalidArgument("reference: unknown op");
  }
};

}  // namespace

Result<std::vector<Tuple>> ReferenceExecute(const PhysicalPlan& plan,
                                            const ReferenceDatabase& db) {
  ORC_RETURN_IF_ERROR(plan.Validate());
  RefEval ev{plan, db};
  ORC_ASSIGN_OR_RETURN(auto rows, ev.Eval(plan.root));
  return plan.final_stage.Apply(rows);
}

bool SameBag(const std::vector<Tuple>& a, const std::vector<Tuple>& b) {
  if (a.size() != b.size()) return false;
  auto key = [](const Tuple& t) {
    Writer w;
    storage::EncodeTuple(t, &w);
    return w.Release();
  };
  std::multiset<std::string> ma, mb;
  for (const Tuple& t : a) ma.insert(key(t));
  for (const Tuple& t : b) mb.insert(key(t));
  return ma == mb;
}

bool SameBagApprox(const std::vector<Tuple>& a, const std::vector<Tuple>& b,
                   double rel_tol) {
  if (a.size() != b.size()) return false;
  // Canonical sort, then pairwise compare with tolerance on doubles.
  auto sorted = [](std::vector<Tuple> rows) {
    std::sort(rows.begin(), rows.end(),
              [](const Tuple& x, const Tuple& y) {
                return storage::CompareTuples(x, y) < 0;
              });
    return rows;
  };
  std::vector<Tuple> sa = sorted(a), sb = sorted(b);
  for (size_t i = 0; i < sa.size(); ++i) {
    if (sa[i].size() != sb[i].size()) return false;
    for (size_t c = 0; c < sa[i].size(); ++c) {
      const Value& x = sa[i][c];
      const Value& y = sb[i][c];
      bool numeric = (x.type() == storage::ValueType::kDouble ||
                      y.type() == storage::ValueType::kDouble) &&
                     !x.is_null() && !y.is_null() &&
                     x.type() != storage::ValueType::kString &&
                     y.type() != storage::ValueType::kString;
      if (numeric) {
        double dx = x.NumericValue(), dy = y.NumericValue();
        double scale = std::max({std::abs(dx), std::abs(dy), 1.0});
        if (std::abs(dx - dy) > rel_tol * scale) return false;
      } else if (!(x == y)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace orchestra::query
