#include "query/plan.h"

#include <algorithm>

#include "common/log.h"

namespace orchestra::query {

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kScan: return "Scan";
    case OpKind::kCoveringScan: return "CoveringScan";
    case OpKind::kSelect: return "Select";
    case OpKind::kProject: return "Project";
    case OpKind::kCompute: return "Compute";
    case OpKind::kHashJoin: return "HashJoin";
    case OpKind::kAggregate: return "Aggregate";
    case OpKind::kRehash: return "Rehash";
    case OpKind::kShip: return "Ship";
  }
  return "?";
}

namespace {
void PutI32Vec(Writer* w, const std::vector<int32_t>& v) {
  w->PutVarint32(static_cast<uint32_t>(v.size()));
  for (int32_t x : v) w->PutVarint32(static_cast<uint32_t>(x));
}

Status GetI32Vec(Reader* r, std::vector<int32_t>* v) {
  uint32_t n;
  ORC_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > (1u << 16)) return Status::Corruption("plan: absurd vector");
  v->resize(n);
  for (auto& x : *v) {
    uint32_t u;
    ORC_RETURN_IF_ERROR(r->GetVarint32(&u));
    x = static_cast<int32_t>(u);
  }
  return Status::OK();
}
}  // namespace

void PhysOp::EncodeTo(Writer* w) const {
  w->PutU8(static_cast<uint8_t>(kind));
  w->PutVarint32(static_cast<uint32_t>(id));
  PutI32Vec(w, children);
  w->PutString(relation);
  key_filter.EncodeTo(w);
  w->PutBool(broadcast_local);
  predicate.EncodeTo(w);
  PutI32Vec(w, columns);
  w->PutVarint32(static_cast<uint32_t>(exprs.size()));
  for (const Expr& e : exprs) e.EncodeTo(w);
  PutI32Vec(w, left_keys);
  PutI32Vec(w, right_keys);
  PutI32Vec(w, group_cols);
  w->PutVarint32(static_cast<uint32_t>(aggs.size()));
  for (const AggSpec& a : aggs) a.EncodeTo(w);
  w->PutBool(merge_partials);
  PutI32Vec(w, hash_cols);
}

Status PhysOp::DecodeFrom(Reader* r, PhysOp* out) {
  uint8_t kind;
  ORC_RETURN_IF_ERROR(r->GetU8(&kind));
  out->kind = static_cast<OpKind>(kind);
  uint32_t id;
  ORC_RETURN_IF_ERROR(r->GetVarint32(&id));
  out->id = static_cast<int32_t>(id);
  ORC_RETURN_IF_ERROR(GetI32Vec(r, &out->children));
  ORC_RETURN_IF_ERROR(r->GetString(&out->relation));
  ORC_RETURN_IF_ERROR(storage::KeyFilter::DecodeFrom(r, &out->key_filter));
  ORC_RETURN_IF_ERROR(r->GetBool(&out->broadcast_local));
  ORC_RETURN_IF_ERROR(Expr::DecodeFrom(r, &out->predicate));
  ORC_RETURN_IF_ERROR(GetI32Vec(r, &out->columns));
  uint32_t n;
  ORC_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 4096) return Status::Corruption("plan: too many exprs");
  out->exprs.resize(n);
  for (auto& e : out->exprs) ORC_RETURN_IF_ERROR(Expr::DecodeFrom(r, &e));
  ORC_RETURN_IF_ERROR(GetI32Vec(r, &out->left_keys));
  ORC_RETURN_IF_ERROR(GetI32Vec(r, &out->right_keys));
  ORC_RETURN_IF_ERROR(GetI32Vec(r, &out->group_cols));
  ORC_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 256) return Status::Corruption("plan: too many aggs");
  out->aggs.resize(n);
  for (auto& a : out->aggs) ORC_RETURN_IF_ERROR(AggSpec::DecodeFrom(r, &a));
  ORC_RETURN_IF_ERROR(r->GetBool(&out->merge_partials));
  ORC_RETURN_IF_ERROR(GetI32Vec(r, &out->hash_cols));
  return Status::OK();
}

void FinalStage::EncodeTo(Writer* w) const {
  w->PutBool(has_agg);
  PutI32Vec(w, group_cols);
  w->PutVarint32(static_cast<uint32_t>(aggs.size()));
  for (const AggSpec& a : aggs) a.EncodeTo(w);
  w->PutBool(has_post);
  w->PutVarint32(static_cast<uint32_t>(post_exprs.size()));
  for (const Expr& e : post_exprs) e.EncodeTo(w);
  w->PutVarint32(static_cast<uint32_t>(sort.size()));
  for (const SortKey& s : sort) {
    w->PutVarint32(static_cast<uint32_t>(s.col));
    w->PutBool(s.asc);
  }
  w->PutI64(limit);
}

Status FinalStage::DecodeFrom(Reader* r, FinalStage* out) {
  ORC_RETURN_IF_ERROR(r->GetBool(&out->has_agg));
  ORC_RETURN_IF_ERROR(GetI32Vec(r, &out->group_cols));
  uint32_t n;
  ORC_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 256) return Status::Corruption("final: too many aggs");
  out->aggs.resize(n);
  for (auto& a : out->aggs) ORC_RETURN_IF_ERROR(AggSpec::DecodeFrom(r, &a));
  ORC_RETURN_IF_ERROR(r->GetBool(&out->has_post));
  ORC_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 4096) return Status::Corruption("final: too many exprs");
  out->post_exprs.resize(n);
  for (auto& e : out->post_exprs) ORC_RETURN_IF_ERROR(Expr::DecodeFrom(r, &e));
  ORC_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 256) return Status::Corruption("final: too many sort keys");
  out->sort.resize(n);
  for (auto& s : out->sort) {
    uint32_t col;
    ORC_RETURN_IF_ERROR(r->GetVarint32(&col));
    s.col = static_cast<int32_t>(col);
    ORC_RETURN_IF_ERROR(r->GetBool(&s.asc));
  }
  ORC_RETURN_IF_ERROR(r->GetI64(&out->limit));
  return Status::OK();
}

std::vector<Tuple> FinalStage::Apply(const std::vector<Tuple>& rows) const {
  std::vector<Tuple> out;

  if (has_agg) {
    struct Group {
      Tuple key_vals;
      std::vector<AggState> states;
    };
    std::map<std::string, Group> groups;
    for (const Tuple& row : rows) {
      Writer kw;
      Tuple key_vals;
      for (int32_t c : group_cols) {
        key_vals.push_back(row[c]);
        row[c].EncodeTo(&kw);
      }
      auto [it, inserted] = groups.try_emplace(kw.data());
      if (inserted) {
        it->second.key_vals = std::move(key_vals);
        for (const AggSpec& a : aggs) it->second.states.emplace_back(a.fn);
      }
      for (size_t i = 0; i < aggs.size(); ++i) {
        // Shipped rows are partials: merge (COUNT partials sum, etc.).
        Value v = aggs[i].has_arg ? aggs[i].arg.Eval(row) : Value(int64_t{1});
        it->second.states[i].Merge(v);
      }
    }
    for (auto& [key, g] : groups) {
      Tuple row = g.key_vals;
      for (const AggState& s : g.states) row.push_back(s.Finish());
      out.push_back(std::move(row));
    }
  } else {
    out = rows;
  }

  if (has_post) {
    for (Tuple& row : out) {
      Tuple next;
      next.reserve(post_exprs.size());
      for (const Expr& e : post_exprs) next.push_back(e.Eval(row));
      row = std::move(next);
    }
  }

  if (!sort.empty()) {
    std::stable_sort(out.begin(), out.end(), [this](const Tuple& a, const Tuple& b) {
      for (const SortKey& k : sort) {
        int c = a[k.col].Compare(b[k.col]);
        if (c != 0) return k.asc ? c < 0 : c > 0;
      }
      return false;
    });
  }

  if (limit >= 0 && out.size() > static_cast<size_t>(limit)) {
    out.resize(static_cast<size_t>(limit));
  }
  return out;
}

std::vector<int32_t> PhysicalPlan::ParentIds() const {
  std::vector<int32_t> parents(ops.size(), -1);
  for (const PhysOp& op : ops) {
    for (int32_t c : op.children) parents[c] = op.id;
  }
  return parents;
}

std::vector<int32_t> PhysicalPlan::ScanOpIds() const {
  std::vector<int32_t> out;
  for (const PhysOp& op : ops) {
    if (op.kind == OpKind::kScan || op.kind == OpKind::kCoveringScan) {
      out.push_back(op.id);
    }
  }
  return out;
}

Status PhysicalPlan::Validate() const {
  if (ops.empty()) return Status::InvalidArgument("plan: empty");
  for (size_t i = 0; i < ops.size(); ++i) {
    const PhysOp& op = ops[i];
    if (op.id != static_cast<int32_t>(i)) {
      return Status::InvalidArgument("plan: id/index mismatch");
    }
    for (int32_t c : op.children) {
      if (c < 0 || c >= static_cast<int32_t>(ops.size()) || c == op.id) {
        return Status::InvalidArgument("plan: bad child id");
      }
    }
    switch (op.kind) {
      case OpKind::kScan:
      case OpKind::kCoveringScan:
        if (!op.children.empty()) return Status::InvalidArgument("scan has children");
        if (op.relation.empty()) return Status::InvalidArgument("scan w/o relation");
        break;
      case OpKind::kHashJoin:
        if (op.children.size() != 2)
          return Status::InvalidArgument("join needs 2 children");
        if (op.left_keys.size() != op.right_keys.size() || op.left_keys.empty())
          return Status::InvalidArgument("join keys mismatch");
        break;
      case OpKind::kShip:
      case OpKind::kRehash:
      case OpKind::kSelect:
      case OpKind::kProject:
      case OpKind::kCompute:
      case OpKind::kAggregate:
        if (op.children.size() != 1)
          return Status::InvalidArgument(std::string(OpKindName(op.kind)) +
                                         " needs 1 child");
        break;
    }
  }
  if (root < 0 || root >= static_cast<int32_t>(ops.size()) ||
      ops[root].kind != OpKind::kShip) {
    return Status::InvalidArgument("plan: root must be a Ship");
  }
  return Status::OK();
}

void PhysicalPlan::EncodeTo(Writer* w) const {
  w->PutVarint32(static_cast<uint32_t>(ops.size()));
  for (const PhysOp& op : ops) op.EncodeTo(w);
  w->PutVarint32(static_cast<uint32_t>(root));
  final_stage.EncodeTo(w);
}

Status PhysicalPlan::DecodeFrom(Reader* r, PhysicalPlan* out) {
  uint32_t n;
  ORC_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 4096) return Status::Corruption("plan: too many ops");
  out->ops.resize(n);
  for (auto& op : out->ops) ORC_RETURN_IF_ERROR(PhysOp::DecodeFrom(r, &op));
  uint32_t root;
  ORC_RETURN_IF_ERROR(r->GetVarint32(&root));
  out->root = static_cast<int32_t>(root);
  ORC_RETURN_IF_ERROR(FinalStage::DecodeFrom(r, &out->final_stage));
  return out->Validate();
}

namespace {
void PrintOp(const PhysicalPlan& plan, int32_t id, int indent, std::string* out) {
  const PhysOp& op = plan.ops[id];
  out->append(indent, ' ');
  *out += OpKindName(op.kind);
  *out += "#" + std::to_string(op.id);
  if (!op.relation.empty()) *out += " " + op.relation;
  if (op.kind == OpKind::kSelect) *out += " " + op.predicate.ToString();
  if (op.kind == OpKind::kAggregate && op.merge_partials) *out += " (merge)";
  *out += "\n";
  for (int32_t c : op.children) PrintOp(plan, c, indent + 2, out);
}
}  // namespace

std::string PhysicalPlan::ToString() const {
  std::string out;
  PrintOp(*this, root, 0, &out);
  return out;
}

}  // namespace orchestra::query
