// Physical query plans. A plan is a tree of the Table I operators; it is
// serialized and disseminated to every node in the routing snapshot together
// with the snapshot itself (§V-A). Leaf scans resolve their versioned page
// lists at the initiator (via relation coordinators) so that every node sees
// one consistent epoch of every relation.
#ifndef ORCHESTRA_QUERY_PLAN_H_
#define ORCHESTRA_QUERY_PLAN_H_

#include <string>
#include <vector>

#include "query/expr.h"
#include "storage/page.h"
#include "storage/service.h"

namespace orchestra::query {

/// Operator kinds, directly mirroring Table I. (Select, Project, and
/// Compute-function are distinct pipelined operators; Rehash and Ship are
/// the network boundaries.)
enum class OpKind : uint8_t {
  kScan = 0,          // distributed scan: index nodes + data storage nodes
  kCoveringScan = 1,  // index-only scan: key attributes from the index pages
  kSelect = 2,
  kProject = 3,
  kCompute = 4,       // scalar function evaluation
  kHashJoin = 5,      // pipelined (symmetric) hash join
  kAggregate = 6,     // blocking hash aggregation, supports re-aggregation
  kRehash = 7,
  kShip = 8,
};

const char* OpKindName(OpKind k);

struct PhysOp {
  OpKind kind = OpKind::kScan;
  int32_t id = -1;
  std::vector<int32_t> children;

  // kScan / kCoveringScan
  std::string relation;
  storage::KeyFilter key_filter;
  /// Scan a replicate-everywhere relation fully at every node (broadcast
  /// join input) instead of partition-by-partition.
  bool broadcast_local = false;

  // kSelect
  Expr predicate;

  // kProject
  std::vector<int32_t> columns;

  // kCompute: output row = one value per expression
  std::vector<Expr> exprs;

  // kHashJoin (children = [left, right]); output = left columns ++ right
  std::vector<int32_t> left_keys, right_keys;

  // kAggregate: output = group columns ++ aggregate values
  std::vector<int32_t> group_cols;
  std::vector<AggSpec> aggs;
  /// True when inputs are partial aggregates to re-aggregate (Table I).
  bool merge_partials = false;

  // kRehash
  std::vector<int32_t> hash_cols;

  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, PhysOp* out);
};

/// Work the initiator performs on collected rows after all Ships finish:
/// re-aggregation of partials, post-computation, sort, and limit. Pure
/// function of the (taint-filtered) result buffer, which is what makes
/// recovery at the initiator a simple purge-and-recompute.
struct FinalStage {
  bool has_agg = false;
  std::vector<int32_t> group_cols;
  std::vector<AggSpec> aggs;  // in merge mode over shipped partials

  bool has_post = false;
  std::vector<Expr> post_exprs;

  struct SortKey {
    int32_t col = 0;
    bool asc = true;
  };
  std::vector<SortKey> sort;
  int64_t limit = -1;

  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, FinalStage* out);

  /// Applies this stage to raw shipped rows.
  std::vector<Tuple> Apply(const std::vector<Tuple>& rows) const;
};

struct PhysicalPlan {
  std::vector<PhysOp> ops;  // ops[i].id == i
  int32_t root = -1;        // must be a kShip
  FinalStage final_stage;

  const PhysOp& op(int32_t id) const { return ops[id]; }
  /// Parent op id of each op (-1 for root), derived from children lists.
  std::vector<int32_t> ParentIds() const;
  /// Ids of scan leaves.
  std::vector<int32_t> ScanOpIds() const;
  Status Validate() const;

  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, PhysicalPlan* out);
  std::string ToString() const;
};

}  // namespace orchestra::query

#endif  // ORCHESTRA_QUERY_PLAN_H_
