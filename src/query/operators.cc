#include "query/operators.h"

#include "common/log.h"
#include "hash/sha1.h"

namespace orchestra::query {

void Operator::OnChildEos(size_t child_idx) {
  ORC_CHECK(child_idx < child_eos_.size(), "bad child index");
  child_eos_[child_idx] = true;
  for (bool eos : child_eos_) {
    if (!eos) return;
  }
  OnAllChildrenEos();
}

void Operator::ResetForPhase() {
  std::fill(child_eos_.begin(), child_eos_.end(), false);
  eos_propagated_ = false;
}

void ScanOp::Consume(size_t, BlockRow) {
  ORC_CHECK(false, "scan is a leaf; rows are injected by the scan driver");
}

void SelectOp::Consume(size_t, BlockRow row) {
  cx_->charge(cx_->costs->predicate_eval_us);
  if (def_->predicate.EvalBool(row.tuple)) EmitUp(std::move(row));
}

void ProjectOp::Consume(size_t, BlockRow row) {
  cx_->charge(cx_->costs->project_us);
  Tuple out;
  out.reserve(def_->columns.size());
  for (int32_t c : def_->columns) out.push_back(row.tuple[c]);
  row.tuple = std::move(out);
  EmitUp(std::move(row));
}

void ComputeOp::Consume(size_t, BlockRow row) {
  cx_->charge(cx_->costs->predicate_eval_us * static_cast<double>(def_->exprs.size()));
  Tuple out;
  out.reserve(def_->exprs.size());
  for (const Expr& e : def_->exprs) out.push_back(e.Eval(row.tuple));
  row.tuple = std::move(out);
  EmitUp(std::move(row));
}

std::string HashJoinOp::KeyOf(const Tuple& t, const std::vector<int32_t>& cols) const {
  Writer w;
  for (int32_t c : cols) t[c].EncodeTo(&w);
  return w.Release();
}

void HashJoinOp::Consume(size_t child_idx, BlockRow row) {
  ORC_CHECK(child_idx < 2, "join has two children");
  const auto& my_keys = (child_idx == 0) ? def_->left_keys : def_->right_keys;
  const auto& other_keys = (child_idx == 0) ? def_->right_keys : def_->left_keys;
  (void)other_keys;
  std::string key = KeyOf(row.tuple, my_keys);
  cx_->charge(cx_->costs->hash_build_us);

  // Probe the opposite side first, then insert (symmetric hash join).
  auto& other = sides_[1 - child_idx];
  auto [lo, hi] = other.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    cx_->charge(cx_->costs->hash_probe_us);
    const BlockRow& match = it->second;
    BlockRow out;
    const Tuple& left = (child_idx == 0) ? row.tuple : match.tuple;
    const Tuple& right = (child_idx == 0) ? match.tuple : row.tuple;
    out.tuple.reserve(left.size() + right.size());
    out.tuple.insert(out.tuple.end(), left.begin(), left.end());
    out.tuple.insert(out.tuple.end(), right.begin(), right.end());
    out.taint = row.taint;
    out.taint.UnionWith(match.taint);
    EmitUp(std::move(out));
  }
  sides_[child_idx].emplace(std::move(key), std::move(row));
}

void HashJoinOp::PurgeTainted() {
  for (auto& side : sides_) {
    for (auto it = side.begin(); it != side.end();) {
      if (it->second.taint.Intersects(cx_->failed)) {
        it = side.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void AggregateOp::Consume(size_t, BlockRow row) {
  cx_->charge(cx_->costs->agg_update_us);
  Writer kw;
  for (int32_t c : def_->group_cols) row.tuple[c].EncodeTo(&kw);
  auto [git, inserted] = groups_.try_emplace(kw.data());
  Group& g = git->second;
  if (inserted) {
    for (int32_t c : def_->group_cols) g.group_vals.push_back(row.tuple[c]);
  }
  auto [sit, sub_inserted] = g.subs.try_emplace(row.taint);
  SubGroup& sub = sit->second;
  if (sub_inserted) {
    for (const AggSpec& a : def_->aggs) sub.states.emplace_back(a.fn);
  }
  for (size_t i = 0; i < def_->aggs.size(); ++i) {
    const AggSpec& a = def_->aggs[i];
    if (def_->merge_partials) {
      Value v = a.has_arg ? a.arg.Eval(row.tuple) : Value(int64_t{1});
      sub.states[i].Merge(v);
    } else if (a.has_arg) {
      sub.states[i].Update(a.arg.Eval(row.tuple));
    } else {
      sub.states[i].UpdateCountStar();
    }
  }
}

void AggregateOp::OnAllChildrenEos() {
  for (auto& [key, g] : groups_) {
    for (auto& [taint, sub] : g.subs) {
      if (sub.emitted) continue;
      BlockRow out;
      out.tuple = g.group_vals;
      for (const AggState& s : sub.states) out.tuple.push_back(s.Finish());
      out.taint = taint;
      sub.emitted = true;
      EmitUp(std::move(out));
    }
  }
  PropagateEos();
}

void AggregateOp::PurgeTainted() {
  for (auto git = groups_.begin(); git != groups_.end();) {
    Group& g = git->second;
    for (auto sit = g.subs.begin(); sit != g.subs.end();) {
      if (sit->first.Intersects(cx_->failed)) {
        sit = g.subs.erase(sit);
      } else {
        ++sit;
      }
    }
    if (g.subs.empty()) {
      git = groups_.erase(git);
    } else {
      ++git;
    }
  }
}

void RehashOp::Consume(size_t, BlockRow row) {
  cx_->route(def_->id, std::move(row));
}

void ShipOp::Consume(size_t, BlockRow row) { cx_->ship(std::move(row)); }

std::unique_ptr<Operator> MakeOperator(const PhysOp* def, ExecContext* cx) {
  switch (def->kind) {
    case OpKind::kScan:
    case OpKind::kCoveringScan:
      return std::make_unique<ScanOp>(def, cx);
    case OpKind::kSelect:
      return std::make_unique<SelectOp>(def, cx);
    case OpKind::kProject:
      return std::make_unique<ProjectOp>(def, cx);
    case OpKind::kCompute:
      return std::make_unique<ComputeOp>(def, cx);
    case OpKind::kHashJoin:
      return std::make_unique<HashJoinOp>(def, cx);
    case OpKind::kAggregate:
      return std::make_unique<AggregateOp>(def, cx);
    case OpKind::kRehash:
      return std::make_unique<RehashOp>(def, cx);
    case OpKind::kShip:
      return std::make_unique<ShipOp>(def, cx);
  }
  ORC_CHECK(false, "unknown operator kind");
  return nullptr;
}

HashId RowHash(const Tuple& t, const std::vector<int32_t>& cols) {
  // Matches storage::TupleKeyHash on the same values: a relation partitioned
  // on its key attributes is already co-partitioned with a rehash on those
  // values, so the optimizer can skip one side's rehash (Fig. 6).
  std::string kb;
  for (int32_t c : cols) t[c].EncodeOrdered(&kb);
  return storage::TupleKeyHash(kb);
}

}  // namespace orchestra::query
