#include "query/service.h"

#include <algorithm>

#include "common/log.h"

namespace orchestra::query {

namespace {
constexpr size_t kMaxPendingPerQuery = 4096;
constexpr size_t kMaxAbortedTracked = 1024;

// Query ids are (initiator << kQueryInitiatorShift) | sequence, so the
// initiator of any query is recoverable from the id alone.
constexpr int kQueryInitiatorShift = 40;

DynamicBitset SingletonTaint(size_t bits, net::NodeId node) {
  DynamicBitset b(bits);
  if (node < bits) b.Set(node);
  return b;
}
}  // namespace

QueryService::QueryService(net::NodeHost* host, storage::StorageService* storage,
                           overlay::GossipService* gossip,
                           std::shared_ptr<storage::SnapshotBoard> board)
    : host_(host), storage_(storage), gossip_(gossip), board_(std::move(board)) {
  host_->Register(net::ServiceId::kQuery, this);
}

// ===========================================================================
// Initiator: Execute / dissemination / collection

void QueryService::Execute(const PhysicalPlan& plan, storage::Epoch epoch,
                           QueryOptions options, Callback cb) {
  Status valid = plan.Validate();
  if (!valid.ok()) {
    cb(valid, {});
    return;
  }
  if (epoch == 0) epoch = gossip_->epoch();

  auto root = std::make_unique<Root>();
  root->query_id =
      (static_cast<uint64_t>(node()) << kQueryInitiatorShift) | next_query_seq_++;
  root->plan = plan;
  root->epoch = epoch;
  root->options = options;
  root->snapshot = board_->current;
  root->table = root->snapshot;
  root->cb = std::move(cb);
  root->started_at = host_->network()->simulator()->now();
  size_t bits = 0;
  for (const auto& m : root->snapshot.members()) {
    bits = std::max<size_t>(bits, m.node + 1);
  }
  root->failed_bits = DynamicBitset(bits);
  uint64_t qid = root->query_id;
  Root& ref = *root;
  roots_[qid] = std::move(root);

  // Resolve every scan's coordinator record at the chosen epoch; this is what
  // pins the query to one consistent version of the database (§IV).
  auto scan_ids = ref.plan.ScanOpIds();
  if (scan_ids.empty()) {
    FinishRoot(ref, Status::InvalidArgument("plan has no scans"));
    return;
  }
  auto remaining = std::make_shared<size_t>(scan_ids.size());
  auto failed = std::make_shared<Status>();
  for (int32_t op : scan_ids) {
    const std::string& rel = ref.plan.op(op).relation;
    storage_->GetCoordinator(
        rel, epoch,
        [this, qid, op, remaining, failed](Status st, storage::CoordinatorRecord rec) {
          Root* live = FindRoot(qid);
          if (live == nullptr) return;
          if (!st.ok() && failed->ok()) *failed = st;
          if (st.ok()) live->bindings[op] = std::move(rec);
          if (--*remaining == 0) {
            if (!failed->ok()) {
              FinishRoot(*live, *failed);
              return;
            }
            DisseminatePlan(*live);
          }
        });
  }
}

void QueryService::DisseminatePlan(Root& root) {
  Writer w;
  w.PutU64(root.query_id);
  w.PutU32(node());
  w.PutVarint64(root.epoch);
  w.PutBool(root.options.provenance);
  w.PutVarint32(root.options.block_rows);
  root.table.EncodeTo(&w);
  root.plan.EncodeTo(&w);
  w.PutVarint32(static_cast<uint32_t>(root.bindings.size()));
  for (const auto& [op, rec] : root.bindings) {
    w.PutVarint32(static_cast<uint32_t>(op));
    rec.EncodeTo(&w);
  }
  std::string payload = w.Release();
  for (net::NodeId m : LiveMembers(root)) {
    SendTo(m, kPlan, payload);
  }
  if (root.options.enable_ping && !root.ping_timer_armed) {
    root.ping_timer_armed = true;
    uint64_t qid = root.query_id;
    host_->network()->RunOnNode(
        node(), host_->network()->simulator()->now() + root.options.ping_interval_us,
        [this, qid] { PingTick(qid); });
  }
}

std::vector<net::NodeId> QueryService::LiveMembers(const Root& root) const {
  std::vector<net::NodeId> live;
  for (const auto& m : root.table.members()) live.push_back(m.node);
  return live;
}

std::vector<net::NodeId> QueryService::LiveMembers(const Exec& ex) const {
  std::vector<net::NodeId> live;
  for (const auto& m : ex.table.members()) live.push_back(m.node);
  return live;
}

void QueryService::HandleShipBlock(net::NodeId /*from*/, const std::string& payload) {
  TupleBlock block;
  if (!TupleBlock::Decode(payload, &block).ok()) return;
  Root* root = FindRoot(block.query_id);
  if (root == nullptr) return;
  ChargeBlockCosts(block);
  for (BlockRow& row : block.rows) {
    if (row.taint.Intersects(root->failed_bits)) {
      counters_.rows_dropped_tainted += 1;
      continue;
    }
    root->results.push_back(std::move(row));
  }
}

void QueryService::HandleShipEos(net::NodeId from, Reader* r) {
  uint64_t qid;
  uint32_t phase;
  if (!r->GetU64(&qid).ok() || !r->GetVarint32(&phase).ok()) return;
  Root* root = FindRoot(qid);
  if (root == nullptr) return;
  uint32_t& cur = root->ship_eos_phase[from];
  cur = std::max(cur, phase);
  CheckRootDone(*root);
}

void QueryService::CheckRootDone(Root& root) {
  for (net::NodeId m : LiveMembers(root)) {
    auto it = root.ship_eos_phase.find(m);
    if (it == root.ship_eos_phase.end() || it->second < root.phase) return;
  }
  FinishRoot(root, Status::OK());
}

void QueryService::FinishRoot(Root& root, Status st) {
  uint64_t qid = root.query_id;
  QueryResult result;
  if (st.ok()) {
    std::vector<Tuple> raw;
    raw.reserve(root.results.size());
    for (BlockRow& r : root.results) raw.push_back(std::move(r.tuple));
    result.rows = root.plan.final_stage.Apply(raw);
  }
  result.execution_us = host_->network()->simulator()->now() - root.started_at;
  result.recoveries = root.recoveries;
  result.restarts = root.restarts;
  result.failures_handled = root.failed;

  // Tell workers to GC their per-query state.
  Writer w;
  w.PutU64(qid);
  for (net::NodeId m : LiveMembers(root)) SendTo(m, kAbort, w.data());

  Callback cb = std::move(root.cb);
  roots_.erase(qid);
  MarkAborted(qid);
  cb(st, std::move(result));
}

void QueryService::HandleSuspect(Root& root, net::NodeId suspect) {
  if (!root.table.Contains(suspect)) return;
  if (std::find(root.failed.begin(), root.failed.end(), suspect) != root.failed.end()) {
    return;
  }
  root.failed.push_back(suspect);
  if (suspect < root.failed_bits.size()) root.failed_bits.Set(suspect);

  switch (root.options.recovery) {
    case QueryOptions::RecoveryMode::kNone:
      FinishRoot(root, Status::Unavailable("node failed during query"));
      return;

    case QueryOptions::RecoveryMode::kRestart: {
      // Abort everywhere and run the whole query again over the remaining
      // nodes — same routing-table derivation as incremental recovery (§VI-E).
      root.restarts += 1;
      Writer w;
      w.PutU64(root.query_id);
      root.table = root.table.ReassignFailed({suspect}, storage_->replication(),
                                             root.table.version() + 1);
      for (net::NodeId m : LiveMembers(root)) SendTo(m, kAbort, w.data());
      MarkAborted(root.query_id);

      uint64_t old_id = root.query_id;
      uint64_t new_id =
          (static_cast<uint64_t>(node()) << kQueryInitiatorShift) | next_query_seq_++;
      auto node_handle = roots_.extract(old_id);
      node_handle.key() = new_id;
      roots_.insert(std::move(node_handle));
      Root& fresh = *roots_[new_id];
      fresh.query_id = new_id;
      fresh.phase = 0;
      fresh.results.clear();
      fresh.ship_eos_phase.clear();
      // The old ping timer dies with the old query id; let DisseminatePlan
      // arm a fresh one for the new id.
      fresh.ping_timer_armed = false;
      DisseminatePlan(fresh);
      return;
    }

    case QueryOptions::RecoveryMode::kIncremental: {
      // §V-D stage 1: reassign the failed ranges among live replicas.
      root.recoveries += 1;
      root.phase += 1;
      root.table = root.table.ReassignFailed({suspect}, storage_->replication(),
                                             root.table.version() + 1);
      // Purge tainted rows already collected.
      auto& results = root.results;
      results.erase(std::remove_if(results.begin(), results.end(),
                                   [&root](const BlockRow& r) {
                                     return r.taint.Intersects(root.failed_bits);
                                   }),
                    results.end());
      Writer w;
      w.PutU64(root.query_id);
      w.PutVarint32(root.phase);
      w.PutVarint32(static_cast<uint32_t>(root.failed.size()));
      for (net::NodeId f : root.failed) w.PutU32(f);
      root.table.EncodeTo(&w);
      for (net::NodeId m : LiveMembers(root)) SendTo(m, kRecover, w.data());
      return;
    }
  }
}

void QueryService::PingTick(uint64_t query_id) {
  Root* root = FindRoot(query_id);
  if (root == nullptr) return;
  root->ping_round += 1;
  Writer w;
  w.PutU64(query_id);
  w.PutU64(root->ping_round);
  std::vector<net::NodeId> suspects;
  for (net::NodeId m : LiveMembers(*root)) {
    if (m == node()) continue;
    SendTo(m, kPing, w.data());
    uint64_t last = root->last_pong_round.count(m) ? root->last_pong_round[m] : 0;
    if (root->ping_round > last &&
        root->ping_round - last >
            static_cast<uint64_t>(root->options.ping_miss_threshold)) {
      suspects.push_back(m);
    }
  }
  for (net::NodeId s : suspects) {
    Root* again = FindRoot(query_id);
    if (again == nullptr) return;
    HandleSuspect(*again, s);
  }
  // HandleSuspect may have finished (or restarted) the query; `root` is only
  // valid if the id still resolves.
  if (Root* live = FindRoot(query_id)) {
    host_->network()->RunOnNode(
        node(),
        host_->network()->simulator()->now() + live->options.ping_interval_us,
        [this, query_id] { PingTick(query_id); });
  }
}

// ===========================================================================
// Message dispatch

void QueryService::OnMessage(net::NodeId from, uint16_t code,
                             const std::string& payload) {
  Reader r(payload);
  switch (code) {
    case kPlan:
      HandlePlan(from, payload);
      return;
    case kDataBlock:
      HandleDataBlock(from, payload);
      return;
    case kBlockAck:
      HandleBlockAck(from, &r);
      return;
    case kEosMarker:
      HandleEosMarker(from, &r);
      return;
    case kScanPartDone:
      HandleScanPartDone(from, &r);
      return;
    case kQueryFetch:
      HandleQueryFetch(from, &r);
      return;
    case kShipBlock:
      HandleShipBlock(from, payload);
      return;
    case kShipEos:
      HandleShipEos(from, &r);
      return;
    case kNodeSuspect: {
      uint64_t qid;
      uint32_t suspect;
      if (!r.GetU64(&qid).ok() || !r.GetU32(&suspect).ok()) return;
      if (Root* root = FindRoot(qid)) HandleSuspect(*root, suspect);
      return;
    }
    case kRecover:
      HandleRecover(from, payload);
      return;
    case kAbort:
      HandleAbort(&r);
      return;
    case kPing: {
      uint64_t qid, round;
      if (!r.GetU64(&qid).ok() || !r.GetU64(&round).ok()) return;
      Writer w;
      w.PutU64(qid);
      w.PutU64(round);
      SendTo(from, kPong, w.Release());
      return;
    }
    case kPong: {
      uint64_t qid, round;
      if (!r.GetU64(&qid).ok() || !r.GetU64(&round).ok()) return;
      if (Root* root = FindRoot(qid)) {
        uint64_t& last = root->last_pong_round[from];
        last = std::max(last, round);
      }
      return;
    }
  }
}

void QueryService::OnConnectionDrop(net::NodeId peer) {
  dropped_peers_.insert(peer);
  // Buffered pre-plan messages that can never be replayed are released now
  // instead of being held for the deployment's lifetime: everything buffered
  // for a query whose initiator died (its kPlan will never arrive), and
  // everything the failed peer itself sent.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if ((it->first >> kQueryInitiatorShift) == peer) {
      // Mark it aborted too: peers that have not yet observed the drop keep
      // shipping blocks for this query, and they must not be re-buffered.
      MarkAborted(it->first);
      it = pending_.erase(it);
      continue;
    }
    auto& msgs = it->second;
    msgs.erase(std::remove_if(msgs.begin(), msgs.end(),
                              [peer](const auto& m) { return std::get<0>(m) == peer; }),
               msgs.end());
    if (msgs.empty()) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  // Initiator: direct detection via the dropped TCP connection (§V-A).
  std::vector<uint64_t> root_ids;
  for (auto& [qid, root] : roots_) root_ids.push_back(qid);
  for (uint64_t qid : root_ids) {
    if (Root* root = FindRoot(qid)) HandleSuspect(*root, peer);
  }
  // Worker: report upstream failures to the query initiator (§V-C), or give
  // up if the initiator itself died.
  std::vector<uint64_t> exec_ids;
  for (auto& [qid, ex] : execs_) exec_ids.push_back(qid);
  for (uint64_t qid : exec_ids) {
    Exec* ex = FindExec(qid);
    if (ex == nullptr) continue;
    if (ex->initiator == peer) {
      execs_.erase(qid);
      MarkAborted(qid);
      continue;
    }
    if (ex->initiator == node()) continue;  // the Root path handles it
    if (ex->table.Contains(peer)) {
      Writer w;
      w.PutU64(qid);
      w.PutU32(peer);
      SendTo(ex->initiator, kNodeSuspect, w.Release());
    }
  }
}

QueryService::Exec* QueryService::FindExec(uint64_t query_id) {
  auto it = execs_.find(query_id);
  return it == execs_.end() ? nullptr : it->second.get();
}

QueryService::Root* QueryService::FindRoot(uint64_t query_id) {
  auto it = roots_.find(query_id);
  return it == roots_.end() ? nullptr : it->second.get();
}

void QueryService::BufferPending(uint64_t query_id, net::NodeId from, uint16_t code,
                                 const std::string& payload) {
  if (aborted_.count(query_id)) return;
  // A query whose initiator's connection has dropped can never deliver its
  // plan here; messages for it (e.g. shuffle blocks from a worker that has
  // not yet observed the drop) would otherwise be buffered forever.
  auto initiator = static_cast<net::NodeId>(query_id >> kQueryInitiatorShift);
  if (dropped_peers_.count(initiator)) return;
  auto& vec = pending_[query_id];
  if (vec.size() < kMaxPendingPerQuery) vec.emplace_back(from, code, payload);
}

// ===========================================================================
// Worker: plan instantiation and scans

void QueryService::HandlePlan(net::NodeId /*from*/, const std::string& payload) {
  Reader r(payload);
  auto ex = std::make_unique<Exec>();
  uint64_t qid;
  if (!r.GetU64(&qid).ok()) return;
  ex->query_id = qid;
  uint32_t initiator;
  if (!r.GetU32(&initiator).ok()) return;
  ex->initiator = initiator;
  uint64_t epoch;
  if (!r.GetVarint64(&epoch).ok()) return;
  ex->epoch = epoch;
  if (!r.GetBool(&ex->provenance).ok()) return;
  if (!r.GetVarint32(&ex->block_rows).ok()) return;
  auto snap = overlay::RoutingSnapshot::Decode(&r);
  if (!snap.ok()) return;
  ex->snapshot = std::move(snap).value();
  ex->table = ex->snapshot;
  ex->prev_table = ex->snapshot;
  if (!PhysicalPlan::DecodeFrom(&r, &ex->plan).ok()) return;
  uint32_t n_bindings;
  if (!r.GetVarint32(&n_bindings).ok()) return;
  for (uint32_t i = 0; i < n_bindings; ++i) {
    uint32_t op;
    storage::CoordinatorRecord rec;
    if (!r.GetVarint32(&op).ok()) return;
    if (!storage::CoordinatorRecord::DecodeFrom(&r, &rec).ok()) return;
    ex->bindings[static_cast<int32_t>(op)] = std::move(rec);
  }

  // Execution context shared by this node's operator instances.
  size_t bits = 0;
  for (const auto& m : ex->snapshot.members()) bits = std::max<size_t>(bits, m.node + 1);
  ex->cx.self = node();
  ex->cx.taint_bits = ex->provenance ? bits : 0;
  ex->cx.phase = 0;
  ex->cx.failed = DynamicBitset(bits);
  ex->cx.costs = &host_->network()->costs();
  ex->cx.charge = [this](double us) { host_->network()->ChargeCpu(node(), us); };
  Exec* raw = ex.get();
  ex->cx.route = [this, raw](int32_t op, BlockRow row) {
    RouteRow(*raw, op, std::move(row), /*count_cache=*/true);
  };
  ex->cx.ship = [this, raw](BlockRow row) { ShipRow(*raw, std::move(row)); };
  ex->cx.rehash_child_eos = [this, raw](int32_t op) {
    RehashState& rs = raw->rehash[op];
    rs.child_eos = true;
    FlushAllRehash(*raw, op);
    TryBroadcastRehashEos(*raw, op);
  };
  ex->cx.ship_child_eos = [this, raw]() { OnShipChildEos(*raw); };

  // Instantiate operators and wire parents.
  ex->parents = ex->plan.ParentIds();
  ex->ops.resize(ex->plan.ops.size());
  for (const PhysOp& def : ex->plan.ops) {
    ex->ops[def.id] = MakeOperator(&ex->plan.ops[def.id], &ex->cx);
  }
  for (const PhysOp& def : ex->plan.ops) {
    for (size_t c = 0; c < def.children.size(); ++c) {
      ex->ops[def.children[c]]->SetParent(ex->ops[def.id].get(), c);
    }
  }
  for (const PhysOp& def : ex->plan.ops) {
    if (def.kind == OpKind::kRehash) ex->rehash[def.id];
  }

  execs_[qid] = std::move(ex);
  StartExec(*raw);

  // Replay any messages that raced ahead of the plan.
  auto pending = pending_.find(qid);
  if (pending != pending_.end()) {
    auto msgs = std::move(pending->second);
    pending_.erase(pending);
    for (auto& [pfrom, pcode, ppayload] : msgs) OnMessage(pfrom, pcode, ppayload);
  }
}

void QueryService::AssignScanPages(Exec& ex, int32_t scan_op,
                                   const overlay::RoutingSnapshot& table,
                                   std::deque<storage::PageDescriptor>* out) const {
  const PhysOp& op = ex.plan.op(scan_op);
  auto binding = ex.bindings.find(scan_op);
  if (binding == ex.bindings.end()) return;
  auto def = storage_->Relation(op.relation);
  bool replicated = def.ok() && def->replicate_everywhere;
  for (const storage::PageDescriptor& desc : binding->second.pages) {
    if (op.broadcast_local || replicated) {
      // Broadcast scans read the full local replica. Partitioned scans of a
      // replicate-everywhere relation also visit every page at every node:
      // each node injects exactly the tuples it owns by placement hash, so
      // the output is hash-partitioned without any network traffic.
      out->push_back(desc);
    } else if (table.OwnerOf(desc.home()) == node()) {
      out->push_back(desc);
    }
  }
}

void QueryService::StartExec(Exec& ex) {
  for (int32_t scan_op : ex.plan.ScanOpIds()) {
    ScanState& ss = ex.scans[scan_op];
    AssignScanPages(ex, scan_op, ex.table, &ss.pending_pages);
    if (ss.pending_pages.empty()) {
      FinishScanIteration(ex, scan_op);
    } else {
      ss.chain_running = true;
      uint64_t qid = ex.query_id;
      host_->network()->RunOnNode(node(), host_->network()->simulator()->now(),
                                  [this, qid, scan_op] {
                                    DriveScanChain(qid, scan_op);
                                  });
    }
  }
}

void QueryService::DriveScanChain(uint64_t query_id, int32_t scan_op) {
  Exec* ex = FindExec(query_id);
  if (ex == nullptr) return;
  ScanState& ss = ex->scans[scan_op];
  if (ss.pending_pages.empty() && ss.pending_partial.empty()) {
    ss.chain_running = false;
    FinishScanIteration(*ex, scan_op);
    return;
  }
  ScanMode mode =
      ss.pending_pages.empty() ? ScanMode::kFailedOwnersOnly : ScanMode::kFull;
  auto& queue =
      ss.pending_pages.empty() ? ss.pending_partial : ss.pending_pages;
  storage::PageDescriptor desc = queue.front();
  queue.pop_front();

  auto page = storage_->ReadPageLocal(desc.id);
  if (page.ok()) {
    ProcessPage(*ex, scan_op, page.value(), mode);
  } else {
    // Stale local replica: fetch the page from a peer (§IV — missing state is
    // fetched, never substituted with an older version).
    ss.async_outstanding += 1;
    storage_->GetPage(desc, [this, query_id, scan_op, mode](Status st,
                                                            storage::Page p) {
      Exec* ex2 = FindExec(query_id);
      if (ex2 == nullptr) return;
      ScanState& ss2 = ex2->scans[scan_op];
      ss2.async_outstanding -= 1;
      if (st.ok()) ProcessPage(*ex2, scan_op, p, mode);
      CheckScanEos(*ex2, scan_op);
    });
  }

  // Yield the node between pages so sends interleave and failures can land
  // mid-scan.
  host_->network()->RunOnNode(node(), host_->network()->simulator()->now(),
                              [this, query_id, scan_op] {
                                DriveScanChain(query_id, scan_op);
                              });
}

void QueryService::ProcessPage(Exec& ex, int32_t scan_op, const storage::Page& page,
                               ScanMode mode) {
  const PhysOp& op = ex.plan.op(scan_op);
  const auto& costs = host_->network()->costs();
  // An id participates in a partial rescan only if its data node (under the
  // previous routing table) failed: its spillover injections were purged and
  // its fetch requests died with the node.
  // Placement hashes ride in the page (page.hashes[i] belongs to ids[i]).
  auto prev_owner_failed = [&ex](const HashId& hash) {
    net::NodeId prev = ex.prev_table.OwnerOf(hash);
    return prev < ex.cx.failed.size() && ex.cx.failed.Test(prev);
  };

  if (op.kind == OpKind::kCoveringScan) {
    if (mode == ScanMode::kFailedOwnersOnly) return;  // index-only: no spillover
    // Key attributes come straight from the index page (Table I).
    auto def = storage_->Relation(op.relation);
    if (!def.ok()) return;
    ex.cx.charge(costs.index_entry_us * static_cast<double>(page.ids.size()));
    for (const storage::TupleId& id : page.ids) {
      if (!op.key_filter.Matches(id.key_bytes)) continue;
      Tuple key_vals;
      if (!storage::DecodeTupleKey(def->schema, id.key_bytes, &key_vals).ok()) continue;
      InjectScanRow(ex, scan_op, std::move(key_vals),
                    SingletonTaint(ex.cx.taint_bits, node()));
    }
    return;
  }

  auto def = storage_->Relation(op.relation);
  if (!def.ok()) return;
  bool broadcast = op.broadcast_local;
  bool replicated = def->replicate_everywhere;
  // True broadcast scans contribute identical local state at every node;
  // nothing is lost when a node fails, so no partial rescan is needed.
  if (mode == ScanMode::kFailedOwnersOnly && broadcast) return;

  // Split the page's ids into locally-owned and remote (Algorithm 1 line 8 /
  // Table I distributed scan): remote tuples are pushed into the plan at
  // their data storage node. Ownership routes on the page-carried hashes.
  storage::Page local_part;
  local_part.desc = page.desc;
  auto take_local = [&local_part, &page](size_t i) {
    local_part.ids.push_back(page.ids[i]);
    local_part.hashes.push_back(page.hashes[i]);
  };
  std::map<net::NodeId, std::vector<size_t>> remote;
  for (size_t i = 0; i < page.ids.size(); ++i) {
    const storage::TupleId& id = page.ids[i];
    if (!op.key_filter.Matches(id.key_bytes)) continue;
    if (mode == ScanMode::kFailedOwnersOnly && !prev_owner_failed(page.hashes[i])) {
      continue;
    }
    if (broadcast) {
      take_local(i);
      continue;
    }
    net::NodeId owner = ex.table.OwnerOf(page.hashes[i]);
    if (replicated) {
      // Every node holds the data; the hash owner injects, others skip.
      if (owner == node()) take_local(i);
      continue;
    }
    if (owner == node()) {
      take_local(i);
    } else if (owner < ex.cx.failed.size() && ex.cx.failed.Test(owner)) {
      // Data owner already failed under this table: read from local replica
      // or fetch from another replica.
      take_local(i);
    } else {
      remote[owner].push_back(i);
    }
  }

  ScanState& ss = ex.scans[scan_op];
  std::vector<storage::TupleId> missing;
  if (!local_part.ids.empty()) {
    // (Partial rescans often have nothing local in a page; skipping the
    // ordered pass keeps recovery's fixed cost proportional to lost data.)
    storage_->ScanPageLocal(
        op.relation, local_part, op.key_filter,
        [this, &ex, scan_op](const storage::TupleId& /*id*/, Tuple t) {
          InjectScanRow(ex, scan_op, std::move(t),
                        SingletonTaint(ex.cx.taint_bits, node()));
        },
        &missing).ok();
  }
  for (const storage::TupleId& id : missing) {
    ss.async_outstanding += 1;
    uint64_t qid = ex.query_id;
    storage_->FetchTuple(op.relation, id, [this, qid, scan_op](Status st, Tuple t) {
      Exec* ex2 = FindExec(qid);
      if (ex2 == nullptr) return;
      ScanState& ss2 = ex2->scans[scan_op];
      ss2.async_outstanding -= 1;
      if (st.ok()) {
        InjectScanRow(*ex2, scan_op, std::move(t),
                      SingletonTaint(ex2->cx.taint_bits, node()));
      }
      CheckScanEos(*ex2, scan_op);
    });
  }

  std::string hb;  // reused 20-byte scratch: no per-id allocation
  for (auto& [owner, idxs] : remote) {
    Writer w;
    w.PutU64(ex.query_id);
    w.PutVarint32(static_cast<uint32_t>(scan_op));
    w.PutVarint32(ex.cx.phase);
    w.PutString(op.relation);
    w.PutVarint64(idxs.size());
    for (size_t i : idxs) {
      // hash(20B BE) + TupleId, so the data node reads without SHA-1.
      hb.clear();
      page.hashes[i].AppendBigEndian(&hb);
      w.PutRaw(hb.data(), hb.size());
      page.ids[i].EncodeTo(&w);
    }
    SendTo(owner, kQueryFetch, w.Release());
  }
}

void QueryService::InjectScanRow(Exec& ex, int32_t scan_op, Tuple tuple,
                                 DynamicBitset taint) {
  if (ex.cx.taint_bits > 0 && taint.Intersects(ex.cx.failed)) {
    counters_.rows_dropped_tainted += 1;
    return;
  }
  BlockRow row;
  row.tuple = std::move(tuple);
  row.taint = std::move(taint);
  static_cast<ScanOp*>(ex.ops[scan_op].get())->Inject(std::move(row));
}

void QueryService::HandleQueryFetch(net::NodeId from, Reader* r) {
  uint64_t qid;
  uint32_t scan_op, phase;
  std::string rel;
  uint64_t n;
  if (!r->GetU64(&qid).ok() || !r->GetVarint32(&scan_op).ok() ||
      !r->GetVarint32(&phase).ok() || !r->GetString(&rel).ok() ||
      !r->GetVarint64(&n).ok()) {
    return;
  }
  Exec* ex = FindExec(qid);
  if (ex == nullptr) {
    // Cannot replay a partially-consumed reader; rebuild payload.
    Writer w;
    w.PutU64(qid);
    w.PutVarint32(scan_op);
    w.PutVarint32(phase);
    w.PutString(rel);
    w.PutVarint64(n);
    for (uint64_t i = 0; i < n; ++i) {
      std::string_view hash_be20;
      storage::TupleId id;
      if (!r->GetRawView(&hash_be20, 20).ok() ||
          !storage::TupleId::DecodeFrom(r, &id).ok()) {
        return;
      }
      w.PutRaw(hash_be20.data(), hash_be20.size());
      id.EncodeTo(&w);
    }
    BufferPending(qid, from, kQueryFetch, w.Release());
    return;
  }
  const auto& costs = host_->network()->costs();
  DynamicBitset taint(ex->cx.taint_bits);
  if (ex->cx.taint_bits > 0) {
    if (from < ex->cx.taint_bits) taint.Set(from);
    if (node() < ex->cx.taint_bits) taint.Set(node());
  }
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view hash_be20;
    storage::TupleId id;
    if (!r->GetRawView(&hash_be20, 20).ok() ||
        !storage::TupleId::DecodeFrom(r, &id).ok()) {
      return;
    }
    // The wire-carried hash keys the local read directly (no SHA-1).
    auto bytes = storage_->ReadTupleBytesRaw(rel, hash_be20, id.key_bytes, id.epoch);
    Tuple t;
    bool ok = bytes.ok();
    if (ok) {
      Reader tr(bytes.value());
      ok = storage::DecodeTuple(&tr, &t).ok();
    }
    ex->cx.charge(costs.tuple_scan_us);
    if (ok) {
      InjectScanRow(*ex, static_cast<int32_t>(scan_op), std::move(t), taint);
    } else {
      ScanState& ss = ex->scans[static_cast<int32_t>(scan_op)];
      ss.async_outstanding += 1;
      storage_->FetchTuple(rel, id, [this, qid, scan_op, taint](Status st, Tuple t2) {
        Exec* ex2 = FindExec(qid);
        if (ex2 == nullptr) return;
        ScanState& ss2 = ex2->scans[static_cast<int32_t>(scan_op)];
        ss2.async_outstanding -= 1;
        if (st.ok()) {
          InjectScanRow(*ex2, static_cast<int32_t>(scan_op), std::move(t2), taint);
        }
        CheckScanEos(*ex2, static_cast<int32_t>(scan_op));
      });
    }
  }
}

void QueryService::FinishScanIteration(Exec& ex, int32_t scan_op) {
  ScanState& ss = ex.scans[scan_op];
  ss.iteration_done = true;
  if (!ss.part_done_broadcast) {
    ss.part_done_broadcast = true;
    Writer w;
    w.PutU64(ex.query_id);
    w.PutVarint32(static_cast<uint32_t>(scan_op));
    w.PutVarint32(ex.cx.phase);
    for (net::NodeId m : LiveMembers(ex)) SendTo(m, kScanPartDone, w.data());
  }
  CheckScanEos(ex, scan_op);
}

void QueryService::HandleScanPartDone(net::NodeId from, Reader* r) {
  uint64_t qid;
  uint32_t scan_op, phase;
  if (!r->GetU64(&qid).ok() || !r->GetVarint32(&scan_op).ok() ||
      !r->GetVarint32(&phase).ok()) {
    return;
  }
  Exec* ex = FindExec(qid);
  if (ex == nullptr) {
    Writer w;
    w.PutU64(qid);
    w.PutVarint32(scan_op);
    w.PutVarint32(phase);
    BufferPending(qid, from, kScanPartDone, w.Release());
    return;
  }
  ScanState& ss = ex->scans[static_cast<int32_t>(scan_op)];
  uint32_t& cur = ss.part_done_phase[from];
  cur = std::max(cur, phase);
  CheckScanEos(*ex, static_cast<int32_t>(scan_op));
}

void QueryService::CheckScanEos(Exec& ex, int32_t scan_op) {
  ScanState& ss = ex.scans[scan_op];
  if (!ss.iteration_done || ss.async_outstanding > 0) return;
  auto* scan = static_cast<ScanOp*>(ex.ops[scan_op].get());
  if (scan->eos_propagated()) return;
  // Scan barrier: every live node has finished its part for this phase, so
  // no more spillover fetches can arrive (FIFO delivery makes this safe).
  for (net::NodeId m : LiveMembers(ex)) {
    auto it = ss.part_done_phase.find(m);
    if (it == ss.part_done_phase.end() || it->second < ex.cx.phase) return;
  }
  scan->SignalEos();
}

// ===========================================================================
// Worker: rehash / ship dataflow

void QueryService::RouteRow(Exec& ex, int32_t rehash_op, BlockRow row,
                            bool count_cache) {
  const PhysOp& op = ex.plan.op(rehash_op);
  net::NodeId dest = ex.table.OwnerOf(RowHash(row.tuple, op.hash_cols));
  counters_.rows_routed += 1;
  RehashState& rs = ex.rehash[rehash_op];
  if (count_cache && ex.provenance) {
    // Output caching + provenance bookkeeping are the recovery-support
    // overhead the paper measures in §VI-E.
    ex.cx.charge(ex.cx.costs->provenance_tag_us);
    rs.cache.push_back(RehashState::CacheEntry{row, dest});
  }
  auto& buf = rs.buffers[dest];
  buf.push_back(std::move(row));
  if (buf.size() >= ex.block_rows) FlushRehash(ex, rehash_op, dest);
}

void QueryService::FlushRehash(Exec& ex, int32_t rehash_op, net::NodeId dest) {
  RehashState& rs = ex.rehash[rehash_op];
  auto it = rs.buffers.find(dest);
  if (it == rs.buffers.end() || it->second.empty()) return;
  TupleBlock block;
  block.query_id = ex.query_id;
  block.dest_op = rehash_op;
  block.phase = ex.cx.phase;
  block.seq = rs.next_seq[dest]++;
  block.sender = node();
  block.rows = std::move(it->second);
  it->second.clear();
  rs.unacked[dest].insert(block.seq);
  ChargeBlockCosts(block);
  counters_.blocks_sent += 1;
  SendTo(dest, kDataBlock, block.Encode());
}

void QueryService::FlushAllRehash(Exec& ex, int32_t rehash_op) {
  RehashState& rs = ex.rehash[rehash_op];
  std::vector<net::NodeId> dests;
  for (auto& [dest, buf] : rs.buffers) {
    if (!buf.empty()) dests.push_back(dest);
  }
  for (net::NodeId d : dests) FlushRehash(ex, rehash_op, d);
}

void QueryService::TryBroadcastRehashEos(Exec& ex, int32_t rehash_op) {
  RehashState& rs = ex.rehash[rehash_op];
  if (!rs.child_eos || rs.eos_broadcast) return;
  for (const auto& [dest, unacked] : rs.unacked) {
    if (!unacked.empty()) return;  // EOS only after all data acked (§V-B)
  }
  rs.eos_broadcast = true;
  Writer w;
  w.PutU64(ex.query_id);
  w.PutVarint32(static_cast<uint32_t>(rehash_op));
  w.PutVarint32(ex.cx.phase);
  for (net::NodeId m : LiveMembers(ex)) SendTo(m, kEosMarker, w.data());
}

void QueryService::HandleDataBlock(net::NodeId from, const std::string& payload) {
  TupleBlock block;
  if (!TupleBlock::Decode(payload, &block).ok()) return;
  Exec* ex = FindExec(block.query_id);
  if (ex == nullptr) {
    BufferPending(block.query_id, from, kDataBlock, payload);
    return;
  }
  ChargeBlockCosts(block);
  counters_.blocks_received += 1;

  int32_t parent_id = ex->parents[block.dest_op];
  ORC_CHECK(parent_id >= 0, "rehash without parent");
  Operator* parent = ex->ops[parent_id].get();
  size_t child_idx = 0;
  const auto& siblings = ex->plan.op(parent_id).children;
  for (size_t i = 0; i < siblings.size(); ++i) {
    if (siblings[i] == block.dest_op) child_idx = i;
  }
  for (BlockRow& row : block.rows) {
    if (ex->cx.taint_bits > 0) {
      if (row.taint.size() != ex->cx.taint_bits) {
        DynamicBitset resized(ex->cx.taint_bits);
        for (size_t i = 0; i < row.taint.size() && i < ex->cx.taint_bits; ++i) {
          if (row.taint.Test(i)) resized.Set(i);
        }
        row.taint = std::move(resized);
      }
      row.taint.Set(node());
      ex->cx.charge(ex->cx.costs->provenance_tag_us);
      if (row.taint.Intersects(ex->cx.failed)) {
        counters_.rows_dropped_tainted += 1;
        continue;
      }
    }
    parent->Consume(child_idx, std::move(row));
  }

  Writer w;
  w.PutU64(ex->query_id);
  w.PutVarint32(static_cast<uint32_t>(block.dest_op));
  w.PutVarint32(block.seq);
  SendTo(from, kBlockAck, w.Release());
}

void QueryService::HandleBlockAck(net::NodeId from, Reader* r) {
  uint64_t qid;
  uint32_t op, seq;
  if (!r->GetU64(&qid).ok() || !r->GetVarint32(&op).ok() || !r->GetVarint32(&seq).ok()) {
    return;
  }
  Exec* ex = FindExec(qid);
  if (ex == nullptr) return;
  RehashState& rs = ex->rehash[static_cast<int32_t>(op)];
  rs.unacked[from].erase(seq);
  TryBroadcastRehashEos(*ex, static_cast<int32_t>(op));
}

void QueryService::HandleEosMarker(net::NodeId from, Reader* r) {
  uint64_t qid;
  uint32_t op, phase;
  if (!r->GetU64(&qid).ok() || !r->GetVarint32(&op).ok() ||
      !r->GetVarint32(&phase).ok()) {
    return;
  }
  Exec* ex = FindExec(qid);
  if (ex == nullptr) {
    Writer w;
    w.PutU64(qid);
    w.PutVarint32(op);
    w.PutVarint32(phase);
    BufferPending(qid, from, kEosMarker, w.Release());
    return;
  }
  auto& marks = ex->eos_from[static_cast<int32_t>(op)];
  uint32_t& cur = marks[from];
  cur = std::max(cur, phase);
  CheckNetEos(*ex, static_cast<int32_t>(op));
}

void QueryService::CheckNetEos(Exec& ex, int32_t op) {
  if (ex.net_eos_delivered[op]) return;
  const auto& marks = ex.eos_from[op];
  for (net::NodeId m : LiveMembers(ex)) {
    auto it = marks.find(m);
    if (it == marks.end() || it->second < ex.cx.phase) return;
  }
  ex.net_eos_delivered[op] = true;
  int32_t parent_id = ex.parents[op];
  const auto& siblings = ex.plan.op(parent_id).children;
  size_t child_idx = 0;
  for (size_t i = 0; i < siblings.size(); ++i) {
    if (siblings[i] == op) child_idx = i;
  }
  ex.ops[parent_id]->OnChildEos(child_idx);
}

void QueryService::ShipRow(Exec& ex, BlockRow row) {
  counters_.rows_shipped += 1;
  ex.ship_buffer.push_back(std::move(row));
  if (ex.ship_buffer.size() >= ex.block_rows) FlushShip(ex);
}

void QueryService::FlushShip(Exec& ex) {
  if (ex.ship_buffer.empty()) return;
  TupleBlock block;
  block.query_id = ex.query_id;
  block.dest_op = ex.plan.root;
  block.phase = ex.cx.phase;
  block.seq = ex.ship_seq++;
  block.sender = node();
  block.rows = std::move(ex.ship_buffer);
  ex.ship_buffer.clear();
  ChargeBlockCosts(block);
  counters_.blocks_sent += 1;
  SendTo(ex.initiator, kShipBlock, block.Encode());
}

void QueryService::OnShipChildEos(Exec& ex) {
  if (ex.ship_eos_sent) return;
  ex.ship_eos_sent = true;
  FlushShip(ex);
  Writer w;
  w.PutU64(ex.query_id);
  w.PutVarint32(ex.cx.phase);
  SendTo(ex.initiator, kShipEos, w.Release());
}

// ===========================================================================
// Worker: recovery (§V-D stages 2-4) and teardown

void QueryService::HandleRecover(net::NodeId from, const std::string& payload) {
  Reader r(payload);
  uint64_t qid;
  uint32_t phase, n_failed;
  if (!r.GetU64(&qid).ok() || !r.GetVarint32(&phase).ok() ||
      !r.GetVarint32(&n_failed).ok()) {
    return;
  }
  std::vector<net::NodeId> failed(n_failed);
  for (auto& f : failed) {
    if (!r.GetU32(&f).ok()) return;
  }
  auto table = overlay::RoutingSnapshot::Decode(&r);
  if (!table.ok()) return;

  Exec* ex = FindExec(qid);
  if (ex == nullptr) {
    BufferPending(qid, from, kRecover, payload);
    return;
  }
  if (phase <= ex->cx.phase) return;  // stale / duplicate

  ex->prev_table = ex->table;
  const overlay::RoutingSnapshot& prev_table = ex->prev_table;
  ex->table = std::move(table).value();
  ex->cx.phase = phase;
  for (net::NodeId f : failed) {
    if (f < ex->cx.failed.size()) ex->cx.failed.Set(f);
  }

  // Stage 2: drop all state derived from the failed nodes.
  for (auto& op : ex->ops) op->PurgeTainted();
  for (auto& [op_id, rs] : ex->rehash) {
    rs.cache.erase(std::remove_if(rs.cache.begin(), rs.cache.end(),
                                  [ex](const RehashState::CacheEntry& e) {
                                    return e.row.taint.Intersects(ex->cx.failed);
                                  }),
                   rs.cache.end());
    for (auto& [dest, buf] : rs.buffers) {
      buf.erase(std::remove_if(buf.begin(), buf.end(),
                               [ex](const BlockRow& b) {
                                 return b.taint.Intersects(ex->cx.failed);
                               }),
                buf.end());
    }
    for (net::NodeId f : failed) {
      rs.unacked.erase(f);
      // Unflushed rows routed to a failed node are superseded by the cache
      // resend below (stage 4); flushing them later would wait forever for
      // an ack from a dead node.
      rs.buffers.erase(f);
    }
    rs.child_eos = false;
    rs.eos_broadcast = false;
  }
  ex->ship_buffer.erase(std::remove_if(ex->ship_buffer.begin(), ex->ship_buffer.end(),
                                       [ex](const BlockRow& b) {
                                         return b.taint.Intersects(ex->cx.failed);
                                       }),
                        ex->ship_buffer.end());
  ex->ship_eos_sent = false;

  // Re-arm EOS bookkeeping for the new phase; the EOS wave re-runs.
  for (auto& op : ex->ops) op->ResetForPhase();
  ex->net_eos_delivered.clear();

  // Stage 4: re-create data that was sent to the failed nodes' ranges, now
  // routed under the new table.
  for (auto& [op_id, rs] : ex->rehash) {
    for (auto& entry : rs.cache) {
      bool to_failed = std::find(failed.begin(), failed.end(), entry.dest) !=
                       failed.end();
      if (!to_failed) continue;
      const PhysOp& op = ex->plan.op(op_id);
      entry.dest = ex->table.OwnerOf(RowHash(entry.row.tuple, op.hash_cols));
      rs.buffers[entry.dest].push_back(entry.row);
      counters_.cache_rows_resent += 1;
      if (rs.buffers[entry.dest].size() >= ex->block_rows) {
        FlushRehash(*ex, op_id, entry.dest);
      }
    }
  }

  // Stage 3: restart leaf scans for the hash ranges inherited from the
  // failed nodes.
  for (int32_t scan_op : ex->plan.ScanOpIds()) {
    ScanState& ss = ex->scans[scan_op];
    ss.part_done_broadcast = false;
    ss.iteration_done = false;

    std::deque<storage::PageDescriptor> prev_pages, new_pages;
    AssignScanPages(*ex, scan_op, prev_table, &prev_pages);
    AssignScanPages(*ex, scan_op, ex->table, &new_pages);
    auto was_mine = [&prev_pages](const storage::PageDescriptor& d) {
      for (const auto& p : prev_pages) {
        if (p.id == d.id) return true;
      }
      return false;
    };
    for (const auto& d : new_pages) {
      if (!was_mine(d)) {
        ss.pending_pages.push_back(d);  // full rescan of inherited ranges
      } else {
        // Already scanned, but ids whose data node failed must be re-routed
        // (their pushed-into-plan copies were purged as tainted).
        ss.pending_partial.push_back(d);
      }
    }
    if (!ss.pending_pages.empty()) counters_.scans_restarted += 1;
    if (ss.pending_pages.empty() && ss.pending_partial.empty()) {
      FinishScanIteration(*ex, scan_op);
    } else if (!ss.chain_running) {
      ss.chain_running = true;
      host_->network()->RunOnNode(node(), host_->network()->simulator()->now(),
                                  [this, qid, scan_op] {
                                    DriveScanChain(qid, scan_op);
                                  });
    }
  }

  // EOS markers and part-done messages for the new phase may have overtaken
  // this recovery broadcast (they travel on different connections); re-check
  // every condition that would otherwise only fire on message arrival.
  for (const PhysOp& def : ex->plan.ops) {
    if (def.kind == OpKind::kRehash) CheckNetEos(*ex, def.id);
  }
}

void QueryService::HandleAbort(Reader* r) {
  uint64_t qid;
  if (!r->GetU64(&qid).ok()) return;
  execs_.erase(qid);
  pending_.erase(qid);
  MarkAborted(qid);
}

void QueryService::MarkAborted(uint64_t query_id) {
  // FIFO eviction: the set orders by id (initiator in the high bits), so
  // erasing *aborted_.begin() would evict by initiator number — possibly the
  // id just inserted — rather than the oldest record.
  if (aborted_.insert(query_id).second) aborted_order_.push_back(query_id);
  while (aborted_.size() > kMaxAbortedTracked) {
    aborted_.erase(aborted_order_.front());
    aborted_order_.pop_front();
  }
}

std::string QueryService::DebugString() const {
  std::string out = "QueryService@n" + std::to_string(host_->node()) + "\n";
  for (const auto& [qid, ex] : execs_) {
    out += " exec q" + std::to_string(qid) + " phase=" + std::to_string(ex->cx.phase) +
           " ship_eos_sent=" + std::to_string(ex->ship_eos_sent) + "\n";
    for (const auto& [op, ss] : ex->scans) {
      out += "  scan#" + std::to_string(op) +
             " it_done=" + std::to_string(ss.iteration_done) +
             " async=" + std::to_string(ss.async_outstanding) +
             " pend=" + std::to_string(ss.pending_pages.size()) +
             " part=" + std::to_string(ss.pending_partial.size()) +
             " eos=" + std::to_string(ex->ops[op]->eos_propagated()) + " done_from=";
      for (const auto& [n, ph] : ss.part_done_phase) {
        out += "n" + std::to_string(n) + ":" + std::to_string(ph) + " ";
      }
      out += "\n";
    }
    for (const auto& [op, rs] : ex->rehash) {
      out += "  rehash#" + std::to_string(op) +
             " child_eos=" + std::to_string(rs.child_eos) +
             " bcast=" + std::to_string(rs.eos_broadcast) + " unacked=";
      for (const auto& [d, u] : rs.unacked) {
        if (!u.empty()) {
          out += "n" + std::to_string(d) + ":{";
          for (uint32_t q : u) out += std::to_string(q) + ",";
          out += "} ";
        }
      }
      out += " marks=";
      auto it = ex->eos_from.find(op);
      if (it != ex->eos_from.end()) {
        for (const auto& [n, ph] : it->second) {
          out += "n" + std::to_string(n) + ":" + std::to_string(ph) + " ";
        }
      }
      out += "\n";
    }
  }
  for (const auto& [qid, root] : roots_) {
    out += " root q" + std::to_string(qid) + " phase=" + std::to_string(root->phase) +
           " ship_eos=";
    for (const auto& [n, ph] : root->ship_eos_phase) {
      out += "n" + std::to_string(n) + ":" + std::to_string(ph) + " ";
    }
    out += "\n";
  }
  return out;
}

void QueryService::ChargeBlockCosts(const TupleBlock& block) {
  const auto& costs = host_->network()->costs();
  double kb = static_cast<double>(block.ApproxRawBytes()) / 1024.0;
  host_->network()->ChargeCpu(
      node(), costs.marshal_per_tuple_us * static_cast<double>(block.rows.size()) +
                  (costs.marshal_per_kb_us + costs.compress_per_kb_us) * kb);
}

}  // namespace orchestra::query
