#include "query/expr.h"

#include "common/log.h"

namespace orchestra::query {

Expr Expr::Column(int32_t index) {
  Expr e;
  e.kind_ = Kind::kColumn;
  e.column_ = index;
  return e;
}

Expr Expr::Literal(Value v) {
  Expr e;
  e.kind_ = Kind::kLiteral;
  e.literal_ = std::move(v);
  return e;
}

Expr Expr::Arith(char op, Expr lhs, Expr rhs) {
  Expr e;
  e.kind_ = Kind::kArith;
  e.op_ = op;
  e.args_ = {std::move(lhs), std::move(rhs)};
  return e;
}

Expr Expr::Compare(char op, Expr lhs, Expr rhs) {
  Expr e;
  e.kind_ = Kind::kCompare;
  e.op_ = op;
  e.args_ = {std::move(lhs), std::move(rhs)};
  return e;
}

Expr Expr::And(Expr lhs, Expr rhs) {
  Expr e;
  e.kind_ = Kind::kAnd;
  e.args_ = {std::move(lhs), std::move(rhs)};
  return e;
}

Expr Expr::Or(Expr lhs, Expr rhs) {
  Expr e;
  e.kind_ = Kind::kOr;
  e.args_ = {std::move(lhs), std::move(rhs)};
  return e;
}

Expr Expr::Not(Expr inner) {
  Expr e;
  e.kind_ = Kind::kNot;
  e.args_ = {std::move(inner)};
  return e;
}

Expr Expr::Concat(std::vector<Expr> args) {
  Expr e;
  e.kind_ = Kind::kConcat;
  e.args_ = std::move(args);
  return e;
}

Value Expr::Eval(const Tuple& row) const {
  switch (kind_) {
    case Kind::kColumn:
      ORC_CHECK(column_ >= 0 && static_cast<size_t>(column_) < row.size(),
                "column " << column_ << " out of range " << row.size());
      return row[column_];
    case Kind::kLiteral:
      return literal_;
    case Kind::kArith: {
      Value a = args_[0].Eval(row), b = args_[1].Eval(row);
      if (a.is_null() || b.is_null()) return Value::Null();
      if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
        int64_t x = a.AsInt64(), y = b.AsInt64();
        switch (op_) {
          case '+': return Value(x + y);
          case '-': return Value(x - y);
          case '*': return Value(x * y);
          case '/': return y == 0 ? Value::Null() : Value(x / y);
        }
      } else {
        double x = a.NumericValue(), y = b.NumericValue();
        switch (op_) {
          case '+': return Value(x + y);
          case '-': return Value(x - y);
          case '*': return Value(x * y);
          case '/': return y == 0 ? Value::Null() : Value(x / y);
        }
      }
      return Value::Null();
    }
    case Kind::kCompare: {
      Value a = args_[0].Eval(row), b = args_[1].Eval(row);
      if (a.is_null() || b.is_null()) return Value(int64_t{0});
      int c = a.Compare(b);
      bool result = false;
      switch (op_) {
        case '<': result = c < 0; break;
        case 'L': result = c <= 0; break;
        case '=': result = c == 0; break;
        case '!': result = c != 0; break;
        case 'G': result = c >= 0; break;
        case '>': result = c > 0; break;
      }
      return Value(int64_t{result ? 1 : 0});
    }
    case Kind::kAnd:
      return Value(int64_t{args_[0].EvalBool(row) && args_[1].EvalBool(row) ? 1 : 0});
    case Kind::kOr:
      return Value(int64_t{args_[0].EvalBool(row) || args_[1].EvalBool(row) ? 1 : 0});
    case Kind::kNot:
      return Value(int64_t{args_[0].EvalBool(row) ? 0 : 1});
    case Kind::kConcat: {
      std::string out;
      for (const Expr& a : args_) {
        Value v = a.Eval(row);
        if (v.is_null()) continue;
        if (v.type() == ValueType::kString) {
          out += v.AsString();
        } else {
          std::string s = v.ToString();
          // Strip the quotes ToString adds around strings; numerics pass through.
          out += s;
        }
      }
      return Value(std::move(out));
    }
  }
  return Value::Null();
}

bool Expr::EvalBool(const Tuple& row) const {
  Value v = Eval(row);
  if (v.is_null()) return false;
  if (v.type() == ValueType::kInt64) return v.AsInt64() != 0;
  if (v.type() == ValueType::kDouble) return v.AsDouble() != 0;
  return !v.AsString().empty();
}

void Expr::CollectColumns(std::vector<int32_t>* out) const {
  if (kind_ == Kind::kColumn) out->push_back(column_);
  for (const Expr& a : args_) a.CollectColumns(out);
}

Expr Expr::RemapColumns(const std::vector<int32_t>& mapping) const {
  Expr e = *this;
  if (e.kind_ == Kind::kColumn) {
    ORC_CHECK(static_cast<size_t>(e.column_) < mapping.size(), "remap out of range");
    e.column_ = mapping[e.column_];
  }
  for (Expr& a : e.args_) a = a.RemapColumns(mapping);
  return e;
}

void Expr::EncodeTo(Writer* w) const {
  w->PutU8(static_cast<uint8_t>(kind_));
  switch (kind_) {
    case Kind::kColumn:
      w->PutVarint32(static_cast<uint32_t>(column_));
      break;
    case Kind::kLiteral:
      literal_.EncodeTo(w);
      break;
    case Kind::kArith:
    case Kind::kCompare:
      w->PutU8(static_cast<uint8_t>(op_));
      break;
    default:
      break;
  }
  if (kind_ != Kind::kColumn && kind_ != Kind::kLiteral) {
    w->PutVarint32(static_cast<uint32_t>(args_.size()));
    for (const Expr& a : args_) a.EncodeTo(w);
  }
}

Status Expr::DecodeFrom(Reader* r, Expr* out, int depth) {
  if (depth > 64) return Status::Corruption("expr: nesting too deep");
  uint8_t kind;
  ORC_RETURN_IF_ERROR(r->GetU8(&kind));
  out->kind_ = static_cast<Kind>(kind);
  switch (out->kind_) {
    case Kind::kColumn: {
      uint32_t col;
      ORC_RETURN_IF_ERROR(r->GetVarint32(&col));
      out->column_ = static_cast<int32_t>(col);
      return Status::OK();
    }
    case Kind::kLiteral:
      return Value::DecodeFrom(r, &out->literal_);
    case Kind::kArith:
    case Kind::kCompare: {
      uint8_t op;
      ORC_RETURN_IF_ERROR(r->GetU8(&op));
      out->op_ = static_cast<char>(op);
      break;
    }
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
    case Kind::kConcat:
      break;
    default:
      return Status::Corruption("expr: bad kind");
  }
  uint32_t n;
  ORC_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 64) return Status::Corruption("expr: too many args");
  out->args_.resize(n);
  for (auto& a : out->args_) {
    ORC_RETURN_IF_ERROR(DecodeFrom(r, &a, depth + 1));
  }
  return Status::OK();
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kColumn: return "$" + std::to_string(column_);
    case Kind::kLiteral: return literal_.ToString();
    case Kind::kArith:
    case Kind::kCompare: {
      std::string op(1, op_);
      if (op_ == 'L') op = "<=";
      if (op_ == 'G') op = ">=";
      if (op_ == '!') op = "<>";
      return "(" + args_[0].ToString() + " " + op + " " + args_[1].ToString() + ")";
    }
    case Kind::kAnd: return "(" + args_[0].ToString() + " AND " + args_[1].ToString() + ")";
    case Kind::kOr: return "(" + args_[0].ToString() + " OR " + args_[1].ToString() + ")";
    case Kind::kNot: return "NOT " + args_[0].ToString();
    case Kind::kConcat: {
      std::string s = "CONCAT(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i) s += ", ";
        s += args_[i].ToString();
      }
      return s + ")";
    }
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "COUNT";
    case AggFn::kSum: return "SUM";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
  }
  return "?";
}

void AggSpec::EncodeTo(Writer* w) const {
  w->PutU8(static_cast<uint8_t>(fn));
  w->PutBool(has_arg);
  if (has_arg) arg.EncodeTo(w);
}

Status AggSpec::DecodeFrom(Reader* r, AggSpec* out) {
  uint8_t fn;
  ORC_RETURN_IF_ERROR(r->GetU8(&fn));
  out->fn = static_cast<AggFn>(fn);
  ORC_RETURN_IF_ERROR(r->GetBool(&out->has_arg));
  if (out->has_arg) {
    ORC_RETURN_IF_ERROR(Expr::DecodeFrom(r, &out->arg));
  }
  return Status::OK();
}

void AggState::Update(const Value& v) {
  switch (fn_) {
    case AggFn::kCount:
      if (!v.is_null()) count_ += 1;
      return;
    case AggFn::kSum:
      if (v.is_null()) return;
      count_ += 1;
      if (v.type() == ValueType::kDouble) {
        is_double_ = true;
        sum_d_ += v.AsDouble();
      } else {
        sum_i_ += v.AsInt64();
      }
      return;
    case AggFn::kMin:
      if (v.is_null()) return;
      if (!has_minmax_ || v.Compare(minmax_) < 0) {
        minmax_ = v;
        has_minmax_ = true;
      }
      return;
    case AggFn::kMax:
      if (v.is_null()) return;
      if (!has_minmax_ || v.Compare(minmax_) > 0) {
        minmax_ = v;
        has_minmax_ = true;
      }
      return;
  }
}

void AggState::Merge(const Value& partial) {
  if (partial.is_null()) return;
  switch (fn_) {
    case AggFn::kCount:
      count_ += partial.AsInt64();
      return;
    case AggFn::kSum:
      count_ += 1;
      if (partial.type() == ValueType::kDouble) {
        is_double_ = true;
        sum_d_ += partial.AsDouble();
      } else {
        sum_i_ += partial.AsInt64();
      }
      return;
    case AggFn::kMin:
    case AggFn::kMax:
      Update(partial);
      return;
  }
}

Value AggState::Finish() const {
  switch (fn_) {
    case AggFn::kCount:
      return Value(count_);
    case AggFn::kSum:
      if (count_ == 0) return Value::Null();
      if (is_double_) return Value(sum_d_ + static_cast<double>(sum_i_));
      return Value(sum_i_);
    case AggFn::kMin:
    case AggFn::kMax:
      return has_minmax_ ? minmax_ : Value::Null();
  }
  return Value::Null();
}

}  // namespace orchestra::query
