// Runtime operator instances (Table I). One instance of every plan operator
// runs at every node in the snapshot; intra-node edges are direct calls,
// Rehash/Ship edges cross the network (handled by the QueryService).
//
// Recovery hooks (§V-D): PurgeTainted drops state derived from failed nodes;
// ResetForPhase re-arms end-of-stream bookkeeping so the EOS wave can re-run
// in the new phase without re-emitting already-delivered results.
#ifndef ORCHESTRA_QUERY_OPERATORS_H_
#define ORCHESTRA_QUERY_OPERATORS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/block.h"
#include "query/plan.h"
#include "sim/cost_model.h"

namespace orchestra::query {

/// Per-(node, query) execution context shared by all operator instances.
struct ExecContext {
  net::NodeId self = net::kInvalidNode;
  size_t taint_bits = 0;
  uint32_t phase = 0;
  DynamicBitset failed;  // cumulative failed node set (bit index = NodeId)
  const sim::CostModel* costs = nullptr;

  /// Charges simulated CPU to this node.
  std::function<void(double)> charge;
  /// Rehash output: route a row of rehash op `op_id` to its hash destination.
  std::function<void(int32_t op_id, BlockRow row)> route;
  /// Ship output: deliver a row toward the query initiator.
  std::function<void(BlockRow row)> ship;
  /// A Rehash op's local input is exhausted (flush + ack-gate + EOS markers).
  std::function<void(int32_t op_id)> rehash_child_eos;
  /// The Ship op's local input is exhausted.
  std::function<void()> ship_child_eos;
};

class Operator {
 public:
  Operator(const PhysOp* def, ExecContext* cx)
      : def_(def), cx_(cx), child_eos_(std::max<size_t>(def->children.size(), 1), false) {}
  virtual ~Operator() = default;

  void SetParent(Operator* parent, size_t child_idx) {
    parent_ = parent;
    child_idx_in_parent_ = child_idx;
  }

  const PhysOp& def() const { return *def_; }

  /// Delivers one row from child `child_idx` (0 for unary ops).
  virtual void Consume(size_t child_idx, BlockRow row) = 0;
  /// Child `child_idx`'s stream ended (for network children this fires when
  /// EOS markers from all live senders arrived).
  virtual void OnChildEos(size_t child_idx);
  /// Drops operator state tainted by cx->failed (§V-D stage 2).
  virtual void PurgeTainted() {}
  /// Re-arms EOS state for a new recovery phase.
  virtual void ResetForPhase();

  bool eos_propagated() const { return eos_propagated_; }

 protected:
  void EmitUp(BlockRow row) {
    if (parent_ != nullptr) parent_->Consume(child_idx_in_parent_, std::move(row));
  }
  /// Called once per phase when every child stream has ended.
  virtual void OnAllChildrenEos() { PropagateEos(); }
  void PropagateEos() {
    if (eos_propagated_) return;
    eos_propagated_ = true;
    if (parent_ != nullptr) parent_->OnChildEos(child_idx_in_parent_);
  }

  const PhysOp* def_;
  ExecContext* cx_;
  Operator* parent_ = nullptr;
  size_t child_idx_in_parent_ = 0;
  std::vector<bool> child_eos_;
  bool eos_propagated_ = false;
};

/// Leaf scan (both variants). Rows are injected by the QueryService's scan
/// driver; EOS is signalled when the scan barrier for the current phase is
/// satisfied.
class ScanOp : public Operator {
 public:
  using Operator::Operator;
  void Consume(size_t, BlockRow) override;  // never called (leaf)
  void Inject(BlockRow row) { EmitUp(std::move(row)); }
  void SignalEos() { OnAllChildrenEos(); }
};

class SelectOp : public Operator {
 public:
  using Operator::Operator;
  void Consume(size_t child_idx, BlockRow row) override;
};

class ProjectOp : public Operator {
 public:
  using Operator::Operator;
  void Consume(size_t child_idx, BlockRow row) override;
};

class ComputeOp : public Operator {
 public:
  using Operator::Operator;
  void Consume(size_t child_idx, BlockRow row) override;
};

/// Pipelined (symmetric) hash join [17]: both inputs build as they arrive and
/// probe the opposite table, so the operator never blocks.
class HashJoinOp : public Operator {
 public:
  using Operator::Operator;
  void Consume(size_t child_idx, BlockRow row) override;
  void PurgeTainted() override;
  size_t state_size() const { return sides_[0].size() + sides_[1].size(); }

 private:
  std::string KeyOf(const Tuple& t, const std::vector<int32_t>& cols) const;
  std::unordered_multimap<std::string, BlockRow> sides_[2];
};

/// Blocking hash aggregation with re-aggregation support. Each group is
/// partitioned into sub-groups keyed by the contributing node set so that
/// recovery can drop exactly the tainted portion (§V-D).
class AggregateOp : public Operator {
 public:
  using Operator::Operator;
  void Consume(size_t child_idx, BlockRow row) override;
  void PurgeTainted() override;
  size_t group_count() const { return groups_.size(); }

 protected:
  void OnAllChildrenEos() override;

 private:
  struct SubGroup {
    std::vector<AggState> states;
    bool emitted = false;
  };
  struct Group {
    Tuple group_vals;
    // Ordered by taint so sub-group emission order (which feeds output
    // blocks, hence wire frames) is deterministic, not a hash artifact.
    std::map<DynamicBitset, SubGroup> subs;
  };
  std::map<std::string, Group> groups_;
};

/// Rehash: partitions its input by hash of `hash_cols` and sends rows to the
/// owning nodes under the query's routing table. Output caching, ack
/// tracking, and EOS markers live in the QueryService.
class RehashOp : public Operator {
 public:
  using Operator::Operator;
  void Consume(size_t child_idx, BlockRow row) override;

 protected:
  void OnAllChildrenEos() override { cx_->rehash_child_eos(def_->id); }
};

/// Ship: sends rows to the query initiator.
class ShipOp : public Operator {
 public:
  using Operator::Operator;
  void Consume(size_t child_idx, BlockRow row) override;

 protected:
  void OnAllChildrenEos() override { cx_->ship_child_eos(); }
};

/// Instantiates the operator for a plan node.
std::unique_ptr<Operator> MakeOperator(const PhysOp* def, ExecContext* cx);

/// Hash of the values in `cols` of `t`, for rehash routing: equal values
/// always land on the same node.
HashId RowHash(const Tuple& t, const std::vector<int32_t>& cols);

}  // namespace orchestra::query

#endif  // ORCHESTRA_QUERY_OPERATORS_H_
