// Tuple blocks: the unit of inter-node dataflow. "For performance, the query
// processor batches tuples into blocks by destination, compressing them
// (using lightweight Zip-based compression) and marshalling them in a format
// that exploits their commonalities" (§V-A). Each row carries its provenance
// node-set (the taint used for duplicate-free recovery, §V-D) and blocks
// carry the execution phase.
#ifndef ORCHESTRA_QUERY_BLOCK_H_
#define ORCHESTRA_QUERY_BLOCK_H_

#include <string>
#include <vector>

#include "common/bitset.h"
#include "net/network.h"
#include "storage/value.h"

namespace orchestra::query {

/// A tuple in flight: values plus the set of nodes that processed it or any
/// tuple used to create it.
struct BlockRow {
  storage::Tuple tuple;
  DynamicBitset taint;
};

struct TupleBlock {
  uint64_t query_id = 0;
  int32_t dest_op = -1;   // the Rehash (or Ship) op this block belongs to
  uint32_t phase = 0;
  uint32_t seq = 0;       // per (sender, dest_op, dest_node) sequence for acks
  net::NodeId sender = net::kInvalidNode;
  std::vector<BlockRow> rows;

  /// Serializes and compresses. Taints are encoded compactly; rows are
  /// concatenated before compression so shared prefixes/values deflate well.
  std::string Encode() const;
  static Status Decode(std::string_view data, TupleBlock* out);

  /// Uncompressed payload size estimate (for CPU cost accounting).
  size_t ApproxRawBytes() const;
};

}  // namespace orchestra::query

#endif  // ORCHESTRA_QUERY_BLOCK_H_
