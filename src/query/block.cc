#include "query/block.h"

#include "common/compress.h"
#include "common/log.h"
#include "common/serial.h"

namespace orchestra::query {

std::string TupleBlock::Encode() const {
  Writer body;
  body.PutU64(query_id);
  body.PutVarint32(static_cast<uint32_t>(dest_op));
  body.PutVarint32(phase);
  body.PutVarint32(seq);
  body.PutU32(sender);
  body.PutVarint64(rows.size());
  for (const BlockRow& r : rows) {
    storage::EncodeTuple(r.tuple, &body);
    r.taint.EncodeTo(&body);
  }
  return CompressBlock(body.data());
}

Status TupleBlock::Decode(std::string_view data, TupleBlock* out) {
  auto raw = UncompressBlock(data);
  ORC_RETURN_IF_ERROR(raw.status());
  Reader r(*raw);
  ORC_RETURN_IF_ERROR(r.GetU64(&out->query_id));
  uint32_t dest;
  ORC_RETURN_IF_ERROR(r.GetVarint32(&dest));
  out->dest_op = static_cast<int32_t>(dest);
  ORC_RETURN_IF_ERROR(r.GetVarint32(&out->phase));
  ORC_RETURN_IF_ERROR(r.GetVarint32(&out->seq));
  ORC_RETURN_IF_ERROR(r.GetU32(&out->sender));
  uint64_t n;
  ORC_RETURN_IF_ERROR(r.GetVarint64(&n));
  if (n > (1ull << 24)) return Status::Corruption("block: absurd row count");
  out->rows.clear();
  out->rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    BlockRow row;
    ORC_RETURN_IF_ERROR(storage::DecodeTuple(&r, &row.tuple));
    ORC_RETURN_IF_ERROR(DynamicBitset::DecodeFrom(&r, &row.taint));
    out->rows.push_back(std::move(row));
  }
  return Status::OK();
}

size_t TupleBlock::ApproxRawBytes() const {
  size_t bytes = 32;
  for (const BlockRow& r : rows) {
    bytes += 8 + r.taint.size() / 8;
    for (const auto& v : r.tuple) {
      bytes += 2;
      if (v.type() == storage::ValueType::kString) {
        bytes += v.AsString().size();
      } else {
        bytes += 8;
      }
    }
  }
  return bytes;
}

}  // namespace orchestra::query
