// Scalar expressions evaluated by the compute-function, select, and join
// operators (Table I), and aggregate specifications. Expressions serialize
// into query plans for dissemination.
#ifndef ORCHESTRA_QUERY_EXPR_H_
#define ORCHESTRA_QUERY_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"

namespace orchestra::query {

using storage::Tuple;
using storage::Value;
using storage::ValueType;

/// Expression tree. Comparison/logic operators evaluate to INT64 0/1.
class Expr {
 public:
  enum class Kind : uint8_t {
    kColumn = 0,   // input column reference
    kLiteral = 1,
    kArith = 2,    // op in {+,-,*,/}
    kCompare = 3,  // op in {<,L(<=),=,!,G(>=),>}   (! is <>)
    kAnd = 4,
    kOr = 5,
    kNot = 6,
    kConcat = 7,   // string concatenation of all args
  };

  Expr() = default;

  static Expr Column(int32_t index);
  static Expr Literal(Value v);
  static Expr Arith(char op, Expr lhs, Expr rhs);
  static Expr Compare(char op, Expr lhs, Expr rhs);
  static Expr And(Expr lhs, Expr rhs);
  static Expr Or(Expr lhs, Expr rhs);
  static Expr Not(Expr e);
  static Expr Concat(std::vector<Expr> args);

  Kind kind() const { return kind_; }
  int32_t column() const { return column_; }
  const Value& literal() const { return literal_; }
  char op() const { return op_; }
  const std::vector<Expr>& args() const { return args_; }

  /// Evaluates against a row. Null propagates through arithmetic and makes
  /// comparisons false (SQL-ish two-valued logic is enough for our plans).
  Value Eval(const Tuple& row) const;
  /// Eval + truthiness (non-null, non-zero).
  bool EvalBool(const Tuple& row) const;

  /// All column indexes referenced.
  void CollectColumns(std::vector<int32_t>* out) const;
  /// Rewrites column references through a mapping (old index -> new index).
  Expr RemapColumns(const std::vector<int32_t>& mapping) const;

  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, Expr* out, int depth = 0);
  std::string ToString() const;

 private:
  Kind kind_ = Kind::kLiteral;
  int32_t column_ = 0;
  Value literal_;
  char op_ = 0;
  std::vector<Expr> args_;
};

/// Aggregate functions; AVG is decomposed into SUM/COUNT by the planner.
enum class AggFn : uint8_t { kCount = 0, kSum = 1, kMin = 2, kMax = 3 };

const char* AggFnName(AggFn fn);

struct AggSpec {
  AggFn fn = AggFn::kCount;
  bool has_arg = false;  // COUNT(*) has none
  Expr arg;

  void EncodeTo(Writer* w) const;
  static Status DecodeFrom(Reader* r, AggSpec* out);
};

/// Running aggregate state.
class AggState {
 public:
  explicit AggState(AggFn fn) : fn_(fn) {}
  /// Accumulates one input value (ignored for COUNT(*) which counts rows).
  void Update(const Value& v);
  void UpdateCountStar() { count_ += 1; }
  /// Merges a partial result produced by Finish() at another node
  /// (re-aggregation, Table I): COUNT partials add, SUM adds, MIN/MAX fold.
  void Merge(const Value& partial);
  Value Finish() const;

 private:
  AggFn fn_;
  int64_t count_ = 0;
  bool is_double_ = false;
  int64_t sum_i_ = 0;
  double sum_d_ = 0;
  bool has_minmax_ = false;
  Value minmax_;
};

}  // namespace orchestra::query

#endif  // ORCHESTRA_QUERY_EXPR_H_
