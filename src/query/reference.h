// Reference executor: evaluates a physical plan in-process over in-memory
// relations, ignoring all distribution. Used by tests to check that the
// distributed engine returns exactly the same bag of rows (correct, complete,
// duplicate-free — the §V guarantee), and by the CDSS layer for local
// evaluation of mapping queries.
#ifndef ORCHESTRA_QUERY_REFERENCE_H_
#define ORCHESTRA_QUERY_REFERENCE_H_

#include <map>
#include <string>
#include <vector>

#include "query/plan.h"

namespace orchestra::query {

/// Relation name -> rows.
using ReferenceDatabase = std::map<std::string, std::vector<Tuple>>;

/// Runs `plan` (including its final stage) against `db`. Scans read the named
/// relations; key filters are ignored only if a relation is missing.
Result<std::vector<Tuple>> ReferenceExecute(const PhysicalPlan& plan,
                                            const ReferenceDatabase& db);

/// Multiset equality on rows (order-insensitive result comparison).
bool SameBag(const std::vector<Tuple>& a, const std::vector<Tuple>& b);

/// Multiset equality tolerating floating-point summation-order differences:
/// doubles compare equal within `rel_tol` relative error. Distributed partial
/// aggregation adds doubles in a different order than a sequential run.
bool SameBagApprox(const std::vector<Tuple>& a, const std::vector<Tuple>& b,
                   double rel_tol = 1e-9);

}  // namespace orchestra::query

#endif  // ORCHESTRA_QUERY_REFERENCE_H_
