// TPC-H workload (§VI-A): a dbgen-style generator with the spec's table
// cardinalities and the value distributions the paper's five queries (Q1,
// Q3, Q5, Q6, Q10 — the single-SQL-block subset) are sensitive to. The 8
// tables are partitioned on their key attribute ("first key attribute, if
// more than one") and Nation/Region are replicated at every node.
#ifndef ORCHESTRA_WORKLOAD_TPCH_H_
#define ORCHESTRA_WORKLOAD_TPCH_H_

#include "workload/workload.h"

namespace orchestra::workload {

struct TpchConfig {
  /// Scale factor. SF 1 = 6M lineitems; the paper used 0.25-10. Benches
  /// default far smaller (the simulator trades absolute scale for fidelity).
  double scale_factor = 0.01;
  uint64_t seed = 7;
  uint32_t num_partitions = 32;
};

/// All 8 tables with data.
std::vector<GeneratedRelation> TpchGenerate(const TpchConfig& config);

/// The paper's query set.
std::vector<std::string> TpchQueryNames();  // {"Q1","Q3","Q5","Q6","Q10"}
/// Single-block SQL for a query name ("" if unknown).
std::string TpchQuerySql(const std::string& name);

/// Day-number constants used by the generator/queries.
int64_t TpchDate(int y, int m, int d);

}  // namespace orchestra::workload

#endif  // ORCHESTRA_WORKLOAD_TPCH_H_
