// Shared workload plumbing: generated relations and a loader that publishes
// them into a deployment the way a participant would (§II).
#ifndef ORCHESTRA_WORKLOAD_WORKLOAD_H_
#define ORCHESTRA_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "deploy/deployment.h"
#include "optimizer/logical.h"
#include "query/reference.h"
#include "storage/schema.h"

namespace orchestra::workload {

struct GeneratedRelation {
  storage::RelationDef def;
  std::vector<storage::Tuple> rows;
};

/// Creates the relations and publishes all rows (in one batch per relation
/// group) via `via_node`. Returns the epoch holding the loaded snapshot.
Result<storage::Epoch> Load(deploy::Deployment* dep, size_t via_node,
                            const std::vector<GeneratedRelation>& relations);

/// Reference-executor view of generated data (for correctness checks).
query::ReferenceDatabase AsReferenceDb(const std::vector<GeneratedRelation>& rels);

/// Derives optimizer statistics from generated data.
optimizer::StatsCatalog StatsFor(const std::vector<GeneratedRelation>& rels);

}  // namespace orchestra::workload

#endif  // ORCHESTRA_WORKLOAD_WORKLOAD_H_
