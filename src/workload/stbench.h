// STBenchmark-style schema-mapping workload (§VI-A). The paper ran the
// STBenchmark instance/mapping generator (nesting depth 0) producing wide
// relations of 25-character variable-length strings, and selected five
// representative mapping scenarios:
//   Copy           — retrieve an entire 7-attribute relation
//   Select         — 6-attribute relation, simple integer inequality
//   Join           — 7-, 5-, and 9-attribute relations joined on two attrs
//   Concatenate    — 6-attribute relation; concat three attrs, keep the rest
//   Correspondence — 7-attribute relation + value correspondence table that
//                    adds an integer ID keyed by two input attributes (the
//                    Skolem-function replacement the paper describes)
#ifndef ORCHESTRA_WORKLOAD_STBENCH_H_
#define ORCHESTRA_WORKLOAD_STBENCH_H_

#include "workload/workload.h"

namespace orchestra::workload {

enum class StbScenario : int {
  kCopy = 0,
  kSelect = 1,
  kJoin = 2,
  kConcatenate = 3,
  kCorrespondence = 4,
};

constexpr StbScenario kAllStbScenarios[] = {
    StbScenario::kCopy, StbScenario::kSelect, StbScenario::kJoin,
    StbScenario::kConcatenate, StbScenario::kCorrespondence};

const char* StbScenarioName(StbScenario s);

struct StbConfig {
  uint64_t tuples_per_relation = 10000;
  uint64_t seed = 1;
  uint32_t num_partitions = 32;
  /// STBenchmark's strings are 25-character variable-length values.
  uint32_t string_len = 25;
};

/// Generates the relation(s) a scenario reads.
std::vector<GeneratedRelation> StbGenerate(StbScenario scenario,
                                           const StbConfig& config);

/// The scenario's mapping query (single-block SQL over the generated
/// relations).
std::string StbQuerySql(StbScenario scenario);

}  // namespace orchestra::workload

#endif  // ORCHESTRA_WORKLOAD_STBENCH_H_
