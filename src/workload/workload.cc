#include "workload/workload.h"

#include <set>

#include "common/log.h"

namespace orchestra::workload {

Result<storage::Epoch> Load(deploy::Deployment* dep, size_t via_node,
                            const std::vector<GeneratedRelation>& relations) {
  for (const GeneratedRelation& rel : relations) {
    ORC_RETURN_IF_ERROR(dep->CreateRelation(via_node, rel.def));
  }
  storage::UpdateBatch batch;
  for (const GeneratedRelation& rel : relations) {
    auto& updates = batch[rel.def.name];
    updates.reserve(rel.rows.size());
    for (const storage::Tuple& t : rel.rows) {
      updates.push_back(storage::Update::Insert(t));
    }
  }
  return dep->Publish(via_node, std::move(batch));
}

query::ReferenceDatabase AsReferenceDb(const std::vector<GeneratedRelation>& rels) {
  query::ReferenceDatabase db;
  for (const GeneratedRelation& rel : rels) db[rel.def.name] = rel.rows;
  return db;
}

optimizer::StatsCatalog StatsFor(const std::vector<GeneratedRelation>& rels) {
  optimizer::StatsCatalog stats;
  for (const GeneratedRelation& rel : rels) {
    optimizer::RelationStats rs;
    rs.row_count = rel.rows.size();
    double bytes = 0;
    size_t sample = std::min<size_t>(rel.rows.size(), 64);
    for (size_t i = 0; i < sample; ++i) {
      for (const auto& v : rel.rows[i]) {
        bytes += v.type() == storage::ValueType::kString
                     ? 2.0 + static_cast<double>(v.AsString().size())
                     : 9.0;
      }
    }
    rs.avg_tuple_bytes = sample > 0 ? bytes / static_cast<double>(sample) : 64;
    // Exact per-column distinct counts (cheap at generator scale); the
    // optimizer uses them to size aggregation strategies.
    rs.column_distinct.resize(rel.def.schema.arity(), 0);
    for (size_t c = 0; c < rel.def.schema.arity(); ++c) {
      std::set<std::string> uniq;
      for (const auto& row : rel.rows) {
        Writer w;
        row[c].EncodeTo(&w);
        uniq.insert(w.Release());
        if (uniq.size() > 4096) break;  // "many" is all the planner needs
      }
      rs.column_distinct[c] = uniq.size();
    }
    stats[rel.def.name] = rs;
  }
  return stats;
}

}  // namespace orchestra::workload
