#include "workload/stbench.h"

#include "common/rng.h"

namespace orchestra::workload {

using storage::ColumnDef;
using storage::RelationDef;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

const char* StbScenarioName(StbScenario s) {
  switch (s) {
    case StbScenario::kCopy: return "Copy";
    case StbScenario::kSelect: return "Select";
    case StbScenario::kJoin: return "Join";
    case StbScenario::kConcatenate: return "Concatenate";
    case StbScenario::kCorrespondence: return "Correspondence";
  }
  return "?";
}

namespace {

RelationDef WideRelation(const std::string& name, int attrs, uint32_t partitions) {
  std::vector<ColumnDef> cols;
  for (int i = 0; i < attrs; ++i) {
    cols.push_back({"a" + std::to_string(i), ValueType::kString});
  }
  RelationDef def;
  def.name = name;
  def.schema = Schema(std::move(cols), 1);
  def.num_partitions = partitions;
  return def;
}

/// Variable-length string around `len` chars (STBenchmark's values vary).
Value Str(Rng* rng, uint32_t len) {
  uint32_t n = len > 6 ? len - 5 + static_cast<uint32_t>(rng->Uniform(11)) : len;
  return Value(rng->AlphaString(n));
}

}  // namespace

std::vector<GeneratedRelation> StbGenerate(StbScenario scenario,
                                           const StbConfig& cfg) {
  Rng rng(cfg.seed * 977 + static_cast<uint64_t>(scenario));
  std::vector<GeneratedRelation> out;
  const uint64_t n = cfg.tuples_per_relation;

  auto fill_wide = [&](GeneratedRelation* rel, uint64_t rows,
                       const std::string& key_prefix) {
    size_t arity = rel->def.schema.arity();
    rel->rows.reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) {
      Tuple t;
      t.reserve(arity);
      t.push_back(Value(key_prefix + std::to_string(i)));  // unique key
      for (size_t c = 1; c < arity; ++c) t.push_back(Str(&rng, cfg.string_len));
      rel->rows.push_back(std::move(t));
    }
  };

  switch (scenario) {
    case StbScenario::kCopy: {
      GeneratedRelation rel;
      rel.def = WideRelation("stb_copy", 7, cfg.num_partitions);
      fill_wide(&rel, n, "c");
      out.push_back(std::move(rel));
      break;
    }
    case StbScenario::kSelect: {
      // 6 attributes, one integer used by the inequality predicate.
      GeneratedRelation rel;
      std::vector<ColumnDef> cols = {{"a0", ValueType::kString},
                                     {"num", ValueType::kInt64},
                                     {"a2", ValueType::kString},
                                     {"a3", ValueType::kString},
                                     {"a4", ValueType::kString},
                                     {"a5", ValueType::kString}};
      rel.def.name = "stb_select";
      rel.def.schema = Schema(std::move(cols), 1);
      rel.def.num_partitions = cfg.num_partitions;
      rel.rows.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        Tuple t = {Value("s" + std::to_string(i)),
                   Value(static_cast<int64_t>(rng.Uniform(1000))),
                   Str(&rng, cfg.string_len), Str(&rng, cfg.string_len),
                   Str(&rng, cfg.string_len), Str(&rng, cfg.string_len)};
        rel.rows.push_back(std::move(t));
      }
      out.push_back(std::move(rel));
      break;
    }
    case StbScenario::kJoin: {
      // 5-attr dimension (keyed j0), 7-attr mid keyed m0 with (b1,b2)
      // referencing the dimension's (j0,j1) pair, and a 9-attr fact
      // referencing the mid's key; joins are on two attributes each.
      GeneratedRelation dim;
      dim.def = WideRelation("stb_five", 5, cfg.num_partitions);
      uint64_t dim_rows = std::max<uint64_t>(1, n / 4);
      fill_wide(&dim, dim_rows, "d");

      GeneratedRelation mid;
      {
        std::vector<ColumnDef> cols = {{"m0", ValueType::kString},
                                       {"b1", ValueType::kString},
                                       {"b2", ValueType::kString},
                                       {"m3", ValueType::kString},
                                       {"m4", ValueType::kString},
                                       {"m5", ValueType::kString},
                                       {"m6", ValueType::kString}};
        mid.def.name = "stb_seven";
        mid.def.schema = Schema(std::move(cols), 1);
        mid.def.num_partitions = cfg.num_partitions;
        mid.rows.reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
          uint64_t ref = rng.Uniform(dim_rows);
          Tuple t = {Value("m" + std::to_string(i)),
                     dim.rows[ref][0],  // b1 = dim key
                     dim.rows[ref][1],  // b2 = dim a1
                     Str(&rng, cfg.string_len), Str(&rng, cfg.string_len),
                     Str(&rng, cfg.string_len), Str(&rng, cfg.string_len)};
          mid.rows.push_back(std::move(t));
        }
      }

      GeneratedRelation fact;
      {
        std::vector<ColumnDef> cols;
        cols.push_back({"f0", ValueType::kString});
        cols.push_back({"c1", ValueType::kString});
        cols.push_back({"c2", ValueType::kString});
        for (int i = 3; i < 9; ++i) {
          cols.push_back({"f" + std::to_string(i), ValueType::kString});
        }
        fact.def.name = "stb_nine";
        fact.def.schema = Schema(std::move(cols), 1);
        fact.def.num_partitions = cfg.num_partitions;
        fact.rows.reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
          uint64_t ref = rng.Uniform(mid.rows.size());
          Tuple t;
          t.push_back(Value("f" + std::to_string(i)));
          t.push_back(mid.rows[ref][0]);  // c1 = mid key
          t.push_back(mid.rows[ref][3]);  // c2 = mid m3
          for (int c = 3; c < 9; ++c) t.push_back(Str(&rng, cfg.string_len));
          fact.rows.push_back(std::move(t));
        }
      }
      out.push_back(std::move(dim));
      out.push_back(std::move(mid));
      out.push_back(std::move(fact));
      break;
    }
    case StbScenario::kConcatenate: {
      GeneratedRelation rel;
      rel.def = WideRelation("stb_concat", 6, cfg.num_partitions);
      rel.def.name = "stb_concat";
      fill_wide(&rel, n, "k");
      out.push_back(std::move(rel));
      break;
    }
    case StbScenario::kCorrespondence: {
      GeneratedRelation rel;
      {
        std::vector<ColumnDef> cols = {{"a0", ValueType::kString},
                                       {"k1", ValueType::kString},
                                       {"k2", ValueType::kString},
                                       {"a3", ValueType::kString},
                                       {"a4", ValueType::kString},
                                       {"a5", ValueType::kString},
                                       {"a6", ValueType::kString}};
        rel.def.name = "stb_corr_in";
        rel.def.schema = Schema(std::move(cols), 1);
        rel.def.num_partitions = cfg.num_partitions;
      }
      // The correspondence table maps (k1, k2) pairs to integer IDs — the
      // value-correspondence replacement for the Skolem function (§VI-A).
      GeneratedRelation corr;
      {
        std::vector<ColumnDef> cols = {{"k1", ValueType::kString},
                                       {"k2", ValueType::kString},
                                       {"id", ValueType::kInt64}};
        corr.def.name = "stb_corr_map";
        corr.def.schema = Schema(std::move(cols), 2);
        corr.def.num_partitions = cfg.num_partitions;
      }
      uint64_t pairs = std::max<uint64_t>(1, n / 10);
      corr.rows.reserve(pairs);
      for (uint64_t i = 0; i < pairs; ++i) {
        corr.rows.push_back({Value("p" + std::to_string(i)),
                             Value("q" + std::to_string(i)),
                             Value(static_cast<int64_t>(1000000 + i))});
      }
      rel.rows.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t ref = rng.Uniform(pairs);
        rel.rows.push_back({Value("r" + std::to_string(i)), corr.rows[ref][0],
                            corr.rows[ref][1], Str(&rng, cfg.string_len),
                            Str(&rng, cfg.string_len), Str(&rng, cfg.string_len),
                            Str(&rng, cfg.string_len)});
      }
      out.push_back(std::move(rel));
      out.push_back(std::move(corr));
      break;
    }
  }
  return out;
}

std::string StbQuerySql(StbScenario scenario) {
  switch (scenario) {
    case StbScenario::kCopy:
      return "SELECT a0, a1, a2, a3, a4, a5, a6 FROM stb_copy";
    case StbScenario::kSelect:
      return "SELECT a0, num, a2, a3, a4, a5 FROM stb_select WHERE num < 333";
    case StbScenario::kJoin:
      return "SELECT f0, m0, a0, f3, m4, a2 "
             "FROM stb_nine, stb_seven, stb_five "
             "WHERE c1 = m0 AND c2 = m3 AND b1 = a0 AND b2 = a1";
    case StbScenario::kConcatenate:
      return "SELECT CONCAT(a1, a2, a3) AS joined, a0, a4, a5 FROM stb_concat";
    case StbScenario::kCorrespondence:
      return "SELECT id, a0, stb_corr_in.k1, stb_corr_in.k2, a3, a4, a5, a6 "
             "FROM stb_corr_in, stb_corr_map "
             "WHERE stb_corr_in.k1 = stb_corr_map.k1 AND "
             "stb_corr_in.k2 = stb_corr_map.k2";
  }
  return "";
}

}  // namespace orchestra::workload
