#include "workload/tpch.h"

#include <algorithm>

#include "common/rng.h"
#include "sql/parser.h"

namespace orchestra::workload {

using storage::ColumnDef;
using storage::RelationDef;
using storage::Schema;
using storage::Tuple;
using storage::Value;
using storage::ValueType;

int64_t TpchDate(int y, int m, int d) { return sql::DateToDays(y, m, d); }

namespace {

const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

struct NationSpec {
  const char* name;
  int region;
};
// The 25 TPC-H nations and their regions.
const NationSpec kNations[25] = {
    {"ALGERIA", 0},    {"ARGENTINA", 1}, {"BRAZIL", 1},     {"CANADA", 1},
    {"EGYPT", 4},      {"ETHIOPIA", 0},  {"FRANCE", 3},     {"GERMANY", 3},
    {"INDIA", 2},      {"INDONESIA", 2}, {"IRAN", 4},       {"IRAQ", 4},
    {"JAPAN", 2},      {"JORDAN", 4},    {"KENYA", 0},      {"MOROCCO", 0},
    {"MOZAMBIQUE", 0}, {"PERU", 1},      {"CHINA", 2},      {"ROMANIA", 3},
    {"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},     {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                            "HOUSEHOLD"};
const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                              "5-LOW"};

Value Txt(Rng* rng, uint32_t min_len, uint32_t max_len) {
  return Value(rng->AlphaString(min_len + rng->Uniform(max_len - min_len + 1)));
}

}  // namespace

std::vector<GeneratedRelation> TpchGenerate(const TpchConfig& cfg) {
  Rng rng(cfg.seed);
  const double sf = cfg.scale_factor;
  const int64_t n_supplier = std::max<int64_t>(2, static_cast<int64_t>(10000 * sf));
  const int64_t n_part = std::max<int64_t>(4, static_cast<int64_t>(200000 * sf));
  const int64_t n_customer = std::max<int64_t>(4, static_cast<int64_t>(150000 * sf));
  const int64_t n_orders = std::max<int64_t>(8, static_cast<int64_t>(1500000 * sf));

  const int64_t start_date = TpchDate(1992, 1, 1);
  const int64_t end_date = TpchDate(1998, 8, 2);
  const int64_t cutoff = TpchDate(1995, 6, 17);

  std::vector<GeneratedRelation> out;

  // region
  {
    GeneratedRelation r;
    r.def.name = "region";
    r.def.schema = Schema({{"r_regionkey", ValueType::kInt64},
                           {"r_name", ValueType::kString}},
                          1);
    r.def.num_partitions = 2;
    r.def.replicate_everywhere = true;
    for (int64_t i = 0; i < 5; ++i) {
      r.rows.push_back({Value(i), Value(std::string(kRegions[i]))});
    }
    out.push_back(std::move(r));
  }
  // nation
  {
    GeneratedRelation r;
    r.def.name = "nation";
    r.def.schema = Schema({{"n_nationkey", ValueType::kInt64},
                           {"n_name", ValueType::kString},
                           {"n_regionkey", ValueType::kInt64}},
                          1);
    r.def.num_partitions = 2;
    r.def.replicate_everywhere = true;
    for (int64_t i = 0; i < 25; ++i) {
      r.rows.push_back({Value(i), Value(std::string(kNations[i].name)),
                        Value(static_cast<int64_t>(kNations[i].region))});
    }
    out.push_back(std::move(r));
  }
  // supplier
  {
    GeneratedRelation r;
    r.def.name = "supplier";
    r.def.schema = Schema({{"s_suppkey", ValueType::kInt64},
                           {"s_name", ValueType::kString},
                           {"s_nationkey", ValueType::kInt64},
                           {"s_acctbal", ValueType::kDouble}},
                          1);
    r.def.num_partitions = cfg.num_partitions;
    for (int64_t i = 1; i <= n_supplier; ++i) {
      r.rows.push_back({Value(i), Value("Supplier#" + std::to_string(i)),
                        Value(static_cast<int64_t>(rng.Uniform(25))),
                        Value(-999.99 + rng.NextDouble() * 10998.98)});
    }
    out.push_back(std::move(r));
  }
  // part
  {
    GeneratedRelation r;
    r.def.name = "part";
    r.def.schema = Schema({{"p_partkey", ValueType::kInt64},
                           {"p_name", ValueType::kString},
                           {"p_brand", ValueType::kString},
                           {"p_type", ValueType::kString},
                           {"p_size", ValueType::kInt64},
                           {"p_retailprice", ValueType::kDouble}},
                          1);
    r.def.num_partitions = cfg.num_partitions;
    for (int64_t i = 1; i <= n_part; ++i) {
      r.rows.push_back(
          {Value(i), Txt(&rng, 15, 30),
           Value("Brand#" + std::to_string(1 + rng.Uniform(5)) +
                 std::to_string(1 + rng.Uniform(5))),
           Txt(&rng, 10, 25), Value(static_cast<int64_t>(1 + rng.Uniform(50))),
           Value(900.0 + static_cast<double>(i % 1000))});
    }
    out.push_back(std::move(r));
  }
  // partsupp: 4 per part, keyed (ps_partkey, ps_suppkey), placed by partkey.
  {
    GeneratedRelation r;
    r.def.name = "partsupp";
    r.def.schema = Schema({{"ps_partkey", ValueType::kInt64},
                           {"ps_suppkey", ValueType::kInt64},
                           {"ps_availqty", ValueType::kInt64},
                           {"ps_supplycost", ValueType::kDouble}},
                          2);
    r.def.partition_key_arity = 1;
    r.def.num_partitions = cfg.num_partitions;
    for (int64_t p = 1; p <= n_part; ++p) {
      for (int j = 0; j < 4; ++j) {
        int64_t s = 1 + static_cast<int64_t>((p + j * (n_supplier / 4 + 1)) %
                                             n_supplier);
        r.rows.push_back({Value(p), Value(s),
                          Value(static_cast<int64_t>(1 + rng.Uniform(9999))),
                          Value(1.0 + rng.NextDouble() * 999.0)});
      }
    }
    out.push_back(std::move(r));
  }
  // customer
  {
    GeneratedRelation r;
    r.def.name = "customer";
    r.def.schema = Schema({{"c_custkey", ValueType::kInt64},
                           {"c_name", ValueType::kString},
                           {"c_address", ValueType::kString},
                           {"c_nationkey", ValueType::kInt64},
                           {"c_phone", ValueType::kString},
                           {"c_acctbal", ValueType::kDouble},
                           {"c_mktsegment", ValueType::kString},
                           {"c_comment", ValueType::kString}},
                          1);
    r.def.num_partitions = cfg.num_partitions;
    for (int64_t i = 1; i <= n_customer; ++i) {
      r.rows.push_back({Value(i), Value("Customer#" + std::to_string(i)),
                        Txt(&rng, 10, 40),
                        Value(static_cast<int64_t>(rng.Uniform(25))),
                        Txt(&rng, 15, 15),
                        Value(-999.99 + rng.NextDouble() * 10998.98),
                        Value(std::string(kSegments[rng.Uniform(5)])),
                        Txt(&rng, 29, 116)});
    }
    out.push_back(std::move(r));
  }
  // orders + lineitem
  {
    GeneratedRelation orders;
    orders.def.name = "orders";
    orders.def.schema = Schema({{"o_orderkey", ValueType::kInt64},
                                {"o_custkey", ValueType::kInt64},
                                {"o_orderstatus", ValueType::kString},
                                {"o_totalprice", ValueType::kDouble},
                                {"o_orderdate", ValueType::kInt64},
                                {"o_orderpriority", ValueType::kString},
                                {"o_shippriority", ValueType::kInt64}},
                               1);
    orders.def.num_partitions = cfg.num_partitions;

    GeneratedRelation lineitem;
    lineitem.def.name = "lineitem";
    lineitem.def.schema = Schema({{"l_orderkey", ValueType::kInt64},
                                  {"l_linenumber", ValueType::kInt64},
                                  {"l_partkey", ValueType::kInt64},
                                  {"l_suppkey", ValueType::kInt64},
                                  {"l_quantity", ValueType::kDouble},
                                  {"l_extendedprice", ValueType::kDouble},
                                  {"l_discount", ValueType::kDouble},
                                  {"l_tax", ValueType::kDouble},
                                  {"l_returnflag", ValueType::kString},
                                  {"l_linestatus", ValueType::kString},
                                  {"l_shipdate", ValueType::kInt64},
                                  {"l_commitdate", ValueType::kInt64},
                                  {"l_receiptdate", ValueType::kInt64}},
                                 2);
    // Keyed (orderkey, linenumber) but PLACED by orderkey: co-partitioned
    // with orders (§VI-A "first key attribute").
    lineitem.def.partition_key_arity = 1;
    lineitem.def.num_partitions = cfg.num_partitions;

    for (int64_t o = 1; o <= n_orders; ++o) {
      int64_t custkey = 1 + static_cast<int64_t>(rng.Uniform(n_customer));
      int64_t orderdate =
          start_date + static_cast<int64_t>(
                           rng.Uniform(static_cast<uint64_t>(end_date - start_date - 151)));
      int n_lines = 1 + static_cast<int>(rng.Uniform(7));
      double total = 0;
      int finished = 0;
      for (int l = 1; l <= n_lines; ++l) {
        double qty = 1 + static_cast<double>(rng.Uniform(50));
        double price = 900.0 + static_cast<double>(rng.Uniform(104000)) / 1.04;
        double extended = qty * price / 100.0;
        double discount = static_cast<double>(rng.Uniform(11)) / 100.0;
        double tax = static_cast<double>(rng.Uniform(9)) / 100.0;
        int64_t shipdate = orderdate + 1 + static_cast<int64_t>(rng.Uniform(121));
        int64_t commitdate = orderdate + 30 + static_cast<int64_t>(rng.Uniform(61));
        int64_t receiptdate = shipdate + 1 + static_cast<int64_t>(rng.Uniform(30));
        std::string returnflag =
            receiptdate <= cutoff ? (rng.OneIn(2) ? "R" : "A") : "N";
        std::string linestatus = shipdate > cutoff ? "O" : "F";
        if (linestatus == "F") ++finished;
        total += extended;
        lineitem.rows.push_back({Value(o), Value(static_cast<int64_t>(l)),
                                 Value(1 + static_cast<int64_t>(rng.Uniform(n_part))),
                                 Value(1 + static_cast<int64_t>(rng.Uniform(n_supplier))),
                                 Value(qty), Value(extended), Value(discount),
                                 Value(tax), Value(returnflag), Value(linestatus),
                                 Value(shipdate), Value(commitdate),
                                 Value(receiptdate)});
      }
      std::string status = finished == n_lines ? "F" : (finished == 0 ? "O" : "P");
      orders.rows.push_back({Value(o), Value(custkey), Value(status), Value(total),
                             Value(orderdate),
                             Value(std::string(kPriorities[rng.Uniform(5)])),
                             Value(int64_t{0})});
    }
    out.push_back(std::move(orders));
    out.push_back(std::move(lineitem));
  }
  return out;
}

std::vector<std::string> TpchQueryNames() { return {"Q1", "Q3", "Q5", "Q6", "Q10"}; }

std::string TpchQuerySql(const std::string& name) {
  if (name == "Q1") {
    return "SELECT l_returnflag, l_linestatus, "
           "SUM(l_quantity) AS sum_qty, "
           "SUM(l_extendedprice) AS sum_base_price, "
           "SUM(l_extendedprice * (1.0 - l_discount)) AS sum_disc_price, "
           "SUM(l_extendedprice * (1.0 - l_discount) * (1.0 + l_tax)) AS sum_charge, "
           "AVG(l_quantity) AS avg_qty, "
           "AVG(l_extendedprice) AS avg_price, "
           "AVG(l_discount) AS avg_disc, "
           "COUNT(*) AS count_order "
           "FROM lineitem "
           "WHERE l_shipdate <= date '1998-12-01' - interval '90' day "
           "GROUP BY l_returnflag, l_linestatus "
           "ORDER BY l_returnflag, l_linestatus";
  }
  if (name == "Q3") {
    return "SELECT l_orderkey, "
           "SUM(l_extendedprice * (1.0 - l_discount)) AS revenue, "
           "o_orderdate, o_shippriority "
           "FROM customer, orders, lineitem "
           "WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey "
           "AND l_orderkey = o_orderkey "
           "AND o_orderdate < date '1995-03-15' "
           "AND l_shipdate > date '1995-03-15' "
           "GROUP BY l_orderkey, o_orderdate, o_shippriority "
           "ORDER BY revenue DESC, o_orderdate LIMIT 10";
  }
  if (name == "Q5") {
    return "SELECT n_name, "
           "SUM(l_extendedprice * (1.0 - l_discount)) AS revenue "
           "FROM customer, orders, lineitem, supplier, nation, region "
           "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
           "AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey "
           "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
           "AND r_name = 'ASIA' "
           "AND o_orderdate >= date '1994-01-01' "
           "AND o_orderdate < date '1995-01-01' "
           "GROUP BY n_name ORDER BY revenue DESC";
  }
  if (name == "Q6") {
    return "SELECT SUM(l_extendedprice * l_discount) AS revenue "
           "FROM lineitem "
           "WHERE l_shipdate >= date '1994-01-01' "
           "AND l_shipdate < date '1995-01-01' "
           "AND l_discount BETWEEN 0.05 AND 0.07 "
           "AND l_quantity < 24.0";
  }
  if (name == "Q10") {
    return "SELECT c_custkey, c_name, "
           "SUM(l_extendedprice * (1.0 - l_discount)) AS revenue, "
           "c_acctbal, n_name, c_address, c_phone "
           "FROM customer, orders, lineitem, nation "
           "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
           "AND o_orderdate >= date '1993-10-01' "
           "AND o_orderdate < date '1994-01-01' "
           "AND l_returnflag = 'R' AND c_nationkey = n_nationkey "
           "GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address "
           "ORDER BY revenue DESC LIMIT 20";
  }
  return "";
}

}  // namespace orchestra::workload
